// Unit tests for the packed bit-stream container.
#include <gtest/gtest.h>

#include "uhd/bitstream/bitstream.hpp"
#include "uhd/common/error.hpp"

namespace {

using uhd::bs::bitstream;

TEST(Bitstream, DefaultIsEmpty) {
    bitstream s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_TRUE(s.all()); // vacuous
    EXPECT_TRUE(s.none());
}

TEST(Bitstream, FillConstructor) {
    bitstream zeros(100, false);
    EXPECT_EQ(zeros.popcount(), 0u);
    bitstream ones(100, true);
    EXPECT_EQ(ones.popcount(), 100u);
    EXPECT_TRUE(ones.all());
}

TEST(Bitstream, SetAndGetBits) {
    bitstream s(130);
    s.set_bit(0, true);
    s.set_bit(64, true);
    s.set_bit(129, true);
    EXPECT_TRUE(s.bit(0));
    EXPECT_TRUE(s.bit(64));
    EXPECT_TRUE(s.bit(129));
    EXPECT_FALSE(s.bit(1));
    EXPECT_EQ(s.popcount(), 3u);
    s.set_bit(64, false);
    EXPECT_EQ(s.popcount(), 2u);
}

TEST(Bitstream, OutOfRangeThrows) {
    bitstream s(10);
    EXPECT_THROW((void)s.bit(10), uhd::error);
    EXPECT_THROW(s.set_bit(10, true), uhd::error);
}

TEST(Bitstream, FromToString) {
    const bitstream s = bitstream::from_string("0011010");
    EXPECT_EQ(s.size(), 7u);
    EXPECT_EQ(s.popcount(), 3u);
    EXPECT_EQ(s.to_string(), "0011010");
}

TEST(Bitstream, FromStringRejectsGarbage) {
    EXPECT_THROW((void)bitstream::from_string("01x"), uhd::error);
}

TEST(Bitstream, FromBools) {
    const bitstream s = bitstream::from_bools({true, false, true});
    EXPECT_EQ(s.to_string(), "101");
}

TEST(Bitstream, ValueInterpretation) {
    const bitstream s = bitstream::from_string("1100");
    EXPECT_DOUBLE_EQ(s.value(), 0.5);
    EXPECT_THROW((void)bitstream().value(), uhd::error);
}

TEST(Bitstream, LogicOps) {
    const bitstream a = bitstream::from_string("1100");
    const bitstream b = bitstream::from_string("1010");
    EXPECT_EQ((a & b).to_string(), "1000");
    EXPECT_EQ((a | b).to_string(), "1110");
    EXPECT_EQ((a ^ b).to_string(), "0110");
    EXPECT_EQ((~a).to_string(), "0011");
}

TEST(Bitstream, LengthMismatchThrows) {
    bitstream a(4);
    bitstream b(5);
    EXPECT_THROW((void)(a & b), uhd::error);
    EXPECT_THROW((void)(a | b), uhd::error);
    EXPECT_THROW((void)(a ^ b), uhd::error);
}

TEST(Bitstream, NotKeepsTailZero) {
    // Inverting must not set bits beyond size() in the last word.
    bitstream s(70);
    const bitstream inverted = ~s;
    EXPECT_EQ(inverted.popcount(), 70u);
    EXPECT_TRUE(inverted.all());
    const auto words = inverted.words();
    EXPECT_EQ(words[1] >> 6, 0u); // bits 70..127 must stay zero
}

TEST(Bitstream, MaskTailAfterWordWrite) {
    bitstream s(10);
    s.mutable_words()[0] = ~std::uint64_t{0};
    s.mask_tail();
    EXPECT_EQ(s.popcount(), 10u);
}

TEST(Bitstream, HammingDistance) {
    const bitstream a = bitstream::from_string("110010");
    const bitstream b = bitstream::from_string("101010");
    EXPECT_EQ(hamming_distance(a, b), 2u);
    EXPECT_EQ(hamming_distance(a, a), 0u);
}

TEST(Bitstream, OverlapCount) {
    const bitstream a = bitstream::from_string("1101");
    const bitstream b = bitstream::from_string("1011");
    EXPECT_EQ(overlap_count(a, b), 2u);
}

TEST(Bitstream, EqualityIsValueBased) {
    EXPECT_EQ(bitstream::from_string("101"), bitstream::from_string("101"));
    EXPECT_NE(bitstream::from_string("101"), bitstream::from_string("100"));
}

TEST(Bitstream, MemoryBytesTracksCapacity) {
    bitstream s(1024);
    EXPECT_GE(s.memory_bytes(), 1024u / 8);
}

class BitstreamWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitstreamWidths, PopcountMatchesBitLoop) {
    const std::size_t n = GetParam();
    bitstream s(n);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; i += 3) {
        s.set_bit(i, true);
        ++expected;
    }
    EXPECT_EQ(s.popcount(), expected);
    EXPECT_EQ((~s).popcount(), n - expected);
}

INSTANTIATE_TEST_SUITE_P(VariousWidths, BitstreamWidths,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128, 1000, 1024));

} // namespace
