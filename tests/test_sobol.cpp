// Tests for the Sobol generator: van der Corput base dimension, Gray-code
// sequencing, power-of-two prefix equidistribution (the property uHD's
// intensity coding relies on), quantization (checked against the paper's
// Fig. 3(a) worked example), and the quantized bank.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "uhd/common/error.hpp"
#include "uhd/lowdisc/discrepancy.hpp"
#include "uhd/lowdisc/halton.hpp"
#include "uhd/lowdisc/sobol.hpp"

namespace {

using namespace uhd::ld;

TEST(SobolDirections, Deterministic) {
    const auto a = sobol_directions::standard(16);
    const auto b = sobol_directions::standard(16);
    for (std::size_t d = 0; d < 16; ++d) {
        const auto va = a.direction_numbers(d);
        const auto vb = b.direction_numbers(d);
        for (int i = 0; i < sobol_bits; ++i) EXPECT_EQ(va[i], vb[i]);
    }
}

TEST(SobolDirections, DimensionZeroIsVanDerCorput) {
    const auto table = sobol_directions::standard(2);
    const auto v = table.direction_numbers(0);
    for (int i = 0; i < sobol_bits; ++i) {
        EXPECT_EQ(v[i], std::uint32_t{1} << (sobol_bits - 1 - i));
    }
    EXPECT_EQ(table.params(0).polynomial, 0u);
}

TEST(SobolDirections, PolynomialsArePrimitiveAndDistinct) {
    const auto table = sobol_directions::standard(64);
    std::vector<gf2_poly> polys;
    for (std::size_t d = 1; d < table.dimensions(); ++d) {
        const auto& params = table.params(d);
        EXPECT_TRUE(is_primitive(params.polynomial)) << "dim " << d;
        polys.push_back(params.polynomial);
        // m_k constraints: odd and < 2^k.
        for (std::size_t k = 0; k < params.initial_m.size(); ++k) {
            EXPECT_EQ(params.initial_m[k] % 2, 1u);
            EXPECT_LT(params.initial_m[k], std::uint32_t{1} << (k + 1));
        }
    }
    std::sort(polys.begin(), polys.end());
    EXPECT_EQ(std::adjacent_find(polys.begin(), polys.end()), polys.end());
}

TEST(SobolDirections, OutOfRangeThrows) {
    const auto table = sobol_directions::standard(4);
    EXPECT_THROW((void)table.direction_numbers(4), uhd::error);
    EXPECT_THROW((void)table.params(4), uhd::error);
}

TEST(SobolSequence, FirstPointsOfVdcDimension) {
    const auto table = sobol_directions::standard(1);
    sobol_sequence seq(table.direction_numbers(0));
    // Gray-code order of the base-2 radical inverse: 0, 1/2, 3/4, 1/4, ...
    EXPECT_DOUBLE_EQ(seq.next(), 0.0);
    EXPECT_DOUBLE_EQ(seq.next(), 0.5);
    EXPECT_DOUBLE_EQ(seq.next(), 0.75);
    EXPECT_DOUBLE_EQ(seq.next(), 0.25);
    EXPECT_DOUBLE_EQ(seq.next(), 0.375);
}

TEST(SobolSequence, PowerOfTwoPrefixIsExactlyEquidistributed) {
    // Any 2^k-prefix of any Sobol dimension hits every dyadic interval
    // [i/2^k, (i+1)/2^k) exactly once — this is what bounds the level-
    // hypervector coding error.
    const auto table = sobol_directions::standard(8);
    for (std::size_t dim = 0; dim < 8; ++dim) {
        sobol_sequence seq(table.direction_numbers(dim));
        const std::size_t k = 256;
        std::vector<int> buckets(k, 0);
        for (std::size_t i = 0; i < k; ++i) {
            ++buckets[static_cast<std::size_t>(seq.next() * static_cast<double>(k))];
        }
        for (const int count : buckets) EXPECT_EQ(count, 1) << "dim " << dim;
    }
}

TEST(SobolSequence, SortedPrefixMatchesVdcSet) {
    // The 2^k-prefix of the VdC dimension is {i / 2^k} as a set.
    const auto table = sobol_directions::standard(1);
    sobol_sequence seq(table.direction_numbers(0));
    std::vector<double> points;
    for (int i = 0; i < 64; ++i) points.push_back(seq.next());
    std::sort(points.begin(), points.end());
    for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(points[i], i / 64.0);
}

TEST(SobolSequence, SeekMatchesSequentialGeneration) {
    const auto table = sobol_directions::standard(4);
    for (std::size_t dim = 0; dim < 4; ++dim) {
        sobol_sequence seq(table.direction_numbers(dim));
        std::vector<std::uint32_t> sequential;
        for (int i = 0; i < 200; ++i) sequential.push_back(seq.next_fraction());
        sobol_sequence random_access(table.direction_numbers(dim));
        for (const std::uint64_t idx : {0ULL, 1ULL, 17ULL, 128ULL, 199ULL}) {
            EXPECT_EQ(random_access.fraction_at(idx), sequential[idx]) << "dim " << dim;
            random_access.seek(idx);
            EXPECT_EQ(random_access.next_fraction(), sequential[idx]);
        }
    }
}

TEST(SobolSequence, ResetRestarts) {
    const auto table = sobol_directions::standard(2);
    sobol_sequence seq(table.direction_numbers(1));
    const double first = seq.next();
    seq.next();
    seq.reset();
    EXPECT_DOUBLE_EQ(seq.next(), first);
}

TEST(SobolSequence, LowDiscrepancyBeatsRandomRate) {
    const auto table = sobol_directions::standard(4);
    for (std::size_t dim = 0; dim < 4; ++dim) {
        const auto points = sobol_points(table, dim, 1024);
        // LD sequences: D* = O(log n / n); allow a generous constant.
        EXPECT_LT(star_discrepancy(points), 0.02) << "dim " << dim;
    }
}

TEST(SobolSequence, CrossDimensionCorrelationIsSmall) {
    const auto table = sobol_directions::standard(16);
    const auto base = sobol_points(table, 3, 1024);
    for (std::size_t dim = 4; dim < 16; ++dim) {
        const auto other = sobol_points(table, dim, 1024);
        EXPECT_LT(std::abs(sequence_correlation(base, other)), 0.25) << "dim " << dim;
    }
}

TEST(Quantize, MatchesPaperFig3Example) {
    // Fig. 3(a): xi = 16, scalar -> round(S * 15).
    EXPECT_EQ(quantize_unit(0.671875, 16), 10);
    EXPECT_EQ(quantize_unit(0.359375, 16), 5);
    EXPECT_EQ(quantize_unit(0.859375, 16), 13);
    EXPECT_EQ(quantize_unit(0.609375, 16), 9);
    EXPECT_EQ(quantize_unit(0.109375, 16), 2);
    EXPECT_EQ(quantize_unit(0.984375, 16), 15);
    EXPECT_EQ(quantize_unit(0.484375, 16), 7);
}

TEST(Quantize, Extremes) {
    EXPECT_EQ(quantize_unit(0.0, 16), 0);
    EXPECT_EQ(quantize_unit(1.0, 16), 15);
    EXPECT_EQ(quantize_unit(-0.5, 16), 0);
    EXPECT_EQ(quantize_unit(1.5, 16), 15);
}

TEST(QuantizedBank, RowsMatchSequencePlusQuantize) {
    const auto table = sobol_directions::standard(4);
    const quantized_sobol_bank bank(table, 4, 64, 16);
    for (std::size_t d = 0; d < 4; ++d) {
        sobol_sequence seq(table.direction_numbers(d));
        const auto row = bank.row(d);
        for (std::size_t i = 0; i < 64; ++i) {
            EXPECT_EQ(row[i], quantize_unit(seq.next(), 16));
        }
    }
}

TEST(QuantizedBank, ScrambledRowsStayEquidistributed) {
    const auto table = sobol_directions::standard(4);
    const quantized_sobol_bank bank(table, 4, 1024, 16, /*scramble_seed=*/99);
    for (std::size_t d = 0; d < 4; ++d) {
        std::array<int, 16> histogram{};
        for (const std::uint8_t q : bank.row(d)) ++histogram[q];
        // 1024 samples over 16 levels: interior levels get ~68, the two edge
        // levels ~34 (round() halves their quantization cells).
        for (std::size_t q = 1; q + 1 < 16; ++q) {
            EXPECT_NEAR(histogram[q], 68, 20) << "level " << q;
        }
    }
}

TEST(QuantizedBank, ScrambleChangesRowsDeterministically) {
    const auto table = sobol_directions::standard(2);
    const quantized_sobol_bank plain(table, 2, 128, 16);
    const quantized_sobol_bank scrambled_a(table, 2, 128, 16, 7);
    const quantized_sobol_bank scrambled_b(table, 2, 128, 16, 7);
    bool any_difference = false;
    for (std::size_t i = 0; i < 128; ++i) {
        if (plain.row(1)[i] != scrambled_a.row(1)[i]) any_difference = true;
        EXPECT_EQ(scrambled_a.row(1)[i], scrambled_b.row(1)[i]);
    }
    EXPECT_TRUE(any_difference);
}

TEST(QuantizedBank, GeometryValidation) {
    const auto table = sobol_directions::standard(2);
    EXPECT_THROW(quantized_sobol_bank(table, 3, 64, 16), uhd::error);
    EXPECT_THROW(quantized_sobol_bank(table, 2, 64, 1), uhd::error);
    const quantized_sobol_bank bank(table, 2, 64, 16);
    EXPECT_THROW((void)bank.row(2), uhd::error);
    EXPECT_GT(bank.memory_bytes(), 0u);
}

} // namespace
