// Equivalence tests for the word-parallel engine: every kernel of every
// admissible backend in the uhd::kernels registry against its pinned
// scalar reference, the optimized encoder paths against the scalar oracle
// over randomized images x configurations, batch encoding against
// per-image encoding, and thread-count determinism of the batch
// classifier APIs.
//
// The whole suite runs under any UHD_BACKEND value (tests/CMakeLists.txt
// registers forced-backend variants), and the per-backend loops below
// additionally cover every admissible backend inside a single process, so
// a backend can't dodge the oracle by not being the active one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "uhd/common/cpu_features.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/common/simd.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/classifier.hpp"

namespace {

using namespace uhd;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint8_t max_value,
                                       xoshiro256ss& rng) {
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) {
        b = static_cast<std::uint8_t>(rng.next() % (static_cast<unsigned>(max_value) + 1));
    }
    return out;
}

// All kernel-equivalence loops iterate over kernels::admissible_backends()
// (always at least scalar and swar), so on AVX2 hardware the AVX2 table is
// oracle-checked even when the active backend is something else.
using kernels::admissible_backends;

TEST(SimdKernels, GeqMaskSwarMatchesByteCompare) {
    xoshiro256ss rng(11);
    for (int trial = 0; trial < 2000; ++trial) {
        const std::uint8_t q = static_cast<std::uint8_t>(rng.next() % 128);
        std::uint8_t bytes[8];
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next() % 128);
        std::uint64_t x;
        std::memcpy(&x, bytes, 8);
        const std::uint64_t mask = simd::geq_mask_swar(simd::splat8(q), x);
        for (int i = 0; i < 8; ++i) {
            const bool expected = q >= bytes[i];
            const bool got = ((mask >> (8 * i)) & 0x80u) != 0;
            EXPECT_EQ(got, expected) << "q=" << int(q) << " x=" << int(bytes[i]);
        }
    }
}

TEST(SimdKernels, GeqAccumulateEveryBackendMatchesScalar) {
    xoshiro256ss rng(22);
    for (int trial = 0; trial < 200; ++trial) {
        // Odd dims exercise the tail handling of every kernel.
        const std::size_t dim = 1 + rng.next() % 200;
        const std::uint8_t max_value = trial % 2 == 0 ? 127 : 15;
        const auto thresholds = random_bytes(dim, max_value, rng);
        const std::uint8_t q = static_cast<std::uint8_t>(rng.next() % (max_value + 1u));

        std::vector<std::uint16_t> scalar(dim, 7); // nonzero start: += semantics
        std::vector<std::uint16_t> swar(dim, 7);
        simd::geq_accumulate_scalar(q, thresholds.data(), dim, scalar.data());
        simd::geq_accumulate_swar(q, thresholds.data(), dim, swar.data());
        EXPECT_EQ(scalar, swar);

        for (const kernels::kernel_table* backend : admissible_backends()) {
            std::vector<std::uint16_t> got(dim, 7);
            backend->geq_accumulate(q, thresholds.data(), dim, got.data(), max_value);
            EXPECT_EQ(scalar, got) << "backend=" << backend->name;
        }

        std::vector<std::uint16_t> dispatched(dim, 7);
        kernels::geq_accumulate(q, thresholds.data(), dim, dispatched.data(),
                                max_value);
        EXPECT_EQ(scalar, dispatched);
    }
}

TEST(SimdKernels, GeqAccumulateFullByteRangeOnEveryBackend) {
    // Thresholds above 127 are outside the SWAR wide-path contract; every
    // backend must still be exact (the swar table falls back internally).
    xoshiro256ss rng(33);
    const std::size_t dim = 97;
    const auto thresholds = random_bytes(dim, 255, rng);
    for (int qi = 0; qi < 256; qi += 17) {
        const std::uint8_t q = static_cast<std::uint8_t>(qi);
        std::vector<std::uint16_t> scalar(dim, 0);
        simd::geq_accumulate_scalar(q, thresholds.data(), dim, scalar.data());
        for (const kernels::kernel_table* backend : admissible_backends()) {
            std::vector<std::uint16_t> got(dim, 0);
            backend->geq_accumulate(q, thresholds.data(), dim, got.data(), 255);
            EXPECT_EQ(scalar, got) << "backend=" << backend->name;
        }
    }
}

TEST(SimdKernels, BlockKernelsEveryBackendMatchesReferencePerPixelLoop) {
    xoshiro256ss rng(66);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t dim = 1 + rng.next() % 300; // exercises 128/8 tails
        const std::size_t npix = 1 + rng.next() % 600; // crosses the 255 flush
        const std::uint8_t max_value = trial % 2 == 0 ? 127 : 15;
        const auto bank = random_bytes(npix * dim, max_value, rng);
        const auto q = random_bytes(npix, max_value, rng);

        std::vector<std::int32_t> expected(dim, 3); // nonzero start: += semantics
        {
            std::vector<std::uint16_t> tile(dim, 0);
            for (std::size_t p = 0; p < npix; ++p) {
                simd::geq_accumulate_reference(q[p], bank.data() + p * dim, dim,
                                               tile.data());
            }
            simd::add_u16_to_i32(tile.data(), dim, expected.data());
        }

        std::vector<std::int32_t> scalar(dim, 3);
        simd::geq_block_accumulate_scalar(q.data(), npix, bank.data(), dim, dim,
                                          scalar.data());
        EXPECT_EQ(expected, scalar);

        std::vector<std::int32_t> swar(dim, 3);
        simd::geq_block_accumulate_swar(q.data(), npix, bank.data(), dim, dim,
                                        swar.data());
        EXPECT_EQ(expected, swar);

        for (const kernels::kernel_table* backend : admissible_backends()) {
            std::vector<std::int32_t> got(dim, 3);
            backend->geq_block_accumulate(q.data(), npix, bank.data(), dim, dim,
                                          got.data(), max_value);
            EXPECT_EQ(expected, got) << "backend=" << backend->name;
        }

        std::vector<std::int32_t> dispatched(dim, 3);
        kernels::geq_block_accumulate(q.data(), npix, bank.data(), dim, dim,
                                      dispatched.data(), max_value);
        EXPECT_EQ(expected, dispatched);
    }
}

TEST(SimdKernels, BlockKernelHonorsRowStrideOnEveryBackend) {
    // stride > dim: the kernel must only read the first `dim` bytes of
    // each row.
    xoshiro256ss rng(77);
    const std::size_t dim = 160; // one full 128-wide tile plus a tail
    const std::size_t stride = 200;
    const std::size_t npix = 40;
    const auto bank = random_bytes(npix * stride, 127, rng);
    const auto q = random_bytes(npix, 127, rng);

    std::vector<std::int32_t> expected(dim, 0);
    for (std::size_t p = 0; p < npix; ++p) {
        for (std::size_t d = 0; d < dim; ++d) {
            expected[d] += q[p] >= bank[p * stride + d] ? 1 : 0;
        }
    }
    for (const kernels::kernel_table* backend : admissible_backends()) {
        std::vector<std::int32_t> got(dim, 0);
        backend->geq_block_accumulate(q.data(), npix, bank.data(), stride, dim,
                                      got.data(), 127);
        EXPECT_EQ(expected, got) << "backend=" << backend->name;
    }
}

TEST(SimdKernels, TileFlushAddsIntoAccumulator) {
    const std::vector<std::uint16_t> tile = {0, 1, 65535, 300};
    std::vector<std::int32_t> acc = {5, -5, 1, 0};
    simd::add_u16_to_i32(tile.data(), tile.size(), acc.data());
    EXPECT_EQ(acc, (std::vector<std::int32_t>{5, -4, 65536, 300}));
}

TEST(SimdKernels, XorPopcountReductionMatchesNaive) {
    // The one surviving popcount reduction in simd.hpp (the Hamming kernel
    // the packed-row scans build on); the dispatched form must agree too.
    xoshiro256ss rng(44);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.next() % 9;
        std::vector<std::uint64_t> a(n);
        std::vector<std::uint64_t> b(n);
        for (auto& w : a) w = rng.next();
        for (auto& w : b) w = rng.next();
        std::uint64_t xor_pop = 0;
        for (std::size_t i = 0; i < n; ++i) {
            xor_pop += std::popcount(a[i] ^ b[i]);
        }
        EXPECT_EQ(simd::xor_popcount_words(a.data(), b.data(), n), xor_pop);
        EXPECT_EQ(kernels::hamming_distance_words(a.data(), b.data(), n), xor_pop);
    }
}

TEST(SimdKernels, SignBinarizeEveryBackendMatchesReference) {
    xoshiro256ss rng(88);
    for (int trial = 0; trial < 200; ++trial) {
        // Dims straddle word boundaries: 1..320 covers non-multiples of 64,
        // exact multiples, and the single-word case.
        const std::size_t n = 1 + rng.next() % 320;
        std::vector<std::int32_t> values(n);
        for (auto& v : values) {
            // Mix of negative, zero, and positive (zero must map to +1 /
            // bit 0, the accumulator::sign tie rule).
            v = static_cast<std::int32_t>(rng.next() % 7) - 3;
        }
        std::vector<std::uint64_t> reference(kernels::sign_words(n), ~std::uint64_t{0});
        std::vector<std::uint64_t> swar(kernels::sign_words(n), ~std::uint64_t{0});
        simd::sign_binarize_reference(values.data(), n, reference.data());
        simd::sign_binarize_swar(values.data(), n, swar.data());
        EXPECT_EQ(reference, swar) << "n=" << n;

        for (const kernels::kernel_table* backend : admissible_backends()) {
            std::vector<std::uint64_t> got(kernels::sign_words(n), ~std::uint64_t{0});
            backend->sign_binarize(values.data(), n, got.data());
            EXPECT_EQ(reference, got) << "backend=" << backend->name << " n=" << n;

            // Tail bits beyond n must be zero (the bitstream invariant).
            if (n % 64 != 0) {
                const std::uint64_t tail_mask = ~std::uint64_t{0} << (n % 64);
                EXPECT_EQ(got.back() & tail_mask, 0u) << "backend=" << backend->name;
            }
        }

        std::vector<std::uint64_t> dispatched(kernels::sign_words(n), ~std::uint64_t{0});
        kernels::sign_binarize(values.data(), n, dispatched.data());
        EXPECT_EQ(reference, dispatched) << "n=" << n;
    }
}

TEST(SimdKernels, SignBinarizeExtremeValues) {
    const std::vector<std::int32_t> values = {INT32_MIN, INT32_MAX, 0, -1, 1,
                                              INT32_MIN + 1, INT32_MAX - 1};
    std::vector<std::uint64_t> reference(1);
    simd::sign_binarize_reference(values.data(), values.size(), reference.data());
    EXPECT_EQ(reference[0], 0b0101001u); // bits set where value < 0
    for (const kernels::kernel_table* backend : admissible_backends()) {
        std::vector<std::uint64_t> got(1);
        backend->sign_binarize(values.data(), values.size(), got.data());
        EXPECT_EQ(reference, got) << "backend=" << backend->name;
    }
}

TEST(SimdKernels, HammingDistanceEveryBackendMatchesScalar) {
    xoshiro256ss rng(99);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 1 + rng.next() % 40; // crosses the 4-word AVX2 step
        std::vector<std::uint64_t> a(n);
        std::vector<std::uint64_t> b(n);
        for (auto& w : a) w = rng.next();
        for (auto& w : b) w = rng.next();
        const std::uint64_t expected = simd::xor_popcount_words(a.data(), b.data(), n);
        for (const kernels::kernel_table* backend : admissible_backends()) {
            EXPECT_EQ(backend->hamming_distance_words(a.data(), b.data(), n), expected)
                << "backend=" << backend->name;
        }
        EXPECT_EQ(kernels::hamming_distance_words(a.data(), b.data(), n), expected);
    }
}

TEST(SimdKernels, HammingArgminEveryBackendMatchesReference) {
    xoshiro256ss rng(111);
    for (int trial = 0; trial < 150; ++trial) {
        const std::size_t words = 1 + rng.next() % 20;
        const std::size_t rows = 1 + rng.next() % 16;
        std::vector<std::uint64_t> memory(words * rows);
        std::vector<std::uint64_t> query(words);
        for (auto& w : memory) w = rng.next();
        for (auto& w : query) w = rng.next();
        // Duplicate a row occasionally so distance ties occur.
        if (rows > 1 && trial % 3 == 0) {
            std::copy(memory.begin(), memory.begin() + static_cast<std::ptrdiff_t>(words),
                      memory.begin() + static_cast<std::ptrdiff_t>((rows - 1) * words));
        }
        std::uint64_t ref_distance = 0;
        const std::size_t ref = simd::hamming_argmin_reference(
            query.data(), memory.data(), words, rows, &ref_distance);
        for (const kernels::kernel_table* backend : admissible_backends()) {
            std::uint64_t distance = 0;
            const std::size_t got = backend->hamming_argmin(
                query.data(), memory.data(), words, rows, &distance);
            EXPECT_EQ(got, ref) << "backend=" << backend->name;
            EXPECT_EQ(distance, ref_distance) << "backend=" << backend->name;
        }
    }
}

TEST(SimdKernels, PrefixArgminAndExtendEveryBackendMatchReference) {
    xoshiro256ss rng(131);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t row_words = 2 + rng.next() % 24;
        const std::size_t prefix = 1 + rng.next() % row_words;
        const std::size_t rows = 1 + rng.next() % 12;
        std::vector<std::uint64_t> memory(row_words * rows);
        std::vector<std::uint64_t> query(row_words);
        for (auto& w : memory) w = rng.next();
        for (auto& w : query) w = rng.next();

        const auto ref = simd::hamming_argmin2_prefix_reference(
            query.data(), memory.data(), row_words, prefix, rows);
        std::vector<std::uint64_t> ref_extended(rows, 5); // += semantics
        simd::hamming_extend_words_reference(query.data(), memory.data(), row_words,
                                             prefix / 2, prefix, rows,
                                             ref_extended.data());

        for (const kernels::kernel_table* backend : admissible_backends()) {
            const auto got = backend->hamming_argmin2_prefix(
                query.data(), memory.data(), row_words, prefix, rows);
            EXPECT_EQ(got.index, ref.index) << "backend=" << backend->name;
            EXPECT_EQ(got.distance, ref.distance) << "backend=" << backend->name;
            EXPECT_EQ(got.runner_up, ref.runner_up) << "backend=" << backend->name;

            std::vector<std::uint64_t> extended(rows, 5);
            backend->hamming_extend_words(query.data(), memory.data(), row_words,
                                          prefix / 2, prefix, rows, extended.data());
            EXPECT_EQ(extended, ref_extended) << "backend=" << backend->name;
        }
    }
}

TEST(SimdKernels, BlockedDotKernelsEveryBackendBitIdentical) {
    xoshiro256ss rng(122);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 1 + rng.next() % 500;
        std::vector<std::int32_t> a(n);
        std::vector<std::int32_t> b(n);
        for (auto& v : a) v = static_cast<std::int32_t>(rng.next() % 20001) - 10000;
        for (auto& v : b) v = static_cast<std::int32_t>(rng.next() % 20001) - 10000;
        double naive_dot = 0.0;
        double naive_sq = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            naive_dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
            naive_sq += static_cast<double>(a[i]) * static_cast<double>(a[i]);
        }
        // Lane-split accumulation reorders the rounding, so compare to the
        // naive loop with a relative tolerance...
        const double portable_dot = simd::dot_i32(a.data(), b.data(), n);
        const double portable_sq = simd::sum_squares_i32(a.data(), n);
        const double scale = std::max(1.0, std::abs(naive_dot));
        EXPECT_NEAR(portable_dot, naive_dot, 1e-9 * scale);
        EXPECT_NEAR(portable_sq, naive_sq, 1e-9 * std::max(1.0, naive_sq));
        // ...but every backend runs the identical fixed-lane algorithm, so
        // across backends the doubles must agree bit-for-bit.
        for (const kernels::kernel_table* backend : admissible_backends()) {
            EXPECT_EQ(backend->dot_i32(a.data(), b.data(), n), portable_dot)
                << "backend=" << backend->name;
            EXPECT_EQ(backend->sum_squares_i32(a.data(), n), portable_sq)
                << "backend=" << backend->name;
        }
    }
}

TEST(SimdKernels, MaskedSumEveryBackendMatchesNaive) {
    xoshiro256ss rng(55);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.next() % 300;
        std::vector<std::uint64_t> mask((n + 63) / 64, 0);
        std::vector<std::int32_t> values(n);
        std::int64_t expected = 0;
        for (std::size_t i = 0; i < n; ++i) {
            values[i] = static_cast<std::int32_t>(rng.next()) % 1000;
            if (rng.next() % 2 == 0) {
                mask[i / 64] |= std::uint64_t{1} << (i % 64);
                expected += values[i];
            }
        }
        for (const kernels::kernel_table* backend : admissible_backends()) {
            EXPECT_EQ(backend->masked_sum_i32(mask.data(), values.data(), n), expected)
                << "backend=" << backend->name;
        }
        EXPECT_EQ(kernels::masked_sum_i32(mask.data(), values.data(), n), expected);
    }
}

// --- encoder equivalence over randomized configurations -------------------

struct encoder_case {
    core::uhd_config cfg;
    data::image_shape shape;
};

encoder_case random_case(xoshiro256ss& rng) {
    encoder_case c;
    const std::size_t dims[] = {64, 128, 192, 256};
    const unsigned levels[] = {4, 8, 16, 32};
    c.cfg.dim = dims[rng.next() % 4];
    c.cfg.quant_levels = levels[rng.next() % 4];
    c.cfg.scramble = rng.next() % 2 == 0;
    c.cfg.policy = rng.next() % 2 == 0 ? core::binarize_policy::mean_intensity
                                       : core::binarize_policy::half_inputs;
    c.cfg.sobol_seed = 1 + rng.next() % 1000;
    const std::size_t side = 4 + rng.next() % 4; // 4x4 .. 7x7 images
    c.shape = {side, side, 1};
    return c;
}

TEST(EncoderEquivalence, WordParallelMatchesScalarOracleAcross100Configs) {
    xoshiro256ss rng(2024);
    for (int config_i = 0; config_i < 100; ++config_i) {
        const encoder_case c = random_case(rng);
        const core::uhd_encoder enc(c.cfg, c.shape);
        for (int image_i = 0; image_i < 3; ++image_i) {
            const auto image = random_bytes(c.shape.pixels(), 255, rng);
            std::vector<std::int32_t> fast(enc.dim());
            std::vector<std::int32_t> oracle(enc.dim());
            enc.encode(image, fast);
            enc.encode_scalar(image, oracle);
            ASSERT_EQ(fast, oracle)
                << "config " << config_i << ": dim=" << c.cfg.dim
                << " levels=" << c.cfg.quant_levels << " scramble=" << c.cfg.scramble
                << " backend=" << kernels::active().name;
        }
    }
}

TEST(EncoderEquivalence, MonotoneFastMatchesGateExactUnaryPath) {
    xoshiro256ss rng(7);
    for (int config_i = 0; config_i < 10; ++config_i) {
        const encoder_case c = random_case(rng);
        const core::uhd_encoder enc(c.cfg, c.shape);
        const auto image = random_bytes(c.shape.pixels(), 255, rng);
        std::vector<std::int32_t> fast(enc.dim());
        std::vector<std::int32_t> gates(enc.dim());
        enc.encode_unary(image, fast, core::unary_fidelity::monotone_fast);
        enc.encode_unary(image, gates, core::unary_fidelity::gate_exact);
        ASSERT_EQ(fast, gates);
    }
}

TEST(EncoderEquivalence, EncodeBatchMatchesPerImageEncode) {
    const core::uhd_config cfg{.dim = 128};
    const data::image_shape shape{6, 6, 1};
    const core::uhd_encoder enc(cfg, shape);
    xoshiro256ss rng(99);

    const std::size_t count = 17;
    std::vector<std::uint8_t> images;
    for (std::size_t i = 0; i < count; ++i) {
        const auto img = random_bytes(shape.pixels(), 255, rng);
        images.insert(images.end(), img.begin(), img.end());
    }

    std::vector<std::int32_t> batched(count * enc.dim());
    enc.encode_batch(images, count, batched);

    for (std::size_t i = 0; i < count; ++i) {
        std::vector<std::int32_t> single(enc.dim());
        enc.encode(std::span<const std::uint8_t>(images).subspan(i * shape.pixels(),
                                                                 shape.pixels()),
                   single);
        const auto slot = std::span<const std::int32_t>(batched)
                              .subspan(i * enc.dim(), enc.dim());
        ASSERT_TRUE(std::equal(single.begin(), single.end(), slot.begin()));
    }

    // Pooled batches are bit-identical regardless of worker count.
    for (const std::size_t threads : {1u, 2u, 4u}) {
        thread_pool pool(threads);
        std::vector<std::int32_t> pooled(count * enc.dim());
        enc.encode_batch(images, count, pooled, &pool);
        ASSERT_EQ(batched, pooled) << "threads=" << threads;
    }
}

TEST(EncoderEquivalence, DatasetBatchOverloadMatchesFlatOverload) {
    const auto ds = data::make_synthetic_digits(12, 5);
    const core::uhd_config cfg{.dim = 128};
    const core::uhd_encoder enc(cfg, ds.shape());

    std::vector<std::int32_t> from_dataset(ds.size() * enc.dim());
    enc.encode_batch(ds, from_dataset);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        std::vector<std::int32_t> single(enc.dim());
        enc.encode(ds.image(i), single);
        const auto slot = std::span<const std::int32_t>(from_dataset)
                              .subspan(i * enc.dim(), enc.dim());
        ASSERT_TRUE(std::equal(single.begin(), single.end(), slot.begin()));
    }
}

TEST(BatchClassifier, PredictBatchAndEvaluateAreThreadCountInvariant) {
    const auto train = data::make_synthetic_digits(60, 5);
    const auto test = data::make_synthetic_digits(30, 6);
    const core::uhd_config cfg{.dim = 256};
    const core::uhd_encoder enc(cfg, train.shape());
    // Both query modes must be thread-count invariant: integer (blocked dot
    // kernels) and binarized (packed associative-memory engine).
    for (const hdc::query_mode qm :
         {hdc::query_mode::integer, hdc::query_mode::binarized}) {
        hdc::hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(),
                                                  hdc::train_mode::raw_sums, qm);
        clf.fit(train);

        const std::vector<std::size_t> serial = clf.predict_batch(test);
        const double serial_accuracy = clf.evaluate(test);
        for (const std::size_t threads : {1u, 2u, 3u, 4u}) {
            thread_pool pool(threads);
            EXPECT_EQ(clf.predict_batch(test, &pool), serial) << "threads=" << threads;
            data::confusion_matrix serial_matrix(test.num_classes());
            data::confusion_matrix pooled_matrix(test.num_classes());
            EXPECT_DOUBLE_EQ(clf.evaluate(test, &serial_matrix),
                             clf.evaluate(test, &pooled_matrix, &pool));
            for (std::size_t t = 0; t < test.num_classes(); ++t) {
                for (std::size_t p = 0; p < test.num_classes(); ++p) {
                    EXPECT_EQ(serial_matrix.count(t, p), pooled_matrix.count(t, p));
                }
            }
            EXPECT_DOUBLE_EQ(clf.evaluate(test, nullptr, &pool), serial_accuracy);
        }
    }
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
        thread_pool pool(threads);
        for (const std::size_t n : {0u, 1u, 7u, 1000u}) {
            std::vector<int> hits(n, 0);
            pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) ++hits[i];
            });
            EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                                    [](int h) { return h == 1; }))
                << "threads=" << threads << " n=" << n;
        }
    }
}

TEST(ThreadPool, EnvThreadsClampsNegativeAndGarbage) {
    // Regression: UHD_THREADS=-1 used to be cast through size_t, requesting
    // ~2^64 workers. Non-positive or unparsable values must fall back to 0
    // (= hardware concurrency).
    const char* saved = std::getenv("UHD_THREADS");
    const std::string saved_value = saved != nullptr ? saved : "";

    ::setenv("UHD_THREADS", "-1", 1);
    EXPECT_EQ(thread_pool::env_threads(), 0u);
    ::setenv("UHD_THREADS", "-9999999999999", 1);
    EXPECT_EQ(thread_pool::env_threads(), 0u);
    ::setenv("UHD_THREADS", "garbage", 1);
    EXPECT_EQ(thread_pool::env_threads(), 0u);
    // Absurd positive requests (including strtoll overflow saturation)
    // must not ask the pool to actually spawn that many workers.
    ::setenv("UHD_THREADS", "1000000000", 1);
    EXPECT_EQ(thread_pool::env_threads(), 0u);
    ::setenv("UHD_THREADS", "999999999999999999999999", 1);
    EXPECT_EQ(thread_pool::env_threads(), 0u);
    ::setenv("UHD_THREADS", "", 1);
    EXPECT_EQ(thread_pool::env_threads(), 0u);
    ::setenv("UHD_THREADS", "3", 1);
    EXPECT_EQ(thread_pool::env_threads(), 3u);
    ::unsetenv("UHD_THREADS");
    EXPECT_EQ(thread_pool::env_threads(), 0u);

    if (saved != nullptr) {
        ::setenv("UHD_THREADS", saved_value.c_str(), 1);
    }
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
    thread_pool pool(2);
    EXPECT_THROW(pool.parallel_for(100,
                                   [](std::size_t begin, std::size_t) {
                                       if (begin == 0) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

} // namespace
