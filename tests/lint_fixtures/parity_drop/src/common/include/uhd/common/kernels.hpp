// Fixture: miniature kernel registry header. Mirrors the real
// uhd/common/kernels.hpp shape the kernel-table-parity rule parses.
#ifndef FIXTURE_UHD_COMMON_KERNELS_HPP
#define FIXTURE_UHD_COMMON_KERNELS_HPP

#include <cstddef>
#include <cstdint>

namespace uhd::kernels {

struct kernel_table {
    const char* name;
    bool (*supported)(int features);
    void (*alpha)(const std::uint8_t* q, std::size_t n);
    std::uint64_t (*beta)(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n);
    void (*geq_rematerialize_accumulate)(const std::uint32_t* directions,
                                         std::size_t dir_words,
                                         const std::uint32_t* bounds,
                                         std::size_t npix, std::int32_t* out);
};

const kernel_table& active();

} // namespace uhd::kernels

#endif // FIXTURE_UHD_COMMON_KERNELS_HPP
