// Fixture: SEEDED VIOLATION — the registry lists an avx2 backend whose
// translation unit does not exist. kernel-table-parity must fire on the
// registry entry (in addition to the dropped slot in kernels_swar.cpp).
#include "uhd/common/kernels.hpp"

namespace uhd::kernels {

namespace detail {
const kernel_table& scalar_table();
const kernel_table& swar_table();
const kernel_table& avx2_table();
} // namespace detail

namespace {

const kernel_table* const registry[] = {
    &detail::scalar_table(),
    &detail::swar_table(),
    &detail::avx2_table(),
};

} // namespace

const kernel_table& active() { return *registry[0]; }

} // namespace uhd::kernels
