// Fixture: pinned scalar oracle backend TU.
#include "uhd/common/kernels.hpp"

namespace uhd::kernels::detail {

namespace {

bool supported(int) { return true; }

void alpha(const std::uint8_t*, std::size_t) {}

std::uint64_t beta(const std::uint64_t*, const std::uint64_t*, std::size_t) {
    return 0;
}

void geq_rematerialize_accumulate(const std::uint32_t*, std::size_t,
                                  const std::uint32_t*, std::size_t,
                                  std::int32_t*) {}

constexpr kernel_table table{
    "scalar", supported,
    alpha,    beta,
    geq_rematerialize_accumulate,
};

} // namespace

const kernel_table& scalar_table() { return table; }

} // namespace uhd::kernels::detail
