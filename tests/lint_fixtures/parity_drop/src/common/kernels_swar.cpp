// Fixture: SEEDED VIOLATION — the `beta` kernel slot was dropped from
// this backend (definition and initializer entry). kernel-table-parity
// must fire: initializer arity mismatch + missing member.
#include "uhd/common/kernels.hpp"

namespace uhd::kernels::detail {

namespace {

bool supported(int) { return true; }

void alpha(const std::uint8_t*, std::size_t) {}

constexpr kernel_table table{
    "swar", supported,
    alpha,
};

} // namespace

const kernel_table& swar_table() { return table; }

} // namespace uhd::kernels::detail
