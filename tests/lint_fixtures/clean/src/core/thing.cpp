// Fixture: a portable TU that (correctly) routes through the dispatch
// layer instead of naming any backend table.
#include "uhd/core/thing.hpp"

#include "uhd/common/kernels.hpp"

namespace uhd::core {

std::uint64_t reduce(const thing& t) {
    return kernels::active().beta(t.words.data(), t.words.data(),
                                  t.words.size());
}

} // namespace uhd::core
