// Fixture: a clean portable public header — guarded, self-contained.
// The comment below must NOT trip isa-hermeticity: prose mentioning an
// #ifdef __AVX2__ block is exactly what the lexer strips before scanning.
#ifndef FIXTURE_UHD_CORE_THING_HPP
#define FIXTURE_UHD_CORE_THING_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uhd::core {

struct thing {
    std::vector<std::uint64_t> words;
    std::size_t count = 0;
};

std::uint64_t reduce(const thing& t);

} // namespace uhd::core

#endif // FIXTURE_UHD_CORE_THING_HPP
