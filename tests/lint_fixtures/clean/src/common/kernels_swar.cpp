// Fixture: portable word-parallel backend TU.
#include "uhd/common/kernels.hpp"

namespace uhd::kernels::detail {

namespace {

bool supported(int) { return true; }

void alpha(const std::uint8_t*, std::size_t) {}

std::uint64_t beta(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc += a[i] ^ b[i];
    return acc;
}

constexpr kernel_table table{
    "swar", supported,
    alpha,  beta,
};

} // namespace

const kernel_table& swar_table() { return table; }

} // namespace uhd::kernels::detail
