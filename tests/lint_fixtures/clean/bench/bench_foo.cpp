// Fixture: a bench emitting the documented schema version.
#include <cstdio>

int main() {
    std::FILE* f = std::fopen("BENCH_foo.json", "w");
    if (f == nullptr) return 1;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"foo\",\n");
    std::fprintf(f, "  \"schema_version\": 1,\n");
    std::fprintf(f, "  \"value\": 42\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    return 0;
}
