// Fixture: miniature backend registry (two backends, scalar is the
// pinned oracle). The parity rule reads the detail::<name>_table list.
#include "uhd/common/kernels.hpp"

namespace uhd::kernels {

namespace detail {
const kernel_table& scalar_table();
const kernel_table& swar_table();
} // namespace detail

namespace {

const kernel_table* const registry[] = {
    &detail::scalar_table(),
    &detail::swar_table(),
};

} // namespace

const kernel_table& active() { return *registry[0]; }

} // namespace uhd::kernels
