// Fixture: SEEDED VIOLATION — a portable TU bypassing the dispatch layer:
// it names the backend detail namespace / table accessor directly and
// repins the process-wide backend. dispatch-only must fire on both.
#include "uhd/common/kernels.hpp"

namespace uhd::kernels {
void force_backend(const char*);
}

namespace uhd::core {

std::uint64_t bad_reduce(const std::uint64_t* a, std::size_t n) {
    uhd::kernels::force_backend("swar");
    return uhd::kernels::detail::swar_table().beta(a, a, n);
}

} // namespace uhd::core
