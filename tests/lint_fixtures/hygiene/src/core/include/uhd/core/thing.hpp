// Fixture: SEEDED VIOLATION — a public header with no include guard that
// uses std::string and std::vector without including <string>/<vector>.
// header-hygiene must fire on the missing guard and both missing includes.
#include <cstddef>

namespace uhd::core {

struct thing {
    std::string label;
    std::vector<int> values;
    std::size_t count = 0;
};

} // namespace uhd::core
