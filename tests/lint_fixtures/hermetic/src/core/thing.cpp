// Fixture: SEEDED VIOLATION — a portable TU guarded by __AVX2__ and
// calling an _mm256 intrinsic. isa-hermeticity must fire on both, and
// must NOT fire on this comment even though it says __AVX2__ (stripped
// before scanning), nor on the string literal below.
#include "uhd/core/thing.hpp"

namespace uhd::core {

const char* backend_name() { return "__AVX2__ (not a violation: string)"; }

std::uint64_t reduce(const std::uint64_t* words, std::size_t n) {
    std::uint64_t acc = 0;
#if defined(__AVX2__)
    (void)_mm256_setzero_si256();
#endif
    for (std::size_t i = 0; i < n; ++i) acc += words[i];
    return acc;
}

} // namespace uhd::core
