// Fixture: SEEDED VIOLATION — a portable public header pulling in the
// intrinsics header. isa-hermeticity must fire on the include line.
#ifndef FIXTURE_UHD_CORE_THING_HPP
#define FIXTURE_UHD_CORE_THING_HPP

#include <cstddef>
#include <cstdint>
#include <immintrin.h>

namespace uhd::core {

std::uint64_t reduce(const std::uint64_t* words, std::size_t n);

} // namespace uhd::core

#endif // FIXTURE_UHD_CORE_THING_HPP
