// Wire front-end tests: frame codec round-trips, loopback end-to-end
// bit-identity against the snapshot oracle, per-request routing over the
// wire, online partial_fit, stats/ping — and the frame-fuzz suite
// (truncated headers, oversized lengths, bad magic/opcodes, byte-split
// pipelined reads, random garbage) asserting the server never crashes
// and always answers malformed input with a clean error frame or a
// disconnect. The server+engine suites here also run under TSan in CI.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/dynamic_query.hpp"
#include "uhd/hdc/inference_snapshot.hpp"
#include "uhd/net/socket.hpp"
#include "uhd/net/wire_client.hpp"
#include "uhd/net/wire_format.hpp"
#include "uhd/net/wire_server.hpp"
#include "uhd/serve/inference_engine.hpp"

namespace {

using namespace uhd;
using namespace uhd::net;

constexpr long recv_timeout_ms = 20000; // fail fast, never hang the suite

/// Small deterministic serving fixture: model + engine + running server.
struct server_fixture {
    data::dataset train = data::make_synthetic_digits(120, 91);
    data::dataset test = data::make_synthetic_digits(40, 92);
    core::uhd_model model;
    std::optional<serve::inference_engine> engine;
    std::optional<wire_server> server;

    explicit server_fixture(bool dynamic = false,
                            wire_server_options options = {},
                            std::size_t dim = 512, bool off_loop_raw = false)
        : model(make_config(dim), train.shape(), train.num_classes(),
                hdc::train_mode::raw_sums, hdc::query_mode::binarized) {
        model.fit(train);
        serve::engine_options engine_options;
        // off_loop_raw routes raw-feature frames through the engine's
        // batched encode stage; otherwise the server encodes inline on
        // the reactor (the trainer provides the encoder).
        if (off_loop_raw) engine_options.encoder = &model.encoder();
        if (dynamic) {
            engine.emplace(model.snapshot(),
                           model.calibrate_dynamic(train, 0.95),
                           engine_options);
        } else {
            engine.emplace(model.snapshot(), engine_options);
        }
        server.emplace(*engine, options, &model);
        server->start();
    }

    static core::uhd_config make_config(std::size_t dim) {
        core::uhd_config cfg;
        cfg.dim = dim;
        return cfg;
    }

    [[nodiscard]] wire_client connect() const {
        wire_client client("127.0.0.1", server->port());
        client.set_recv_timeout_ms(recv_timeout_ms);
        return client;
    }

    [[nodiscard]] std::vector<std::int32_t> encoded_query(std::size_t i) const {
        std::vector<std::int32_t> out(model.encoder().dim());
        model.encoder().encode(test.image(i % test.size()), out);
        return out;
    }
};

/// Raw socket helper for the fuzz suites: exact bytes, no client logic.
struct raw_connection {
    socket_fd sock;

    explicit raw_connection(std::uint16_t port)
        : sock(connect_tcp("127.0.0.1", port)) {
        timeval tv{};
        tv.tv_sec = recv_timeout_ms / 1000;
        EXPECT_EQ(::setsockopt(sock.get(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                               sizeof(tv)),
                  0);
    }

    void send_all(std::span<const std::uint8_t> bytes) {
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n = ::send(sock.get(), bytes.data() + sent,
                                     bytes.size() - sent, MSG_NOSIGNAL);
            ASSERT_GT(n, 0);
            sent += static_cast<std::size_t>(n);
        }
    }

    /// Read until EOF or timeout; returns everything received.
    std::vector<std::uint8_t> drain() {
        std::vector<std::uint8_t> out;
        std::uint8_t chunk[4096];
        while (true) {
            const ssize_t n = ::recv(sock.get(), chunk, sizeof(chunk), 0);
            if (n <= 0) break;
            out.insert(out.end(), chunk, chunk + n);
        }
        return out;
    }
};

/// Parse the first complete frame out of a byte stream (test-side).
std::optional<wire_frame> first_frame(const std::vector<std::uint8_t>& bytes) {
    if (bytes.size() < wire_header_size) return std::nullopt;
    wire_frame frame;
    frame.header = decode_header(bytes.data());
    if (bytes.size() < wire_header_size + frame.header.payload_len) {
        return std::nullopt;
    }
    frame.payload.assign(bytes.begin() + wire_header_size,
                         bytes.begin() + wire_header_size +
                             frame.header.payload_len);
    return frame;
}

// --- codec ----------------------------------------------------------------

TEST(WireFormat, HeaderRoundTripsEveryField) {
    std::uint8_t raw[wire_header_size];
    encode_header(raw, static_cast<std::uint8_t>(opcode::predict), 0xDEADBEEF,
                  0x01020304);
    const frame_header h = decode_header(raw);
    EXPECT_EQ(h.magic, wire_magic);
    EXPECT_EQ(h.version, wire_version);
    EXPECT_EQ(h.op, static_cast<std::uint8_t>(opcode::predict));
    EXPECT_EQ(h.request_id, 0xDEADBEEFu);
    EXPECT_EQ(h.payload_len, 0x01020304u);
    // Little-endian on the wire, byte for byte.
    EXPECT_EQ(raw[0], 0x48); // 'H'
    EXPECT_EQ(raw[1], 0x75); // 'u'
    EXPECT_EQ(raw[4], 0xEF);
    EXPECT_EQ(raw[8], 0x04);
}

TEST(WireFormat, ScalarHelpersRoundTrip) {
    std::uint8_t buf[8];
    store_u64(buf, 0x0123456789ABCDEFull);
    EXPECT_EQ(load_u64(buf), 0x0123456789ABCDEFull);
    store_u32(buf, 0xFEDCBA98u);
    EXPECT_EQ(load_u32(buf), 0xFEDCBA98u);
    store_u16(buf, 0xBEEF);
    EXPECT_EQ(load_u16(buf), 0xBEEF);
    // Negative int32 accumulators survive the u32 transport cast.
    store_u32(buf, static_cast<std::uint32_t>(-12345));
    EXPECT_EQ(static_cast<std::int32_t>(load_u32(buf)), -12345);
}

TEST(WireFormat, StatsReplyRoundTrips) {
    stats_reply in;
    in.queries = 1;
    in.batches = 2;
    in.kernel_calls = 3;
    in.snapshot_swaps = 4;
    in.max_batch_observed = 5;
    in.snapshot_version = 6;
    in.connections_accepted = 7;
    in.connections_active = 8;
    in.frames_in = 9;
    in.frames_out = 10;
    in.bytes_in = 11;
    in.bytes_out = 12;
    in.malformed_frames = 13;
    in.throttle_events = 14;
    in.reactors = 15;
    in.raw_queries = 16;
    in.encode_kernel_calls = 17;
    std::uint8_t raw[stats_reply_size];
    encode_stats_reply(raw, in);
    const auto out = parse_stats_reply(std::span<const std::uint8_t>(raw));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->queries, 1u);
    EXPECT_EQ(out->snapshot_version, 6u);
    EXPECT_EQ(out->throttle_events, 14u);
    EXPECT_EQ(out->reactors, 15u);
    EXPECT_EQ(out->raw_queries, 16u);
    EXPECT_EQ(out->encode_kernel_calls, 17u);
    EXPECT_FALSE(
        parse_stats_reply(std::span<const std::uint8_t>(raw, 8)).has_value());
}

// --- end-to-end correctness ----------------------------------------------

TEST(WireServer, PredictAnswersBitIdenticalToSnapshotOracle) {
    const server_fixture fx;
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    wire_client client = fx.connect();
    for (std::size_t i = 0; i < fx.test.size(); ++i) {
        const auto encoded = fx.encoded_query(i);
        const predict_reply reply = client.predict_encoded(encoded);
        EXPECT_EQ(reply.label, oracle.predict_encoded(encoded)) << "query " << i;
        EXPECT_EQ(reply.snapshot_version, oracle.version());
    }
}

TEST(WireServer, RawFeaturePredictMatchesEncodedPredict) {
    const server_fixture fx;
    wire_client client = fx.connect();
    for (std::size_t i = 0; i < 10; ++i) {
        const predict_reply raw = client.predict_raw(fx.test.image(i));
        const predict_reply encoded = client.predict_encoded(fx.encoded_query(i));
        EXPECT_EQ(raw.label, encoded.label) << "query " << i;
    }
}

TEST(WireServer, RawPredictThroughOffLoopEncodeStageMatchesOracle) {
    // Engine configured with the encoder: raw frames are batch-encoded by
    // the serve workers (one encode_batch per drained micro-batch), not
    // inline on the reactor — answers must still be bit-identical.
    const server_fixture fx(false, {}, 512, /*off_loop_raw=*/true);
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    wire_client client = fx.connect();
    for (std::size_t i = 0; i < fx.test.size(); ++i) {
        const predict_reply reply = client.predict_raw(fx.test.image(i));
        EXPECT_EQ(reply.label, oracle.predict_encoded(fx.encoded_query(i)))
            << "query " << i;
    }
    // The encode stage accounted its work, and the counters surface over
    // the wire (schema: 17-field stats reply).
    const stats_reply stats = client.stats();
    EXPECT_EQ(stats.raw_queries, fx.test.size());
    EXPECT_GE(stats.encode_kernel_calls, 1u);
    EXPECT_LE(stats.encode_kernel_calls, stats.raw_queries);
    EXPECT_EQ(stats.reactors, 1u);
}

TEST(WireServer, WireRoutingMatchesBothDirectPathsOnAPolicyServer) {
    // predict and predict_dynamic on the SAME connection against a
    // policy-configured engine: the wire opcodes select full-scan vs
    // cascade per request, each bit-identical to its direct path.
    const server_fixture fx(/*dynamic=*/true);
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    const hdc::dynamic_query_policy policy =
        fx.model.calibrate_dynamic(fx.train, 0.95);
    const std::size_t words = oracle.words_per_class();
    wire_client client = fx.connect();
    std::vector<std::uint64_t> packed(words);
    std::vector<std::size_t> answer(1);
    for (std::size_t i = 0; i < fx.test.size(); ++i) {
        const auto encoded = fx.encoded_query(i);
        const predict_reply full = client.predict_encoded(encoded, false);
        EXPECT_EQ(full.label, oracle.predict_encoded(encoded));
        const predict_reply cascade = client.predict_encoded(encoded, true);
        kernels::sign_binarize(encoded.data(), encoded.size(), packed.data());
        policy.answer_block(oracle, packed, 1, answer);
        EXPECT_EQ(cascade.label, answer[0]) << "query " << i;
    }
}

TEST(WireServer, DynamicOpcodeOnAPlainEngineGetsUnsupported) {
    const server_fixture fx(/*dynamic=*/false);
    wire_client client = fx.connect();
    EXPECT_THROW((void)client.predict_encoded(fx.encoded_query(0), true),
                 uhd::error);
    // Request-level error: the connection survives and keeps serving.
    const predict_reply reply = client.predict_encoded(fx.encoded_query(0));
    EXPECT_EQ(reply.label, fx.model.snapshot().predict_encoded(fx.encoded_query(0)));
}

TEST(WireServer, PartialFitUpdatesTheServedModel) {
    wire_server_options options;
    options.publish_every = 1; // publish every fit: versions must move
    const server_fixture fx(false, options);
    wire_client client = fx.connect();
    const std::uint64_t version_before = client.stats().snapshot_version;
    const data::dataset stream = data::make_synthetic_digits(16, 93);
    std::uint64_t updates = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const partial_fit_reply reply = client.partial_fit(
            static_cast<std::uint32_t>(stream.label(i)), stream.image(i));
        EXPECT_EQ(reply.updates, ++updates);
        EXPECT_GT(reply.snapshot_version, version_before);
    }
    // The served snapshot now answers like the trained model: the fixture
    // model was trained through the wire, so compare against it directly.
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    for (std::size_t i = 0; i < 10; ++i) {
        const auto encoded = fx.encoded_query(i);
        EXPECT_EQ(client.predict_encoded(encoded).label,
                  oracle.predict_encoded(encoded));
    }
    // Bad label: clean error frame, connection lives.
    EXPECT_THROW((void)client.partial_fit(1000, stream.image(0)), uhd::error);
    client.ping();
}

TEST(WireServer, StatsAndPingReportServerCounters) {
    const server_fixture fx;
    wire_client client = fx.connect();
    client.ping();
    const std::size_t queries = 5;
    for (std::size_t i = 0; i < queries; ++i) {
        (void)client.predict_encoded(fx.encoded_query(i));
    }
    const stats_reply stats = client.stats();
    EXPECT_GE(stats.queries, queries);
    EXPECT_GE(stats.frames_in, queries + 1);
    EXPECT_GE(stats.frames_out, queries + 1);
    EXPECT_GT(stats.bytes_in, 0u);
    EXPECT_GT(stats.bytes_out, 0u);
    EXPECT_EQ(stats.connections_active, 1u);
    EXPECT_EQ(stats.connections_accepted, 1u);
    EXPECT_EQ(stats.malformed_frames, 0u);
    EXPECT_EQ(stats.snapshot_version, fx.model.snapshot().version());
}

TEST(WireServer, PipelinedBurstAnswersEveryRequestInOrder) {
    const server_fixture fx;
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    wire_client client = fx.connect();
    const std::size_t burst_size = 64;
    std::vector<std::uint8_t> burst;
    std::vector<std::size_t> expected(burst_size);
    for (std::size_t i = 0; i < burst_size; ++i) {
        const auto encoded = fx.encoded_query(i);
        append_predict_encoded(burst, opcode::predict,
                               static_cast<std::uint32_t>(i), encoded);
        expected[i] = oracle.predict_encoded(encoded);
    }
    client.send_bytes(burst);
    for (std::size_t i = 0; i < burst_size; ++i) {
        const wire_frame reply = client.read_frame();
        EXPECT_EQ(reply.header.op, reply_opcode(opcode::predict));
        ASSERT_LT(reply.header.request_id, burst_size);
        const auto parsed = parse_predict_reply(reply.payload);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->label, expected[reply.header.request_id]);
    }
}

TEST(WireServer, SmallInflightCapStillAnswersEverything) {
    // Cap far below the pipelining depth: the server throttles reads
    // instead of dropping or deadlocking, and every request answers.
    wire_server_options options;
    options.inflight_cap = 2;
    const server_fixture fx(false, options);
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    wire_client client = fx.connect();
    const std::size_t burst_size = 128;
    std::vector<std::uint8_t> burst;
    std::vector<std::size_t> expected(burst_size);
    for (std::size_t i = 0; i < burst_size; ++i) {
        const auto encoded = fx.encoded_query(i);
        append_predict_encoded(burst, opcode::predict,
                               static_cast<std::uint32_t>(i), encoded);
        expected[i] = oracle.predict_encoded(encoded);
    }
    client.send_bytes(burst);
    std::size_t answered = 0;
    for (std::size_t i = 0; i < burst_size; ++i) {
        const wire_frame reply = client.read_frame();
        const auto parsed = parse_predict_reply(reply.payload);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->label, expected[reply.header.request_id]);
        ++answered;
    }
    EXPECT_EQ(answered, burst_size);
}

TEST(WireServer, ServesManyConnectionsConcurrently) {
    const server_fixture fx;
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    constexpr std::size_t n_threads = 4;
    constexpr std::size_t per_thread = 50;
    std::vector<std::thread> threads;
    std::atomic<std::size_t> mismatches{0};
    for (std::size_t t = 0; t < n_threads; ++t) {
        threads.emplace_back([&, t] {
            wire_client client = fx.connect();
            for (std::size_t q = 0; q < per_thread; ++q) {
                const auto encoded = fx.encoded_query(t * 13 + q);
                if (client.predict_encoded(encoded).label !=
                    oracle.predict_encoded(encoded)) {
                    mismatches.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0u);
}

TEST(WireServer, StopWithInflightRequestsShutsDownCleanly) {
    // Shutdown while pipelined requests are in flight: stop() must wait
    // out engine callbacks (no use-after-free) and never hang.
    server_fixture fx;
    wire_client client = fx.connect();
    std::vector<std::uint8_t> burst;
    for (std::size_t i = 0; i < 64; ++i) {
        append_predict_encoded(burst, opcode::predict,
                               static_cast<std::uint32_t>(i),
                               fx.encoded_query(i));
    }
    client.send_bytes(burst);
    fx.server->stop(); // races the in-flight answers on purpose
    fx.server.reset();
    fx.engine.reset();
}

// --- frame fuzzing --------------------------------------------------------

TEST(WireFuzz, BadMagicGetsErrorFrameThenDisconnect) {
    const server_fixture fx;
    raw_connection conn(fx.server->port());
    std::vector<std::uint8_t> frame;
    append_frame(frame, static_cast<std::uint8_t>(opcode::ping), 7, {});
    frame[0] = 0x00; // corrupt the magic
    conn.send_all(frame);
    const auto bytes = conn.drain(); // server replies then closes (EOF)
    const auto reply = first_frame(bytes);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.op, op_error);
    ASSERT_GE(reply->payload.size(), 2u);
    EXPECT_EQ(load_u16(reply->payload.data()),
              static_cast<std::uint16_t>(wire_error::bad_magic));
}

TEST(WireFuzz, BadVersionGetsErrorFrameThenDisconnect) {
    const server_fixture fx;
    raw_connection conn(fx.server->port());
    std::vector<std::uint8_t> frame;
    append_frame(frame, static_cast<std::uint8_t>(opcode::ping), 8, {});
    frame[2] = 0x7F; // future protocol version
    conn.send_all(frame);
    const auto reply = first_frame(conn.drain());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.op, op_error);
    EXPECT_EQ(load_u16(reply->payload.data()),
              static_cast<std::uint16_t>(wire_error::bad_version));
}

TEST(WireFuzz, OversizedPayloadLengthGetsErrorFrameThenDisconnect) {
    const server_fixture fx;
    raw_connection conn(fx.server->port());
    std::uint8_t header[wire_header_size];
    encode_header(header, static_cast<std::uint8_t>(opcode::predict), 9,
                  0xFFFFFFFF); // 4 GiB payload claim, no body
    conn.send_all(std::span<const std::uint8_t>(header, sizeof(header)));
    const auto reply = first_frame(conn.drain());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.op, op_error);
    EXPECT_EQ(load_u16(reply->payload.data()),
              static_cast<std::uint16_t>(wire_error::oversized));
}

TEST(WireFuzz, UnknownOpcodeAndBadPayloadKeepTheConnectionAlive) {
    const server_fixture fx;
    wire_client client = fx.connect();
    // Unknown opcode -> error frame, stream continues.
    std::vector<std::uint8_t> junk;
    append_frame(junk, 0x42, 1, {});
    client.send_bytes(junk);
    wire_frame reply = client.read_frame();
    EXPECT_EQ(reply.header.op, op_error);
    EXPECT_EQ(load_u16(reply.payload.data()),
              static_cast<std::uint16_t>(wire_error::bad_opcode));
    // Wrong-size predict payload -> error frame, stream continues.
    junk.clear();
    const std::uint8_t short_payload[3] = {
        static_cast<std::uint8_t>(query_kind::encoded), 1, 2};
    append_frame(junk, static_cast<std::uint8_t>(opcode::predict), 2,
                 short_payload);
    client.send_bytes(junk);
    reply = client.read_frame();
    EXPECT_EQ(reply.header.op, op_error);
    EXPECT_EQ(load_u16(reply.payload.data()),
              static_cast<std::uint16_t>(wire_error::bad_payload));
    // Unknown query kind -> error frame, stream continues.
    junk.clear();
    const std::uint8_t bad_kind[1] = {0x77};
    append_frame(junk, static_cast<std::uint8_t>(opcode::predict), 3, bad_kind);
    client.send_bytes(junk);
    reply = client.read_frame();
    EXPECT_EQ(reply.header.op, op_error);
    EXPECT_EQ(load_u16(reply.payload.data()),
              static_cast<std::uint16_t>(wire_error::bad_payload));
    // The connection still serves real traffic after all that.
    const predict_reply good = client.predict_encoded(fx.encoded_query(0));
    EXPECT_EQ(good.label, fx.model.snapshot().predict_encoded(fx.encoded_query(0)));
    client.ping();
}

TEST(WireFuzz, TruncatedFrameThenEofDisconnectsWithoutAReply) {
    const server_fixture fx;
    std::vector<std::uint8_t> frame;
    append_predict_encoded(frame, opcode::predict, 1, fx.encoded_query(0));
    {
        // Half a header, then EOF.
        raw_connection conn(fx.server->port());
        conn.send_all(std::span<const std::uint8_t>(frame.data(), 6));
        ::shutdown(conn.sock.get(), SHUT_WR);
        EXPECT_TRUE(conn.drain().empty()); // no reply, clean close
    }
    {
        // Full header, partial payload, then EOF.
        raw_connection conn(fx.server->port());
        conn.send_all(
            std::span<const std::uint8_t>(frame.data(), frame.size() - 3));
        ::shutdown(conn.sock.get(), SHUT_WR);
        EXPECT_TRUE(conn.drain().empty());
    }
    // The server is still healthy.
    wire_client client = fx.connect();
    client.ping();
}

TEST(WireFuzz, ByteAtATimeDeliveryHitsEverySplitBoundary) {
    // A pipelined multi-frame stream delivered one byte per send():
    // every possible partial-read boundary inside headers and payloads.
    const server_fixture fx;
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    wire_client client = fx.connect();
    std::vector<std::uint8_t> stream;
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < 3; ++i) {
        const auto encoded = fx.encoded_query(i);
        append_predict_encoded(stream, opcode::predict,
                               static_cast<std::uint32_t>(i), encoded);
        expected.push_back(oracle.predict_encoded(encoded));
    }
    std::vector<std::uint8_t> ping_probe;
    append_frame(ping_probe, static_cast<std::uint8_t>(opcode::ping), 99, {});
    stream.insert(stream.end(), ping_probe.begin(), ping_probe.end());
    for (const std::uint8_t byte : stream) {
        client.send_bytes(std::span<const std::uint8_t>(&byte, 1));
    }
    // The pong is answered inline on the loop thread and may overtake the
    // engine-routed predict replies; match replies by request_id instead
    // of arrival order (predict replies do stay in submission order).
    bool saw_pong = false;
    std::size_t predicts = 0;
    for (std::size_t r = 0; r < 4; ++r) {
        const wire_frame reply = client.read_frame();
        if (reply.header.op == reply_opcode(opcode::ping)) {
            EXPECT_EQ(reply.header.request_id, 99u);
            saw_pong = true;
            continue;
        }
        EXPECT_EQ(reply.header.op, reply_opcode(opcode::predict));
        EXPECT_EQ(reply.header.request_id, predicts);
        const auto parsed = parse_predict_reply(reply.payload);
        ASSERT_TRUE(parsed.has_value());
        ASSERT_LT(reply.header.request_id, expected.size());
        EXPECT_EQ(parsed->label, expected[reply.header.request_id]);
        ++predicts;
    }
    EXPECT_TRUE(saw_pong);
    EXPECT_EQ(predicts, 3u);
}

TEST(WireFuzz, RawFramesByteAtATimeHitEverySplitBoundary) {
    // The raw opcode under the frame fuzzer, through the off-loop encode
    // stage: pipelined raw-feature frames delivered one byte per send()
    // must reassemble and answer bit-identically.
    const server_fixture fx(false, {}, 512, /*off_loop_raw=*/true);
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    wire_client client = fx.connect();
    std::vector<std::uint8_t> stream;
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < 3; ++i) {
        append_predict_raw(stream, opcode::predict,
                           static_cast<std::uint32_t>(i), fx.test.image(i));
        expected.push_back(oracle.predict_encoded(fx.encoded_query(i)));
    }
    for (const std::uint8_t byte : stream) {
        client.send_bytes(std::span<const std::uint8_t>(&byte, 1));
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const wire_frame reply = client.read_frame();
        EXPECT_EQ(reply.header.op, reply_opcode(opcode::predict));
        EXPECT_EQ(reply.header.request_id, i);
        const auto parsed = parse_predict_reply(reply.payload);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->label, expected[i]);
    }
}

TEST(WireFuzz, RawPredictWithWrongPixelCountGetsBadPayload) {
    // Wrong `pixels` length is a request-level error on BOTH raw paths
    // (off-loop encode stage and inline reactor encode): error frame,
    // connection lives.
    for (const bool off_loop : {false, true}) {
        const server_fixture fx(false, {}, 512, off_loop);
        wire_client client = fx.connect();
        const std::size_t pixels = fx.test.image(0).size();
        for (const std::size_t bad_len : {pixels - 1, pixels + 7,
                                          std::size_t{0}}) {
            std::vector<std::uint8_t> junk;
            const std::vector<std::uint8_t> body(bad_len, 0x40);
            append_predict_raw(junk, opcode::predict, 5, body);
            client.send_bytes(junk);
            const wire_frame reply = client.read_frame();
            EXPECT_EQ(reply.header.op, op_error) << "off_loop=" << off_loop;
            EXPECT_EQ(load_u16(reply.payload.data()),
                      static_cast<std::uint16_t>(wire_error::bad_payload));
        }
        // Correctly-sized raw traffic still answers on the same stream.
        const predict_reply good = client.predict_raw(fx.test.image(0));
        EXPECT_EQ(good.label,
                  fx.model.snapshot().predict_encoded(fx.encoded_query(0)));
    }
}

TEST(WireFuzz, RawPredictOnAnEncoderlessServerGetsUnsupported) {
    // No trainer, no server-side encoder, engine without the off-loop
    // stage: raw frames are valid protocol the server cannot serve.
    data::dataset train = data::make_synthetic_digits(120, 91);
    core::uhd_model model(server_fixture::make_config(512), train.shape(),
                          train.num_classes(), hdc::train_mode::raw_sums,
                          hdc::query_mode::binarized);
    model.fit(train);
    serve::inference_engine engine(model.snapshot());
    wire_server server(engine, {}, /*trainer=*/nullptr);
    server.start();
    wire_client client("127.0.0.1", server.port());
    client.set_recv_timeout_ms(recv_timeout_ms);
    std::vector<std::uint8_t> frame;
    append_predict_raw(frame, opcode::predict, 1, train.image(0));
    client.send_bytes(frame);
    const wire_frame reply = client.read_frame();
    EXPECT_EQ(reply.header.op, op_error);
    EXPECT_EQ(load_u16(reply.payload.data()),
              static_cast<std::uint16_t>(wire_error::unsupported));
    // Pre-encoded traffic is unaffected.
    std::vector<std::int32_t> encoded(model.encoder().dim());
    model.encoder().encode(train.image(0), encoded);
    EXPECT_EQ(client.predict_encoded(encoded).label,
              model.snapshot().predict_encoded(encoded));
    server.stop();
}

TEST(WireFuzz, SeededRandomGarbageNeverCrashesTheServer) {
    const server_fixture fx;
    std::mt19937 rng(20240814);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    std::uniform_int_distribution<int> len_dist(1, 512);
    for (int round = 0; round < 32; ++round) {
        raw_connection conn(fx.server->port());
        std::vector<std::uint8_t> garbage(
            static_cast<std::size_t>(len_dist(rng)));
        for (auto& b : garbage) b = static_cast<std::uint8_t>(byte_dist(rng));
        conn.send_all(garbage);
        ::shutdown(conn.sock.get(), SHUT_WR);
        (void)conn.drain(); // error frame, a reply, or just EOF — no hang
    }
    // After 32 rounds of garbage the server still answers correctly.
    wire_client client = fx.connect();
    const auto encoded = fx.encoded_query(0);
    EXPECT_EQ(client.predict_encoded(encoded).label,
              fx.model.snapshot().predict_encoded(encoded));
    const stats_reply stats = client.stats();
    EXPECT_GT(stats.malformed_frames, 0u);
}

} // namespace
