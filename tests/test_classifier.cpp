// Tests for the generic centroid classifier over both encoders, including
// training modes, query modes, online updates, and retraining.
#include <gtest/gtest.h>

#include "uhd/common/error.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/classifier.hpp"

namespace {

using namespace uhd;
using namespace uhd::hdc;

data::dataset tiny_digits(std::size_t count, std::uint64_t seed) {
    return data::make_synthetic_digits(count, seed);
}

TEST(Classifier, UhdLearnsAboveChance) {
    const auto train = tiny_digits(200, 1);
    const auto test = tiny_digits(100, 2);
    core::uhd_config cfg;
    cfg.dim = 512;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums,
                                         query_mode::integer);
    clf.fit(train);
    EXPECT_GT(clf.evaluate(test), 0.4); // chance is 0.1
}

TEST(Classifier, BaselineLearnsAboveChance) {
    const auto train = tiny_digits(200, 1);
    const auto test = tiny_digits(100, 2);
    baseline_config cfg;
    cfg.dim = 512;
    const baseline_encoder enc(cfg, train.shape());
    hd_classifier<baseline_encoder> clf(enc, 10);
    clf.fit(train);
    EXPECT_GT(clf.evaluate(test), 0.4);
}

TEST(Classifier, AllModeCombinationsProduceValidAccuracy) {
    const auto train = tiny_digits(100, 3);
    const auto test = tiny_digits(50, 4);
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, train.shape());
    for (const train_mode tm : {train_mode::binarized_images, train_mode::raw_sums}) {
        for (const query_mode qm : {query_mode::binarized, query_mode::integer}) {
            hd_classifier<core::uhd_encoder> clf(enc, 10, tm, qm);
            clf.fit(train);
            const double accuracy = clf.evaluate(test);
            EXPECT_GE(accuracy, 0.0);
            EXPECT_LE(accuracy, 1.0);
            EXPECT_GT(accuracy, 0.1); // above chance for every combination
        }
    }
}

TEST(Classifier, PredictionsAreDeterministic) {
    const auto train = tiny_digits(80, 5);
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> a(enc, 10);
    hd_classifier<core::uhd_encoder> b(enc, 10);
    a.fit(train);
    b.fit(train);
    for (std::size_t i = 0; i < train.size(); ++i) {
        EXPECT_EQ(a.predict(train.image(i)), b.predict(train.image(i)));
    }
}

TEST(Classifier, PartialFitAddsKnowledge) {
    const auto train = tiny_digits(60, 6);
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums,
                                         query_mode::integer);
    // Online training: one sample at a time (the paper's "dynamic" angle).
    for (std::size_t i = 0; i < train.size(); ++i) {
        clf.partial_fit(train.image(i), train.label(i));
    }
    EXPECT_GT(clf.evaluate(train), 0.4);
}

/// Encoder adapter that counts encode() calls — the classifier is generic
/// over the encoder, so this measures exactly how many times retrain and
/// friends hit the (expensive) encode path.
struct counting_encoder {
    const core::uhd_encoder* inner;
    mutable std::size_t encodes = 0;

    [[nodiscard]] std::size_t dim() const { return inner->dim(); }
    void encode(std::span<const std::uint8_t> image,
                std::span<std::int32_t> out) const {
        ++encodes;
        inner->encode(image, out);
    }
};

TEST(Classifier, RetrainEncodesEachImageExactlyOncePerEpoch) {
    const auto train = tiny_digits(120, 19);
    core::uhd_config cfg;
    cfg.dim = 64; // small D so some images stay misclassified
    const core::uhd_encoder enc(cfg, train.shape());
    const counting_encoder counted{&enc};
    hd_classifier<counting_encoder> clf(counted, 10, train_mode::raw_sums,
                                        query_mode::integer);
    clf.fit(train);
    counted.encodes = 0;
    const std::size_t updates = clf.retrain(train, 1);
    // The seed path encoded every misclassified image twice (once inside
    // predict, once again for the update).
    EXPECT_GT(updates, 0u) << "workload too easy to exercise the regression";
    EXPECT_EQ(counted.encodes, train.size());
}

TEST(Classifier, RetrainMatchesSeedSemantics) {
    // The single-encode retrain must produce the same model as the seed
    // formulation (predict, then re-encode on a miss): same update
    // sequence, same predictions. Integer mode, where both formulations
    // compare queries against the live accumulators, is emulated exactly
    // through the public load_state surface.
    const auto train = tiny_digits(100, 20);
    core::uhd_config cfg;
    cfg.dim = 128;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> fast(enc, 10, train_mode::raw_sums,
                                          query_mode::integer);
    hd_classifier<core::uhd_encoder> seed(enc, 10, train_mode::raw_sums,
                                          query_mode::integer);
    fast.fit(train);
    seed.fit(train);
    fast.retrain(train, 2);
    // Seed-style epochs: predict (re-encoding internally), then encode
    // again for the update.
    std::vector<std::int32_t> scratch(enc.dim());
    for (int epoch = 0; epoch < 2; ++epoch) {
        std::size_t updates = 0;
        for (std::size_t i = 0; i < train.size(); ++i) {
            const std::size_t truth = train.label(i);
            const std::size_t predicted = seed.predict(train.image(i));
            if (predicted == truth) continue;
            enc.encode(train.image(i), scratch);
            ++updates;
            std::vector<accumulator> accs;
            for (std::size_t c = 0; c < 10; ++c) {
                accs.push_back(seed.class_accumulator(c));
            }
            accs[truth].add_values(scratch);
            accs[predicted].subtract_values(scratch);
            seed.load_state(std::move(accs));
        }
        if (updates == 0) break;
    }
    for (std::size_t i = 0; i < train.size(); ++i) {
        ASSERT_EQ(fast.predict(train.image(i)), seed.predict(train.image(i)))
            << "image " << i;
    }
}

TEST(Classifier, PartialFitKeepsEveryClassVectorConsistent) {
    // partial_fit re-binarizes only the touched class; after any interleaved
    // update sequence every class hypervector must still equal the sign of
    // its accumulator, and the packed memory row must match it.
    const auto train = tiny_digits(60, 18);
    core::uhd_config cfg;
    cfg.dim = 200; // non-multiple-of-64
    const core::uhd_encoder enc(cfg, train.shape());
    for (const train_mode tm : {train_mode::raw_sums, train_mode::binarized_images}) {
        hd_classifier<core::uhd_encoder> clf(enc, 10, tm, query_mode::binarized);
        for (std::size_t i = 0; i < train.size(); ++i) {
            clf.partial_fit(train.image(i), train.label(i));
        }
        for (std::size_t c = 0; c < 10; ++c) {
            EXPECT_EQ(clf.class_hypervector(c), clf.class_accumulator(c).sign())
                << "class " << c;
            const auto row = clf.packed_class_memory().row(c);
            const auto words = clf.class_hypervector(c).bits().words();
            for (std::size_t w = 0; w < row.size(); ++w) {
                EXPECT_EQ(row[w], words[w]) << "class " << c << " word " << w;
            }
        }
    }
}

TEST(Classifier, RetrainDoesNotDegradeTrainAccuracy) {
    const auto train = tiny_digits(150, 7);
    core::uhd_config cfg;
    cfg.dim = 512;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums,
                                         query_mode::integer);
    clf.fit(train);
    const double before = clf.evaluate(train);
    clf.retrain(train, 3);
    const double after = clf.evaluate(train);
    EXPECT_GE(after, before - 0.05);
}

TEST(Classifier, ClassVectorsHaveCorrectGeometry) {
    const auto train = tiny_digits(50, 8);
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    for (std::size_t c = 0; c < 10; ++c) {
        EXPECT_EQ(clf.class_hypervector(c).dim(), 256u);
        EXPECT_EQ(clf.class_accumulator(c).dim(), 256u);
    }
    EXPECT_THROW((void)clf.class_hypervector(10), uhd::error);
    EXPECT_GT(clf.memory_bytes(), 0u);
}

TEST(Classifier, LoadStateRestoresModel) {
    const auto train = tiny_digits(60, 9);
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> original(enc, 10);
    original.fit(train);

    std::vector<accumulator> state;
    for (std::size_t c = 0; c < 10; ++c) state.push_back(original.class_accumulator(c));
    hd_classifier<core::uhd_encoder> restored(enc, 10);
    restored.load_state(std::move(state));
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(restored.predict(train.image(i)), original.predict(train.image(i)));
    }
}

TEST(Classifier, LoadStateValidation) {
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, {28, 28, 1});
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    EXPECT_THROW(clf.load_state(std::vector<accumulator>(3, accumulator(256))),
                 uhd::error);
    EXPECT_THROW(clf.load_state(std::vector<accumulator>(10, accumulator(64))),
                 uhd::error);
}

TEST(Classifier, RejectsTooFewClasses) {
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, {28, 28, 1});
    EXPECT_THROW((hd_classifier<core::uhd_encoder>(enc, 1)), uhd::error);
}

TEST(Classifier, EvaluateEmptyThrows) {
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, {28, 28, 1});
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    data::dataset empty(data::image_shape{28, 28, 1}, 10);
    EXPECT_THROW((void)clf.evaluate(empty), uhd::error);
}

TEST(Classifier, ConfusionMatrixFilledDuringEvaluate) {
    const auto train = tiny_digits(100, 10);
    const auto test = tiny_digits(40, 11);
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    data::confusion_matrix matrix(10);
    const double accuracy = clf.evaluate(test, &matrix);
    EXPECT_EQ(matrix.total(), test.size());
    EXPECT_NEAR(matrix.accuracy(), accuracy, 1e-12);
}

} // namespace
