// Tests for the unary sorting networks (paper reference [16]): the two-gate
// compare-and-swap law, Batcher network structure, and sorting/median
// correctness over exhaustive and randomized value sets.
#include <gtest/gtest.h>

#include <algorithm>

#include "uhd/bitstream/sorting.hpp"
#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"

namespace {

using namespace uhd::bs;

std::vector<std::size_t> decode_all(const std::vector<bitstream>& streams) {
    std::vector<std::size_t> values;
    for (const auto& s : streams) values.push_back(unary_decode(s));
    return values;
}

TEST(CompareSwap, TwoGatesComputeMinMax) {
    const auto [mn, mx] = compare_swap(unary_encode(3, 8), unary_encode(6, 8));
    EXPECT_EQ(unary_decode(mn), 3u);
    EXPECT_EQ(unary_decode(mx), 6u);
}

TEST(Network, KnownSizesForPowersOfTwo) {
    // Batcher odd-even merge sort sizes: n=2 ->1, n=4 ->5, n=8 ->19, n=16 ->63.
    EXPECT_EQ(network_size(2), 1u);
    EXPECT_EQ(network_size(4), 5u);
    EXPECT_EQ(network_size(8), 19u);
    EXPECT_EQ(network_size(16), 63u);
}

TEST(Network, KnownDepths) {
    // Depths: n=2 ->1, n=4 ->3, n=8 ->6, n=16 ->10.
    EXPECT_EQ(network_depth(2), 1u);
    EXPECT_EQ(network_depth(4), 3u);
    EXPECT_EQ(network_depth(8), 6u);
    EXPECT_EQ(network_depth(16), 10u);
}

TEST(Network, StagesNeverReuseALane) {
    for (const std::size_t lanes : {2u, 5u, 8u, 13u, 16u}) {
        for (const auto& stage : odd_even_merge_network(lanes)) {
            std::vector<bool> used(lanes, false);
            for (const auto& [lo, hi] : stage) {
                EXPECT_LT(lo, hi);
                EXPECT_FALSE(used[lo]);
                EXPECT_FALSE(used[hi]);
                used[lo] = true;
                used[hi] = true;
            }
        }
    }
}

class SortingLanes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortingLanes, SortsRandomValueSets) {
    const std::size_t lanes = GetParam();
    uhd::xoshiro256ss rng(lanes * 7919);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<bitstream> streams;
        std::vector<std::size_t> reference;
        for (std::size_t i = 0; i < lanes; ++i) {
            const auto v = static_cast<std::size_t>(rng.next_below(17));
            streams.push_back(unary_encode(v, 16));
            reference.push_back(v);
        }
        std::sort(reference.begin(), reference.end());
        EXPECT_EQ(decode_all(unary_sort(std::move(streams))), reference);
    }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, SortingLanes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16));

TEST(Sorting, OutputsRemainValidThermometerCodes) {
    // The 0-1 principle in action: AND/OR of thermometer codes stays a
    // thermometer code, so the sorted lanes are valid unary streams.
    std::vector<bitstream> streams = {unary_encode(9, 16), unary_encode(2, 16),
                                      unary_encode(16, 16), unary_encode(0, 16)};
    for (const auto& s : unary_sort(std::move(streams))) {
        EXPECT_TRUE(is_unary(s));
    }
}

TEST(Sorting, ExhaustiveThreeLanes) {
    for (std::size_t a = 0; a <= 4; ++a) {
        for (std::size_t b = 0; b <= 4; ++b) {
            for (std::size_t c = 0; c <= 4; ++c) {
                std::vector<bitstream> streams = {unary_encode(a, 4), unary_encode(b, 4),
                                                  unary_encode(c, 4)};
                std::vector<std::size_t> reference = {a, b, c};
                std::sort(reference.begin(), reference.end());
                EXPECT_EQ(decode_all(unary_sort(std::move(streams))), reference);
            }
        }
    }
}

TEST(Median, PicksMiddleValue) {
    const std::vector<bitstream> streams = {unary_encode(9, 16), unary_encode(1, 16),
                                            unary_encode(5, 16), unary_encode(13, 16),
                                            unary_encode(5, 16)};
    EXPECT_EQ(unary_decode(unary_median(streams)), 5u);
}

TEST(Median, RequiresOddCount) {
    const std::vector<bitstream> streams = {unary_encode(1, 8), unary_encode(2, 8)};
    EXPECT_THROW((void)unary_median(streams), uhd::error);
}

TEST(Sorting, Validation) {
    EXPECT_THROW((void)unary_sort({}), uhd::error);
    std::vector<bitstream> mismatched = {unary_encode(1, 8), unary_encode(1, 9)};
    EXPECT_THROW((void)unary_sort(std::move(mismatched)), uhd::error);
}

} // namespace
