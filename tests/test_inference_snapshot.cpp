// Tests for the immutable inference snapshot: bit-identity with the
// classifier's read paths per backend, copy independence under continued
// training, online-update equality with a sequential classifier, and the
// model save/load roundtrip through the snapshot type.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/hdc/inference_snapshot.hpp"

namespace {

using namespace uhd;
using namespace uhd::hdc;

/// RAII reset: tests that force a backend must leave the process on the
/// environment-selected one (see test_backend_dispatch).
struct backend_reset {
    ~backend_reset() {
        const std::string_view env = kernels::backend_override();
        kernels::force_backend(env.empty() ? "auto" : env);
    }
};

core::uhd_encoder make_encoder(const data::dataset& set, std::size_t dim = 512) {
    core::uhd_config cfg;
    cfg.dim = dim;
    return core::uhd_encoder(cfg, set.shape());
}

std::vector<std::int32_t> encode_one(const core::uhd_encoder& enc,
                                     const data::dataset& set, std::size_t i) {
    std::vector<std::int32_t> out(enc.dim());
    enc.encode(set.image(i), out);
    return out;
}

TEST(InferenceSnapshot, MatchesClassifierPredictionsBothModes) {
    const auto train = data::make_synthetic_digits(150, 51);
    const auto test = data::make_synthetic_digits(60, 52);
    const auto enc = make_encoder(train);
    for (const query_mode qm : {query_mode::binarized, query_mode::integer}) {
        hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums, qm);
        clf.fit(train);
        const inference_snapshot snap = clf.snapshot();
        EXPECT_EQ(snap.mode(), qm);
        EXPECT_EQ(snap.dim(), enc.dim());
        EXPECT_EQ(snap.classes(), 10u);
        for (std::size_t i = 0; i < test.size(); ++i) {
            const auto encoded = encode_one(enc, test, i);
            EXPECT_EQ(snap.predict_encoded(encoded), clf.predict_encoded(encoded))
                << "mode=" << static_cast<int>(qm) << " query=" << i;
        }
    }
}

TEST(InferenceSnapshot, MatchesDynamicCascadeAnswersAndStats) {
    const auto train = data::make_synthetic_digits(150, 53);
    const auto test = data::make_synthetic_digits(60, 54);
    const auto enc = make_encoder(train, 1024);
    hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::binarized_images,
                                         query_mode::binarized);
    clf.fit(train);
    const dynamic_query_policy policy = clf.calibrate_dynamic(train, 0.95);
    const inference_snapshot snap = clf.snapshot();
    for (std::size_t i = 0; i < test.size(); ++i) {
        const auto encoded = encode_one(enc, test, i);
        dynamic_query_stats from_snap{};
        dynamic_query_stats from_clf{};
        EXPECT_EQ(snap.predict_dynamic_encoded(encoded, policy, &from_snap),
                  clf.predict_dynamic_encoded(encoded, policy, &from_clf));
        EXPECT_EQ(from_snap.exit_stage, from_clf.exit_stage);
        EXPECT_EQ(from_snap.words_scanned, from_clf.words_scanned);
    }
}

TEST(InferenceSnapshot, PolicySnapshotOverloadsMatchClassMemoryOnes) {
    const auto train = data::make_synthetic_digits(100, 55);
    const auto enc = make_encoder(train, 1024);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    const inference_snapshot snap = clf.snapshot();
    const dynamic_query_policy from_mem =
        dynamic_query_policy::ladder(clf.packed_class_memory());
    const dynamic_query_policy from_snap = dynamic_query_policy::ladder(snap);
    ASSERT_EQ(from_mem.stages().size(), from_snap.stages().size());
    for (std::size_t s = 0; s < from_mem.stages().size(); ++s) {
        EXPECT_EQ(from_mem.stages()[s].window_words,
                  from_snap.stages()[s].window_words);
    }
    // answer() through the snapshot overload equals the class_memory one.
    const auto encoded = encode_one(enc, train, 0);
    std::vector<std::uint64_t> words(kernels::sign_words(enc.dim()));
    kernels::sign_binarize(encoded.data(), encoded.size(), words.data());
    const dynamic_query_policy full = dynamic_query_policy::full_scan(snap);
    EXPECT_EQ(full.answer(snap, words), full.answer(snap.memory(), words));
    EXPECT_EQ(snap.predict_packed(words), snap.memory().nearest(words));
}

TEST(InferenceSnapshot, CopyIsIndependentOfContinuedTraining) {
    const auto train = data::make_synthetic_digits(150, 56);
    const auto more = data::make_synthetic_digits(150, 57);
    const auto test = data::make_synthetic_digits(40, 58);
    const auto enc = make_encoder(train);
    hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums,
                                         query_mode::binarized);
    clf.fit(train);
    const inference_snapshot before = clf.snapshot();

    // Record the frozen snapshot's answers, keep training, and require the
    // old copy to answer exactly as it did — while the live classifier may
    // have moved on.
    std::vector<std::size_t> frozen_answers;
    for (std::size_t i = 0; i < test.size(); ++i) {
        frozen_answers.push_back(before.predict_encoded(encode_one(enc, test, i)));
    }
    for (std::size_t i = 0; i < more.size(); ++i) {
        clf.partial_fit(more.image(i), more.label(i));
    }
    const inference_snapshot after = clf.snapshot();
    EXPECT_FALSE(before == after) << "training should have changed the state";
    EXPECT_GT(after.version(), before.version());
    for (std::size_t i = 0; i < test.size(); ++i) {
        EXPECT_EQ(before.predict_encoded(encode_one(enc, test, i)),
                  frozen_answers[i]);
        EXPECT_EQ(after.predict_encoded(encode_one(enc, test, i)),
                  clf.predict_encoded(encode_one(enc, test, i)));
    }
}

TEST(InferenceSnapshot, PublishedAfterOnlineUpdatesEqualsSequentialClassifier) {
    // The online-learning correctness bar: train two identical classifiers,
    // stream the same N partial_fit updates into both, and require the
    // "publisher"'s snapshot to equal the sequential classifier's snapshot
    // payload exactly — in both query modes.
    const auto base = data::make_synthetic_digits(100, 59);
    const auto stream = data::make_synthetic_digits(120, 60);
    const auto enc = make_encoder(base);
    for (const query_mode qm : {query_mode::binarized, query_mode::integer}) {
        hd_classifier<core::uhd_encoder> publisher(enc, 10, train_mode::raw_sums, qm);
        hd_classifier<core::uhd_encoder> sequential(enc, 10, train_mode::raw_sums, qm);
        publisher.fit(base);
        sequential.fit(base);
        for (std::size_t i = 0; i < stream.size(); ++i) {
            publisher.partial_fit(stream.image(i), stream.label(i));
            sequential.partial_fit(stream.image(i), stream.label(i));
            if (i % 13 == 0) {
                // Publish points: every copy equals the sequential state.
                EXPECT_TRUE(publisher.snapshot() == sequential.snapshot())
                    << "diverged at update " << i;
            }
        }
        EXPECT_TRUE(publisher.snapshot() == sequential.snapshot());
    }
}

TEST(InferenceSnapshot, VersionCountsMutations) {
    const auto train = data::make_synthetic_digits(60, 61);
    const auto enc = make_encoder(train, 256);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    const std::uint64_t v0 = clf.snapshot().version();
    clf.fit(train);
    const std::uint64_t v1 = clf.snapshot().version();
    EXPECT_GT(v1, v0);
    clf.partial_fit(train.image(0), train.label(0));
    EXPECT_GT(clf.snapshot().version(), v1);
    // Copies carry the version they were stamped with.
    const inference_snapshot snap = clf.snapshot();
    EXPECT_EQ(snap.version(), clf.snapshot().version());
}

TEST(InferenceSnapshot, EqualityIgnoresVersionComparesPayload) {
    const auto train = data::make_synthetic_digits(60, 62);
    const auto enc = make_encoder(train, 256);
    hd_classifier<core::uhd_encoder> a(enc, 10);
    hd_classifier<core::uhd_encoder> b(enc, 10);
    a.fit(train);
    b.fit(train);
    // Extra no-op-to-the-payload finalizes bump b's version only.
    b.load_state([&] {
        std::vector<accumulator> accs;
        for (std::size_t c = 0; c < 10; ++c) accs.push_back(b.class_accumulator(c));
        return accs;
    }());
    EXPECT_NE(a.snapshot().version(), b.snapshot().version());
    EXPECT_TRUE(a.snapshot() == b.snapshot());
}

TEST(InferenceSnapshot, BinarizedSnapshotCarriesNoIntegerRows) {
    const auto train = data::make_synthetic_digits(60, 63);
    const auto enc = make_encoder(train, 256);
    hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums,
                                         query_mode::binarized);
    clf.fit(train);
    const inference_snapshot snap = clf.snapshot();
    EXPECT_TRUE(snap.class_values(0).empty());
    // Integer-mode snapshots do carry them (the read path needs them).
    hd_classifier<core::uhd_encoder> clf_int(enc, 10, train_mode::raw_sums,
                                             query_mode::integer);
    clf_int.fit(train);
    const inference_snapshot snap_int = clf_int.snapshot();
    ASSERT_EQ(snap_int.class_values(3).size(), enc.dim());
    const auto acc = clf_int.class_accumulator(3).values();
    for (std::size_t d = 0; d < enc.dim(); ++d) {
        EXPECT_EQ(snap_int.class_values(3)[d], acc[d]);
    }
}

// --- model save/load roundtrip through the snapshot type ------------------
//
// A loaded model's snapshot must be bit-identical to the saved model's:
// save() writes the accumulators (training state), load() re-finalizes,
// and the derived read state has to land on exactly the same packed rows,
// integer rows, and cached norms. This suite is registered in the
// forced-backend CTest matrix (*_scalar / *_swar), which is how the
// "under each forced backend" requirement runs in CI.

TEST(SnapshotRoundtrip, SaveLoadSnapshotBitIdenticalBothModes) {
    const auto train = data::make_synthetic_digits(120, 64);
    core::uhd_config cfg;
    cfg.dim = 512;
    const struct {
        hdc::train_mode tm;
        hdc::query_mode qm;
    } combos[] = {
        {hdc::train_mode::raw_sums, hdc::query_mode::integer},
        {hdc::train_mode::raw_sums, hdc::query_mode::binarized},
        {hdc::train_mode::binarized_images, hdc::query_mode::binarized},
    };
    for (const auto& combo : combos) {
        const core::uhd_model model =
            core::uhd_model::train(cfg, train, combo.tm, combo.qm);
        std::stringstream buffer;
        model.save(buffer);
        const core::uhd_model loaded = core::uhd_model::load(buffer);
        EXPECT_TRUE(loaded.snapshot() == model.snapshot())
            << "train_mode=" << static_cast<int>(combo.tm)
            << " query_mode=" << static_cast<int>(combo.qm);
    }
}

TEST(SnapshotRoundtrip, RoundtripBitIdenticalUnderEveryAdmissibleBackend) {
    // Belt and braces on top of the ctest env matrix: sweep the admissible
    // backends in-process and require the roundtrip identity under each,
    // plus cross-backend equality of the loaded snapshot (the read state is
    // a pure function of the data, whichever backend derived it).
    backend_reset reset;
    const auto train = data::make_synthetic_digits(100, 65);
    core::uhd_config cfg;
    cfg.dim = 512;
    std::vector<inference_snapshot> loaded_per_backend;
    for (const kernels::kernel_table* backend : kernels::admissible_backends()) {
        kernels::force_backend(backend->name);
        const core::uhd_model model = core::uhd_model::train(
            cfg, train, hdc::train_mode::raw_sums, hdc::query_mode::integer);
        std::stringstream buffer;
        model.save(buffer);
        const core::uhd_model loaded = core::uhd_model::load(buffer);
        EXPECT_TRUE(loaded.snapshot() == model.snapshot())
            << "backend=" << backend->name;
        loaded_per_backend.push_back(loaded.snapshot());
    }
    for (std::size_t b = 1; b < loaded_per_backend.size(); ++b) {
        EXPECT_TRUE(loaded_per_backend[b] == loaded_per_backend[0])
            << "backend " << b << " loaded a different snapshot than scalar";
    }
}

TEST(InferenceSnapshot, RejectsMismatchedQueries) {
    const auto train = data::make_synthetic_digits(60, 66);
    const auto enc = make_encoder(train, 256);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    const inference_snapshot snap = clf.snapshot();
    const std::vector<std::int32_t> wrong(128, 0);
    EXPECT_THROW((void)snap.predict_encoded(wrong), uhd::error);
    const std::vector<std::uint64_t> wrong_words(1, 0);
    EXPECT_THROW((void)snap.predict_packed(wrong_words), uhd::error);
}

} // namespace
