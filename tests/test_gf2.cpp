// Tests for GF(2) polynomial arithmetic and the primitive-polynomial search
// that replaces the Joe–Kuo direction-number tables.
#include <gtest/gtest.h>

#include "uhd/common/error.hpp"
#include "uhd/lowdisc/gf2.hpp"

namespace {

using namespace uhd::ld;

TEST(Gf2, Degree) {
    EXPECT_EQ(gf2_degree(0), -1);
    EXPECT_EQ(gf2_degree(1), 0);
    EXPECT_EQ(gf2_degree(0b10), 1);
    EXPECT_EQ(gf2_degree(0b1011), 3);
}

TEST(Gf2, CarrylessMultiply) {
    // (x + 1)(x + 1) = x^2 + 1 over GF(2).
    EXPECT_EQ(gf2_mul(0b11, 0b11), 0b101u);
    // (x^2 + x)(x + 1) = x^3 + x.
    EXPECT_EQ(gf2_mul(0b110, 0b11), 0b1010u);
    EXPECT_EQ(gf2_mul(0, 0b1011), 0u);
}

TEST(Gf2, Modulo) {
    // x^3 mod (x^2 + x + 1): x^3 = (x+1)(x^2+x+1) + 1 -> remainder 1.
    EXPECT_EQ(gf2_mod(0b1000, 0b111), 0b1u);
    EXPECT_EQ(gf2_mod(0b111, 0b111), 0u);
    EXPECT_EQ(gf2_mod(0b10, 0b111), 0b10u);
}

TEST(Gf2, MulModStaysBelowModulus) {
    const gf2_poly p = 0b1011; // x^3 + x + 1
    for (std::uint32_t a = 0; a < 8; ++a) {
        for (std::uint32_t b = 0; b < 8; ++b) {
            EXPECT_LT(gf2_mulmod(a, b, p), 8u);
        }
    }
}

TEST(Gf2, PowXMatchesRepeatedMultiplication) {
    const gf2_poly p = 0b1011;
    std::uint32_t x_power = 1;
    for (std::uint64_t e = 0; e < 14; ++e) {
        EXPECT_EQ(gf2_pow_x(e, p), x_power) << "e=" << e;
        x_power = gf2_mulmod(x_power, 0b10, p);
    }
}

TEST(Gf2, PrimeFactors) {
    EXPECT_EQ(prime_factors(2), (std::vector<std::uint64_t>{2}));
    EXPECT_EQ(prime_factors(12), (std::vector<std::uint64_t>{2, 3}));
    EXPECT_EQ(prime_factors(255), (std::vector<std::uint64_t>{3, 5, 17}));
    EXPECT_EQ(prime_factors(8191), (std::vector<std::uint64_t>{8191})); // Mersenne prime
    EXPECT_THROW((void)prime_factors(1), uhd::error);
}

TEST(Gf2, KnownPrimitivePolynomials) {
    EXPECT_TRUE(is_primitive(0b11));      // x + 1
    EXPECT_TRUE(is_primitive(0b111));     // x^2 + x + 1
    EXPECT_TRUE(is_primitive(0b1011));    // x^3 + x + 1
    EXPECT_TRUE(is_primitive(0b1101));    // x^3 + x^2 + 1
    EXPECT_TRUE(is_primitive(0b10011));   // x^4 + x + 1
    EXPECT_TRUE(is_primitive(0b100101));  // x^5 + x^2 + 1
}

TEST(Gf2, KnownNonPrimitivePolynomials) {
    // x^4 + x^3 + x^2 + x + 1 is irreducible but x has order 5 != 15.
    EXPECT_FALSE(is_primitive(0b11111));
    // x^2 + 1 = (x+1)^2 is reducible.
    EXPECT_FALSE(is_primitive(0b101));
    // Even constant term can never be primitive.
    EXPECT_FALSE(is_primitive(0b110));
    // Degree 0 is not primitive.
    EXPECT_FALSE(is_primitive(0b1));
}

TEST(Gf2, PrimitiveCountsPerDegreeMatchTheory) {
    // #primitive polynomials of degree n = phi(2^n - 1) / n.
    const std::vector<std::size_t> expected_by_degree = {1, 1, 2, 2, 6, 6, 18, 16};
    std::size_t total = 0;
    for (const std::size_t c : expected_by_degree) total += c;
    const auto polys = primitive_polynomials(total);
    std::vector<std::size_t> found(expected_by_degree.size(), 0);
    for (const gf2_poly p : polys) {
        const int degree = gf2_degree(p);
        ASSERT_GE(degree, 1);
        ASSERT_LE(degree, static_cast<int>(expected_by_degree.size()));
        ++found[static_cast<std::size_t>(degree - 1)];
    }
    for (std::size_t i = 0; i < expected_by_degree.size(); ++i) {
        EXPECT_EQ(found[i], expected_by_degree[i]) << "degree " << i + 1;
    }
}

TEST(Gf2, EnumerationIsSortedAndUnique) {
    const auto polys = primitive_polynomials(60);
    for (std::size_t i = 1; i < polys.size(); ++i) {
        // Sorted by (degree, value); strict inequality implies uniqueness.
        const int dp = gf2_degree(polys[i - 1]);
        const int dc = gf2_degree(polys[i]);
        EXPECT_TRUE(dp < dc || (dp == dc && polys[i - 1] < polys[i]));
    }
}

TEST(Gf2, EnoughDimensionsForLargestImages) {
    // 32x32 images need 1024 sequences -> 1023 polynomials + van der Corput.
    const auto polys = primitive_polynomials(1023);
    EXPECT_EQ(polys.size(), 1023u);
    for (const gf2_poly p : polys) EXPECT_TRUE(is_primitive(p));
}

TEST(Gf2, FirstPrimitiveOfDegree) {
    EXPECT_EQ(first_primitive_of_degree(1), 0b11u);
    EXPECT_EQ(first_primitive_of_degree(2), 0b111u);
    EXPECT_EQ(first_primitive_of_degree(3), 0b1011u);
    for (int d = 1; d <= 16; ++d) {
        EXPECT_TRUE(is_primitive(first_primitive_of_degree(d))) << "degree " << d;
    }
    EXPECT_THROW((void)first_primitive_of_degree(0), uhd::error);
}

} // namespace
