// Tests for the multi-query blocked inference path (query-GEMM): the block
// kernels against the pinned scalar oracle across every admissible backend
// (ragged query/row/word counts included), and the bit-identity of every
// block read path — nearest_block, the stage-synchronized block cascade,
// predict_block, predict_batch/evaluate, and the serve engine's one-call
// micro-batch drain — with its single-query counterpart.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "uhd/common/kernels.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/class_memory.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/hdc/dynamic_query.hpp"
#include "uhd/hdc/inference_snapshot.hpp"
#include "uhd/serve/inference_engine.hpp"

namespace {

using namespace uhd;
using namespace uhd::hdc;

/// RAII reset: leave the process on the environment-selected backend.
struct backend_reset {
    ~backend_reset() {
        const std::string_view env = kernels::backend_override();
        kernels::force_backend(env.empty() ? "auto" : env);
    }
};

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<std::uint64_t> out(n);
    for (std::uint64_t& w : out) w = rng();
    return out;
}

/// Independent in-test oracle: per-pair XOR+popcount, no kernels involved.
std::uint64_t pair_distance(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t from, std::size_t to) {
    std::uint64_t d = 0;
    for (std::size_t w = from; w < to; ++w) {
        d += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
    }
    return d;
}

// Ragged shapes: tails in every tile dimension (queries % 4, rows % 2,
// words % the 256/512-bit steps) plus the degenerate 1-query/1-row cases.
constexpr std::size_t kQueryCounts[] = {1, 3, 4, 5, 7, 8, 17};
constexpr std::size_t kRowCounts[] = {1, 2, 3, 5};
constexpr std::size_t kWordCounts[] = {1, 3, 8, 11, 19};

TEST(BlockKernels, BlockExtendMatchesPairOracleOnEveryAdmissibleBackend) {
    backend_reset reset;
    for (const kernels::kernel_table* backend : kernels::admissible_backends()) {
        kernels::force_backend(backend->name);
        std::uint64_t seed = 1;
        for (const std::size_t n_queries : kQueryCounts) {
            for (const std::size_t n_rows : kRowCounts) {
                for (const std::size_t words : kWordCounts) {
                    const auto queries = random_words(n_queries * words, ++seed);
                    const auto rows = random_words(n_rows * words, ++seed);
                    // Split the word range in two extends: the distances must
                    // accumulate exactly like the cascade uses them.
                    const std::size_t mid = words / 2;
                    std::vector<std::uint64_t> got(n_queries * n_rows, 7);
                    kernels::hamming_block_extend(queries.data(), words, n_queries,
                                                  rows.data(), words, 0, mid,
                                                  n_rows, got.data());
                    kernels::hamming_block_extend(queries.data(), words, n_queries,
                                                  rows.data(), words, mid, words,
                                                  n_rows, got.data());
                    for (std::size_t q = 0; q < n_queries; ++q) {
                        for (std::size_t r = 0; r < n_rows; ++r) {
                            EXPECT_EQ(got[q * n_rows + r],
                                      7 + pair_distance(queries.data() + q * words,
                                                        rows.data() + r * words, 0,
                                                        words))
                                << "backend=" << backend->name << " q=" << q
                                << " r=" << r << " words=" << words;
                        }
                    }
                }
            }
        }
    }
}

TEST(BlockKernels, BlockArgmin2MatchesSingleQueryOnEveryAdmissibleBackend) {
    backend_reset reset;
    for (const kernels::kernel_table* backend : kernels::admissible_backends()) {
        kernels::force_backend(backend->name);
        std::uint64_t seed = 100;
        for (const std::size_t n_queries : kQueryCounts) {
            for (const std::size_t n_rows : kRowCounts) {
                for (const std::size_t words : kWordCounts) {
                    // Prefix windows cover the cascade's stages: a short
                    // prefix, a mid one, and the full row.
                    for (const std::size_t prefix :
                         {std::size_t{1}, (words + 1) / 2, words}) {
                        const auto queries = random_words(n_queries * words, ++seed);
                        const auto rows = random_words(n_rows * words, ++seed);
                        std::vector<kernels::argmin2_result> got(n_queries);
                        kernels::hamming_block_argmin2_prefix(
                            queries.data(), words, n_queries, rows.data(), words,
                            prefix, n_rows, got.data());
                        for (std::size_t q = 0; q < n_queries; ++q) {
                            const kernels::argmin2_result want =
                                kernels::hamming_argmin2_prefix(
                                    queries.data() + q * words, rows.data(), words,
                                    prefix, n_rows);
                            EXPECT_EQ(got[q].index, want.index)
                                << "backend=" << backend->name << " q=" << q;
                            EXPECT_EQ(got[q].distance, want.distance);
                            EXPECT_EQ(got[q].runner_up, want.runner_up);
                        }
                    }
                }
            }
        }
    }
}

TEST(BlockKernels, TiedRowsResolveFirstWinsLikeTheSingleQueryPath) {
    backend_reset reset;
    // All-identical rows: every distance ties, so index must be 0 and the
    // runner-up must equal the winner for every backend and query slot.
    const std::size_t words = 9, n_rows = 5, n_queries = 6;
    const auto query_block = random_words(n_queries * words, 42);
    std::vector<std::uint64_t> rows(n_rows * words);
    const auto one_row = random_words(words, 43);
    for (std::size_t r = 0; r < n_rows; ++r) {
        std::copy(one_row.begin(), one_row.end(), rows.begin() + r * words);
    }
    for (const kernels::kernel_table* backend : kernels::admissible_backends()) {
        kernels::force_backend(backend->name);
        std::vector<kernels::argmin2_result> got(n_queries);
        kernels::hamming_block_argmin2_prefix(query_block.data(), words, n_queries,
                                              rows.data(), words, words, n_rows,
                                              got.data());
        for (std::size_t q = 0; q < n_queries; ++q) {
            EXPECT_EQ(got[q].index, 0u) << "backend=" << backend->name;
            EXPECT_EQ(got[q].runner_up, got[q].distance);
        }
    }
}

// --- block read paths -----------------------------------------------------

core::uhd_encoder make_encoder(const data::dataset& set, std::size_t dim) {
    core::uhd_config cfg;
    cfg.dim = dim;
    return core::uhd_encoder(cfg, set.shape());
}

TEST(BlockReadPaths, NearestBlockBitIdenticalToNearest) {
    backend_reset reset;
    const auto train = data::make_synthetic_digits(80, 31);
    const auto test = data::make_synthetic_digits(37, 32); // odd count: ragged
    const auto enc = make_encoder(train, 512);
    hd_classifier<core::uhd_encoder> clf(enc, train.num_classes());
    clf.fit(train);
    const class_memory& mem = clf.packed_class_memory();
    const std::size_t words = mem.words_per_class();

    // Pack the whole test set into one contiguous query block.
    std::vector<std::uint64_t> packed(test.size() * words);
    std::vector<std::int32_t> encoded(enc.dim());
    for (std::size_t i = 0; i < test.size(); ++i) {
        enc.encode(test.image(i), encoded);
        kernels::sign_binarize(encoded.data(), encoded.size(),
                               packed.data() + i * words);
    }
    for (const kernels::kernel_table* backend : kernels::admissible_backends()) {
        kernels::force_backend(backend->name);
        std::vector<std::size_t> got(test.size());
        std::vector<std::uint64_t> got_distances(test.size());
        mem.nearest_block(packed, test.size(), got, got_distances.data());
        for (std::size_t i = 0; i < test.size(); ++i) {
            std::uint64_t want_distance = 0;
            const std::size_t want = mem.nearest(
                std::span<const std::uint64_t>(packed.data() + i * words, words),
                &want_distance);
            EXPECT_EQ(got[i], want) << "backend=" << backend->name << " i=" << i;
            EXPECT_EQ(got_distances[i], want_distance);
        }
    }
}

TEST(BlockReadPaths, AnswerBlockBitIdenticalToAnswerIncludingStats) {
    backend_reset reset;
    const auto train = data::make_synthetic_digits(120, 33);
    const auto test = data::make_synthetic_digits(41, 34);
    const auto enc = make_encoder(train, 2048); // deep enough for a real ladder
    hd_classifier<core::uhd_encoder> clf(enc, train.num_classes());
    clf.fit(train);
    const class_memory& mem = clf.packed_class_memory();
    const std::size_t words = mem.words_per_class();
    const dynamic_query_policy policy = clf.calibrate_dynamic(train, 0.9);

    std::vector<std::uint64_t> packed(test.size() * words);
    std::vector<std::int32_t> encoded(enc.dim());
    for (std::size_t i = 0; i < test.size(); ++i) {
        enc.encode(test.image(i), encoded);
        kernels::sign_binarize(encoded.data(), encoded.size(),
                               packed.data() + i * words);
    }
    for (const kernels::kernel_table* backend : kernels::admissible_backends()) {
        kernels::force_backend(backend->name);
        std::vector<std::size_t> got(test.size());
        std::vector<dynamic_query_stats> got_stats(test.size());
        policy.answer_block(mem, packed, test.size(), got, got_stats);
        bool any_early = false;
        for (std::size_t i = 0; i < test.size(); ++i) {
            dynamic_query_stats want_stats;
            const std::size_t want = policy.answer(
                mem,
                std::span<const std::uint64_t>(packed.data() + i * words, words),
                &want_stats);
            EXPECT_EQ(got[i], want) << "backend=" << backend->name << " i=" << i;
            EXPECT_EQ(got_stats[i].exit_stage, want_stats.exit_stage);
            EXPECT_EQ(got_stats[i].window_words, want_stats.window_words);
            EXPECT_EQ(got_stats[i].words_scanned, want_stats.words_scanned);
            if (got_stats[i].exit_stage + 1 < policy.stages().size()) {
                any_early = true;
            }
        }
        // The calibrated ladder must actually exercise the compaction path
        // (mixed exits), or this test would only cover the all-survive case.
        EXPECT_TRUE(any_early) << "calibration produced no early exits";
    }
}

TEST(BlockReadPaths, PredictBlockMatchesPredictEncodedInBothModes) {
    backend_reset reset;
    const auto train = data::make_synthetic_digits(80, 35);
    const auto test = data::make_synthetic_digits(23, 36);
    const auto enc = make_encoder(train, 512);
    for (const query_mode mode : {query_mode::binarized, query_mode::integer}) {
        hd_classifier<core::uhd_encoder> clf(
            enc, train.num_classes(),
            mode == query_mode::integer ? train_mode::raw_sums
                                        : train_mode::binarized_images,
            mode);
        clf.fit(train);
        const inference_snapshot snap = clf.snapshot();
        std::vector<std::int32_t> block(test.size() * enc.dim());
        for (std::size_t i = 0; i < test.size(); ++i) {
            enc.encode(test.image(i),
                       std::span<std::int32_t>(block.data() + i * enc.dim(),
                                               enc.dim()));
        }
        std::vector<std::size_t> got(test.size());
        snap.predict_block(block, test.size(), got);
        for (std::size_t i = 0; i < test.size(); ++i) {
            EXPECT_EQ(got[i],
                      snap.predict_encoded(std::span<const std::int32_t>(
                          block.data() + i * enc.dim(), enc.dim())))
                << "mode=" << static_cast<int>(mode) << " i=" << i;
        }
    }
}

TEST(BlockReadPaths, PredictBatchAndEvaluateMatchPerImagePredict) {
    backend_reset reset;
    // 67 images: not a multiple of the 32-image block, so the ragged last
    // block of predict_batch is on the line; 2 pool threads split it again.
    const auto train = data::make_synthetic_digits(100, 37);
    const auto test = data::make_synthetic_digits(67, 38);
    const auto enc = make_encoder(train, 512);
    hd_classifier<core::uhd_encoder> clf(enc, train.num_classes());
    clf.fit(train);

    std::vector<std::size_t> want(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
        want[i] = clf.predict(test.image(i));
    }
    EXPECT_EQ(clf.predict_batch(test), want);
    thread_pool pool(2);
    EXPECT_EQ(clf.predict_batch(test, &pool), want);

    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        if (want[i] == test.label(i)) ++correct;
    }
    const double want_accuracy =
        static_cast<double>(correct) / static_cast<double>(test.size());
    EXPECT_EQ(clf.evaluate(test), want_accuracy);
    EXPECT_EQ(clf.evaluate(test, nullptr, &pool), want_accuracy);
}

// --- serve engine block drain ---------------------------------------------

TEST(BlockServe, EngineBlockDrainBitIdenticalUnderConcurrentPublishing) {
    const auto base = data::make_synthetic_digits(100, 91);
    const auto stream = data::make_synthetic_digits(120, 92);
    const auto test = data::make_synthetic_digits(40, 93);
    const auto enc = make_encoder(base, 512);
    hd_classifier<core::uhd_encoder> trainer(enc, 10);
    trainer.fit(base);
    serve::engine_options opts;
    opts.workers = 2;
    opts.max_batch = 8;
    serve::inference_engine engine(trainer.snapshot(), opts);

    std::vector<std::vector<std::int32_t>> pool_queries;
    for (std::size_t i = 0; i < test.size(); ++i) {
        std::vector<std::int32_t> q(enc.dim());
        enc.encode(test.image(i), q);
        pool_queries.push_back(std::move(q));
    }
    // Clients hammer the block drain while the trainer publishes snapshots;
    // every answer must be a valid class (the bit-identity against the final
    // state is checked quiesced below).
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
            for (std::size_t q = 0; q < 100; ++q) {
                ASSERT_LT(engine.predict(pool_queries[(c + q) % pool_queries.size()]),
                          10u);
            }
        });
    }
    std::thread trainer_thread([&] {
        for (std::size_t i = 0; i < stream.size(); ++i) {
            trainer.partial_fit(stream.image(i), stream.label(i));
            if (i % 15 == 14) engine.publish(trainer.snapshot());
        }
        engine.publish(trainer.snapshot());
    });
    for (auto& t : clients) t.join();
    trainer_thread.join();

    for (const auto& q : pool_queries) {
        EXPECT_EQ(engine.predict(q), trainer.predict_encoded(q));
    }
    engine.stop();
    const serve::serve_stats stats = engine.stats();
    // Binarized mode: every drained batch is answered with exactly one
    // block-kernel call, so utilization is the average micro-batch size.
    EXPECT_EQ(stats.kernel_calls, stats.batches);
    EXPECT_GE(stats.block_utilization(), 1.0);
    EXPECT_LE(stats.block_utilization(),
              static_cast<double>(stats.max_batch_observed));
}

TEST(BlockServe, DynamicEngineBlockDrainMatchesDirectCascade) {
    const auto train = data::make_synthetic_digits(100, 94);
    const auto test = data::make_synthetic_digits(30, 95);
    const auto enc = make_encoder(train, 1024);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    const dynamic_query_policy policy = clf.calibrate_dynamic(train, 0.95);
    serve::engine_options opts;
    opts.workers = 2;
    opts.max_batch = 8;
    serve::inference_engine engine(clf.snapshot(), policy, opts);
    // Saturate the queue so real multi-request batches form, then compare
    // every answer with the direct single-query cascade.
    std::vector<std::future<std::size_t>> futures;
    std::vector<std::vector<std::int32_t>> queries;
    for (std::size_t i = 0; i < test.size(); ++i) {
        std::vector<std::int32_t> q(enc.dim());
        enc.encode(test.image(i), q);
        queries.push_back(q);
        futures.push_back(engine.submit(std::move(q)));
    }
    for (std::size_t i = 0; i < test.size(); ++i) {
        EXPECT_EQ(futures[i].get(),
                  clf.predict_dynamic_encoded(queries[i], policy));
    }
    engine.stop();
    EXPECT_EQ(engine.stats().kernel_calls, engine.stats().batches);
}

} // namespace
