// Tests for the baseline's item memories: pseudo-random position vectors
// and bit-flip level vectors (paper Fig. 1(a)).
#include <gtest/gtest.h>

#include "uhd/common/error.hpp"
#include "uhd/hdc/item_memory.hpp"
#include "uhd/hdc/similarity.hpp"

namespace {

using namespace uhd::hdc;

TEST(PositionMemory, DeterministicPerSeed) {
    const position_item_memory a(16, 512, randomness_source::xoshiro, 3);
    const position_item_memory b(16, 512, randomness_source::xoshiro, 3);
    const position_item_memory c(16, 512, randomness_source::xoshiro, 4);
    EXPECT_EQ(a.vector(5), b.vector(5));
    EXPECT_NE(a.vector(5), c.vector(5));
}

TEST(PositionMemory, VectorsAreNearlyOrthogonal) {
    const position_item_memory mem(32, 4096, randomness_source::xoshiro, 7);
    for (std::size_t i = 1; i < 8; ++i) {
        const double similarity = cosine(mem.vector(0), mem.vector(i));
        EXPECT_LT(std::abs(similarity), 0.08) << "pair (0," << i << ")";
    }
}

TEST(PositionMemory, LfsrSourceWorksAndDiffersFromXoshiro) {
    const position_item_memory lf(8, 256, randomness_source::lfsr, 3);
    const position_item_memory xo(8, 256, randomness_source::xoshiro, 3);
    EXPECT_NE(lf.vector(0), xo.vector(0));
    // LFSR vectors must still be roughly balanced.
    const auto v = lf.vector(0);
    EXPECT_NEAR(static_cast<double>(v.count_negative()), 128.0, 40.0);
}

TEST(PositionMemory, TailBitsAreZero) {
    const position_item_memory mem(4, 100, randomness_source::xoshiro, 9);
    for (std::size_t p = 0; p < 4; ++p) {
        const auto words = mem.row_words(p);
        EXPECT_EQ(words[1] >> 36, 0u); // bits 100..127 zero
    }
}

TEST(PositionMemory, Validation) {
    EXPECT_THROW(position_item_memory(0, 64, randomness_source::xoshiro, 1), uhd::error);
    const position_item_memory mem(2, 64, randomness_source::xoshiro, 1);
    EXPECT_THROW((void)mem.row_words(2), uhd::error);
    EXPECT_GT(mem.memory_bytes(), 0u);
}

TEST(LevelMemory, ThermometerFlipLaw) {
    // L_k[d] = +1 iff k >= tau_d: once an element flips to +1 it stays +1.
    const level_item_memory mem(64, 256, randomness_source::xoshiro, 5);
    const auto tau = mem.flip_levels();
    for (std::size_t d = 0; d < 256; ++d) {
        for (std::size_t k = 1; k <= 64; ++k) {
            const int expected = k >= tau[d] ? +1 : -1;
            EXPECT_EQ(mem.vector(k).element(d), expected)
                << "d=" << d << " k=" << k << " tau=" << tau[d];
        }
    }
}

TEST(LevelMemory, AdjacentLevelsAreSimilarDistantLevelsAreNot) {
    const level_item_memory mem(256, 2048, randomness_source::xoshiro, 6);
    const double near = cosine(mem.vector(100), mem.vector(101));
    const double mid = cosine(mem.vector(100), mem.vector(160));
    const double far = cosine(mem.vector(1), mem.vector(256));
    EXPECT_GT(near, 0.95);
    EXPECT_GT(near, mid);
    EXPECT_GT(mid, far);
}

TEST(LevelMemory, TopLevelIsAllPlus) {
    const level_item_memory mem(16, 128, randomness_source::xoshiro, 7);
    // tau_d <= levels always, so L_levels = all +1.
    EXPECT_EQ(mem.vector(16).count_positive(), 128u);
}

TEST(LevelMemory, LevelOfMapsFullIntensityRange) {
    const level_item_memory mem(256, 64, randomness_source::xoshiro, 8);
    EXPECT_EQ(mem.level_of(0), 1u);
    EXPECT_EQ(mem.level_of(255), 256u);
    for (int x = 0; x < 256; ++x) {
        const std::size_t k = mem.level_of(static_cast<std::uint8_t>(x));
        EXPECT_GE(k, 1u);
        EXPECT_LE(k, 256u);
    }
    // Monotone in intensity.
    EXPECT_LE(mem.level_of(10), mem.level_of(200));
}

TEST(LevelMemory, SixteenLevelConfig) {
    const level_item_memory mem(16, 64, randomness_source::xoshiro, 9);
    EXPECT_EQ(mem.level_of(0), 1u);
    EXPECT_EQ(mem.level_of(255), 16u);
}

TEST(LevelMemory, Validation) {
    EXPECT_THROW(level_item_memory(1, 64, randomness_source::xoshiro, 1), uhd::error);
    const level_item_memory mem(4, 64, randomness_source::xoshiro, 1);
    EXPECT_THROW((void)mem.row_words(0), uhd::error); // 1-based
    EXPECT_THROW((void)mem.row_words(5), uhd::error);
    EXPECT_GT(mem.memory_bytes(), 0u);
}

} // namespace
