// Tests for the uHD encoder: equivalence of the fast, unary-hardware, and
// exact paths; threshold semantics; paper worked examples.
#include <gtest/gtest.h>

#include "uhd/common/error.hpp"
#include "uhd/core/encoder.hpp"

namespace {

using namespace uhd::core;

uhd_config small_config() {
    uhd_config cfg;
    cfg.dim = 128;
    return cfg;
}

std::vector<std::uint8_t> ramp_image(std::size_t pixels) {
    std::vector<std::uint8_t> image(pixels);
    for (std::size_t p = 0; p < pixels; ++p) {
        image[p] = static_cast<std::uint8_t>((p * 255) / (pixels - 1));
    }
    return image;
}

TEST(UhdEncoder, FastAndUnaryPathsAreBitIdentical) {
    const uhd_encoder enc(small_config(), {6, 6, 1});
    const auto image = ramp_image(36);
    std::vector<std::int32_t> fast(enc.dim());
    std::vector<std::int32_t> unary(enc.dim());
    enc.encode(image, fast);
    enc.encode_unary(image, unary, unary_fidelity::gate_exact);
    EXPECT_EQ(fast, unary);
}

TEST(UhdEncoder, FastAndUnaryAgreeUnderHalfInputsPolicy) {
    uhd_config cfg = small_config();
    cfg.policy = binarize_policy::half_inputs;
    const uhd_encoder enc(cfg, {6, 6, 1});
    const auto image = ramp_image(36);
    std::vector<std::int32_t> fast(enc.dim());
    std::vector<std::int32_t> unary(enc.dim());
    enc.encode(image, fast);
    enc.encode_unary(image, unary, unary_fidelity::gate_exact);
    EXPECT_EQ(fast, unary);
}

TEST(UhdEncoder, ExactPathIsCloseToQuantizedPath) {
    const uhd_encoder enc(small_config(), {6, 6, 1});
    const auto image = ramp_image(36);
    std::vector<std::int32_t> quantized(enc.dim());
    std::vector<std::int32_t> exact(enc.dim());
    enc.encode(image, quantized);
    enc.encode_exact(image, exact);
    // Quantization flips some bits but sums must track each other: the mean
    // absolute difference stays below a few pixels' worth.
    double diff = 0.0;
    for (std::size_t d = 0; d < enc.dim(); ++d) {
        diff += std::abs(quantized[d] - exact[d]);
    }
    EXPECT_LT(diff / static_cast<double>(enc.dim()), 8.0);
}

TEST(UhdEncoder, MeanCenteringMakesSumNearZero) {
    const uhd_encoder enc(small_config(), {6, 6, 1});
    const auto image = ramp_image(36);
    std::vector<std::int32_t> acc(enc.dim());
    enc.encode(image, acc);
    std::int64_t total = 0;
    for (const std::int32_t v : acc) total += v;
    // Exact centering: |mean| < 1 (rounding of the doubled threshold only).
    EXPECT_LT(std::abs(static_cast<double>(total) / static_cast<double>(enc.dim())), 1.0);
}

TEST(UhdEncoder, DoubledThresholdMatchesPopcountMean) {
    const uhd_encoder enc(small_config(), {6, 6, 1});
    const auto image = ramp_image(36);
    // 2*TOB must equal 2 * mean_d(ones[d]) up to rounding; reconstruct the
    // ones-counts from the centered output: ones = (out + tau2) / 2.
    const std::int32_t tau2 = enc.doubled_threshold(image);
    std::vector<std::int32_t> acc(enc.dim());
    enc.encode(image, acc);
    std::int64_t ones_total = 0;
    for (const std::int32_t v : acc) ones_total += (v + tau2) / 2;
    const double mean_ones =
        static_cast<double>(ones_total) / static_cast<double>(enc.dim());
    EXPECT_NEAR(static_cast<double>(tau2), 2.0 * mean_ones, 1.0);
}

TEST(UhdEncoder, HalfInputsThresholdIsPixelCount) {
    uhd_config cfg = small_config();
    cfg.policy = binarize_policy::half_inputs;
    const uhd_encoder enc(cfg, {6, 6, 1});
    EXPECT_EQ(enc.doubled_threshold(ramp_image(36)), 36);
}

TEST(UhdEncoder, QuantizeIntensityEndpoints) {
    const uhd_encoder enc(small_config(), {4, 4, 1});
    EXPECT_EQ(enc.quantize_intensity(0), 0);
    EXPECT_EQ(enc.quantize_intensity(255), 15);
    EXPECT_EQ(enc.quantize_intensity(128), 8); // round(128/255 * 15) = 8
}

TEST(UhdEncoder, DeterministicAcrossInstances) {
    const uhd_encoder a(small_config(), {6, 6, 1});
    const uhd_encoder b(small_config(), {6, 6, 1});
    const auto image = ramp_image(36);
    std::vector<std::int32_t> va(a.dim());
    std::vector<std::int32_t> vb(b.dim());
    a.encode(image, va);
    b.encode(image, vb);
    EXPECT_EQ(va, vb); // single-iteration determinism: no randomness at all
}

TEST(UhdEncoder, SeedChangesBankButStaysDeterministic) {
    uhd_config other = small_config();
    other.sobol_seed = 12345;
    const uhd_encoder a(small_config(), {6, 6, 1});
    const uhd_encoder b(other, {6, 6, 1});
    const auto image = ramp_image(36);
    std::vector<std::int32_t> va(a.dim());
    std::vector<std::int32_t> vb(b.dim());
    a.encode(image, va);
    b.encode(image, vb);
    EXPECT_NE(va, vb);
}

TEST(UhdEncoder, EncodeSignMatchesAccumulatorSign) {
    const uhd_encoder enc(small_config(), {6, 6, 1});
    const auto image = ramp_image(36);
    std::vector<std::int32_t> acc(enc.dim());
    enc.encode(image, acc);
    const auto hv = enc.encode_sign(image);
    for (std::size_t d = 0; d < enc.dim(); ++d) {
        EXPECT_EQ(hv.element(d), acc[d] >= 0 ? +1 : -1);
    }
}

TEST(UhdEncoder, ScrambleOffStillWorks) {
    uhd_config cfg = small_config();
    cfg.scramble = false;
    const uhd_encoder enc(cfg, {6, 6, 1});
    std::vector<std::int32_t> fast(enc.dim());
    std::vector<std::int32_t> unary(enc.dim());
    const auto image = ramp_image(36);
    enc.encode(image, fast);
    enc.encode_unary(image, unary, unary_fidelity::gate_exact);
    EXPECT_EQ(fast, unary);
}

TEST(UhdEncoder, Validation) {
    EXPECT_THROW(uhd_encoder(uhd_config{.dim = 32}, {4, 4, 1}), uhd::error);
    EXPECT_THROW(uhd_encoder(small_config(), {4, 4, 3}), uhd::error);
    const uhd_encoder enc(small_config(), {4, 4, 1});
    std::vector<std::int32_t> wrong(enc.dim() + 1);
    EXPECT_THROW(enc.encode(ramp_image(16), wrong), uhd::error);
    std::vector<std::int32_t> acc(enc.dim());
    EXPECT_THROW(enc.encode(ramp_image(17), acc), uhd::error);
}

TEST(UhdEncoder, ConfigDerivedQuantities) {
    uhd_config cfg;
    EXPECT_EQ(cfg.stream_length(), 16u);
    EXPECT_EQ(cfg.scalar_bits(), 4u);
    cfg.quant_levels = 64;
    EXPECT_EQ(cfg.scalar_bits(), 6u);
}

TEST(UhdEncoder, MemoryScalesWithDimAndPixels) {
    uhd_config big = small_config();
    big.dim = 512;
    const uhd_encoder a(small_config(), {4, 4, 1});
    const uhd_encoder b(big, {4, 4, 1});
    EXPECT_GT(b.memory_bytes(), a.memory_bytes());
}

} // namespace
