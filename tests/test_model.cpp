// Tests for the end-to-end uHD model and its serialization.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "uhd/common/error.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"

namespace {

using namespace uhd;
using core::uhd_config;
using core::uhd_model;

uhd_config small_config() {
    uhd_config cfg;
    cfg.dim = 256;
    return cfg;
}

TEST(Model, TrainAndEvaluate) {
    const auto train = data::make_synthetic_digits(200, 21);
    const auto test = data::make_synthetic_digits(80, 22);
    const uhd_model model = uhd_model::train(small_config(), train,
                                             hdc::train_mode::raw_sums);
    EXPECT_GT(model.evaluate(test), 0.3);
    EXPECT_EQ(model.classes(), 10u);
}

TEST(Model, TrainRejectsEmptyDataset) {
    data::dataset empty(data::image_shape{28, 28, 1}, 10);
    EXPECT_THROW((void)uhd_model::train(small_config(), empty), uhd::error);
}

TEST(Model, SaveLoadRoundTripPreservesPredictions) {
    const auto train = data::make_synthetic_digits(120, 23);
    const uhd_model model = uhd_model::train(small_config(), train,
                                             hdc::train_mode::raw_sums);
    std::stringstream buffer;
    model.save(buffer);
    const uhd_model loaded = uhd_model::load(buffer);
    for (std::size_t i = 0; i < train.size(); ++i) {
        EXPECT_EQ(loaded.predict(train.image(i)), model.predict(train.image(i)));
    }
    EXPECT_EQ(loaded.classes(), model.classes());
    EXPECT_EQ(loaded.encoder().config().dim, model.encoder().config().dim);
}

TEST(Model, SaveLoadThroughFile) {
    namespace fs = std::filesystem;
    const auto train = data::make_synthetic_digits(60, 24);
    const uhd_model model = uhd_model::train(small_config(), train);
    const fs::path path = fs::temp_directory_path() / "uhd_model_test.bin";
    model.save_file(path.string());
    const uhd_model loaded = uhd_model::load_file(path.string());
    EXPECT_EQ(loaded.predict(train.image(0)), model.predict(train.image(0)));
    fs::remove(path);
    EXPECT_THROW((void)uhd_model::load_file(path.string()), uhd::error);
}

TEST(Model, LoadRejectsCorruptStream) {
    std::stringstream garbage("not a model file at all");
    EXPECT_THROW((void)uhd_model::load(garbage), uhd::error);
}

TEST(Model, LoadRejectsTruncatedFile) {
    // A partially written model (full disk, killed process) must fail
    // cleanly at every truncation point, never load garbage or OOM.
    const auto train = data::make_synthetic_digits(40, 30);
    const uhd_model model = uhd_model::train(small_config(), train);
    std::stringstream buffer;
    model.save(buffer);
    const std::string full = buffer.str();
    ASSERT_GT(full.size(), 64u);
    for (const double fraction : {0.1, 0.35, 0.6, 0.9, 0.999}) {
        const auto cut = static_cast<std::size_t>(
            static_cast<double>(full.size()) * fraction);
        std::stringstream truncated(full.substr(0, cut));
        EXPECT_THROW((void)uhd_model::load(truncated), uhd::error)
            << "truncated at " << cut << "/" << full.size();
    }
}

TEST(Model, LoadRejectsImplausibleHeaderFields) {
    // Corrupt-but-complete headers (absurd dim / class count) must be
    // rejected before any allocation sized from them.
    const auto train = data::make_synthetic_digits(40, 34);
    const uhd_model model = uhd_model::train(small_config(), train);
    std::stringstream buffer;
    model.save(buffer);
    std::string bytes = buffer.str();
    // Offset 8 is cfg.dim (after the 8-byte magic+version header); stamp an
    // absurd value over it.
    for (std::size_t i = 0; i < 8; ++i) bytes[8 + i] = static_cast<char>(0xFF);
    std::stringstream corrupt(bytes);
    EXPECT_THROW((void)uhd_model::load(corrupt), uhd::error);
}

TEST(Model, SaveFileReportsWriteFailure) {
    // /dev/full accepts the open but fails every flush with ENOSPC — the
    // exact silent-truncation case save_file must surface.
    if (!std::filesystem::exists("/dev/full")) {
        GTEST_SKIP() << "/dev/full not available";
    }
    const auto train = data::make_synthetic_digits(40, 35);
    const uhd_model model = uhd_model::train(small_config(), train);
    EXPECT_THROW(model.save_file("/dev/full"), uhd::error);
}

TEST(Model, PartialFitMatchesBatchFitForRawSums) {
    const auto train = data::make_synthetic_digits(60, 25);
    uhd_model batch(small_config(), train.shape(), 10, hdc::train_mode::raw_sums);
    batch.fit(train);
    uhd_model online(small_config(), train.shape(), 10, hdc::train_mode::raw_sums);
    for (std::size_t i = 0; i < train.size(); ++i) {
        online.partial_fit(train.image(i), train.label(i));
    }
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(online.predict(train.image(i)), batch.predict(train.image(i)));
    }
}

TEST(Model, RetrainRuns) {
    const auto train = data::make_synthetic_digits(100, 26);
    uhd_model model(small_config(), train.shape(), 10, hdc::train_mode::raw_sums);
    model.fit(train);
    const std::size_t updates = model.retrain(train, 2);
    EXPECT_LE(updates, train.size());
}

TEST(Model, ClassHypervectorAccessible) {
    const auto train = data::make_synthetic_digits(60, 27);
    const uhd_model model = uhd_model::train(small_config(), train);
    EXPECT_EQ(model.class_hypervector(0).dim(), 256u);
    EXPECT_GT(model.memory_bytes(), 0u);
}

TEST(Model, DeterministicTraining) {
    const auto train = data::make_synthetic_digits(80, 28);
    const auto test = data::make_synthetic_digits(40, 29);
    const uhd_model a = uhd_model::train(small_config(), train);
    const uhd_model b = uhd_model::train(small_config(), train);
    EXPECT_DOUBLE_EQ(a.evaluate(test), b.evaluate(test));
}

} // namespace
