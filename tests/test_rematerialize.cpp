// Bit-identity gates of the rematerializing threshold path.
//
// The rematerialize bank mode replaces every stored threshold table with
// O(1)-per-row generator state, so the only acceptable behaviour is exact:
// * ld::quantize_bounds must invert quantize_unit for every fraction it is
//   asked about (the compare-domain transform the fused kernels rely on);
// * geq_rematerialize_accumulate of every admissible backend must equal the
//   pinned scalar reference on ragged tile shapes, and any tile split must
//   accumulate to the same integers;
// * the rematerializing uhd_encoder and baseline_encoder must match their
//   stored-bank twins bit for bit on every encode path;
// * model files from the stored-bank era (format v1) must keep loading.
//
// The suite runs under every UHD_BACKEND value (tests/CMakeLists.txt
// registers it in the forced-backend matrix), so the fused kernel of each
// backend faces the oracle both as the active table and directly.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "uhd/common/error.hpp"

#include "uhd/common/kernels.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/common/simd.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/item_memory.hpp"
#include "uhd/lowdisc/sobol.hpp"

namespace {

using namespace uhd;
using kernels::admissible_backends;

TEST(QuantizeBounds, ExactlyInvertsQuantizeUnit) {
    xoshiro256ss rng(7);
    for (const unsigned levels : {2u, 3u, 16u, 97u, 256u}) {
        const auto bounds = ld::quantize_bounds(levels);
        ASSERT_EQ(bounds.size(), levels);
        EXPECT_EQ(bounds[levels - 1], ~std::uint32_t{0});
        // Random fractions plus every bound's two-sided neighbourhood: the
        // equivalence q >= quantize(f) <=> f <= bounds[q] must hold exactly
        // at the decision edges, not just in the interior.
        std::vector<std::uint32_t> fractions{0u, 1u, ~std::uint32_t{0}};
        for (const std::uint32_t b : bounds) {
            fractions.push_back(b);
            fractions.push_back(b + 1); // wraps to 0 for the last bound: fine
            fractions.push_back(b - 1);
        }
        for (int i = 0; i < 2000; ++i) {
            fractions.push_back(static_cast<std::uint32_t>(rng.next()));
        }
        for (const std::uint32_t f : fractions) {
            const std::uint8_t s = ld::quantize_unit(
                ld::sobol_sequence::fraction_to_unit(f), levels);
            for (unsigned q = 0; q < levels; ++q) {
                EXPECT_EQ(q >= s, f <= bounds[q])
                    << "levels=" << levels << " f=" << f << " q=" << q;
            }
        }
    }
}

TEST(RematKernel, EveryBackendMatchesReferenceOnRaggedShapes) {
    xoshiro256ss rng(31);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t npix = 1 + rng.next() % 40;
        // Ragged begin/count pairs cross the serial head, the 16-wide Gray
        // blocks, and the serial tail of every implementation.
        const std::uint64_t d_begin = rng.next() % 300;
        const std::size_t dim_count = 1 + rng.next() % 200;
        const std::size_t dir_words =
            std::bit_width(d_begin + dim_count) + rng.next() % 3;

        const auto table = ld::sobol_directions::standard(npix, 17);
        std::vector<std::uint32_t> directions(npix * dir_words);
        std::vector<std::uint32_t> shifts(npix);
        std::vector<std::uint32_t> bounds(npix);
        for (std::size_t p = 0; p < npix; ++p) {
            const auto dirs = table.direction_numbers(p);
            for (std::size_t w = 0; w < dir_words; ++w) {
                directions[p * dir_words + w] = dirs[w];
            }
            shifts[p] = static_cast<std::uint32_t>(rng.next());
            bounds[p] = static_cast<std::uint32_t>(rng.next());
        }

        std::vector<std::int32_t> expected(dim_count, 3); // nonzero: += semantics
        simd::geq_rematerialize_accumulate_reference(directions.data(), dir_words,
                                                     shifts.data(), bounds.data(),
                                                     npix, d_begin, dim_count,
                                                     expected.data());
        for (const kernels::kernel_table* backend : admissible_backends()) {
            std::vector<std::int32_t> got(dim_count, 3);
            backend->geq_rematerialize_accumulate(directions.data(), dir_words,
                                                  shifts.data(), bounds.data(), npix,
                                                  d_begin, dim_count, got.data());
            EXPECT_EQ(got, expected)
                << backend->name << " npix=" << npix << " d_begin=" << d_begin
                << " dim_count=" << dim_count << " dir_words=" << dir_words;
        }
    }
}

TEST(RematKernel, TileSplitsAccumulateIdentically) {
    xoshiro256ss rng(47);
    const std::size_t npix = 23;
    const std::size_t dim = 777;
    const std::size_t dir_words = std::bit_width(dim);
    const auto table = ld::sobol_directions::standard(npix, 5);
    std::vector<std::uint32_t> directions(npix * dir_words);
    std::vector<std::uint32_t> shifts(npix);
    std::vector<std::uint32_t> bounds(npix);
    for (std::size_t p = 0; p < npix; ++p) {
        const auto dirs = table.direction_numbers(p);
        for (std::size_t w = 0; w < dir_words; ++w) {
            directions[p * dir_words + w] = dirs[w];
        }
        shifts[p] = static_cast<std::uint32_t>(rng.next());
        bounds[p] = static_cast<std::uint32_t>(rng.next());
    }

    std::vector<std::int32_t> whole(dim, 0);
    simd::geq_rematerialize_accumulate_reference(directions.data(), dir_words,
                                                 shifts.data(), bounds.data(), npix,
                                                 0, dim, whole.data());
    for (const kernels::kernel_table* backend : admissible_backends()) {
        std::vector<std::int32_t> tiled(dim, 0);
        std::size_t d0 = 0;
        while (d0 < dim) { // random ragged split schedule
            const std::size_t count = std::min<std::size_t>(1 + rng.next() % 100,
                                                            dim - d0);
            backend->geq_rematerialize_accumulate(directions.data(), dir_words,
                                                  shifts.data(), bounds.data(), npix,
                                                  d0, count, tiled.data() + d0);
            d0 += count;
        }
        EXPECT_EQ(tiled, whole) << backend->name;
    }
}

core::uhd_config remat_config(const core::uhd_config& base) {
    core::uhd_config cfg = base;
    cfg.bank = bank_mode::rematerialize;
    return cfg;
}

std::vector<std::uint8_t> random_image(std::size_t pixels, xoshiro256ss& rng) {
    std::vector<std::uint8_t> image(pixels);
    for (auto& x : image) x = static_cast<std::uint8_t>(rng.next());
    return image;
}

TEST(RematEncoder, BitIdenticalToStoredOnEveryPath) {
    xoshiro256ss rng(59);
    for (const bool scramble : {true, false}) {
        for (const auto policy :
             {core::binarize_policy::mean_intensity, core::binarize_policy::half_inputs}) {
            core::uhd_config cfg;
            cfg.dim = 1000; // ragged against words, lanes, and the D-tile
            cfg.scramble = scramble;
            cfg.policy = policy;
            const data::image_shape shape{9, 7, 1};
            const core::uhd_encoder stored(cfg, shape);
            const core::uhd_encoder remat(remat_config(cfg), shape);

            for (std::size_t p = 0; p < shape.pixels(); ++p) {
                const auto srow = stored.sobol_row(p);
                const auto rrow = remat.sobol_row(p);
                ASSERT_EQ(std::vector<std::uint8_t>(srow.begin(), srow.end()),
                          std::vector<std::uint8_t>(rrow.begin(), rrow.end()))
                    << "pixel " << p;
            }

            for (int trial = 0; trial < 8; ++trial) {
                const auto image = random_image(shape.pixels(), rng);
                EXPECT_EQ(stored.doubled_threshold(image),
                          remat.doubled_threshold(image));
                std::vector<std::int32_t> a(cfg.dim);
                std::vector<std::int32_t> b(cfg.dim);
                stored.encode(image, a);
                remat.encode(image, b);
                EXPECT_EQ(a, b) << "encode, scramble=" << scramble;
                remat.encode_scalar(image, b);
                EXPECT_EQ(a, b) << "encode_scalar";
                remat.encode_unary(image, b, core::unary_fidelity::monotone_fast);
                EXPECT_EQ(a, b) << "encode_unary monotone";
            }
        }
    }
}

TEST(RematEncoder, GateExactUnaryPathMatches) {
    xoshiro256ss rng(61);
    core::uhd_config cfg;
    cfg.dim = 64; // gate_exact is O(H * D * N): keep it small
    const data::image_shape shape{5, 5, 1};
    const core::uhd_encoder stored(cfg, shape);
    const core::uhd_encoder remat(remat_config(cfg), shape);
    const auto image = random_image(shape.pixels(), rng);
    std::vector<std::int32_t> a(cfg.dim);
    std::vector<std::int32_t> b(cfg.dim);
    stored.encode_unary(image, a, core::unary_fidelity::gate_exact);
    remat.encode_unary(image, b, core::unary_fidelity::gate_exact);
    EXPECT_EQ(a, b);
}

TEST(RematEncoder, ThresholdStateShrinksAndBatchMatches) {
    core::uhd_config cfg;
    cfg.dim = 8192;
    const data::image_shape shape{28, 28, 1}; // the paper's 784 x 8192 point
    const core::uhd_encoder stored(cfg, shape);
    const core::uhd_encoder remat(remat_config(cfg), shape);

    // The tentpole's hard payoff gate: >= 100x threshold-state reduction.
    EXPECT_EQ(stored.threshold_bytes(), shape.pixels() * cfg.dim);
    EXPECT_GE(stored.threshold_bytes(),
              100 * remat.threshold_bytes());
    EXPECT_LT(remat.memory_bytes(), stored.memory_bytes());

    xoshiro256ss rng(67);
    const std::size_t count = 5;
    std::vector<std::uint8_t> images;
    for (std::size_t i = 0; i < count; ++i) {
        const auto image = random_image(shape.pixels(), rng);
        images.insert(images.end(), image.begin(), image.end());
    }
    std::vector<std::int32_t> a(count * cfg.dim);
    std::vector<std::int32_t> b(count * cfg.dim);
    stored.encode_batch(images, count, a);
    remat.encode_batch(images, count, b);
    EXPECT_EQ(a, b);
}

TEST(RematEncoder, CustomBankRejectsRematerializeMode) {
    core::uhd_config cfg;
    cfg.dim = 64;
    const data::image_shape shape{4, 4, 1};
    std::vector<std::uint8_t> raw(shape.pixels() * cfg.dim, 0);
    auto bank = ld::quantized_sobol_bank::from_raw(shape.pixels(), cfg.dim,
                                                   cfg.quant_levels, std::move(raw));
    EXPECT_THROW(core::uhd_encoder(remat_config(cfg), shape, std::move(bank)),
                 uhd::error);
}

TEST(RematItemMemory, RowsMatchStoredForBothSources) {
    for (const auto source : {hdc::randomness_source::xoshiro,
                              hdc::randomness_source::lfsr}) {
        const std::size_t dim = 1000; // ragged tail word
        const hdc::position_item_memory stored_pos(37, dim, source, 99);
        const hdc::position_item_memory remat_pos(37, dim, source, 99,
                                                  bank_mode::rematerialize);
        EXPECT_GT(stored_pos.memory_bytes(), remat_pos.memory_bytes());
        for (std::size_t p = 0; p < stored_pos.count(); ++p) {
            EXPECT_EQ(stored_pos.vector(p), remat_pos.vector(p)) << "row " << p;
        }

        const hdc::level_item_memory stored_lvl(16, dim, source, 123);
        const hdc::level_item_memory remat_lvl(16, dim, source, 123,
                                               bank_mode::rematerialize);
        EXPECT_GT(stored_lvl.memory_bytes(), remat_lvl.memory_bytes());
        for (std::size_t k = 1; k <= stored_lvl.levels(); ++k) {
            EXPECT_EQ(stored_lvl.vector(k), remat_lvl.vector(k)) << "level " << k;
        }
    }
}

TEST(RematBaseline, BitIdenticalToStoredForBothSources) {
    xoshiro256ss rng(71);
    for (const auto source : {hdc::randomness_source::xoshiro,
                              hdc::randomness_source::lfsr}) {
        hdc::baseline_config cfg;
        cfg.dim = 1000;
        cfg.levels = 16;
        cfg.source = source;
        const data::image_shape shape{8, 6, 1};
        const hdc::baseline_encoder stored(cfg, shape);
        hdc::baseline_config rcfg = cfg;
        rcfg.bank = bank_mode::rematerialize;
        const hdc::baseline_encoder remat(rcfg, shape);
        EXPECT_GT(stored.memory_bytes(), remat.memory_bytes());

        for (int trial = 0; trial < 6; ++trial) {
            const auto image = random_image(shape.pixels(), rng);
            std::vector<std::int32_t> a(cfg.dim);
            std::vector<std::int32_t> b(cfg.dim);
            stored.encode(image, a);
            remat.encode(image, b);
            EXPECT_EQ(a, b);
            EXPECT_EQ(stored.encode_sign(image), remat.encode_sign(image));
        }
    }
}

TEST(RematModel, SaveLoadRoundTripKeepsModeAndPredictions) {
    const auto train = data::make_synthetic_digits(80, 41);
    core::uhd_config cfg;
    cfg.dim = 256;
    cfg.bank = bank_mode::rematerialize;
    const auto model = core::uhd_model::train(cfg, train, hdc::train_mode::raw_sums);
    std::stringstream buffer;
    model.save(buffer);
    const auto loaded = core::uhd_model::load(buffer);
    EXPECT_EQ(loaded.encoder().config().bank, bank_mode::rematerialize);
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(loaded.predict(train.image(i)), model.predict(train.image(i)));
    }
}

TEST(RematModel, StoredBankEraV1FileLoadsAsStored) {
    const auto train = data::make_synthetic_digits(60, 43);
    core::uhd_config cfg;
    cfg.dim = 256;
    const auto model = core::uhd_model::train(cfg, train, hdc::train_mode::raw_sums);
    std::stringstream buffer;
    model.save(buffer);
    std::string bytes = buffer.str();

    // Rewrite the v2 stream as its v1 (stored-bank era) equivalent: stamp
    // version 1 into the header and drop the bank-mode word. v1 layout =
    // 8-byte header, dim u64, quant u32, seed u64, shape 3 x u64, classes
    // u64, train u32, query u32 — the bank word sits at offset 68.
    const std::uint32_t v1 = 1;
    bytes[4] = static_cast<char>(v1 & 0xff);
    bytes[5] = bytes[6] = bytes[7] = 0;
    bytes.erase(68, 4);

    std::stringstream v1_stream(bytes);
    const auto loaded = core::uhd_model::load(v1_stream);
    EXPECT_EQ(loaded.encoder().config().bank, bank_mode::stored);
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(loaded.predict(train.image(i)), model.predict(train.image(i)));
    }
}

} // namespace
