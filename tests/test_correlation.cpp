// Tests for SCC / Pearson correlation and agreement metrics.
#include <gtest/gtest.h>

#include "uhd/bitstream/correlation.hpp"
#include "uhd/bitstream/generator.hpp"
#include "uhd/bitstream/unary.hpp"
#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"

namespace {

using namespace uhd::bs;

TEST(Scc, UnaryStreamsAreMaximallyCorrelated) {
    // Equally aligned thermometer streams overlap maximally: SCC = +1.
    const bitstream a = unary_encode(3, 16);
    const bitstream b = unary_encode(9, 16);
    EXPECT_NEAR(scc(a, b), 1.0, 1e-12);
}

TEST(Scc, OppositeAlignmentIsAntiCorrelated) {
    const bitstream a = unary_encode(8, 16, unary_alignment::ones_trailing);
    const bitstream b = unary_encode(8, 16, unary_alignment::ones_leading);
    EXPECT_NEAR(scc(a, b), -1.0, 1e-12);
}

TEST(Scc, IndependentStreamsNearZero) {
    uhd::xoshiro256ss rng(3);
    const bitstream a = bernoulli_stream(0.5, 50000, rng);
    const bitstream b = bernoulli_stream(0.5, 50000, rng);
    EXPECT_NEAR(scc(a, b), 0.0, 0.03);
}

TEST(Scc, ConstantStreamGivesZero) {
    const bitstream a(16, true);
    const bitstream b = unary_encode(5, 16);
    EXPECT_DOUBLE_EQ(scc(a, b), 0.0);
}

TEST(Scc, MismatchedLengthsThrow) {
    EXPECT_THROW((void)scc(bitstream(8), bitstream(9)), uhd::error);
}

TEST(Pearson, PerfectCorrelationOnIdenticalStreams) {
    uhd::xoshiro256ss rng(4);
    const bitstream a = bernoulli_stream(0.5, 10000, rng);
    EXPECT_NEAR(pearson(a, a), 1.0, 1e-12);
    EXPECT_NEAR(pearson(a, ~a), -1.0, 1e-12);
}

TEST(Pearson, IndependentNearZero) {
    uhd::xoshiro256ss rng(7);
    const bitstream a = bernoulli_stream(0.4, 50000, rng);
    const bitstream b = bernoulli_stream(0.6, 50000, rng);
    EXPECT_NEAR(pearson(a, b), 0.0, 0.03);
}

TEST(ValueError, MeasuresRepresentationAccuracy) {
    const bitstream s = unary_encode(4, 16);
    EXPECT_NEAR(value_error(s, 0.25), 0.0, 1e-12);
    EXPECT_NEAR(value_error(s, 0.5), 0.25, 1e-12);
}

TEST(BipolarAgreement, MatchesCosineOfSignVectors) {
    // agreement = (matches - mismatches) / n.
    const bitstream a = bitstream::from_string("0011");
    const bitstream b = bitstream::from_string("0010");
    EXPECT_DOUBLE_EQ(bipolar_agreement(a, b), 0.5);
    EXPECT_DOUBLE_EQ(bipolar_agreement(a, a), 1.0);
    EXPECT_DOUBLE_EQ(bipolar_agreement(a, ~a), -1.0);
}

} // namespace
