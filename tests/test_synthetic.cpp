// Tests for the synthetic dataset generators (the documented substitutes
// for the paper's six evaluation datasets).
#include <gtest/gtest.h>

#include <set>

#include "uhd/data/synthetic.hpp"

namespace {

using namespace uhd::data;

TEST(SyntheticInfo, MatchesOriginalDatasetGeometry) {
    EXPECT_EQ(info_for(dataset_kind::mnist).shape, (image_shape{28, 28, 1}));
    EXPECT_EQ(info_for(dataset_kind::mnist).classes, 10u);
    EXPECT_EQ(info_for(dataset_kind::fashion_mnist).shape, (image_shape{28, 28, 1}));
    EXPECT_EQ(info_for(dataset_kind::blood_mnist).shape, (image_shape{28, 28, 3}));
    EXPECT_EQ(info_for(dataset_kind::blood_mnist).classes, 8u);
    EXPECT_EQ(info_for(dataset_kind::breast_mnist).classes, 2u);
    EXPECT_EQ(info_for(dataset_kind::cifar10).shape, (image_shape{32, 32, 3}));
    EXPECT_EQ(info_for(dataset_kind::svhn).shape, (image_shape{32, 32, 3}));
}

TEST(SyntheticInfo, AllKindsListed) {
    EXPECT_EQ(all_dataset_kinds().size(), 6u);
}

class SyntheticKinds : public ::testing::TestWithParam<dataset_kind> {};

TEST_P(SyntheticKinds, GeneratesRequestedCountAndShape) {
    const dataset_kind kind = GetParam();
    const dataset_info info = info_for(kind);
    const dataset ds = make_synthetic(kind, 40, 123);
    EXPECT_EQ(ds.size(), 40u);
    EXPECT_EQ(ds.shape(), info.shape);
    EXPECT_EQ(ds.num_classes(), info.classes);
}

TEST_P(SyntheticKinds, ClassesAreBalanced) {
    const dataset_kind kind = GetParam();
    const dataset_info info = info_for(kind);
    const std::size_t per_class = 8;
    const dataset ds = make_synthetic(kind, per_class * info.classes, 55);
    for (const std::size_t count : ds.class_counts()) {
        EXPECT_EQ(count, per_class);
    }
}

TEST_P(SyntheticKinds, DeterministicForSameSeed) {
    const dataset_kind kind = GetParam();
    const dataset a = make_synthetic(kind, 12, 9);
    const dataset b = make_synthetic(kind, 12, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.label(i), b.label(i));
        const auto ia = a.image(i);
        const auto ib = b.image(i);
        for (std::size_t v = 0; v < ia.size(); ++v) ASSERT_EQ(ia[v], ib[v]);
    }
}

TEST_P(SyntheticKinds, DifferentSeedsDiffer) {
    const dataset_kind kind = GetParam();
    const dataset a = make_synthetic(kind, 12, 1);
    const dataset b = make_synthetic(kind, 12, 2);
    bool any_difference = false;
    for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
        const auto ia = a.image(i);
        const auto ib = b.image(i);
        for (std::size_t v = 0; v < ia.size(); ++v) {
            if (ia[v] != ib[v]) {
                any_difference = true;
                break;
            }
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST_P(SyntheticKinds, ImagesAreNotConstant) {
    const dataset_kind kind = GetParam();
    const dataset ds = make_synthetic(kind, 10, 77);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const auto img = ds.image(i);
        std::set<std::uint8_t> distinct(img.begin(), img.end());
        EXPECT_GT(distinct.size(), 4u) << "image " << i << " is nearly constant";
    }
}

TEST_P(SyntheticKinds, ClassConditionalStructureIsLearnable) {
    // Same-class images should look more alike than different-class images
    // on average (L1 distance over pixels) — otherwise the generator carries
    // no class signal and every accuracy table would be meaningless.
    const dataset_kind kind = GetParam();
    const dataset ds = make_synthetic(kind, 60, 31).to_grayscale();
    double same_sum = 0.0;
    double diff_sum = 0.0;
    std::size_t same_n = 0;
    std::size_t diff_n = 0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        for (std::size_t j = i + 1; j < ds.size(); ++j) {
            const auto a = ds.image(i);
            const auto b = ds.image(j);
            double l1 = 0.0;
            for (std::size_t v = 0; v < a.size(); ++v) {
                l1 += std::abs(static_cast<int>(a[v]) - static_cast<int>(b[v]));
            }
            if (ds.label(i) == ds.label(j)) {
                same_sum += l1;
                ++same_n;
            } else {
                diff_sum += l1;
                ++diff_n;
            }
        }
    }
    ASSERT_GT(same_n, 0u);
    ASSERT_GT(diff_n, 0u);
    EXPECT_LT(same_sum / static_cast<double>(same_n),
              diff_sum / static_cast<double>(diff_n));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SyntheticKinds,
                         ::testing::Values(dataset_kind::mnist,
                                           dataset_kind::fashion_mnist,
                                           dataset_kind::blood_mnist,
                                           dataset_kind::breast_mnist,
                                           dataset_kind::cifar10, dataset_kind::svhn));

TEST(SyntheticDigits, ConvenienceWrappersMatchKinds) {
    const dataset a = make_synthetic_digits(10, 4);
    const dataset b = make_synthetic(dataset_kind::mnist, 10, 4);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.label(i), b.label(i));
        EXPECT_EQ(a.image(i)[400], b.image(i)[400]);
    }
}

TEST(SyntheticDigits, MostlyDarkLikeMnist) {
    // MNIST-like: the background dominates, mean intensity well below 128.
    const dataset ds = make_synthetic_digits(20, 8);
    double total = 0.0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        for (const std::uint8_t v : ds.image(i)) total += v;
    }
    const double mean = total / (20.0 * 28 * 28);
    EXPECT_LT(mean, 100.0);
    EXPECT_GT(mean, 5.0);
}

} // namespace
