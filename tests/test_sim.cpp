// Tests for the bit-serial datapath simulators: bit-exact equivalence with
// the fast encoders and exact event accounting.
#include <gtest/gtest.h>

#include "uhd/data/synthetic.hpp"
#include "uhd/sim/baseline_datapath.hpp"
#include "uhd/sim/uhd_datapath.hpp"

namespace {

using namespace uhd;

std::vector<std::uint8_t> test_image() {
    const auto ds = data::make_synthetic_digits(1, 42);
    const auto img = ds.image(0);
    return {img.begin(), img.end()};
}

TEST(UhdDatapath, MatchesFastEncoderMeanPolicy) {
    core::uhd_config cfg;
    cfg.dim = 128;
    const core::uhd_encoder enc(cfg, {28, 28, 1});
    const sim::uhd_datapath_sim datapath(enc);
    const auto image = test_image();
    const auto from_sim = datapath.run(image);
    const auto from_encoder = enc.encode_sign(image);
    EXPECT_EQ(from_sim, from_encoder);
}

TEST(UhdDatapath, MatchesFastEncoderHalfInputsPolicy) {
    core::uhd_config cfg;
    cfg.dim = 128;
    cfg.policy = core::binarize_policy::half_inputs;
    const core::uhd_encoder enc(cfg, {28, 28, 1});
    const sim::uhd_datapath_sim datapath(enc);
    const auto image = test_image();
    EXPECT_EQ(datapath.run(image), enc.encode_sign(image));
}

TEST(UhdDatapath, EventCountsAreExact) {
    core::uhd_config cfg;
    cfg.dim = 64;
    const core::uhd_encoder enc(cfg, {6, 6, 1});
    const sim::uhd_datapath_sim datapath(enc);
    std::vector<std::uint8_t> image(36, 128);
    sim::event_counts events;
    (void)datapath.run(image, &events);
    const std::uint64_t hd = 36ull * 64ull;
    EXPECT_EQ(events.cycles, hd);
    EXPECT_EQ(events.comparator_ops, hd);
    EXPECT_EQ(events.bram_scalar_reads, hd);
    EXPECT_EQ(events.ust_fetches, 2 * hd);
    EXPECT_EQ(events.reg_scalar_reads, hd);
    EXPECT_EQ(events.xor_binds, 0u);    // uHD is multiplier-less
    EXPECT_EQ(events.lfsr_steps, 0u);   // and needs no pseudo-randomness
    EXPECT_LE(events.counter_increments, hd);
    EXPECT_LE(events.sign_latches, 64u);
}

TEST(UhdDatapath, EventsAccumulateAcrossRuns) {
    core::uhd_config cfg;
    cfg.dim = 64;
    const core::uhd_encoder enc(cfg, {6, 6, 1});
    const sim::uhd_datapath_sim datapath(enc);
    std::vector<std::uint8_t> image(36, 60);
    sim::event_counts events;
    (void)datapath.run(image, &events);
    const auto first_cycles = events.cycles;
    (void)datapath.run(image, &events);
    EXPECT_EQ(events.cycles, 2 * first_cycles);
}

TEST(BaselineDatapath, MatchesFastEncoder) {
    hdc::baseline_config cfg;
    cfg.dim = 128;
    const hdc::baseline_encoder enc(cfg, {28, 28, 1});
    const sim::baseline_datapath_sim datapath(enc);
    const auto image = test_image();
    EXPECT_EQ(datapath.run(image), enc.encode_sign(image));
}

TEST(BaselineDatapath, EventCountsAreExact) {
    hdc::baseline_config cfg;
    cfg.dim = 64;
    const hdc::baseline_encoder enc(cfg, {6, 6, 1});
    const sim::baseline_datapath_sim datapath(enc);
    std::vector<std::uint8_t> image(36, 200);
    sim::event_counts events;
    (void)datapath.run(image, &events);
    const std::uint64_t hd = 36ull * 64ull;
    EXPECT_EQ(events.cycles, hd);
    EXPECT_EQ(events.xor_binds, hd);
    EXPECT_EQ(events.comparator_ops, hd);
    EXPECT_EQ(events.lfsr_steps, 2 * hd); // P and L random bits
    EXPECT_EQ(events.ust_fetches, 0u);    // no unary streams in the baseline
    EXPECT_EQ(events.bram_scalar_reads, 0u);
}

TEST(BaselineDatapath, UhdNeedsFewerRandomEventsThanBaseline) {
    // The headline architectural difference in event space: uHD performs no
    // LFSR steps and no binding XORs; the baseline performs 2HD and HD.
    core::uhd_config ucfg;
    ucfg.dim = 64;
    const core::uhd_encoder uenc(ucfg, {6, 6, 1});
    hdc::baseline_config bcfg;
    bcfg.dim = 64;
    const hdc::baseline_encoder benc(bcfg, {6, 6, 1});
    std::vector<std::uint8_t> image(36, 90);
    sim::event_counts ue;
    sim::event_counts be;
    (void)sim::uhd_datapath_sim(uenc).run(image, &ue);
    (void)sim::baseline_datapath_sim(benc).run(image, &be);
    EXPECT_EQ(ue.lfsr_steps + ue.xor_binds, 0u);
    EXPECT_GT(be.lfsr_steps + be.xor_binds, 0u);
}

TEST(EventCounts, ToStringContainsAllFields) {
    sim::event_counts e;
    e.cycles = 5;
    e.ust_fetches = 7;
    const std::string s = e.to_string();
    EXPECT_NE(s.find("cycles=5"), std::string::npos);
    EXPECT_NE(s.find("ust_fetches=7"), std::string::npos);
}

} // namespace
