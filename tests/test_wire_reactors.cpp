// Multi-reactor wire server tests: N SO_REUSEPORT epoll loops on one
// port must stay invisible to clients — every reply bit-identical to the
// snapshot oracle regardless of which reactor a connection lands on, the
// per-reactor stats shards must sum exactly to the aggregated stats(),
// partial_fit must stay serialized across reactors, and stop() racing
// in-flight traffic must tear every shard down cleanly. This suite also
// runs under TSan in CI (the mailbox/eventfd shutdown ordering and the
// trainer mutex are exactly the races TSan can see).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <thread>
#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/inference_snapshot.hpp"
#include "uhd/net/wire_client.hpp"
#include "uhd/net/wire_server.hpp"
#include "uhd/serve/inference_engine.hpp"

namespace {

using namespace uhd;
using namespace uhd::net;

constexpr long recv_timeout_ms = 20000;

/// Serving fixture pinned to a reactor count (and optionally the
/// engine-side off-loop raw encode stage).
struct sharded_fixture {
    data::dataset train = data::make_synthetic_digits(120, 91);
    data::dataset test = data::make_synthetic_digits(40, 92);
    core::uhd_model model;
    std::optional<serve::inference_engine> engine;
    std::optional<wire_server> server;

    explicit sharded_fixture(std::size_t reactors, bool off_loop_raw = false)
        : model(make_config(), train.shape(), train.num_classes(),
                hdc::train_mode::raw_sums, hdc::query_mode::binarized) {
        model.fit(train);
        serve::engine_options engine_options;
        if (off_loop_raw) engine_options.encoder = &model.encoder();
        engine.emplace(model.snapshot(), engine_options);
        wire_server_options options;
        options.reactors = reactors;
        server.emplace(*engine, options, &model);
        server->start();
    }

    static core::uhd_config make_config() {
        core::uhd_config cfg;
        cfg.dim = 512;
        return cfg;
    }

    [[nodiscard]] wire_client connect() const {
        wire_client client("127.0.0.1", server->port());
        client.set_recv_timeout_ms(recv_timeout_ms);
        return client;
    }

    [[nodiscard]] std::vector<std::int32_t> encoded_query(std::size_t i) const {
        std::vector<std::int32_t> out(model.encoder().dim());
        model.encoder().encode(test.image(i % test.size()), out);
        return out;
    }
};

/// Field-wise shard sum, for comparing against the aggregated stats().
wire_stats sum_shards(const wire_server& server) {
    wire_stats total;
    for (std::size_t i = 0; i < server.reactor_count(); ++i) {
        total += server.reactor_stats(i);
    }
    return total;
}

TEST(WireReactors, ManyConnectionsAcrossReactorsAnswerBitIdentical) {
    const sharded_fixture fx(3);
    ASSERT_EQ(fx.server->reactor_count(), 3u);
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    constexpr std::size_t n_conns = 8;
    constexpr std::size_t per_conn = 40;
    std::vector<std::thread> threads;
    std::atomic<std::size_t> mismatches{0};
    for (std::size_t t = 0; t < n_conns; ++t) {
        threads.emplace_back([&, t] {
            wire_client client = fx.connect();
            for (std::size_t q = 0; q < per_conn; ++q) {
                const auto encoded = fx.encoded_query(t * 17 + q);
                if (client.predict_encoded(encoded).label !=
                    oracle.predict_encoded(encoded)) {
                    mismatches.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0u);
    const wire_stats total = fx.server->stats();
    EXPECT_EQ(total.connections_accepted, n_conns);
    EXPECT_GE(total.frames_in, n_conns * per_conn);
}

TEST(WireReactors, ShardStatsSumExactlyToAggregatedTotals) {
    sharded_fixture fx(4);
    constexpr std::size_t n_conns = 6;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < n_conns; ++t) {
        threads.emplace_back([&, t] {
            wire_client client = fx.connect();
            client.ping();
            for (std::size_t q = 0; q < 25; ++q) {
                (void)client.predict_encoded(fx.encoded_query(t + q));
            }
        });
    }
    for (auto& t : threads) t.join();
    // stop() first: it freezes the shards (and loop_cpu_ns stops
    // ticking), and the counters must survive it for exactly this kind
    // of post-run reading.
    fx.server->stop();
    const wire_stats total = fx.server->stats();
    const wire_stats summed = sum_shards(*fx.server);
    EXPECT_EQ(summed.connections_accepted, total.connections_accepted);
    EXPECT_EQ(summed.connections_active, total.connections_active);
    EXPECT_EQ(summed.frames_in, total.frames_in);
    EXPECT_EQ(summed.frames_out, total.frames_out);
    EXPECT_EQ(summed.bytes_in, total.bytes_in);
    EXPECT_EQ(summed.bytes_out, total.bytes_out);
    EXPECT_EQ(summed.malformed_frames, total.malformed_frames);
    EXPECT_EQ(summed.throttle_events, total.throttle_events);
    EXPECT_EQ(summed.loop_cpu_ns, total.loop_cpu_ns);
    EXPECT_GT(total.loop_cpu_ns, 0u);
    EXPECT_EQ(total.connections_accepted, n_conns);
    EXPECT_EQ(total.connections_active, 0u);
    EXPECT_EQ(total.frames_in, n_conns * 26u);
}

TEST(WireReactors, RawOffLoopEncodeAcrossReactorsMatchesOracle) {
    const sharded_fixture fx(2, /*off_loop_raw=*/true);
    const hdc::inference_snapshot oracle = fx.model.snapshot();
    constexpr std::size_t n_conns = 4;
    std::vector<std::thread> threads;
    std::atomic<std::size_t> mismatches{0};
    for (std::size_t t = 0; t < n_conns; ++t) {
        threads.emplace_back([&, t] {
            wire_client client = fx.connect();
            for (std::size_t q = 0; q < 30; ++q) {
                const std::size_t i = (t * 11 + q) % fx.test.size();
                if (client.predict_raw(fx.test.image(i)).label !=
                    oracle.predict_encoded(fx.encoded_query(i))) {
                    mismatches.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0u);
    const serve::serve_stats engine_stats = fx.engine->stats();
    EXPECT_EQ(engine_stats.raw_queries, n_conns * 30u);
    EXPECT_GE(engine_stats.encode_kernel_calls, 1u);
    EXPECT_LE(engine_stats.encode_kernel_calls, engine_stats.raw_queries);
}

TEST(WireReactors, PartialFitStaysSerializedAcrossReactors) {
    // Concurrent partial_fit from connections on different reactors: the
    // trainer mutex must hand out strictly unique cumulative update
    // counts — merged across clients they are exactly 1..total.
    sharded_fixture fx(3);
    const data::dataset stream = data::make_synthetic_digits(48, 93);
    constexpr std::size_t n_conns = 4;
    const std::size_t per_conn = stream.size() / n_conns;
    std::vector<std::vector<std::uint64_t>> seen(n_conns);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < n_conns; ++t) {
        threads.emplace_back([&, t] {
            wire_client client = fx.connect();
            for (std::size_t q = 0; q < per_conn; ++q) {
                const std::size_t i = t * per_conn + q;
                const partial_fit_reply reply = client.partial_fit(
                    static_cast<std::uint32_t>(stream.label(i)),
                    stream.image(i));
                seen[t].push_back(reply.updates);
            }
        });
    }
    for (auto& t : threads) t.join();
    std::vector<std::uint64_t> merged;
    for (const auto& s : seen) {
        // Each connection observes its own counts strictly increasing.
        EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
        merged.insert(merged.end(), s.begin(), s.end());
    }
    std::sort(merged.begin(), merged.end());
    ASSERT_EQ(merged.size(), n_conns * per_conn);
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i], i + 1) << "duplicate or lost update count";
    }
}

TEST(WireReactors, StopRacingInflightTrafficShutsDownCleanly) {
    // stop() while every reactor still has pipelined requests in flight:
    // shard teardown must wait out engine callbacks on each mailbox (no
    // use-after-free, no hang). Run a few rounds to vary the interleaving.
    for (int round = 0; round < 3; ++round) {
        sharded_fixture fx(3);
        std::vector<std::uint8_t> burst;
        for (std::size_t i = 0; i < 48; ++i) {
            append_predict_encoded(burst, opcode::predict,
                                   static_cast<std::uint32_t>(i),
                                   fx.encoded_query(i));
        }
        std::vector<wire_client> clients;
        for (std::size_t c = 0; c < 6; ++c) {
            clients.push_back(fx.connect());
            clients.back().send_bytes(burst);
        }
        fx.server->stop(); // races the in-flight answers on purpose
        fx.server.reset();
        fx.engine.reset();
    }
}

TEST(WireReactors, ReactorCountResolvesFromEnvAndValidates) {
    data::dataset train = data::make_synthetic_digits(60, 91);
    core::uhd_model model(sharded_fixture::make_config(), train.shape(),
                          train.num_classes(), hdc::train_mode::raw_sums,
                          hdc::query_mode::binarized);
    model.fit(train);
    serve::inference_engine engine(model.snapshot());
    // Explicit option wins; 0 defers to UHD_NET_REACTORS (default 1).
    ::setenv("UHD_NET_REACTORS", "2", 1);
    {
        wire_server server(engine, {});
        server.start();
        EXPECT_EQ(server.reactor_count(), 2u);
        server.stop();
    }
    {
        wire_server_options options;
        options.reactors = 3;
        wire_server server(engine, options);
        server.start();
        EXPECT_EQ(server.reactor_count(), 3u);
        server.stop();
    }
    // Out-of-range values throw on the constructing thread; unparseable
    // text falls back to the default (the env_int convention).
    ::setenv("UHD_NET_REACTORS", "0", 1);
    EXPECT_THROW(wire_server(engine, {}), uhd::error);
    ::setenv("UHD_NET_REACTORS", "1000", 1);
    EXPECT_THROW(wire_server(engine, {}), uhd::error);
    ::setenv("UHD_NET_REACTORS", "junk", 1);
    {
        wire_server server(engine, {});
        server.start();
        EXPECT_EQ(server.reactor_count(), 1u);
        server.stop();
    }
    ::unsetenv("UHD_NET_REACTORS");
}

} // namespace
