// Fixture suite for the uhd_lint project-invariant analyzer.
//
// Each fixture tree under tests/lint_fixtures/ is a miniature project:
// `clean` passes every rule; the five violation trees each seed the
// violations one rule class must catch (including the acceptance-criteria
// seeds: a dropped kernel-table backend slot and an immintrin.h include
// in a portable header). The assertions pin rule id, file, and line, so a
// rule that silently stops firing — or fires on the wrong thing — fails
// here even while the real tree stays green. The real-tree zero-finding
// gate is the separate `uhd_lint_tree` CTest entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "uhd_lint/lint.hpp"

#ifndef UHD_LINT_FIXTURES_DIR
#error "UHD_LINT_FIXTURES_DIR must point at tests/lint_fixtures"
#endif

namespace {

using uhd_lint::finding;

std::vector<finding> lint_tree(const std::string& tree) {
    const uhd_lint::project p =
        uhd_lint::load_project(std::string(UHD_LINT_FIXTURES_DIR) + "/" + tree);
    EXPECT_FALSE(p.files.empty()) << "fixture tree " << tree << " loaded no files";
    return uhd_lint::run_rules(p);
}

bool has(const std::vector<finding>& findings, const std::string& rule,
         const std::string& file, std::size_t line) {
    return std::any_of(findings.begin(), findings.end(), [&](const finding& f) {
        return f.rule == rule && f.file == file && f.line == line;
    });
}

std::size_t count_rule_at(const std::vector<finding>& findings, const std::string& rule,
                          const std::string& file, std::size_t line) {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(), [&](const finding& f) {
            return f.rule == rule && f.file == file && f.line == line;
        }));
}

std::string dump(const std::vector<finding>& findings) {
    std::string out;
    for (const finding& f : findings) {
        out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
               f.message + "\n";
    }
    return out.empty() ? "(no findings)" : out;
}

/// All findings must belong to one rule class — a violation tree must not
/// trip unrelated rules.
bool only_rule(const std::vector<finding>& findings, const std::string& rule) {
    return std::all_of(findings.begin(), findings.end(),
                       [&](const finding& f) { return f.rule == rule; });
}

TEST(UhdLint, CleanTreePasses) {
    const std::vector<finding> findings = lint_tree("clean");
    EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(UhdLint, RuleRegistryListsAllFiveClasses) {
    std::vector<std::string> ids;
    for (const uhd_lint::rule& r : uhd_lint::all_rules()) {
        ids.emplace_back(r.id);
    }
    const std::vector<std::string> expected = {
        "isa-hermeticity", "kernel-table-parity", "dispatch-only",
        "bench-schema-sync", "header-hygiene"};
    EXPECT_EQ(ids, expected);
}

TEST(UhdLint, IsaHermeticityFiresOnIntrinsicsInPortableCode) {
    const std::vector<finding> findings = lint_tree("hermetic");
    // The acceptance-criteria seed: immintrin.h included by a portable
    // public header.
    EXPECT_TRUE(has(findings, "isa-hermeticity",
                    "src/core/include/uhd/core/thing.hpp", 8))
        << dump(findings);
    // __AVX2__ guard and _mm256 intrinsic in a portable TU.
    EXPECT_TRUE(has(findings, "isa-hermeticity", "src/core/thing.cpp", 13))
        << dump(findings);
    EXPECT_TRUE(has(findings, "isa-hermeticity", "src/core/thing.cpp", 14))
        << dump(findings);
    // The prose comment and string literal mentioning __AVX2__ must NOT
    // fire: exactly the three seeded violations, nothing else.
    EXPECT_EQ(findings.size(), 3u) << dump(findings);
    EXPECT_TRUE(only_rule(findings, "isa-hermeticity")) << dump(findings);
}

TEST(UhdLint, KernelTableParityFiresOnDroppedSlotAndMissingTu) {
    const std::vector<finding> findings = lint_tree("parity_drop");
    // The acceptance-criteria seed: the swar backend dropped the `beta`
    // and `geq_rematerialize_accumulate` slots — the arity mismatch and
    // both missing members must fire (the latter proves the parity rule
    // covers the rematerializing kernel slot).
    EXPECT_TRUE(has(findings, "kernel-table-parity",
                    "src/common/kernels_swar.cpp", 14))
        << dump(findings);
    EXPECT_TRUE(has(findings, "kernel-table-parity",
                    "src/common/kernels_swar.cpp", 1))
        << dump(findings);
    EXPECT_EQ(count_rule_at(findings, "kernel-table-parity",
                            "src/common/kernels_swar.cpp", 1),
              2u)
        << dump(findings);
    // A registered backend whose TU does not exist.
    EXPECT_TRUE(has(findings, "kernel-table-parity", "src/common/kernels.cpp", 19))
        << dump(findings);
    EXPECT_EQ(findings.size(), 4u) << dump(findings);
    EXPECT_TRUE(only_rule(findings, "kernel-table-parity")) << dump(findings);
}

TEST(UhdLint, DispatchOnlyFiresOnDetailNamespaceAndForceBackend) {
    const std::vector<finding> findings = lint_tree("direct_call");
    // force_backend named outside test/bench (line 7 is its first
    // occurrence in the violating TU).
    EXPECT_TRUE(has(findings, "dispatch-only", "src/core/thing.cpp", 7))
        << dump(findings);
    // kernels::detail and the swar_table accessor on the call line.
    EXPECT_TRUE(has(findings, "dispatch-only", "src/core/thing.cpp", 14))
        << dump(findings);
    EXPECT_EQ(findings.size(), 3u) << dump(findings);
    EXPECT_TRUE(only_rule(findings, "dispatch-only")) << dump(findings);
}

TEST(UhdLint, BenchSchemaSyncFiresOnDriftAndOrphanDoc) {
    const std::vector<finding> findings = lint_tree("schema_drift");
    // Emitted version 2 vs documented 1, anchored at the emission line.
    EXPECT_TRUE(has(findings, "bench-schema-sync", "bench/bench_foo.cpp", 10))
        << dump(findings);
    // Documented bench `bar` that nothing emits, anchored at the marker.
    EXPECT_TRUE(has(findings, "bench-schema-sync", "bench/README.md", 6))
        << dump(findings);
    EXPECT_EQ(findings.size(), 2u) << dump(findings);
    EXPECT_TRUE(only_rule(findings, "bench-schema-sync")) << dump(findings);
}

TEST(UhdLint, HeaderHygieneFiresOnMissingGuardAndMissingIncludes) {
    const std::vector<finding> findings = lint_tree("hygiene");
    const std::string header = "src/core/include/uhd/core/thing.hpp";
    EXPECT_TRUE(has(findings, "header-hygiene", header, 4)) << dump(findings);
    EXPECT_TRUE(has(findings, "header-hygiene", header, 9)) << dump(findings);
    EXPECT_TRUE(has(findings, "header-hygiene", header, 10)) << dump(findings);
    EXPECT_EQ(findings.size(), 3u) << dump(findings);
    EXPECT_TRUE(only_rule(findings, "header-hygiene")) << dump(findings);
}

TEST(UhdLint, RuleFilterRunsOnlySelectedRules) {
    const uhd_lint::project p =
        uhd_lint::load_project(std::string(UHD_LINT_FIXTURES_DIR) + "/hermetic");
    const std::vector<std::string> only = {"bench-schema-sync"};
    EXPECT_TRUE(uhd_lint::run_rules(p, only).empty());
    const std::vector<std::string> unknown = {"no-such-rule"};
    EXPECT_THROW((void)uhd_lint::run_rules(p, unknown), std::runtime_error);
}

TEST(UhdLint, StripperBlanksCommentsStringsAndRawStrings) {
    const std::string raw =
        "int a; // __AVX2__ comment\n"
        "const char* s = \"_mm256_add\"; /* __SSE2__ */\n"
        "const char* r = R\"(__AVX512F__)\";\n"
        "int b = 1'000'000;\n";
    const std::string code = uhd_lint::strip_comments_and_strings(raw);
    EXPECT_EQ(code.size(), raw.size());
    EXPECT_EQ(std::count(code.begin(), code.end(), '\n'),
              std::count(raw.begin(), raw.end(), '\n'));
    EXPECT_EQ(code.find("__AVX2__"), std::string::npos);
    EXPECT_EQ(code.find("_mm256_add"), std::string::npos);
    EXPECT_EQ(code.find("__SSE2__"), std::string::npos);
    EXPECT_EQ(code.find("__AVX512F__"), std::string::npos);
    EXPECT_NE(code.find("int a;"), std::string::npos);
    EXPECT_NE(uhd_lint::find_token(code, "b"), std::string::npos);
    // Digit separators must not open a character literal.
    EXPECT_NE(code.find("1'000'000"), std::string::npos);
}

TEST(UhdLint, TokenSearchRespectsIdentifierBoundaries) {
    const std::string code = "hamming_argmin2_prefix hamming_argmin";
    EXPECT_EQ(uhd_lint::find_token(code, "hamming_argmin"), 23u);
    EXPECT_NE(uhd_lint::find_token(code, "hamming_argmin2_prefix"),
              std::string::npos);
}

} // namespace
