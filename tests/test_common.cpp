// Unit tests for the common substrate: RNG, bit utilities, ledger, config,
// table rendering, and binary serialization.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "uhd/common/alloc_ledger.hpp"
#include "uhd/common/bits.hpp"
#include "uhd/common/config.hpp"
#include "uhd/common/error.hpp"
#include "uhd/common/io.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/common/stopwatch.hpp"
#include "uhd/common/table.hpp"

namespace {

using namespace uhd;

TEST(Rng, SplitMixIsDeterministic) {
    splitmix64 a(42);
    splitmix64 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixSeedsDiffer) {
    splitmix64 a(1);
    splitmix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, Hash64MatchesSplitMixStep) {
    EXPECT_EQ(hash64(7), splitmix64(7).next());
}

TEST(Rng, XoshiroIsDeterministic) {
    xoshiro256ss a(123);
    xoshiro256ss b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextUnitInRange) {
    xoshiro256ss rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.next_unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, NextUnitMeanNearHalf) {
    xoshiro256ss rng(10);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.next_unit();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
    xoshiro256ss rng(11);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(Rng, NextBelowZeroBound) {
    xoshiro256ss rng(11);
    EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
    xoshiro256ss rng(12);
    std::array<int, 7> seen{};
    for (int i = 0; i < 10000; ++i) ++seen[rng.next_below(7)];
    for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(Bits, WordsForBits) {
    EXPECT_EQ(words_for_bits(0), 0u);
    EXPECT_EQ(words_for_bits(1), 1u);
    EXPECT_EQ(words_for_bits(64), 1u);
    EXPECT_EQ(words_for_bits(65), 2u);
    EXPECT_EQ(words_for_bits(1024), 16u);
}

TEST(Bits, LowMask) {
    EXPECT_EQ(low_mask(0), 0u);
    EXPECT_EQ(low_mask(1), 1u);
    EXPECT_EQ(low_mask(8), 0xFFu);
    EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bits, CeilLog2) {
    EXPECT_EQ(ceil_log2(1), 0);
    EXPECT_EQ(ceil_log2(2), 1);
    EXPECT_EQ(ceil_log2(3), 2);
    EXPECT_EQ(ceil_log2(784), 10);
    EXPECT_EQ(ceil_log2(1024), 10);
    EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Bits, IsPow2) {
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(1024));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(3));
}

TEST(Bits, ReverseBits) {
    EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
    EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
    EXPECT_EQ(reverse_bits(0xFF, 8), 0xFFu);
}

TEST(AllocLedger, AccumulatesByLabel) {
    alloc_ledger ledger;
    ledger.add("a", 100);
    ledger.add("b", 50);
    ledger.add("a", 25);
    EXPECT_EQ(ledger.total_bytes(), 175u);
    EXPECT_EQ(ledger.entries().size(), 2u);
    EXPECT_EQ(ledger.entries()[0].second, 125u);
}

TEST(AllocLedger, TotalKibRoundsUp) {
    alloc_ledger ledger;
    ledger.add("x", 1);
    EXPECT_EQ(ledger.total_kib(), 1u);
    ledger.add("x", 1023);
    EXPECT_EQ(ledger.total_kib(), 1u);
    ledger.add("x", 1);
    EXPECT_EQ(ledger.total_kib(), 2u);
}

TEST(Config, EnvIntFallback) {
    unsetenv("UHD_TEST_INT");
    EXPECT_EQ(env_int("UHD_TEST_INT", 7), 7);
    setenv("UHD_TEST_INT", "42", 1);
    EXPECT_EQ(env_int("UHD_TEST_INT", 7), 42);
    setenv("UHD_TEST_INT", "junk", 1);
    EXPECT_EQ(env_int("UHD_TEST_INT", 7), 7);
    unsetenv("UHD_TEST_INT");
}

TEST(Config, EnvIntRejectsNegative) {
    setenv("UHD_TEST_INT", "-3", 1);
    EXPECT_THROW((void)env_int("UHD_TEST_INT", 7), uhd::error);
    unsetenv("UHD_TEST_INT");
}

TEST(Config, EnvBoolParsing) {
    setenv("UHD_TEST_BOOL", "true", 1);
    EXPECT_TRUE(env_bool("UHD_TEST_BOOL", false));
    setenv("UHD_TEST_BOOL", "0", 1);
    EXPECT_FALSE(env_bool("UHD_TEST_BOOL", true));
    setenv("UHD_TEST_BOOL", "weird", 1);
    EXPECT_TRUE(env_bool("UHD_TEST_BOOL", true));
    unsetenv("UHD_TEST_BOOL");
}

TEST(Config, EnvString) {
    unsetenv("UHD_TEST_STR");
    EXPECT_EQ(env_string("UHD_TEST_STR", "dflt"), "dflt");
    setenv("UHD_TEST_STR", "value", 1);
    EXPECT_EQ(env_string("UHD_TEST_STR", "dflt"), "value");
    unsetenv("UHD_TEST_STR");
}

TEST(Table, RendersAlignedColumns) {
    text_table t;
    t.set_header({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    const std::string out = t.to_string();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, Formatters) {
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_ratio(43.75, 1), "43.8x");
    EXPECT_EQ(format_sci(0.00017, 2), "1.70e-04");
}

TEST(Io, RoundTripScalars) {
    std::stringstream ss;
    io::write_header(ss, 0x1234u, 3);
    io::write_u64(ss, 77);
    io::write_f64(ss, 2.5);
    io::write_string(ss, "hello");
    EXPECT_EQ(io::read_header(ss, 0x1234u, 5), 3u);
    EXPECT_EQ(io::read_u64(ss), 77u);
    EXPECT_DOUBLE_EQ(io::read_f64(ss), 2.5);
    EXPECT_EQ(io::read_string(ss), "hello");
}

TEST(Io, HeaderMagicMismatchThrows) {
    std::stringstream ss;
    io::write_header(ss, 0x1234u, 1);
    EXPECT_THROW((void)io::read_header(ss, 0x9999u, 1), uhd::error);
}

TEST(Io, VersionTooNewThrows) {
    std::stringstream ss;
    io::write_header(ss, 0x1234u, 9);
    EXPECT_THROW((void)io::read_header(ss, 0x1234u, 2), uhd::error);
}

TEST(Io, PodVectorRoundTrip) {
    std::stringstream ss;
    std::vector<std::int32_t> v = {1, -2, 3, 2000000000};
    io::write_pod_vector(ss, v);
    EXPECT_EQ(io::read_pod_vector<std::int32_t>(ss), v);
}

TEST(Io, TruncatedReadThrows) {
    std::stringstream ss;
    io::write_u32(ss, 5);
    (void)io::read_u32(ss);
    EXPECT_THROW((void)io::read_u64(ss), uhd::error);
}

TEST(Stopwatch, TimeAdvances) {
    stopwatch sw;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
    EXPECT_GE(sw.seconds(), 0.0);
    EXPECT_GE(sw.microseconds(), sw.milliseconds());
}

TEST(Error, RequireThrowsWithContext) {
    try {
        UHD_REQUIRE(1 == 2, "math is broken");
        FAIL() << "expected throw";
    } catch (const uhd::error& e) {
        EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
    }
}

} // namespace
