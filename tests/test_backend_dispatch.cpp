// Tests for the uhd::kernels backend registry: probe sanity, auto
// selection, the UHD_BACKEND override surface, backend forcing across the
// whole classifier pipeline (encode -> fit -> predict -> dynamic cascade,
// bit-identical per backend), and the failure mode — an unknown or
// inadmissible backend request must produce a clean uhd::error diagnostic,
// never a crash or a silent fallback.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "uhd/common/cpu_features.hpp"
#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/classifier.hpp"

namespace {

using namespace uhd;

/// RAII reset: every test that forces a backend must leave the process on
/// the environment-selected one, or later tests would silently run on the
/// last forced table.
struct backend_reset {
    ~backend_reset() {
        const std::string_view env = kernels::backend_override();
        kernels::force_backend(env.empty() ? "auto" : env);
    }
};

using kernels::admissible_backends;

TEST(BackendRegistry, CompiledBackendsAlwaysIncludePortableOnes) {
    ASSERT_GE(kernels::compiled_backends().size(), 2u);
    ASSERT_NE(kernels::find_backend("scalar"), nullptr);
    ASSERT_NE(kernels::find_backend("swar"), nullptr);
    EXPECT_EQ(kernels::find_backend("scalar")->name, std::string("scalar"));
    EXPECT_EQ(kernels::find_backend("swar")->name, std::string("swar"));
    EXPECT_EQ(kernels::find_backend("not-a-backend"), nullptr);
    // The portable backends are admissible on every probe, including an
    // all-false one (non-x86).
    const cpu_features none{};
    EXPECT_TRUE(kernels::find_backend("scalar")->supported(none));
    EXPECT_TRUE(kernels::find_backend("swar")->supported(none));
}

TEST(BackendRegistry, AutoPicksWidestAdmissibleBackend) {
    const auto admissible = admissible_backends();
    ASSERT_FALSE(admissible.empty());
    const kernels::kernel_table& selected = kernels::select_backend("auto", cpu());
    EXPECT_EQ(&selected, admissible.back());
    // Empty request means auto (the unset-environment path).
    EXPECT_EQ(&kernels::select_backend("", cpu()), &selected);
    // On a featureless probe auto degrades to the widest portable backend,
    // never to nothing.
    const cpu_features none{};
    EXPECT_EQ(&kernels::select_backend("auto", none),
              kernels::find_backend("swar"));
}

TEST(BackendRegistry, AutoSelectsAvx2OnAvx2HardwareInGenericBuilds) {
    // The acceptance criterion of the dispatch refactor: when the probe
    // reports usable AVX2 and the binary carries the AVX2 TU, auto must
    // pick it — even though this build sets no global arch flags. A usable
    // AVX-512 probe outranks it (widest-last registry order).
    if (!cpu().avx2_usable() || kernels::find_backend("avx2") == nullptr) {
        GTEST_SKIP() << "AVX2 not available (probe: " << cpu().to_string() << ")";
    }
    if (cpu().avx512_usable() && kernels::find_backend("avx512") != nullptr) {
        GTEST_SKIP() << "AVX-512 outranks AVX2 on this host (probe: "
                     << cpu().to_string() << ")";
    }
    EXPECT_EQ(&kernels::select_backend("auto", cpu()),
              kernels::find_backend("avx2"));
}

TEST(BackendRegistry, AutoSelectsAvx512OnAvx512HardwareInGenericBuilds) {
    // Same criterion one tier up: a usable AVX-512 probe plus a compiled-in
    // avx512 TU means auto lands on avx512, with or without VPOPCNTDQ (the
    // popcount flavor is an implementation detail inside the TU).
    if (!cpu().avx512_usable() || kernels::find_backend("avx512") == nullptr) {
        GTEST_SKIP() << "AVX-512 not available (probe: " << cpu().to_string()
                     << ")";
    }
    EXPECT_EQ(&kernels::select_backend("auto", cpu()),
              kernels::find_backend("avx512"));
}

TEST(BackendRegistry, UnknownBackendNameFailsLoudlyWithValidChoices) {
    try {
        (void)kernels::select_backend("turbo", cpu());
        FAIL() << "select_backend accepted an unknown name";
    } catch (const uhd::error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("turbo"), std::string::npos) << what;
        EXPECT_NE(what.find("scalar"), std::string::npos) << what;
        EXPECT_NE(what.find("swar"), std::string::npos) << what;
        EXPECT_NE(what.find("auto"), std::string::npos) << what;
    }
    EXPECT_THROW((void)kernels::select_backend("AVX2", cpu()), uhd::error)
        << "backend names are case-sensitive";
    EXPECT_THROW(kernels::force_backend("neon"), uhd::error);
}

TEST(BackendRegistry, InadmissibleBackendFailsLoudlyWithProbeReport) {
    // Force an avx2 request against a probe that rejects it (the situation
    // on a pre-AVX2 machine or an OS without YMM state). The diagnostic
    // must name the request and the probed features — not crash, not fall
    // back silently.
    if (kernels::find_backend("avx2") == nullptr) {
        GTEST_SKIP() << "binary carries no avx2 backend";
    }
    cpu_features no_avx2 = cpu();
    no_avx2.avx2 = false;
    no_avx2.ymm_state = false;
    try {
        (void)kernels::select_backend("avx2", no_avx2);
        FAIL() << "select_backend accepted an inadmissible backend";
    } catch (const uhd::error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("avx2"), std::string::npos) << what;
        EXPECT_NE(what.find("probed"), std::string::npos) << what;
    }
}

TEST(BackendRegistry, InadmissibleAvx512FailsLoudlyWithAdmissibleList) {
    // Requesting avx512 on a host whose probe rejects it (no AVX-512, or an
    // OS that masks ZMM state out of XCR0) must throw a uhd::error that
    // names the request, the probed features, and the backends that ARE
    // admissible — the actionable half of the diagnostic.
    if (kernels::find_backend("avx512") == nullptr) {
        GTEST_SKIP() << "binary carries no avx512 backend";
    }
    cpu_features no_avx512 = cpu();
    no_avx512.avx512f = false;
    no_avx512.avx512bw = false;
    no_avx512.avx512vpopcntdq = false;
    no_avx512.zmm_state = false;
    ASSERT_FALSE(no_avx512.avx512_usable());
    try {
        (void)kernels::select_backend("avx512", no_avx512);
        FAIL() << "select_backend accepted an inadmissible avx512 request";
    } catch (const uhd::error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("avx512"), std::string::npos) << what;
        EXPECT_NE(what.find("probed"), std::string::npos) << what;
        EXPECT_NE(what.find("admissible"), std::string::npos) << what;
        // The always-admissible portable backends must be offered.
        EXPECT_NE(what.find("scalar"), std::string::npos) << what;
        EXPECT_NE(what.find("swar"), std::string::npos) << what;
    }
}

TEST(BackendRegistry, ProbeIsStableAndConsistent) {
    const cpu_features a = probe_cpu_features();
    const cpu_features b = probe_cpu_features();
    EXPECT_EQ(a.to_string(), b.to_string());
    EXPECT_EQ(a.to_string(), cpu().to_string());
    // avx2_usable / avx512_usable imply each of their components.
    if (a.avx2_usable()) {
        EXPECT_TRUE(a.avx2);
        EXPECT_TRUE(a.avx);
        EXPECT_TRUE(a.osxsave);
        EXPECT_TRUE(a.ymm_state);
    }
    if (a.avx512_usable()) {
        EXPECT_TRUE(a.avx512f);
        EXPECT_TRUE(a.avx512bw);
        EXPECT_TRUE(a.osxsave);
        EXPECT_TRUE(a.zmm_state);
        // ZMM state subsumes YMM state in XCR0.
        EXPECT_TRUE(a.ymm_state);
    }
    EXPECT_FALSE(a.to_string().empty());
}

TEST(BackendRegistry, ForceBackendSwapsActiveTable) {
    backend_reset reset;
    for (const kernels::kernel_table* backend : admissible_backends()) {
        kernels::force_backend(backend->name);
        EXPECT_EQ(&kernels::active(), backend);
    }
}

// --- whole-pipeline equivalence under every forced backend ----------------
//
// The contract the registry must uphold: the *model* — trained state,
// predictions, dynamic-cascade answers — is a pure function of the data,
// independent of which admissible backend computed it. Train and predict
// once per backend and require bit-identical results across the matrix.

struct pipeline_result {
    std::vector<std::int32_t> encoded;       // one encoded image
    std::vector<std::int32_t> class0_acc;    // trained accumulator, class 0
    std::vector<std::size_t> predictions;    // binarized-mode batch predict
    std::vector<std::size_t> predictions_int;// integer-mode batch predict
    std::vector<std::size_t> dynamic;        // early-exit cascade answers

    bool operator==(const pipeline_result&) const = default;
};

pipeline_result run_pipeline() {
    const auto train = data::make_synthetic_digits(80, 21);
    const auto test = data::make_synthetic_digits(40, 22);
    const core::uhd_config cfg{.dim = 512};
    const core::uhd_encoder enc(cfg, train.shape());

    pipeline_result r;
    r.encoded.resize(enc.dim());
    enc.encode(test.image(0), r.encoded);

    hdc::hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(),
                                              hdc::train_mode::binarized_images,
                                              hdc::query_mode::binarized);
    clf.fit(train);
    const auto acc = clf.class_accumulator(0).values();
    r.class0_acc.assign(acc.begin(), acc.end());
    r.predictions = clf.predict_batch(test);

    hdc::hd_classifier<core::uhd_encoder> clf_int(enc, train.num_classes(),
                                                  hdc::train_mode::raw_sums,
                                                  hdc::query_mode::integer);
    clf_int.fit(train);
    r.predictions_int = clf_int.predict_batch(test);

    const hdc::dynamic_query_policy policy =
        clf.calibrate_dynamic(train, /*target_agreement=*/0.95);
    for (std::size_t i = 0; i < test.size(); ++i) {
        r.dynamic.push_back(clf.predict_dynamic(test.image(i), policy));
    }
    return r;
}

TEST(BackendMatrix, WholePipelineBitIdenticalUnderEveryForcedBackend) {
    backend_reset reset;
    const auto admissible = admissible_backends();
    ASSERT_GE(admissible.size(), 2u);

    kernels::force_backend("scalar");
    const pipeline_result oracle = run_pipeline();
    EXPECT_FALSE(oracle.predictions.empty());

    for (const kernels::kernel_table* backend : admissible) {
        kernels::force_backend(backend->name);
        const pipeline_result got = run_pipeline();
        EXPECT_EQ(got, oracle) << "backend=" << backend->name;
    }
}

TEST(BackendMatrix, ActiveBackendHonorsEnvironmentOverride) {
    // The active() selection is driven by UHD_BACKEND; the ctest matrix
    // registers this whole binary under each forced value. Here we verify
    // in-process that the resolved table matches whatever the environment
    // demands of this run.
    const std::string_view env = kernels::backend_override();
    const kernels::kernel_table& resolved =
        kernels::select_backend(env.empty() ? "auto" : env, cpu());
    EXPECT_EQ(&kernels::active(), &resolved)
        << "UHD_BACKEND='" << env << "' active=" << kernels::active().name;
    if (!env.empty() && env != "auto") {
        EXPECT_EQ(std::string_view(kernels::active().name), env);
    }
}

} // namespace
