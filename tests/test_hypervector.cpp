// Tests for hypervectors, binding/permutation, accumulators, and similarity.
#include <gtest/gtest.h>

#include "uhd/common/error.hpp"
#include "uhd/hdc/accumulator.hpp"
#include "uhd/hdc/hypervector.hpp"
#include "uhd/hdc/similarity.hpp"

namespace {

using namespace uhd::hdc;

TEST(Hypervector, DefaultElementsArePlusOne) {
    const hypervector v(64);
    for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(v.element(i), +1);
    EXPECT_EQ(v.count_positive(), 64u);
}

TEST(Hypervector, SetElementRoundTrip) {
    hypervector v(10);
    v.set_element(3, -1);
    v.set_element(7, -5); // any negative maps to -1
    EXPECT_EQ(v.element(3), -1);
    EXPECT_EQ(v.element(7), -1);
    EXPECT_EQ(v.count_negative(), 2u);
    v.set_element(3, +2);
    EXPECT_EQ(v.element(3), +1);
}

TEST(Hypervector, RandomIsBalancedAndDeterministic) {
    uhd::xoshiro256ss rng_a(5);
    uhd::xoshiro256ss rng_b(5);
    const hypervector a = hypervector::random(4096, rng_a);
    const hypervector b = hypervector::random(4096, rng_b);
    EXPECT_EQ(a, b);
    // Balanced within 4 sigma: |#neg - D/2| < 4 * sqrt(D)/2.
    const double deviation =
        std::abs(static_cast<double>(a.count_negative()) - 2048.0);
    EXPECT_LT(deviation, 128.0);
}

TEST(Hypervector, DotIdentities) {
    uhd::xoshiro256ss rng(6);
    const hypervector a = hypervector::random(1024, rng);
    EXPECT_EQ(a.dot(a), 1024);
    EXPECT_EQ(a.dot(-a), -1024);
    const hypervector b = hypervector::random(1024, rng);
    // Random hypervectors are nearly orthogonal: |dot| < 5 sqrt(D).
    EXPECT_LT(std::abs(a.dot(b)), 160);
    EXPECT_EQ(a.dot(b), b.dot(a));
}

TEST(Hypervector, DotDimensionMismatchThrows) {
    EXPECT_THROW((void)hypervector(8).dot(hypervector(9)), uhd::error);
}

TEST(Bind, IsBipolarMultiplication) {
    uhd::xoshiro256ss rng(7);
    const hypervector a = hypervector::random(256, rng);
    const hypervector b = hypervector::random(256, rng);
    const hypervector bound = bind(a, b);
    for (std::size_t i = 0; i < 256; ++i) {
        EXPECT_EQ(bound.element(i), a.element(i) * b.element(i));
    }
}

TEST(Bind, SelfBindingIsIdentityVector) {
    uhd::xoshiro256ss rng(8);
    const hypervector a = hypervector::random(128, rng);
    EXPECT_EQ(bind(a, a).count_positive(), 128u);
}

TEST(Bind, BoundVectorIsOrthogonalToInputs) {
    uhd::xoshiro256ss rng(9);
    const hypervector a = hypervector::random(4096, rng);
    const hypervector b = hypervector::random(4096, rng);
    const hypervector bound = bind(a, b);
    EXPECT_LT(std::abs(bound.dot(a)), 320);
    EXPECT_LT(std::abs(bound.dot(b)), 320);
}

TEST(Permute, RotationPreservesCountsAndIsInvertible) {
    uhd::xoshiro256ss rng(10);
    const hypervector a = hypervector::random(100, rng);
    const hypervector rotated = permute(a, 17);
    EXPECT_EQ(rotated.count_negative(), a.count_negative());
    EXPECT_EQ(permute(rotated, 100 - 17), a);
    EXPECT_EQ(permute(a, 0), a);
    EXPECT_EQ(permute(a, 100), a);
}

TEST(Accumulator, AddAndSign) {
    accumulator acc(4);
    hypervector v(4);
    v.set_element(1, -1);
    acc.add(v);
    acc.add(v);
    hypervector w(4);
    w.set_element(2, -1);
    acc.add(w);
    EXPECT_EQ(acc.value(0), 3);
    EXPECT_EQ(acc.value(1), -1);
    EXPECT_EQ(acc.value(2), 1);
    const hypervector s = acc.sign();
    EXPECT_EQ(s.element(0), +1);
    EXPECT_EQ(s.element(1), -1);
    EXPECT_EQ(s.element(2), +1);
}

TEST(Accumulator, SignTiesGoPositive) {
    accumulator acc(2);
    EXPECT_EQ(acc.sign().element(0), +1); // zero accumulator -> +1
}

TEST(Accumulator, SubtractUndoesAdd) {
    uhd::xoshiro256ss rng(11);
    const hypervector v = hypervector::random(64, rng);
    accumulator acc(64);
    acc.add(v);
    acc.subtract(v);
    for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(acc.value(i), 0);
}

TEST(Accumulator, AddValuesAndClear) {
    accumulator acc(3);
    const std::vector<std::int32_t> raw = {5, -2, 0};
    acc.add_values(raw);
    acc.add_values(raw);
    EXPECT_EQ(acc.value(0), 10);
    acc.subtract_values(raw);
    EXPECT_EQ(acc.value(0), 5);
    acc.clear();
    EXPECT_EQ(acc.value(0), 0);
    EXPECT_THROW(acc.add_values(std::vector<std::int32_t>{1}), uhd::error);
}

TEST(Accumulator, DimensionMismatchThrows) {
    accumulator acc(8);
    EXPECT_THROW(acc.add(hypervector(9)), uhd::error);
    EXPECT_THROW((void)acc.value(8), uhd::error);
}

TEST(Majority, OddSetFollowsElementwiseMajority) {
    hypervector a(4);
    hypervector b(4);
    hypervector c(4);
    a.set_element(0, -1);
    b.set_element(0, -1);
    c.set_element(1, -1);
    const std::vector<hypervector> inputs = {a, b, c};
    const hypervector m = majority(inputs);
    EXPECT_EQ(m.element(0), -1);
    EXPECT_EQ(m.element(1), +1);
    EXPECT_THROW((void)majority(std::vector<hypervector>{}), uhd::error);
}

TEST(Similarity, CosineOfBinarizedVectors) {
    uhd::xoshiro256ss rng(12);
    const hypervector a = hypervector::random(2048, rng);
    EXPECT_DOUBLE_EQ(cosine(a, a), 1.0);
    EXPECT_DOUBLE_EQ(cosine(a, -a), -1.0);
    const hypervector b = hypervector::random(2048, rng);
    EXPECT_LT(std::abs(cosine(a, b)), 0.1);
}

TEST(Similarity, CosineOfIntegerVectors) {
    const std::vector<std::int32_t> a = {1, 2, 3};
    const std::vector<std::int32_t> b = {2, 4, 6};
    const std::vector<std::int32_t> c = {-1, -2, -3};
    EXPECT_NEAR(cosine(std::span<const std::int32_t>(a), b), 1.0, 1e-12);
    EXPECT_NEAR(cosine(std::span<const std::int32_t>(a), c), -1.0, 1e-12);
    const std::vector<std::int32_t> zero = {0, 0, 0};
    EXPECT_DOUBLE_EQ(cosine(std::span<const std::int32_t>(a), zero), 0.0);
}

TEST(Similarity, MixedQueryClassCosine) {
    hypervector q(4); // all +1
    const std::vector<std::int32_t> cls = {3, 3, 3, 3};
    EXPECT_NEAR(cosine(q, cls), 1.0, 1e-12);
    q.set_element(0, -1);
    EXPECT_LT(cosine(q, cls), 1.0);
}

TEST(Similarity, HammingSimilarity) {
    uhd::xoshiro256ss rng(13);
    const hypervector a = hypervector::random(512, rng);
    EXPECT_DOUBLE_EQ(hamming_similarity(a, a), 1.0);
    EXPECT_DOUBLE_EQ(hamming_similarity(a, -a), 0.0);
    const hypervector b = hypervector::random(512, rng);
    EXPECT_NEAR(hamming_similarity(a, b), 0.5, 0.1);
}

} // namespace
