// Tests for the dataset container, IDX loader, canvas, and metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "uhd/common/error.hpp"
#include "uhd/data/canvas.hpp"
#include "uhd/data/dataset.hpp"
#include "uhd/data/idx.hpp"
#include "uhd/data/metrics.hpp"

namespace {

using namespace uhd::data;

dataset tiny_dataset() {
    dataset ds(image_shape{2, 2, 1}, 2);
    ds.add({0, 50, 100, 150}, 0);
    ds.add({10, 60, 110, 160}, 1);
    ds.add({20, 70, 120, 170}, 0);
    ds.add({30, 80, 130, 180}, 1);
    return ds;
}

TEST(Dataset, ShapeValidation) {
    EXPECT_THROW(dataset(image_shape{0, 2, 1}, 2), uhd::error);
    EXPECT_THROW(dataset(image_shape{2, 2, 2}, 2), uhd::error);
    EXPECT_THROW(dataset(image_shape{2, 2, 1}, 1), uhd::error);
}

TEST(Dataset, AddAndAccess) {
    const dataset ds = tiny_dataset();
    EXPECT_EQ(ds.size(), 4u);
    EXPECT_EQ(ds.label(1), 1u);
    EXPECT_EQ(ds.image(0)[3], 150);
    EXPECT_EQ(ds.class_counts(), (std::vector<std::size_t>{2, 2}));
}

TEST(Dataset, AddValidation) {
    dataset ds(image_shape{2, 2, 1}, 2);
    EXPECT_THROW(ds.add({1, 2, 3}, 0), uhd::error);       // wrong size
    EXPECT_THROW(ds.add({1, 2, 3, 4}, 2), uhd::error);    // bad label
    EXPECT_THROW((void)ds.image(0), uhd::error);          // empty access
}

TEST(Dataset, ShuffleIsDeterministicPermutation) {
    dataset a = tiny_dataset();
    dataset b = tiny_dataset();
    a.shuffle(7);
    b.shuffle(7);
    ASSERT_EQ(a.size(), b.size());
    std::size_t matches_original = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.label(i), b.label(i));
        EXPECT_EQ(a.image(i)[0], b.image(i)[0]);
    }
    // Same multiset of labels.
    EXPECT_EQ(a.class_counts(), tiny_dataset().class_counts());
    (void)matches_original;
}

TEST(Dataset, SplitPartitionsAllSamples) {
    const dataset ds = tiny_dataset();
    const auto [train, test] = ds.split(0.5, 3);
    EXPECT_EQ(train.size() + test.size(), ds.size());
    EXPECT_EQ(train.size(), 2u);
    EXPECT_THROW((void)ds.split(0.0, 3), uhd::error);
    EXPECT_THROW((void)ds.split(1.0, 3), uhd::error);
}

TEST(Dataset, GrayscaleConversionUsesLuma) {
    dataset rgb(image_shape{1, 1, 3}, 2);
    rgb.add({255, 0, 0}, 0); // pure red -> ~76
    rgb.add({0, 255, 0}, 1); // pure green -> ~150
    const dataset gray = rgb.to_grayscale();
    EXPECT_EQ(gray.shape().channels, 1u);
    EXPECT_NEAR(gray.image(0)[0], 76, 1);
    EXPECT_NEAR(gray.image(1)[0], 150, 1);
}

TEST(Dataset, GrayscaleOfGrayscaleIsCopy) {
    const dataset ds = tiny_dataset();
    const dataset gray = ds.to_grayscale();
    EXPECT_EQ(gray.size(), ds.size());
    EXPECT_EQ(gray.image(2)[1], ds.image(2)[1]);
}

TEST(Dataset, MemoryBytesPositive) {
    EXPECT_GT(tiny_dataset().memory_bytes(), 0u);
}

TEST(Canvas, DrawingPrimitivesStayInBounds) {
    canvas c(16, 16);
    c.add_disk(8, 8, 3, 100.0F);
    c.add_rect(-5, -5, 40, 40, 10.0F); // clips
    c.add_line(0, 0, 15, 15, 1.0, 50.0F);
    c.add_ring(8, 8, 5, 1.0, 30.0F);
    c.add_gradient(0.0F, 20.0F);
    const auto u8 = c.to_u8();
    EXPECT_EQ(u8.size(), 256u);
}

TEST(Canvas, ToU8Clamps) {
    canvas c(2, 2);
    c.set(0, 0, -50.0F);
    c.set(0, 1, 300.0F);
    c.set(1, 0, 128.0F);
    const auto u8 = c.to_u8();
    EXPECT_EQ(u8[0], 0);
    EXPECT_EQ(u8[1], 255);
    EXPECT_EQ(u8[2], 128);
}

TEST(Canvas, BlurPreservesMassApproximately) {
    canvas c(9, 9);
    c.set(4, 4, 81.0F);
    c.box_blur(1);
    float sum = 0.0F;
    for (std::size_t r = 0; r < 9; ++r) {
        for (std::size_t col = 0; col < 9; ++col) sum += c.at(r, col);
    }
    EXPECT_NEAR(sum, 81.0F, 1.0F);
}

TEST(Canvas, InvalidAccessThrows) {
    canvas c(4, 4);
    EXPECT_THROW((void)c.at(4, 0), uhd::error);
    EXPECT_THROW(c.set(0, 4, 1.0F), uhd::error);
    EXPECT_THROW(c.box_blur(0), uhd::error);
    EXPECT_THROW(canvas(0, 4), uhd::error);
}

TEST(Idx, RoundTripThroughFiles) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "uhd_idx_test";
    fs::create_directories(dir);
    const fs::path images_path = dir / "imgs";
    const fs::path labels_path = dir / "lbls";

    // Write a 2-image 2x3 IDX pair by hand (big-endian headers).
    auto write_be32 = [](std::ofstream& os, std::uint32_t v) {
        const unsigned char bytes[4] = {
            static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
            static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
        os.write(reinterpret_cast<const char*>(bytes), 4);
    };
    {
        std::ofstream images(images_path, std::ios::binary);
        write_be32(images, 0x803);
        write_be32(images, 2);
        write_be32(images, 2);
        write_be32(images, 3);
        for (int i = 0; i < 12; ++i) images.put(static_cast<char>(i * 10));
        std::ofstream labels(labels_path, std::ios::binary);
        write_be32(labels, 0x801);
        write_be32(labels, 2);
        labels.put(3);
        labels.put(7);
    }
    const dataset ds = load_idx(images_path.string(), labels_path.string());
    EXPECT_EQ(ds.size(), 2u);
    EXPECT_EQ(ds.shape().rows, 2u);
    EXPECT_EQ(ds.shape().cols, 3u);
    EXPECT_EQ(ds.label(0), 3u);
    EXPECT_EQ(ds.label(1), 7u);
    EXPECT_EQ(ds.image(1)[0], 60);
    fs::remove_all(dir);
}

TEST(Idx, MissingFilesReturnNullopt) {
    EXPECT_FALSE(try_load_mnist("/nonexistent/path").has_value());
}

TEST(ConfusionMatrix, AccuracyAndF1) {
    confusion_matrix m(3);
    m.record(0, 0);
    m.record(0, 0);
    m.record(1, 1);
    m.record(1, 2);
    m.record(2, 2);
    EXPECT_EQ(m.total(), 5u);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.8);
    EXPECT_DOUBLE_EQ(m.recall(0), 1.0);
    EXPECT_DOUBLE_EQ(m.recall(1), 0.5);
    EXPECT_DOUBLE_EQ(m.precision(2), 0.5);
    EXPECT_GT(m.macro_f1(), 0.0);
    EXPECT_THROW(m.record(3, 0), uhd::error);
}

TEST(ConfusionMatrix, EmptyAccuracyIsZero) {
    confusion_matrix m(2);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
    EXPECT_NE(m.to_string().find("confusion"), std::string::npos);
}

TEST(AccuracyOf, MatchesManualCount) {
    const std::vector<std::size_t> truth = {0, 1, 2, 1};
    const std::vector<std::size_t> pred = {0, 1, 1, 1};
    EXPECT_DOUBLE_EQ(accuracy_of(truth, pred), 0.75);
    EXPECT_THROW((void)accuracy_of(truth, std::vector<std::size_t>{0}), uhd::error);
}

} // namespace
