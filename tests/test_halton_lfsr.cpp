// Tests for the alternative LD sequences (van der Corput, Halton, R2) and
// the LFSR pseudo-random substrate of the baseline.
#include <gtest/gtest.h>

#include <set>

#include "uhd/common/error.hpp"
#include "uhd/lowdisc/halton.hpp"
#include "uhd/lowdisc/lfsr.hpp"

namespace {

using namespace uhd::ld;

TEST(RadicalInverse, Base2KnownValues) {
    EXPECT_DOUBLE_EQ(radical_inverse(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(radical_inverse(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(radical_inverse(2, 2), 0.25);
    EXPECT_DOUBLE_EQ(radical_inverse(3, 2), 0.75);
    EXPECT_DOUBLE_EQ(radical_inverse(4, 2), 0.125);
    EXPECT_DOUBLE_EQ(radical_inverse(5, 2), 0.625);
    EXPECT_DOUBLE_EQ(radical_inverse(6, 2), 0.375);
}

TEST(RadicalInverse, Base3KnownValues) {
    EXPECT_DOUBLE_EQ(radical_inverse(1, 3), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(radical_inverse(2, 3), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(radical_inverse(3, 3), 1.0 / 9.0);
}

TEST(RadicalInverse, InvalidBaseThrows) {
    EXPECT_THROW((void)radical_inverse(1, 1), uhd::error);
}

TEST(VanDerCorput, MatchesPaperSequenceIntro) {
    // Paper Fig. 2: "0, 1/2, 1/4, 3/4, 1/8, 5/8, 3/8, ..."
    const auto points = van_der_corput(7);
    const double expected[] = {0.0, 0.5, 0.25, 0.75, 0.125, 0.625, 0.375};
    for (int i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(points[i], expected[i]);
}

TEST(NthPrime, FirstPrimes) {
    EXPECT_EQ(nth_prime(1), 2u);
    EXPECT_EQ(nth_prime(2), 3u);
    EXPECT_EQ(nth_prime(5), 11u);
    EXPECT_EQ(nth_prime(10), 29u);
}

TEST(Halton, DimensionsUseSuccessivePrimes) {
    const halton_sequence seq(3);
    EXPECT_DOUBLE_EQ(seq.at(1, 0), 0.5);       // base 2
    EXPECT_DOUBLE_EQ(seq.at(1, 1), 1.0 / 3.0); // base 3
    EXPECT_DOUBLE_EQ(seq.at(1, 2), 0.2);       // base 5
    EXPECT_THROW((void)seq.at(0, 3), uhd::error);
}

TEST(Halton, PointsInUnitInterval) {
    const halton_sequence seq(4);
    for (std::size_t d = 0; d < 4; ++d) {
        for (const double x : seq.points(d, 500)) {
            EXPECT_GE(x, 0.0);
            EXPECT_LT(x, 1.0);
        }
    }
}

TEST(R2Sequence, DeterministicAndInRange) {
    const r2_sequence seq(8);
    for (std::size_t d = 0; d < 8; ++d) {
        for (const double x : seq.points(d, 500)) {
            EXPECT_GE(x, 0.0);
            EXPECT_LT(x, 1.0);
        }
        EXPECT_DOUBLE_EQ(seq.at(3, d), seq.at(3, d));
    }
}

TEST(R2Sequence, OneDimensionUsesGoldenRatio) {
    const r2_sequence seq(1);
    // alpha_1 = 1/phi where phi is the golden ratio.
    EXPECT_NEAR(seq.at(0, 0), 0.6180339887, 1e-9);
}

TEST(Lfsr, RejectsBadConfig) {
    EXPECT_THROW(lfsr(2, 1), uhd::error);
    EXPECT_THROW(lfsr(33, 1), uhd::error);
    EXPECT_THROW(lfsr(8, 0), uhd::error);
    EXPECT_THROW((void)maximal_taps(2), uhd::error);
}

class LfsrPeriods : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrPeriods, FibonacciIsMaximalLength) {
    const unsigned width = GetParam();
    lfsr reg(width, 1, lfsr_kind::fibonacci);
    const std::uint64_t period = reg.period();
    const std::uint32_t start = reg.state();
    std::uint64_t steps = 0;
    do {
        (void)reg.step();
        ++steps;
        ASSERT_NE(reg.state(), 0u);
        ASSERT_LE(steps, period);
    } while (reg.state() != start);
    EXPECT_EQ(steps, period);
}

TEST_P(LfsrPeriods, GaloisIsMaximalLength) {
    const unsigned width = GetParam();
    lfsr reg(width, 1, lfsr_kind::galois);
    const std::uint64_t period = reg.period();
    const std::uint32_t start = reg.state();
    std::uint64_t steps = 0;
    do {
        (void)reg.step();
        ++steps;
        ASSERT_NE(reg.state(), 0u);
        ASSERT_LE(steps, period);
    } while (reg.state() != start);
    EXPECT_EQ(steps, period);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrPeriods, ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16));

TEST(Lfsr, NextBitsPacksLsbFirst) {
    lfsr a(8, 0x5A);
    lfsr b(8, 0x5A);
    std::uint32_t expected = 0;
    for (unsigned i = 0; i < 8; ++i) {
        expected |= static_cast<std::uint32_t>(a.step()) << i;
    }
    EXPECT_EQ(b.next_bits(8), expected);
}

TEST(Lfsr, NextUnitInUnitInterval) {
    lfsr reg(16, 0xACE1);
    for (int i = 0; i < 1000; ++i) {
        const double u = reg.next_unit();
        EXPECT_GT(u, 0.0); // state never hits zero
        EXPECT_LT(u, 1.0);
    }
}

TEST(Lfsr, BitBalanceNearHalf) {
    lfsr reg(16, 1);
    std::size_t ones = 0;
    const std::size_t n = 65535;
    for (std::size_t i = 0; i < n; ++i) ones += reg.step();
    // Maximal-length sequence: 32768 ones vs 32767 zeros per period.
    EXPECT_EQ(ones, 32768u);
}

TEST(Lfsr, AllWidthsConstructible) {
    for (unsigned w = 3; w <= 32; ++w) {
        lfsr fib(w, 1, lfsr_kind::fibonacci);
        lfsr gal(w, 1, lfsr_kind::galois);
        EXPECT_EQ(fib.width(), w);
        (void)fib.step();
        (void)gal.step();
    }
}

} // namespace
