// Tests for the baseline position x level encoder, checked against a naive
// reference implementation built from the public item-memory API.
#include <gtest/gtest.h>

#include "uhd/common/error.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/baseline_encoder.hpp"

namespace {

using namespace uhd::hdc;

baseline_config small_config() {
    baseline_config cfg;
    cfg.dim = 128;
    cfg.levels = 16;
    cfg.seed = 11;
    return cfg;
}

std::vector<std::uint8_t> ramp_image(std::size_t pixels) {
    std::vector<std::uint8_t> image(pixels);
    for (std::size_t p = 0; p < pixels; ++p) {
        image[p] = static_cast<std::uint8_t>((p * 255) / (pixels - 1));
    }
    return image;
}

TEST(BaselineEncoder, MatchesNaiveReference) {
    const uhd::data::image_shape shape{4, 4, 1};
    const baseline_encoder enc(small_config(), shape);
    const auto image = ramp_image(16);

    std::vector<std::int32_t> fast(enc.dim());
    enc.encode(image, fast);

    // Naive reference: explicit bind-and-bundle per pixel via the public
    // item-memory accessors.
    for (std::size_t d = 0; d < enc.dim(); ++d) {
        std::int32_t acc = 0;
        for (std::size_t p = 0; p < 16; ++p) {
            const std::size_t k = enc.level_memory().level_of(image[p]);
            const int bound = enc.positions().vector(p).element(d) *
                              enc.level_memory().vector(k).element(d);
            acc += bound;
        }
        ASSERT_EQ(fast[d], acc) << "dimension " << d;
    }
}

TEST(BaselineEncoder, SignMatchesAccumulator) {
    const uhd::data::image_shape shape{4, 4, 1};
    const baseline_encoder enc(small_config(), shape);
    const auto image = ramp_image(16);
    std::vector<std::int32_t> acc(enc.dim());
    enc.encode(image, acc);
    const auto signed_hv = enc.encode_sign(image);
    for (std::size_t d = 0; d < enc.dim(); ++d) {
        EXPECT_EQ(signed_hv.element(d), acc[d] >= 0 ? +1 : -1);
    }
}

TEST(BaselineEncoder, ReseedChangesEncoding) {
    const uhd::data::image_shape shape{4, 4, 1};
    baseline_encoder enc(small_config(), shape);
    const auto image = ramp_image(16);
    std::vector<std::int32_t> before(enc.dim());
    enc.encode(image, before);
    enc.reseed(99);
    std::vector<std::int32_t> after(enc.dim());
    enc.encode(image, after);
    EXPECT_NE(before, after);
    // Reseeding back restores the original encoding (determinism).
    enc.reseed(11);
    std::vector<std::int32_t> restored(enc.dim());
    enc.encode(image, restored);
    EXPECT_EQ(before, restored);
}

TEST(BaselineEncoder, DifferentImagesProduceDifferentEncodings) {
    const uhd::data::image_shape shape{4, 4, 1};
    const baseline_encoder enc(small_config(), shape);
    std::vector<std::int32_t> a(enc.dim());
    std::vector<std::int32_t> b(enc.dim());
    enc.encode(ramp_image(16), a);
    enc.encode(std::vector<std::uint8_t>(16, 255), b);
    EXPECT_NE(a, b);
}

TEST(BaselineEncoder, LfsrSourceProducesValidEncodings) {
    baseline_config cfg = small_config();
    cfg.source = randomness_source::lfsr;
    const baseline_encoder enc(cfg, uhd::data::image_shape{4, 4, 1});
    std::vector<std::int32_t> acc(enc.dim());
    enc.encode(ramp_image(16), acc);
    for (const std::int32_t v : acc) {
        EXPECT_LE(std::abs(v), 16); // bounded by pixel count
    }
}

TEST(BaselineEncoder, Validation) {
    EXPECT_THROW(baseline_encoder(baseline_config{.dim = 32}, {4, 4, 1}), uhd::error);
    EXPECT_THROW(baseline_encoder(small_config(), {4, 4, 3}), uhd::error);
    const baseline_encoder enc(small_config(), {4, 4, 1});
    std::vector<std::int32_t> wrong(enc.dim() + 1);
    EXPECT_THROW(enc.encode(ramp_image(16), wrong), uhd::error);
    std::vector<std::int32_t> acc(enc.dim());
    EXPECT_THROW(enc.encode(ramp_image(15), acc), uhd::error);
}

TEST(BaselineEncoder, MemoryFootprintScalesWithDimension) {
    baseline_config small = small_config();
    baseline_config big = small_config();
    big.dim = 1024;
    const baseline_encoder a(small, {4, 4, 1});
    const baseline_encoder b(big, {4, 4, 1});
    EXPECT_GT(b.memory_bytes(), a.memory_bytes());
}

TEST(BaselineEncoder, AccumulatorBoundedByPixelCount) {
    const uhd::data::image_shape shape{8, 8, 1};
    const baseline_encoder enc(small_config(), shape);
    std::vector<std::int32_t> acc(enc.dim());
    enc.encode(ramp_image(64), acc);
    for (const std::int32_t v : acc) {
        EXPECT_LE(std::abs(v), 64);
        EXPECT_EQ((v + 64) % 2, 0); // parity: sum of 64 odd terms is even
    }
}

} // namespace
