// Tests for thermometer coding, the min/max AND/OR laws, and the paper's
// Fig. 4 unary comparator (exhaustive over all operand pairs).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "uhd/bitstream/stream_table.hpp"
#include "uhd/bitstream/unary.hpp"
#include "uhd/common/error.hpp"

namespace {

using namespace uhd::bs;

TEST(Unary, EncodeTrailingMatchesPaperExample) {
    // Paper Section II: X1 -> 0000011 (value 2), X2 -> 0011111 (value 5).
    EXPECT_EQ(unary_encode(2, 7).to_string(), "0000011");
    EXPECT_EQ(unary_encode(5, 7).to_string(), "0011111");
}

TEST(Unary, EncodeLeading) {
    EXPECT_EQ(unary_encode(3, 7, unary_alignment::ones_leading).to_string(), "1110000");
}

TEST(Unary, EncodeBounds) {
    EXPECT_EQ(unary_encode(0, 5).popcount(), 0u);
    EXPECT_EQ(unary_encode(5, 5).popcount(), 5u);
    EXPECT_THROW((void)unary_encode(6, 5), uhd::error);
}

TEST(Unary, IsUnaryDetectsValidCodes) {
    EXPECT_TRUE(is_unary(bitstream::from_string("0011")));
    EXPECT_TRUE(is_unary(bitstream::from_string("0000")));
    EXPECT_TRUE(is_unary(bitstream::from_string("1111")));
    EXPECT_FALSE(is_unary(bitstream::from_string("0101")));
    EXPECT_FALSE(is_unary(bitstream::from_string("1001")));
    EXPECT_TRUE(is_unary(bitstream::from_string("1100"), unary_alignment::ones_leading));
    EXPECT_FALSE(is_unary(bitstream::from_string("0011"), unary_alignment::ones_leading));
}

TEST(Unary, DecodeRejectsNonThermometer) {
    EXPECT_THROW((void)unary_decode(bitstream::from_string("0101")), uhd::error);
}

TEST(Unary, SaturatingAdd) {
    const bitstream a = unary_encode(3, 8);
    const bitstream b = unary_encode(4, 8);
    EXPECT_EQ(unary_decode(unary_saturating_add(a, b)), 7u);
    const bitstream c = unary_encode(6, 8);
    EXPECT_EQ(unary_decode(unary_saturating_add(c, c)), 8u); // saturates
}

TEST(Unary, AbsDiff) {
    EXPECT_EQ(unary_abs_diff(unary_encode(2, 8), unary_encode(6, 8)), 4u);
    EXPECT_EQ(unary_abs_diff(unary_encode(5, 8), unary_encode(5, 8)), 0u);
}

// Exhaustive property tests over all (a, b) pairs for a given stream length:
// AND is min, OR is max, XOR is |a-b|, comparator is (a >= b).
class UnaryPairs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UnaryPairs, AndIsMinimum) {
    const std::size_t n = GetParam();
    for (std::size_t a = 0; a <= n; ++a) {
        for (std::size_t b = 0; b <= n; ++b) {
            const bitstream sa = unary_encode(a, n);
            const bitstream sb = unary_encode(b, n);
            EXPECT_EQ(unary_decode(unary_min(sa, sb)), std::min(a, b));
        }
    }
}

TEST_P(UnaryPairs, OrIsMaximum) {
    const std::size_t n = GetParam();
    for (std::size_t a = 0; a <= n; ++a) {
        for (std::size_t b = 0; b <= n; ++b) {
            const bitstream sa = unary_encode(a, n);
            const bitstream sb = unary_encode(b, n);
            EXPECT_EQ(unary_decode(unary_max(sa, sb)), std::max(a, b));
        }
    }
}

TEST_P(UnaryPairs, XorIsAbsoluteDifference) {
    const std::size_t n = GetParam();
    for (std::size_t a = 0; a <= n; ++a) {
        for (std::size_t b = 0; b <= n; ++b) {
            EXPECT_EQ(unary_abs_diff(unary_encode(a, n), unary_encode(b, n)),
                      (a > b) ? a - b : b - a);
        }
    }
}

TEST_P(UnaryPairs, ComparatorMatchesGreaterEqual) {
    const std::size_t n = GetParam();
    for (std::size_t a = 0; a <= n; ++a) {
        for (std::size_t b = 0; b <= n; ++b) {
            const bool geq = unary_compare_geq(unary_encode(a, n), unary_encode(b, n));
            EXPECT_EQ(geq, a >= b) << "a=" << a << " b=" << b << " n=" << n;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(StreamLengths, UnaryPairs,
                         ::testing::Values(2, 3, 7, 8, 15, 16, 31));

TEST(UnaryComparator, PaperFig4WorkedExample) {
    // The paper compares data = 2 against Sobol = 5 on 7-bit streams and
    // expects logic-0 (2 >= 5 is false).
    const bitstream data = bitstream::from_string("0000011");
    const bitstream sobol = bitstream::from_string("0011111");
    EXPECT_FALSE(unary_compare_geq(data, sobol));
    EXPECT_TRUE(unary_compare_geq(sobol, data));
    // The intermediate minimum must be the smaller stream.
    EXPECT_EQ(unary_min(data, sobol), data);
}

TEST(UnaryComparator, LengthMismatchThrows) {
    EXPECT_THROW((void)unary_compare_geq(unary_encode(1, 4), unary_encode(1, 5)),
                 uhd::error);
}

TEST(StreamTable, HoldsAllLevels) {
    const unary_stream_table ust(16, 16);
    EXPECT_EQ(ust.levels(), 16u);
    EXPECT_EQ(ust.stream_length(), 16u);
    for (std::size_t q = 0; q < 16; ++q) {
        EXPECT_EQ(ust.value_of(ust.fetch(q)), q);
    }
}

TEST(StreamTable, FetchOutOfRangeThrows) {
    const unary_stream_table ust(16, 16);
    EXPECT_THROW((void)ust.fetch(16), uhd::error);
}

TEST(StreamTable, RejectsImpossibleGeometry) {
    EXPECT_THROW(unary_stream_table(20, 16), uhd::error); // 19 ones into 16 bits
}

TEST(StreamTable, MemoryFootprintPositive) {
    const unary_stream_table ust(16, 16);
    EXPECT_GT(ust.memory_bytes(), 0u);
}

TEST(StreamTable, FetchedStreamsCompareLikeValues) {
    const unary_stream_table ust(16, 16);
    for (std::size_t a = 0; a < 16; ++a) {
        for (std::size_t b = 0; b < 16; ++b) {
            EXPECT_EQ(unary_compare_geq(ust.fetch(a), ust.fetch(b)), a >= b);
        }
    }
}

// --- word-level rewrite vs bit-at-a-time references -----------------------
//
// unary_encode / unary_min / unary_max / unary_compare_geq run word-level
// on the packed storage. These references restate the original per-bit
// formulations; the production ops must match them bit-for-bit on lengths
// that straddle 64-bit word boundaries (the cases a single-word test like
// UnaryPairs can never catch).

bitstream reference_encode(std::size_t value, std::size_t length,
                           unary_alignment align) {
    bitstream out(length);
    if (align == unary_alignment::ones_leading) {
        for (std::size_t i = 0; i < value; ++i) out.set_bit(i, true);
    } else {
        for (std::size_t i = 0; i < value; ++i) out.set_bit(length - 1 - i, true);
    }
    return out;
}

bitstream reference_combine(const bitstream& a, const bitstream& b, bool min) {
    bitstream out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        out.set_bit(i, min ? (a.bit(i) && b.bit(i)) : (a.bit(i) || b.bit(i)));
    }
    return out;
}

bool reference_compare_geq(const bitstream& a, const bitstream& b) {
    // The literal Fig. 4 gate sequence with materialized intermediates.
    const bitstream minimum = a & b;
    const bitstream check = minimum | ~b;
    return check.all();
}

const std::size_t kBoundaryLengths[] = {1,  2,   63,  64,  65,  127,
                                        128, 129, 190, 192, 200};

TEST(UnaryWordLevel, EncodeMatchesPerBitReferenceAcrossWordBoundaries) {
    for (const std::size_t n : kBoundaryLengths) {
        for (const auto align :
             {unary_alignment::ones_leading, unary_alignment::ones_trailing}) {
            // Every value, including the all-zeros and all-ones runs and
            // the values that land a run boundary exactly on a word edge.
            for (std::size_t v = 0; v <= n; ++v) {
                const bitstream got = unary_encode(v, n, align);
                ASSERT_EQ(got, reference_encode(v, n, align))
                    << "n=" << n << " v=" << v
                    << " leading=" << (align == unary_alignment::ones_leading);
                ASSERT_TRUE(is_unary(got, align));
                ASSERT_EQ(got.popcount(), v);
            }
        }
    }
}

TEST(UnaryWordLevel, MinMaxCompareMatchPerBitReferencesAcrossWordBoundaries) {
    for (const std::size_t n : kBoundaryLengths) {
        // Values around the word edges plus the extremes; quadratic over
        // the full range would be wasteful at n=200.
        std::vector<std::size_t> values{0, 1, n / 2, n - 1, n};
        for (const std::size_t edge : {std::size_t{63}, std::size_t{64},
                                       std::size_t{65}, std::size_t{128}}) {
            if (edge <= n) values.push_back(edge);
        }
        for (const std::size_t va : values) {
            for (const std::size_t vb : values) {
                const bitstream a = unary_encode(va, n);
                const bitstream b = unary_encode(vb, n);
                ASSERT_EQ(unary_min(a, b), reference_combine(a, b, true))
                    << "n=" << n << " a=" << va << " b=" << vb;
                ASSERT_EQ(unary_max(a, b), reference_combine(a, b, false))
                    << "n=" << n << " a=" << va << " b=" << vb;
                ASSERT_EQ(unary_compare_geq(a, b), reference_compare_geq(a, b))
                    << "n=" << n << " a=" << va << " b=" << vb;
                ASSERT_EQ(unary_compare_geq(a, b), va >= vb);
            }
        }
    }
}

TEST(UnaryWordLevel, ComparatorMatchesGateReferenceOnNonThermometerInputs) {
    // unary_compare_geq documents thermometer inputs, but the word-level
    // fold must stay equivalent to the literal gate network for arbitrary
    // bit patterns too (the gates don't know the input is a valid code).
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    const auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (const std::size_t n : kBoundaryLengths) {
        for (int trial = 0; trial < 40; ++trial) {
            bitstream a(n);
            bitstream b(n);
            for (std::size_t i = 0; i < n; ++i) {
                a.set_bit(i, (next() & 1) != 0);
                b.set_bit(i, (next() & 1) != 0);
            }
            ASSERT_EQ(unary_compare_geq(a, b), reference_compare_geq(a, b))
                << "n=" << n << " trial=" << trial;
        }
    }
}

TEST(UnaryWordLevel, MinMaxLengthMismatchThrows) {
    EXPECT_THROW((void)unary_min(unary_encode(1, 4), unary_encode(1, 5)), uhd::error);
    EXPECT_THROW((void)unary_max(unary_encode(1, 4), unary_encode(1, 5)), uhd::error);
}

} // namespace
