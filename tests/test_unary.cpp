// Tests for thermometer coding, the min/max AND/OR laws, and the paper's
// Fig. 4 unary comparator (exhaustive over all operand pairs).
#include <gtest/gtest.h>

#include "uhd/bitstream/stream_table.hpp"
#include "uhd/bitstream/unary.hpp"
#include "uhd/common/error.hpp"

namespace {

using namespace uhd::bs;

TEST(Unary, EncodeTrailingMatchesPaperExample) {
    // Paper Section II: X1 -> 0000011 (value 2), X2 -> 0011111 (value 5).
    EXPECT_EQ(unary_encode(2, 7).to_string(), "0000011");
    EXPECT_EQ(unary_encode(5, 7).to_string(), "0011111");
}

TEST(Unary, EncodeLeading) {
    EXPECT_EQ(unary_encode(3, 7, unary_alignment::ones_leading).to_string(), "1110000");
}

TEST(Unary, EncodeBounds) {
    EXPECT_EQ(unary_encode(0, 5).popcount(), 0u);
    EXPECT_EQ(unary_encode(5, 5).popcount(), 5u);
    EXPECT_THROW((void)unary_encode(6, 5), uhd::error);
}

TEST(Unary, IsUnaryDetectsValidCodes) {
    EXPECT_TRUE(is_unary(bitstream::from_string("0011")));
    EXPECT_TRUE(is_unary(bitstream::from_string("0000")));
    EXPECT_TRUE(is_unary(bitstream::from_string("1111")));
    EXPECT_FALSE(is_unary(bitstream::from_string("0101")));
    EXPECT_FALSE(is_unary(bitstream::from_string("1001")));
    EXPECT_TRUE(is_unary(bitstream::from_string("1100"), unary_alignment::ones_leading));
    EXPECT_FALSE(is_unary(bitstream::from_string("0011"), unary_alignment::ones_leading));
}

TEST(Unary, DecodeRejectsNonThermometer) {
    EXPECT_THROW((void)unary_decode(bitstream::from_string("0101")), uhd::error);
}

TEST(Unary, SaturatingAdd) {
    const bitstream a = unary_encode(3, 8);
    const bitstream b = unary_encode(4, 8);
    EXPECT_EQ(unary_decode(unary_saturating_add(a, b)), 7u);
    const bitstream c = unary_encode(6, 8);
    EXPECT_EQ(unary_decode(unary_saturating_add(c, c)), 8u); // saturates
}

TEST(Unary, AbsDiff) {
    EXPECT_EQ(unary_abs_diff(unary_encode(2, 8), unary_encode(6, 8)), 4u);
    EXPECT_EQ(unary_abs_diff(unary_encode(5, 8), unary_encode(5, 8)), 0u);
}

// Exhaustive property tests over all (a, b) pairs for a given stream length:
// AND is min, OR is max, XOR is |a-b|, comparator is (a >= b).
class UnaryPairs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UnaryPairs, AndIsMinimum) {
    const std::size_t n = GetParam();
    for (std::size_t a = 0; a <= n; ++a) {
        for (std::size_t b = 0; b <= n; ++b) {
            const bitstream sa = unary_encode(a, n);
            const bitstream sb = unary_encode(b, n);
            EXPECT_EQ(unary_decode(unary_min(sa, sb)), std::min(a, b));
        }
    }
}

TEST_P(UnaryPairs, OrIsMaximum) {
    const std::size_t n = GetParam();
    for (std::size_t a = 0; a <= n; ++a) {
        for (std::size_t b = 0; b <= n; ++b) {
            const bitstream sa = unary_encode(a, n);
            const bitstream sb = unary_encode(b, n);
            EXPECT_EQ(unary_decode(unary_max(sa, sb)), std::max(a, b));
        }
    }
}

TEST_P(UnaryPairs, XorIsAbsoluteDifference) {
    const std::size_t n = GetParam();
    for (std::size_t a = 0; a <= n; ++a) {
        for (std::size_t b = 0; b <= n; ++b) {
            EXPECT_EQ(unary_abs_diff(unary_encode(a, n), unary_encode(b, n)),
                      (a > b) ? a - b : b - a);
        }
    }
}

TEST_P(UnaryPairs, ComparatorMatchesGreaterEqual) {
    const std::size_t n = GetParam();
    for (std::size_t a = 0; a <= n; ++a) {
        for (std::size_t b = 0; b <= n; ++b) {
            const bool geq = unary_compare_geq(unary_encode(a, n), unary_encode(b, n));
            EXPECT_EQ(geq, a >= b) << "a=" << a << " b=" << b << " n=" << n;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(StreamLengths, UnaryPairs,
                         ::testing::Values(2, 3, 7, 8, 15, 16, 31));

TEST(UnaryComparator, PaperFig4WorkedExample) {
    // The paper compares data = 2 against Sobol = 5 on 7-bit streams and
    // expects logic-0 (2 >= 5 is false).
    const bitstream data = bitstream::from_string("0000011");
    const bitstream sobol = bitstream::from_string("0011111");
    EXPECT_FALSE(unary_compare_geq(data, sobol));
    EXPECT_TRUE(unary_compare_geq(sobol, data));
    // The intermediate minimum must be the smaller stream.
    EXPECT_EQ(unary_min(data, sobol), data);
}

TEST(UnaryComparator, LengthMismatchThrows) {
    EXPECT_THROW((void)unary_compare_geq(unary_encode(1, 4), unary_encode(1, 5)),
                 uhd::error);
}

TEST(StreamTable, HoldsAllLevels) {
    const unary_stream_table ust(16, 16);
    EXPECT_EQ(ust.levels(), 16u);
    EXPECT_EQ(ust.stream_length(), 16u);
    for (std::size_t q = 0; q < 16; ++q) {
        EXPECT_EQ(ust.value_of(ust.fetch(q)), q);
    }
}

TEST(StreamTable, FetchOutOfRangeThrows) {
    const unary_stream_table ust(16, 16);
    EXPECT_THROW((void)ust.fetch(16), uhd::error);
}

TEST(StreamTable, RejectsImpossibleGeometry) {
    EXPECT_THROW(unary_stream_table(20, 16), uhd::error); // 19 ones into 16 bits
}

TEST(StreamTable, MemoryFootprintPositive) {
    const unary_stream_table ust(16, 16);
    EXPECT_GT(ust.memory_bytes(), 0u);
}

TEST(StreamTable, FetchedStreamsCompareLikeValues) {
    const unary_stream_table ust(16, 16);
    for (std::size_t a = 0; a < 16; ++a) {
        for (std::size_t b = 0; b < 16; ++b) {
            EXPECT_EQ(unary_compare_geq(ust.fetch(a), ust.fetch(b)), a >= b);
        }
    }
}

} // namespace
