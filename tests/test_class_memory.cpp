// Tests for the packed associative-memory inference engine: class_memory
// semantics, Hamming-argmin vs the per-class cosine scan it replaced
// (bit-identical argmax, including tie-breaking, over 100+ randomized
// configurations), and the classifier-level equivalence of the packed
// predict path against a replica of the seed per-class-cosine path.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/common/simd.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/class_memory.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/hdc/similarity.hpp"

namespace {

using namespace uhd;
using namespace uhd::hdc;

/// The seed-era binarized inference path: per-element set_bit binarization
/// followed by one cosine() call per class, strict-> first-wins argmax.
std::size_t seed_cosine_argmax(std::span<const std::int32_t> encoded,
                               const std::vector<hypervector>& class_hvs) {
    bs::bitstream bits(encoded.size());
    for (std::size_t d = 0; d < encoded.size(); ++d) {
        if (encoded[d] < 0) bits.set_bit(d, true);
    }
    const hypervector query(std::move(bits));
    std::size_t best = 0;
    double best_similarity = -2.0;
    for (std::size_t c = 0; c < class_hvs.size(); ++c) {
        const double similarity = cosine(query, class_hvs[c]);
        if (similarity > best_similarity) {
            best_similarity = similarity;
            best = c;
        }
    }
    return best;
}

TEST(ClassMemory, Geometry) {
    const class_memory mem(10, 100); // non-multiple-of-64 dimension
    EXPECT_EQ(mem.classes(), 10u);
    EXPECT_EQ(mem.dim(), 100u);
    EXPECT_EQ(mem.words_per_class(), 2u);
    EXPECT_EQ(mem.rows().size(), 20u);
    EXPECT_GT(mem.memory_bytes(), 0u);
    EXPECT_THROW((void)mem.row(10), uhd::error);
}

TEST(ClassMemory, StoreAndRowRoundTrip) {
    xoshiro256ss rng(5);
    class_memory mem(4, 130);
    std::vector<hypervector> stored;
    for (std::size_t c = 0; c < 4; ++c) {
        stored.push_back(hypervector::random(130, rng));
        mem.store(c, stored.back());
    }
    for (std::size_t c = 0; c < 4; ++c) {
        const auto row = mem.row(c);
        const auto words = stored[c].bits().words();
        ASSERT_EQ(row.size(), words.size());
        for (std::size_t w = 0; w < row.size(); ++w) EXPECT_EQ(row[w], words[w]);
    }
}

TEST(ClassMemory, StoreValidatesArguments) {
    class_memory mem(3, 64);
    xoshiro256ss rng(6);
    EXPECT_THROW(mem.store(3, hypervector::random(64, rng)), uhd::error);
    EXPECT_THROW(mem.store(0, hypervector::random(65, rng)), uhd::error);
    EXPECT_THROW((void)mem.nearest(std::span<const std::uint64_t>{}), uhd::error);
}

TEST(ClassMemory, NearestFindsExactMatch) {
    xoshiro256ss rng(7);
    class_memory mem(8, 256);
    std::vector<hypervector> stored;
    for (std::size_t c = 0; c < 8; ++c) {
        stored.push_back(hypervector::random(256, rng));
        mem.store(c, stored.back());
    }
    for (std::size_t c = 0; c < 8; ++c) {
        std::uint64_t distance = 1;
        EXPECT_EQ(mem.nearest(stored[c], &distance), c);
        EXPECT_EQ(distance, 0u);
    }
}

TEST(ClassMemory, TiesResolveToLowestIndex) {
    // Rows 1 and 3 are identical; a query nearest to them must return 1.
    xoshiro256ss rng(8);
    const hypervector shared_row = hypervector::random(192, rng);
    class_memory mem(4, 192);
    mem.store(0, -shared_row); // maximally far
    mem.store(1, shared_row);
    mem.store(2, -shared_row);
    mem.store(3, shared_row);
    EXPECT_EQ(mem.nearest(shared_row), 1u);
}

TEST(ClassMemory, NearestMatchesScalarReference) {
    xoshiro256ss rng(9);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t dim = 1 + rng.next() % 500; // non-multiple-of-64 dims
        const std::size_t classes = 2 + rng.next() % 15;
        class_memory mem(classes, dim);
        for (std::size_t c = 0; c < classes; ++c) {
            mem.store(c, hypervector::random(dim, rng));
        }
        const hypervector query = hypervector::random(dim, rng);
        std::uint64_t ref_distance = 0;
        const std::size_t ref = simd::hamming_argmin_reference(
            query.bits().words().data(), mem.rows().data(), mem.words_per_class(),
            classes, &ref_distance);
        std::uint64_t distance = 0;
        ASSERT_EQ(mem.nearest(query, &distance), ref)
            << "dim=" << dim << " classes=" << classes;
        ASSERT_EQ(distance, ref_distance);
    }
}

// The acceptance-criterion proof: the packed Hamming-argmin answer equals
// the seed per-class-cosine argmax, bit-identically, over 100+ randomized
// configurations (dims including non-multiples of 64, random class counts,
// queries with negative/zero/positive accumulator values, and deliberately
// duplicated class rows to exercise tie-breaking).
TEST(ClassMemory, PackedArgmaxBitIdenticalToCosineArgmaxOver100Configs) {
    xoshiro256ss rng(2025);
    for (int config_i = 0; config_i < 120; ++config_i) {
        const std::size_t dim = 1 + rng.next() % 700;
        const std::size_t classes = 2 + rng.next() % 20;
        std::vector<hypervector> class_hvs;
        class_memory mem(classes, dim);
        for (std::size_t c = 0; c < classes; ++c) {
            // One class in three duplicates an earlier row so exact cosine
            // ties occur and first-wins ordering is actually exercised.
            if (c > 0 && rng.next() % 3 == 0) {
                class_hvs.push_back(class_hvs[rng.next() % c]);
            } else {
                class_hvs.push_back(hypervector::random(dim, rng));
            }
            mem.store(c, class_hvs.back());
        }
        for (int query_i = 0; query_i < 5; ++query_i) {
            std::vector<std::int32_t> encoded(dim);
            for (auto& v : encoded) {
                v = static_cast<std::int32_t>(rng.next() % 201) - 100; // zeros too
            }
            std::vector<std::uint64_t> query_words(kernels::sign_words(dim));
            kernels::sign_binarize(encoded.data(), encoded.size(), query_words.data());
            ASSERT_EQ(mem.nearest(query_words), seed_cosine_argmax(encoded, class_hvs))
                << "config " << config_i << ": dim=" << dim
                << " classes=" << classes;
        }
    }
}

TEST(ClassMemory, ClassifierPredictMatchesSeedCosinePath) {
    const auto train = data::make_synthetic_digits(120, 31);
    const auto test = data::make_synthetic_digits(60, 32);
    for (const std::size_t dim : {192u, 256u, 512u}) {
        core::uhd_config cfg;
        cfg.dim = dim;
        const core::uhd_encoder enc(cfg, train.shape());
        hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(),
                                             train_mode::raw_sums,
                                             query_mode::binarized);
        clf.fit(train);
        std::vector<hypervector> class_hvs;
        for (std::size_t c = 0; c < clf.classes(); ++c) {
            class_hvs.push_back(clf.class_hypervector(c));
        }
        std::vector<std::int32_t> encoded(dim);
        for (std::size_t i = 0; i < test.size(); ++i) {
            enc.encode(test.image(i), encoded);
            const std::size_t packed = clf.predict(test.image(i));
            ASSERT_EQ(packed, seed_cosine_argmax(encoded, class_hvs))
                << "dim=" << dim << " image=" << i;
            ASSERT_EQ(packed, clf.predict_encoded(encoded));
        }
    }
}

TEST(ClassMemory, ClassifierMemoryTracksFinalize) {
    const auto train = data::make_synthetic_digits(80, 33);
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    const class_memory& mem = clf.packed_class_memory();
    ASSERT_EQ(mem.classes(), 10u);
    ASSERT_EQ(mem.dim(), 256u);
    for (std::size_t c = 0; c < 10; ++c) {
        const auto row = mem.row(c);
        const auto words = clf.class_hypervector(c).bits().words();
        for (std::size_t w = 0; w < row.size(); ++w) EXPECT_EQ(row[w], words[w]);
    }
}

} // namespace
