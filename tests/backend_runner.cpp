// Forced-backend test launcher: runs a command under UHD_BACKEND=<name>,
// exiting with the CTest skip code (77) when the runtime probe rejects the
// backend on this host. This is what lets the *_avx2/*_avx512 CTest
// variants be registered unconditionally — on a runner without the ISA
// they report SKIPPED (SKIP_RETURN_CODE 77) instead of failing on the
// registry's inadmissible-backend diagnostic.
//
//   backend_runner <backend> <command> [args...]
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include "uhd/common/cpu_features.hpp"
#include "uhd/common/kernels.hpp"

int main(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr, "usage: %s <backend> <command> [args...]\n", argv[0]);
        return 2;
    }
    const uhd::kernels::kernel_table* backend = uhd::kernels::find_backend(argv[1]);
    if (backend == nullptr) {
        std::fprintf(stderr, "backend '%s' is not compiled into this build\n",
                     argv[1]);
        return 77;
    }
    if (!backend->supported(uhd::cpu())) {
        std::fprintf(stderr,
                     "backend '%s' is inadmissible on this host (probed: %s)\n",
                     argv[1], uhd::cpu().to_string().c_str());
        return 77;
    }
    if (setenv("UHD_BACKEND", argv[1], 1) != 0) {
        std::perror("setenv");
        return 2;
    }
    execvp(argv[2], argv + 2);
    std::perror("execvp");
    return 2;
}
