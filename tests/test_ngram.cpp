// Tests for the n-gram sequence encoder: window algebra, order sensitivity,
// bundling, and a small synthetic language-identification task.
#include <gtest/gtest.h>

#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/hdc/ngram.hpp"
#include "uhd/hdc/similarity.hpp"

namespace {

using namespace uhd::hdc;

TEST(SymbolMemory, DeterministicAndOrthogonalish) {
    const symbol_item_memory a(27, 2048, 5);
    const symbol_item_memory b(27, 2048, 5);
    EXPECT_EQ(a.vector(13), b.vector(13));
    EXPECT_LT(std::abs(cosine(a.vector(0), a.vector(1))), 0.12);
    EXPECT_THROW((void)a.vector(27), uhd::error);
    EXPECT_THROW(symbol_item_memory(1, 256, 1), uhd::error);
    EXPECT_GT(a.memory_bytes(), 0u);
}

TEST(NgramEncoder, UnigramWindowIsSymbolVector) {
    const symbol_item_memory symbols(8, 512, 2);
    const ngram_encoder encoder(symbols, 1);
    const std::vector<std::size_t> sequence = {3, 5};
    EXPECT_EQ(encoder.window(sequence, 0), symbols.vector(3));
    EXPECT_EQ(encoder.window(sequence, 1), symbols.vector(5));
}

TEST(NgramEncoder, WindowMatchesManualComposition) {
    const symbol_item_memory symbols(8, 512, 3);
    const ngram_encoder encoder(symbols, 3);
    const std::vector<std::size_t> sequence = {1, 4, 6};
    const hypervector expected =
        bind(bind(permute(symbols.vector(1), 2), permute(symbols.vector(4), 1)),
             symbols.vector(6));
    EXPECT_EQ(encoder.window(sequence, 0), expected);
}

TEST(NgramEncoder, OrderSensitivity) {
    // Permutation-based position coding: "abc" and "cba" must differ.
    const symbol_item_memory symbols(8, 2048, 4);
    const ngram_encoder encoder(symbols, 3);
    const std::vector<std::size_t> abc = {0, 1, 2};
    const std::vector<std::size_t> cba = {2, 1, 0};
    const double similarity =
        cosine(encoder.window(abc, 0), encoder.window(cba, 0));
    EXPECT_LT(std::abs(similarity), 0.12);
}

TEST(NgramEncoder, BundleCountsWindows) {
    const symbol_item_memory symbols(4, 256, 5);
    const ngram_encoder encoder(symbols, 2);
    const std::vector<std::size_t> sequence = {0, 1, 2, 3};
    const accumulator acc = encoder.encode(sequence);
    // 3 windows of +-1 contributions: parity of every value matches 3.
    for (std::size_t d = 0; d < acc.dim(); ++d) {
        EXPECT_LE(std::abs(acc.value(d)), 3);
        EXPECT_EQ((acc.value(d) + 3) % 2, 0);
    }
}

TEST(NgramEncoder, Validation) {
    const symbol_item_memory symbols(4, 256, 6);
    EXPECT_THROW(ngram_encoder(symbols, 0), uhd::error);
    const ngram_encoder encoder(symbols, 3);
    const std::vector<std::size_t> tiny = {0, 1};
    EXPECT_THROW((void)encoder.encode(tiny), uhd::error);
    EXPECT_THROW((void)encoder.window(tiny, 0), uhd::error);
}

// Synthetic language identification: three "languages" are first-order
// Markov chains over a 12-letter alphabet with different transition
// structure; trigram class hypervectors must identify held-out text.
std::vector<std::size_t> sample_text(std::size_t language, std::size_t length,
                                     uhd::xoshiro256ss& rng) {
    const std::size_t alphabet = 12;
    std::vector<std::size_t> text;
    std::size_t state = rng.next_below(alphabet);
    for (std::size_t t = 0; t < length; ++t) {
        text.push_back(state);
        // Language-specific transition: a fixed affine map plus noise.
        const std::size_t stride = 1 + 2 * language; // 1, 3, 5
        if (rng.next_unit() < 0.75) {
            state = (state * stride + language + 1) % alphabet;
        } else {
            state = rng.next_below(alphabet);
        }
    }
    return text;
}

TEST(NgramEncoder, LanguageIdentificationEndToEnd) {
    const symbol_item_memory symbols(12, 4096, 7);
    const ngram_encoder encoder(symbols, 3);

    // Train one class hypervector per language.
    uhd::xoshiro256ss rng(99);
    std::vector<hypervector> classes;
    for (std::size_t lang = 0; lang < 3; ++lang) {
        accumulator acc(encoder.dim());
        for (int sample = 0; sample < 10; ++sample) {
            acc.add_values(encoder.encode(sample_text(lang, 120, rng)).values());
        }
        classes.push_back(acc.sign());
    }

    // Classify held-out samples.
    std::size_t correct = 0;
    const std::size_t trials = 30;
    for (std::size_t trial = 0; trial < trials; ++trial) {
        const std::size_t truth = trial % 3;
        const hypervector query = encoder.encode_sign(sample_text(truth, 120, rng));
        std::size_t best = 0;
        double best_similarity = -2.0;
        for (std::size_t c = 0; c < 3; ++c) {
            const double similarity = cosine(query, classes[c]);
            if (similarity > best_similarity) {
                best_similarity = similarity;
                best = c;
            }
        }
        if (best == truth) ++correct;
    }
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(trials), 0.8);
}

} // namespace
