// Cross-module integration tests: full train/test pipelines for both
// systems, dimension scaling, determinism, and the software-vs-hardware
// consistency spine (encoder == datapath sim == classifier input).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/hw/report.hpp"
#include "uhd/sim/baseline_datapath.hpp"
#include "uhd/sim/uhd_datapath.hpp"

namespace {

using namespace uhd;

class EndToEnd : public ::testing::Test {
protected:
    void SetUp() override {
        train_ = data::make_synthetic_digits(300, 101);
        test_ = data::make_synthetic_digits(120, 202);
    }

    data::dataset train_;
    data::dataset test_;
};

TEST_F(EndToEnd, BothSystemsLearnTheTask) {
    core::uhd_config ucfg;
    ucfg.dim = 1024;
    const core::uhd_encoder uenc(ucfg, train_.shape());
    hdc::hd_classifier<core::uhd_encoder> uhd_clf(uenc, 10, hdc::train_mode::raw_sums,
                                                  hdc::query_mode::integer);
    uhd_clf.fit(train_);
    const double uhd_accuracy = uhd_clf.evaluate(test_);

    hdc::baseline_config bcfg;
    bcfg.dim = 1024;
    const hdc::baseline_encoder benc(bcfg, train_.shape());
    hdc::hd_classifier<hdc::baseline_encoder> base_clf(benc, 10);
    base_clf.fit(train_);
    const double base_accuracy = base_clf.evaluate(test_);

    EXPECT_GT(uhd_accuracy, 0.55);
    EXPECT_GT(base_accuracy, 0.55);
}

TEST_F(EndToEnd, LargerDimensionDoesNotCollapse) {
    // Accuracy should not fall off a cliff as D grows (soft monotonicity:
    // the paper's Table IV trend).
    double previous = 0.0;
    for (const std::size_t dim : {256u, 1024u}) {
        core::uhd_config cfg;
        cfg.dim = dim;
        const core::uhd_encoder enc(cfg, train_.shape());
        hdc::hd_classifier<core::uhd_encoder> clf(enc, 10, hdc::train_mode::raw_sums,
                                                  hdc::query_mode::integer);
        clf.fit(train_);
        const double accuracy = clf.evaluate(test_);
        EXPECT_GT(accuracy, previous - 0.10) << "D=" << dim;
        previous = accuracy;
    }
}

TEST_F(EndToEnd, SingleIterationDeterminism) {
    // uHD's selling point: i = 1 with zero variance across runs.
    core::uhd_config cfg;
    cfg.dim = 512;
    const core::uhd_encoder enc_a(cfg, train_.shape());
    const core::uhd_encoder enc_b(cfg, train_.shape());
    hdc::hd_classifier<core::uhd_encoder> a(enc_a, 10);
    hdc::hd_classifier<core::uhd_encoder> b(enc_b, 10);
    a.fit(train_);
    b.fit(train_);
    EXPECT_DOUBLE_EQ(a.evaluate(test_), b.evaluate(test_));
}

TEST_F(EndToEnd, BaselineAccuracyFluctuatesAcrossSeeds) {
    // The Fig. 6(a) effect: baseline accuracy depends on the random draw.
    hdc::baseline_config cfg;
    cfg.dim = 512;
    hdc::baseline_encoder enc(cfg, train_.shape());
    std::vector<double> accuracies;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        enc.reseed(seed);
        hdc::hd_classifier<hdc::baseline_encoder> clf(enc, 10);
        clf.fit(train_);
        accuracies.push_back(clf.evaluate(test_));
    }
    const auto [lo, hi] = std::minmax_element(accuracies.begin(), accuracies.end());
    EXPECT_GT(*hi - *lo, 0.0); // not all identical
}

TEST_F(EndToEnd, SimulatedDatapathFeedsClassifierConsistently) {
    // The hardware datapath's binarized image hypervector must agree with
    // the vector the classifier derives from the fast encoder.
    core::uhd_config cfg;
    cfg.dim = 256;
    const core::uhd_encoder enc(cfg, train_.shape());
    const sim::uhd_datapath_sim datapath(enc);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(datapath.run(train_.image(i)), enc.encode_sign(train_.image(i)));
    }
}

TEST_F(EndToEnd, EventDrivenEnergyFavorsUhd) {
    // Feed measured event counts into the hw model: uHD's per-image energy
    // must undercut the baseline's on the same image.
    core::uhd_config ucfg;
    ucfg.dim = 128;
    const core::uhd_encoder uenc(ucfg, train_.shape());
    hdc::baseline_config bcfg;
    bcfg.dim = 128;
    const hdc::baseline_encoder benc(bcfg, train_.shape());

    sim::event_counts ue;
    sim::event_counts be;
    (void)sim::uhd_datapath_sim(uenc).run(train_.image(0), &ue);
    (void)sim::baseline_datapath_sim(benc).run(train_.image(0), &be);

    const auto& lib = hw::cell_library::generic_45nm();
    const hw::hw_module unary_cmp = hw::make_unary_comparator(16);
    const hw::hw_module binary_cmp = hw::make_binary_comparator(10);
    const hw::hw_module lfsr = hw::make_lfsr(32);
    const hw::hw_module binder = hw::make_xor_binder();

    const double uhd_pj =
        (static_cast<double>(ue.comparator_ops) * unary_cmp.energy_per_op_fj(lib)) * 1e-3;
    const double base_pj =
        (static_cast<double>(be.comparator_ops) * binary_cmp.energy_per_op_fj(lib) +
         static_cast<double>(be.lfsr_steps) * lfsr.energy_per_op_fj(lib) +
         static_cast<double>(be.xor_binds) * binder.energy_per_op_fj(lib)) *
        1e-3;
    EXPECT_LT(uhd_pj, base_pj);
}

TEST_F(EndToEnd, ModelSurvivesSaveLoadMidWorkflow) {
    core::uhd_config cfg;
    cfg.dim = 256;
    core::uhd_model model(cfg, train_.shape(), 10, hdc::train_mode::raw_sums);
    model.fit(train_);
    std::stringstream buffer;
    model.save(buffer);
    core::uhd_model loaded = core::uhd_model::load(buffer);
    // Continue training after reload (dynamic training continuation).
    loaded.partial_fit(test_.image(0), test_.label(0));
    EXPECT_GT(loaded.evaluate(test_), 0.3);
}

TEST(MultiDataset, AllSixDatasetsRunEndToEnd) {
    for (const auto kind : data::all_dataset_kinds()) {
        const auto info = data::info_for(kind);
        const auto train = data::make_synthetic(kind, 10 * info.classes, 5).to_grayscale();
        const auto test = data::make_synthetic(kind, 4 * info.classes, 6).to_grayscale();
        core::uhd_config cfg;
        cfg.dim = 256;
        const core::uhd_encoder enc(cfg, train.shape());
        hdc::hd_classifier<core::uhd_encoder> clf(enc, info.classes,
                                                  hdc::train_mode::raw_sums,
                                                  hdc::query_mode::integer);
        clf.fit(train);
        const double accuracy = clf.evaluate(test);
        const double chance = 1.0 / static_cast<double>(info.classes);
        EXPECT_GT(accuracy, chance) << info.name;
    }
}

} // namespace
