// Tests for the bit-stream generators: counter+comparator (Fig. 3(b)),
// Bernoulli stochastic streams, and threshold streams (the uHD level rule).
#include <gtest/gtest.h>

#include <vector>

#include "uhd/bitstream/generator.hpp"
#include "uhd/bitstream/unary.hpp"
#include "uhd/common/error.hpp"

namespace {

using namespace uhd::bs;

TEST(CounterComparator, ProducesLeadingThermometer) {
    counter_comparator_generator gen(4);
    EXPECT_EQ(gen.stream_length(), 16u);
    const bitstream s = gen.generate(5);
    EXPECT_EQ(s.to_string(), "1111100000000000");
    EXPECT_TRUE(is_unary(s, unary_alignment::ones_leading));
}

TEST(CounterComparator, ZeroAndFullScale) {
    counter_comparator_generator gen(3);
    EXPECT_EQ(gen.generate(0).popcount(), 0u);
    EXPECT_EQ(gen.generate(8).popcount(), 8u);
}

TEST(CounterComparator, ValueOutOfRangeThrows) {
    counter_comparator_generator gen(3);
    EXPECT_THROW(gen.load(9), uhd::error);
}

TEST(CounterComparator, StepBeyondLengthThrows) {
    counter_comparator_generator gen(2);
    gen.load(1);
    for (int i = 0; i < 4; ++i) (void)gen.step();
    EXPECT_TRUE(gen.done());
    EXPECT_THROW((void)gen.step(), uhd::error);
}

TEST(CounterComparator, CycleAccurateBits) {
    counter_comparator_generator gen(3);
    gen.load(3);
    std::vector<bool> bits;
    while (!gen.done()) bits.push_back(gen.step());
    ASSERT_EQ(bits.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(bits[i], i < 3);
}

class CounterComparatorValues : public ::testing::TestWithParam<unsigned> {};

TEST_P(CounterComparatorValues, EveryValueRoundTrips) {
    const unsigned bits = GetParam();
    counter_comparator_generator gen(bits);
    for (std::uint64_t v = 0; v <= gen.stream_length(); ++v) {
        EXPECT_EQ(gen.generate(v).popcount(), v);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, CounterComparatorValues, ::testing::Values(1, 2, 4, 6));

TEST(Bernoulli, ValueConvergesToProbability) {
    uhd::xoshiro256ss rng(5);
    const bitstream s = bernoulli_stream(0.3, 20000, rng);
    EXPECT_NEAR(s.value(), 0.3, 0.02);
}

TEST(Bernoulli, DegenerateProbabilities) {
    uhd::xoshiro256ss rng(6);
    EXPECT_EQ(bernoulli_stream(0.0, 500, rng).popcount(), 0u);
    EXPECT_EQ(bernoulli_stream(1.0, 500, rng).popcount(), 500u);
    EXPECT_THROW((void)bernoulli_stream(1.5, 10, rng), uhd::error);
}

TEST(ThresholdStream, BitsFollowComparisonRule) {
    const std::vector<double> thresholds = {0.1, 0.5, 0.9, 0.3};
    const bitstream s = threshold_stream(0.4, thresholds);
    EXPECT_EQ(s.to_string(), "1001");
}

TEST(ThresholdStream, ValueApproximatesInput) {
    // Against an equidistributed threshold set the stream value converges to
    // the encoded scalar — the SC representation property uHD builds on.
    std::vector<double> thresholds;
    const std::size_t n = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        thresholds.push_back(static_cast<double>(i) / static_cast<double>(n));
    }
    for (const double x : {0.1, 0.25, 0.7, 0.95}) {
        const bitstream s = threshold_stream(x, thresholds);
        EXPECT_NEAR(s.value(), x, 1.5 / 64.0);
    }
}

TEST(QuantizedThresholdStream, MatchesIntegerComparison) {
    const std::vector<std::uint8_t> thresholds = {0, 3, 7, 15, 8, 8};
    const bitstream s = quantized_threshold_stream(8, thresholds);
    EXPECT_EQ(s.to_string(), "111011");
}

} // namespace
