// Tests for the hardware cost model: cell library sanity, module builders,
// and the design-point assemblies behind Table II and the checkpoints.
#include <gtest/gtest.h>

#include "uhd/common/error.hpp"
#include "uhd/hw/cells.hpp"
#include "uhd/hw/modules.hpp"
#include "uhd/hw/report.hpp"

namespace {

using namespace uhd::hw;

TEST(CellLibrary, AllSpecsArePhysical) {
    const auto& lib = cell_library::generic_45nm();
    for (std::size_t i = 0; i < cell_kind_count; ++i) {
        const auto& spec = lib.spec(static_cast<cell_kind>(i));
        EXPECT_GT(spec.area_um2, 0.0) << spec.name;
        EXPECT_GT(spec.energy_fj, 0.0) << spec.name;
        EXPECT_GT(spec.delay_ps, 0.0) << spec.name;
        EXPECT_GE(spec.inputs, 1u) << spec.name;
    }
}

TEST(CellLibrary, RelativeOrderingsMakeSense) {
    const auto& lib = cell_library::generic_45nm();
    // XOR is bigger and slower than NAND; DFF dominates simple gates.
    EXPECT_GT(lib.spec(cell_kind::xor2).area_um2, lib.spec(cell_kind::nand2).area_um2);
    EXPECT_GT(lib.spec(cell_kind::dff).area_um2, lib.spec(cell_kind::xor2).area_um2);
    EXPECT_GT(lib.spec(cell_kind::full_adder).energy_fj,
              lib.spec(cell_kind::half_adder).energy_fj);
}

TEST(CellCounts, CompositionIsAdditive) {
    cell_counts a;
    a.add(cell_kind::and2, 3);
    a.add(cell_kind::dff);
    cell_counts b;
    b.add(a, 2);
    b.add(cell_kind::and2);
    EXPECT_EQ(b.count(cell_kind::and2), 7u);
    EXPECT_EQ(b.count(cell_kind::dff), 2u);
    EXPECT_EQ(b.total(), 9u);
    const auto& lib = cell_library::generic_45nm();
    EXPECT_NEAR(b.area_um2(lib), 7 * 1.33 + 2 * 4.52, 1e-9);
}

TEST(Modules, UnaryComparatorInventoryMatchesFig4) {
    const hw_module m = make_unary_comparator(16);
    // N AND (min) + (N-1) AND (reduce), N INV, N OR.
    EXPECT_EQ(m.cells.count(cell_kind::and2), 31u);
    EXPECT_EQ(m.cells.count(cell_kind::inv), 16u);
    EXPECT_EQ(m.cells.count(cell_kind::or2), 16u);
    const auto& lib = cell_library::generic_45nm();
    EXPECT_GT(m.area_um2(lib), 0.0);
    EXPECT_GT(m.delay_ps(lib), 0.0);
}

TEST(Modules, UnaryComparatorCheaperThanBinaryAtPaperSizes) {
    // The headline hardware claim: the N = 16 unary comparator beats the
    // wide binary comparator the baseline needs, in energy and delay.
    const auto& lib = cell_library::generic_45nm();
    const hw_module unary = make_unary_comparator(16);
    const hw_module binary = make_binary_comparator(10);
    EXPECT_LT(unary.energy_per_op_fj(lib), binary.energy_per_op_fj(lib));
    EXPECT_LT(unary.delay_ps(lib), binary.delay_ps(lib));
}

TEST(Modules, MaskBinarizerBeatsSubtractorBinarizer) {
    const auto& lib = cell_library::generic_45nm();
    const hw_module mask = make_popcount_mask_binarizer(784);
    const hw_module sub = make_popcount_subtract_binarizer(784);
    EXPECT_LT(mask.energy_per_op_fj(lib), sub.energy_per_op_fj(lib));
    EXPECT_LT(mask.area_um2(lib), sub.area_um2(lib));
    EXPECT_LT(mask.delay_ps(lib), sub.delay_ps(lib));
}

TEST(Modules, CounterScalesWithWidth) {
    const auto& lib = cell_library::generic_45nm();
    EXPECT_LT(make_counter(4).area_um2(lib), make_counter(10).area_um2(lib));
    EXPECT_LT(make_counter(4).delay_ps(lib), make_counter(10).delay_ps(lib));
}

TEST(Modules, LfsrUsesTapTable) {
    const hw_module m = make_lfsr(16);
    EXPECT_EQ(m.cells.count(cell_kind::dff), 16u);
    EXPECT_EQ(m.cells.count(cell_kind::xor2), 3u); // 4 taps -> 3 XORs
}

TEST(Modules, ValidationErrors) {
    EXPECT_THROW((void)make_unary_comparator(1), uhd::error);
    EXPECT_THROW((void)make_binary_comparator(0), uhd::error);
    EXPECT_THROW((void)make_counter(0), uhd::error);
    EXPECT_THROW((void)make_ust_decoder(1), uhd::error);
    EXPECT_THROW((void)make_popcount_mask_binarizer(0), uhd::error);
}

TEST(MemoryModel, BramVsRegfileTradeoffs) {
    const memory_model bram = memory_model::bram("b", 1024);
    const memory_model regs = memory_model::regfile("r", 1024);
    EXPECT_GT(bram.read_energy_fj_per_bit, regs.read_energy_fj_per_bit);
    EXPECT_LT(bram.area_um2_per_bit, regs.area_um2_per_bit);
    EXPECT_GT(bram.read_energy_fj(8), 0.0);
    EXPECT_GT(regs.area_um2(), 0.0);
}

class CostModelPoints : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CostModelPoints, UhdWinsEveryCheckpoint) {
    const hdc_cost_model model;
    design_point p;
    p.dim = GetParam();
    // Checkpoint 1: stream generation per bit.
    EXPECT_LT(model.uhd_bitgen_energy_fj(p), model.baseline_bitgen_energy_fj(p));
    // Checkpoint 2: comparator per hypervector.
    EXPECT_LT(model.uhd_comparator_energy_pj_per_hv(p),
              model.baseline_comparator_energy_pj_per_hv(p));
    // Checkpoint 3: accumulate-and-binarize per feature.
    EXPECT_LT(model.uhd_accbin_energy_pj_per_feature(p),
              model.baseline_accbin_energy_pj_per_feature(p));
}

TEST_P(CostModelPoints, TableTwoOrderings) {
    const hdc_cost_model model;
    design_point p;
    p.dim = GetParam();
    const cost_summary uhd_hv = model.uhd_per_hv(p);
    const cost_summary base_hv = model.baseline_per_hv(p);
    EXPECT_LT(uhd_hv.energy_pj, base_hv.energy_pj);
    EXPECT_LT(uhd_hv.area_delay_m2s(), base_hv.area_delay_m2s());
    const cost_summary uhd_img = model.uhd_per_image(p);
    const cost_summary base_img = model.baseline_per_image(p);
    EXPECT_LT(uhd_img.energy_pj, base_img.energy_pj);
    EXPECT_GT(uhd_img.energy_pj, uhd_hv.energy_pj);
    EXPECT_GT(base_img.energy_pj, base_hv.energy_pj);
    EXPECT_GT(model.system_efficiency_ratio(p), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Dims, CostModelPoints, ::testing::Values(1024, 2048, 8192));

TEST(CostModel, EnergyGrowsWithDimension) {
    const hdc_cost_model model;
    design_point small;
    small.dim = 1024;
    design_point big;
    big.dim = 8192;
    EXPECT_GT(model.uhd_per_hv(big).energy_pj, model.uhd_per_hv(small).energy_pj);
    EXPECT_GT(model.baseline_per_hv(big).energy_pj,
              model.baseline_per_hv(small).energy_pj);
}

TEST(CostModel, IterationsMultiplyBaselineGeneration) {
    const hdc_cost_model model;
    design_point once;
    design_point hundred;
    hundred.baseline_iterations = 100;
    EXPECT_NEAR(model.baseline_per_hv(hundred).energy_pj,
                model.baseline_per_hv(once).energy_pj * 100.0, 1e-6);
    // uHD never iterates, so its cost is independent of that knob.
    EXPECT_DOUBLE_EQ(model.uhd_per_hv(hundred).energy_pj,
                     model.uhd_per_hv(once).energy_pj);
}

} // namespace
