// Tests for the dynamic-dimension query path: prefix-window associative
// search (class_memory::nearest_prefix vs the pinned scalar oracle and vs
// the full scan), the early-exit cascade's full-D fallback bit-identity
// with predict_encoded, calibration determinism, and stats accounting.
#include <gtest/gtest.h>

#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/common/simd.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/class_memory.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/hdc/dynamic_query.hpp"

namespace {

using namespace uhd;
using namespace uhd::hdc;

hypervector random_hv(std::size_t dim, xoshiro256ss& rng) {
    return hypervector::random(dim, rng);
}

class_memory random_memory(std::size_t classes, std::size_t dim, xoshiro256ss& rng) {
    class_memory mem(classes, dim);
    for (std::size_t c = 0; c < classes; ++c) mem.store(c, random_hv(dim, rng));
    return mem;
}

TEST(DynamicQuery, PrefixKernelMatchesPinnedReference) {
    xoshiro256ss rng(101);
    for (const std::size_t dim : {64u, 200u, 1024u, 4096u}) {
        for (const std::size_t classes : {1u, 2u, 7u, 26u}) {
            const class_memory mem = random_memory(classes, dim, rng);
            const hypervector query = random_hv(dim, rng);
            const auto words = query.bits().words();
            for (std::size_t window = 1; window <= mem.words_per_class();
                 window += (window < 4 ? 1 : 3)) {
                const auto fast = kernels::hamming_argmin2_prefix(
                    words.data(), mem.rows().data(), mem.words_per_class(), window,
                    classes);
                const auto ref = simd::hamming_argmin2_prefix_reference(
                    words.data(), mem.rows().data(), mem.words_per_class(), window,
                    classes);
                ASSERT_EQ(fast.index, ref.index);
                ASSERT_EQ(fast.distance, ref.distance);
                ASSERT_EQ(fast.runner_up, ref.runner_up);
            }
        }
    }
}

TEST(DynamicQuery, FullWindowPrefixEqualsNearest) {
    xoshiro256ss rng(202);
    for (const std::size_t dim : {64u, 130u, 1024u}) {
        const class_memory mem = random_memory(10, dim, rng);
        for (int q = 0; q < 20; ++q) {
            const hypervector query = random_hv(dim, rng);
            std::uint64_t full_distance = 0;
            const std::size_t nearest = mem.nearest(query, &full_distance);
            const auto prefix = mem.nearest_prefix(query.bits().words(),
                                                   mem.words_per_class());
            EXPECT_EQ(prefix.index, nearest);
            EXPECT_EQ(prefix.distance, full_distance);
        }
    }
}

TEST(DynamicQuery, ExtendKernelMatchesFreshPrefixScan) {
    xoshiro256ss rng(303);
    const std::size_t dim = 2048;
    const std::size_t classes = 10;
    const class_memory mem = random_memory(classes, dim, rng);
    const hypervector query = random_hv(dim, rng);
    const auto qwords = query.bits().words();
    const std::size_t words = mem.words_per_class();

    std::vector<std::uint64_t> running(classes, 0);
    std::size_t from = 0;
    for (const std::size_t to : {words / 8, words / 4, words / 2, words}) {
        kernels::hamming_extend_words(qwords.data(), mem.rows().data(), words, from, to,
                                   classes, running.data());
        from = to;
        const auto fresh = mem.nearest_prefix(qwords, to);
        const auto incremental = kernels::argmin2_u64(running.data(), classes);
        EXPECT_EQ(incremental.index, fresh.index);
        EXPECT_EQ(incremental.distance, fresh.distance);
        EXPECT_EQ(incremental.runner_up - incremental.distance, fresh.margin);
    }
}

TEST(DynamicQuery, SingleRowMemoryHasSaturatedMargin) {
    xoshiro256ss rng(404);
    const class_memory mem = random_memory(1, 256, rng);
    const hypervector query = random_hv(256, rng);
    const auto r = mem.nearest_prefix(query.bits().words(), 2);
    EXPECT_EQ(r.index, 0u);
    EXPECT_EQ(r.margin, ~std::uint64_t{0});
}

TEST(DynamicQuery, NearestPrefixValidatesArguments) {
    xoshiro256ss rng(505);
    const class_memory mem = random_memory(4, 256, rng);
    const hypervector query = random_hv(256, rng);
    EXPECT_THROW((void)mem.nearest_prefix(query.bits().words(), 0), uhd::error);
    EXPECT_THROW((void)mem.nearest_prefix(query.bits().words(),
                                          mem.words_per_class() + 1),
                 uhd::error);
    const std::vector<std::uint64_t> short_query(1, 0);
    EXPECT_THROW((void)mem.nearest_prefix(short_query, 2), uhd::error);
}

TEST(DynamicQuery, LadderShapeAndFullScanPolicy) {
    xoshiro256ss rng(606);
    const class_memory mem = random_memory(5, 4096, rng); // 64 words
    const auto ladder = dynamic_query_policy::ladder(mem);
    ASSERT_EQ(ladder.stages().size(), 4u);
    EXPECT_EQ(ladder.stages()[0].window_words, 8u);
    EXPECT_EQ(ladder.stages()[1].window_words, 16u);
    EXPECT_EQ(ladder.stages()[2].window_words, 32u);
    EXPECT_EQ(ladder.stages()[3].window_words, 64u);
    EXPECT_EQ(ladder.stages()[3].margin_threshold, 0u);
    for (std::size_t s = 0; s + 1 < ladder.stages().size(); ++s) {
        EXPECT_EQ(ladder.stages()[s].margin_threshold,
                  dynamic_query_policy::disabled_threshold);
    }

    // Tiny rows collapse the ladder but always end on the full window.
    const class_memory tiny = random_memory(3, 64, rng); // one word
    const auto tiny_ladder = dynamic_query_policy::ladder(tiny);
    ASSERT_EQ(tiny_ladder.stages().size(), 1u);
    EXPECT_EQ(tiny_ladder.stages()[0].window_words, 1u);

    const auto full = dynamic_query_policy::full_scan(mem);
    ASSERT_EQ(full.stages().size(), 1u);
    EXPECT_EQ(full.stages()[0].window_words, 64u);
}

TEST(DynamicQuery, UncalibratedLadderAnswersExactlyLikeNearest) {
    xoshiro256ss rng(707);
    const class_memory mem = random_memory(10, 2048, rng);
    const auto policy = dynamic_query_policy::ladder(mem);
    for (int q = 0; q < 50; ++q) {
        const hypervector query = random_hv(2048, rng);
        dynamic_query_stats stats;
        const std::size_t answer = policy.answer(mem, query.bits().words(), &stats);
        EXPECT_EQ(answer, mem.nearest(query));
        // Every early stage is disabled, so the cascade must run to the end.
        EXPECT_EQ(stats.exit_stage, policy.stages().size() - 1);
        EXPECT_EQ(stats.window_words, mem.words_per_class());
        EXPECT_EQ(stats.words_scanned, mem.classes() * mem.words_per_class());
    }
}

TEST(DynamicQuery, FullDFallbackMatchesPredictEncoded) {
    // The dynamic-query determinism contract on a real trained model: any
    // query the cascade escalates to the final stage answers bit-identically
    // to binarized-mode predict_encoded.
    const auto train = data::make_synthetic_digits(150, 21);
    const auto test = data::make_synthetic_digits(80, 22);
    core::uhd_config cfg;
    cfg.dim = 1024;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums,
                                         query_mode::binarized);
    clf.fit(train);

    const auto ladder = dynamic_query_policy::ladder(clf.packed_class_memory());
    const auto calibrated = clf.calibrate_dynamic(train, 0.99);
    std::vector<std::int32_t> encoded(enc.dim());
    for (std::size_t i = 0; i < test.size(); ++i) {
        enc.encode(test.image(i), encoded);
        const std::size_t full = clf.predict_encoded(encoded);
        // Disabled ladder == always the full-D answer.
        EXPECT_EQ(clf.predict_dynamic_encoded(encoded, ladder), full);
        // Calibrated cascade: whenever it reaches the final stage, it must
        // give the full-D answer (earlier exits may legitimately differ).
        dynamic_query_stats stats;
        const std::size_t dynamic_answer =
            clf.predict_dynamic_encoded(encoded, calibrated, &stats);
        if (stats.exit_stage + 1 == calibrated.stages().size()) {
            EXPECT_EQ(dynamic_answer, full);
        }
        EXPECT_EQ(stats.words_scanned, clf.classes() * stats.window_words);
        // predict_dynamic(image) is encode + the same cascade.
        EXPECT_EQ(clf.predict_dynamic(test.image(i), calibrated), dynamic_answer);
    }
}

TEST(DynamicQuery, CalibrationHitsTargetAgreementOnCalibrationSet) {
    const auto train = data::make_synthetic_digits(200, 31);
    const auto calib = data::make_synthetic_digits(120, 32);
    core::uhd_config cfg;
    cfg.dim = 2048;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums,
                                         query_mode::binarized);
    clf.fit(train);

    const double target = 0.99;
    const auto policy = clf.calibrate_dynamic(calib, target);
    ASSERT_GE(policy.stages().size(), 2u);

    // Re-derive the per-stage guarantee the calibration promises: among
    // calibration queries whose margin clears the stage threshold, the
    // truncated answer agrees with full-D at >= target rate.
    std::vector<std::int32_t> encoded(enc.dim());
    std::vector<std::uint64_t> words(simd::sign_words(enc.dim()));
    for (std::size_t s = 0; s + 1 < policy.stages().size(); ++s) {
        const auto& stage = policy.stages()[s];
        if (stage.margin_threshold == dynamic_query_policy::disabled_threshold) {
            continue;
        }
        std::size_t kept = 0;
        std::size_t agree = 0;
        for (std::size_t i = 0; i < calib.size(); ++i) {
            enc.encode(calib.image(i), encoded);
            kernels::sign_binarize(encoded.data(), encoded.size(), words.data());
            const auto r = clf.packed_class_memory().nearest_prefix(
                words, stage.window_words);
            if (r.margin < stage.margin_threshold) continue;
            ++kept;
            if (r.index == clf.packed_class_memory().nearest(words)) ++agree;
        }
        if (kept == 0) continue;
        EXPECT_GE(static_cast<double>(agree),
                  target * static_cast<double>(kept))
            << "stage " << s;
    }
}

TEST(DynamicQuery, CalibrationWithoutDataStaysFullScan) {
    xoshiro256ss rng(808);
    const class_memory mem = random_memory(10, 1024, rng);
    const auto policy = dynamic_query_policy::calibrate(mem, {}, 0, 0.99);
    for (std::size_t s = 0; s + 1 < policy.stages().size(); ++s) {
        EXPECT_EQ(policy.stages()[s].margin_threshold,
                  dynamic_query_policy::disabled_threshold);
    }
}

TEST(DynamicQuery, CalibrationValidatesArguments) {
    xoshiro256ss rng(909);
    const class_memory mem = random_memory(4, 256, rng);
    EXPECT_THROW((void)dynamic_query_policy::calibrate(mem, {}, 0, 1.5), uhd::error);
    EXPECT_THROW((void)dynamic_query_policy::calibrate(mem, {}, 0, -0.1), uhd::error);
    const std::vector<std::uint64_t> too_short(2, 0);
    EXPECT_THROW((void)dynamic_query_policy::calibrate(mem, too_short, 5, 0.9),
                 uhd::error);
}

TEST(DynamicQuery, AnswerValidatesPolicyAndQueryGeometry) {
    xoshiro256ss rng(1010);
    const class_memory mem = random_memory(4, 1024, rng);
    const class_memory other = random_memory(4, 2048, rng);
    const auto policy = dynamic_query_policy::ladder(mem);
    const hypervector query = random_hv(2048, rng);
    EXPECT_THROW((void)policy.answer(other, query.bits().words()), uhd::error);
    const dynamic_query_policy empty;
    const hypervector small = random_hv(1024, rng);
    EXPECT_THROW((void)empty.answer(mem, small.bits().words()), uhd::error);
}

} // namespace
