// Tests for the mini-batch parallel training engine: fit_parallel must be
// bit-identical to the sequential fit() for every thread count, batch size,
// chunking, and train_mode (class accumulators AND packed class rows), and
// the pool retrain overload must match the sequential retrain exactly.
#include <gtest/gtest.h>

#include <vector>

#include "uhd/common/thread_pool.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/hdc/trainer.hpp"

namespace {

using namespace uhd;
using namespace uhd::hdc;

template <typename Encoder>
void expect_identical_state(const hd_classifier<Encoder>& a,
                            const hd_classifier<Encoder>& b) {
    ASSERT_EQ(a.classes(), b.classes());
    for (std::size_t c = 0; c < a.classes(); ++c) {
        const auto va = a.class_accumulator(c).values();
        const auto vb = b.class_accumulator(c).values();
        ASSERT_EQ(va.size(), vb.size());
        for (std::size_t d = 0; d < va.size(); ++d) {
            ASSERT_EQ(va[d], vb[d]) << "class " << c << " dim " << d;
        }
        const auto ra = a.packed_class_memory().row(c);
        const auto rb = b.packed_class_memory().row(c);
        for (std::size_t w = 0; w < ra.size(); ++w) {
            ASSERT_EQ(ra[w], rb[w]) << "class " << c << " word " << w;
        }
    }
}

TEST(Trainer, FitParallelBitIdenticalAcrossThreadCountsAndModes) {
    const auto train = data::make_synthetic_digits(97, 5); // odd count: ragged chunks
    core::uhd_config cfg;
    cfg.dim = 200; // non-multiple-of-64 exercises the packed tail
    const core::uhd_encoder enc(cfg, train.shape());

    for (const train_mode tm : {train_mode::binarized_images, train_mode::raw_sums}) {
        hd_classifier<core::uhd_encoder> sequential(enc, 10, tm);
        sequential.fit(train);

        // No pool (inline chunk) first, then 1, 2, 7 workers and hardware
        // concurrency (thread_pool(0)).
        {
            hd_classifier<core::uhd_encoder> clf(enc, 10, tm);
            clf.fit_parallel(train, nullptr);
            expect_identical_state(sequential, clf);
        }
        for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                          std::size_t{7}, std::size_t{0}}) {
            thread_pool pool(workers);
            hd_classifier<core::uhd_encoder> clf(enc, 10, tm);
            clf.fit_parallel(train, &pool);
            expect_identical_state(sequential, clf);
        }
    }
}

TEST(Trainer, FitParallelIndependentOfBatchSize) {
    const auto train = data::make_synthetic_digits(60, 6);
    core::uhd_config cfg;
    cfg.dim = 128;
    const core::uhd_encoder enc(cfg, train.shape());
    hd_classifier<core::uhd_encoder> sequential(enc, 10, train_mode::raw_sums);
    sequential.fit(train);

    thread_pool pool(3);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{64},
                                    std::size_t{1000}}) {
        trainer_options options;
        options.batch_images = batch;
        hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums);
        clf.fit_parallel(train, &pool, options);
        expect_identical_state(sequential, clf);
    }
}

TEST(Trainer, FitParallelWorksForMinimalContractEncoders) {
    // baseline_encoder has no encode_batch: the trainer must fall back to
    // the per-image path and still match the sequential fit.
    const auto train = data::make_synthetic_digits(40, 7);
    baseline_config cfg;
    cfg.dim = 256;
    const baseline_encoder enc(cfg, train.shape());
    hd_classifier<baseline_encoder> sequential(enc, 10);
    sequential.fit(train);

    thread_pool pool(2);
    hd_classifier<baseline_encoder> clf(enc, 10);
    clf.fit_parallel(train, &pool);
    expect_identical_state(sequential, clf);
}

TEST(Trainer, FitParallelAccumulatesOntoExistingState) {
    // fit() bundles into whatever state exists; fit_parallel must do the
    // same so online (partial_fit) and batch training compose.
    const auto stream = data::make_synthetic_digits(20, 8);
    const auto batch = data::make_synthetic_digits(50, 9);
    core::uhd_config cfg;
    cfg.dim = 128;
    const core::uhd_encoder enc(cfg, stream.shape());

    hd_classifier<core::uhd_encoder> sequential(enc, 10);
    hd_classifier<core::uhd_encoder> parallel(enc, 10);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        sequential.partial_fit(stream.image(i), stream.label(i));
        parallel.partial_fit(stream.image(i), stream.label(i));
    }
    sequential.fit(batch);
    thread_pool pool(3);
    parallel.fit_parallel(batch, &pool);
    expect_identical_state(sequential, parallel);
}

TEST(Trainer, BatchTrainerDeltaMatchesSequentialBundle) {
    // The trainer's accumulate() is a pure delta: summing it over an empty
    // model must equal fit() from scratch (both train modes).
    const auto train = data::make_synthetic_digits(33, 10);
    core::uhd_config cfg;
    cfg.dim = 192;
    const core::uhd_encoder enc(cfg, train.shape());
    for (const train_mode tm : {train_mode::binarized_images, train_mode::raw_sums}) {
        hd_classifier<core::uhd_encoder> sequential(enc, 10, tm);
        sequential.fit(train);

        const batch_trainer<core::uhd_encoder> trainer(enc, 10, tm);
        thread_pool pool(4);
        const std::vector<accumulator> delta = trainer.accumulate(train, &pool);
        ASSERT_EQ(delta.size(), 10u);
        for (std::size_t c = 0; c < delta.size(); ++c) {
            const auto want = sequential.class_accumulator(c).values();
            const auto got = delta[c].values();
            ASSERT_EQ(want.size(), got.size());
            for (std::size_t d = 0; d < want.size(); ++d) {
                ASSERT_EQ(want[d], got[d]) << "class " << c << " dim " << d;
            }
        }
    }
}

TEST(Trainer, EmptyDatasetIsANoOp) {
    const data::dataset empty(data::image_shape{8, 8, 1}, 10);
    core::uhd_config cfg;
    cfg.dim = 128;
    const core::uhd_encoder enc(cfg, empty.shape());
    thread_pool pool(2);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit_parallel(empty, &pool);
    for (std::size_t c = 0; c < clf.classes(); ++c) {
        for (const std::int32_t v : clf.class_accumulator(c).values()) {
            ASSERT_EQ(v, 0);
        }
    }
}

TEST(Trainer, ParallelRetrainMatchesSequentialRetrain) {
    // Binarized query mode: within an epoch predictions run against the
    // epoch-start packed memory, so the mini-batch parallel retrain is
    // bit-identical to the sequential one — updates count included.
    const auto train = data::make_synthetic_digits(80, 11);
    core::uhd_config cfg;
    cfg.dim = 64; // small D so some images stay misclassified
    const core::uhd_encoder enc(cfg, train.shape());

    hd_classifier<core::uhd_encoder> sequential(enc, 10, train_mode::raw_sums,
                                                query_mode::binarized);
    sequential.fit(train);
    hd_classifier<core::uhd_encoder> parallel(enc, 10, train_mode::raw_sums,
                                              query_mode::binarized);
    parallel.fit(train);

    const std::size_t updates_seq = sequential.retrain(train, 2);
    thread_pool pool(3);
    const std::size_t updates_par = parallel.retrain(train, 2, &pool, 17);
    EXPECT_EQ(updates_seq, updates_par);
    expect_identical_state(sequential, parallel);
}

TEST(Trainer, IntegerModeParallelRetrainFallsBackToSequential) {
    const auto train = data::make_synthetic_digits(50, 12);
    core::uhd_config cfg;
    cfg.dim = 64;
    const core::uhd_encoder enc(cfg, train.shape());

    hd_classifier<core::uhd_encoder> sequential(enc, 10, train_mode::raw_sums,
                                                query_mode::integer);
    sequential.fit(train);
    hd_classifier<core::uhd_encoder> pooled(enc, 10, train_mode::raw_sums,
                                            query_mode::integer);
    pooled.fit(train);

    thread_pool pool(2);
    const std::size_t updates_seq = sequential.retrain(train, 1);
    const std::size_t updates_par = pooled.retrain(train, 1, &pool);
    EXPECT_EQ(updates_seq, updates_par);
    expect_identical_state(sequential, pooled);
}

} // namespace
