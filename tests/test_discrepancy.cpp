// Tests for the uniformity diagnostics.
#include <gtest/gtest.h>

#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/lowdisc/discrepancy.hpp"
#include "uhd/lowdisc/halton.hpp"

namespace {

using namespace uhd::ld;

std::vector<double> uniform_grid(std::size_t n) {
    std::vector<double> points;
    for (std::size_t i = 0; i < n; ++i) {
        points.push_back((static_cast<double>(i) + 0.5) / static_cast<double>(n));
    }
    return points;
}

TEST(StarDiscrepancy, CenteredGridIsOptimal) {
    // The centered regular grid has D* = 1/(2n).
    const auto points = uniform_grid(100);
    EXPECT_NEAR(star_discrepancy(points), 0.005, 1e-9);
}

TEST(StarDiscrepancy, SinglePoint) {
    EXPECT_NEAR(star_discrepancy(std::vector<double>{0.5}), 0.5, 1e-12);
}

TEST(StarDiscrepancy, ClusteredPointsAreBad) {
    std::vector<double> clustered(50, 0.9);
    EXPECT_GT(star_discrepancy(clustered), 0.8);
}

TEST(StarDiscrepancy, RejectsOutOfRange) {
    EXPECT_THROW((void)star_discrepancy(std::vector<double>{1.5}), uhd::error);
    EXPECT_THROW((void)star_discrepancy(std::vector<double>{}), uhd::error);
}

TEST(StarDiscrepancy, LdBeatsRandom) {
    const auto vdc = van_der_corput(512);
    uhd::xoshiro256ss rng(17);
    std::vector<double> random;
    for (int i = 0; i < 512; ++i) random.push_back(rng.next_unit());
    EXPECT_LT(star_discrepancy(vdc), star_discrepancy(random));
}

TEST(CdfError, BoundedByStarDiscrepancy) {
    const auto vdc = van_der_corput(256);
    EXPECT_LE(cdf_error(vdc), star_discrepancy(vdc) + 1e-12);
}

TEST(SequenceCorrelation, SelfIsOne) {
    const auto points = van_der_corput(128);
    EXPECT_NEAR(sequence_correlation(points, points), 1.0, 1e-12);
}

TEST(SequenceCorrelation, AntitheticIsMinusOne) {
    const auto a = van_der_corput(128);
    std::vector<double> b;
    for (const double x : a) b.push_back(1.0 - x);
    EXPECT_NEAR(sequence_correlation(a, b), -1.0, 1e-12);
}

TEST(SequenceCorrelation, MismatchThrows) {
    EXPECT_THROW((void)sequence_correlation(van_der_corput(4), van_der_corput(5)),
                 uhd::error);
}

TEST(ChiSquare, UniformSampleLooksUniform) {
    const auto points = uniform_grid(1024);
    // A perfectly uniform sample has chi-square ~ 0.
    EXPECT_LT(chi_square_uniform(points, 16), 1.0);
}

TEST(ChiSquare, BiasedSampleFails) {
    std::vector<double> biased(1024, 0.1);
    EXPECT_GT(chi_square_uniform(biased, 16), 1000.0);
}

} // namespace
