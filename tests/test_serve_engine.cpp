// Tests for the serve layer: the micro-batch request queue, engine
// bit-identity with the direct snapshot read paths, stats accounting, and
// concurrent clients racing an online trainer that publishes snapshots.
// The concurrency suites are the ThreadSanitizer targets CI runs under
// -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/serve/inference_engine.hpp"
#include "uhd/serve/request_queue.hpp"

namespace {

using namespace uhd;
using namespace uhd::hdc;
using serve::engine_options;
using serve::inference_engine;
using serve::micro_batch_queue;

core::uhd_encoder make_encoder(const data::dataset& set, std::size_t dim = 512) {
    core::uhd_config cfg;
    cfg.dim = dim;
    return core::uhd_encoder(cfg, set.shape());
}

std::vector<std::int32_t> encode_one(const core::uhd_encoder& enc,
                                     const data::dataset& set, std::size_t i) {
    std::vector<std::int32_t> out(enc.dim());
    enc.encode(set.image(i), out);
    return out;
}

// --- micro_batch_queue ----------------------------------------------------

TEST(MicroBatchQueue, DrainsInBatchesUpToTheCap) {
    micro_batch_queue<int> queue(64);
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.push(i));
    std::vector<int> batch;
    EXPECT_EQ(queue.pop_batch(batch, 4), 4u);
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(queue.pop_batch(batch, 100), 6u); // the rest, FIFO
    EXPECT_EQ(batch.front(), 4);
    EXPECT_EQ(batch.back(), 9);
}

TEST(MicroBatchQueue, CloseDrainsBacklogThenSignalsShutdown) {
    micro_batch_queue<int> queue(8);
    ASSERT_TRUE(queue.push(1));
    ASSERT_TRUE(queue.push(2));
    queue.close();
    EXPECT_FALSE(queue.push(3)); // post-close pushes are refused
    std::vector<int> batch;
    EXPECT_EQ(queue.pop_batch(batch, 8), 2u); // backlog still served
    EXPECT_EQ(queue.pop_batch(batch, 8), 0u); // then the exit signal
}

TEST(MicroBatchQueue, BlockedProducerUnblocksOnDrain) {
    micro_batch_queue<int> queue(2);
    ASSERT_TRUE(queue.push(1));
    ASSERT_TRUE(queue.push(2));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(queue.push(3)); // blocks until a slot frees
        pushed.store(true);
    });
    std::vector<int> batch;
    EXPECT_EQ(queue.pop_batch(batch, 1), 1u);
    producer.join();
    EXPECT_TRUE(pushed.load());
    queue.close();
}

TEST(MicroBatchQueue, BlockedProducerUnblocksOnClose) {
    micro_batch_queue<int> queue(1);
    ASSERT_TRUE(queue.push(1));
    std::thread producer([&] {
        EXPECT_FALSE(queue.push(2)); // full, then closed: refused
    });
    // Give the producer a moment to block, then close.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.close();
    producer.join();
}

// --- inference_engine: identity and stats ---------------------------------

TEST(InferenceEngine, AnswersMatchDirectSnapshotPredictions) {
    const auto train = data::make_synthetic_digits(150, 71);
    const auto test = data::make_synthetic_digits(80, 72);
    const auto enc = make_encoder(train);
    for (const query_mode qm : {query_mode::binarized, query_mode::integer}) {
        hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums, qm);
        clf.fit(train);
        engine_options opts;
        opts.workers = 2;
        opts.max_batch = 8;
        inference_engine engine(clf.snapshot(), opts);
        std::vector<std::future<std::size_t>> answers;
        for (std::size_t i = 0; i < test.size(); ++i) {
            answers.push_back(engine.submit(encode_one(enc, test, i)));
        }
        for (std::size_t i = 0; i < test.size(); ++i) {
            EXPECT_EQ(answers[i].get(),
                      clf.predict_encoded(encode_one(enc, test, i)))
                << "mode=" << static_cast<int>(qm) << " query=" << i;
        }
    }
}

TEST(InferenceEngine, DynamicPolicyEngineMatchesPredictDynamic) {
    const auto train = data::make_synthetic_digits(150, 73);
    const auto test = data::make_synthetic_digits(60, 74);
    const auto enc = make_encoder(train, 1024);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    const dynamic_query_policy policy = clf.calibrate_dynamic(train, 0.95);
    inference_engine engine(clf.snapshot(), policy);
    for (std::size_t i = 0; i < test.size(); ++i) {
        const auto encoded = encode_one(enc, test, i);
        EXPECT_EQ(engine.predict(encoded),
                  clf.predict_dynamic_encoded(encoded, policy));
    }
}

TEST(InferenceEngine, DynamicPolicyOverIntegerSnapshotServesCascadeAnswers) {
    // The documented mode/policy interaction: a policy-configured engine
    // answers from the packed memory regardless of the snapshot's
    // query_mode — exactly predict_dynamic's semantics, never a silent
    // third behavior.
    const auto train = data::make_synthetic_digits(150, 78);
    const auto test = data::make_synthetic_digits(60, 79);
    const auto enc = make_encoder(train, 1024);
    hd_classifier<core::uhd_encoder> clf(enc, 10, train_mode::raw_sums,
                                         query_mode::integer);
    clf.fit(train);
    const dynamic_query_policy policy = clf.calibrate_dynamic(train, 0.95);
    inference_engine engine(clf.snapshot(), policy);
    for (std::size_t i = 0; i < test.size(); ++i) {
        const auto encoded = encode_one(enc, test, i);
        EXPECT_EQ(engine.predict(encoded),
                  clf.predict_dynamic_encoded(encoded, policy));
    }
}

TEST(InferenceEngine, StatsAccountForEveryQueryAndSwap) {
    const auto train = data::make_synthetic_digits(100, 75);
    const auto enc = make_encoder(train, 256);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    engine_options opts;
    opts.workers = 2;
    opts.max_batch = 4;
    inference_engine engine(clf.snapshot(), opts);
    const std::size_t queries = 50;
    for (std::size_t i = 0; i < queries; ++i) {
        (void)engine.predict(encode_one(enc, train, i % train.size()));
    }
    clf.partial_fit(train.image(0), train.label(0));
    engine.publish(clf.snapshot());
    engine.publish(clf.snapshot());
    engine.stop(); // quiesce: counters are exact afterwards
    const serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.queries, queries);
    EXPECT_EQ(stats.snapshot_swaps, 2u);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_LE(stats.batches, stats.queries);
    EXPECT_GE(stats.max_batch_observed, 1u);
    EXPECT_LE(stats.max_batch_observed, opts.max_batch);
    EXPECT_EQ(stats.snapshot_version, clf.snapshot().version());
}

TEST(InferenceEngine, RejectsBadQueriesAndBadPublishes) {
    const auto train = data::make_synthetic_digits(60, 76);
    const auto enc = make_encoder(train, 256);
    const auto enc_other = make_encoder(train, 512);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    inference_engine engine(clf.snapshot());
    EXPECT_THROW((void)engine.submit(std::vector<std::int32_t>(100, 0)), uhd::error);
    // Geometry and mode are pinned at construction.
    hd_classifier<core::uhd_encoder> other(enc_other, 10);
    other.fit(train);
    EXPECT_THROW(engine.publish(other.snapshot()), uhd::error);
    hd_classifier<core::uhd_encoder> integer_clf(enc, 10, train_mode::raw_sums,
                                                 query_mode::integer);
    integer_clf.fit(train);
    EXPECT_THROW(engine.publish(integer_clf.snapshot()), uhd::error);
    engine.stop();
    EXPECT_THROW((void)engine.submit(encode_one(enc, train, 0)), uhd::error);
}

TEST(InferenceEngine, MismatchedDynamicPolicyFailsAtConstruction) {
    const auto train = data::make_synthetic_digits(60, 77);
    const auto enc = make_encoder(train, 256);
    const auto enc_wide = make_encoder(train, 1024);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    hd_classifier<core::uhd_encoder> wide(enc_wide, 10);
    clf.fit(train);
    wide.fit(train);
    const dynamic_query_policy wide_policy =
        dynamic_query_policy::full_scan(wide.snapshot());
    EXPECT_THROW(inference_engine(clf.snapshot(), wide_policy), uhd::error);
}

// --- concurrent serving while learning (the TSan targets) -----------------

TEST(InferenceEngineConcurrent, ServesWhileTrainerPublishes) {
    const auto base = data::make_synthetic_digits(100, 81);
    const auto stream = data::make_synthetic_digits(200, 82);
    const auto test = data::make_synthetic_digits(40, 83);
    const auto enc = make_encoder(base);
    hd_classifier<core::uhd_encoder> trainer(enc, 10, train_mode::raw_sums,
                                             query_mode::binarized);
    trainer.fit(base);
    engine_options opts;
    opts.workers = 2;
    opts.max_batch = 8;
    inference_engine engine(trainer.snapshot(), opts);

    // Pre-encode the query pool so client threads do no encoder work.
    std::vector<std::vector<std::int32_t>> pool;
    for (std::size_t i = 0; i < test.size(); ++i) {
        pool.push_back(encode_one(enc, test, i));
    }

    constexpr std::size_t clients = 3;
    constexpr std::size_t per_client = 150;
    std::atomic<std::size_t> bad_answers{0};
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        client_threads.emplace_back([&, c] {
            for (std::size_t q = 0; q < per_client; ++q) {
                const std::size_t answer =
                    engine.predict(pool[(c + q) % pool.size()]);
                if (answer >= 10) bad_answers.fetch_add(1);
            }
        });
    }
    // The trainer thread: online updates + a publish every few of them,
    // racing the clients the whole time.
    std::thread trainer_thread([&] {
        for (std::size_t i = 0; i < stream.size(); ++i) {
            trainer.partial_fit(stream.image(i), stream.label(i));
            if (i % 10 == 9) engine.publish(trainer.snapshot());
        }
        engine.publish(trainer.snapshot());
    });
    for (auto& t : client_threads) t.join();
    trainer_thread.join();
    EXPECT_EQ(bad_answers.load(), 0u);

    // Quiesced: the engine now serves the trainer's final state and must
    // answer exactly like the classifier it was trained alongside.
    for (std::size_t i = 0; i < pool.size(); ++i) {
        EXPECT_EQ(engine.predict(pool[i]), trainer.predict_encoded(pool[i]));
    }
    const serve::serve_stats stats = engine.stats();
    EXPECT_GE(stats.queries, clients * per_client);
    EXPECT_EQ(stats.snapshot_swaps, stream.size() / 10 + 1);
    EXPECT_EQ(stats.snapshot_version, trainer.snapshot().version());
}

TEST(InferenceEngineConcurrent, ReadersPinTheSnapshotTheyHold) {
    const auto base = data::make_synthetic_digits(80, 84);
    const auto enc = make_encoder(base, 256);
    hd_classifier<core::uhd_encoder> trainer(enc, 10);
    trainer.fit(base);
    inference_engine engine(trainer.snapshot());
    const std::shared_ptr<const inference_snapshot> pinned = engine.current();
    const auto query = encode_one(enc, base, 0);
    const std::size_t before = pinned->predict_encoded(query);
    // Publish a stream of new snapshots; the pinned one must not move.
    for (std::size_t i = 0; i < 50; ++i) {
        trainer.partial_fit(base.image(i % base.size()),
                            base.label(i % base.size()));
        engine.publish(trainer.snapshot());
        EXPECT_EQ(pinned->predict_encoded(query), before);
    }
    EXPECT_EQ(engine.current()->version(), trainer.snapshot().version());
    EXPECT_GT(engine.current()->version(), pinned->version());
}

TEST(InferenceEngineConcurrent, StopWithConcurrentSubmittersIsClean) {
    const auto base = data::make_synthetic_digits(60, 85);
    const auto enc = make_encoder(base, 256);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(base);
    engine_options opts;
    opts.workers = 2;
    opts.max_batch = 4;
    opts.queue_capacity = 16;
    inference_engine engine(clf.snapshot(), opts);
    const auto query = encode_one(enc, base, 0);
    std::atomic<std::size_t> served{0};
    std::atomic<std::size_t> refused{0};
    std::vector<std::thread> submitters;
    for (std::size_t c = 0; c < 3; ++c) {
        submitters.emplace_back([&] {
            for (std::size_t q = 0; q < 200; ++q) {
                try {
                    (void)engine.predict(query);
                    served.fetch_add(1);
                } catch (const uhd::error&) {
                    refused.fetch_add(1); // raced stop(): refused up front
                }
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    engine.stop();
    for (auto& t : submitters) t.join();
    // Every request was either served or cleanly refused — no hangs, no
    // broken futures.
    EXPECT_EQ(served.load() + refused.load(), 3u * 200u);
}

// --- micro_batch_queue: non-blocking push + close/submit edges ------------

TEST(MicroBatchQueue, TryPushReportsFullAndClosedWithoutConsuming) {
    micro_batch_queue<int> queue(2);
    EXPECT_EQ(queue.try_push(1), serve::push_result::pushed);
    EXPECT_EQ(queue.try_push(2), serve::push_result::pushed);
    EXPECT_EQ(queue.try_push(3), serve::push_result::full); // never blocks
    std::vector<int> batch;
    EXPECT_EQ(queue.pop_batch(batch, 1), 1u);
    EXPECT_EQ(queue.try_push(3), serve::push_result::pushed); // slot freed
    queue.close();
    EXPECT_EQ(queue.try_push(4), serve::push_result::closed);
    EXPECT_EQ(queue.pop_batch(batch, 8), 2u); // backlog still served
    EXPECT_EQ(batch, (std::vector<int>{2, 3}));
}

TEST(MicroBatchQueue, TryPushLeavesTheItemIntactWhenRefused) {
    // The wire server parks the refused payload and retries it later; a
    // move-out on `full` would silently destroy the request.
    micro_batch_queue<std::vector<int>> queue(1);
    std::vector<int> first{1, 2, 3};
    ASSERT_EQ(queue.try_push(std::move(first)), serve::push_result::pushed);
    std::vector<int> second{4, 5, 6};
    ASSERT_EQ(queue.try_push(std::move(second)), serve::push_result::full);
    EXPECT_EQ(second, (std::vector<int>{4, 5, 6})); // untouched
    queue.close();
    ASSERT_EQ(queue.try_push(std::move(second)), serve::push_result::closed);
    EXPECT_EQ(second, (std::vector<int>{4, 5, 6})); // still untouched
}

TEST(MicroBatchQueue, RacingCloseDuringFullQueueWaitCannotDeadlock) {
    // The close/submit edge, hammered: producers blocked on a full queue
    // while close() races them must ALL return (false), with no consumer
    // draining slots. Run under TSan in CI.
    for (int round = 0; round < 20; ++round) {
        micro_batch_queue<int> queue(1);
        ASSERT_TRUE(queue.push(0)); // full from the start
        std::atomic<int> refused{0};
        std::vector<std::thread> producers;
        for (int p = 0; p < 4; ++p) {
            producers.emplace_back([&] {
                if (!queue.push(1)) refused.fetch_add(1);
            });
        }
        // No sleep: close() races the producers' wait entry on purpose.
        queue.close();
        for (auto& t : producers) t.join(); // would hang on a lost wakeup
        EXPECT_EQ(refused.load(), 4);
        EXPECT_EQ(queue.try_push(2), serve::push_result::closed);
    }
}

// --- inference_engine: wire-path (callback) submits -----------------------

TEST(InferenceEngine, TrySubmitAnswersThroughTheCallbackWithVersion) {
    const auto train = data::make_synthetic_digits(120, 81);
    const auto test = data::make_synthetic_digits(40, 82);
    const auto enc = make_encoder(train);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    const auto snapshot = clf.snapshot();
    inference_engine engine(snapshot);
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t answered = 0;
    std::vector<std::size_t> labels(test.size());
    std::vector<std::uint64_t> versions(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
        auto encoded = encode_one(enc, test, i);
        const bool pushed = engine.try_submit(
            encoded,
            [&, i](std::size_t label, std::uint64_t version,
                   std::exception_ptr error) {
                ASSERT_EQ(error, nullptr);
                const std::lock_guard<std::mutex> lock(mutex);
                labels[i] = label;
                versions[i] = version;
                ++answered;
                cv.notify_one();
            });
        ASSERT_TRUE(pushed); // default capacity far above this load
        EXPECT_TRUE(encoded.empty()); // payload moved into the request
    }
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return answered == test.size(); });
    for (std::size_t i = 0; i < test.size(); ++i) {
        EXPECT_EQ(labels[i], clf.predict_encoded(encode_one(enc, test, i)));
        EXPECT_EQ(versions[i], snapshot.version());
    }
    engine.stop();
}

TEST(InferenceEngine, PerRequestRoutingMatchesBothDirectPaths) {
    // A policy engine serving a MIXED batch: dynamic=false requests answer
    // with full-scan semantics, dynamic=true with the cascade — each
    // bit-identical to the corresponding direct snapshot path.
    const auto train = data::make_synthetic_digits(150, 83);
    const auto test = data::make_synthetic_digits(60, 84);
    const auto enc = make_encoder(train, 1024);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    const dynamic_query_policy policy = clf.calibrate_dynamic(train, 0.95);
    inference_engine engine(clf.snapshot(), policy);
    EXPECT_TRUE(engine.dynamic_capable());
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t answered = 0;
    std::vector<std::size_t> labels(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
        auto encoded = encode_one(enc, test, i);
        const bool dynamic = i % 2 == 1; // interleave the two kinds
        ASSERT_TRUE(engine.try_submit(
            encoded,
            [&, i](std::size_t label, std::uint64_t, std::exception_ptr error) {
                ASSERT_EQ(error, nullptr);
                const std::lock_guard<std::mutex> lock(mutex);
                labels[i] = label;
                ++answered;
                cv.notify_one();
            },
            dynamic));
    }
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return answered == test.size(); });
    }
    for (std::size_t i = 0; i < test.size(); ++i) {
        const auto encoded = encode_one(enc, test, i);
        const std::size_t expected =
            i % 2 == 1 ? clf.predict_dynamic_encoded(encoded, policy)
                       : clf.predict_encoded(encoded);
        EXPECT_EQ(labels[i], expected) << "query " << i;
    }
    engine.stop();
}

TEST(InferenceEngine, TrySubmitRejectsDynamicWithoutPolicyAndStopped) {
    const auto train = data::make_synthetic_digits(60, 85);
    const auto enc = make_encoder(train, 256);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    inference_engine engine(clf.snapshot());
    EXPECT_FALSE(engine.dynamic_capable());
    auto encoded = encode_one(enc, train, 0);
    const auto ignore = [](std::size_t, std::uint64_t, std::exception_ptr) {};
    EXPECT_THROW((void)engine.try_submit(encoded, ignore, /*dynamic=*/true),
                 uhd::error);
    engine.stop();
    EXPECT_THROW((void)engine.try_submit(encoded, ignore), uhd::error);
}

TEST(InferenceEngine, TrySubmitReturnsFalseOnFullQueueAndKeepsPayload) {
    const auto train = data::make_synthetic_digits(60, 86);
    const auto enc = make_encoder(train, 256);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    engine_options opts;
    opts.workers = 1;
    opts.max_batch = 2;
    opts.queue_capacity = 2;
    inference_engine engine(clf.snapshot(), opts);
    // Plug the single worker with a slow callback so the tiny queue backs
    // up, then observe a non-blocking refusal with the payload intact.
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    std::atomic<std::size_t> delivered{0};
    const serve::answer_callback blocking =
        [&](std::size_t, std::uint64_t, std::exception_ptr) {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return release; });
            delivered.fetch_add(1);
        };
    const serve::answer_callback counting =
        [&](std::size_t, std::uint64_t, std::exception_ptr) {
            delivered.fetch_add(1);
        };
    auto query = encode_one(enc, train, 0);
    const auto reference = query;
    std::size_t accepted = 0;
    bool saw_full = false;
    // Keep pushing until the queue refuses; the first requests park the
    // worker inside the blocking callback.
    for (int i = 0; i < 64 && !saw_full; ++i) {
        auto copy = query;
        if (engine.try_submit(copy, i == 0 ? blocking : counting)) {
            ++accepted;
            EXPECT_TRUE(copy.empty());
        } else {
            saw_full = true;
            EXPECT_EQ(copy, reference); // refused payload handed back
        }
    }
    EXPECT_TRUE(saw_full);
    {
        const std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    engine.stop(); // drains the backlog: every accepted request answers
    EXPECT_EQ(delivered.load(), accepted);
}

TEST(InferenceEngine, RawSubmitBatchEncodesBitIdenticalToDirectPredict) {
    // The off-loop encode stage: raw pixels through try_submit_raw must
    // answer exactly like encoding on the caller's thread and submitting
    // pre-encoded — and the encode accounting must show batched
    // encode_batch calls, not one call per query.
    const auto train = data::make_synthetic_digits(150, 71);
    const auto test = data::make_synthetic_digits(80, 72);
    const auto enc = make_encoder(train);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    engine_options opts;
    opts.workers = 2;
    opts.max_batch = 16;
    opts.encoder = &enc;
    inference_engine engine(clf.snapshot(), opts);
    ASSERT_TRUE(engine.raw_capable());
    ASSERT_EQ(engine.raw_pixels(), test.image(0).size());
    std::mutex mutex;
    std::vector<std::size_t> labels(test.size(), ~std::size_t{0});
    std::atomic<std::size_t> errors{0};
    for (std::size_t i = 0; i < test.size(); ++i) {
        std::vector<std::uint8_t> raw(test.image(i).begin(),
                                      test.image(i).end());
        const bool accepted = engine.try_submit_raw(
            raw, [&, i](std::size_t label, std::uint64_t,
                        std::exception_ptr error) {
                if (error != nullptr) {
                    errors.fetch_add(1);
                    return;
                }
                const std::lock_guard<std::mutex> lock(mutex);
                labels[i] = label;
            });
        ASSERT_TRUE(accepted); // queue far larger than the test set
        EXPECT_TRUE(raw.empty());
    }
    engine.stop(); // drains: every callback has run
    EXPECT_EQ(errors.load(), 0u);
    for (std::size_t i = 0; i < test.size(); ++i) {
        EXPECT_EQ(labels[i], clf.predict_encoded(encode_one(enc, test, i)))
            << "query " << i;
    }
    const serve::serve_stats stats = engine.stats();
    EXPECT_EQ(stats.raw_queries, test.size());
    EXPECT_GE(stats.encode_kernel_calls, 1u);
    EXPECT_LE(stats.encode_kernel_calls, stats.raw_queries);
    EXPECT_GE(stats.encode_utilization(), 1.0);
}

TEST(InferenceEngine, RawSubmitValidatesEncoderPixelsAndShutdown) {
    const auto train = data::make_synthetic_digits(60, 76);
    const auto enc = make_encoder(train, 256);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    const serve::answer_callback ignore =
        [](std::size_t, std::uint64_t, std::exception_ptr) {};
    // No encoder configured: raw queries are a usage error.
    inference_engine plain(clf.snapshot());
    EXPECT_FALSE(plain.raw_capable());
    EXPECT_EQ(plain.raw_pixels(), 0u);
    std::vector<std::uint8_t> raw(train.image(0).begin(),
                                  train.image(0).end());
    EXPECT_THROW((void)plain.try_submit_raw(raw, ignore), uhd::error);
    // Encoder configured: the payload must be exactly raw_pixels() bytes.
    engine_options opts;
    opts.encoder = &enc;
    inference_engine engine(clf.snapshot(), opts);
    std::vector<std::uint8_t> wrong(engine.raw_pixels() + 3, 0);
    EXPECT_THROW((void)engine.try_submit_raw(wrong, ignore), uhd::error);
    EXPECT_EQ(wrong.size(), engine.raw_pixels() + 3); // payload untouched
    engine.stop();
    EXPECT_THROW((void)engine.try_submit_raw(raw, ignore), uhd::error);
}

TEST(InferenceEngine, ScratchPredictReusesTheAllocationAndMatches) {
    const auto train = data::make_synthetic_digits(120, 77);
    const auto test = data::make_synthetic_digits(40, 78);
    const auto enc = make_encoder(train);
    hd_classifier<core::uhd_encoder> clf(enc, 10);
    clf.fit(train);
    inference_engine engine(clf.snapshot());
    std::vector<std::int32_t> scratch;
    // Warm-up call owns the one allocation.
    const auto first = encode_one(enc, test, 0);
    EXPECT_EQ(engine.predict(first, scratch), clf.predict_encoded(first));
    ASSERT_EQ(scratch.size(), enc.dim()); // the buffer came back
    const std::int32_t* warm = scratch.data();
    for (std::size_t i = 1; i < test.size(); ++i) {
        const auto encoded = encode_one(enc, test, i);
        EXPECT_EQ(engine.predict(encoded, scratch),
                  clf.predict_encoded(encoded))
            << "query " << i;
        // Same allocation round-trips through the queue every call.
        EXPECT_EQ(scratch.data(), warm) << "scratch reallocated, query " << i;
    }
}

} // namespace
