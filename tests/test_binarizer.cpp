// Tests for the concurrent popcount binarizer (paper Fig. 5 masking logic).
#include <gtest/gtest.h>

#include "uhd/common/error.hpp"
#include "uhd/core/binarizer.hpp"

namespace {

using uhd::core::popcount_binarizer;

TEST(Binarizer, DefaultThresholdIsCeilHalf) {
    EXPECT_EQ(popcount_binarizer(784).threshold(), 392u);
    EXPECT_EQ(popcount_binarizer(785).threshold(), 393u);
    EXPECT_EQ(popcount_binarizer(1).threshold(), 1u);
}

TEST(Binarizer, CounterBitsCoverInputCount) {
    EXPECT_EQ(popcount_binarizer(784).counter_bits(), 10u);
    EXPECT_EQ(popcount_binarizer(1024).counter_bits(), 11u);
    EXPECT_EQ(popcount_binarizer(1).counter_bits(), 1u);
}

TEST(Binarizer, SignLatchesAtThreshold) {
    popcount_binarizer bin(8); // TOB = 4
    for (int i = 0; i < 3; ++i) bin.feed(true);
    EXPECT_FALSE(bin.sign_bit());
    bin.feed(true); // 4th one reaches TOB
    EXPECT_TRUE(bin.sign_bit());
    // Latched: further zeros don't clear the sign.
    for (int i = 0; i < 4; ++i) bin.feed(false);
    EXPECT_TRUE(bin.sign_bit());
    EXPECT_EQ(bin.count(), 4u);
    EXPECT_EQ(bin.consumed(), 8u);
}

TEST(Binarizer, ZerosNeverLatch) {
    popcount_binarizer bin(6);
    for (int i = 0; i < 6; ++i) bin.feed(false);
    EXPECT_FALSE(bin.sign_bit());
    EXPECT_EQ(bin.count(), 0u);
}

TEST(Binarizer, OverfeedThrows) {
    popcount_binarizer bin(2);
    bin.feed(true);
    bin.feed(false);
    EXPECT_THROW(bin.feed(true), uhd::error);
}

TEST(Binarizer, ResetClearsState) {
    popcount_binarizer bin(4);
    bin.feed(true);
    bin.feed(true); // TOB = 2 -> latched
    EXPECT_TRUE(bin.sign_bit());
    bin.reset();
    EXPECT_FALSE(bin.sign_bit());
    EXPECT_EQ(bin.count(), 0u);
    EXPECT_EQ(bin.consumed(), 0u);
    bin.feed(false);
    EXPECT_FALSE(bin.sign_bit());
}

TEST(Binarizer, DecideMatchesFeedSemantics) {
    for (const std::size_t h : {7u, 8u, 784u}) {
        popcount_binarizer reference(h);
        for (std::size_t ones = 0; ones <= h; ++ones) {
            popcount_binarizer bin(h);
            for (std::size_t i = 0; i < h; ++i) bin.feed(i < ones);
            EXPECT_EQ(bin.sign_bit(), reference.decide(ones))
                << "h=" << h << " ones=" << ones;
        }
    }
}

TEST(Binarizer, ExplicitThresholdVariant) {
    popcount_binarizer bin(10, 7);
    EXPECT_EQ(bin.threshold(), 7u);
    for (int i = 0; i < 6; ++i) bin.feed(true);
    EXPECT_FALSE(bin.sign_bit());
    bin.feed(true);
    EXPECT_TRUE(bin.sign_bit());
    EXPECT_THROW(popcount_binarizer(10, 0), uhd::error);
    EXPECT_THROW(popcount_binarizer(10, 12), uhd::error);
}

TEST(Binarizer, TieGoesPositiveForEvenH) {
    // H = 8, exactly 4 ones: count == TOB -> +1 (sign bit set), matching
    // accumulator::sign()'s ties-to-+1 rule.
    popcount_binarizer bin(8);
    for (int i = 0; i < 8; ++i) bin.feed(i % 2 == 0);
    EXPECT_TRUE(bin.sign_bit());
}

TEST(Binarizer, MaskEncodesThreshold) {
    const popcount_binarizer bin(784);
    EXPECT_EQ(bin.mask(), 392u);
    EXPECT_EQ(bin.inputs(), 784u);
}

} // namespace
