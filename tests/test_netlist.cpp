// Tests for the gate-level netlist simulator and the comparator netlists:
// functional equivalence (exhaustive), toggle accounting, and measured
// activity feeding the energy model.
#include <gtest/gtest.h>

#include "uhd/bitstream/unary.hpp"
#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/hw/netlist.hpp"

namespace {

using namespace uhd::hw;

TEST(Netlist, BasicGateEvaluation) {
    netlist n;
    const net_id a = n.add_input("a");
    const net_id b = n.add_input("b");
    const net_id and_out = n.add_gate(cell_kind::and2, {a, b});
    const net_id xor_out = n.add_gate(cell_kind::xor2, {a, b});
    const net_id inv_out = n.add_gate(cell_kind::inv, {and_out});
    n.evaluate({true, false});
    EXPECT_FALSE(n.value(and_out));
    EXPECT_TRUE(n.value(xor_out));
    EXPECT_TRUE(n.value(inv_out));
    n.evaluate({true, true});
    EXPECT_TRUE(n.value(and_out));
    EXPECT_FALSE(n.value(xor_out));
    EXPECT_FALSE(n.value(inv_out));
}

TEST(Netlist, ToggleCountingSkipsReferenceEvaluation) {
    netlist n;
    const net_id a = n.add_input("a");
    const net_id out = n.add_gate(cell_kind::inv, {a});
    (void)out;
    n.evaluate({false}); // reference
    EXPECT_EQ(n.toggle_count(), 0u);
    n.evaluate({true}); // inv output flips
    EXPECT_EQ(n.toggle_count(), 1u);
    n.evaluate({true}); // no change
    EXPECT_EQ(n.toggle_count(), 1u);
    EXPECT_GT(n.measured_activity(), 0.0);
    EXPECT_GT(n.measured_energy_per_op_fj(cell_library::generic_45nm()), 0.0);
    n.reset_stats();
    EXPECT_EQ(n.toggle_count(), 0u);
}

TEST(Netlist, Validation) {
    netlist n;
    const net_id a = n.add_input("a");
    EXPECT_THROW((void)n.add_gate(cell_kind::and2, {a}), uhd::error);   // fan-in
    EXPECT_THROW((void)n.add_gate(cell_kind::inv, {99}), uhd::error);   // unknown net
    EXPECT_THROW((void)n.add_gate(cell_kind::dff, {a, a}), uhd::error); // sequential
    EXPECT_THROW(n.evaluate({true, false}), uhd::error);                // arity
    (void)n.add_gate(cell_kind::inv, {a});
    EXPECT_THROW((void)n.add_input("late"), uhd::error); // inputs after gates
}

TEST(Netlist, MuxSemantics) {
    netlist n;
    const net_id d0 = n.add_input("d0");
    const net_id d1 = n.add_input("d1");
    const net_id sel = n.add_input("sel");
    const net_id out = n.add_gate(cell_kind::mux2, {d0, d1, sel});
    n.evaluate({true, false, false});
    EXPECT_TRUE(n.value(out)); // sel=0 -> d0
    n.evaluate({true, false, true});
    EXPECT_FALSE(n.value(out)); // sel=1 -> d1
}

TEST(UnaryComparatorNetlist, ExhaustiveEquivalenceWithBehavioralModel) {
    for (const std::size_t n_bits : {4u, 7u, 16u}) {
        unary_comparator_netlist cmp(n_bits);
        for (std::size_t a = 0; a <= n_bits; ++a) {
            for (std::size_t b = 0; b <= n_bits; ++b) {
                EXPECT_EQ(cmp.compare(a, b), a >= b)
                    << "N=" << n_bits << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(UnaryComparatorNetlist, MatchesBitstreamComparator) {
    unary_comparator_netlist cmp(16);
    for (std::size_t a = 0; a <= 16; ++a) {
        for (std::size_t b = 0; b <= 16; ++b) {
            const auto sa = uhd::bs::unary_encode(a, 16);
            const auto sb = uhd::bs::unary_encode(b, 16);
            EXPECT_EQ(cmp.compare(a, b), uhd::bs::unary_compare_geq(sa, sb));
        }
    }
}

TEST(UnaryComparatorNetlist, GateCountMatchesInventoryModel) {
    // netlist: N AND + N INV + N OR + (N-1) AND-tree == the hw_module counts.
    const unary_comparator_netlist cmp(16);
    EXPECT_EQ(cmp.circuit.gate_count(), 16u + 16u + 16u + 15u);
}

TEST(BinaryComparatorNetlist, ExhaustiveEquivalence) {
    for (const unsigned bits : {1u, 3u, 5u}) {
        binary_comparator_netlist cmp(bits);
        const std::uint64_t top = std::uint64_t{1} << bits;
        for (std::uint64_t a = 0; a < top; ++a) {
            for (std::uint64_t b = 0; b < top; ++b) {
                EXPECT_EQ(cmp.compare(a, b), a >= b)
                    << "bits=" << bits << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(ComparatorNetlists, MeasuredActivityUnaryBelowBinary) {
    // The physical basis of checkpoint 2: on identical random operand
    // sequences, the thermometer comparator toggles fewer gate outputs than
    // the binary ripple comparator.
    unary_comparator_netlist unary(16);
    binary_comparator_netlist binary(10);
    uhd::xoshiro256ss rng(5);
    for (int i = 0; i < 2000; ++i) {
        const auto value_a = static_cast<std::size_t>(rng.next_below(17));
        const auto value_b = static_cast<std::size_t>(rng.next_below(17));
        (void)unary.compare(value_a, value_b);
        (void)binary.compare(rng.next_below(1024), rng.next_below(1024));
    }
    const auto& lib = cell_library::generic_45nm();
    EXPECT_LT(unary.circuit.measured_energy_per_op_fj(lib),
              binary.circuit.measured_energy_per_op_fj(lib));
    EXPECT_GT(unary.circuit.measured_activity(), 0.0);
    EXPECT_LT(unary.circuit.measured_activity(), 1.0);
}

} // namespace
