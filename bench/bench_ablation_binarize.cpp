// Ablation: binarization and inference-mode matrix.
//
// Sweeps the three design axes this reproduction exposes:
//   * TOB policy — paper-literal H/2 vs intensity-centered threshold
//     (see core::binarize_policy for why H/2 collapses dark images),
//   * accumulation — binarized image HVs (Fig. 5 hardware) vs raw sums
//     (the paper's non-binary Sigma L_i formulation),
//   * query — binarized cosine vs integer cosine.
// This table documents which combination reproduces the paper's accuracy.
#include <cstdio>

#include "bench_common.hpp"
#include "uhd/common/table.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/hdc/classifier.hpp"

int main() {
    using namespace uhd;
    const auto w = bench::load_workload(1000, 300, 1);
    const auto [train, test] = bench::mnist_pair(w.train_n, w.test_n);
    const auto dim = static_cast<std::size_t>(env_int("UHD_DIM", 1024));

    std::printf("== ablation: TOB policy x accumulation x query mode (D=%zu) ==\n\n", dim);
    text_table table;
    table.set_header({"TOB policy", "accumulation", "query", "accuracy (%)"});

    for (const auto policy :
         {core::binarize_policy::mean_intensity, core::binarize_policy::half_inputs}) {
        core::uhd_config cfg;
        cfg.dim = dim;
        cfg.policy = policy;
        const core::uhd_encoder enc(cfg, train.shape());
        for (const auto tm : {hdc::train_mode::binarized_images, hdc::train_mode::raw_sums}) {
            for (const auto qm : {hdc::query_mode::binarized, hdc::query_mode::integer}) {
                hdc::hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(), tm, qm);
                clf.fit(train);
                table.add_row(
                    {policy == core::binarize_policy::mean_intensity ? "mean-intensity"
                                                                     : "H/2 (literal)",
                     tm == hdc::train_mode::raw_sums ? "raw sums" : "binarized images",
                     qm == hdc::query_mode::integer ? "integer" : "binarized",
                     format_fixed(100.0 * clf.evaluate(test), 2)});
            }
        }
        table.add_rule();
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("expected shape: mean-intensity TOB dominates the literal H/2 rows on\n");
    std::printf("dark (MNIST-like) data; raw-sums + integer query is the configuration\n");
    std::printf("that matches the paper's reported accuracy band.\n");
    return 0;
}
