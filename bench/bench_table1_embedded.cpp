// Table I reproduction: per-image encoding runtime, dynamic memory, and the
// derived speed-up/memory factors for the baseline HDC vs uHD at D = 1K and
// D = 8K.
//
// Substitution notes (DESIGN.md §4.4): the paper measures an ARM1176JZF-S;
// we measure the build host, so the reproduced quantities are the *ratios*.
// Dynamic memory is reported two ways:
//   measured  — this library's packed working set (bit-packed item
//               memories, byte-packed Sobol bank; the extra "uHD remat"
//               row swaps the stored bank for O(1) per-pixel generator
//               state, bit-identical outputs),
//   paper-conv— the paper's C-implementation convention (one int64 per
//               hypervector element for the baseline, one byte per
//               quantized Sobol scalar for uHD), which is what Table I's
//               8,496 KB / 816 KB figures correspond to.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "uhd/common/alloc_ledger.hpp"
#include "uhd/common/stopwatch.hpp"
#include "uhd/common/table.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/hdc/baseline_encoder.hpp"

namespace {

using namespace uhd;

struct row {
    double baseline_ms = 0.0;
    double uhd_ms = 0.0;
    double uhd_remat_ms = 0.0;
    std::size_t baseline_measured_kib = 0;
    std::size_t uhd_measured_kib = 0;
    std::size_t uhd_remat_measured_kib = 0;
    std::size_t baseline_paper_kib = 0;
    std::size_t uhd_paper_kib = 0;
};

row measure(std::size_t dim, const data::dataset& images, std::size_t repeats) {
    row r;
    const std::size_t pixels = images.shape().pixels();

    // --- baseline: regenerate-and-encode, the paper's dynamic training loop.
    hdc::baseline_config bcfg;
    bcfg.dim = dim;
    hdc::baseline_encoder baseline(bcfg, images.shape());
    std::vector<std::int32_t> acc(dim);
    stopwatch watch;
    for (std::size_t i = 0; i < repeats; ++i) {
        baseline.encode(images.image(i % images.size()), acc);
    }
    r.baseline_ms = watch.milliseconds() / static_cast<double>(repeats);

    alloc_ledger baseline_ledger;
    baseline_ledger.add("position+level item memories", baseline.memory_bytes());
    baseline_ledger.add("accumulator", acc.capacity() * sizeof(std::int32_t));
    r.baseline_measured_kib = baseline_ledger.total_kib();
    // Paper convention: (H + levels) hypervectors x D elements x 8 bytes.
    r.baseline_paper_kib = (pixels + bcfg.levels) * dim * 8 / 1024;

    // --- uHD: deterministic quantized-Sobol encode.
    core::uhd_config ucfg;
    ucfg.dim = dim;
    core::uhd_encoder uhd(ucfg, images.shape());
    watch.reset();
    for (std::size_t i = 0; i < repeats; ++i) {
        uhd.encode(images.image(i % images.size()), acc);
    }
    r.uhd_ms = watch.milliseconds() / static_cast<double>(repeats);

    alloc_ledger uhd_ledger;
    uhd_ledger.add("quantized Sobol bank + UST + directions", uhd.memory_bytes());
    uhd_ledger.add("accumulator", acc.capacity() * sizeof(std::int32_t));
    r.uhd_measured_kib = uhd_ledger.total_kib();
    // Paper convention: H x D quantized scalars, one byte each.
    r.uhd_paper_kib = pixels * dim / 1024;

    // --- uHD, rematerializing: the stored bank replaced by O(1) per-pixel
    // generator state, bit-identical outputs.
    core::uhd_config rcfg = ucfg;
    rcfg.bank = bank_mode::rematerialize;
    core::uhd_encoder remat(rcfg, images.shape());
    watch.reset();
    for (std::size_t i = 0; i < repeats; ++i) {
        remat.encode(images.image(i % images.size()), acc);
    }
    r.uhd_remat_ms = watch.milliseconds() / static_cast<double>(repeats);

    alloc_ledger remat_ledger;
    remat_ledger.add("remat directions + shifts + bounds", remat.memory_bytes());
    remat_ledger.add("accumulator", acc.capacity() * sizeof(std::int32_t));
    r.uhd_remat_measured_kib = remat_ledger.total_kib();
    return r;
}

} // namespace

int main() {
    const auto repeats = static_cast<std::size_t>(uhd::env_int("UHD_REPEATS", 30));
    const auto images = uhd::data::make_synthetic_digits(32, 7);

    std::printf("== Table I: runtime and dynamic memory per image (28x28) ==\n");
    std::printf("# host measurement; paper values from ARM1176JZF-S shown for shape\n\n");

    uhd::text_table table;
    table.set_header({"D", "design", "runtime/img", "speed-up", "dyn.mem (measured)",
                      "dyn.mem (paper-conv)", "mem factor"});
    for (const std::size_t dim : {std::size_t{1024}, std::size_t{8192}}) {
        const row r = measure(dim, images, repeats);
        const double speedup = r.baseline_ms / r.uhd_ms;
        const double mem_factor = static_cast<double>(r.baseline_paper_kib) /
                                  static_cast<double>(r.uhd_paper_kib);
        table.add_row({dim == 1024 ? "1K" : "8K", "Baseline HDC",
                       uhd::format_fixed(r.baseline_ms, 3) + " ms", "",
                       std::to_string(r.baseline_measured_kib) + " KiB",
                       std::to_string(r.baseline_paper_kib) + " KB", ""});
        table.add_row({"", "uHD (ours)", uhd::format_fixed(r.uhd_ms, 3) + " ms",
                       uhd::format_ratio(speedup), std::to_string(r.uhd_measured_kib) + " KiB",
                       std::to_string(r.uhd_paper_kib) + " KB",
                       uhd::format_ratio(mem_factor)});
        const double remat_speedup = r.baseline_ms / r.uhd_remat_ms;
        table.add_row({"", "uHD remat", uhd::format_fixed(r.uhd_remat_ms, 3) + " ms",
                       uhd::format_ratio(remat_speedup),
                       std::to_string(r.uhd_remat_measured_kib) + " KiB", "", ""});
        table.add_rule();
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("paper (ARM): 1K baseline 0.701 s vs uHD 0.016 s (43.8x), 8,496 KB vs 816 KB (10.4x)\n");
    std::printf("             8K baseline 5.938 s vs uHD 0.058 s (102.3x), 52,401 KB vs 2,220 KB (23.6x)\n");
    std::printf("code size: the paper reports 13.2 KB (baseline) vs 8.2 KB (uHD) deployed\n");
    std::printf("binaries; see EXPERIMENTS.md for this library's object-size equivalent.\n");
    return 0;
}
