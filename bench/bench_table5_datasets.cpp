// Table V reproduction: accuracy of uHD vs the baseline HDC on CIFAR-10,
// BloodMNIST, BreastMNIST, FashionMNIST and SVHN (synthetic analogues,
// DESIGN.md §4.2) for D in {1K, 2K, 8K}.
//
//   UHD_TRAIN_N=4000 UHD_TEST_N=1000 ./bench_table5_datasets
#include <cstdio>

#include "bench_common.hpp"
#include "uhd/common/stopwatch.hpp"
#include "uhd/common/table.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/classifier.hpp"

int main() {
    using namespace uhd;
    const auto w = bench::load_workload(800, 250, 1);

    std::printf("== Table V: accuracy (%%) on the extended datasets ==\n");
    std::printf("# synthetic analogues, %zu train / %zu test per dataset\n\n", w.train_n,
                w.test_n);

    text_table table;
    table.set_header({"dataset", "D=1K ours", "D=1K base", "D=2K ours", "D=2K base",
                      "D=8K ours", "D=8K base"});

    const std::vector<data::dataset_kind> kinds = {
        data::dataset_kind::cifar10, data::dataset_kind::blood_mnist,
        data::dataset_kind::breast_mnist, data::dataset_kind::fashion_mnist,
        data::dataset_kind::svhn};

    stopwatch total;
    for (const auto kind : kinds) {
        const auto info = data::info_for(kind);
        const auto train = data::make_synthetic(kind, w.train_n, 42).to_grayscale();
        const auto test = data::make_synthetic(kind, w.test_n, 4242).to_grayscale();
        std::vector<std::string> cells = {info.name};
        for (const std::size_t dim : {1024u, 2048u, 8192u}) {
            core::uhd_config ucfg;
            ucfg.dim = dim;
            const core::uhd_encoder uenc(ucfg, train.shape());
            hdc::hd_classifier<core::uhd_encoder> ours(
                uenc, info.classes, hdc::train_mode::raw_sums, hdc::query_mode::integer);
            ours.fit(train);
            cells.push_back(format_fixed(100.0 * ours.evaluate(test), 2));

            hdc::baseline_config bcfg;
            bcfg.dim = dim;
            const hdc::baseline_encoder benc(bcfg, train.shape());
            hdc::hd_classifier<hdc::baseline_encoder> base(benc, info.classes);
            base.fit(train);
            cells.push_back(format_fixed(100.0 * base.evaluate(test), 2));
        }
        // Reorder: we filled ours/base per dim already in the right order.
        table.add_row(std::move(cells));
        std::printf("# %s done (%.1fs elapsed)\n", info.name.c_str(), total.seconds());
    }
    std::printf("\n%s\n", table.to_string().c_str());
    std::printf("paper (real datasets): uHD >= baseline at every point, e.g. D=1K\n");
    std::printf("CIFAR-10 39.29 vs 38.21, FashionMNIST 68.60 vs 54.19. The reproduced\n");
    std::printf("claim is the ordering and its growth with D, not absolute accuracy\n");
    std::printf("(the analogues are easier than the real datasets).\n");
    return 0;
}
