// Ablation: scalar quantization depth xi. The paper claims xi = 16 (M = 4
// bits, N = 16-bit unary streams) "does not affect the accuracy of the
// system"; this sweep quantifies that claim, with the unquantized
// double-precision encoder as the reference row.
#include <cstdio>

#include "bench_common.hpp"
#include "uhd/common/table.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/hdc/classifier.hpp"

namespace {

// Adapter exposing the unquantized reference path through the classifier.
struct exact_encoder {
    const uhd::core::uhd_encoder* inner;
    [[nodiscard]] std::size_t dim() const { return inner->dim(); }
    void encode(std::span<const std::uint8_t> image, std::span<std::int32_t> out) const {
        inner->encode_exact(image, out);
    }
};

} // namespace

int main() {
    using namespace uhd;
    const auto w = bench::load_workload(1000, 300, 1);
    const auto [train, test] = bench::mnist_pair(w.train_n, w.test_n);
    const auto dim = static_cast<std::size_t>(env_int("UHD_DIM", 1024));

    std::printf("== ablation: quantization levels xi (D=%zu) ==\n\n", dim);
    text_table table;
    table.set_header({"xi", "M bits", "N stream bits", "accuracy (%)"});

    for (const unsigned xi : {4u, 8u, 16u, 32u, 64u}) {
        core::uhd_config cfg;
        cfg.dim = dim;
        cfg.quant_levels = xi;
        const core::uhd_encoder enc(cfg, train.shape());
        hdc::hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(),
                                                  hdc::train_mode::raw_sums,
                                                  hdc::query_mode::integer);
        clf.fit(train);
        table.add_row({std::to_string(xi), std::to_string(cfg.scalar_bits()),
                       std::to_string(cfg.stream_length()),
                       format_fixed(100.0 * clf.evaluate(test), 2)});
    }

    // Unquantized reference (no UST, double compares — software only).
    core::uhd_config cfg;
    cfg.dim = dim;
    const core::uhd_encoder enc(cfg, train.shape());
    const exact_encoder exact{&enc};
    hdc::hd_classifier<exact_encoder> reference(exact, train.num_classes(),
                                                hdc::train_mode::raw_sums,
                                                hdc::query_mode::integer);
    reference.fit(train);
    table.add_rule();
    table.add_row({"exact", "64 (double)", "-",
                   format_fixed(100.0 * reference.evaluate(test), 2)});

    std::printf("%s\n", table.to_string().c_str());
    std::printf("expected shape: accuracy saturates by xi = 16 — quantization to\n");
    std::printf("4-bit scalars / 16-bit unary streams is accuracy-free (paper Sec. III).\n");
    return 0;
}
