// Fig. 6 reproduction:
//  (a) baseline accuracy fluctuation across random-generation iterations,
//  (b) prior-art MNIST accuracy markers (literature constants for context),
//  (c) uHD single-pass accuracy over D in {1K, 2K, 8K, 10K}.
//
//   UHD_ITERS=100 UHD_TRAIN_N=60000 UHD_TEST_N=10000 ./bench_fig6_accuracy
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "uhd/common/table.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/classifier.hpp"

int main() {
    using namespace uhd;
    const auto w = bench::load_workload(1000, 300, 10);
    const auto [train, test] = bench::mnist_pair(w.train_n, w.test_n);

    std::printf("== Fig. 6(a): baseline accuracy per iteration (D=1K) ==\n");
    hdc::baseline_config bcfg;
    bcfg.dim = 1024;
    hdc::baseline_encoder baseline(bcfg, train.shape());
    std::vector<double> series;
    for (std::size_t i = 1; i <= w.iters; ++i) {
        baseline.reseed(i);
        hdc::hd_classifier<hdc::baseline_encoder> clf(baseline, train.num_classes());
        clf.fit(train);
        series.push_back(clf.evaluate(test));
        std::printf("  i=%-3zu accuracy=%.2f%%\n", i, 100.0 * series.back());
    }
    const auto [lo, hi] = std::minmax_element(series.begin(), series.end());
    std::printf("  fluctuation band: %.2f%% .. %.2f%% (spread %.2f points)\n",
                100.0 * *lo, 100.0 * *hi, 100.0 * (*hi - *lo));

    std::printf("\n== Fig. 6(b): prior-art MNIST markers (reported constants) ==\n");
    std::printf("  [4]  programmable HD processor  75.40%% @ 2K,  w/o retrain\n");
    std::printf("  [19] survey-reported HDC        86.00%% @ 10K, w/o retrain\n");
    std::printf("  [28] FL-HDC                     88.00%% @ 10K, w/  retrain\n");
    std::printf("  [9]  QuantHD / LDC [29]         87.38%% @ 10K, w/  retrain\n");

    std::printf("\n== Fig. 6(c): uHD single-pass accuracy over D ==\n");
    text_table table;
    table.set_header({"D", "uHD accuracy (%)", "paper (%)"});
    const std::vector<std::pair<std::size_t, const char*>> points = {
        {1024, "84.44"}, {2048, "87.04"}, {8192, "88.41"}, {10240, "88.50"}};
    for (const auto& [dim, paper] : points) {
        core::uhd_config cfg;
        cfg.dim = dim;
        const core::uhd_encoder enc(cfg, train.shape());
        hdc::hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(),
                                                  hdc::train_mode::raw_sums,
                                                  hdc::query_mode::integer);
        clf.fit(train);
        table.add_row({std::to_string(dim), format_fixed(100.0 * clf.evaluate(test), 2),
                       paper});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("reproduced claims: (a) the baseline needs iteration because accuracy\n");
    std::printf("fluctuates with the random draw; (c) uHD is deterministic (no band),\n");
    std::printf("single-pass, w/o retraining, and competitive at every D.\n");
    return 0;
}
