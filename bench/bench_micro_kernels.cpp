// Kernel micro-benchmarks (google-benchmark): the per-operation costs
// behind Table I's runtime rows — comparator styles, encode kernels,
// sequence generation, and similarity search.
#include <benchmark/benchmark.h>

#include "uhd/bitstream/unary.hpp"
#include "uhd/core/binarizer.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/similarity.hpp"
#include "uhd/lowdisc/lfsr.hpp"
#include "uhd/lowdisc/sobol.hpp"

namespace {

using namespace uhd;

const data::dataset& digits() {
    static const data::dataset ds = data::make_synthetic_digits(16, 5);
    return ds;
}

void BM_UnaryComparatorGateLevel(benchmark::State& state) {
    const auto a = bs::unary_encode(7, 16);
    const auto b = bs::unary_encode(11, 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(bs::unary_compare_geq(a, b));
    }
}
BENCHMARK(BM_UnaryComparatorGateLevel);

void BM_QuantizedIntegerCompare(benchmark::State& state) {
    // The fast-path equivalent of the unary comparator (one byte compare).
    volatile std::uint8_t a = 7;
    volatile std::uint8_t b = 11;
    for (auto _ : state) {
        benchmark::DoNotOptimize(a >= b);
    }
}
BENCHMARK(BM_QuantizedIntegerCompare);

void BM_UhdEncode(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    core::uhd_config cfg;
    cfg.dim = dim;
    const core::uhd_encoder enc(cfg, digits().shape());
    std::vector<std::int32_t> acc(dim);
    std::size_t i = 0;
    for (auto _ : state) {
        enc.encode(digits().image(i++ % digits().size()), acc);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim * digits().shape().pixels()));
}
BENCHMARK(BM_UhdEncode)->Arg(1024)->Arg(8192);

void BM_BaselineEncode(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    hdc::baseline_config cfg;
    cfg.dim = dim;
    const hdc::baseline_encoder enc(cfg, digits().shape());
    std::vector<std::int32_t> acc(dim);
    std::size_t i = 0;
    for (auto _ : state) {
        enc.encode(digits().image(i++ % digits().size()), acc);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim * digits().shape().pixels()));
}
BENCHMARK(BM_BaselineEncode)->Arg(1024)->Arg(8192);

void BM_SobolSequenceNext(benchmark::State& state) {
    const auto table = ld::sobol_directions::standard(4);
    ld::sobol_sequence seq(table.direction_numbers(3));
    for (auto _ : state) {
        benchmark::DoNotOptimize(seq.next_fraction());
    }
}
BENCHMARK(BM_SobolSequenceNext);

void BM_LfsrStep(benchmark::State& state) {
    ld::lfsr reg(32, 0xACE1, ld::lfsr_kind::fibonacci);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.step());
    }
}
BENCHMARK(BM_LfsrStep);

void BM_QuantizedBankBuild(benchmark::State& state) {
    const auto table = ld::sobol_directions::standard(64);
    for (auto _ : state) {
        ld::quantized_sobol_bank bank(table, 64, 1024, 16);
        benchmark::DoNotOptimize(bank.row(0).data());
    }
}
BENCHMARK(BM_QuantizedBankBuild);

void BM_HypervectorCosine(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    xoshiro256ss rng(3);
    const hdc::hypervector a = hdc::hypervector::random(dim, rng);
    const hdc::hypervector b = hdc::hypervector::random(dim, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hdc::cosine(a, b));
    }
}
BENCHMARK(BM_HypervectorCosine)->Arg(1024)->Arg(8192);

void BM_PopcountBinarizerFeed(benchmark::State& state) {
    for (auto _ : state) {
        core::popcount_binarizer bin(784);
        for (std::size_t i = 0; i < 784; ++i) bin.feed((i & 3) == 0);
        benchmark::DoNotOptimize(bin.sign_bit());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 784);
}
BENCHMARK(BM_PopcountBinarizerFeed);

void BM_UstFetch(benchmark::State& state) {
    const bs::unary_stream_table ust(16, 16);
    std::size_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ust.fetch(q++ % 16));
    }
}
BENCHMARK(BM_UstFetch);

} // namespace
