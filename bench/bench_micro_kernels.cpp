// Kernel micro-benchmarks (google-benchmark): the per-operation costs
// behind Table I's runtime rows — comparator styles, encode kernels
// (scalar oracle vs word-parallel), sequence generation, and similarity
// search.
//
// The custom main() additionally runs three direct throughput measurements
// and writes machine-readable results (schemas in bench/README.md):
//  * encode on 28x28 synthetic MNIST-shaped images at D=1024 (scalar vs
//    word-parallel vs batched vs pool-parallel vs rematerializing), plus a
//    stored-vs-rematerialize footprint + throughput D-sweep past LLC with
//    bit-identity and >= 100x threshold-state reduction as hard gates
//    -> BENCH_encode.json (override the path with UHD_BENCH_JSON, workload
//    with UHD_BENCH_IMAGES);
//  * training on the same MNIST-shaped workload (seed sequential loop vs
//    the current sequential fit vs the mini-batch parallel engine at
//    several pool sizes, determinism-gated) -> BENCH_train.json (override
//    with UHD_BENCH_TRAIN_JSON, workload with UHD_BENCH_TRAIN_IMAGES);
//  * inference over pre-encoded queries at D=8192 / 10 classes (seed
//    per-class-cosine path vs the packed associative-memory engine, both
//    query modes, plus the calibrated dynamic-dimension cascade with its
//    agreement/scan gates, plus the multi-query blocked path over a
//    many-class memory at block sizes 1/4/8/16/32, identity-checked and
//    speedup-gated) -> BENCH_inference.json (override with
//    UHD_BENCH_INFER_JSON, workload with UHD_BENCH_QUERIES /
//    UHD_BENCH_BLOCK_CLASSES / UHD_BENCH_BLOCK_QUERIES).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "uhd/bitstream/unary.hpp"
#include "uhd/common/config.hpp"
#include "uhd/common/cpu_features.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/common/simd.hpp"
#include "uhd/common/stopwatch.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/core/binarizer.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/class_memory.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/hdc/hypervector.hpp"
#include "uhd/hdc/similarity.hpp"
#include "uhd/lowdisc/lfsr.hpp"
#include "uhd/lowdisc/sobol.hpp"

namespace {

using namespace uhd;

const data::dataset& digits() {
    static const data::dataset ds = data::make_synthetic_digits(16, 5);
    return ds;
}

void BM_UnaryComparatorGateLevel(benchmark::State& state) {
    const auto a = bs::unary_encode(7, 16);
    const auto b = bs::unary_encode(11, 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(bs::unary_compare_geq(a, b));
    }
}
BENCHMARK(BM_UnaryComparatorGateLevel);

void BM_QuantizedIntegerCompare(benchmark::State& state) {
    // The fast-path equivalent of the unary comparator (one byte compare).
    volatile std::uint8_t a = 7;
    volatile std::uint8_t b = 11;
    for (auto _ : state) {
        benchmark::DoNotOptimize(a >= b);
    }
}
BENCHMARK(BM_QuantizedIntegerCompare);

void BM_GeqKernelReference(benchmark::State& state) {
    // The pinned byte-at-a-time oracle: the baseline every speedup claim
    // is measured against.
    const auto dim = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> thresholds(dim);
    for (std::size_t d = 0; d < dim; ++d) thresholds[d] = d % 16;
    std::vector<std::uint16_t> tile(dim, 0);
    for (auto _ : state) {
        simd::geq_accumulate_reference(7, thresholds.data(), dim, tile.data());
        benchmark::DoNotOptimize(tile.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_GeqKernelReference)->Arg(1024)->Arg(8192);

void BM_GeqKernelScalar(benchmark::State& state) {
    // The portable fallback (compiler may auto-vectorize this one).
    const auto dim = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> thresholds(dim);
    for (std::size_t d = 0; d < dim; ++d) thresholds[d] = d % 16;
    std::vector<std::uint16_t> tile(dim, 0);
    for (auto _ : state) {
        simd::geq_accumulate_scalar(7, thresholds.data(), dim, tile.data());
        benchmark::DoNotOptimize(tile.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_GeqKernelScalar)->Arg(1024)->Arg(8192);

void BM_GeqBlockKernel(benchmark::State& state) {
    // The production whole-image kernel: 784 pixels x dim thresholds with
    // register-tiled u8 counters.
    const auto dim = static_cast<std::size_t>(state.range(0));
    const std::size_t pixels = 784;
    std::vector<std::uint8_t> bank(pixels * dim);
    for (std::size_t i = 0; i < bank.size(); ++i) {
        bank[i] = static_cast<std::uint8_t>((i * 2654435761u) % 16);
    }
    std::vector<std::uint8_t> q(pixels);
    for (std::size_t p = 0; p < pixels; ++p) q[p] = p % 16;
    std::vector<std::int32_t> out(dim, 0);
    for (auto _ : state) {
        kernels::geq_block_accumulate(q.data(), pixels, bank.data(), dim, dim,
                                      out.data(), 15);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(pixels * dim));
}
BENCHMARK(BM_GeqBlockKernel)->Arg(1024)->Arg(8192);

void BM_GeqKernelSwar(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> thresholds(dim);
    for (std::size_t d = 0; d < dim; ++d) thresholds[d] = d % 16;
    std::vector<std::uint16_t> tile(dim, 0);
    for (auto _ : state) {
        simd::geq_accumulate_swar(7, thresholds.data(), dim, tile.data());
        benchmark::DoNotOptimize(tile.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_GeqKernelSwar)->Arg(1024)->Arg(8192);

/// Per-backend benchmarks of the registry tables themselves (one set per
/// admissible backend, registered dynamically in main — see
/// register_backend_benchmarks). `table` is the backend under test.
void BM_BackendGeqKernel(benchmark::State& state,
                         const kernels::kernel_table* table) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> thresholds(dim);
    for (std::size_t d = 0; d < dim; ++d) thresholds[d] = d % 16;
    std::vector<std::uint16_t> tile(dim, 0);
    for (auto _ : state) {
        table->geq_accumulate(7, thresholds.data(), dim, tile.data(), 15);
        benchmark::DoNotOptimize(tile.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}

void BM_BackendHammingArgmin(benchmark::State& state,
                             const kernels::kernel_table* table) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    const std::size_t classes = 10;
    xoshiro256ss rng(5);
    const std::size_t words = kernels::sign_words(dim);
    std::vector<std::uint64_t> memory(classes * words);
    std::vector<std::uint64_t> query(words);
    for (auto& w : memory) w = rng.next();
    for (auto& w : query) w = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table->hamming_argmin(query.data(), memory.data(), words, classes,
                                  nullptr));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(classes * dim));
}

/// One BM_BackendGeqKernel / BM_BackendHammingArgmin pair per backend the
/// probe admits on this machine, so the per-ISA cost is visible in one run.
void register_backend_benchmarks() {
    for (const kernels::kernel_table* table : kernels::admissible_backends()) {
        const std::string suffix = std::string("_") + table->name;
        benchmark::RegisterBenchmark(("BM_BackendGeqKernel" + suffix).c_str(),
                                     BM_BackendGeqKernel, table)
            ->Arg(1024)
            ->Arg(8192);
        benchmark::RegisterBenchmark(("BM_BackendHammingArgmin" + suffix).c_str(),
                                     BM_BackendHammingArgmin, table)
            ->Arg(1024)
            ->Arg(8192);
    }
}

void BM_UhdEncodeScalar(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    core::uhd_config cfg;
    cfg.dim = dim;
    const core::uhd_encoder enc(cfg, digits().shape());
    std::vector<std::int32_t> acc(dim);
    std::size_t i = 0;
    for (auto _ : state) {
        enc.encode_scalar(digits().image(i++ % digits().size()), acc);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim * digits().shape().pixels()));
}
BENCHMARK(BM_UhdEncodeScalar)->Arg(1024)->Arg(8192);

void BM_UhdEncode(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    core::uhd_config cfg;
    cfg.dim = dim;
    const core::uhd_encoder enc(cfg, digits().shape());
    std::vector<std::int32_t> acc(dim);
    std::size_t i = 0;
    for (auto _ : state) {
        enc.encode(digits().image(i++ % digits().size()), acc);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim * digits().shape().pixels()));
}
BENCHMARK(BM_UhdEncode)->Arg(1024)->Arg(8192);

void BM_UhdRematEncode(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    core::uhd_config cfg;
    cfg.dim = dim;
    cfg.bank = bank_mode::rematerialize;
    const core::uhd_encoder enc(cfg, digits().shape());
    std::vector<std::int32_t> acc(dim);
    std::size_t i = 0;
    for (auto _ : state) {
        enc.encode(digits().image(i++ % digits().size()), acc);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim * digits().shape().pixels()));
}
BENCHMARK(BM_UhdRematEncode)->Arg(1024)->Arg(8192);

void BM_UhdEncodeBatch(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    core::uhd_config cfg;
    cfg.dim = dim;
    const core::uhd_encoder enc(cfg, digits().shape());
    std::vector<std::int32_t> out(digits().size() * dim);
    for (auto _ : state) {
        enc.encode_batch(digits(), out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(digits().size() * dim *
                                                      digits().shape().pixels()));
}
BENCHMARK(BM_UhdEncodeBatch)->Arg(1024);

void BM_BaselineEncode(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    hdc::baseline_config cfg;
    cfg.dim = dim;
    const hdc::baseline_encoder enc(cfg, digits().shape());
    std::vector<std::int32_t> acc(dim);
    std::size_t i = 0;
    for (auto _ : state) {
        enc.encode(digits().image(i++ % digits().size()), acc);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim * digits().shape().pixels()));
}
BENCHMARK(BM_BaselineEncode)->Arg(1024)->Arg(8192);

void BM_SobolSequenceNext(benchmark::State& state) {
    const auto table = ld::sobol_directions::standard(4);
    ld::sobol_sequence seq(table.direction_numbers(3));
    for (auto _ : state) {
        benchmark::DoNotOptimize(seq.next_fraction());
    }
}
BENCHMARK(BM_SobolSequenceNext);

void BM_LfsrStep(benchmark::State& state) {
    ld::lfsr reg(32, 0xACE1, ld::lfsr_kind::fibonacci);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.step());
    }
}
BENCHMARK(BM_LfsrStep);

void BM_QuantizedBankBuild(benchmark::State& state) {
    const auto table = ld::sobol_directions::standard(64);
    for (auto _ : state) {
        ld::quantized_sobol_bank bank(table, 64, 1024, 16);
        benchmark::DoNotOptimize(bank.row(0).data());
    }
}
BENCHMARK(BM_QuantizedBankBuild);

void BM_HypervectorCosine(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    xoshiro256ss rng(3);
    const hdc::hypervector a = hdc::hypervector::random(dim, rng);
    const hdc::hypervector b = hdc::hypervector::random(dim, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hdc::cosine(a, b));
    }
}
BENCHMARK(BM_HypervectorCosine)->Arg(1024)->Arg(8192);

void BM_PackedQueryCosine(benchmark::State& state) {
    // The fixed inner loop of integer-mode inference: packed query against
    // an int32 class accumulator (word-level sign masks).
    const auto dim = static_cast<std::size_t>(state.range(0));
    xoshiro256ss rng(3);
    const hdc::hypervector query = hdc::hypervector::random(dim, rng);
    std::vector<std::int32_t> cls(dim);
    for (auto& v : cls) v = static_cast<std::int32_t>(rng.next() % 2001) - 1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hdc::cosine(query, std::span<const std::int32_t>(cls)));
    }
}
BENCHMARK(BM_PackedQueryCosine)->Arg(1024)->Arg(8192);

void BM_SignBinarizeReference(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    xoshiro256ss rng(4);
    std::vector<std::int32_t> values(dim);
    for (auto& v : values) v = static_cast<std::int32_t>(rng.next() % 2001) - 1000;
    std::vector<std::uint64_t> words(kernels::sign_words(dim));
    for (auto _ : state) {
        simd::sign_binarize_reference(values.data(), dim, words.data());
        benchmark::DoNotOptimize(words.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_SignBinarizeReference)->Arg(1024)->Arg(8192);

void BM_SignBinarize(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    xoshiro256ss rng(4);
    std::vector<std::int32_t> values(dim);
    for (auto& v : values) v = static_cast<std::int32_t>(rng.next() % 2001) - 1000;
    std::vector<std::uint64_t> words(kernels::sign_words(dim));
    for (auto _ : state) {
        kernels::sign_binarize(values.data(), dim, words.data());
        benchmark::DoNotOptimize(words.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_SignBinarize)->Arg(1024)->Arg(8192);

void BM_HammingArgminReference(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    const std::size_t classes = 10;
    xoshiro256ss rng(5);
    const std::size_t words = kernels::sign_words(dim);
    std::vector<std::uint64_t> memory(classes * words);
    std::vector<std::uint64_t> query(words);
    for (auto& w : memory) w = rng.next();
    for (auto& w : query) w = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(simd::hamming_argmin_reference(
            query.data(), memory.data(), words, classes));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(classes * dim));
}
BENCHMARK(BM_HammingArgminReference)->Arg(1024)->Arg(8192);

void BM_HammingArgmin(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    const std::size_t classes = 10;
    xoshiro256ss rng(5);
    const std::size_t words = kernels::sign_words(dim);
    std::vector<std::uint64_t> memory(classes * words);
    std::vector<std::uint64_t> query(words);
    for (auto& w : memory) w = rng.next();
    for (auto& w : query) w = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::hamming_argmin(query.data(), memory.data(), words, classes));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(classes * dim));
}
BENCHMARK(BM_HammingArgmin)->Arg(1024)->Arg(8192);

void BM_HammingArgmin2Prefix(benchmark::State& state) {
    // The dynamic-dimension query kernel: argmin + runner-up margin over a
    // D/8 prefix window of each packed class row (state.range = full D).
    const auto dim = static_cast<std::size_t>(state.range(0));
    const std::size_t classes = 10;
    xoshiro256ss rng(5);
    const std::size_t words = kernels::sign_words(dim);
    const std::size_t window = std::max<std::size_t>(1, words / 8);
    std::vector<std::uint64_t> memory(classes * words);
    std::vector<std::uint64_t> query(words);
    for (auto& w : memory) w = rng.next();
    for (auto& w : query) w = rng.next();
    for (auto _ : state) {
        const auto r = kernels::hamming_argmin2_prefix(query.data(), memory.data(),
                                                    words, window, classes);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(classes * window * 64));
}
BENCHMARK(BM_HammingArgmin2Prefix)->Arg(1024)->Arg(8192);

void BM_BlockedDotI32(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    xoshiro256ss rng(6);
    std::vector<std::int32_t> a(dim);
    std::vector<std::int32_t> b(dim);
    for (auto& v : a) v = static_cast<std::int32_t>(rng.next() % 2001) - 1000;
    for (auto& v : b) v = static_cast<std::int32_t>(rng.next() % 2001) - 1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::dot_i32(a.data(), b.data(), dim));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_BlockedDotI32)->Arg(1024)->Arg(8192);

void BM_PopcountBinarizerFeed(benchmark::State& state) {
    for (auto _ : state) {
        core::popcount_binarizer bin(784);
        for (std::size_t i = 0; i < 784; ++i) bin.feed((i & 3) == 0);
        benchmark::DoNotOptimize(bin.sign_bit());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 784);
}
BENCHMARK(BM_PopcountBinarizerFeed);

void BM_UstFetch(benchmark::State& state) {
    const bs::unary_stream_table ust(16, 16);
    std::size_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ust.fetch(q++ % 16));
    }
}
BENCHMARK(BM_UstFetch);

// --- direct encode-throughput comparison + BENCH_encode.json --------------

/// Shared "backend" block of every BENCH_*.json: which kernel backend the
/// run selected, the UHD_BACKEND override in effect (null when unset), the
/// probed CPU feature set, and the backends compiled into the binary — so
/// the perf trajectory stays attributable across machines and overrides.
void write_backend_json(std::FILE* f) {
    std::fprintf(f, "  \"backend\": {\"selected\": \"%s\", \"override\": ",
                 kernels::active().name);
    const std::string_view override_value = kernels::backend_override();
    if (override_value.empty()) {
        std::fprintf(f, "null");
    } else {
        std::fprintf(f, "\"%.*s\"", static_cast<int>(override_value.size()),
                     override_value.data());
    }
    std::fprintf(f, ", \"cpu\": \"%s\", \"compiled\": [",
                 cpu().to_string().c_str());
    const auto compiled = kernels::compiled_backends();
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        std::fprintf(f, "\"%s\"%s", compiled[i]->name,
                     i + 1 < compiled.size() ? ", " : "");
    }
    std::fprintf(f, "]},\n");
}

struct throughput_entry {
    std::string name;
    std::size_t threads;
    double seconds;
    double images_per_s;
    double gb_per_s;
    double speedup_vs_scalar;
};

/// One D of the stored-vs-rematerialize sweep (784 pixels throughout):
/// exact threshold-state bytes of both modes and single-thread encode
/// rates. gcmp_per_s is the dimension-normalized rate (pixel x dim
/// compares per second) — the measure that exposes the stored bank falling
/// out of LLC while the rematerializing stream holds rate.
struct sweep_row {
    std::size_t dim;
    std::size_t stored_bytes;
    std::size_t remat_bytes;
    double reduction;
    double stored_img_per_s;
    double remat_img_per_s;
    double stored_gcmp_per_s;
    double remat_gcmp_per_s;
    bool identical;
};

/// Hard gates of the encode JSON (schema v3): remat output bit-identical
/// to stored at every swept D, and >= 100x threshold-state reduction at
/// the paper's 784 x 8192 point. throughput_hold is reported alongside:
/// remat compare-rate at the largest D (bank far past LLC) relative to the
/// smallest D.
struct encode_gates {
    bool bit_identity;
    bool footprint_100x;
    double throughput_hold;
};

void write_json(const std::string& path, const data::image_shape& shape,
                std::size_t dim, unsigned quant_levels, std::size_t images,
                const std::vector<throughput_entry>& entries,
                const std::vector<sweep_row>& sweep, const encode_gates& gates) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"encode\",\n");
    std::fprintf(f, "  \"schema_version\": 3,\n");
    std::fprintf(f,
                 "  \"workload\": {\"rows\": %zu, \"cols\": %zu, \"dim\": %zu, "
                 "\"quant_levels\": %u, \"images\": %zu},\n",
                 shape.rows, shape.cols, dim, quant_levels, images);
    write_backend_json(f);
    std::fprintf(f, "  \"entries\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"threads\": %zu, \"seconds\": %.6f, "
                     "\"images_per_s\": %.1f, \"gb_per_s\": %.3f, "
                     "\"speedup_vs_scalar\": %.2f}%s\n",
                     e.name.c_str(), e.threads, e.seconds, e.images_per_s, e.gb_per_s,
                     e.speedup_vs_scalar, i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"footprint\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto& r = sweep[i];
        std::fprintf(f,
                     "    {\"dim\": %zu, \"pixels\": %zu, \"stored_bytes\": %zu, "
                     "\"remat_bytes\": %zu, \"reduction\": %.1f}%s\n",
                     r.dim, shape.pixels(), r.stored_bytes, r.remat_bytes, r.reduction,
                     i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"dsweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto& r = sweep[i];
        std::fprintf(f,
                     "    {\"dim\": %zu, \"stored_img_per_s\": %.1f, "
                     "\"remat_img_per_s\": %.1f, \"stored_gcmp_per_s\": %.3f, "
                     "\"remat_gcmp_per_s\": %.3f, \"identical\": %s}%s\n",
                     r.dim, r.stored_img_per_s, r.remat_img_per_s,
                     r.stored_gcmp_per_s, r.remat_gcmp_per_s,
                     r.identical ? "true" : "false",
                     i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"gates\": {\"bit_identity\": %s, \"footprint_100x\": %s, "
                 "\"throughput_hold\": %.3f}\n",
                 gates.bit_identity ? "true" : "false",
                 gates.footprint_100x ? "true" : "false", gates.throughput_hold);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
}

int run_encode_throughput() {
    const std::size_t dim = 1024;
    const auto images_n = std::max<std::size_t>(
        1, static_cast<std::size_t>(env_int("UHD_BENCH_IMAGES", 64)));
    const data::dataset ds = data::make_synthetic_digits(images_n, 7); // 28x28
    core::uhd_config cfg;
    cfg.dim = dim;
    const core::uhd_encoder enc(cfg, ds.shape());

    const double bytes_per_image = bench::encode_bytes_per_image(enc);
    std::vector<throughput_entry> entries;

    const auto record = [&](const std::string& name, std::size_t threads,
                            double seconds, std::size_t images) {
        throughput_entry e;
        e.name = name;
        e.threads = threads;
        e.seconds = seconds;
        e.images_per_s = static_cast<double>(images) / seconds;
        e.gb_per_s = e.images_per_s * bytes_per_image * 1e-9;
        e.speedup_vs_scalar = entries.empty() ? 1.0 : entries.front().seconds / seconds;
        entries.push_back(e);
        std::printf("%-28s %8.1f img/s %8.3f GB/s  %5.2fx\n", name.c_str(),
                    e.images_per_s, e.gb_per_s, e.speedup_vs_scalar);
    };

    std::printf("\n== encode throughput: 28x28, D=%zu, xi=%u, %zu images ==\n", dim,
                cfg.quant_levels, images_n);

    record("encode_scalar", 1, bench::time_encode_scalar(enc, ds, images_n),
           images_n);
    record("encode_word_parallel", 1, bench::time_encode_parallel(enc, ds, images_n),
           images_n);

    std::vector<std::int32_t> out(images_n * dim);
    record("encode_batch", 1, bench::time_encode_batch(enc, ds, images_n, out),
           images_n);
    // parallel_for runs one chunk on the calling thread, so a pool of
    // N-1 workers computes on N threads; `threads` reports compute threads.
    for (const std::size_t threads : {2u, 4u}) {
        thread_pool pool(threads - 1);
        record("encode_batch_pool" + std::to_string(threads), threads,
               bench::time_encode_batch(enc, ds, images_n, out, &pool), images_n);
    }

    core::uhd_config remat_cfg = cfg;
    remat_cfg.bank = bank_mode::rematerialize;
    const core::uhd_encoder remat_enc(remat_cfg, ds.shape());
    record("encode_remat", 1, bench::time_encode_parallel(remat_enc, ds, images_n),
           images_n);

    const double speedup = entries[0].seconds / entries[1].seconds;
    std::printf("word-parallel vs scalar single-thread speedup: %.2fx %s\n", speedup,
                speedup >= 5.0 ? "(target >= 5x: PASS)" : "(target >= 5x: MISS)");

    // Stored-vs-rematerialize sweep: exact threshold-state footprint and
    // single-thread encode rate as D pushes the stored bank past LLC
    // (784 x 16384 = 12.25 MiB of thresholds; remat state stays ~46 KiB).
    // Bit-identity of the two modes at every D and the >= 100x reduction
    // at the paper's 784 x 8192 point are the hard gates of this bench.
    std::printf("\n== encode footprint + D-sweep: 28x28, stored vs rematerialize ==\n");
    std::vector<sweep_row> sweep;
    bool bit_identity = true;
    bool footprint_100x = false;
    const std::size_t sweep_images = std::min<std::size_t>(images_n, 16);
    for (const std::size_t d : {1024u, 4096u, 8192u, 16384u}) {
        core::uhd_config scfg;
        scfg.dim = d;
        core::uhd_config rcfg = scfg;
        rcfg.bank = bank_mode::rematerialize;
        const core::uhd_encoder stored(scfg, ds.shape());
        const core::uhd_encoder remat(rcfg, ds.shape());

        sweep_row row;
        row.dim = d;
        row.stored_bytes = stored.threshold_bytes();
        row.remat_bytes = remat.threshold_bytes();
        row.reduction =
            static_cast<double>(row.stored_bytes) / static_cast<double>(row.remat_bytes);
        if (d == 8192 && row.reduction >= 100.0) footprint_100x = true;

        row.identical = true;
        std::vector<std::int32_t> a(d);
        std::vector<std::int32_t> b(d);
        for (std::size_t i = 0; i < sweep_images; ++i) {
            stored.encode(ds.image(i), a);
            remat.encode(ds.image(i), b);
            if (a != b) row.identical = false;
        }
        bit_identity = bit_identity && row.identical;

        const double pixels = static_cast<double>(ds.shape().pixels());
        row.stored_img_per_s = static_cast<double>(sweep_images) /
                               bench::time_encode_parallel(stored, ds, sweep_images);
        row.remat_img_per_s = static_cast<double>(sweep_images) /
                              bench::time_encode_parallel(remat, ds, sweep_images);
        // Compare-ops/s normalizes out the D-proportional work per image:
        // this is the rate that must hold flat for remat past LLC.
        row.stored_gcmp_per_s =
            row.stored_img_per_s * static_cast<double>(d) * pixels * 1e-9;
        row.remat_gcmp_per_s =
            row.remat_img_per_s * static_cast<double>(d) * pixels * 1e-9;
        std::printf("D=%-6zu stored %9zu B  remat %6zu B  (%6.1fx)  "
                    "%7.1f vs %7.1f img/s  %.2f vs %.2f Gcmp/s  %s\n",
                    d, row.stored_bytes, row.remat_bytes, row.reduction,
                    row.stored_img_per_s, row.remat_img_per_s, row.stored_gcmp_per_s,
                    row.remat_gcmp_per_s, row.identical ? "identical" : "DIVERGED");
        sweep.push_back(row);
    }

    encode_gates gates;
    gates.bit_identity = bit_identity;
    gates.footprint_100x = footprint_100x;
    gates.throughput_hold =
        sweep.back().remat_gcmp_per_s / sweep.front().remat_gcmp_per_s;
    std::printf("gates: bit_identity %s, footprint_100x@8192 %s, "
                "remat rate hold D=%zu->%zu: %.2fx\n",
                gates.bit_identity ? "PASS" : "FAIL",
                gates.footprint_100x ? "PASS" : "FAIL", sweep.front().dim,
                sweep.back().dim, gates.throughput_hold);

    write_json(env_string("UHD_BENCH_JSON", "BENCH_encode.json"), ds.shape(), dim,
               cfg.quant_levels, images_n, entries, sweep, gates);
    if (!gates.bit_identity) {
        std::fprintf(stderr,
                     "FAIL: rematerialized encode diverged from the stored bank\n");
        return 1;
    }
    if (!gates.footprint_100x) {
        std::fprintf(stderr,
                     "FAIL: threshold-state reduction below 100x at 784 x 8192\n");
        return 1;
    }
    return 0;
}

// --- direct train-throughput comparison + BENCH_train.json ----------------

struct train_entry {
    std::string name;
    std::size_t threads;
    double seconds;
    double images_per_s;
    double speedup_vs_seed;
};

void write_train_json(const std::string& path, const data::image_shape& shape,
                      std::size_t dim, unsigned quant_levels, std::size_t images,
                      std::size_t classes, bool deterministic,
                      const std::vector<train_entry>& entries) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"train\",\n");
    std::fprintf(f, "  \"schema_version\": 2,\n");
    std::fprintf(f,
                 "  \"workload\": {\"rows\": %zu, \"cols\": %zu, \"dim\": %zu, "
                 "\"quant_levels\": %u, \"images\": %zu, \"classes\": %zu},\n",
                 shape.rows, shape.cols, dim, quant_levels, images, classes);
    write_backend_json(f);
    std::fprintf(f, "  \"determinism\": {\"parallel_matches_sequential\": %s},\n",
                 deterministic ? "true" : "false");
    std::fprintf(f, "  \"entries\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"threads\": %zu, \"seconds\": %.6f, "
                     "\"images_per_s\": %.1f, \"speedup_vs_seed\": %.2f}%s\n",
                     e.name.c_str(), e.threads, e.seconds, e.images_per_s,
                     e.speedup_vs_seed, i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
}

[[nodiscard]] int run_train_throughput() {
    // The acceptance workload: synthetic MNIST-shaped 28x28 images at
    // D=1024, 10 classes. The baseline is the seed's per-image sequential
    // loop (pinned-scalar encode + bundle); the engine entries are the
    // current sequential fit (word-parallel encode) and the mini-batch
    // parallel fit at several pool sizes.
    const std::size_t dim = 1024;
    const auto images_n = std::max<std::size_t>(
        1, static_cast<std::size_t>(env_int("UHD_BENCH_TRAIN_IMAGES", 128)));
    const data::dataset ds = data::make_synthetic_digits(images_n, 7); // 28x28
    core::uhd_config cfg;
    cfg.dim = dim;
    const core::uhd_encoder enc(cfg, ds.shape());

    // Determinism gate before any timing: the parallel engine must be
    // bit-identical to the sequential fit, or its speedup means nothing.
    hdc::hd_classifier<core::uhd_encoder> clf_seq(enc, ds.num_classes(),
                                                  hdc::train_mode::raw_sums);
    clf_seq.fit(ds);
    bool deterministic = true;
    {
        thread_pool pool(3);
        hdc::hd_classifier<core::uhd_encoder> clf_par(enc, ds.num_classes(),
                                                      hdc::train_mode::raw_sums);
        clf_par.fit_parallel(ds, &pool);
        for (std::size_t c = 0; c < clf_seq.classes() && deterministic; ++c) {
            const auto a = clf_seq.class_accumulator(c).values();
            const auto b = clf_par.class_accumulator(c).values();
            for (std::size_t d = 0; d < a.size(); ++d) {
                if (a[d] != b[d]) {
                    deterministic = false;
                    break;
                }
            }
        }
    }

    std::vector<train_entry> entries;
    const auto record = [&](const std::string& name, std::size_t threads,
                            double seconds) {
        train_entry e;
        e.name = name;
        e.threads = threads;
        e.seconds = seconds;
        e.images_per_s = static_cast<double>(images_n) / seconds;
        e.speedup_vs_seed = entries.empty() ? 1.0 : entries.front().seconds / seconds;
        entries.push_back(e);
        std::printf("%-28s %8.1f img/s  %5.2fx\n", name.c_str(), e.images_per_s,
                    e.speedup_vs_seed);
    };

    std::printf("\n== train throughput: 28x28, D=%zu, %zu classes, %zu images ==\n",
                dim, ds.num_classes(), images_n);
    std::printf("parallel-fit vs sequential fit: %s\n",
                deterministic ? "bit-identical" : "MISMATCH!");

    record("fit_seed_sequential", 1, bench::time_fit_seed(enc, ds, images_n));
    {
        hdc::hd_classifier<core::uhd_encoder> clf(enc, ds.num_classes(),
                                                  hdc::train_mode::raw_sums);
        stopwatch watch;
        clf.fit(ds);
        record("fit_sequential", 1, watch.seconds());
    }
    {
        hdc::hd_classifier<core::uhd_encoder> clf(enc, ds.num_classes(),
                                                  hdc::train_mode::raw_sums);
        stopwatch watch;
        clf.fit_parallel(ds, nullptr);
        record("fit_parallel_1t", 1, watch.seconds());
    }
    double best_parallel_speedup = 0.0;
    for (const std::size_t threads : {2u, 4u}) {
        thread_pool pool(threads - 1);
        hdc::hd_classifier<core::uhd_encoder> clf(enc, ds.num_classes(),
                                                  hdc::train_mode::raw_sums);
        stopwatch watch;
        clf.fit_parallel(ds, &pool);
        record("fit_parallel_" + std::to_string(threads) + "t", threads,
               watch.seconds());
        best_parallel_speedup =
            std::max(best_parallel_speedup, entries.back().speedup_vs_seed);
    }

    const bool speedup_ok = best_parallel_speedup >= 4.0;
    std::printf("multi-thread parallel fit vs seed sequential loop: %.2fx %s\n",
                best_parallel_speedup,
                speedup_ok ? "(target >= 4x: PASS)" : "(target >= 4x: MISS)");

    write_train_json(env_string("UHD_BENCH_TRAIN_JSON", "BENCH_train.json"),
                     ds.shape(), dim, cfg.quant_levels, images_n, ds.num_classes(),
                     deterministic, entries);
    return deterministic && speedup_ok ? 0 : 1;
}

// --- direct inference-throughput comparison + BENCH_inference.json --------

struct inference_entry {
    std::string name;
    std::string mode;
    std::size_t threads;
    double seconds;
    double queries_per_s;
    double speedup_vs_scalar;
};

/// Dynamic-dimension cascade measurements for the inference JSON.
struct dynamic_report {
    double target_agreement = 0.0;
    std::size_t matched = 0;          ///< argmax agreement with full-D
    std::size_t queries = 0;
    double avg_words_scanned = 0.0;   ///< packed words popcounted per query
    std::size_t full_words = 0;       ///< classes * words_per_class
    std::vector<hdc::dynamic_stage> stages;
    std::vector<std::size_t> exits;   ///< per-stage exit counts
};

/// One block-size point of the multi-query blocked-inference sweep.
struct block_entry {
    std::size_t block = 1;          ///< queries per nearest_block call
    double seconds = 0.0;           ///< seconds per query
    double queries_per_s = 0.0;
    double speedup_vs_per_query = 0.0;
};

/// Blocked-inference measurements for the inference JSON (schema v4).
struct block_report {
    std::size_t classes = 0;
    std::size_t queries = 0;
    bool identical = true;          ///< block answers == per-query answers
    double best_speedup = 0.0;      ///< max over the sweep
    std::vector<block_entry> entries;
};

/// Measure the query-GEMM path: a many-class packed memory (the blocking
/// win is row *reuse*, so the class rows must outgrow the fast caches —
/// the 10-class digits memory is ~10 KiB and fits in L1) answered per
/// query via nearest() and in blocks of 4/8/16/32 via nearest_block().
/// Every block answer is checked bit-identical to the per-query one.
[[nodiscard]] block_report run_block_throughput(std::size_t dim) {
    block_report report;
    report.classes = std::max<std::size_t>(
        2, static_cast<std::size_t>(env_int("UHD_BENCH_BLOCK_CLASSES", 4096)));
    report.queries = std::max<std::size_t>(
        32, static_cast<std::size_t>(env_int("UHD_BENCH_BLOCK_QUERIES", 128)));

    xoshiro256ss rng(0x9e3779b97f4a7c15ull);
    hdc::class_memory mem(report.classes, dim);
    for (std::size_t c = 0; c < report.classes; ++c) {
        mem.store(c, hdc::hypervector::random(dim, rng));
    }
    const std::size_t words = mem.words_per_class();
    std::vector<std::uint64_t> packed(report.queries * words);
    for (std::size_t q = 0; q < report.queries; ++q) {
        const auto query_words = hdc::hypervector::random(dim, rng).bits().words();
        std::copy(query_words.begin(), query_words.end(),
                  packed.begin() + static_cast<std::ptrdiff_t>(q * words));
    }
    const auto query = [&](std::size_t q) {
        return std::span<const std::uint64_t>(packed.data() + q * words, words);
    };

    std::printf("\n== blocked inference (query-GEMM): D=%zu, %zu classes "
                "(%.1f MiB packed), %zu queries ==\n",
                dim, report.classes,
                static_cast<double>(report.classes * words * 8) / (1024.0 * 1024.0),
                report.queries);

    std::vector<std::size_t> per_query(report.queries);
    std::size_t sink = 0;
    const double per_query_s = bench::time_inference(
        report.queries,
        [&](std::size_t q) { return per_query[q] = mem.nearest(query(q)); }, sink);
    report.entries.push_back(
        {1, per_query_s, 1.0 / per_query_s, 1.0});
    std::printf("block=%-3zu %12.1f query/s  %6.2fx\n", std::size_t{1},
                1.0 / per_query_s, 1.0);

    std::vector<std::size_t> blocked(report.queries);
    for (const std::size_t block : {4u, 8u, 16u, 32u}) {
        const auto answer_blocked = [&] {
            for (std::size_t q = 0; q < report.queries; q += block) {
                const std::size_t count = std::min(block, report.queries - q);
                mem.nearest_block(
                    std::span<const std::uint64_t>(packed.data() + q * words,
                                                   count * words),
                    count, std::span<std::size_t>(blocked.data() + q, count));
            }
        };
        answer_blocked();
        if (blocked != per_query) report.identical = false;
        stopwatch watch;
        std::size_t done = 0;
        do {
            answer_blocked();
            done += report.queries;
        } while (watch.seconds() < 0.05);
        const double seconds = watch.seconds() / static_cast<double>(done);
        const double speedup = per_query_s / seconds;
        report.entries.push_back({block, seconds, 1.0 / seconds, speedup});
        report.best_speedup = std::max(report.best_speedup, speedup);
        std::printf("block=%-3zu %12.1f query/s  %6.2fx\n", block, 1.0 / seconds,
                    speedup);
        benchmark::DoNotOptimize(blocked.data());
    }
    benchmark::DoNotOptimize(sink);
    std::printf("block answers bit-identical to per-query: %s; best speedup "
                "%.2fx %s\n",
                report.identical ? "yes" : "NO (MISMATCH!)", report.best_speedup,
                report.best_speedup >= 2.0 ? "(target >= 2x: PASS)"
                                           : "(target >= 2x: MISS)");
    return report;
}

void write_inference_json(const std::string& path, std::size_t dim,
                          std::size_t classes, std::size_t queries,
                          std::size_t matched, const dynamic_report& dynamic,
                          const block_report& block,
                          const std::vector<inference_entry>& entries) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"inference\",\n");
    std::fprintf(f, "  \"schema_version\": 4,\n");
    std::fprintf(f,
                 "  \"workload\": {\"dim\": %zu, \"classes\": %zu, "
                 "\"queries\": %zu},\n",
                 dim, classes, queries);
    write_backend_json(f);
    std::fprintf(f, "  \"agreement\": {\"matched\": %zu, \"queries\": %zu},\n",
                 matched, queries);
    std::fprintf(f, "  \"dynamic\": {\n");
    std::fprintf(f, "    \"target_agreement\": %.4f,\n", dynamic.target_agreement);
    std::fprintf(f, "    \"agreement\": {\"matched\": %zu, \"queries\": %zu},\n",
                 dynamic.matched, dynamic.queries);
    std::fprintf(f, "    \"avg_words_scanned_per_query\": %.1f,\n",
                 dynamic.avg_words_scanned);
    std::fprintf(f, "    \"full_words_per_query\": %zu,\n", dynamic.full_words);
    std::fprintf(f, "    \"avg_scan_fraction\": %.4f,\n",
                 dynamic.full_words == 0
                     ? 1.0
                     : dynamic.avg_words_scanned /
                           static_cast<double>(dynamic.full_words));
    std::fprintf(f, "    \"stages\": [\n");
    for (std::size_t s = 0; s < dynamic.stages.size(); ++s) {
        const bool disabled = dynamic.stages[s].margin_threshold ==
                              hdc::dynamic_query_policy::disabled_threshold;
        std::fprintf(f, "      {\"window_words\": %zu, \"margin_threshold\": ",
                     dynamic.stages[s].window_words);
        if (disabled) {
            std::fprintf(f, "null");
        } else {
            std::fprintf(f, "%llu",
                         static_cast<unsigned long long>(
                             dynamic.stages[s].margin_threshold));
        }
        std::fprintf(f, ", \"exits\": %zu}%s\n", dynamic.exits[s],
                     s + 1 < dynamic.stages.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n");
    // Schema v4: the multi-query blocked path (query-GEMM) over a
    // many-class memory, swept across block sizes, with its bit-identity
    // flag and the >= 2x acceptance gate.
    std::fprintf(f, "  \"block\": {\n");
    std::fprintf(f,
                 "    \"workload\": {\"dim\": %zu, \"classes\": %zu, "
                 "\"queries\": %zu},\n",
                 dim, block.classes, block.queries);
    std::fprintf(f, "    \"identical_to_per_query\": %s,\n",
                 block.identical ? "true" : "false");
    std::fprintf(f, "    \"best_speedup\": %.2f,\n", block.best_speedup);
    std::fprintf(f, "    \"entries\": [\n");
    for (std::size_t i = 0; i < block.entries.size(); ++i) {
        const block_entry& e = block.entries[i];
        std::fprintf(f,
                     "      {\"block\": %zu, \"seconds\": %.9f, "
                     "\"queries_per_s\": %.1f, \"speedup_vs_per_query\": "
                     "%.2f}%s\n",
                     e.block, e.seconds, e.queries_per_s, e.speedup_vs_per_query,
                     i + 1 < block.entries.size() ? "," : "");
    }
    std::fprintf(f, "    ],\n");
    std::fprintf(f, "    \"gates\": {\"speedup_2x\": %s}\n",
                 block.best_speedup >= 2.0 ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"entries\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"mode\": \"%s\", \"threads\": %zu, "
                     "\"seconds\": %.9f, \"queries_per_s\": %.1f, "
                     "\"speedup_vs_scalar\": %.2f}%s\n",
                     e.name.c_str(), e.mode.c_str(), e.threads, e.seconds,
                     e.queries_per_s, e.speedup_vs_scalar,
                     i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
}

[[nodiscard]] int run_inference_throughput() {
    // The acceptance workload: D=8192, 10 classes, single thread, pure
    // inference stage (queries pre-encoded — encode has its own section).
    const std::size_t dim = 8192;
    const auto queries_n = std::max<std::size_t>(
        1, static_cast<std::size_t>(env_int("UHD_BENCH_QUERIES", 256)));
    const data::dataset train_set = data::make_synthetic_digits(200, 7);
    const data::dataset query_set = data::make_synthetic_digits(queries_n, 9);

    core::uhd_config cfg;
    cfg.dim = dim;
    const core::uhd_encoder enc(cfg, train_set.shape());
    hdc::hd_classifier<core::uhd_encoder> clf_bin(enc, train_set.num_classes(),
                                                  hdc::train_mode::raw_sums,
                                                  hdc::query_mode::binarized);
    clf_bin.fit(train_set);
    const auto clf_int =
        bench::clone_with_query_mode(clf_bin, hdc::query_mode::integer);

    const std::vector<std::int32_t> encoded =
        bench::encode_queries(enc, query_set, queries_n);
    const auto query = [&](std::size_t i) {
        return std::span<const std::int32_t>(encoded).subspan(i * dim, dim);
    };

    // The packed path must agree with the seed path on every query before
    // its speedup means anything.
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < queries_n; ++i) {
        if (clf_bin.predict_encoded(query(i)) !=
            bench::seed_predict_binarized(clf_bin, query(i))) {
            ++mismatches;
        }
    }

    std::vector<inference_entry> entries;
    double binarized_scalar_s = 0.0;
    double integer_scalar_s = 0.0;
    const auto record = [&](const std::string& name, const std::string& mode,
                            double seconds) {
        inference_entry e;
        e.name = name;
        e.mode = mode;
        e.threads = 1;
        e.seconds = seconds;
        e.queries_per_s = 1.0 / seconds;
        const double baseline =
            mode == "binarized" ? binarized_scalar_s : integer_scalar_s;
        e.speedup_vs_scalar = baseline > 0.0 ? baseline / seconds : 1.0;
        entries.push_back(e);
        std::printf("%-28s %10.1f query/s  %6.2fx\n", name.c_str(), e.queries_per_s,
                    e.speedup_vs_scalar);
    };

    std::printf("\n== inference throughput: D=%zu, %zu classes, %zu queries "
                "(pre-encoded, 1 thread) ==\n",
                dim, clf_bin.classes(), queries_n);
    std::printf("packed vs seed argmax agreement: %zu/%zu%s\n",
                queries_n - mismatches, queries_n,
                mismatches == 0 ? "" : "  (MISMATCH!)");

    std::size_t sink = 0;
    binarized_scalar_s = bench::time_inference(
        queries_n,
        [&](std::size_t i) { return bench::seed_predict_binarized(clf_bin, query(i)); },
        sink);
    record("inference_cosine_scalar", "binarized", binarized_scalar_s);
    record("inference_packed_am", "binarized",
           bench::time_inference(
               queries_n,
               [&](std::size_t i) { return clf_bin.predict_encoded(query(i)); },
               sink));
    integer_scalar_s = bench::time_inference(
        queries_n,
        [&](std::size_t i) { return bench::seed_predict_integer(clf_int, query(i)); },
        sink);
    record("inference_integer_scalar", "integer", integer_scalar_s);
    record("inference_integer_blocked", "integer",
           bench::time_inference(
               queries_n,
               [&](std::size_t i) { return clf_int.predict_encoded(query(i)); },
               sink));

    // --- dynamic-dimension early-exit cascade ----------------------------
    // Calibrated on a held-out synthetic set (fresh seed) for 99% agreement
    // with the full-D answer, then evaluated on the bench queries: argmax
    // agreement, average packed words scanned, and the per-stage exit
    // histogram all land in the JSON and are gated below.
    const double target_agreement = 0.99;
    const data::dataset calib_set = data::make_synthetic_digits(
        std::max<std::size_t>(64, queries_n / 2), 13);
    const hdc::dynamic_query_policy policy =
        clf_bin.calibrate_dynamic(calib_set, target_agreement);

    hdc::dynamic_query_summary summary(policy.stages().size());
    for (std::size_t i = 0; i < queries_n; ++i) {
        hdc::dynamic_query_stats stats;
        const std::size_t answer =
            clf_bin.predict_dynamic_encoded(query(i), policy, &stats);
        summary.record(stats, answer == clf_bin.predict_encoded(query(i)));
    }
    dynamic_report dyn;
    dyn.target_agreement = target_agreement;
    dyn.queries = queries_n;
    dyn.matched = summary.agreements;
    dyn.full_words = clf_bin.packed_class_memory().classes() *
                     clf_bin.packed_class_memory().words_per_class();
    dyn.stages.assign(policy.stages().begin(), policy.stages().end());
    dyn.exits = summary.exits;
    dyn.avg_words_scanned = summary.avg_words_scanned();
    const double scan_fraction =
        dyn.avg_words_scanned / static_cast<double>(dyn.full_words);

    record("inference_dynamic_am", "binarized",
           bench::time_inference(
               queries_n,
               [&](std::size_t i) {
                   return clf_bin.predict_dynamic_encoded(query(i), policy);
               },
               sink));
    benchmark::DoNotOptimize(sink);

    std::printf("dynamic cascade (target %.0f%%): agreement %zu/%zu, avg words "
                "scanned %.1f/%zu (%.1f%%)\n",
                100.0 * target_agreement, dyn.matched, queries_n,
                dyn.avg_words_scanned, dyn.full_words, 100.0 * scan_fraction);
    std::printf("exit histogram:");
    for (std::size_t s = 0; s < dyn.stages.size(); ++s) {
        std::printf(" D/%zu:%zu",
                    clf_bin.packed_class_memory().words_per_class() /
                        dyn.stages[s].window_words,
                    dyn.exits[s]);
    }
    std::printf("\n");

    // --- multi-query blocked path (query-GEMM) ---------------------------
    const block_report block = run_block_throughput(dim);

    const double speedup = entries[0].seconds / entries[1].seconds;
    std::printf("packed associative-memory vs seed cosine speedup: %.2fx %s\n",
                speedup,
                speedup >= 5.0 ? "(target >= 5x: PASS)" : "(target >= 5x: MISS)");
    const bool dynamic_agreement_ok =
        static_cast<double>(dyn.matched) >= 0.98 * static_cast<double>(queries_n);
    const bool dynamic_scan_ok = scan_fraction <= 0.5;
    std::printf("dynamic gates: agreement >= 98%%: %s, avg scan <= 50%%: %s\n",
                dynamic_agreement_ok ? "PASS" : "MISS",
                dynamic_scan_ok ? "PASS" : "MISS");

    write_inference_json(env_string("UHD_BENCH_INFER_JSON", "BENCH_inference.json"),
                         dim, clf_bin.classes(), queries_n, queries_n - mismatches,
                         dyn, block, entries);
    // A broken bit-identity — or a cascade that misses its calibrated
    // agreement/scan targets, or a block path that diverges from the
    // per-query answers — is a regression, not a bench result: fail the
    // run so CI's bench smoke surfaces it. (The block >= 2x speedup is a
    // JSON gate, not an exit gate: it holds on cache-tiered hardware but a
    // throttled CI runner must not flake the build over it.)
    return mismatches == 0 && dynamic_agreement_ok && dynamic_scan_ok &&
                   block.identical
               ? 0
               : 1;
}

} // namespace

int main(int argc, char** argv) {
    // Resolve the backend before anything times: an invalid UHD_BACKEND
    // must fail the run here, loudly, not midway through a measurement.
    std::printf("# kernel backend: %s (override: %s, cpu: %s)\n",
                kernels::active().name,
                kernels::backend_override().empty()
                    ? "none"
                    : std::string(kernels::backend_override()).c_str(),
                cpu().to_string().c_str());
    register_backend_benchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    const int encode_status = run_encode_throughput();
    const int train_status = run_train_throughput();
    const int inference_status = run_inference_throughput();
    if (encode_status != 0) return encode_status;
    return train_status != 0 ? train_status : inference_status;
}
