// Table IV reproduction: MNIST accuracy of the baseline HDC (averaged over
// iterative hypervector re-generation, monitored at the paper's checkpoints
// i in {1, 5, 20, 50, 75, 100}) vs uHD's single deterministic pass, for
// D in {1K, 2K, 8K}.
//
// Defaults are sized for a quick run; the paper-scale sweep is
//   UHD_TRAIN_N=60000 UHD_TEST_N=10000 UHD_ITERS=100 ./bench_table4_mnist
// (uses real MNIST automatically if IDX files are present, see
// bench_common.hpp).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "uhd/common/stopwatch.hpp"
#include "uhd/common/table.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/classifier.hpp"

namespace {

/// Encode-throughput report for one encoder at one D: scalar oracle vs
/// word-parallel vs pool-batched, in images/s and effective GB/s of
/// threshold-bank traffic (shared measurement helpers in bench_common.hpp).
void report_encode_throughput(const uhd::core::uhd_encoder& enc,
                              const uhd::data::dataset& ds) {
    using namespace uhd;
    const std::size_t n = ds.size() < 64 ? ds.size() : 64;
    const double bytes_per_image = bench::encode_bytes_per_image(enc);

    const double scalar_s = bench::time_encode_scalar(enc, ds, n);
    const double parallel_s = bench::time_encode_parallel(enc, ds, n);
    std::vector<std::int32_t> out(n * enc.dim());
    const double batched_s =
        bench::time_encode_batch(enc, ds, n, out, &thread_pool::shared());

    const auto line = [&](const char* name, double seconds) {
        const double ips = static_cast<double>(n) / seconds;
        std::printf("#   %-22s %9.1f img/s %7.3f GB/s  %5.2fx\n", name, ips,
                    ips * bytes_per_image * 1e-9, scalar_s / seconds);
    };
    std::printf("# encode throughput at D=%zu (%zu images):\n", enc.dim(), n);
    line("scalar oracle", scalar_s);
    line("word-parallel", parallel_s);
    line("batched (shared pool)", batched_s);
}

/// Train-throughput report for one encoder at one D: the seed sequential
/// loop (pinned-scalar encode + bundle per image) vs the current sequential
/// fit vs the mini-batch parallel engine on the shared pool.
void report_train_throughput(const uhd::core::uhd_encoder& enc,
                             const uhd::data::dataset& full_train) {
    using namespace uhd;
    const std::size_t n = full_train.size() < 128 ? full_train.size() : 128;
    data::dataset train(full_train.shape(), full_train.num_classes());
    for (std::size_t i = 0; i < n; ++i) {
        const auto img = full_train.image(i);
        train.add(std::vector<std::uint8_t>(img.begin(), img.end()),
                  full_train.label(i));
    }

    const double seed_s = bench::time_fit_seed(enc, train, n);
    double fit_s = 0.0;
    {
        hdc::hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(),
                                                  hdc::train_mode::raw_sums);
        stopwatch watch;
        clf.fit(train);
        fit_s = watch.seconds();
    }
    double parallel_s = 0.0;
    {
        hdc::hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(),
                                                  hdc::train_mode::raw_sums);
        stopwatch watch;
        clf.fit_parallel(train, &thread_pool::shared());
        parallel_s = watch.seconds();
    }

    const auto line = [&](const char* name, double seconds) {
        std::printf("#   %-22s %9.1f img/s  %5.2fx\n", name,
                    static_cast<double>(n) / seconds, seed_s / seconds);
    };
    std::printf("# train throughput at D=%zu (%zu images):\n", enc.dim(), n);
    line("seed sequential loop", seed_s);
    line("fit (sequential)", fit_s);
    line("fit_parallel (pool)", parallel_s);
}

/// Dynamic-dimension inference report for one trained classifier at one D:
/// cascade calibrated on training data for 99% agreement, evaluated on the
/// test set (argmax agreement with full-D, average packed words scanned,
/// per-stage exit histogram).
void report_dynamic_inference(
    const uhd::hdc::hd_classifier<uhd::core::uhd_encoder>& clf_int,
    const uhd::data::dataset& train, const uhd::data::dataset& test) {
    using namespace uhd;
    const auto clf_bin =
        bench::clone_with_query_mode(clf_int, hdc::query_mode::binarized);
    const std::size_t n = test.size() < 256 ? test.size() : 256;

    const hdc::dynamic_query_policy policy =
        clf_bin.calibrate_dynamic(train, 0.99, &thread_pool::shared());
    const std::size_t full_words = clf_bin.packed_class_memory().classes() *
                                   clf_bin.packed_class_memory().words_per_class();

    // Pre-encode each query once; both the cascade and the full-D answer
    // read the same accumulator.
    const core::uhd_encoder& enc = clf_bin.encoder();
    const std::vector<std::int32_t> encoded = bench::encode_queries(enc, test, n);
    hdc::dynamic_query_summary summary(policy.stages().size());
    for (std::size_t i = 0; i < n; ++i) {
        const std::span<const std::int32_t> query(encoded.data() + i * enc.dim(),
                                                  enc.dim());
        hdc::dynamic_query_stats stats;
        const std::size_t answer =
            clf_bin.predict_dynamic_encoded(query, policy, &stats);
        summary.record(stats, answer == clf_bin.predict_encoded(query));
    }
    std::printf("# dynamic inference at D=%zu (%zu queries, calibrated 99%%): "
                "agreement %zu/%zu, avg words %.1f/%zu (%.1f%%), exits",
                clf_bin.encoder().dim(), n, summary.agreements, n,
                summary.avg_words_scanned(), full_words,
                100.0 * summary.avg_words_scanned() /
                    static_cast<double>(full_words));
    for (std::size_t s = 0; s < policy.stages().size(); ++s) {
        std::printf(" D/%zu:%zu",
                    clf_bin.packed_class_memory().words_per_class() /
                        policy.stages()[s].window_words,
                    summary.exits[s]);
    }
    std::printf("\n");
}

/// Inference-throughput report for one trained classifier at one D: the
/// seed per-class-cosine path vs the packed associative-memory engine
/// (binarized mode) and the blocked dot-product kernels (integer mode),
/// over pre-encoded queries, single thread.
void report_inference_throughput(
    const uhd::hdc::hd_classifier<uhd::core::uhd_encoder>& clf_int,
    const uhd::data::dataset& ds) {
    using namespace uhd;
    const core::uhd_encoder& enc = clf_int.encoder();
    const std::size_t n = ds.size() < 64 ? ds.size() : 64;

    // Same trained state, binarized query mode (packed engine).
    const auto clf_bin =
        bench::clone_with_query_mode(clf_int, hdc::query_mode::binarized);

    const std::vector<std::int32_t> encoded = bench::encode_queries(enc, ds, n);
    const auto query = [&](std::size_t i) {
        return std::span<const std::int32_t>(encoded).subspan(i * enc.dim(),
                                                              enc.dim());
    };

    std::size_t sink = 0;
    const double bin_scalar_s = bench::time_inference(
        n, [&](std::size_t i) { return bench::seed_predict_binarized(clf_bin, query(i)); },
        sink);
    const double bin_packed_s = bench::time_inference(
        n, [&](std::size_t i) { return clf_bin.predict_encoded(query(i)); }, sink);
    const double int_scalar_s = bench::time_inference(
        n, [&](std::size_t i) { return bench::seed_predict_integer(clf_int, query(i)); },
        sink);
    const double int_blocked_s = bench::time_inference(
        n, [&](std::size_t i) { return clf_int.predict_encoded(query(i)); }, sink);
    if (sink == static_cast<std::size_t>(-1)) std::printf("#\n"); // keep sink live

    const auto line = [&](const char* name, double seconds, double baseline) {
        std::printf("#   %-26s %11.1f query/s  %6.2fx\n", name, 1.0 / seconds,
                    baseline / seconds);
    };
    std::printf("# inference throughput at D=%zu (%zu pre-encoded queries, "
                "1 thread):\n",
                enc.dim(), n);
    line("cosine scalar (seed)", bin_scalar_s, bin_scalar_s);
    line("packed associative mem", bin_packed_s, bin_scalar_s);
    line("integer cosine scalar", int_scalar_s, int_scalar_s);
    line("integer blocked dot", int_blocked_s, int_scalar_s);
}

} // namespace

int main() {
    using namespace uhd;
    const auto w = bench::load_workload(1000, 300, 5);
    const auto [train, test] = bench::mnist_pair(w.train_n, w.test_n);

    std::printf("== Table IV: MNIST accuracy, baseline (avg over i) vs uHD (i=1) ==\n");
    std::printf("# %zu train / %zu test images, baseline iterations: %zu\n",
                train.size(), test.size(), w.iters);
    std::printf("# batch engine: %zu compute threads (shared-pool workers + caller)\n\n",
                thread_pool::shared().size() + 1);

    const std::vector<std::size_t> paper_checkpoints = {1, 5, 20, 50, 75, 100};
    text_table table;
    std::vector<std::string> header = {"D"};
    for (const std::size_t c : paper_checkpoints) {
        if (c <= w.iters) header.push_back("base i=1.." + std::to_string(c));
    }
    header.push_back("uHD i=1");
    table.set_header(header);

    for (const std::size_t dim : {1024u, 2048u, 8192u}) {
        stopwatch watch;
        // Baseline: accuracy at every iteration (fresh P/L seeds each time).
        hdc::baseline_config bcfg;
        bcfg.dim = dim;
        hdc::baseline_encoder baseline(bcfg, train.shape());
        std::vector<double> per_iteration;
        for (std::size_t i = 1; i <= w.iters; ++i) {
            baseline.reseed(i);
            hdc::hd_classifier<hdc::baseline_encoder> clf(baseline, train.num_classes());
            clf.fit(train);
            per_iteration.push_back(clf.evaluate(test));
        }

        // uHD: one deterministic pass; inference through the pooled batch
        // engine (bit-identical to serial evaluation for any thread count).
        core::uhd_config ucfg;
        ucfg.dim = dim;
        const core::uhd_encoder uhd(ucfg, train.shape());
        hdc::hd_classifier<core::uhd_encoder> uhd_clf(
            uhd, train.num_classes(), hdc::train_mode::raw_sums,
            hdc::query_mode::integer);
        // uHD training runs through the mini-batch parallel engine
        // (bit-identical to the sequential fit for any thread count).
        uhd_clf.fit_parallel(train, &thread_pool::shared());
        const double uhd_accuracy = uhd_clf.evaluate(test, nullptr,
                                                     &thread_pool::shared());
        report_encode_throughput(uhd, test);
        report_train_throughput(uhd, train);
        report_inference_throughput(uhd_clf, test);
        report_dynamic_inference(uhd_clf, train, test);

        std::vector<std::string> cells = {dim == 1024   ? "1K"
                                          : dim == 2048 ? "2K"
                                                        : "8K"};
        for (const std::size_t c : paper_checkpoints) {
            if (c > w.iters) continue;
            double sum = 0.0;
            for (std::size_t i = 0; i < c; ++i) sum += per_iteration[i];
            cells.push_back(format_fixed(100.0 * sum / static_cast<double>(c), 2));
        }
        cells.push_back(format_fixed(100.0 * uhd_accuracy, 2));
        table.add_row(std::move(cells));
        std::printf("# D=%zu done in %.1fs\n", dim, watch.seconds());
    }
    std::printf("\n%s\n", table.to_string().c_str());
    std::printf("paper (real MNIST, 60k/10k): baseline 82.93/86.24/88.30 at i=1 for\n");
    std::printf("1K/2K/8K; uHD 84.44/87.04/88.41 — uHD matches or beats the baseline\n");
    std::printf("at every D with a single iteration. The same ordering should appear\n");
    std::printf("above (absolute values differ on the synthetic analogue).\n");
    return 0;
}
