// Ablation: robustness to bit flips and input noise — the "robust" part of
// HDC's pitch (paper Section I). Sweeps (a) random bit flips injected into
// the trained class hypervectors (memory faults) and (b) salt-and-pepper
// pixel noise on the test images, for uHD and the baseline.
#include <cstdio>

#include "bench_common.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/common/table.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/classifier.hpp"

namespace {

using namespace uhd;

// Flip `fraction` of the bits of every class accumulator's sign structure by
// negating random dimensions (equivalent to bit flips in the stored HV).
template <typename Encoder>
void inject_class_faults(hdc::hd_classifier<Encoder>& clf, double fraction,
                         std::uint64_t seed) {
    xoshiro256ss rng(seed);
    std::vector<hdc::accumulator> corrupted;
    for (std::size_t c = 0; c < clf.classes(); ++c) {
        hdc::accumulator acc = clf.class_accumulator(c);
        const auto flips = static_cast<std::size_t>(fraction * static_cast<double>(acc.dim()));
        for (std::size_t f = 0; f < flips; ++f) {
            const std::size_t d = static_cast<std::size_t>(rng.next_below(acc.dim()));
            acc.values()[d] = -acc.values()[d];
        }
        corrupted.push_back(std::move(acc));
    }
    clf.load_state(std::move(corrupted));
}

data::dataset add_salt_pepper(const data::dataset& clean, double density,
                              std::uint64_t seed) {
    data::dataset noisy(clean.shape(), clean.num_classes());
    xoshiro256ss rng(seed);
    for (std::size_t i = 0; i < clean.size(); ++i) {
        const auto img = clean.image(i);
        std::vector<std::uint8_t> pixels(img.begin(), img.end());
        for (auto& p : pixels) {
            if (rng.next_unit() < density) p = rng.next_bool() ? 255 : 0;
        }
        noisy.add(std::move(pixels), clean.label(i));
    }
    return noisy;
}

} // namespace

int main() {
    const auto w = uhd::bench::load_workload(1000, 300, 1);
    const auto [train, test] = uhd::bench::mnist_pair(w.train_n, w.test_n);
    const auto dim = static_cast<std::size_t>(uhd::env_int("UHD_DIM", 1024));

    core::uhd_config ucfg;
    ucfg.dim = dim;
    const core::uhd_encoder uenc(ucfg, train.shape());
    hdc::baseline_config bcfg;
    bcfg.dim = dim;
    const hdc::baseline_encoder benc(bcfg, train.shape());

    std::printf("== ablation: robustness (D=%zu) ==\n\n", dim);

    std::printf("-- (a) random sign faults injected into class vectors --\n");
    uhd::text_table faults;
    faults.set_header({"fault fraction", "uHD acc (%)", "baseline acc (%)"});
    for (const double fraction : {0.0, 0.05, 0.10, 0.20, 0.30}) {
        hdc::hd_classifier<core::uhd_encoder> u(uenc, train.num_classes(),
                                                hdc::train_mode::raw_sums,
                                                hdc::query_mode::integer);
        u.fit(train);
        inject_class_faults(u, fraction, 7);
        hdc::hd_classifier<hdc::baseline_encoder> b(benc, train.num_classes());
        b.fit(train);
        inject_class_faults(b, fraction, 7);
        faults.add_row({uhd::format_fixed(fraction, 2),
                        uhd::format_fixed(100.0 * u.evaluate(test), 2),
                        uhd::format_fixed(100.0 * b.evaluate(test), 2)});
    }
    std::printf("%s\n", faults.to_string().c_str());

    std::printf("-- (b) salt-and-pepper noise on test images --\n");
    uhd::text_table noise;
    noise.set_header({"noise density", "uHD acc (%)", "baseline acc (%)"});
    hdc::hd_classifier<core::uhd_encoder> u(uenc, train.num_classes(),
                                            hdc::train_mode::raw_sums,
                                            hdc::query_mode::integer);
    u.fit(train);
    hdc::hd_classifier<hdc::baseline_encoder> b(benc, train.num_classes());
    b.fit(train);
    for (const double density : {0.0, 0.02, 0.05, 0.10, 0.20}) {
        const auto noisy = add_salt_pepper(test, density, 11);
        noise.add_row({uhd::format_fixed(density, 2),
                       uhd::format_fixed(100.0 * u.evaluate(noisy), 2),
                       uhd::format_fixed(100.0 * b.evaluate(noisy), 2)});
    }
    std::printf("%s\n", noise.to_string().c_str());
    std::printf("reproduced claim: holographic codes degrade gracefully — accuracy\n");
    std::printf("decays smoothly under memory faults and input noise for both systems.\n");
    return 0;
}
