// Table II reproduction: energy and area x delay of uHD vs the baseline
// HDC, per hypervector and per MNIST image, for D in {1K, 2K, 8K}.
//
// Energies come from the gate-level cost model (generic 45nm library,
// DESIGN.md §4.3); the paper's absolute values used a proprietary library,
// so the reproduced quantity is the uHD-vs-baseline ratio at each point.
#include <cstdio>

#include "uhd/common/table.hpp"
#include "uhd/hw/report.hpp"

int main() {
    using namespace uhd;
    const hw::hdc_cost_model model;

    std::printf("== Table II: energy and area x delay per HV and per image (H=784) ==\n\n");
    text_table table;
    table.set_header({"design", "D=1K E(pJ)", "D=2K E(pJ)", "D=8K E(pJ)",
                      "D=1K AxD(m^2s)", "D=2K AxD(m^2s)", "D=8K AxD(m^2s)"});

    const auto row_for = [&](const char* label, auto getter) {
        std::vector<std::string> cells = {label};
        std::vector<hw::cost_summary> summaries;
        for (const std::size_t dim : {1024u, 2048u, 8192u}) {
            hw::design_point p;
            p.dim = dim;
            summaries.push_back(getter(p));
        }
        for (const auto& s : summaries) cells.push_back(format_fixed(s.energy_pj, 2));
        for (const auto& s : summaries) cells.push_back(format_sci(s.area_delay_m2s(), 2));
        table.add_row(std::move(cells));
    };

    row_for("uHD per HV", [&](const hw::design_point& p) { return model.uhd_per_hv(p); });
    row_for("uHD per image",
            [&](const hw::design_point& p) { return model.uhd_per_image(p); });
    row_for("Baseline per HV",
            [&](const hw::design_point& p) { return model.baseline_per_hv(p); });
    row_for("Baseline per image",
            [&](const hw::design_point& p) { return model.baseline_per_image(p); });
    std::printf("%s\n", table.to_string().c_str());

    std::printf("ratios (baseline / uHD):\n");
    for (const std::size_t dim : {1024u, 2048u, 8192u}) {
        hw::design_point p;
        p.dim = dim;
        const auto u_hv = model.uhd_per_hv(p);
        const auto b_hv = model.baseline_per_hv(p);
        const auto u_img = model.uhd_per_image(p);
        const auto b_img = model.baseline_per_image(p);
        std::printf("  D=%-5zu energy/HV %6.1fx   energy/img %6.1fx   AxD/HV %6.1fx\n",
                    dim, b_hv.energy_pj / u_hv.energy_pj,
                    b_img.energy_pj / u_img.energy_pj,
                    b_hv.area_delay_m2s() / u_hv.area_delay_m2s());
    }
    std::printf("\npaper ratios for reference: energy/HV 217x (1K), 263x (2K), 637x (8K);\n");
    std::printf("AxD/HV ~290x (1K). Shapes (uHD wins, gap widens with D) reproduce;\n");
    std::printf("absolute factors depend on the cell library and activity model.\n");
    return 0;
}
