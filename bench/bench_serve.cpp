// Serving-engine benchmark: throughput and tail latency of the
// micro-batching inference engine under a mixed query/online-update load —
// concurrent client threads submitting pre-encoded queries while a trainer
// thread streams partial_fit updates and publishes fresh snapshots.
//
//   ./bench_serve                                  # default workload
//   UHD_BENCH_SERVE_CLIENTS=8 ./bench_serve        # more load generators
//
// Emits BENCH_serve.json (schema in bench/README.md). The run fails
// (nonzero exit) when the serving answers are not bit-identical to the
// trainer's final classifier after quiescing, when throughput is not
// positive, or when the latency percentiles are inconsistent (p99 < p50) —
// so CI's bench smoke doubles as a correctness gate for the serve layer.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "uhd/common/config.hpp"
#include "uhd/common/cpu_features.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/serve/inference_engine.hpp"

namespace {

using namespace uhd;

/// Same backend attribution block as the other BENCH_*.json files.
void write_backend_json(std::FILE* f) {
    std::fprintf(f, "  \"backend\": {\"selected\": \"%s\", \"override\": ",
                 kernels::active().name);
    const std::string_view override_value = kernels::backend_override();
    if (override_value.empty()) {
        std::fprintf(f, "null");
    } else {
        std::fprintf(f, "\"%.*s\"", static_cast<int>(override_value.size()),
                     override_value.data());
    }
    std::fprintf(f, ", \"cpu\": \"%s\", \"compiled\": [",
                 cpu().to_string().c_str());
    const auto compiled = kernels::compiled_backends();
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        std::fprintf(f, "\"%s\"%s", compiled[i]->name,
                     i + 1 < compiled.size() ? ", " : "");
    }
    std::fprintf(f, "]},\n");
}

/// Percentile over an ascending-sorted latency vector (rounded
/// linear-interpolation rank: index round(p * (n - 1))).
double percentile_us(const std::vector<double>& sorted_us, double p) {
    if (sorted_us.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted_us.size() - 1);
    return sorted_us[static_cast<std::size_t>(rank + 0.5)];
}

/// Positive workload knob: env override clamped to at least 1 (zero would
/// be a modulo-by-zero or an empty measurement; negative values already
/// throw in env_int, the repo-wide convention).
std::size_t env_count(const char* name, std::int64_t fallback) {
    const std::int64_t value = env_int(name, fallback);
    return static_cast<std::size_t>(value < 1 ? 1 : value);
}

} // namespace

int main() {
    const std::size_t dim = env_count("UHD_BENCH_SERVE_DIM", 1024);
    const std::size_t clients = env_count("UHD_BENCH_SERVE_CLIENTS", 4);
    const std::size_t per_client = env_count("UHD_BENCH_SERVE_QUERIES", 2000);
    const std::size_t workers = env_count("UHD_BENCH_SERVE_WORKERS", 2);
    const std::size_t max_batch = env_count("UHD_BENCH_SERVE_BATCH", 32);
    const std::size_t updates = env_count("UHD_BENCH_SERVE_UPDATES", 512);
    const std::size_t publish_every =
        env_count("UHD_BENCH_SERVE_PUBLISH_EVERY", 16);
    const std::string json_path =
        env_string("UHD_BENCH_SERVE_JSON", "BENCH_serve.json");

    std::printf("# serve bench: backend=%s D=%zu clients=%zu x %zu queries, "
                "%zu workers, max_batch=%zu, %zu online updates\n",
                kernels::active().name, dim, clients, per_client, workers,
                max_batch, updates);

    // Model + workload: synthetic digits, binarized serving (the packed
    // associative-memory path the serve layer targets).
    const data::dataset train = data::make_synthetic_digits(1000, 42);
    const data::dataset stream = data::make_synthetic_digits(updates, 43);
    const data::dataset test = data::make_synthetic_digits(256, 44);
    core::uhd_config cfg;
    cfg.dim = dim;
    core::uhd_model model(cfg, train.shape(), train.num_classes(),
                          hdc::train_mode::raw_sums, hdc::query_mode::binarized);
    model.fit_parallel(train, &thread_pool::shared());

    // Pre-encode the query pool: this measures the serving stage, the
    // encode stage has its own bench (BENCH_encode.json).
    const std::vector<std::int32_t> pool =
        bench::encode_queries(model.encoder(), test, test.size());
    const auto query = [&](std::size_t i) {
        return std::span<const std::int32_t>(
            pool.data() + (i % test.size()) * dim, dim);
    };

    serve::engine_options options;
    options.workers = workers;
    options.max_batch = max_batch;
    serve::inference_engine engine(model.snapshot(), options);

    // Mixed load: clients hammer the engine while the trainer streams
    // online updates into its private model and publishes snapshots.
    std::vector<std::vector<double>> latencies_us(clients);
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    const auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
        client_threads.emplace_back([&, c] {
            auto& lat = latencies_us[c];
            lat.reserve(per_client);
            for (std::size_t q = 0; q < per_client; ++q) {
                const auto t0 = std::chrono::steady_clock::now();
                const std::size_t answer = engine.predict(query(c * 7919 + q));
                const auto t1 = std::chrono::steady_clock::now();
                if (answer >= train.num_classes()) std::abort(); // impossible
                lat.push_back(std::chrono::duration<double, std::micro>(t1 - t0)
                                  .count());
            }
        });
    }
    std::thread trainer([&] {
        for (std::size_t i = 0; i < stream.size(); ++i) {
            model.partial_fit(stream.image(i), stream.label(i));
            if ((i + 1) % publish_every == 0) engine.publish(model.snapshot());
        }
        engine.publish(model.snapshot());
    });
    for (auto& t : client_threads) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    trainer.join();

    // Counters first: the batch accounting must describe the mixed load
    // the throughput/latency numbers describe, not the sequential
    // verification pass below.
    const serve::serve_stats stats = engine.stats();

    // Quiesced correctness gate: the engine now serves the trainer's final
    // snapshot and must answer bit-identically to the model.
    std::size_t mismatches = 0;
    const hdc::inference_snapshot final_snapshot = model.snapshot();
    for (std::size_t i = 0; i < test.size(); ++i) {
        if (engine.predict(query(i)) != final_snapshot.predict_encoded(query(i))) {
            ++mismatches;
        }
    }
    engine.stop();

    std::vector<double> merged;
    for (const auto& lat : latencies_us) {
        merged.insert(merged.end(), lat.begin(), lat.end());
    }
    std::sort(merged.begin(), merged.end());
    const double p50 = percentile_us(merged, 0.50);
    const double p99 = percentile_us(merged, 0.99);
    const std::size_t total_queries = clients * per_client;
    const double throughput = wall_s > 0.0
                                  ? static_cast<double>(total_queries) / wall_s
                                  : 0.0;
    const double avg_batch =
        stats.batches == 0 ? 0.0
                           : static_cast<double>(stats.queries) /
                                 static_cast<double>(stats.batches);

    std::printf("# %.0f queries/s, p50 %.1f us, p99 %.1f us, %llu swaps, "
                "avg batch %.2f (max %llu), block utilization %.2f, "
                "%zu mismatches\n",
                throughput, p50, p99,
                static_cast<unsigned long long>(stats.snapshot_swaps), avg_batch,
                static_cast<unsigned long long>(stats.max_batch_observed),
                stats.block_utilization(), mismatches);
    // False-sharing note: each serve_counters field sits on its own cache
    // line; before the alignas(64) padding the packed 40-byte layout
    // measured ~10% lower best-of-7 qps on this workload (numbers in
    // serve_stats.hpp, next to the layout).
    std::printf("# serve_counters cache-line padded: sizeof=%zu bytes "
                "(packed layout would be %zu)\n",
                sizeof(serve::serve_counters), 5 * sizeof(std::uint64_t));

    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"serve\",\n");
    std::fprintf(f, "  \"schema_version\": 4,\n");
    std::fprintf(f,
                 "  \"workload\": {\"dim\": %zu, \"classes\": %zu, "
                 "\"clients\": %zu, \"queries_per_client\": %zu, "
                 "\"workers\": %zu, \"max_batch\": %zu, \"updates\": %zu, "
                 "\"publish_every\": %zu},\n",
                 dim, static_cast<std::size_t>(train.num_classes()), clients,
                 per_client, workers, max_batch, updates, publish_every);
    write_backend_json(f);
    std::fprintf(f,
                 "  \"results\": {\"throughput_qps\": %.1f, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f, \"queries\": %zu, \"seconds\": %.4f,\n",
                 throughput, p50, p99, total_queries, wall_s);
    std::fprintf(f,
                 "    \"snapshot_swaps\": %llu, \"batches\": %llu, "
                 "\"avg_batch\": %.2f, \"max_batch_observed\": %llu,\n",
                 static_cast<unsigned long long>(stats.snapshot_swaps),
                 static_cast<unsigned long long>(stats.batches), avg_batch,
                 static_cast<unsigned long long>(stats.max_batch_observed));
    // Schema v2: block-drain accounting. kernel_calls counts distance-engine
    // drain calls (1 per micro-batch on the block path); utilization =
    // queries / kernel_calls is the average number of requests each
    // query-GEMM kernel call answered.
    std::fprintf(f,
                 "    \"kernel_calls\": %llu, \"block_utilization\": %.2f,\n",
                 static_cast<unsigned long long>(stats.kernel_calls),
                 stats.block_utilization());
    std::fprintf(f, "    \"final_matches_trainer\": %s},\n",
                 mismatches == 0 ? "true" : "false");
    // Schema v3+: exactly one of "results" (in-process run, this binary) and
    // "wire" (loopback/sweep run, tools/uhd_loadgen) is non-null; the other
    // is null so consumers can tell the serve benches apart by shape. v4
    // added wire.mode / wire.scaling (reactor sweep) and the reactor +
    // encode-stage counters to the loadgen emission; this binary's shape is
    // unchanged.
    std::fprintf(f, "  \"wire\": null,\n");
    std::fprintf(f, "  \"gates\": {\"throughput_positive\": %s, "
                 "\"p99_ge_p50\": %s}\n",
                 throughput > 0.0 ? "true" : "false",
                 p99 >= p50 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());

    if (mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %zu serving answers diverged from the trainer's "
                     "final snapshot\n",
                     mismatches);
        return 1;
    }
    // p99 >= p50 holds by construction here (same sorted vector, monotone
    // rank) — CI re-asserts it on the emitted JSON as a schema contract.
    // The gates with detection power: every request produced a latency
    // sample, and the measurements are positive.
    if (throughput <= 0.0 || p50 <= 0.0 || merged.size() != total_queries) {
        std::fprintf(stderr,
                     "FAIL: implausible measurements (qps=%.1f, p50=%.2f, "
                     "%zu/%zu latency samples)\n",
                     throughput, p50, merged.size(), total_queries);
        return 1;
    }
    return 0;
}
