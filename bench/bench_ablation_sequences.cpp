// Ablation: which threshold-sequence family drives the uHD encoder best?
// Sobol (the paper's choice, contribution 1) vs Halton vs R2 vs LFSR
// pseudo-random vs xoshiro pseudo-random — identical datapath, identical
// quantization, only the threshold source changes.
//
// This isolates the paper's core claim that quasi-randomness (LD sequences)
// beats pseudo-randomness for deterministic single-pass encoding.
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/common/table.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/lowdisc/halton.hpp"
#include "uhd/lowdisc/lfsr.hpp"

namespace {

using namespace uhd;

// Build a pixels x dim quantized threshold bank from any unit-interval
// sequence source f(pixel, index).
ld::quantized_sobol_bank build_bank(std::size_t pixels, std::size_t dim, unsigned levels,
                                    const std::function<double(std::size_t, std::size_t)>& f) {
    std::vector<std::uint8_t> data(pixels * dim);
    for (std::size_t p = 0; p < pixels; ++p) {
        for (std::size_t d = 0; d < dim; ++d) {
            data[p * dim + d] = ld::quantize_unit(f(p, d), levels);
        }
    }
    return ld::quantized_sobol_bank::from_raw(pixels, dim, levels, std::move(data));
}

double run(const data::dataset& train, const data::dataset& test,
           core::uhd_config cfg, ld::quantized_sobol_bank bank) {
    const core::uhd_encoder enc(cfg, train.shape(), std::move(bank));
    hdc::hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(),
                                              hdc::train_mode::raw_sums,
                                              hdc::query_mode::integer);
    clf.fit(train);
    return clf.evaluate(test);
}

} // namespace

int main() {
    const auto w = uhd::bench::load_workload(1000, 300, 1);
    const auto [train, test] = uhd::bench::mnist_pair(w.train_n, w.test_n);
    const std::size_t pixels = train.shape().pixels();
    core::uhd_config cfg;
    cfg.dim = static_cast<std::size_t>(uhd::env_int("UHD_DIM", 1024));

    std::printf("== ablation: threshold sequence family (D=%zu, xi=%u) ==\n\n", cfg.dim,
                cfg.quant_levels);
    uhd::text_table table;
    table.set_header({"sequence family", "deterministic", "accuracy (%)"});

    // Sobol (the uHD design): scrambled and unscrambled.
    {
        const core::uhd_encoder enc(cfg, train.shape());
        uhd::hdc::hd_classifier<core::uhd_encoder> clf(
            enc, train.num_classes(), uhd::hdc::train_mode::raw_sums,
            uhd::hdc::query_mode::integer);
        clf.fit(train);
        table.add_row({"Sobol + digital shift (uHD)", "yes",
                       uhd::format_fixed(100.0 * clf.evaluate(test), 2)});
    }
    {
        core::uhd_config plain = cfg;
        plain.scramble = false;
        const core::uhd_encoder enc(plain, train.shape());
        uhd::hdc::hd_classifier<core::uhd_encoder> clf(
            enc, train.num_classes(), uhd::hdc::train_mode::raw_sums,
            uhd::hdc::query_mode::integer);
        clf.fit(train);
        table.add_row({"Sobol, unscrambled", "yes",
                       uhd::format_fixed(100.0 * clf.evaluate(test), 2)});
    }

    // Halton: dimension p uses the (p+1)-th prime base (degrades at high
    // dimension index — part of why the paper picks Sobol).
    {
        const uhd::ld::halton_sequence halton(pixels);
        const double accuracy =
            run(train, test, cfg,
                build_bank(pixels, cfg.dim, cfg.quant_levels,
                           [&](std::size_t p, std::size_t d) { return halton.at(d, p); }));
        table.add_row({"Halton (p-th prime base)", "yes",
                       uhd::format_fixed(100.0 * accuracy, 2)});
    }

    // R2 additive recurrence.
    {
        const uhd::ld::r2_sequence r2(pixels);
        const double accuracy =
            run(train, test, cfg,
                build_bank(pixels, cfg.dim, cfg.quant_levels,
                           [&](std::size_t p, std::size_t d) { return r2.at(d, p); }));
        table.add_row({"R2 additive recurrence", "yes",
                       uhd::format_fixed(100.0 * accuracy, 2)});
    }

    // LFSR pseudo-random thresholds (hardware-style randomness).
    {
        uhd::ld::lfsr reg(32, 0xBEEF, uhd::ld::lfsr_kind::fibonacci);
        std::vector<double> flat(pixels * cfg.dim);
        for (auto& v : flat) v = reg.next_unit();
        const double accuracy =
            run(train, test, cfg,
                build_bank(pixels, cfg.dim, cfg.quant_levels,
                           [&](std::size_t p, std::size_t d) {
                               return flat[p * cfg.dim + d];
                           }));
        table.add_row({"LFSR pseudo-random", "seeded",
                       uhd::format_fixed(100.0 * accuracy, 2)});
    }

    // Software PRNG thresholds.
    {
        uhd::xoshiro256ss rng(99);
        std::vector<double> flat(pixels * cfg.dim);
        for (auto& v : flat) v = rng.next_unit();
        const double accuracy =
            run(train, test, cfg,
                build_bank(pixels, cfg.dim, cfg.quant_levels,
                           [&](std::size_t p, std::size_t d) {
                               return flat[p * cfg.dim + d];
                           }));
        table.add_row({"xoshiro pseudo-random", "seeded",
                       uhd::format_fixed(100.0 * accuracy, 2)});
    }

    std::printf("%s\n", table.to_string().c_str());
    std::printf("reading: Sobol keeps full accuracy while being deterministic and\n");
    std::printf("storage-free to generate (contribution 1); unscrambled Halton collapses\n");
    std::printf("at high dimension index (why Sobol, not Halton). Pseudo-random\n");
    std::printf("thresholds can match accuracy in the integer-cosine regime but need a\n");
    std::printf("seed search for reliability (Fig. 6(a)) and an RNG in hardware, which\n");
    std::printf("is exactly the cost uHD's stored quantized Sobol bank removes.\n");
    return 0;
}
