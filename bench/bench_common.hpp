// Shared helpers for the table/figure bench harnesses.
//
// Benches run argument-less; workload sizes scale through UHD_* environment
// variables so the full paper-scale sweep is one command away:
//   UHD_TRAIN_N=60000 UHD_TEST_N=10000 UHD_ITERS=100 ./bench_table4_mnist
#ifndef UHD_BENCH_COMMON_HPP
#define UHD_BENCH_COMMON_HPP

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "uhd/common/config.hpp"
#include "uhd/common/stopwatch.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/idx.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/classifier.hpp"
#include "uhd/hdc/similarity.hpp"

namespace uhd::bench {

struct workload {
    std::size_t train_n;
    std::size_t test_n;
    std::size_t iters;
};

inline workload load_workload(std::size_t default_train = 1000,
                              std::size_t default_test = 300,
                              std::size_t default_iters = 5) {
    workload w{};
    w.train_n = static_cast<std::size_t>(env_int("UHD_TRAIN_N",
                                                 static_cast<std::int64_t>(default_train)));
    w.test_n = static_cast<std::size_t>(env_int("UHD_TEST_N",
                                                static_cast<std::int64_t>(default_test)));
    w.iters = static_cast<std::size_t>(env_int("UHD_ITERS",
                                               static_cast<std::int64_t>(default_iters)));
    return w;
}

/// MNIST train/test pair: real IDX files when available, synthetic analogue
/// otherwise. Returns (train, test, used_real).
inline std::pair<data::dataset, data::dataset> mnist_pair(std::size_t train_n,
                                                          std::size_t test_n,
                                                          bool* used_real = nullptr) {
    const std::string dir = env_string("UHD_MNIST_DIR", "data/mnist");
    if (auto real = data::try_load_mnist(dir)) {
        if (used_real != nullptr) *used_real = true;
        std::printf("# using real MNIST from %s\n", dir.c_str());
        return std::move(*real);
    }
    if (used_real != nullptr) *used_real = false;
    return {data::make_synthetic_digits(train_n, 42),
            data::make_synthetic_digits(test_n, 4242)};
}

// --- shared encode-throughput measurement ---------------------------------
//
// One definition of the metric for every bench that reports encode
// throughput: effective bytes per image are the threshold-bank bytes the
// compare loop touches (pixels x dim), and the scalar baseline is always
// the pinned-scalar oracle encode_scalar().

/// Bank bytes the encode compare loop reads per image.
inline double encode_bytes_per_image(const core::uhd_encoder& enc) {
    return static_cast<double>(enc.pixels()) * static_cast<double>(enc.dim());
}

/// Seconds to encode the first `n` dataset images through the pinned
/// scalar oracle (the speedup baseline).
inline double time_encode_scalar(const core::uhd_encoder& enc,
                                 const data::dataset& ds, std::size_t n) {
    std::vector<std::int32_t> acc(enc.dim());
    stopwatch watch;
    for (std::size_t i = 0; i < n; ++i) enc.encode_scalar(ds.image(i), acc);
    return watch.seconds();
}

/// Seconds to encode the first `n` dataset images through the
/// word-parallel single-image path.
inline double time_encode_parallel(const core::uhd_encoder& enc,
                                   const data::dataset& ds, std::size_t n) {
    std::vector<std::int32_t> acc(enc.dim());
    stopwatch watch;
    for (std::size_t i = 0; i < n; ++i) enc.encode(ds.image(i), acc);
    return watch.seconds();
}

/// Seconds to encode the first `n` dataset images through encode_batch
/// (optionally pool-parallel). `out` must hold n * dim() accumulators.
inline double time_encode_batch(const core::uhd_encoder& enc, const data::dataset& ds,
                                std::size_t n, std::span<std::int32_t> out,
                                thread_pool* pool = nullptr) {
    stopwatch watch;
    if (n == ds.size()) {
        enc.encode_batch(ds, out, pool);
    } else {
        std::vector<std::uint8_t> flat;
        flat.reserve(n * ds.shape().pixels());
        for (std::size_t i = 0; i < n; ++i) {
            const auto img = ds.image(i);
            flat.insert(flat.end(), img.begin(), img.end());
        }
        watch.reset(); // exclude the staging copy from the measurement
        enc.encode_batch(flat, n, out, pool);
    }
    return watch.seconds();
}

// --- shared train-throughput measurement ----------------------------------

/// Seconds for the seed-era sequential training loop over the first `n`
/// dataset images: per-image pinned-scalar-oracle encode + bundle into the
/// class accumulator, then per-class sign binarization. One definition of
/// the baseline every training speedup is measured against.
inline double time_fit_seed(const core::uhd_encoder& enc, const data::dataset& ds,
                            std::size_t n) {
    stopwatch watch;
    std::vector<hdc::accumulator> acc(ds.num_classes(), hdc::accumulator(enc.dim()));
    std::vector<std::int32_t> scratch(enc.dim());
    for (std::size_t i = 0; i < n; ++i) {
        enc.encode_scalar(ds.image(i), scratch);
        acc[ds.label(i)].add_values(scratch);
    }
    std::size_t sink = 0;
    for (const auto& a : acc) sink += a.sign().count_negative();
    if (sink == static_cast<std::size_t>(-1)) std::printf("#\n"); // keep sink live
    return watch.seconds();
}

// --- shared inference-throughput measurement ------------------------------
//
// One definition of the inference baselines for every bench that reports
// predict throughput. Queries are pre-encoded (the encode stage has its own
// benchmarks), so these time the pure inference stage: binarize + argmax.
// The scalar baselines reproduce the seed-era predict exactly: per-element
// set_bit binarization + one cosine() call per class (binarized mode), and
// a per-class double-accumulating cosine scan (integer mode).

/// Same trained state as `src` under a different query mode, without a
/// second training pass (accumulators copied through load_state).
template <typename Encoder>
hdc::hd_classifier<Encoder> clone_with_query_mode(
    const hdc::hd_classifier<Encoder>& src, hdc::query_mode qm) {
    hdc::hd_classifier<Encoder> out(src.encoder(), src.classes(), src.mode(), qm);
    std::vector<hdc::accumulator> accs;
    accs.reserve(src.classes());
    for (std::size_t c = 0; c < src.classes(); ++c) {
        accs.push_back(src.class_accumulator(c));
    }
    out.load_state(std::move(accs));
    return out;
}

/// Pre-encode the first `n` dataset images into one flat buffer
/// (n * dim() accumulators, image-major).
inline std::vector<std::int32_t> encode_queries(const core::uhd_encoder& enc,
                                                const data::dataset& ds,
                                                std::size_t n) {
    std::vector<std::int32_t> out(n * enc.dim());
    std::vector<std::uint8_t> flat;
    flat.reserve(n * ds.shape().pixels());
    for (std::size_t i = 0; i < n; ++i) {
        const auto img = ds.image(i);
        flat.insert(flat.end(), img.begin(), img.end());
    }
    enc.encode_batch(flat, n, out);
    return out;
}

/// Seed-era binarized inference over a pre-encoded query: per-element
/// set_bit + per-class cosine, strict-> first-wins argmax.
template <typename Classifier>
std::size_t seed_predict_binarized(const Classifier& clf,
                                   std::span<const std::int32_t> encoded) {
    bs::bitstream bits(encoded.size());
    for (std::size_t d = 0; d < encoded.size(); ++d) {
        if (encoded[d] < 0) bits.set_bit(d, true);
    }
    const hdc::hypervector query(std::move(bits));
    std::size_t best = 0;
    double best_similarity = -2.0;
    for (std::size_t c = 0; c < clf.classes(); ++c) {
        const double similarity = hdc::cosine(query, clf.class_hypervector(c));
        if (similarity > best_similarity) {
            best_similarity = similarity;
            best = c;
        }
    }
    return best;
}

/// Seed-era integer inference over a pre-encoded query: one
/// double-accumulating cosine() per class.
template <typename Classifier>
std::size_t seed_predict_integer(const Classifier& clf,
                                 std::span<const std::int32_t> encoded) {
    std::size_t best = 0;
    double best_similarity = -2.0;
    for (std::size_t c = 0; c < clf.classes(); ++c) {
        const double similarity =
            hdc::cosine(encoded, clf.class_accumulator(c).values());
        if (similarity > best_similarity) {
            best_similarity = similarity;
            best = c;
        }
    }
    return best;
}

/// Time `predict(query_index)` over the pre-encoded query set, repeating
/// full passes until `min_seconds` of work accumulates. Returns seconds per
/// query; `sink` accumulates predictions so the loop cannot be elided.
template <typename Fn>
double time_inference(std::size_t queries, const Fn& predict, std::size_t& sink,
                      double min_seconds = 0.05) {
    std::size_t done = 0;
    stopwatch watch;
    do {
        for (std::size_t i = 0; i < queries; ++i) sink += predict(i);
        done += queries;
    } while (watch.seconds() < min_seconds);
    return watch.seconds() / static_cast<double>(done);
}

} // namespace uhd::bench

#endif // UHD_BENCH_COMMON_HPP
