// Shared helpers for the table/figure bench harnesses.
//
// Benches run argument-less; workload sizes scale through UHD_* environment
// variables so the full paper-scale sweep is one command away:
//   UHD_TRAIN_N=60000 UHD_TEST_N=10000 UHD_ITERS=100 ./bench_table4_mnist
#ifndef UHD_BENCH_COMMON_HPP
#define UHD_BENCH_COMMON_HPP

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "uhd/common/config.hpp"
#include "uhd/common/stopwatch.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/idx.hpp"
#include "uhd/data/synthetic.hpp"

namespace uhd::bench {

struct workload {
    std::size_t train_n;
    std::size_t test_n;
    std::size_t iters;
};

inline workload load_workload(std::size_t default_train = 1000,
                              std::size_t default_test = 300,
                              std::size_t default_iters = 5) {
    workload w{};
    w.train_n = static_cast<std::size_t>(env_int("UHD_TRAIN_N",
                                                 static_cast<std::int64_t>(default_train)));
    w.test_n = static_cast<std::size_t>(env_int("UHD_TEST_N",
                                                static_cast<std::int64_t>(default_test)));
    w.iters = static_cast<std::size_t>(env_int("UHD_ITERS",
                                               static_cast<std::int64_t>(default_iters)));
    return w;
}

/// MNIST train/test pair: real IDX files when available, synthetic analogue
/// otherwise. Returns (train, test, used_real).
inline std::pair<data::dataset, data::dataset> mnist_pair(std::size_t train_n,
                                                          std::size_t test_n,
                                                          bool* used_real = nullptr) {
    const std::string dir = env_string("UHD_MNIST_DIR", "data/mnist");
    if (auto real = data::try_load_mnist(dir)) {
        if (used_real != nullptr) *used_real = true;
        std::printf("# using real MNIST from %s\n", dir.c_str());
        return std::move(*real);
    }
    if (used_real != nullptr) *used_real = false;
    return {data::make_synthetic_digits(train_n, 42),
            data::make_synthetic_digits(test_n, 4242)};
}

// --- shared encode-throughput measurement ---------------------------------
//
// One definition of the metric for every bench that reports encode
// throughput: effective bytes per image are the threshold-bank bytes the
// compare loop touches (pixels x dim), and the scalar baseline is always
// the pinned-scalar oracle encode_scalar().

/// Bank bytes the encode compare loop reads per image.
inline double encode_bytes_per_image(const core::uhd_encoder& enc) {
    return static_cast<double>(enc.pixels()) * static_cast<double>(enc.dim());
}

/// Seconds to encode the first `n` dataset images through the pinned
/// scalar oracle (the speedup baseline).
inline double time_encode_scalar(const core::uhd_encoder& enc,
                                 const data::dataset& ds, std::size_t n) {
    std::vector<std::int32_t> acc(enc.dim());
    stopwatch watch;
    for (std::size_t i = 0; i < n; ++i) enc.encode_scalar(ds.image(i), acc);
    return watch.seconds();
}

/// Seconds to encode the first `n` dataset images through the
/// word-parallel single-image path.
inline double time_encode_parallel(const core::uhd_encoder& enc,
                                   const data::dataset& ds, std::size_t n) {
    std::vector<std::int32_t> acc(enc.dim());
    stopwatch watch;
    for (std::size_t i = 0; i < n; ++i) enc.encode(ds.image(i), acc);
    return watch.seconds();
}

/// Seconds to encode the first `n` dataset images through encode_batch
/// (optionally pool-parallel). `out` must hold n * dim() accumulators.
inline double time_encode_batch(const core::uhd_encoder& enc, const data::dataset& ds,
                                std::size_t n, std::span<std::int32_t> out,
                                thread_pool* pool = nullptr) {
    stopwatch watch;
    if (n == ds.size()) {
        enc.encode_batch(ds, out, pool);
    } else {
        std::vector<std::uint8_t> flat;
        flat.reserve(n * ds.shape().pixels());
        for (std::size_t i = 0; i < n; ++i) {
            const auto img = ds.image(i);
            flat.insert(flat.end(), img.begin(), img.end());
        }
        watch.reset(); // exclude the staging copy from the measurement
        enc.encode_batch(flat, n, out, pool);
    }
    return watch.seconds();
}

} // namespace uhd::bench

#endif // UHD_BENCH_COMMON_HPP
