// The paper's three in-text design checkpoints, from the gate-level model
// plus measured datapath activity:
//  [1] energy to generate one operand-stream bit: conventional counter+
//      comparator generator vs the proposed UST fetch (Fig. 3(b) vs (c)),
//  [2] hypervector-generation comparator energy per HV: conventional binary
//      comparators vs the proposed unary comparator (Fig. 4),
//  [3] accumulate-and-binarize energy per image feature: popcount+subtractor
//      vs the proposed popcount+masking logic (Fig. 5).
#include <cstdio>

#include "uhd/common/table.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hw/report.hpp"
#include "uhd/sim/baseline_datapath.hpp"
#include "uhd/sim/uhd_datapath.hpp"

int main() {
    using namespace uhd;
    const hw::hdc_cost_model model;
    hw::design_point p; // D = 1K, H = 784, the paper's checkpoint config

    std::printf("== design checkpoints (D=1K, H=784, generic 45nm) ==\n\n");
    text_table table;
    table.set_header({"checkpoint", "baseline", "uHD", "ratio", "paper ratio"});

    const double gen_base = model.baseline_bitgen_energy_fj(p);
    const double gen_uhd = model.uhd_bitgen_energy_fj(p);
    table.add_row({"[1] stream generation (fJ/bit)", format_fixed(gen_base, 2),
                   format_fixed(gen_uhd, 2), format_ratio(gen_base / gen_uhd),
                   "217x (167 fJ vs 0.77 fJ)"});

    const double cmp_base = model.baseline_comparator_energy_pj_per_hv(p);
    const double cmp_uhd = model.uhd_comparator_energy_pj_per_hv(p);
    table.add_row({"[2] comparator (pJ/HV)", format_fixed(cmp_base, 2),
                   format_fixed(cmp_uhd, 2), format_ratio(cmp_base / cmp_uhd),
                   "10.4x (2.49 pJ vs 0.24 pJ)"});

    const double acc_base = model.baseline_accbin_energy_pj_per_feature(p);
    const double acc_uhd = model.uhd_accbin_energy_pj_per_feature(p);
    table.add_row({"[3] accum+binarize (pJ/feature)", format_fixed(acc_base, 2),
                   format_fixed(acc_uhd, 2), format_ratio(acc_base / acc_uhd),
                   "2.0x (68.7 pJ vs 34.7 pJ)"});
    std::printf("%s\n", table.to_string().c_str());

    // Activity cross-check from the bit-serial datapath simulation.
    std::printf("== measured datapath activity (one 28x28 image, D=1K) ==\n");
    const auto ds = data::make_synthetic_digits(1, 3);
    core::uhd_config ucfg;
    ucfg.dim = 1024;
    const core::uhd_encoder uenc(ucfg, ds.shape());
    sim::event_counts ue;
    (void)sim::uhd_datapath_sim(uenc).run(ds.image(0), &ue);
    hdc::baseline_config bcfg;
    bcfg.dim = 1024;
    const hdc::baseline_encoder benc(bcfg, ds.shape());
    sim::event_counts be;
    (void)sim::baseline_datapath_sim(benc).run(ds.image(0), &be);
    std::printf("  uHD:      %s\n", ue.to_string().c_str());
    std::printf("  baseline: %s\n", be.to_string().c_str());
    std::printf("\nreproduced claim: the proposed module wins each checkpoint; the\n");
    std::printf("generation stage dominates the gap, the binarizer saves ~2x.\n");
    return 0;
}
