// Ablation (extension): AdaptHD-style retraining on top of uHD's single
// pass. The paper compares against w/-retrain prior art (Fig. 6(b)) but
// keeps uHD retraining-free; this bench measures what retraining buys.
#include <cstdio>

#include "bench_common.hpp"
#include "uhd/common/table.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/hdc/classifier.hpp"

int main() {
    using namespace uhd;
    const auto w = bench::load_workload(1000, 300, 1);
    const auto [train, test] = bench::mnist_pair(w.train_n, w.test_n);
    const auto dim = static_cast<std::size_t>(env_int("UHD_DIM", 1024));

    std::printf("== ablation: perceptron-style retraining epochs (uHD, D=%zu) ==\n\n", dim);
    core::uhd_config cfg;
    cfg.dim = dim;
    const core::uhd_encoder enc(cfg, train.shape());
    hdc::hd_classifier<core::uhd_encoder> clf(enc, train.num_classes(),
                                              hdc::train_mode::raw_sums,
                                              hdc::query_mode::integer);
    clf.fit(train);

    text_table table;
    table.set_header({"epochs", "train acc (%)", "test acc (%)", "updates"});
    table.add_row({"0 (single-pass uHD)", format_fixed(100.0 * clf.evaluate(train), 2),
                   format_fixed(100.0 * clf.evaluate(test), 2), "-"});
    std::size_t total_epochs = 0;
    for (const std::size_t step : {1u, 2u, 2u}) {
        const std::size_t updates = clf.retrain(train, step);
        total_epochs += step;
        table.add_row({std::to_string(total_epochs),
                       format_fixed(100.0 * clf.evaluate(train), 2),
                       format_fixed(100.0 * clf.evaluate(test), 2),
                       std::to_string(updates)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("context: the paper's Fig. 6(b) w/-retrain systems reach ~88%% at 10K;\n");
    std::printf("uHD stays competitive without retraining, and a few epochs close any\n");
    std::printf("residual gap at the cost of train-time hardware the paper avoids.\n");
    return 0;
}
