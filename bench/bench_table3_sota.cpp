// Table III reproduction: whole-system energy-efficiency of this work
// compared against the published SOTA HDC frameworks' reported ratios.
//
// The framework rows are literature constants (each framework's reported
// efficiency over its own reference baseline, collected by the surveys the
// paper cites); "This work" is measured from our gate-level model as the
// full-system baseline/uHD energy ratio per image, including memory
// accesses, generation, binding, bundling and binarization.
#include <cstdio>

#include "uhd/common/table.hpp"
#include "uhd/hw/report.hpp"

int main() {
    using namespace uhd;
    const hw::hdc_cost_model model;
    hw::design_point p; // D = 1K, H = 784 (the paper's headline point)

    const double measured = model.system_efficiency_ratio(p);

    std::printf("== Table III: energy efficiency over baseline architectures ==\n\n");
    text_table table;
    table.set_header({"HDC framework", "platform", "energy efficiency"});
    table.add_row({"Semi-HD [21]", "Raspberry Pi", "12.60x"});
    table.add_row({"Voice-HD [22]", "Central Processing Unit", "11.90x"});
    table.add_row({"tiny-HD [23]", "Microprocessor", "11.20x"});
    table.add_row({"PULP-HD [24]", "ARM Microprocessor", "9.9x"});
    table.add_row({"Hierarchical-MHD [25]", "Central Processing Unit", "6.60x"});
    table.add_row({"AdaptHD [26]", "Raspberry Pi", "6.30x"});
    table.add_row({"Laelaps [27]", "Central Processing Unit", "1.40x"});
    table.add_rule();
    table.add_row({"This work (paper)", "ARM Microprocessor", "31.83x"});
    table.add_row({"This work (measured, gate model)", "generic 45nm model",
                   format_ratio(measured, 2)});
    std::printf("%s\n", table.to_string().c_str());
    std::printf("framework rows are reported constants from the surveys [19], [20];\n");
    std::printf("the measured row is this library's baseline/uHD per-image energy ratio\n");
    std::printf("at D=1K, H=784. The reproduced claim: uHD clears every SOTA ratio.\n");
    return 0;
}
