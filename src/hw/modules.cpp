#include "uhd/hw/modules.hpp"

#include "uhd/common/bits.hpp"
#include "uhd/common/error.hpp"
#include "uhd/lowdisc/lfsr.hpp"

namespace uhd::hw {
namespace {

// Append `count` copies of `kind` to a critical path.
void path_repeat(std::vector<cell_kind>& path, cell_kind kind, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) path.push_back(kind);
}

} // namespace

hw_module make_unary_comparator(std::size_t stream_bits) {
    UHD_REQUIRE(stream_bits >= 2, "comparator needs at least 2 stream bits");
    hw_module m;
    m.name = "unary_comparator_N" + std::to_string(stream_bits);
    m.cells.add(cell_kind::and2, stream_bits);      // bit-wise minimum
    m.cells.add(cell_kind::inv, stream_bits);       // NOT of 2nd operand
    m.cells.add(cell_kind::or2, stream_bits);       // min OR ~B
    m.cells.add(cell_kind::and2, stream_bits - 1);  // N-input AND reduce tree
    m.critical_path = {cell_kind::and2, cell_kind::or2};
    path_repeat(m.critical_path, cell_kind::and2,
                static_cast<std::size_t>(ceil_log2(stream_bits)));
    // Thermometer operands keep most gate outputs static; only the bits
    // between the two operand values toggle between operations (expected
    // |a - b| ~ N/3 boundary bits across the three gate stages).
    m.activity = 0.15;
    return m;
}

hw_module make_binary_comparator(unsigned bits) {
    UHD_REQUIRE(bits >= 1, "comparator needs at least 1 bit");
    hw_module m;
    m.name = "binary_comparator_M" + std::to_string(bits);
    // Ripple magnitude comparator: per bit an XNOR (equality), an AND
    // (propagate) and an OR (greater-resolve), plus an inverter.
    m.cells.add(cell_kind::xnor2, bits);
    m.cells.add(cell_kind::and2, bits);
    m.cells.add(cell_kind::or2, bits);
    m.cells.add(cell_kind::inv, bits);
    m.critical_path = {cell_kind::xnor2};
    path_repeat(m.critical_path, cell_kind::and2, bits);
    path_repeat(m.critical_path, cell_kind::or2, bits);
    // Binary-radix operands flip about half the gates every comparison.
    m.activity = 0.5;
    return m;
}

hw_module make_counter(unsigned bits) {
    UHD_REQUIRE(bits >= 1, "counter needs at least 1 bit");
    hw_module m;
    m.name = "counter_M" + std::to_string(bits);
    m.cells.add(cell_kind::dff, bits);
    m.cells.add(cell_kind::half_adder, bits); // increment ripple
    path_repeat(m.critical_path, cell_kind::half_adder, bits);
    m.critical_path.push_back(cell_kind::dff);
    // An incrementing counter toggles ~2 bits per step on average.
    m.activity = bits == 0 ? 0.0 : 2.0 / static_cast<double>(bits);
    if (m.activity > 1.0) m.activity = 1.0;
    return m;
}

hw_module make_counter_comparator_generator(unsigned bits) {
    hw_module counter = make_counter(bits);
    hw_module comparator = make_binary_comparator(bits);
    hw_module m;
    m.name = "counter_comparator_gen_M" + std::to_string(bits);
    m.cells.add(counter.cells);
    m.cells.add(comparator.cells);
    m.critical_path = counter.critical_path;
    m.critical_path.insert(m.critical_path.end(), comparator.critical_path.begin(),
                           comparator.critical_path.end());
    // Weighted blend of the two sub-modules' activities.
    const auto& lib = cell_library::generic_45nm();
    const double total = counter.cells.full_toggle_energy_fj(lib) +
                         comparator.cells.full_toggle_energy_fj(lib);
    m.activity = (counter.energy_per_op_fj(lib) + comparator.energy_per_op_fj(lib)) / total;
    return m;
}

hw_module make_lfsr(unsigned width) {
    hw_module m;
    m.name = "lfsr_W" + std::to_string(width);
    const auto taps = ld::maximal_taps(width);
    m.cells.add(cell_kind::dff, width);
    m.cells.add(cell_kind::xor2, taps.size() - 1);
    path_repeat(m.critical_path, cell_kind::xor2,
                static_cast<std::size_t>(ceil_log2(taps.size())));
    m.critical_path.push_back(cell_kind::dff);
    // Every stage shifts each cycle: DFFs toggle with probability ~0.5.
    m.activity = 0.5;
    return m;
}

hw_module make_ust_decoder(std::size_t levels) {
    UHD_REQUIRE(levels >= 2, "UST needs at least two levels");
    hw_module m;
    const auto address_bits = static_cast<std::size_t>(ceil_log2(levels));
    m.name = "ust_decoder_L" + std::to_string(levels);
    m.cells.add(cell_kind::inv, address_bits);
    // One-hot decode: each of `levels` outputs ANDs address_bits literals.
    m.cells.add(cell_kind::and2, levels * (address_bits - 1));
    m.critical_path = {cell_kind::inv};
    path_repeat(m.critical_path, cell_kind::and2, address_bits - 1);
    // Exactly one word line rises and one falls per fetch.
    m.activity = 2.0 / static_cast<double>(levels);
    return m;
}

hw_module make_xor_binder() {
    hw_module m;
    m.name = "xor_binder";
    m.cells.add(cell_kind::xor2, 1);
    m.critical_path = {cell_kind::xor2};
    m.activity = 0.5;
    return m;
}

hw_module make_popcount_mask_binarizer(std::size_t inputs) {
    UHD_REQUIRE(inputs >= 1, "binarizer needs at least one input");
    hw_module m;
    const auto counter_bits = static_cast<unsigned>(ceil_log2(inputs + 1));
    m.name = "popcount_mask_binarizer_H" + std::to_string(inputs);
    const hw_module counter = make_counter(counter_bits);
    m.cells.add(counter.cells);
    m.cells.add(cell_kind::and2, counter_bits - 1); // hard-wired masking AND
    m.cells.add(cell_kind::dff, 1);                 // sign latch
    m.critical_path = counter.critical_path;
    path_repeat(m.critical_path, cell_kind::and2,
                static_cast<std::size_t>(ceil_log2(counter_bits)));
    m.activity = counter.activity;
    return m;
}

hw_module make_popcount_subtract_binarizer(std::size_t inputs) {
    UHD_REQUIRE(inputs >= 1, "binarizer needs at least one input");
    hw_module m;
    const auto counter_bits = static_cast<unsigned>(ceil_log2(inputs + 1));
    m.name = "popcount_subtract_binarizer_H" + std::to_string(inputs);
    const hw_module counter = make_counter(counter_bits);
    m.cells.add(counter.cells);
    // Separate threshold stage: a full subtractor (FA per bit with inverted
    // operand), the threshold register, and the sign latch.
    m.cells.add(cell_kind::full_adder, counter_bits);
    m.cells.add(cell_kind::inv, counter_bits);
    m.cells.add(cell_kind::dff, counter_bits); // threshold register
    m.cells.add(cell_kind::dff, 1);            // sign latch
    m.critical_path = counter.critical_path;
    path_repeat(m.critical_path, cell_kind::full_adder, counter_bits);
    m.activity = counter.activity;
    return m;
}

} // namespace uhd::hw
