#include "uhd/hw/module.hpp"

#include "uhd/common/error.hpp"

namespace uhd::hw {

void cell_counts::add(cell_kind kind, std::size_t count) {
    const auto index = static_cast<std::size_t>(kind);
    UHD_REQUIRE(index < cell_kind_count, "invalid cell kind");
    counts_[index] += count;
}

void cell_counts::add(const cell_counts& other, std::size_t times) {
    for (std::size_t i = 0; i < cell_kind_count; ++i) {
        counts_[i] += other.counts_[i] * times;
    }
}

std::size_t cell_counts::count(cell_kind kind) const {
    const auto index = static_cast<std::size_t>(kind);
    UHD_REQUIRE(index < cell_kind_count, "invalid cell kind");
    return counts_[index];
}

std::size_t cell_counts::total() const noexcept {
    std::size_t sum = 0;
    for (const auto c : counts_) sum += c;
    return sum;
}

double cell_counts::area_um2(const cell_library& library) const {
    double area = 0.0;
    for (std::size_t i = 0; i < cell_kind_count; ++i) {
        area += static_cast<double>(counts_[i]) *
                library.spec(static_cast<cell_kind>(i)).area_um2;
    }
    return area;
}

double cell_counts::full_toggle_energy_fj(const cell_library& library) const {
    double energy = 0.0;
    for (std::size_t i = 0; i < cell_kind_count; ++i) {
        energy += static_cast<double>(counts_[i]) *
                  library.spec(static_cast<cell_kind>(i)).energy_fj;
    }
    return energy;
}

double hw_module::delay_ps(const cell_library& library) const {
    double delay = 0.0;
    for (const cell_kind kind : critical_path) delay += library.spec(kind).delay_ps;
    return delay;
}

memory_model memory_model::bram(std::string name, std::size_t bits) {
    memory_model m;
    m.name = std::move(name);
    m.bits = bits;
    m.read_energy_fj_per_bit = 2.0;  // block RAM access, amortized per bit
    m.write_energy_fj_per_bit = 2.6;
    m.area_um2_per_bit = 0.35;       // dense SRAM macro
    m.access_delay_ps = 450.0;
    return m;
}

memory_model memory_model::regfile(std::string name, std::size_t bits) {
    memory_model m;
    m.name = std::move(name);
    m.bits = bits;
    m.read_energy_fj_per_bit = 0.4;  // local register read (mux tree)
    m.write_energy_fj_per_bit = 2.5; // DFF clock energy
    m.area_um2_per_bit = 4.52;       // one DFF per bit
    m.access_delay_ps = 120.0;
    return m;
}

} // namespace uhd::hw
