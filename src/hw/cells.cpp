#include "uhd/hw/cells.hpp"

#include "uhd/common/error.hpp"

namespace uhd::hw {

const cell_library& cell_library::generic_45nm() {
    // Representative NanGate FreePDK45-class values (typical corner).
    static const cell_spec specs[cell_kind_count] = {
        /* inv        */ {"INV_X1", 0.80, 0.7, 12.0, 1},
        /* nand2      */ {"NAND2_X1", 1.06, 0.8, 15.0, 2},
        /* nor2       */ {"NOR2_X1", 1.06, 0.8, 18.0, 2},
        /* and2       */ {"AND2_X1", 1.33, 1.0, 20.0, 2},
        /* or2        */ {"OR2_X1", 1.33, 1.0, 20.0, 2},
        /* xor2       */ {"XOR2_X1", 2.13, 1.6, 30.0, 2},
        /* xnor2      */ {"XNOR2_X1", 2.13, 1.6, 30.0, 2},
        /* mux2       */ {"MUX2_X1", 1.86, 1.3, 25.0, 3},
        /* half_adder */ {"HA_X1", 3.19, 2.2, 35.0, 2},
        /* full_adder */ {"FA_X1", 4.79, 3.2, 50.0, 3},
        /* dff        */ {"DFF_X1", 4.52, 2.5, 90.0, 2},
    };
    static const cell_library library("generic-45nm", specs);
    return library;
}

const cell_spec& cell_library::spec(cell_kind kind) const {
    const auto index = static_cast<std::size_t>(kind);
    UHD_REQUIRE(index < cell_kind_count, "invalid cell kind");
    return specs_[index];
}

} // namespace uhd::hw
