#include "uhd/hw/netlist.hpp"

#include "uhd/common/bits.hpp"
#include "uhd/common/error.hpp"

namespace uhd::hw {
namespace {

// Built with append rather than operator+: GCC 12 miscompiles the warning
// analysis of the inlined operator+(const char*, std::string&&) chain and
// emits a bogus -Werror=restrict from libstdc++'s char_traits (PR105651),
// which would fail clean -Werror builds on stock GCC 12.
std::string indexed_name(char prefix, std::size_t index) {
    std::string name(1, prefix);
    name += std::to_string(index);
    return name;
}

} // namespace

net_id netlist::add_input(std::string name) {
    UHD_REQUIRE(gates_.empty(), "add all inputs before the first gate");
    (void)name; // names retained for future waveform dumping; id is the handle
    const net_id id = static_cast<net_id>(values_.size());
    values_.push_back(false);
    ++inputs_;
    return id;
}

net_id netlist::add_gate(cell_kind kind, std::vector<net_id> fanin) {
    UHD_REQUIRE(kind != cell_kind::dff, "netlist simulator is combinational only");
    const auto& spec = cell_library::generic_45nm().spec(kind);
    UHD_REQUIRE(fanin.size() == spec.inputs,
                std::string("gate fan-in mismatch for ") + spec.name);
    for (const net_id in : fanin) {
        UHD_REQUIRE(in < values_.size(), "fan-in references unknown net");
    }
    const net_id out = static_cast<net_id>(values_.size());
    values_.push_back(false);
    gates_.push_back(gate{kind, std::move(fanin), out});
    per_gate_toggles_.push_back(0);
    return out;
}

void netlist::mark_output(net_id net) {
    UHD_REQUIRE(net < values_.size(), "unknown net");
    outputs_.push_back(net);
}

bool netlist::eval_gate(cell_kind kind, const std::vector<bool>& in) {
    switch (kind) {
        case cell_kind::inv: return !in[0];
        case cell_kind::nand2: return !(in[0] && in[1]);
        case cell_kind::nor2: return !(in[0] || in[1]);
        case cell_kind::and2: return in[0] && in[1];
        case cell_kind::or2: return in[0] || in[1];
        case cell_kind::xor2: return in[0] != in[1];
        case cell_kind::xnor2: return in[0] == in[1];
        case cell_kind::mux2: return in[2] ? in[1] : in[0]; // sel = in[2]
        case cell_kind::half_adder: return in[0] != in[1];  // sum bit
        case cell_kind::full_adder: return (in[0] != in[1]) != in[2];
        default: throw uhd::error("unsupported gate kind in netlist");
    }
}

void netlist::evaluate(const std::vector<bool>& input_values) {
    UHD_REQUIRE(input_values.size() == inputs_, "input vector size mismatch");
    for (std::size_t i = 0; i < inputs_; ++i) values_[i] = input_values[i];
    std::vector<bool> scratch;
    for (std::size_t g = 0; g < gates_.size(); ++g) {
        const gate& gg = gates_[g];
        scratch.clear();
        for (const net_id in : gg.fanin) scratch.push_back(values_[in]);
        const bool next = eval_gate(gg.kind, scratch);
        if (evaluations_ > 0 && next != values_[gg.output]) {
            ++toggles_;
            ++per_gate_toggles_[g];
        }
        values_[gg.output] = next;
    }
    ++evaluations_;
}

bool netlist::value(net_id net) const {
    UHD_REQUIRE(net < values_.size(), "unknown net");
    return values_[net];
}

double netlist::measured_activity() const {
    if (evaluations_ <= 1 || gates_.empty()) return 0.0;
    const double ops = static_cast<double>(evaluations_ - 1);
    return static_cast<double>(toggles_) / (ops * static_cast<double>(gates_.size()));
}

double netlist::measured_energy_per_op_fj(const cell_library& library) const {
    if (evaluations_ <= 1) return 0.0;
    double energy = 0.0;
    for (std::size_t g = 0; g < gates_.size(); ++g) {
        energy += static_cast<double>(per_gate_toggles_[g]) *
                  library.spec(gates_[g].kind).energy_fj;
    }
    return energy / static_cast<double>(evaluations_ - 1);
}

double netlist::area_um2(const cell_library& library) const {
    double area = 0.0;
    for (const gate& g : gates_) area += library.spec(g.kind).area_um2;
    return area;
}

void netlist::reset_stats() noexcept {
    toggles_ = 0;
    evaluations_ = 0;
    for (auto& t : per_gate_toggles_) t = 0;
}

unary_comparator_netlist::unary_comparator_netlist(std::size_t stream_bits) {
    UHD_REQUIRE(stream_bits >= 2, "comparator needs at least 2 stream bits");
    for (std::size_t i = 0; i < stream_bits; ++i) {
        data_inputs.push_back(circuit.add_input(indexed_name('a', i)));
    }
    for (std::size_t i = 0; i < stream_bits; ++i) {
        sobol_inputs.push_back(circuit.add_input(indexed_name('b', i)));
    }
    // Fig. 4: min = a AND b; check = min OR (NOT b); output = AND-reduce.
    std::vector<net_id> check_bits;
    for (std::size_t i = 0; i < stream_bits; ++i) {
        const net_id minimum = circuit.add_gate(cell_kind::and2,
                                                {data_inputs[i], sobol_inputs[i]});
        const net_id not_b = circuit.add_gate(cell_kind::inv, {sobol_inputs[i]});
        check_bits.push_back(circuit.add_gate(cell_kind::or2, {minimum, not_b}));
    }
    // Balanced AND reduction tree.
    while (check_bits.size() > 1) {
        std::vector<net_id> next;
        for (std::size_t i = 0; i + 1 < check_bits.size(); i += 2) {
            next.push_back(
                circuit.add_gate(cell_kind::and2, {check_bits[i], check_bits[i + 1]}));
        }
        if (check_bits.size() % 2 == 1) next.push_back(check_bits.back());
        check_bits = std::move(next);
    }
    output = check_bits.front();
    circuit.mark_output(output);
}

bool unary_comparator_netlist::compare(std::size_t data_value, std::size_t sobol_value) {
    const std::size_t n = data_inputs.size();
    UHD_REQUIRE(data_value <= n && sobol_value <= n, "value exceeds stream length");
    std::vector<bool> inputs(2 * n, false);
    // ones_trailing thermometer codes: value v sets the last v bits.
    for (std::size_t i = 0; i < data_value; ++i) inputs[n - 1 - i] = true;
    for (std::size_t i = 0; i < sobol_value; ++i) inputs[2 * n - 1 - i] = true;
    circuit.evaluate(inputs);
    return circuit.value(output);
}

binary_comparator_netlist::binary_comparator_netlist(unsigned bits) {
    UHD_REQUIRE(bits >= 1, "comparator needs at least 1 bit");
    for (unsigned i = 0; i < bits; ++i) {
        a_inputs.push_back(circuit.add_input(indexed_name('a', i)));
    }
    for (unsigned i = 0; i < bits; ++i) {
        b_inputs.push_back(circuit.add_input(indexed_name('b', i)));
    }
    // Ripple from LSB to MSB: geq_i = (a_i > b_i) OR (a_i == b_i AND geq_{i-1}).
    // a_i > b_i is a_i AND NOT b_i; start with geq_{-1} = 1 == (a >= b for
    // the empty suffix), realized by seeding with the LSB stage.
    net_id geq = 0;
    bool first = true;
    for (unsigned i = 0; i < bits; ++i) {
        const net_id not_b = circuit.add_gate(cell_kind::inv, {b_inputs[i]});
        const net_id gt = circuit.add_gate(cell_kind::and2, {a_inputs[i], not_b});
        const net_id eq = circuit.add_gate(cell_kind::xnor2, {a_inputs[i], b_inputs[i]});
        if (first) {
            // geq_0 = gt_0 OR eq_0 (a_0 >= b_0).
            geq = circuit.add_gate(cell_kind::or2, {gt, eq});
            first = false;
        } else {
            const net_id carry = circuit.add_gate(cell_kind::and2, {eq, geq});
            geq = circuit.add_gate(cell_kind::or2, {gt, carry});
        }
    }
    output = geq;
    circuit.mark_output(output);
}

bool binary_comparator_netlist::compare(std::uint64_t a, std::uint64_t b) {
    const std::size_t bits = a_inputs.size();
    std::vector<bool> inputs(2 * bits, false);
    for (std::size_t i = 0; i < bits; ++i) {
        inputs[i] = (a >> i) & 1u;
        inputs[bits + i] = (b >> i) & 1u;
    }
    circuit.evaluate(inputs);
    return circuit.value(output);
}

} // namespace uhd::hw
