// Gate-level builders for every datapath module in the paper (Figs. 3-5).
//
// Each builder returns an hw_module with an explicit cell inventory and
// critical path. The assemblies in uhd/hw/report.hpp compose these into the
// design points of Table II and the three in-text checkpoints.
#ifndef UHD_HW_MODULES_HPP
#define UHD_HW_MODULES_HPP

#include <cstddef>

#include "uhd/hw/module.hpp"

namespace uhd::hw {

/// Fig. 4 — the proposed unary comparator for N-bit thermometer streams:
/// N AND2 (bit-wise minimum), N INV + N OR2 (check against the inverted
/// second operand), and an (N-1)-gate AND reduction tree.
[[nodiscard]] hw_module make_unary_comparator(std::size_t stream_bits);

/// Conventional M-bit binary magnitude comparator (ripple structure:
/// per-bit XNOR equality + AND/OR chain). The baseline's generation
/// comparator and the Fig. 3(b) generator comparator.
[[nodiscard]] hw_module make_binary_comparator(unsigned bits);

/// M-bit binary up-counter (DFF + half-adder increment chain).
[[nodiscard]] hw_module make_counter(unsigned bits);

/// Fig. 3(b) — conventional unary stream generator: M-bit counter swept
/// against the M-bit input by a binary comparator.
[[nodiscard]] hw_module make_counter_comparator_generator(unsigned bits);

/// Maximal-length Fibonacci LFSR of `width` bits (the baseline's
/// pseudo-random source; Section IV).
[[nodiscard]] hw_module make_lfsr(unsigned width);

/// Fig. 3(c) — UST address decoder (one-hot decode of the M-bit scalar that
/// selects the pre-stored unary stream). The stored bits themselves are a
/// memory_model, not cells.
[[nodiscard]] hw_module make_ust_decoder(std::size_t levels);

/// Binding XOR for one hypervector bit (baseline only; uHD is
/// multiplier-less).
[[nodiscard]] hw_module make_xor_binder();

/// Fig. 5 — the proposed accumulate-and-binarize: popcount counter of
/// ceil(log2(H+1)) bits plus the hard-wired masking-logic AND and the sign
/// latch. No subtractor.
[[nodiscard]] hw_module make_popcount_mask_binarizer(std::size_t inputs);

/// Baseline accumulate-and-binarize: the same popcount counter followed by
/// a separate subtractor/comparator stage for thresholding.
[[nodiscard]] hw_module make_popcount_subtract_binarizer(std::size_t inputs);

} // namespace uhd::hw

#endif // UHD_HW_MODULES_HPP
