// Design-point cost assemblies: composes the Fig. 3-5 modules into the
// quantities the paper reports — the three in-text design checkpoints and
// the per-hypervector / per-image energy and area-delay rows of Table II.
//
// Conventions (mirroring the paper's accounting):
//  * "per HV" is the cost of generating one level hypervector of D bits
//    for one pixel (plus, for the baseline, the position hypervector and
//    the binding XOR that uHD eliminates).
//  * "per image" multiplies by H pixels and adds the accumulate-and-
//    binarize stage across D dimensions.
//  * The baseline is credited with a single generation pass (i = 1), as in
//    the paper's "fair comparison" note; the iterative search multiplies
//    its generation energy by i (exposed as baseline_iterations).
#ifndef UHD_HW_REPORT_HPP
#define UHD_HW_REPORT_HPP

#include <cstddef>

#include "uhd/hw/modules.hpp"

namespace uhd::hw {

/// Parameters of one hardware design point.
struct design_point {
    std::size_t dim = 1024;        ///< hypervector dimension D
    std::size_t pixels = 784;      ///< image size H (28x28)
    unsigned quant_levels = 16;    ///< xi (uHD scalar quantization)
    unsigned data_bits = 8;        ///< baseline intensity precision n
    std::size_t baseline_iterations = 1; ///< generation passes credited
};

/// Aggregated cost of one design at one point.
struct cost_summary {
    double energy_pj = 0.0;      ///< switching energy per unit of work
    double area_um2 = 0.0;       ///< placed cell + macro area
    double delay_ps = 0.0;       ///< critical-path delay
    /// Area x delay in m^2 * s (the unit Table II uses).
    [[nodiscard]] double area_delay_m2s() const noexcept {
        return area_um2 * 1e-12 * delay_ps * 1e-12;
    }
};

/// Cost model over a fixed cell library.
class hdc_cost_model {
public:
    explicit hdc_cost_model(const cell_library& library = cell_library::generic_45nm());

    // --- checkpoint 1: generating one bit of a hypervector operand stream --
    /// uHD: associative UST fetch (decoder + ROM read), amortized per bit.
    [[nodiscard]] double uhd_bitgen_energy_fj(const design_point& p) const;
    /// Baseline: conventional counter+comparator generator, per output bit.
    [[nodiscard]] double baseline_bitgen_energy_fj(const design_point& p) const;

    // --- checkpoint 2: the generation comparator, per hypervector ----------
    /// uHD: Fig. 4 unary comparator, D comparisons.
    [[nodiscard]] double uhd_comparator_energy_pj_per_hv(const design_point& p) const;
    /// Baseline: M-bit binary comparators for P and L, D comparisons each.
    [[nodiscard]] double baseline_comparator_energy_pj_per_hv(const design_point& p) const;

    // --- checkpoint 3: accumulate-and-binarize, per image feature ----------
    /// uHD: popcount + hard-wired masking logic, D dimensions per feature.
    [[nodiscard]] double uhd_accbin_energy_pj_per_feature(const design_point& p) const;
    /// Baseline: popcount + subtractor stage, D dimensions per feature.
    [[nodiscard]] double baseline_accbin_energy_pj_per_feature(const design_point& p) const;

    // --- Table II rows ------------------------------------------------------
    [[nodiscard]] cost_summary uhd_per_hv(const design_point& p) const;
    [[nodiscard]] cost_summary baseline_per_hv(const design_point& p) const;
    [[nodiscard]] cost_summary uhd_per_image(const design_point& p) const;
    [[nodiscard]] cost_summary baseline_per_image(const design_point& p) const;

    /// Whole-system energy ratio baseline/uHD per image (Table III's
    /// "energy efficiency" for this work).
    [[nodiscard]] double system_efficiency_ratio(const design_point& p) const;

    [[nodiscard]] const cell_library& library() const noexcept { return *library_; }

private:
    const cell_library* library_;
};

} // namespace uhd::hw

#endif // UHD_HW_REPORT_HPP
