// Gate-level netlist with event-driven evaluation and toggle counting.
//
// The inventory model in uhd/hw/module.hpp prices a module from cell counts
// and an assumed activity factor; this netlist simulator replaces the
// assumption with measurement: build the actual gate graph, drive it with
// real operand sequences, and count output transitions per gate. The
// measured toggle rate of the Fig. 4 unary comparator (driven by real
// quantized image/Sobol operand pairs) is what calibrates checkpoint 2.
#ifndef UHD_HW_NETLIST_HPP
#define UHD_HW_NETLIST_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "uhd/hw/cells.hpp"

namespace uhd::hw {

/// Node index inside a netlist (inputs and gate outputs share the space).
using net_id = std::uint32_t;

/// Combinational gate netlist with toggle accounting.
class netlist {
public:
    /// Create a primary input; returns its net id.
    net_id add_input(std::string name);

    /// Create a gate driven by `fanin` nets; returns its output net id.
    /// The gate kind must be combinational (no DFFs in this simulator).
    net_id add_gate(cell_kind kind, std::vector<net_id> fanin);

    /// Mark a net as a primary output (for reporting only).
    void mark_output(net_id net);

    /// Number of primary inputs / gates.
    [[nodiscard]] std::size_t input_count() const noexcept { return inputs_; }
    [[nodiscard]] std::size_t gate_count() const noexcept { return gates_.size(); }

    /// Evaluate the netlist for one input vector (size input_count()).
    /// Gate outputs that change relative to the previous evaluation are
    /// counted as toggles. Returns the value of `net` after evaluation.
    void evaluate(const std::vector<bool>& input_values);

    /// Value of any net after the last evaluate().
    [[nodiscard]] bool value(net_id net) const;

    /// Total gate-output toggles across all evaluate() calls (excludes the
    /// first evaluation, which establishes the reference state).
    [[nodiscard]] std::uint64_t toggle_count() const noexcept { return toggles_; }

    /// Evaluations performed so far.
    [[nodiscard]] std::uint64_t evaluations() const noexcept { return evaluations_; }

    /// Measured switching activity: average fraction of gates toggling per
    /// evaluation (after the reference evaluation).
    [[nodiscard]] double measured_activity() const;

    /// Energy per evaluation in fJ under `library`, using measured toggles.
    [[nodiscard]] double measured_energy_per_op_fj(const cell_library& library) const;

    /// Placed area of the gates.
    [[nodiscard]] double area_um2(const cell_library& library) const;

    /// Reset toggle statistics (keeps the structure and last values).
    void reset_stats() noexcept;

private:
    struct gate {
        cell_kind kind;
        std::vector<net_id> fanin;
        net_id output;
    };

    [[nodiscard]] static bool eval_gate(cell_kind kind, const std::vector<bool>& in);

    std::size_t inputs_ = 0;
    std::vector<gate> gates_;       // topological order by construction
    std::vector<bool> values_;      // current value per net
    std::vector<net_id> outputs_;
    std::uint64_t toggles_ = 0;
    std::uint64_t evaluations_ = 0;
    std::vector<std::uint64_t> per_gate_toggles_;
};

/// Build the Fig. 4 unary comparator as a real netlist: inputs are the two
/// N-bit thermometer operands (data first, Sobol second), the single output
/// is (data >= sobol).
struct unary_comparator_netlist {
    netlist circuit;
    std::vector<net_id> data_inputs;
    std::vector<net_id> sobol_inputs;
    net_id output;

    explicit unary_comparator_netlist(std::size_t stream_bits);

    /// Evaluate for two thermometer values (0..N); returns data >= sobol.
    bool compare(std::size_t data_value, std::size_t sobol_value);
};

/// Build an M-bit ripple magnitude comparator netlist (a >= b).
struct binary_comparator_netlist {
    netlist circuit;
    std::vector<net_id> a_inputs; // LSB first
    std::vector<net_id> b_inputs;
    net_id output;

    explicit binary_comparator_netlist(unsigned bits);

    /// Evaluate for two binary values; returns a >= b.
    bool compare(std::uint64_t a, std::uint64_t b);
};

} // namespace uhd::hw

#endif // UHD_HW_NETLIST_HPP
