// Hardware module cost model: a cell inventory plus an explicit critical
// path and a switching-activity factor. Energy per operation is
//   sum_cells (energy_per_transition * activity)
// area is the placed sum, and delay is the declared critical path — the
// same three quantities the paper reports from synthesis.
#ifndef UHD_HW_MODULE_HPP
#define UHD_HW_MODULE_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "uhd/hw/cells.hpp"

namespace uhd::hw {

/// Cell inventory of a module (counts per cell kind).
class cell_counts {
public:
    /// Add `count` cells of `kind`.
    void add(cell_kind kind, std::size_t count = 1);

    /// Add another inventory `times` times (hierarchical composition).
    void add(const cell_counts& other, std::size_t times = 1);

    /// Count of one cell kind.
    [[nodiscard]] std::size_t count(cell_kind kind) const;

    /// Total number of cells.
    [[nodiscard]] std::size_t total() const noexcept;

    /// Placed area under `library`.
    [[nodiscard]] double area_um2(const cell_library& library) const;

    /// Energy if every cell toggled once (activity 1.0), in fJ.
    [[nodiscard]] double full_toggle_energy_fj(const cell_library& library) const;

private:
    std::array<std::size_t, cell_kind_count> counts_{};
};

/// A named module with inventory, critical path, and default activity.
struct hw_module {
    std::string name;
    cell_counts cells;
    std::vector<cell_kind> critical_path; ///< cell kinds traversed on the slow path
    double activity = 0.5;                ///< avg fraction of cells toggling per op

    /// Placed area.
    [[nodiscard]] double area_um2(const cell_library& library) const {
        return cells.area_um2(library);
    }

    /// Critical-path delay in ps.
    [[nodiscard]] double delay_ps(const cell_library& library) const;

    /// Energy per operation in fJ under the module's activity (optionally
    /// scaled, e.g. by measured toggle rates from the datapath simulator).
    [[nodiscard]] double energy_per_op_fj(const cell_library& library,
                                          double activity_scale = 1.0) const {
        return cells.full_toggle_energy_fj(library) * activity * activity_scale;
    }

    /// Area x delay product in um^2 * s.
    [[nodiscard]] double area_delay_um2s(const cell_library& library) const {
        return area_um2(library) * delay_ps(library) * 1e-12;
    }
};

/// Memory macro model (BRAM block or register-file bank, Fig. 3(a)).
struct memory_model {
    std::string name;
    std::size_t bits = 0;
    double read_energy_fj_per_bit = 0.0;
    double write_energy_fj_per_bit = 0.0;
    double area_um2_per_bit = 0.0;
    double access_delay_ps = 0.0;

    /// BRAM-class macro (denser, higher per-access energy).
    [[nodiscard]] static memory_model bram(std::string name, std::size_t bits);

    /// Register/flip-flop bank (fast, cheap reads, large area).
    [[nodiscard]] static memory_model regfile(std::string name, std::size_t bits);

    [[nodiscard]] double area_um2() const { return area_um2_per_bit * static_cast<double>(bits); }
    [[nodiscard]] double read_energy_fj(std::size_t bits_read) const {
        return read_energy_fj_per_bit * static_cast<double>(bits_read);
    }
    [[nodiscard]] double write_energy_fj(std::size_t bits_written) const {
        return write_energy_fj_per_bit * static_cast<double>(bits_written);
    }
};

} // namespace uhd::hw

#endif // UHD_HW_MODULE_HPP
