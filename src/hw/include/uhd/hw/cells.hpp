// Generic 45 nm standard-cell library.
//
// Stand-in for the Synopsys Design Compiler + 45 nm cell library flow the
// paper uses for its energy/area/delay numbers (DESIGN.md §4.3). The values
// below are representative of open 45 nm libraries (NanGate FreePDK45
// class): area in um^2, switching energy per output transition in fJ at
// nominal voltage, and propagation delay in ps under a typical load.
// Absolute numbers differ from the paper's proprietary library; every
// comparison we reproduce is a ratio between designs evaluated under the
// *same* library, which is the quantity that transfers.
#ifndef UHD_HW_CELLS_HPP
#define UHD_HW_CELLS_HPP

#include <cstddef>
#include <string>
#include <utility>

namespace uhd::hw {

/// Standard-cell types used by the paper's datapaths.
enum class cell_kind {
    inv,
    nand2,
    nor2,
    and2,
    or2,
    xor2,
    xnor2,
    mux2,
    half_adder,
    full_adder,
    dff,
    count_, // sentinel
};

/// Number of distinct cell kinds.
inline constexpr std::size_t cell_kind_count = static_cast<std::size_t>(cell_kind::count_);

/// Physical characteristics of one cell.
struct cell_spec {
    const char* name;
    double area_um2;    ///< placed area
    double energy_fj;   ///< energy per output transition
    double delay_ps;    ///< propagation delay, typical corner
    unsigned inputs;    ///< fan-in (for sanity checks)
};

/// Immutable library of cell specs.
class cell_library {
public:
    /// The generic 45 nm library described above.
    [[nodiscard]] static const cell_library& generic_45nm();

    /// Spec for one cell kind.
    [[nodiscard]] const cell_spec& spec(cell_kind kind) const;

    /// Library name for reports.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    cell_library(std::string name, const cell_spec* specs) : name_(std::move(name)) {
        for (std::size_t i = 0; i < cell_kind_count; ++i) specs_[i] = specs[i];
    }

    std::string name_;
    cell_spec specs_[cell_kind_count];
};

} // namespace uhd::hw

#endif // UHD_HW_CELLS_HPP
