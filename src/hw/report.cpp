#include "uhd/hw/report.hpp"

#include <algorithm>

#include "uhd/common/bits.hpp"
#include "uhd/common/error.hpp"

namespace uhd::hw {
namespace {

// UST stream formation: the thermometer patterns are hard-wired, so a fetch
// is the one-hot address decode plus an OR plane forming the N output bits.
hw_module make_ust_fetch(unsigned levels) {
    hw_module decoder = make_ust_decoder(levels);
    hw_module m;
    m.name = "ust_fetch_L" + std::to_string(levels);
    m.cells.add(decoder.cells);
    m.cells.add(cell_kind::or2, levels); // OR plane onto the N stream bits
    m.critical_path = decoder.critical_path;
    m.critical_path.push_back(cell_kind::or2);
    m.activity = decoder.activity;
    return m;
}

// Baseline generation datapath for ONE hypervector bit pair (P and L):
// two LFSR random sources, the level threshold comparator of
// ceil(log2(D)) bits (the R in [0, D] vs k*D/2^n comparison), and the
// binding XOR. The position comparison against t = 0.5 is the MSB and
// costs no gates.
struct baseline_gen {
    hw_module lfsr_p;
    hw_module lfsr_l;
    hw_module comparator;
    hw_module binder;
};

baseline_gen make_baseline_gen(const design_point& p) {
    baseline_gen g;
    g.lfsr_p = make_lfsr(32);
    g.lfsr_l = make_lfsr(32);
    g.comparator = make_binary_comparator(static_cast<unsigned>(
        std::max(ceil_log2(p.dim), static_cast<int>(p.data_bits))));
    g.binder = make_xor_binder();
    return g;
}

} // namespace

hdc_cost_model::hdc_cost_model(const cell_library& library) : library_(&library) {}

double hdc_cost_model::uhd_bitgen_energy_fj(const design_point& p) const {
    // One UST fetch produces all N stream bits; amortize per bit, and add the
    // BRAM read of the M-bit quantized scalar that addresses the table.
    const hw_module fetch = make_ust_fetch(p.quant_levels);
    const memory_model bram = memory_model::bram(
        "sobol_bank", p.pixels * p.dim * p.quant_levels); // placeholder size
    const double fetch_energy = fetch.energy_per_op_fj(*library_);
    const double scalar_read = bram.read_energy_fj(ceil_log2(p.quant_levels));
    return (fetch_energy + scalar_read) / static_cast<double>(p.quant_levels);
}

double hdc_cost_model::baseline_bitgen_energy_fj(const design_point& p) const {
    // Conventional generator: LFSR random source + counter + wide comparator
    // evaluated every output bit.
    const unsigned width =
        static_cast<unsigned>(std::max(ceil_log2(p.dim), static_cast<int>(p.data_bits)));
    const hw_module lfsr = make_lfsr(32);
    const hw_module generator = make_counter_comparator_generator(width);
    return lfsr.energy_per_op_fj(*library_) + generator.energy_per_op_fj(*library_);
}

double hdc_cost_model::uhd_comparator_energy_pj_per_hv(const design_point& p) const {
    const hw_module comparator = make_unary_comparator(p.quant_levels);
    return comparator.energy_per_op_fj(*library_) * static_cast<double>(p.dim) * 1e-3;
}

double hdc_cost_model::baseline_comparator_energy_pj_per_hv(const design_point& p) const {
    const baseline_gen g = make_baseline_gen(p);
    // Two programmable-threshold magnitude comparisons per dimension: one for
    // the position stream (R vs t) and one for the level stream (R vs
    // k*D/2^n), as in the conventional generator of Fig. 1(a).
    const double level_cmp = g.comparator.energy_per_op_fj(*library_);
    return 2.0 * level_cmp * static_cast<double>(p.dim) * 1e-3;
}

double hdc_cost_model::uhd_accbin_energy_pj_per_feature(const design_point& p) const {
    const hw_module binarizer = make_popcount_mask_binarizer(p.pixels);
    return binarizer.energy_per_op_fj(*library_) * static_cast<double>(p.dim) * 1e-3;
}

double hdc_cost_model::baseline_accbin_energy_pj_per_feature(const design_point& p) const {
    const hw_module binarizer = make_popcount_subtract_binarizer(p.pixels);
    return binarizer.energy_per_op_fj(*library_) * static_cast<double>(p.dim) * 1e-3;
}

cost_summary hdc_cost_model::uhd_per_hv(const design_point& p) const {
    cost_summary s;
    const hw_module fetch = make_ust_fetch(p.quant_levels);
    const hw_module comparator = make_unary_comparator(p.quant_levels);
    const memory_model bram =
        memory_model::bram("sobol_bank",
                           p.pixels * p.dim * static_cast<std::size_t>(
                                                  ceil_log2(p.quant_levels)));
    const unsigned m_bits = static_cast<unsigned>(ceil_log2(p.quant_levels));

    // Per dimension: read the M-bit Sobol scalar, fetch its unary stream,
    // compare against the (once-fetched) data stream.
    const double per_dim_fj = bram.read_energy_fj(m_bits) +
                              fetch.energy_per_op_fj(*library_) +
                              comparator.energy_per_op_fj(*library_);
    const double data_fetch_fj =
        fetch.energy_per_op_fj(*library_) +
        memory_model::regfile("data_regs", p.pixels * m_bits).read_energy_fj(m_bits);
    s.energy_pj = (per_dim_fj * static_cast<double>(p.dim) + data_fetch_fj) * 1e-3;

    // Logic area: decoder/OR plane (x2 operand paths), comparator, the M-bit
    // data register. BRAM macros are platform block RAM on the paper's
    // re-configurable target and are excluded from synthesized cell area.
    cell_counts logic;
    logic.add(fetch.cells, 2);
    logic.add(comparator.cells);
    logic.add(cell_kind::dff, m_bits);
    s.area_um2 = logic.area_um2(*library_);

    // One dimension per cycle; the cycle is bounded by the BRAM access or
    // the fetch+compare logic path, whichever is slower.
    const double logic_path_ps = fetch.delay_ps(*library_) + comparator.delay_ps(*library_);
    const double cycle_ps = std::max(bram.access_delay_ps, logic_path_ps);
    s.delay_ps = cycle_ps * static_cast<double>(p.dim);
    return s;
}

cost_summary hdc_cost_model::baseline_per_hv(const design_point& p) const {
    cost_summary s;
    const baseline_gen g = make_baseline_gen(p);
    const double per_dim_fj = g.lfsr_p.energy_per_op_fj(*library_) +
                              g.lfsr_l.energy_per_op_fj(*library_) +
                              g.comparator.energy_per_op_fj(*library_) +
                              g.binder.energy_per_op_fj(*library_);
    const double iterations = static_cast<double>(p.baseline_iterations);
    s.energy_pj = per_dim_fj * static_cast<double>(p.dim) * iterations * 1e-3;

    cell_counts logic;
    logic.add(g.lfsr_p.cells);
    logic.add(g.lfsr_l.cells);
    logic.add(g.comparator.cells);
    logic.add(g.binder.cells);
    s.area_um2 = logic.area_um2(*library_);

    const double cycle_ps = g.lfsr_p.delay_ps(*library_) +
                            g.comparator.delay_ps(*library_) +
                            g.binder.delay_ps(*library_);
    s.delay_ps = cycle_ps * static_cast<double>(p.dim) * iterations;
    return s;
}

cost_summary hdc_cost_model::uhd_per_image(const design_point& p) const {
    const cost_summary hv = uhd_per_hv(p);
    const hw_module binarizer = make_popcount_mask_binarizer(p.pixels);
    cost_summary s;
    const double pixels = static_cast<double>(p.pixels);
    s.energy_pj = hv.energy_pj * pixels +
                  uhd_accbin_energy_pj_per_feature(p) * pixels;
    cell_counts logic;
    logic.add(binarizer.cells);
    s.area_um2 = hv.area_um2 + logic.area_um2(*library_);
    // Accumulation is concurrent with generation (Fig. 5): the image time is
    // H traversals of the D-cycle generation pipeline.
    s.delay_ps = hv.delay_ps * pixels;
    return s;
}

cost_summary hdc_cost_model::baseline_per_image(const design_point& p) const {
    const cost_summary hv = baseline_per_hv(p);
    const hw_module binarizer = make_popcount_subtract_binarizer(p.pixels);
    cost_summary s;
    const double pixels = static_cast<double>(p.pixels);
    s.energy_pj = hv.energy_pj * pixels +
                  baseline_accbin_energy_pj_per_feature(p) * pixels;
    cell_counts logic;
    logic.add(binarizer.cells);
    s.area_um2 = hv.area_um2 + logic.area_um2(*library_);
    s.delay_ps = hv.delay_ps * pixels;
    return s;
}

double hdc_cost_model::system_efficiency_ratio(const design_point& p) const {
    const double uhd = uhd_per_image(p).energy_pj;
    const double baseline = baseline_per_image(p).energy_pj;
    UHD_REQUIRE(uhd > 0.0, "degenerate uHD energy");
    return baseline / uhd;
}

} // namespace uhd::hw
