// Configuration of the uHD system (paper Section III).
#ifndef UHD_CORE_CONFIG_HPP
#define UHD_CORE_CONFIG_HPP

#include <cstddef>
#include <cstdint>

#include "uhd/common/bank_mode.hpp"
#include "uhd/lowdisc/sobol.hpp"

namespace uhd::core {

/// Where the binarization threshold (TOB, Fig. 5) is placed.
///
/// * half_inputs — the paper's literal TOB = H/2 rule. Without position
///   binding, the per-dimension popcount concentrates around
///   (mean intensity) * H, so for dark images (MNIST-like) every dimension
///   falls on the same side of H/2 and the representation collapses.
/// * mean_intensity — TOB equals the image's expected popcount
///   sum_p (q_p + 1) / xi, centering the comparison. This matches the
///   paper's own Fig. 2, whose accumulated values hover around zero
///   (-23, -45, +92) — only possible with an intensity-centered threshold —
///   and is equally hardware-friendly: the threshold register is loaded
///   with a popcount of the fetched unary data streams instead of a
///   hard-wired constant. Default, and the configuration that reproduces
///   the paper's accuracy behaviour.
enum class binarize_policy {
    half_inputs,
    mean_intensity,
};

/// Parameters of the uHD encoder.
struct uhd_config {
    /// Hypervector dimension D (the paper sweeps 1K, 2K, 8K, 10K).
    std::size_t dim = 1024;

    /// Quantization levels xi for both intensities and Sobol scalars
    /// (xi = 16 -> M = 4-bit storage, N = 16-bit unary streams; Fig. 3(a)).
    unsigned quant_levels = 16;

    /// Threshold-of-binarization placement (see binarize_policy).
    binarize_policy policy = binarize_policy::mean_intensity;

    /// Apply a deterministic per-pixel digital shift to the Sobol bank.
    /// Decorrelates pixel sequences the way Joe–Kuo property-A
    /// initialization does for MATLAB's generator; still fully
    /// deterministic and single-iteration (see quantized_sobol_bank).
    bool scramble = true;

    /// Seed of the Sobol direction-number table (deterministic default).
    std::uint64_t sobol_seed = ld::sobol_directions::default_seed;

    /// Threshold storage: keep the quantized Sobol bank resident (stored) or
    /// regenerate each pixel's threshold row on the fly inside the encode
    /// kernels from O(1) per-pixel generator state (rematerialize). Both
    /// modes are bit-identical; rematerialize shrinks encoder threshold
    /// state from O(pixels * D) to O(pixels) bytes.
    bank_mode bank = bank_mode::stored;

    /// Unary stream length N; equals quant_levels in the paper's design.
    [[nodiscard]] std::size_t stream_length() const noexcept { return quant_levels; }

    /// Bits per stored scalar, M = log2(xi), rounded up.
    [[nodiscard]] unsigned scalar_bits() const noexcept {
        unsigned bits = 0;
        while ((1u << bits) < quant_levels) ++bits;
        return bits;
    }
};

} // namespace uhd::core

#endif // UHD_CORE_CONFIG_HPP
