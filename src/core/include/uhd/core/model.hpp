// Trained uHD classification model with serialization.
//
// A model bundles the deterministic encoder configuration with the trained
// class hypervectors. Because uHD's encoder is fully deterministic (Sobol
// directions from a seed — no iterative search), only the configuration and
// the class vectors need to be stored; the Sobol bank is rebuilt on load.
#ifndef UHD_CORE_MODEL_HPP
#define UHD_CORE_MODEL_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "uhd/core/encoder.hpp"
#include "uhd/data/metrics.hpp"
#include "uhd/hdc/classifier.hpp"

namespace uhd::core {

/// End-to-end uHD classifier: encoder + single-pass centroid model.
class uhd_model {
public:
    /// Untrained model for `classes` classes over images of `shape`.
    /// Defaults follow the paper's uHD formulation: non-binary Sigma L_i
    /// accumulation (raw sums) with integer-cosine inference.
    uhd_model(const uhd_config& config, data::image_shape shape, std::size_t classes,
              hdc::train_mode mode = hdc::train_mode::raw_sums,
              hdc::query_mode inference = hdc::query_mode::integer);

    // The classifier holds a non-owning pointer to encoder_, so the
    // compiler-generated copy/move would leave it aimed at the source
    // object (dangling once the source dies — NRVO hid this until a
    // caller genuinely moved a model). These rebind it.
    uhd_model(const uhd_model& other);
    uhd_model(uhd_model&& other) noexcept;
    uhd_model& operator=(const uhd_model& other);
    uhd_model& operator=(uhd_model&& other) noexcept;
    ~uhd_model() = default;

    /// Train on a dataset in one pass and return the model.
    [[nodiscard]] static uhd_model train(const uhd_config& config,
                                         const data::dataset& train_set,
                                         hdc::train_mode mode = hdc::train_mode::raw_sums,
                                         hdc::query_mode inference =
                                             hdc::query_mode::integer);

    /// Single-pass fit (may be called once on a fresh model).
    void fit(const data::dataset& train_set);

    /// Mini-batch thread-parallel fit: bit-identical to fit() for every
    /// thread count and batch size (see hdc::hd_classifier::fit_parallel).
    void fit_parallel(const data::dataset& train_set, thread_pool* pool = nullptr,
                      hdc::trainer_options options = {});

    /// Online update with one labeled image (dynamic training).
    void partial_fit(std::span<const std::uint8_t> image, std::size_t label);

    /// Predicted class of one image.
    [[nodiscard]] std::size_t predict(std::span<const std::uint8_t> image) const;

    /// Predicted classes of a whole dataset (pool-parallel when given;
    /// bit-identical for every thread count).
    [[nodiscard]] std::vector<std::size_t> predict_batch(
        const data::dataset& set, thread_pool* pool = nullptr) const;

    /// Accuracy over a dataset; optionally fills a confusion matrix.
    /// Predictions run through the batch engine (pool-parallel when given).
    [[nodiscard]] double evaluate(const data::dataset& test,
                                  data::confusion_matrix* matrix = nullptr,
                                  thread_pool* pool = nullptr) const;

    /// AdaptHD-style retraining extension (see hdc::hd_classifier::retrain).
    std::size_t retrain(const data::dataset& train_set, std::size_t epochs);

    /// Mini-batch thread-parallel retraining (binarized query mode;
    /// bit-identical to the sequential retrain — integer mode falls back
    /// to it, see hdc::hd_classifier).
    std::size_t retrain(const data::dataset& train_set, std::size_t epochs,
                        thread_pool* pool, std::size_t batch_images = 256);

    /// Dynamic-dimension inference: answer through the early-exit cascade
    /// over the packed class memory, reading only a prefix of each class
    /// row when the policy's calibrated margin clears. The cascade's full-D
    /// stage equals binarized-mode prediction regardless of the model's
    /// configured query mode.
    [[nodiscard]] std::size_t predict_dynamic(
        std::span<const std::uint8_t> image, const hdc::dynamic_query_policy& policy,
        hdc::dynamic_query_stats* stats = nullptr) const;

    /// Calibrate an early-exit policy on held-out data for a target
    /// agreement rate with full-D inference (see
    /// hdc::hd_classifier::calibrate_dynamic).
    [[nodiscard]] hdc::dynamic_query_policy calibrate_dynamic(
        const data::dataset& holdout, double target_agreement,
        thread_pool* pool = nullptr) const;

    [[nodiscard]] const uhd_encoder& encoder() const noexcept { return encoder_; }
    [[nodiscard]] std::size_t classes() const noexcept { return classifier_.classes(); }
    [[nodiscard]] const hdc::hypervector& class_hypervector(std::size_t c) const {
        return classifier_.class_hypervector(c);
    }

    /// Packed associative memory backing binarized-mode inference.
    [[nodiscard]] const hdc::class_memory& packed_class_memory() const noexcept {
        return classifier_.packed_class_memory();
    }

    /// Immutable copy of the model's read state (packed class memory +
    /// integer rows/norms + metadata). Every predict*/evaluate call above
    /// runs on this state already; a snapshot() copy answers bit-identically
    /// and stays valid while the model keeps training — it is what the
    /// serve layer (serve::inference_engine) publishes to concurrent
    /// readers. Serialization round-trips it: save() writes the class
    /// accumulators (the training state the snapshot is derived from), and
    /// load() re-finalizes, so a loaded model's snapshot() is bit-identical
    /// to the saved model's (tests/test_inference_snapshot.cpp, per
    /// backend).
    [[nodiscard]] hdc::inference_snapshot snapshot() const;

    /// Serialize to a binary stream (magic 'uHDm', versioned).
    void save(std::ostream& os) const;

    /// Save to a file path; throws on I/O failure.
    void save_file(const std::string& path) const;

    /// Deserialize a model previously written by save().
    [[nodiscard]] static uhd_model load(std::istream& is);

    /// Load from a file path; throws on I/O failure.
    [[nodiscard]] static uhd_model load_file(const std::string& path);

    /// Heap footprint of encoder tables + class vectors.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return encoder_.memory_bytes() + classifier_.memory_bytes();
    }

private:
    uhd_encoder encoder_;
    hdc::hd_classifier<uhd_encoder> classifier_;
};

} // namespace uhd::core

#endif // UHD_CORE_MODEL_HPP
