// Concurrent accumulate-and-binarize (paper Fig. 5, contribution 5).
//
// For each hypervector dimension, the hardware popcounts the logic-1 bits
// of the traversed level hypervectors (one bit per pixel, H bits total) and
// — instead of a separate subtractor/comparator stage — detects the
// Threshold-of-Binarization TOB = H/2 with a hard-wired masking AND over the
// counter bits. The sign bit latches as soon as the count reaches TOB.
//
// This class is the cycle-semantics software model of that datapath; the
// gate-level twin lives in uhd::hw and the bit-serial simulation in
// uhd::sim. The key behavioural property (tested): the emitted sign bit
// equals (ones >= ceil(H/2)), which matches accumulator::sign()'s
// ties-to-+1 rule for even H.
#ifndef UHD_CORE_BINARIZER_HPP
#define UHD_CORE_BINARIZER_HPP

#include <cstddef>
#include <cstdint>

namespace uhd::core {

/// Popcount counter with hard-wired TOB masking logic.
class popcount_binarizer {
public:
    /// `h` is the number of bits that will be traversed per dimension
    /// (H = rows x cols); TOB = ceil(H/2).
    explicit popcount_binarizer(std::size_t h);

    /// Variant with an explicit threshold (the mean_intensity policy loads
    /// the threshold register with the image's expected popcount instead of
    /// the hard-wired H/2 pattern).
    popcount_binarizer(std::size_t h, std::size_t tob);

    /// Number of inputs H this binarizer was wired for.
    [[nodiscard]] std::size_t inputs() const noexcept { return h_; }

    /// The hard-wired binarization threshold TOB.
    [[nodiscard]] std::size_t threshold() const noexcept { return tob_; }

    /// Counter width ceil(log2(H+1)) in bits.
    [[nodiscard]] unsigned counter_bits() const noexcept { return counter_bits_; }

    /// The AND-mask over counter bits that detects TOB (the masking logic).
    [[nodiscard]] std::uint32_t mask() const noexcept { return mask_; }

    /// Restart for a new dimension.
    void reset() noexcept;

    /// Feed one traversed bit (one pixel's level-hypervector bit).
    void feed(bool bit);

    /// Bits consumed since reset().
    [[nodiscard]] std::size_t consumed() const noexcept { return consumed_; }

    /// Current popcount value.
    [[nodiscard]] std::size_t count() const noexcept { return count_; }

    /// Latched sign bit: 1 once the count has reached TOB.
    [[nodiscard]] bool sign_bit() const noexcept { return sign_; }

    /// Pure decision function: would `ones` of `h` bits binarize to +1?
    [[nodiscard]] bool decide(std::size_t ones) const noexcept { return ones >= tob_; }

private:
    std::size_t h_;
    std::size_t tob_;
    unsigned counter_bits_;
    std::uint32_t mask_;
    std::size_t count_ = 0;
    std::size_t consumed_ = 0;
    bool sign_ = false;
};

} // namespace uhd::core

#endif // UHD_CORE_BINARIZER_HPP
