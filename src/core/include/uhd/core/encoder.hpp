// The uHD encoder — the paper's primary contribution (Fig. 2 + Fig. 3).
//
// Position hypervectors are eliminated: pixel p is encoded with its *own*
// Sobol dimension S_p (the sequence index carries the position), and the
// level hypervector is the comparison stream
//
//     L_p[d] = +1  iff  x_p >= S_p[d]
//
// so the whole image encodes as the multiplier-less bundle
// acc[d] = sum_p L_p[d]. Both intensities and Sobol scalars are quantized to
// xi = 16 levels and represented as N = 16-bit unary streams; comparison is
// done with the Fig. 4 unary comparator (>= semantics, which resolves
// quantization ties to +1 — the "flipped bits" the paper argues are
// harmless).
//
// Four equivalent encode paths are provided:
//  * encode()        — word-parallel quantized comparison (production path;
//                      runtime-dispatched uhd::kernels backend — scalar,
//                      SWAR, or AVX2, selected by the CPU probe)
//  * encode_scalar() — the byte-at-a-time formulation, retained as the
//                      correctness oracle and the benchmark baseline
//  * encode_unary()  — the unary datapath. Its monotone_fast fidelity uses
//                      the O(1) comparator identity (a thermometer stream's
//                      value IS its popcount, so Fig. 4 reduces to an
//                      integer compare); gate_exact keeps the bit-faithful
//                      UST fetch + gate-level comparator.
//  * encode_exact()  — unquantized double comparison (reference for the
//                      quantization-error ablation)
// All integer paths are bit-identical by construction; tests enforce it.
#ifndef UHD_CORE_ENCODER_HPP
#define UHD_CORE_ENCODER_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "uhd/bitstream/stream_table.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/core/config.hpp"
#include "uhd/data/dataset.hpp"
#include "uhd/hdc/hypervector.hpp"
#include "uhd/lowdisc/sobol.hpp"

namespace uhd::core {

/// How encode_unary() evaluates the Fig. 4 comparator.
enum class unary_fidelity {
    monotone_fast, ///< O(1) identity: value(stream) = popcount, so >= on
                   ///< streams is >= on quantized values
    gate_exact,    ///< bit-faithful UST fetch + gate-level comparator
};

/// Sobol-index-embedding level encoder (no position hypervectors).
class uhd_encoder {
public:
    /// Build the threshold state for images of `shape` and the unary stream
    /// table. With bank_mode::stored this materializes the quantized Sobol
    /// bank (the BRAM of Fig. 3(a)); with bank_mode::rematerialize it keeps
    /// only O(1) generator state per pixel (compact direction numbers, the
    /// per-pixel digital shift, and the per-level fraction bounds) and the
    /// encode kernels regenerate threshold rows on the fly. Both modes are
    /// bit-identical on every encode path.
    uhd_encoder(const uhd_config& config, data::image_shape shape);

    /// Build with an externally supplied threshold bank (pixels x dim rows,
    /// values < config.quant_levels). This is the hook for the sequence-
    /// family ablation: identical datapath, different threshold source.
    /// The bank replaces the Sobol one; encode_exact() remains Sobol-based.
    /// Requires bank_mode::stored — an arbitrary bank has no generator to
    /// rematerialize from.
    uhd_encoder(const uhd_config& config, data::image_shape shape,
                ld::quantized_sobol_bank custom_bank);

    /// Hypervector dimension D.
    [[nodiscard]] std::size_t dim() const noexcept { return config_.dim; }

    /// Pixel count H.
    [[nodiscard]] std::size_t pixels() const noexcept { return shape_.pixels(); }

    /// Image shape this encoder was built for.
    [[nodiscard]] const data::image_shape& shape() const noexcept { return shape_; }

    /// Active configuration.
    [[nodiscard]] const uhd_config& config() const noexcept { return config_; }

    /// Quantize an 8-bit intensity to xi levels (shared by all paths;
    /// table lookup, precomputed in the constructor).
    [[nodiscard]] std::uint8_t quantize_intensity(std::uint8_t intensity) const noexcept {
        return quant_lut_[intensity];
    }

    /// Fast path (word-parallel kernels). With the default mean_intensity
    /// policy, out[d] = 2 * ones[d] - 2 * TOB(image) where ones[d] counts
    /// pixels with q(x_p) >= q(S_p[d]) and TOB is the image's expected
    /// popcount; with half_inputs, out[d] = 2 * ones[d] - H (the bipolar
    /// bundle sum_p L_p[d]). sign(out[d]) is the Fig. 5 class-hypervector
    /// bit. Bit-identical to encode_scalar().
    void encode(std::span<const std::uint8_t> image, std::span<std::int32_t> out) const;

    /// The original byte-at-a-time formulation of encode(): the correctness
    /// oracle for the word-parallel kernels and the benchmark baseline.
    void encode_scalar(std::span<const std::uint8_t> image,
                       std::span<std::int32_t> out) const;

    /// Encode `count` images stored back-to-back in `images` (each
    /// shape().pixels() bytes) into `out` (count * dim() accumulators,
    /// image-major). When `pool` is non-null the batch is split across its
    /// workers; results are bit-identical for every thread count.
    void encode_batch(std::span<const std::uint8_t> images, std::size_t count,
                      std::span<std::int32_t> out, thread_pool* pool = nullptr) const;

    /// Batch-encode a whole dataset (shape must match this encoder).
    void encode_batch(const data::dataset& set, std::span<std::int32_t> out,
                      thread_pool* pool = nullptr) const;

    /// The doubled binarization threshold 2*TOB used by encode() for this
    /// image under the configured policy (exposed for tests and the
    /// datapath simulator).
    [[nodiscard]] std::int32_t doubled_threshold(
        std::span<const std::uint8_t> image) const;

    /// Unary datapath. monotone_fast exploits the thermometer-code identity
    /// value(stream) = popcount(stream), collapsing the Fig. 4 comparator
    /// to the same quantized integer compare as encode() — O(H * D).
    /// gate_exact runs the UST fetch + gate-level comparator per
    /// (pixel, dim) — O(H * D * N), use small D in tests. Both fidelities
    /// are bit-identical to encode(); tests enforce it.
    void encode_unary(std::span<const std::uint8_t> image, std::span<std::int32_t> out,
                      unary_fidelity fidelity = unary_fidelity::monotone_fast) const;

    /// Reference path without quantization: compares x_p/255 >= S_p[d] in
    /// double precision (regenerates Sobol scalars on the fly).
    void encode_exact(std::span<const std::uint8_t> image,
                      std::span<std::int32_t> out) const;

    /// Encode and binarize (the image hypervector of Fig. 5).
    [[nodiscard]] hdc::hypervector encode_sign(std::span<const std::uint8_t> image) const;

    /// The quantized Sobol thresholds of pixel `p` (BRAM row). In stored
    /// mode this is a view into the resident bank; in rematerialize mode
    /// the row is regenerated into a per-thread buffer, so the span is
    /// valid until the calling thread's next sobol_row() call.
    [[nodiscard]] std::span<const std::uint8_t> sobol_row(std::size_t p) const;

    /// The unary stream table (Fig. 3(c)).
    [[nodiscard]] const bs::unary_stream_table& stream_table() const noexcept {
        return ust_;
    }

    /// Direction-number table backing the Sobol bank.
    [[nodiscard]] const ld::sobol_directions& directions() const noexcept {
        return directions_;
    }

    /// Bytes of threshold state: the resident bank in stored mode, or the
    /// compact per-pixel generator state (direction-number prefixes +
    /// digital shifts + the shared bound table) in rematerialize mode.
    /// This is the O(pixels * D) -> O(pixels) term the rematerializing
    /// encoder shrinks; the bench footprint gate reads it directly.
    [[nodiscard]] std::size_t threshold_bytes() const noexcept;

    /// Heap footprint: threshold state + UST + direction table + the
    /// per-pixel CDF sidecar + the intensity quantization LUT — the exact
    /// uHD dynamic-memory term in Table I.
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    uhd_config config_;
    data::image_shape shape_;
    ld::sobol_directions directions_;
    // Threshold state, stored mode: the dense quantized bank (absent in
    // rematerialize mode — that is the whole point).
    std::optional<ld::quantized_sobol_bank> bank_;
    bs::unary_stream_table ust_;
    // Threshold state, rematerialize mode: per-pixel generator state fed to
    // kernels::geq_rematerialize_accumulate. remat_dirs_ holds the first
    // dir_words_ = bit_width(dim) direction numbers of each pixel (all the
    // Gray-code stepping for indices < dim can touch), shifts_ the
    // per-pixel digital shift, and bound_table_[q] the largest raw fraction
    // that quantizes to <= q (ld::quantize_bounds).
    std::size_t dir_words_ = 0;
    std::vector<std::uint32_t> remat_dirs_; // pixels x dir_words_
    std::vector<std::uint32_t> shifts_;     // one per pixel
    std::vector<std::uint32_t> bound_table_; // quant_levels entries
    // cdf_counts_[p * xi + q] = #{d : bank.row(p)[d] <= q}; makes the
    // mean_intensity TOB the exact per-dimension mean of the popcounts
    // (one small popcount table per pixel, Fig. 3(a)'s BRAM sidecar).
    // Identical in both bank modes: rematerialize streams the same
    // quantized rows through it at construction.
    std::vector<std::uint32_t> cdf_counts_;
    // quant_lut_[x] = quantize_unit(x / 255, xi) — one lookup per pixel on
    // the hot path instead of a double multiply + round.
    std::array<std::uint8_t, 256> quant_lut_{};

    // Per-pixel digital shift (the bank ctor's formula; 0 when unscrambled).
    [[nodiscard]] std::uint32_t pixel_shift(std::size_t p) const noexcept;
    // Regenerate pixel p's quantized threshold row (dim values) into `row`.
    void materialize_row(std::size_t p, std::uint8_t* row) const;
    // Shared ctor tail: quantization LUT + per-pixel CDF sidecar.
    void build_tables();
};

} // namespace uhd::core

#endif // UHD_CORE_ENCODER_HPP
