#include "uhd/core/encoder.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "uhd/bitstream/unary.hpp"
#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/common/simd.hpp" // pinned-scalar oracle kernels (encode_scalar)

namespace uhd::core {

uhd_encoder::uhd_encoder(const uhd_config& config, data::image_shape shape)
    : config_(config),
      shape_(shape),
      directions_(ld::sobol_directions::standard(shape.pixels(), config.sobol_seed)),
      ust_(config.quant_levels, config.stream_length()) {
    UHD_REQUIRE(config.dim >= 64, "dimension too small to be hyperdimensional");
    UHD_REQUIRE(shape.channels == 1, "uHD encoder expects grayscale images");

    if (config_.bank == bank_mode::stored) {
        bank_.emplace(directions_, shape_.pixels(), config_.dim, config_.quant_levels,
                      config_.scramble ? config_.sobol_seed : 0);
    } else {
        // O(pixels) generator state instead of the O(pixels * D) bank:
        // bit_width(dim) direction words cover every Gray-code advance the
        // kernels perform for point indices <= dim (including the final
        // countr_zero(dim) state step), one digital-shift word per pixel,
        // and one shared bound per quantization level.
        dir_words_ = std::bit_width(config_.dim);
        UHD_REQUIRE(dir_words_ <= static_cast<std::size_t>(ld::sobol_bits),
                    "dimension exceeds the 32-bit Sobol generator range");
        remat_dirs_.resize(shape_.pixels() * dir_words_);
        shifts_.resize(shape_.pixels());
        for (std::size_t p = 0; p < shape_.pixels(); ++p) {
            const auto dirs = directions_.direction_numbers(p);
            std::copy_n(dirs.data(), dir_words_, remat_dirs_.data() + p * dir_words_);
            shifts_[p] = pixel_shift(p);
        }
        bound_table_ = ld::quantize_bounds(config_.quant_levels);
    }
    build_tables();
}

uhd_encoder::uhd_encoder(const uhd_config& config, data::image_shape shape,
                         ld::quantized_sobol_bank custom_bank)
    : config_(config),
      shape_(shape),
      directions_(ld::sobol_directions::standard(shape.pixels(), config.sobol_seed)),
      bank_(std::move(custom_bank)),
      ust_(config.quant_levels, config.stream_length()) {
    UHD_REQUIRE(config.bank == bank_mode::stored,
                "a custom threshold bank has no generator to rematerialize from");
    UHD_REQUIRE(config.dim >= 64, "dimension too small to be hyperdimensional");
    UHD_REQUIRE(shape.channels == 1, "uHD encoder expects grayscale images");
    UHD_REQUIRE(bank_->dims() == shape.pixels() && bank_->samples() == config.dim &&
                    bank_->levels() == config.quant_levels,
                "threshold bank geometry does not match the configuration");
    build_tables();
}

std::uint32_t uhd_encoder::pixel_shift(std::size_t p) const noexcept {
    // The quantized_sobol_bank ctor's formula, so rematerialized rows are
    // byte-identical to stored ones (including the seed-0 no-shift case).
    if (!config_.scramble || config_.sobol_seed == 0) return 0;
    return static_cast<std::uint32_t>(
        hash64(config_.sobol_seed ^ (0x9e3779b9ULL * (p + 1))));
}

void uhd_encoder::materialize_row(std::size_t p, std::uint8_t* row) const {
    ld::sobol_sequence seq(directions_.direction_numbers(p));
    const std::uint32_t shift = pixel_shift(p);
    for (std::size_t i = 0; i < config_.dim; ++i) {
        const std::uint32_t fraction = seq.next_fraction() ^ shift;
        row[i] = ld::quantize_unit(ld::sobol_sequence::fraction_to_unit(fraction),
                                   config_.quant_levels);
    }
}

void uhd_encoder::build_tables() {
    for (unsigned x = 0; x < 256; ++x) {
        quant_lut_[x] = ld::quantize_unit(static_cast<double>(x) / 255.0,
                                          config_.quant_levels);
    }

    // Per-pixel threshold CDF: how many of the pixel's D thresholds a given
    // quantized intensity reaches. Used for exact mean-centering. In
    // rematerialize mode the rows are streamed through once here and then
    // discarded — the CDF sidecar stays, the bank does not.
    const unsigned xi = config_.quant_levels;
    cdf_counts_.assign(shape_.pixels() * xi, 0);
    std::vector<std::uint8_t> scratch;
    if (!bank_) scratch.resize(config_.dim);
    for (std::size_t p = 0; p < shape_.pixels(); ++p) {
        std::uint32_t* cdf = cdf_counts_.data() + p * xi;
        std::span<const std::uint8_t> row;
        if (bank_) {
            row = bank_->row(p);
        } else {
            materialize_row(p, scratch.data());
            row = {scratch.data(), config_.dim};
        }
        for (const std::uint8_t s : row) ++cdf[s];
        for (unsigned q = 1; q < xi; ++q) cdf[q] += cdf[q - 1];
    }
}

std::span<const std::uint8_t> uhd_encoder::sobol_row(std::size_t p) const {
    if (bank_) return bank_->row(p);
    UHD_REQUIRE(p < shape_.pixels(), "bank dimension out of range");
    // Reused per thread: gate-exact unary encode and the datapath simulator
    // fetch rows one pixel at a time.
    static thread_local std::vector<std::uint8_t> row;
    row.resize(config_.dim);
    materialize_row(p, row.data());
    return {row.data(), row.size()};
}

std::int32_t uhd_encoder::doubled_threshold(std::span<const std::uint8_t> image) const {
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    if (config_.policy == binarize_policy::half_inputs) {
        return static_cast<std::int32_t>(image.size()); // 2 * (H/2)
    }
    // mean_intensity: TOB = sum_p #{d : q_p >= S_p[d]} / D — the exact mean
    // of the per-dimension popcounts, read from the per-pixel CDF tables.
    const unsigned xi = config_.quant_levels;
    std::int64_t reach_sum = 0;
    for (std::size_t p = 0; p < image.size(); ++p) {
        const std::uint8_t q = quantize_intensity(image[p]);
        reach_sum += cdf_counts_[p * xi + q];
    }
    const std::int64_t d = static_cast<std::int64_t>(config_.dim);
    return static_cast<std::int32_t>((2 * reach_sum + d / 2) / d);
}

void uhd_encoder::encode(std::span<const std::uint8_t> image,
                         std::span<std::int32_t> out) const {
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    UHD_REQUIRE(out.size() == config_.dim, "output accumulator size mismatch");

    // Word-parallel geq counts: quantize the image once, then run the
    // whole pixel x dimension compare loop through the dispatched block
    // kernel (the active uhd::kernels backend — scalar/SWAR/AVX2, selected
    // at runtime from the CPU probe or the UHD_BACKEND override).
    const std::uint8_t max_value = static_cast<std::uint8_t>(
        std::min<unsigned>(config_.quant_levels - 1, 255));
    // Reused per thread: the batch engine calls encode() once per image
    // from every pool worker, so per-call allocation would dominate.
    static thread_local std::vector<std::uint8_t> quantized;
    quantized.resize(image.size());
    for (std::size_t p = 0; p < image.size(); ++p) {
        quantized[p] = quantize_intensity(image[p]);
    }
    std::fill(out.begin(), out.end(), 0);
    if (config_.bank == bank_mode::rematerialize) {
        // Fused rematerializing path: translate each pixel's quantized
        // intensity into a raw-fraction bound (state <= bound is exactly
        // q >= quantized threshold; see ld::quantize_bounds), then let the
        // kernel regenerate the Sobol stream in registers. D-tiles keep the
        // int32 accumulator slice L1-resident; integer accumulation makes
        // every tile split bit-identical.
        static thread_local std::vector<std::uint32_t> pixel_bounds;
        pixel_bounds.resize(image.size());
        for (std::size_t p = 0; p < image.size(); ++p) {
            pixel_bounds[p] = bound_table_[quantized[p]];
        }
        constexpr std::size_t tile = 4096;
        for (std::size_t d0 = 0; d0 < config_.dim; d0 += tile) {
            const std::size_t count = std::min(tile, config_.dim - d0);
            kernels::geq_rematerialize_accumulate(remat_dirs_.data(), dir_words_,
                                                  shifts_.data(), pixel_bounds.data(),
                                                  image.size(), d0, count,
                                                  out.data() + d0);
        }
    } else {
        kernels::geq_block_accumulate(quantized.data(), quantized.size(),
                                      bank_->data().data(), bank_->samples(),
                                      config_.dim, out.data(), max_value);
    }
    const std::int32_t tau2 = doubled_threshold(image);
    for (std::size_t d = 0; d < config_.dim; ++d) {
        out[d] = 2 * out[d] - tau2;
    }
}

void uhd_encoder::encode_scalar(std::span<const std::uint8_t> image,
                                std::span<std::int32_t> out) const {
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    UHD_REQUIRE(out.size() == config_.dim, "output accumulator size mismatch");

    // geq[d] counts pixels whose quantized intensity reaches the threshold;
    // the centered bundle is 2 * geq - 2 * TOB (see doubled_threshold).
    // The inner loop is the pinned-scalar reference kernel: this path is
    // the oracle and benchmark baseline, so it must stay byte-at-a-time
    // even under -O3 -march=native auto-vectorization.
    std::vector<std::uint16_t> geq(config_.dim, 0);
    std::vector<std::int32_t> totals(config_.dim, 0);
    std::size_t pixels_in_tile = 0;
    for (std::size_t p = 0; p < image.size(); ++p) {
        const std::uint8_t q = quantize_intensity(image[p]);
        simd::geq_accumulate_reference(q, sobol_row(p).data(), config_.dim, geq.data());
        if (++pixels_in_tile == 65535) {
            simd::add_u16_to_i32(geq.data(), config_.dim, totals.data());
            std::fill(geq.begin(), geq.end(), std::uint16_t{0});
            pixels_in_tile = 0;
        }
    }
    if (pixels_in_tile != 0) {
        simd::add_u16_to_i32(geq.data(), config_.dim, totals.data());
    }
    const std::int32_t tau2 = doubled_threshold(image);
    for (std::size_t d = 0; d < config_.dim; ++d) {
        out[d] = 2 * totals[d] - tau2;
    }
}

void uhd_encoder::encode_batch(std::span<const std::uint8_t> images, std::size_t count,
                               std::span<std::int32_t> out, thread_pool* pool) const {
    const std::size_t pixels = shape_.pixels();
    UHD_REQUIRE(images.size() == count * pixels, "batch image buffer size mismatch");
    UHD_REQUIRE(out.size() == count * config_.dim, "batch output size mismatch");
    thread_pool::maybe_parallel_for(pool, count, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            encode(images.subspan(i * pixels, pixels),
                   out.subspan(i * config_.dim, config_.dim));
        }
    });
}

void uhd_encoder::encode_batch(const data::dataset& set, std::span<std::int32_t> out,
                               thread_pool* pool) const {
    UHD_REQUIRE(set.shape() == shape_, "dataset shape mismatch");
    UHD_REQUIRE(out.size() == set.size() * config_.dim, "batch output size mismatch");
    thread_pool::maybe_parallel_for(pool, set.size(),
                                    [&](std::size_t begin, std::size_t end) {
                                        for (std::size_t i = begin; i < end; ++i) {
                                            encode(set.image(i),
                                                   out.subspan(i * config_.dim,
                                                               config_.dim));
                                        }
                                    });
}

void uhd_encoder::encode_unary(std::span<const std::uint8_t> image,
                               std::span<std::int32_t> out,
                               unary_fidelity fidelity) const {
    if (fidelity == unary_fidelity::monotone_fast) {
        // A thermometer stream's value is its popcount, and both operands
        // of the Fig. 4 comparator are fetched from the same UST (same
        // length, same alignment), so unary_compare_geq(U[q], U[s])
        // is exactly q >= s — the comparison encode() already performs.
        encode(image, out);
        return;
    }
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    UHD_REQUIRE(out.size() == config_.dim, "output accumulator size mismatch");

    std::vector<std::int32_t> ones(config_.dim, 0);
    for (std::size_t p = 0; p < image.size(); ++p) {
        // Fetch the intensity's unary stream from the UST (Fig. 3(c))...
        const bs::bitstream& data_stream = ust_.fetch(quantize_intensity(image[p]));
        const std::uint8_t* row = sobol_row(p).data();
        for (std::size_t d = 0; d < config_.dim; ++d) {
            // ...and the Sobol scalar's stream, then run the Fig. 4 comparator.
            const bs::bitstream& sobol_stream = ust_.fetch(row[d]);
            if (bs::unary_compare_geq(data_stream, sobol_stream)) ++ones[d];
        }
    }
    const std::int32_t tau2 = doubled_threshold(image);
    for (std::size_t d = 0; d < config_.dim; ++d) out[d] = 2 * ones[d] - tau2;
}

void uhd_encoder::encode_exact(std::span<const std::uint8_t> image,
                               std::span<std::int32_t> out) const {
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    UHD_REQUIRE(out.size() == config_.dim, "output accumulator size mismatch");

    std::vector<std::int32_t> ones(config_.dim, 0);
    for (std::size_t p = 0; p < image.size(); ++p) {
        const double x = static_cast<double>(image[p]) / 255.0;
        ld::sobol_sequence seq(directions_.direction_numbers(p));
        const std::uint32_t shift =
            config_.scramble ? static_cast<std::uint32_t>(
                                   hash64(config_.sobol_seed ^ (0x9e3779b9ULL * (p + 1))))
                             : 0u;
        for (std::size_t d = 0; d < config_.dim; ++d) {
            const std::uint32_t fraction = seq.next_fraction() ^ shift;
            if (x >= ld::sobol_sequence::fraction_to_unit(fraction)) ++ones[d];
        }
    }
    // Same centering as encode(): the empirical per-dimension mean popcount.
    std::int64_t total = 0;
    for (const std::int32_t v : ones) total += v;
    const std::int64_t dims = static_cast<std::int64_t>(config_.dim);
    const std::int32_t tau2 =
        config_.policy == binarize_policy::half_inputs
            ? static_cast<std::int32_t>(image.size())
            : static_cast<std::int32_t>((2 * total + dims / 2) / dims);
    for (std::size_t d = 0; d < config_.dim; ++d) out[d] = 2 * ones[d] - tau2;
}

hdc::hypervector uhd_encoder::encode_sign(std::span<const std::uint8_t> image) const {
    std::vector<std::int32_t> acc(config_.dim);
    encode(image, acc);
    bs::bitstream bits(config_.dim);
    for (std::size_t d = 0; d < config_.dim; ++d) {
        if (acc[d] < 0) bits.set_bit(d, true); // bit 1 = -1
    }
    return hdc::hypervector(std::move(bits));
}

std::size_t uhd_encoder::threshold_bytes() const noexcept {
    if (bank_) return bank_->memory_bytes();
    return remat_dirs_.size() * sizeof(std::uint32_t) +
           shifts_.size() * sizeof(std::uint32_t) +
           bound_table_.size() * sizeof(std::uint32_t);
}

std::size_t uhd_encoder::memory_bytes() const noexcept {
    // Exact Table I accounting: every resident byte of encoder state,
    // including the CDF sidecar and the 256-entry intensity LUT.
    return threshold_bytes() + ust_.memory_bytes() + directions_.memory_bytes() +
           cdf_counts_.size() * sizeof(std::uint32_t) + sizeof(quant_lut_);
}

} // namespace uhd::core
