#include "uhd/core/encoder.hpp"

#include <cmath>

#include "uhd/bitstream/unary.hpp"
#include "uhd/common/error.hpp"

namespace uhd::core {

uhd_encoder::uhd_encoder(const uhd_config& config, data::image_shape shape)
    : uhd_encoder(config, shape,
                  ld::quantized_sobol_bank(
                      ld::sobol_directions::standard(shape.pixels(), config.sobol_seed),
                      shape.pixels(), config.dim, config.quant_levels,
                      config.scramble ? config.sobol_seed : 0)) {}

uhd_encoder::uhd_encoder(const uhd_config& config, data::image_shape shape,
                         ld::quantized_sobol_bank custom_bank)
    : config_(config),
      shape_(shape),
      directions_(ld::sobol_directions::standard(shape.pixels(), config.sobol_seed)),
      bank_(std::move(custom_bank)),
      ust_(config.quant_levels, config.stream_length()) {
    UHD_REQUIRE(config.dim >= 64, "dimension too small to be hyperdimensional");
    UHD_REQUIRE(shape.channels == 1, "uHD encoder expects grayscale images");
    UHD_REQUIRE(bank_.dims() == shape.pixels() && bank_.samples() == config.dim &&
                    bank_.levels() == config.quant_levels,
                "threshold bank geometry does not match the configuration");

    // Per-pixel threshold CDF: how many of the pixel's D thresholds a given
    // quantized intensity reaches. Used for exact mean-centering.
    const unsigned xi = config_.quant_levels;
    cdf_counts_.assign(shape_.pixels() * xi, 0);
    for (std::size_t p = 0; p < shape_.pixels(); ++p) {
        std::uint32_t* cdf = cdf_counts_.data() + p * xi;
        for (const std::uint8_t s : bank_.row(p)) ++cdf[s];
        for (unsigned q = 1; q < xi; ++q) cdf[q] += cdf[q - 1];
    }
}

std::int32_t uhd_encoder::doubled_threshold(std::span<const std::uint8_t> image) const {
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    if (config_.policy == binarize_policy::half_inputs) {
        return static_cast<std::int32_t>(image.size()); // 2 * (H/2)
    }
    // mean_intensity: TOB = sum_p #{d : q_p >= S_p[d]} / D — the exact mean
    // of the per-dimension popcounts, read from the per-pixel CDF tables.
    const unsigned xi = config_.quant_levels;
    std::int64_t reach_sum = 0;
    for (std::size_t p = 0; p < image.size(); ++p) {
        const std::uint8_t q = quantize_intensity(image[p]);
        reach_sum += cdf_counts_[p * xi + q];
    }
    const std::int64_t d = static_cast<std::int64_t>(config_.dim);
    return static_cast<std::int32_t>((2 * reach_sum + d / 2) / d);
}

void uhd_encoder::encode(std::span<const std::uint8_t> image,
                         std::span<std::int32_t> out) const {
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    UHD_REQUIRE(out.size() == config_.dim, "output accumulator size mismatch");

    // geq[d] counts pixels whose quantized intensity reaches the threshold;
    // the centered bundle is 2 * geq - 2 * TOB (see doubled_threshold).
    std::vector<std::uint16_t> geq(config_.dim, 0);
    for (std::size_t p = 0; p < image.size(); ++p) {
        const std::uint8_t q = quantize_intensity(image[p]);
        const std::uint8_t* row = bank_.row(p).data();
        for (std::size_t d = 0; d < config_.dim; ++d) {
            geq[d] = static_cast<std::uint16_t>(geq[d] + (q >= row[d]));
        }
    }
    const std::int32_t tau2 = doubled_threshold(image);
    for (std::size_t d = 0; d < config_.dim; ++d) {
        out[d] = 2 * static_cast<std::int32_t>(geq[d]) - tau2;
    }
}

void uhd_encoder::encode_unary(std::span<const std::uint8_t> image,
                               std::span<std::int32_t> out) const {
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    UHD_REQUIRE(out.size() == config_.dim, "output accumulator size mismatch");

    std::vector<std::int32_t> ones(config_.dim, 0);
    for (std::size_t p = 0; p < image.size(); ++p) {
        // Fetch the intensity's unary stream from the UST (Fig. 3(c))...
        const bs::bitstream& data_stream = ust_.fetch(quantize_intensity(image[p]));
        const std::uint8_t* row = bank_.row(p).data();
        for (std::size_t d = 0; d < config_.dim; ++d) {
            // ...and the Sobol scalar's stream, then run the Fig. 4 comparator.
            const bs::bitstream& sobol_stream = ust_.fetch(row[d]);
            if (bs::unary_compare_geq(data_stream, sobol_stream)) ++ones[d];
        }
    }
    const std::int32_t tau2 = doubled_threshold(image);
    for (std::size_t d = 0; d < config_.dim; ++d) out[d] = 2 * ones[d] - tau2;
}

void uhd_encoder::encode_exact(std::span<const std::uint8_t> image,
                               std::span<std::int32_t> out) const {
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    UHD_REQUIRE(out.size() == config_.dim, "output accumulator size mismatch");

    std::vector<std::int32_t> ones(config_.dim, 0);
    for (std::size_t p = 0; p < image.size(); ++p) {
        const double x = static_cast<double>(image[p]) / 255.0;
        ld::sobol_sequence seq(directions_.direction_numbers(p));
        const std::uint32_t shift =
            config_.scramble ? static_cast<std::uint32_t>(
                                   hash64(config_.sobol_seed ^ (0x9e3779b9ULL * (p + 1))))
                             : 0u;
        for (std::size_t d = 0; d < config_.dim; ++d) {
            const std::uint32_t fraction = seq.next_fraction() ^ shift;
            if (x >= ld::sobol_sequence::fraction_to_unit(fraction)) ++ones[d];
        }
    }
    // Same centering as encode(): the empirical per-dimension mean popcount.
    std::int64_t total = 0;
    for (const std::int32_t v : ones) total += v;
    const std::int64_t dims = static_cast<std::int64_t>(config_.dim);
    const std::int32_t tau2 =
        config_.policy == binarize_policy::half_inputs
            ? static_cast<std::int32_t>(image.size())
            : static_cast<std::int32_t>((2 * total + dims / 2) / dims);
    for (std::size_t d = 0; d < config_.dim; ++d) out[d] = 2 * ones[d] - tau2;
}

hdc::hypervector uhd_encoder::encode_sign(std::span<const std::uint8_t> image) const {
    std::vector<std::int32_t> acc(config_.dim);
    encode(image, acc);
    bs::bitstream bits(config_.dim);
    for (std::size_t d = 0; d < config_.dim; ++d) {
        if (acc[d] < 0) bits.set_bit(d, true); // bit 1 = -1
    }
    return hdc::hypervector(std::move(bits));
}

std::size_t uhd_encoder::memory_bytes() const noexcept {
    return bank_.memory_bytes() + ust_.memory_bytes() + directions_.memory_bytes();
}

} // namespace uhd::core
