#include "uhd/core/model.hpp"

#include <fstream>
#include <utility>

#include "uhd/common/error.hpp"
#include "uhd/common/io.hpp"

namespace uhd::core {
namespace {

constexpr std::uint32_t model_magic = 0x6d444875u; // "uHDm" little-endian
// v2 appends the bank-mode word (seed-only serialization: the threshold
// state is always regenerated from sobol_seed, never written to the file,
// so the on-disk format is O(classes * D) in both modes). v1 files — the
// stored-bank era — load as bank_mode::stored.
constexpr std::uint32_t model_version = 2;

// Geometry bounds shared by construction and load: every model the library
// can build passes them (so save/load round-trips by construction), and a
// corrupt stream trips them before any allocation sized from its fields.
void validate_geometry(std::size_t dim, data::image_shape shape,
                       std::size_t classes) {
    UHD_REQUIRE(dim >= 1 && dim <= (std::size_t{1} << 30),
                "model dimension out of range");
    // Per-field bounds first: pixels() is a product that could wrap modulo
    // 2^64 for absurd individual fields. 2^20 each keeps it exact.
    for (const std::size_t field : {shape.rows, shape.cols, shape.channels}) {
        UHD_REQUIRE(field >= 1 && field <= (std::size_t{1} << 20),
                    "model image shape out of range");
    }
    const std::size_t pixels = shape.pixels();
    UHD_REQUIRE(pixels <= (std::size_t{1} << 30),
                "model image shape out of range");
    UHD_REQUIRE(classes >= 2 && classes <= (std::size_t{1} << 20),
                "model class count out of range");
    UHD_REQUIRE(pixels <= (std::size_t{1} << 33) / dim,
                "model threshold bank size out of range");
    UHD_REQUIRE(classes <= (std::size_t{1} << 31) / dim,
                "model class-accumulator size out of range");
}

} // namespace

uhd_model::uhd_model(const uhd_config& config, data::image_shape shape,
                     std::size_t classes, hdc::train_mode mode,
                     hdc::query_mode inference)
    : encoder_((validate_geometry(config.dim, shape, classes), config), shape),
      classifier_(encoder_, classes, mode, inference) {}

uhd_model::uhd_model(const uhd_model& other)
    : encoder_(other.encoder_), classifier_(other.classifier_) {
    classifier_.rebind_encoder(encoder_);
}

uhd_model::uhd_model(uhd_model&& other) noexcept
    : encoder_(std::move(other.encoder_)),
      classifier_(std::move(other.classifier_)) {
    classifier_.rebind_encoder(encoder_);
}

uhd_model& uhd_model::operator=(const uhd_model& other) {
    if (this != &other) {
        encoder_ = other.encoder_;
        classifier_ = other.classifier_;
        classifier_.rebind_encoder(encoder_);
    }
    return *this;
}

uhd_model& uhd_model::operator=(uhd_model&& other) noexcept {
    if (this != &other) {
        encoder_ = std::move(other.encoder_);
        classifier_ = std::move(other.classifier_);
        classifier_.rebind_encoder(encoder_);
    }
    return *this;
}

uhd_model uhd_model::train(const uhd_config& config, const data::dataset& train_set,
                           hdc::train_mode mode, hdc::query_mode inference) {
    UHD_REQUIRE(!train_set.empty(), "training set is empty");
    uhd_model model(config, train_set.shape(), train_set.num_classes(), mode, inference);
    model.fit(train_set);
    return model;
}

void uhd_model::fit(const data::dataset& train_set) { classifier_.fit(train_set); }

void uhd_model::fit_parallel(const data::dataset& train_set, thread_pool* pool,
                             hdc::trainer_options options) {
    classifier_.fit_parallel(train_set, pool, options);
}

void uhd_model::partial_fit(std::span<const std::uint8_t> image, std::size_t label) {
    classifier_.partial_fit(image, label);
}

std::size_t uhd_model::predict(std::span<const std::uint8_t> image) const {
    return classifier_.predict(image);
}

double uhd_model::evaluate(const data::dataset& test, data::confusion_matrix* matrix,
                           thread_pool* pool) const {
    return classifier_.evaluate(test, matrix, pool);
}

std::vector<std::size_t> uhd_model::predict_batch(const data::dataset& set,
                                                  thread_pool* pool) const {
    return classifier_.predict_batch(set, pool);
}

std::size_t uhd_model::retrain(const data::dataset& train_set, std::size_t epochs) {
    return classifier_.retrain(train_set, epochs);
}

std::size_t uhd_model::retrain(const data::dataset& train_set, std::size_t epochs,
                               thread_pool* pool, std::size_t batch_images) {
    return classifier_.retrain(train_set, epochs, pool, batch_images);
}

std::size_t uhd_model::predict_dynamic(std::span<const std::uint8_t> image,
                                       const hdc::dynamic_query_policy& policy,
                                       hdc::dynamic_query_stats* stats) const {
    return classifier_.predict_dynamic(image, policy, stats);
}

hdc::inference_snapshot uhd_model::snapshot() const { return classifier_.snapshot(); }

hdc::dynamic_query_policy uhd_model::calibrate_dynamic(const data::dataset& holdout,
                                                       double target_agreement,
                                                       thread_pool* pool) const {
    return classifier_.calibrate_dynamic(holdout, target_agreement, pool);
}

void uhd_model::save(std::ostream& os) const {
    io::write_header(os, model_magic, model_version);
    const uhd_config& cfg = encoder_.config();
    io::write_u64(os, cfg.dim);
    io::write_u32(os, cfg.quant_levels);
    io::write_u64(os, cfg.sobol_seed);
    io::write_u64(os, encoder_.shape().rows);
    io::write_u64(os, encoder_.shape().cols);
    io::write_u64(os, encoder_.shape().channels);
    io::write_u64(os, classifier_.classes());
    io::write_u32(os, classifier_.mode() == hdc::train_mode::raw_sums ? 1u : 0u);
    io::write_u32(os, classifier_.inference() == hdc::query_mode::integer ? 1u : 0u);
    io::write_u32(os, cfg.bank == bank_mode::rematerialize ? 1u : 0u);
    for (std::size_t c = 0; c < classifier_.classes(); ++c) {
        io::write_pod_span(os, classifier_.class_accumulator(c).values());
    }
}

void uhd_model::save_file(const std::string& path) const {
    std::ofstream os(path, std::ios::binary);
    UHD_REQUIRE(os.good(), "cannot open model file for writing: " + path);
    save(os);
    // A full disk can fail a buffered write after save() returns; flush and
    // re-check so truncated models are an error, not a silent artifact.
    os.flush();
    UHD_REQUIRE(os.good(), "short write while saving model file: " + path);
}

uhd_model uhd_model::load(std::istream& is) {
    const std::uint32_t version = io::read_header(is, model_magic, model_version);
    uhd_config cfg;
    cfg.dim = static_cast<std::size_t>(io::read_u64(is));
    cfg.quant_levels = io::read_u32(is);
    cfg.sobol_seed = io::read_u64(is);
    data::image_shape shape;
    shape.rows = static_cast<std::size_t>(io::read_u64(is));
    shape.cols = static_cast<std::size_t>(io::read_u64(is));
    shape.channels = static_cast<std::size_t>(io::read_u64(is));
    const std::size_t classes = static_cast<std::size_t>(io::read_u64(is));
    // Same bounds the constructor enforces: a corrupt stream must fail
    // cleanly here rather than drive a multi-gigabyte bank/accumulator
    // allocation below.
    validate_geometry(cfg.dim, shape, classes);
    const hdc::train_mode mode = io::read_u32(is) == 1u ? hdc::train_mode::raw_sums
                                                        : hdc::train_mode::binarized_images;
    const hdc::query_mode inference = io::read_u32(is) == 1u ? hdc::query_mode::integer
                                                             : hdc::query_mode::binarized;
    if (version >= 2) {
        cfg.bank = io::read_u32(is) == 1u ? bank_mode::rematerialize : bank_mode::stored;
    }
    uhd_model model(cfg, shape, classes, mode, inference);
    std::vector<hdc::accumulator> accumulators;
    accumulators.reserve(classes);
    for (std::size_t c = 0; c < classes; ++c) {
        const auto values = io::read_pod_vector<std::int32_t>(is);
        UHD_REQUIRE(values.size() == cfg.dim, "model file accumulator size mismatch");
        hdc::accumulator acc(cfg.dim);
        for (std::size_t d = 0; d < values.size(); ++d) acc.values()[d] = values[d];
        accumulators.push_back(std::move(acc));
    }
    model.classifier_.load_state(std::move(accumulators));
    return model;
}

uhd_model uhd_model::load_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    UHD_REQUIRE(is.good(), "cannot open model file for reading: " + path);
    return load(is);
}

} // namespace uhd::core
