#include "uhd/core/binarizer.hpp"

#include "uhd/common/bits.hpp"
#include "uhd/common/error.hpp"

namespace uhd::core {

popcount_binarizer::popcount_binarizer(std::size_t h)
    : popcount_binarizer(h, (h + 1) / 2) {} // ceil(H/2): ties -> +1

popcount_binarizer::popcount_binarizer(std::size_t h, std::size_t tob)
    : h_(h),
      tob_(tob),
      counter_bits_(static_cast<unsigned>(ceil_log2(h + 1))),
      mask_(static_cast<std::uint32_t>(tob_)) {
    UHD_REQUIRE(h >= 1, "binarizer needs at least one input");
    UHD_REQUIRE(tob >= 1 && tob <= h + 1, "threshold out of counter range");
}

void popcount_binarizer::reset() noexcept {
    count_ = 0;
    consumed_ = 0;
    sign_ = false;
}

void popcount_binarizer::feed(bool bit) {
    UHD_REQUIRE(consumed_ < h_, "binarizer fed more than H bits");
    ++consumed_;
    if (bit) {
        ++count_;
        // Masking logic: all counter bits selected by the TOB pattern are
        // monotone once the count passes TOB, so a single AND latches the
        // sign. Modeled behaviourally as count >= TOB.
        if (count_ >= tob_) sign_ = true;
    }
}

} // namespace uhd::core
