#include "uhd/serve/inference_engine.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "uhd/common/affinity.hpp"
#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/core/encoder.hpp"

namespace uhd::serve {

inference_engine::inference_engine(hdc::inference_snapshot initial,
                                   engine_options options)
    : dim_(initial.dim()), classes_(initial.classes()), mode_(initial.mode()),
      current_(std::make_shared<const hdc::inference_snapshot>(std::move(initial))),
      encoder_(options.encoder), queue_(options.queue_capacity),
      max_batch_(options.max_batch == 0 ? 1 : options.max_batch) {
    UHD_REQUIRE(dim_ >= 1, "engine needs a non-empty snapshot");
    UHD_REQUIRE(encoder_ == nullptr || encoder_->dim() == dim_,
                "engine encoder dim does not match the snapshot");
    start_workers(options.workers);
}

inference_engine::inference_engine(hdc::inference_snapshot initial,
                                   hdc::dynamic_query_policy policy,
                                   engine_options options)
    : dim_(initial.dim()), classes_(initial.classes()), mode_(initial.mode()),
      current_(std::make_shared<const hdc::inference_snapshot>(std::move(initial))),
      policy_(std::move(policy)), encoder_(options.encoder),
      queue_(options.queue_capacity),
      max_batch_(options.max_batch == 0 ? 1 : options.max_batch) {
    UHD_REQUIRE(dim_ >= 1, "engine needs a non-empty snapshot");
    UHD_REQUIRE(encoder_ == nullptr || encoder_->dim() == dim_,
                "engine encoder dim does not match the snapshot");
    // Policies are keyed on the row width; a mismatched one would fail on
    // the first query — fail at construction instead.
    UHD_REQUIRE(policy_->full_words() == current_.load()->words_per_class(),
                "dynamic policy row width does not match the snapshot");
    start_workers(options.workers);
}

inference_engine::~inference_engine() { stop(); }

void inference_engine::start_workers(std::size_t workers) {
    if (workers == 0) workers = 1;
    // Resolve UHD_AFFINITY on the constructing thread so a bad value throws
    // here, not inside a worker (pin_this_thread is noexcept).
    (void)resolved_affinity();
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

void inference_engine::publish(hdc::inference_snapshot next) {
    UHD_REQUIRE(next.dim() == dim_ && next.classes() == classes_,
                "published snapshot geometry mismatch");
    UHD_REQUIRE(next.mode() == mode_, "published snapshot query-mode mismatch");
    // The whole swap: one pointer store in the cell. Readers that already
    // loaded the old snapshot keep it alive through their shared_ptr; the
    // old state is freed when the last of them finishes.
    current_.store(std::make_shared<const hdc::inference_snapshot>(std::move(next)));
    counters_.record_swap();
}

std::shared_ptr<const hdc::inference_snapshot> inference_engine::current() const {
    return current_.load();
}

std::future<std::size_t> inference_engine::submit(
    std::vector<std::int32_t> encoded) {
    UHD_REQUIRE(encoded.size() == dim_, "encoded query size mismatch");
    UHD_REQUIRE(!stopped_.load(std::memory_order_acquire),
                "submit() on a stopped engine");
    request req;
    req.encoded = std::move(encoded);
    // The future path keeps the engine's configured default: a policy
    // engine answers through the cascade, a plain one with the full scan.
    req.dynamic = policy_.has_value();
    std::future<std::size_t> result = req.answer.get_future();
    if (!queue_.push(std::move(req))) {
        // Raced with stop(): the request never entered the queue.
        throw uhd::error("submit() on a stopped engine");
    }
    return result;
}

bool inference_engine::try_submit(std::vector<std::int32_t>& encoded,
                                  answer_callback done, bool dynamic) {
    UHD_REQUIRE(encoded.size() == dim_, "encoded query size mismatch");
    UHD_REQUIRE(done != nullptr, "try_submit() needs a completion callback");
    UHD_REQUIRE(!dynamic || policy_.has_value(),
                "dynamic request on an engine without a dynamic policy");
    UHD_REQUIRE(!stopped_.load(std::memory_order_acquire),
                "try_submit() on a stopped engine");
    request req;
    req.encoded = std::move(encoded);
    req.on_done = std::move(done);
    req.dynamic = dynamic;
    switch (queue_.try_push(std::move(req))) {
    case push_result::pushed:
        return true;
    case push_result::full:
        // Hand the payload back untouched so the caller can park + retry.
        encoded = std::move(req.encoded);
        return false;
    case push_result::closed:
    default:
        throw uhd::error("try_submit() on a stopped engine");
    }
}

bool inference_engine::try_submit_raw(std::vector<std::uint8_t>& raw,
                                      answer_callback done, bool dynamic) {
    UHD_REQUIRE(encoder_ != nullptr,
                "raw submit on an engine without an encoder");
    UHD_REQUIRE(raw.size() == encoder_->pixels(), "raw query size mismatch");
    UHD_REQUIRE(done != nullptr, "try_submit_raw() needs a completion callback");
    UHD_REQUIRE(!dynamic || policy_.has_value(),
                "dynamic request on an engine without a dynamic policy");
    UHD_REQUIRE(!stopped_.load(std::memory_order_acquire),
                "try_submit_raw() on a stopped engine");
    request req;
    req.raw = std::move(raw);
    req.on_done = std::move(done);
    req.dynamic = dynamic;
    switch (queue_.try_push(std::move(req))) {
    case push_result::pushed:
        return true;
    case push_result::full:
        // Hand the payload back untouched so the caller can park + retry.
        raw = std::move(req.raw);
        return false;
    case push_result::closed:
    default:
        throw uhd::error("try_submit_raw() on a stopped engine");
    }
}

std::size_t inference_engine::predict(std::span<const std::int32_t> encoded) {
    return submit(std::vector<std::int32_t>(encoded.begin(), encoded.end())).get();
}

std::size_t inference_engine::predict(std::span<const std::int32_t> encoded,
                                      std::vector<std::int32_t>& scratch) {
    UHD_REQUIRE(encoded.size() == dim_, "encoded query size mismatch");
    UHD_REQUIRE(!stopped_.load(std::memory_order_acquire),
                "predict() on a stopped engine");
    scratch.assign(encoded.begin(), encoded.end()); // reuses capacity
    request req;
    req.encoded = std::move(scratch);
    req.reclaim = &scratch;
    req.dynamic = policy_.has_value();
    std::future<std::size_t> result = req.answer.get_future();
    if (!queue_.push(std::move(req))) {
        throw uhd::error("predict() on a stopped engine");
    }
    // The worker moves the buffer back into `scratch` before set_value, and
    // get() happens-after set_value, so the caller re-owns the allocation
    // (now warm) the moment this returns.
    return result.get();
}

std::size_t inference_engine::raw_pixels() const noexcept {
    return encoder_ == nullptr ? 0 : encoder_->pixels();
}

serve_stats inference_engine::stats() const {
    return counters_.load(current_.load()->version());
}

void inference_engine::stop() {
    stopped_.store(true, std::memory_order_release);
    queue_.close();
    // Serialize concurrent stop() callers (e.g. an explicit shutdown path
    // racing the destructor): exactly one thread joins and clears the
    // workers, any other blocks here until that is done.
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    for (std::thread& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
    workers_.clear();
}

void inference_engine::complete(request& req, std::size_t label,
                                std::uint64_t version) {
    // Scratch-predict handoff: return the encoded buffer BEFORE the promise
    // is fulfilled — set_value/get() is the synchronization edge that makes
    // the caller's read of *reclaim race-free.
    if (req.reclaim != nullptr) *req.reclaim = std::move(req.encoded);
    if (req.on_done) {
        // Wire-path callbacks are documented cheap and non-throwing; a
        // throw here must not take down the worker (it would strand every
        // later request in the drained batch), so swallow defensively.
        try {
            req.on_done(label, version, nullptr);
        } catch (...) { // NOLINT(bugprone-empty-catch)
        }
    } else {
        req.answer.set_value(label);
    }
}

void inference_engine::fail(request& req, const std::exception_ptr& error) {
    req.failed = true;
    if (req.reclaim != nullptr) *req.reclaim = std::move(req.encoded);
    if (req.on_done) {
        try {
            req.on_done(0, 0, error);
        } catch (...) { // NOLINT(bugprone-empty-catch)
        }
    } else {
        req.answer.set_exception(error);
    }
}

void inference_engine::worker_loop() {
    pin_this_thread(); // UHD_AFFINITY=auto: distinct core per worker
    std::vector<request> batch;
    // Worker-local block scratch, reused across drains: the group index
    // list, the packed query block (one sign-binarized row per request),
    // the answer slots, and the encode-stage gather/output buffers.
    std::vector<std::size_t> group;
    std::vector<std::uint64_t> packed;
    std::vector<std::size_t> answers;
    std::vector<std::uint8_t> raw_gather;
    std::vector<std::int32_t> encoded_out;
    while (queue_.pop_batch(batch, max_batch_) != 0) {
        // One snapshot load per micro-batch: every request in the batch is
        // answered from the same immutable state, concurrent publishes
        // notwithstanding.
        const std::shared_ptr<const hdc::inference_snapshot> snap = current_.load();
        const std::uint64_t version = snap->version();
        std::uint64_t kernel_calls = 0;

        // Encode stage: raw requests in the drained batch are gathered into
        // one contiguous image block and pushed through ONE encode_batch
        // call (the block kernels), so encoding is amortized exactly like
        // the distance kernels below — and bit-identical to the inline
        // single-query encode (encode_batch ≡ encode, tested per backend).
        if (encoder_ != nullptr) {
            group.clear();
            for (std::size_t i = 0; i < batch.size(); ++i) {
                if (!batch[i].raw.empty()) group.push_back(i);
            }
            if (!group.empty()) {
                const std::size_t pixels = encoder_->pixels();
                raw_gather.resize(group.size() * pixels);
                encoded_out.resize(group.size() * dim_);
                try {
                    for (std::size_t g = 0; g < group.size(); ++g) {
                        const std::vector<std::uint8_t>& raw = batch[group[g]].raw;
                        std::copy(raw.begin(), raw.end(),
                                  raw_gather.begin() +
                                      static_cast<std::ptrdiff_t>(g * pixels));
                    }
                    encoder_->encode_batch(
                        std::span<const std::uint8_t>(raw_gather),
                        group.size(), std::span<std::int32_t>(encoded_out));
                    for (std::size_t g = 0; g < group.size(); ++g) {
                        request& req = batch[group[g]];
                        req.encoded.assign(
                            encoded_out.begin() +
                                static_cast<std::ptrdiff_t>(g * dim_),
                            encoded_out.begin() +
                                static_cast<std::ptrdiff_t>((g + 1) * dim_));
                    }
                } catch (...) {
                    for (const std::size_t i : group) {
                        fail(batch[i], std::current_exception());
                    }
                }
                counters_.record_encode(group.size());
            }
        }

        // Requests route per-request since the wire path arrived: a drained
        // batch may mix full-scan (dynamic == false) and cascade
        // (dynamic == true) requests; each kind is answered with its own
        // single block-kernel call, so a homogeneous batch still costs
        // exactly one call. The cascade always answers from the packed
        // memory; the full scan answers from packed memory in binarized
        // mode and falls back to per-request integer cosine otherwise.
        const auto answer_group = [&](bool dynamic) {
            group.clear();
            for (std::size_t i = 0; i < batch.size(); ++i) {
                // failed: already answered by the encode stage's fail()
                if (batch[i].dynamic == dynamic && !batch[i].failed) {
                    group.push_back(i);
                }
            }
            if (group.empty()) return;
            if (!dynamic && mode_ == hdc::query_mode::integer) {
                // Integer full-cosine has no block kernel: per-request loop.
                for (const std::size_t i : group) {
                    request& req = batch[i];
                    try {
                        complete(req, snap->predict_encoded(req.encoded), version);
                    } catch (...) {
                        fail(req, std::current_exception());
                    }
                    ++kernel_calls;
                }
                return;
            }
            // ONE block-kernel call for the whole group: sign-binarize every
            // request into one contiguous packed block, then block-argmin
            // (or the stage-synchronized block cascade) over it.
            // Bit-identical per request to the single-query predict paths —
            // submit pinned every encoded size to dim(), so the group can
            // only fail as a whole.
            const std::size_t words = snap->words_per_class();
            packed.resize(group.size() * words);
            answers.resize(group.size());
            bool answered = false;
            try {
                for (std::size_t g = 0; g < group.size(); ++g) {
                    const request& req = batch[group[g]];
                    kernels::sign_binarize(req.encoded.data(), req.encoded.size(),
                                           packed.data() + g * words);
                }
                const std::span<const std::uint64_t> block(packed.data(),
                                                           packed.size());
                if (dynamic) {
                    policy_->answer_block(*snap, block, group.size(), answers);
                } else {
                    snap->predict_packed_block(block, group.size(), answers);
                }
                answered = true;
            } catch (...) {
                for (const std::size_t i : group) {
                    fail(batch[i], std::current_exception());
                }
            }
            ++kernel_calls;
            if (answered) {
                for (std::size_t g = 0; g < group.size(); ++g) {
                    complete(batch[group[g]], answers[g], version);
                }
            }
        };
        answer_group(false);
        answer_group(true);
        counters_.record_batch(batch.size(), kernel_calls);
    }
}

} // namespace uhd::serve
