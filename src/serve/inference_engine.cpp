#include "uhd/serve/inference_engine.hpp"

#include <span>
#include <utility>

#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"

namespace uhd::serve {

inference_engine::inference_engine(hdc::inference_snapshot initial,
                                   engine_options options)
    : dim_(initial.dim()), classes_(initial.classes()), mode_(initial.mode()),
      current_(std::make_shared<const hdc::inference_snapshot>(std::move(initial))),
      queue_(options.queue_capacity),
      max_batch_(options.max_batch == 0 ? 1 : options.max_batch) {
    UHD_REQUIRE(dim_ >= 1, "engine needs a non-empty snapshot");
    start_workers(options.workers);
}

inference_engine::inference_engine(hdc::inference_snapshot initial,
                                   hdc::dynamic_query_policy policy,
                                   engine_options options)
    : dim_(initial.dim()), classes_(initial.classes()), mode_(initial.mode()),
      current_(std::make_shared<const hdc::inference_snapshot>(std::move(initial))),
      policy_(std::move(policy)), queue_(options.queue_capacity),
      max_batch_(options.max_batch == 0 ? 1 : options.max_batch) {
    UHD_REQUIRE(dim_ >= 1, "engine needs a non-empty snapshot");
    // Policies are keyed on the row width; a mismatched one would fail on
    // the first query — fail at construction instead.
    UHD_REQUIRE(policy_->full_words() == current_.load()->words_per_class(),
                "dynamic policy row width does not match the snapshot");
    start_workers(options.workers);
}

inference_engine::~inference_engine() { stop(); }

void inference_engine::start_workers(std::size_t workers) {
    if (workers == 0) workers = 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

void inference_engine::publish(hdc::inference_snapshot next) {
    UHD_REQUIRE(next.dim() == dim_ && next.classes() == classes_,
                "published snapshot geometry mismatch");
    UHD_REQUIRE(next.mode() == mode_, "published snapshot query-mode mismatch");
    // The whole swap: one pointer store in the cell. Readers that already
    // loaded the old snapshot keep it alive through their shared_ptr; the
    // old state is freed when the last of them finishes.
    current_.store(std::make_shared<const hdc::inference_snapshot>(std::move(next)));
    counters_.record_swap();
}

std::shared_ptr<const hdc::inference_snapshot> inference_engine::current() const {
    return current_.load();
}

std::future<std::size_t> inference_engine::submit(
    std::vector<std::int32_t> encoded) {
    UHD_REQUIRE(encoded.size() == dim_, "encoded query size mismatch");
    UHD_REQUIRE(!stopped_.load(std::memory_order_acquire),
                "submit() on a stopped engine");
    request req;
    req.encoded = std::move(encoded);
    std::future<std::size_t> result = req.answer.get_future();
    if (!queue_.push(std::move(req))) {
        // Raced with stop(): the request never entered the queue.
        throw uhd::error("submit() on a stopped engine");
    }
    return result;
}

std::size_t inference_engine::predict(std::span<const std::int32_t> encoded) {
    return submit(std::vector<std::int32_t>(encoded.begin(), encoded.end())).get();
}

serve_stats inference_engine::stats() const {
    return counters_.load(current_.load()->version());
}

void inference_engine::stop() {
    stopped_.store(true, std::memory_order_release);
    queue_.close();
    // Serialize concurrent stop() callers (e.g. an explicit shutdown path
    // racing the destructor): exactly one thread joins and clears the
    // workers, any other blocks here until that is done.
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    for (std::thread& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
    workers_.clear();
}

void inference_engine::worker_loop() {
    std::vector<request> batch;
    // Worker-local block scratch, reused across drains: the packed query
    // block (one sign-binarized row per request) and the answer slots.
    std::vector<std::uint64_t> packed;
    std::vector<std::size_t> answers;
    // The cascade always answers from the packed memory regardless of the
    // snapshot's query mode, so every policy-configured engine takes the
    // block path; only the integer full-cosine mode loops per request.
    const bool block_path =
        policy_.has_value() || mode_ == hdc::query_mode::binarized;
    while (queue_.pop_batch(batch, max_batch_) != 0) {
        // One snapshot load per micro-batch: every request in the batch is
        // answered from the same immutable state, concurrent publishes
        // notwithstanding.
        const std::shared_ptr<const hdc::inference_snapshot> snap = current_.load();
        if (block_path) {
            // The whole drained batch is answered with ONE block-kernel
            // call: sign-binarize every request into one contiguous packed
            // block, then block-argmin (or the stage-synchronized block
            // cascade) over it. Bit-identical per request to the
            // single-query predict paths — submit() pinned every encoded
            // size to dim(), so the batch can only fail as a whole.
            const std::size_t words = snap->words_per_class();
            packed.resize(batch.size() * words);
            answers.resize(batch.size());
            bool answered = false;
            try {
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    kernels::sign_binarize(batch[i].encoded.data(),
                                           batch[i].encoded.size(),
                                           packed.data() + i * words);
                }
                const std::span<const std::uint64_t> block(packed.data(),
                                                           packed.size());
                if (policy_.has_value()) {
                    policy_->answer_block(*snap, block, batch.size(), answers);
                } else {
                    snap->predict_packed_block(block, batch.size(), answers);
                }
                answered = true;
            } catch (...) {
                for (request& req : batch) {
                    req.answer.set_exception(std::current_exception());
                }
            }
            if (answered) {
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    batch[i].answer.set_value(answers[i]);
                }
            }
            counters_.record_batch(batch.size(), 1);
        } else {
            for (request& req : batch) {
                try {
                    req.answer.set_value(snap->predict_encoded(req.encoded));
                } catch (...) {
                    req.answer.set_exception(std::current_exception());
                }
            }
            counters_.record_batch(batch.size(), batch.size());
        }
    }
}

} // namespace uhd::serve
