// The publication point of the RCU-style snapshot swap: one shared_ptr
// slot, swapped by the single writer, copied by many readers.
//
// Semantics are those of std::atomic<std::shared_ptr<const
// inference_snapshot>> — and that is deliberately NOT the implementation:
// libstdc++'s _Sp_atomic guards its pointer word with a lock bit embedded
// in the refcount pointer, a protocol ThreadSanitizer cannot model, so
// every load/store pair reports a false-positive race and the concurrent
// serving suites could never run under TSan (the CI job that guards this
// subsystem). A plain mutex held for a pointer copy is fully
// TSan-verifiable and costs nanoseconds.
//
// The concurrency contract still holds where it matters:
// * load() holds the mutex only to copy the shared_ptr (one refcount
//   increment) — never while answering queries. All inference runs on the
//   immutable snapshot with no lock held, and the engine loads once per
//   micro-batch, amortizing the copy over the whole batch.
// * store() swaps the slot under the mutex and drops the previous
//   snapshot's reference *outside* it, so freeing a large retired
//   snapshot never stalls readers.
// * Readers that copied the old pointer keep a valid immutable snapshot
//   until they drop it — publication never invalidates in-flight work.
#ifndef UHD_SERVE_SNAPSHOT_CELL_HPP
#define UHD_SERVE_SNAPSHOT_CELL_HPP

#include <memory>
#include <mutex>
#include <utility>

#include "uhd/hdc/inference_snapshot.hpp"

namespace uhd::serve {

/// Single-slot publication cell for immutable inference snapshots.
class snapshot_cell {
public:
    snapshot_cell() = default;

    explicit snapshot_cell(std::shared_ptr<const hdc::inference_snapshot> initial)
        : ptr_(std::move(initial)) {}

    snapshot_cell(const snapshot_cell&) = delete;
    snapshot_cell& operator=(const snapshot_cell&) = delete;

    /// Copy of the current snapshot pointer. The returned pointer pins the
    /// snapshot: it stays valid however many newer ones are published.
    [[nodiscard]] std::shared_ptr<const hdc::inference_snapshot> load() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return ptr_;
    }

    /// Publish `next`: one pointer swap under the mutex; the retired
    /// snapshot's reference is dropped after the lock is released.
    void store(std::shared_ptr<const hdc::inference_snapshot> next) {
        std::shared_ptr<const hdc::inference_snapshot> retired;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            retired = std::exchange(ptr_, std::move(next));
        }
        // `retired` drops here, outside the critical section.
    }

private:
    mutable std::mutex mutex_;
    std::shared_ptr<const hdc::inference_snapshot> ptr_;
};

} // namespace uhd::serve

#endif // UHD_SERVE_SNAPSHOT_CELL_HPP
