// Serving-engine counters: lock-free atomics updated by workers and the
// publisher, snapshotted into a plain struct for reporting.
#ifndef UHD_SERVE_SERVE_STATS_HPP
#define UHD_SERVE_SERVE_STATS_HPP

#include <atomic>
#include <cstdint>

namespace uhd::serve {

/// Point-in-time view of an engine's counters (plain data, safe to copy
/// around and print). Counters are each individually consistent; a view
/// taken mid-flight may be torn *across* fields (queries from one instant,
/// batches from the next) — fine for monitoring, quiesce first for exact
/// accounting.
struct serve_stats {
    std::uint64_t queries = 0;            ///< requests answered
    std::uint64_t batches = 0;            ///< micro-batches drained
    std::uint64_t kernel_calls = 0;       ///< distance-engine drain calls
                                          ///< (1 per batch on the block
                                          ///< path, batch size on the
                                          ///< per-query fallback)
    std::uint64_t snapshot_swaps = 0;     ///< publish() calls accepted
    std::uint64_t max_batch_observed = 0; ///< largest drained batch
    std::uint64_t snapshot_version = 0;   ///< version of the live snapshot
    std::uint64_t raw_queries = 0;        ///< requests that arrived as raw
                                          ///< features (encoded off-loop by
                                          ///< the worker's encode stage)
    std::uint64_t encode_kernel_calls = 0; ///< encode_batch drain calls
                                           ///< (1 per raw micro-batch)

    /// Effective block utilization: requests answered per distance-engine
    /// drain call (== avg micro-batch size when every batch takes the
    /// block path; 1.0 on the per-query fallback).
    [[nodiscard]] double block_utilization() const noexcept {
        return kernel_calls == 0 ? 0.0
                                 : static_cast<double>(queries) /
                                       static_cast<double>(kernel_calls);
    }

    /// Encode-stage utilization: raw requests encoded per encode_batch
    /// drain call — the same amortization measure as block_utilization,
    /// for the off-loop raw-query encode stage.
    [[nodiscard]] double encode_utilization() const noexcept {
        return encode_kernel_calls == 0
                   ? 0.0
                   : static_cast<double>(raw_queries) /
                         static_cast<double>(encode_kernel_calls);
    }
};

/// The engine's live counters. Relaxed ordering throughout: counters are
/// monotonic telemetry, not synchronization — snapshot publication has its
/// own acquire/release edge (the atomic shared_ptr swap).
class serve_counters {
public:
    void record_batch(std::uint64_t batch_size,
                      std::uint64_t kernel_calls) noexcept {
        queries_.fetch_add(batch_size, std::memory_order_relaxed);
        batches_.fetch_add(1, std::memory_order_relaxed);
        kernel_calls_.fetch_add(kernel_calls, std::memory_order_relaxed);
        // Monotonic max via CAS: several workers may race, the largest wins.
        std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
        while (batch_size > seen &&
               !max_batch_.compare_exchange_weak(seen, batch_size,
                                                 std::memory_order_relaxed)) {
        }
    }

    void record_swap() noexcept {
        swaps_.fetch_add(1, std::memory_order_relaxed);
    }

    /// One drained raw micro-batch: `raw` requests encoded through a
    /// single encode_batch call (the off-loop encode stage).
    void record_encode(std::uint64_t raw) noexcept {
        raw_queries_.fetch_add(raw, std::memory_order_relaxed);
        encode_calls_.fetch_add(1, std::memory_order_relaxed);
    }

    [[nodiscard]] serve_stats load(std::uint64_t snapshot_version) const noexcept {
        serve_stats out;
        out.queries = queries_.load(std::memory_order_relaxed);
        out.batches = batches_.load(std::memory_order_relaxed);
        out.kernel_calls = kernel_calls_.load(std::memory_order_relaxed);
        out.snapshot_swaps = swaps_.load(std::memory_order_relaxed);
        out.max_batch_observed = max_batch_.load(std::memory_order_relaxed);
        out.snapshot_version = snapshot_version;
        out.raw_queries = raw_queries_.load(std::memory_order_relaxed);
        out.encode_kernel_calls = encode_calls_.load(std::memory_order_relaxed);
        return out;
    }

private:
    // Each counter sits on its own cache line (alignas(64)): the hot
    // worker-side counters (queries/batches/kernel_calls, bumped once per
    // drained micro-batch by every worker) must not false-share a line with
    // the publisher's swap counter or with max_batch_'s CAS loop — packed
    // into one line, every record_swap() invalidated the line every worker
    // increments through. Measured on this box (bench_serve defaults,
    // 4 clients x 2 workers + publishing trainer, 7 runs each): best
    // ~184k qps packed -> ~203k qps padded (~10%), medians ~151k -> ~180k
    // (run-to-run noise on a shared box is large; the direction held in
    // every aggregate). sizeof(serve_counters) grows 40 -> 320 bytes, one
    // instance per engine.
    alignas(64) std::atomic<std::uint64_t> queries_{0};
    alignas(64) std::atomic<std::uint64_t> batches_{0};
    alignas(64) std::atomic<std::uint64_t> kernel_calls_{0};
    alignas(64) std::atomic<std::uint64_t> swaps_{0};
    alignas(64) std::atomic<std::uint64_t> max_batch_{0};
    alignas(64) std::atomic<std::uint64_t> raw_queries_{0};
    alignas(64) std::atomic<std::uint64_t> encode_calls_{0};
};

} // namespace uhd::serve

#endif // UHD_SERVE_SERVE_STATS_HPP
