// Bounded MPMC request queue with micro-batch draining — the admission
// path of the serving engine.
//
// Producers (client threads) push one request at a time; consumers (pool
// workers) drain up to `max_batch` requests in one critical section, so a
// burst of concurrent queries is answered as a few batches — each batch
// loads the current inference snapshot once and amortizes the wake-up and
// pointer-chase over every request in it. The capacity bound gives
// backpressure: when readers fall behind, producers block instead of
// growing an unbounded backlog (tail latency becomes visible at the
// client, not hidden in a queue).
//
// close() wakes everyone: producers get `false`, consumers drain what is
// left and then get an empty batch — the engine's shutdown handshake.
#ifndef UHD_SERVE_REQUEST_QUEUE_HPP
#define UHD_SERVE_REQUEST_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "uhd/common/error.hpp"

namespace uhd::serve {

/// Outcome of a non-blocking try_push().
enum class push_result {
    pushed, ///< item enqueued
    full,   ///< queue at capacity; the item was NOT consumed — retry later
    closed, ///< queue closed; the item was NOT consumed and never will be
};

/// Bounded multi-producer/multi-consumer queue drained in micro-batches.
template <typename T>
class micro_batch_queue {
public:
    /// Queue admitting at most `capacity` waiting items.
    explicit micro_batch_queue(std::size_t capacity = 1024) : capacity_(capacity) {
        UHD_REQUIRE(capacity >= 1, "queue capacity must be positive");
    }

    micro_batch_queue(const micro_batch_queue&) = delete;
    micro_batch_queue& operator=(const micro_batch_queue&) = delete;

    /// Enqueue one item, blocking while the queue is full. Returns false
    /// (item dropped) when the queue is closed.
    bool push(T item) {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
        if (closed_) return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking enqueue for callers that must never stall (the epoll
    /// event loop of the wire front-end): returns immediately with `full`
    /// instead of waiting for capacity. On `full`/`closed` the item is left
    /// untouched in the caller's hands (it is only moved from on `pushed`),
    /// so a throttled producer can park it and retry.
    [[nodiscard]] push_result try_push(T&& item) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (closed_) return push_result::closed;
            if (items_.size() >= capacity_) return push_result::full;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return push_result::pushed;
    }

    /// Drain up to `max_batch` items into `out` (cleared first), blocking
    /// until at least one item is available. Returns the batch size; 0 means
    /// closed-and-empty — the consumer's exit signal.
    std::size_t pop_batch(std::vector<T>& out, std::size_t max_batch) {
        out.clear();
        if (max_batch == 0) max_batch = 1;
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
        const std::size_t take = items_.size() < max_batch ? items_.size() : max_batch;
        for (std::size_t i = 0; i < take; ++i) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        lock.unlock();
        // Every drained slot frees capacity; taken == 0 only at shutdown.
        if (take != 0) not_full_.notify_all();
        return take;
    }

    /// Close the queue: further push() calls fail, consumers drain the
    /// remaining backlog and then receive empty batches. Idempotent.
    void close() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /// Items currently waiting (diagnostic; racy by nature).
    [[nodiscard]] std::size_t size() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
};

} // namespace uhd::serve

#endif // UHD_SERVE_REQUEST_QUEUE_HPP
