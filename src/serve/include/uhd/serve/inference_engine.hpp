// Concurrent micro-batching serving engine over immutable inference
// snapshots — the "serve heavy traffic while learning online" layer.
//
// Architecture (RCU-style single-writer / many-readers):
//
//   clients ──submit()──▶ micro_batch_queue ──pop_batch()──▶ workers
//                                                              │
//   trainer ──partial_fit/retrain on its PRIVATE classifier    │ load
//      │                                                       ▼
//      └──publish(classifier.snapshot()) ──▶ snapshot_cell ◀───┘
//                       (shared_ptr<const inference_snapshot> slot)
//
// * The current snapshot lives in one snapshot_cell (atomic-shared_ptr
//   semantics, TSan-verifiable implementation — see snapshot_cell.hpp).
//   Readers (pool workers) load it once per micro-batch and answer every
//   request in the batch from that one immutable state, with no lock held
//   during inference; they never wait on training work and never observe
//   a half-updated model.
// * A drained micro-batch is answered with ONE block-kernel call whenever
//   the engine serves from the packed memory (binarized mode, or any
//   policy-configured engine): the requests are sign-binarized into one
//   contiguous packed block and pushed through the register-blocked
//   query-GEMM kernels (inference_snapshot::predict_packed_block /
//   dynamic_query_policy::answer_block), so each packed class row is
//   streamed once per query tile instead of once per request. Bit-identical
//   per request to the single-query paths; serve_stats::kernel_calls
//   counts the drain calls, so queries / kernel_calls is the effective
//   block utilization.
// * publish() is a single pointer swap. In-flight batches keep the
//   snapshot they already loaded (shared_ptr keeps it alive until the
//   last reader drops it); new batches see the new state. Queries are
//   therefore always answered by *some* fully-finalized snapshot — the
//   one current at batch start.
// * Training state never enters the engine: the trainer owns its
//   hd_classifier/uhd_model privately and hands in only snapshot()
//   copies. Correctness bar (tested, incl. under TSan): engine answers
//   are bit-identical to predict_encoded / predict_dynamic on the same
//   snapshot for every backend.
//
// Queries are pre-encoded int32 accumulators (encoding is
// encoder-specific and has its own batch engine); submit() returns a
// future, predict() is the blocking convenience. An engine configured
// with a dynamic_query_policy answers through the early-exit cascade
// instead of the full scan.
#ifndef UHD_SERVE_INFERENCE_ENGINE_HPP
#define UHD_SERVE_INFERENCE_ENGINE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "uhd/hdc/dynamic_query.hpp"
#include "uhd/hdc/inference_snapshot.hpp"
#include "uhd/serve/request_queue.hpp"
#include "uhd/serve/serve_stats.hpp"
#include "uhd/serve/snapshot_cell.hpp"

namespace uhd::core {
class uhd_encoder; // raw-query encode stage (engine_options::encoder)
} // namespace uhd::core

namespace uhd::serve {

/// Engine tuning knobs.
struct engine_options {
    /// Pool workers draining the request queue (>= 1).
    std::size_t workers = 2;
    /// Largest micro-batch one worker drains in one pass; the batch shares
    /// one snapshot load. Larger batches amortize more but lengthen the
    /// tail a burst adds to the last request in the batch.
    std::size_t max_batch = 32;
    /// Bounded backlog; producers block (backpressure) when it is full.
    std::size_t queue_capacity = 4096;
    /// Optional raw-feature encoder: when set, the engine accepts raw
    /// pixel queries through try_submit_raw() and its workers encode each
    /// drained raw micro-batch with ONE encode_batch call (block kernels)
    /// before answering — the off-loop encode stage. The encoder must
    /// outlive the engine and produce dim() accumulators; encoders are
    /// immutable after construction, so concurrent worker use is safe.
    const core::uhd_encoder* encoder = nullptr;
};

/// Completion callback for the wire-path submit: invoked exactly once, from
/// a worker thread, with the predicted label and the version() of the
/// snapshot that answered — or with a non-null exception_ptr (label/version
/// are then meaningless). Callbacks must be cheap and non-blocking: they run
/// inside the worker's drain loop (the wire front-end just queues the
/// completion and signals its event loop).
using answer_callback = std::function<void(
    std::size_t label, std::uint64_t snapshot_version, std::exception_ptr error)>;

/// Micro-batching query server over an atomically swappable snapshot.
class inference_engine {
public:
    /// Start `options.workers` workers serving `initial`.
    explicit inference_engine(hdc::inference_snapshot initial,
                              engine_options options = {});

    /// Same, answering through the early-exit cascade: `policy` must match
    /// the snapshot's row width (and every snapshot published later — the
    /// engine enforces fixed geometry across publishes). Like
    /// hd_classifier::predict_dynamic, the cascade always answers from the
    /// packed associative memory regardless of the snapshot's query_mode:
    /// a policy-configured engine over an integer-mode snapshot serves the
    /// binarized cascade answers, not the integer cosine ones (tested —
    /// bit-identical to predict_dynamic_encoded either way).
    inference_engine(hdc::inference_snapshot initial,
                     hdc::dynamic_query_policy policy,
                     engine_options options = {});

    inference_engine(const inference_engine&) = delete;
    inference_engine& operator=(const inference_engine&) = delete;

    /// stop()s and joins the workers.
    ~inference_engine();

    /// Swap in a new snapshot (single atomic pointer store). The trainer's
    /// publish path: geometry and query mode must match the engine's.
    /// In-flight batches finish on the snapshot they hold; the swap never
    /// waits for them.
    void publish(hdc::inference_snapshot next);

    /// The snapshot currently answering new batches. Holding the returned
    /// pointer pins that state — queries predicted against it directly are
    /// self-consistent even across concurrent publishes.
    [[nodiscard]] std::shared_ptr<const hdc::inference_snapshot> current() const;

    /// Enqueue one pre-encoded query (dim() int32 values; the vector is
    /// moved into the request). The future yields the predicted class, or
    /// rethrows if the engine is stopped before the request is served.
    /// Throws uhd::error on a size mismatch or when already stopped.
    [[nodiscard]] std::future<std::size_t> submit(std::vector<std::int32_t> encoded);

    /// Blocking convenience: submit + wait. The span is copied into the
    /// request; prefer submit() with a moved vector, or the scratch
    /// overload below, on hot paths.
    [[nodiscard]] std::size_t predict(std::span<const std::int32_t> encoded);

    /// Allocation-reusing predict: the span is copied into `scratch`
    /// (reusing its capacity — no allocation once warm), the request moves
    /// the buffer through the queue, and the worker hands the allocation
    /// back into `scratch` before fulfilling the future. The promise/future
    /// edge sequences the handoff, so when this returns the caller owns the
    /// (repopulated) scratch again and the next call is allocation-free.
    [[nodiscard]] std::size_t predict(std::span<const std::int32_t> encoded,
                                      std::vector<std::int32_t>& scratch);

    /// Non-blocking wire-path enqueue: never waits for queue capacity, and
    /// answers through `done` instead of a future, so a single-threaded
    /// event loop can feed the engine without stalling or parking a thread
    /// per request. On success returns true and `encoded` is moved from; on
    /// a full queue returns false, `encoded` is left intact in the caller's
    /// hands (park it and retry after a completion frees a slot), and
    /// `done` is never invoked. Throws uhd::error on a size mismatch, on a
    /// stopped engine, or when `dynamic` is requested without a policy.
    ///
    /// Per-request routing (unlike submit(), which always answers through
    /// the engine's configured default): `dynamic = false` answers with the
    /// full scan (predict_encoded semantics) even on a policy-configured
    /// engine; `dynamic = true` answers through the early-exit cascade
    /// (predict_dynamic_encoded semantics). A drained micro-batch holding
    /// both kinds is answered with one block-kernel call per kind.
    [[nodiscard]] bool try_submit(std::vector<std::int32_t>& encoded,
                                  answer_callback done, bool dynamic = false);

    /// Non-blocking raw-feature enqueue (wire path): same contract as
    /// try_submit, but the payload is raw pixels (raw_pixels() bytes) and a
    /// worker encodes it off the caller's thread — drained raw requests are
    /// batch-encoded with one encode_batch call per micro-batch, then
    /// answered through the usual block path. On a full queue returns false
    /// with `raw` handed back intact. Throws uhd::error on a size mismatch,
    /// on an engine without an encoder, on a stopped engine, or when
    /// `dynamic` is requested without a policy.
    [[nodiscard]] bool try_submit_raw(std::vector<std::uint8_t>& raw,
                                      answer_callback done,
                                      bool dynamic = false);

    /// Whether this engine can answer dynamic (early-exit cascade) requests
    /// — i.e. it was constructed with a dynamic_query_policy.
    [[nodiscard]] bool dynamic_capable() const noexcept {
        return policy_.has_value();
    }

    /// Whether this engine accepts raw-feature queries (engine_options
    /// carried an encoder).
    [[nodiscard]] bool raw_capable() const noexcept {
        return encoder_ != nullptr;
    }

    /// Raw query payload size in bytes (0 when !raw_capable()).
    [[nodiscard]] std::size_t raw_pixels() const noexcept;

    /// Point-in-time counters (see serve_stats for the consistency note).
    [[nodiscard]] serve_stats stats() const;

    /// Geometry served by this engine (fixed across publishes).
    [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
    [[nodiscard]] std::size_t classes() const noexcept { return classes_; }

    /// Close the queue, serve the backlog, join the workers. Unserved
    /// requests (none, once the backlog drains) would see broken-promise
    /// futures. Idempotent and safe against concurrent callers (a racing
    /// stop() blocks until the first one has joined); called by the
    /// destructor.
    void stop();

private:
    struct request {
        std::vector<std::int32_t> encoded;
        std::vector<std::uint8_t> raw;    ///< raw pixels; non-empty until the
                                          ///< worker's encode stage fills
                                          ///< `encoded` from it
        std::promise<std::size_t> answer; ///< future path (on_done empty)
        answer_callback on_done;          ///< wire path; answers via callback
        std::vector<std::int32_t>* reclaim = nullptr; ///< scratch-predict:
                                          ///< worker moves `encoded` back
                                          ///< here before answering
        bool dynamic = false;             ///< answer through the cascade
        bool failed = false;              ///< already failed (encode stage);
                                          ///< skip in the answer groups
    };

    void start_workers(std::size_t workers);
    void worker_loop();
    /// Deliver one answered request through its callback or promise (hands
    /// the encoded buffer back through req.reclaim first, when set).
    static void complete(request& req, std::size_t label, std::uint64_t version);
    /// Deliver a failure through the request's callback or promise.
    static void fail(request& req, const std::exception_ptr& error);

    // Snapshot geometry, pinned at construction: publish() enforces it so
    // a worker mid-batch can never see a dimension change under its feet.
    std::size_t dim_ = 0;
    std::size_t classes_ = 0;
    hdc::query_mode mode_;

    snapshot_cell current_;
    std::optional<hdc::dynamic_query_policy> policy_;
    const core::uhd_encoder* encoder_ = nullptr;
    micro_batch_queue<request> queue_;
    std::size_t max_batch_;
    serve_counters counters_;
    std::vector<std::thread> workers_;
    std::atomic<bool> stopped_{false};
    std::mutex stop_mutex_; ///< serializes stop() callers around the joins
};

} // namespace uhd::serve

#endif // UHD_SERVE_INFERENCE_ENGINE_HPP
