#include "uhd/net/wire_server.hpp"

#include <cerrno>
#include <cstring>
#include <ctime>
#include <optional>
#include <span>
#include <utility>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "uhd/common/affinity.hpp"
#include "uhd/common/config.hpp"
#include "uhd/common/error.hpp"
#include "uhd/net/wire_format.hpp"

namespace uhd::net {

namespace {

constexpr std::uint64_t listener_id = 0;
constexpr std::uint64_t wake_id = 1;
constexpr std::size_t read_chunk = 64 * 1024;

/// options.reactors, with 0 resolving UHD_NET_REACTORS (default 1).
std::size_t resolve_reactors(std::size_t configured) {
    if (configured != 0) return configured;
    const std::int64_t env = env_int("UHD_NET_REACTORS", 1);
    UHD_REQUIRE(env >= 1 && env <= 256, "UHD_NET_REACTORS must be in [1, 256]");
    return static_cast<std::size_t>(env);
}

/// Cumulative CPU time of the calling thread (the reactor-utilization
/// numerator; 0 when the clock is unavailable).
std::uint64_t thread_cpu_ns() noexcept {
    timespec ts{};
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

} // namespace

/// Per-connection state, owned by the accepting reactor's event loop.
struct wire_server::connection {
    socket_fd sock;
    std::uint64_t id = 0;

    // Read side: bytes appended at the tail, frames parsed from rpos.
    // Compacted when fully parsed (the steady state for well-behaved
    // pipelining), so a payload is decoded exactly once, in place.
    std::vector<std::uint8_t> rbuf;
    std::size_t rpos = 0;
    bool read_ready = false; ///< ET bookkeeping: EPOLLIN seen, EAGAIN not yet
    bool peer_eof = false;   ///< read() returned 0; close once drained

    // Write side: reply frames appended, flushed from wpos.
    std::vector<std::uint8_t> wbuf;
    std::size_t wpos = 0;
    bool want_write = false; ///< EPOLLOUT currently armed

    std::size_t inflight = 0;       ///< submitted, not yet answered
    bool close_after_flush = false; ///< poisoned stream: flush error, close
    bool throttle_counted = false;  ///< one throttle_event per pause episode

    // A request the engine queue refused (full): retried before any new
    // frame is parsed, preserving per-connection order. Holds either a
    // decoded query (`encoded`) or raw features (`raw`), never both.
    struct parked_request {
        std::vector<std::int32_t> encoded;
        std::vector<std::uint8_t> raw;
        std::uint32_t request_id = 0;
        bool dynamic = false;
    };
    std::optional<parked_request> parked;
};

wire_server::wire_server(serve::inference_engine& engine,
                         wire_server_options options, core::uhd_model* trainer,
                         const core::uhd_encoder* encoder)
    : engine_(engine), trainer_(trainer),
      encoder_(encoder != nullptr ? encoder
                                  : (trainer != nullptr ? &trainer->encoder()
                                                        : nullptr)),
      options_(options) {
    UHD_REQUIRE(options_.inflight_cap >= 1, "in-flight cap must be positive");
    UHD_REQUIRE(options_.max_payload >= 1, "payload cap must be positive");
    if (options_.publish_every == 0) options_.publish_every = 1;
    // Resolve the env knobs on the constructing thread so bad values throw
    // here, not inside a reactor.
    options_.reactors = resolve_reactors(options_.reactors);
    (void)resolved_affinity();
}

wire_server::~wire_server() { stop(); }

void wire_server::start() {
    const std::lock_guard<std::mutex> lock(start_stop_mutex_);
    UHD_REQUIRE(!running_.load(std::memory_order_acquire),
                "wire_server already started");
    reactors_.clear(); // previous run's (joined) shards, if any
    const std::size_t n = options_.reactors;
    // With n > 1 every listener shares the port via SO_REUSEPORT and the
    // kernel load-balances accepts. The first bind may be ephemeral
    // (port 0); the rest bind the concrete port it resolved to.
    const bool reuse = n > 1;
    try {
        for (std::size_t i = 0; i < n; ++i) {
            auto r = std::make_unique<reactor>();
            r->index = i;
            r->listener = listen_tcp(i == 0 ? options_.port : port_,
                                     options_.backlog, reuse);
            if (i == 0) port_ = local_port(r->listener.get());
            r->epoll.reset(::epoll_create1(EPOLL_CLOEXEC));
            if (!r->epoll.valid()) throw uhd::error("epoll_create1() failed");
            r->wake.reset(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
            if (!r->wake.valid()) throw uhd::error("eventfd() failed");

            epoll_event ev{};
            ev.events = EPOLLIN | EPOLLET;
            ev.data.u64 = listener_id;
            if (::epoll_ctl(r->epoll.get(), EPOLL_CTL_ADD, r->listener.get(),
                            &ev) != 0) {
                throw uhd::error("epoll_ctl(listener) failed");
            }
            ev.events = EPOLLIN | EPOLLET;
            ev.data.u64 = wake_id;
            if (::epoll_ctl(r->epoll.get(), EPOLL_CTL_ADD, r->wake.get(),
                            &ev) != 0) {
                throw uhd::error("epoll_ctl(eventfd) failed");
            }
            reactors_.push_back(std::move(r));
        }
    } catch (...) {
        reactors_.clear(); // no threads spawned yet: sockets just close
        throw;
    }

    running_.store(true, std::memory_order_release);
    for (auto& r : reactors_) {
        reactor* raw = r.get();
        raw->thread = std::thread([this, raw] { loop(*raw); });
    }
}

void wire_server::stop() {
    const std::lock_guard<std::mutex> lock(start_stop_mutex_);
    running_.store(false, std::memory_order_release);
    for (auto& r : reactors_) {
        if (!r->thread.joinable()) continue;
        const std::uint64_t one = 1;
        // Best-effort kick; the loop also times out of epoll_wait.
        [[maybe_unused]] const ssize_t n =
            ::write(r->wake.get(), &one, sizeof(one));
        r->thread.join();
    }
    for (auto& r : reactors_) {
        r->conns.clear();
        r->listener.reset();
        r->epoll.reset();
        // Wait out requests already inside the engine: their completion
        // callbacks capture this reactor, so none may run after the shard
        // is torn down. The callbacks only touch the mailbox (connections
        // are already gone).
        std::unique_lock<std::mutex> pending(r->completions_mutex);
        r->outstanding_zero.wait(pending, [&r] { return r->outstanding == 0; });
        r->completions.clear();
        r->wake.reset();
    }
    // reactors_ stays populated (threads joined, fds closed) so stats()
    // keeps reporting the final shard counters; the next start() clears it.
}

wire_stats wire_server::stats() const noexcept {
    wire_stats total;
    for (const auto& r : reactors_) total += r->counters.load();
    return total;
}

wire_stats wire_server::reactor_stats(std::size_t i) const {
    UHD_REQUIRE(i < reactors_.size(), "reactor_stats index out of range");
    return reactors_[i]->counters.load();
}

void wire_server::loop(reactor& r) {
    pin_this_thread(); // UHD_AFFINITY=auto: distinct core per reactor
    epoll_event events[64];
    while (running_.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(r.epoll.get(), events, 64, 100);
        if (n < 0) {
            if (errno == EINTR) continue;
            break; // epoll fd gone: shutdown race
        }
        for (int i = 0; i < n; ++i) {
            const std::uint64_t id = events[i].data.u64;
            if (id == listener_id) {
                accept_ready(r);
                continue;
            }
            if (id == wake_id) {
                std::uint64_t drained = 0;
                while (::read(r.wake.get(), &drained, sizeof(drained)) > 0) {
                }
                continue; // completions handled below, every iteration
            }
            const auto it = r.conns.find(id);
            if (it == r.conns.end()) continue; // closed earlier this wake-up
            connection& conn = *it->second;
            if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
                close_connection(r, id);
                continue;
            }
            if ((events[i].events & EPOLLIN) != 0) conn.read_ready = true;
            if ((events[i].events & EPOLLOUT) != 0) flush_writes(r, conn);
            if (r.conns.find(id) == r.conns.end()) continue; // flush closed it
            pump_connection(r, conn);
        }
        // Completions may have arrived during the handling above (or the
        // eventfd fired): deliver replies and un-throttle connections.
        drain_completions(r);
        // Publish this thread's cumulative CPU time: the reactor
        // utilization numerator (divide by wall time to get busy share).
        r.counters.record_loop_cpu(thread_cpu_ns());
    }
}

void wire_server::accept_ready(reactor& r) {
    while (true) {
        const int fd = ::accept4(r.listener.get(), nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            return; // transient accept failure; listener stays armed
        }
        auto conn = std::make_unique<connection>();
        conn->sock.reset(fd);
        conn->id = r.next_conn_id++;
        try {
            set_tcp_nodelay(fd);
        } catch (const uhd::error&) {
            // Nagle stays on; correctness is unaffected.
        }
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLET;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(r.epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
            continue; // connection dropped; socket_fd closes it
        }
        r.counters.record_accept();
        r.conns.emplace(conn->id, std::move(conn));
    }
}

void wire_server::drain_completions(reactor& r) {
    std::vector<completion> batch;
    {
        const std::lock_guard<std::mutex> lock(r.completions_mutex);
        batch.swap(r.completions);
    }
    if (batch.empty()) return;
    for (const completion& done : batch) {
        const auto it = r.conns.find(done.conn_id);
        if (it == r.conns.end()) continue; // connection died while in flight
        connection& conn = *it->second;
        if (conn.inflight > 0) --conn.inflight;
        std::uint8_t payload[12];
        if (done.failed) {
            queue_error(r, conn, done.request_id, wire_error::internal,
                        "engine failed to answer");
        } else {
            store_u32(payload, done.label);
            store_u64(payload + 4, done.snapshot_version);
            append_frame(conn.wbuf, done.reply_op, done.request_id,
                         std::span<const std::uint8_t>(payload, sizeof(payload)));
            r.counters.record_frame_out();
        }
    }
    // Re-pump every touched connection once: flush the replies and, now
    // that in-flight counts dropped, resume throttled reads.
    for (const completion& done : batch) {
        const auto it = r.conns.find(done.conn_id);
        if (it != r.conns.end()) pump_connection(r, *it->second);
    }
}

bool wire_server::throttled(const connection& conn) const noexcept {
    return conn.parked.has_value() || conn.inflight >= options_.inflight_cap ||
           conn.wbuf.size() - conn.wpos > options_.write_buffer_cap;
}

void wire_server::pump_connection(reactor& r, connection& conn) {
    const std::uint64_t id = conn.id;
    // Retry the parked request first: order within a connection is FIFO.
    if (conn.parked.has_value() && !retry_parked(r, conn)) {
        return; // helper closed the connection
    }
    while (true) {
        // Parse whatever is already buffered.
        if (!parse_frames(r, conn)) {
            close_connection(r, id);
            return;
        }
        if (conn.close_after_flush || conn.peer_eof) break;
        if (throttled(conn)) {
            if (!conn.throttle_counted) {
                conn.throttle_counted = true;
                r.counters.record_throttle();
            }
            break; // stop reading: socket-level backpressure
        }
        conn.throttle_counted = false;
        if (!conn.read_ready) break;
        // Edge-triggered read: pull until EAGAIN or EOF. A short read is
        // NOT treated as drained — a FIN that arrived alongside the last
        // bytes is already pending and would never raise a fresh edge, so
        // stopping early would strand the EOF (and the connection) forever.
        const std::size_t base = conn.rbuf.size();
        conn.rbuf.resize(base + read_chunk);
        const ssize_t got =
            ::recv(conn.sock.get(), conn.rbuf.data() + base, read_chunk, 0);
        if (got > 0) {
            conn.rbuf.resize(base + static_cast<std::size_t>(got));
            r.counters.record_bytes_in(static_cast<std::uint64_t>(got));
            continue;
        }
        conn.rbuf.resize(base);
        if (got == 0) {
            conn.peer_eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            conn.read_ready = false;
            break;
        }
        if (errno == EINTR) continue;
        close_connection(r, id);
        return;
    }
    flush_writes(r, conn);
    if (r.conns.find(id) == r.conns.end()) return; // flush hit a dead socket
    // EOF: once nothing is in flight and nothing is buffered, we are done.
    if (conn.peer_eof && conn.inflight == 0 && !conn.parked.has_value() &&
        conn.wpos == conn.wbuf.size()) {
        close_connection(r, id);
        return;
    }
    if (conn.close_after_flush && conn.wpos == conn.wbuf.size() &&
        conn.inflight == 0) {
        close_connection(r, id);
        return;
    }
    update_epoll_interest(r, conn);
}

/// Retry the parked request (decoded or raw). Returns false when the
/// connection was closed (engine stopped underneath us).
bool wire_server::retry_parked(reactor& r, connection& conn) {
    connection::parked_request& parked = *conn.parked;
    try {
        const bool pushed =
            parked.raw.empty()
                ? submit_decoded(r, conn, parked.request_id, parked.dynamic,
                                 parked.encoded)
                : submit_raw(r, conn, parked.request_id, parked.dynamic,
                             parked.raw);
        if (!pushed) {
            return true; // still full: stay parked, stay throttled
        }
    } catch (const uhd::error&) {
        close_connection(r, conn.id);
        return false;
    }
    conn.parked.reset();
    return true;
}

bool wire_server::parse_frames(reactor& r, connection& conn) {
    while (!conn.close_after_flush && !throttled(conn)) {
        const std::size_t avail = conn.rbuf.size() - conn.rpos;
        if (avail < wire_header_size) break;
        const std::uint8_t* base = conn.rbuf.data() + conn.rpos;
        const frame_header header = decode_header(base);
        if (header.magic != wire_magic) {
            r.counters.record_malformed();
            queue_error(r, conn, header.request_id, wire_error::bad_magic,
                        "bad frame magic");
            conn.close_after_flush = true; // desynced stream: cannot recover
            break;
        }
        if (header.version != wire_version) {
            r.counters.record_malformed();
            queue_error(r, conn, header.request_id, wire_error::bad_version,
                        "unsupported protocol version");
            conn.close_after_flush = true;
            break;
        }
        if (header.payload_len > options_.max_payload) {
            r.counters.record_malformed();
            queue_error(r, conn, header.request_id, wire_error::oversized,
                        "payload exceeds server cap");
            conn.close_after_flush = true; // cannot safely skip the body
            break;
        }
        if (avail < wire_header_size + header.payload_len) break; // truncated
        r.counters.record_frame_in();
        conn.rpos += wire_header_size + header.payload_len;
        if (!handle_frame(r, conn, header.op, header.request_id,
                          base + wire_header_size, header.payload_len)) {
            return false; // engine stopped: drop the connection
        }
    }
    // Compact once parsing stalls; steady-state pipelining consumes the
    // whole buffer, making this a cheap clear().
    if (conn.rpos == conn.rbuf.size()) {
        conn.rbuf.clear();
        conn.rpos = 0;
    } else if (conn.rpos > read_chunk) {
        conn.rbuf.erase(conn.rbuf.begin(),
                        conn.rbuf.begin() +
                            static_cast<std::ptrdiff_t>(conn.rpos));
        conn.rpos = 0;
    }
    return true;
}

bool wire_server::handle_frame(reactor& r, connection& conn, std::uint8_t op,
                               std::uint32_t request_id,
                               const std::uint8_t* payload,
                               std::size_t payload_len) {
    switch (static_cast<opcode>(op)) {
    case opcode::predict:
    case opcode::predict_dynamic:
        return handle_predict(r, conn, op, request_id, payload, payload_len);
    case opcode::partial_fit:
        handle_partial_fit(r, conn, request_id, payload, payload_len);
        return true;
    case opcode::stats:
        handle_stats(r, conn, request_id);
        return true;
    case opcode::ping:
        append_frame(conn.wbuf, reply_opcode(opcode::ping), request_id,
                     std::span<const std::uint8_t>(payload, payload_len));
        r.counters.record_frame_out();
        return true;
    default:
        r.counters.record_malformed();
        queue_error(r, conn, request_id, wire_error::bad_opcode,
                    "unknown request opcode");
        return true; // framing is intact: the connection survives
    }
}

bool wire_server::handle_predict(reactor& r, connection& conn, std::uint8_t op,
                                 std::uint32_t request_id,
                                 const std::uint8_t* payload,
                                 std::size_t payload_len) {
    const bool dynamic = static_cast<opcode>(op) == opcode::predict_dynamic;
    if (dynamic && !engine_.dynamic_capable()) {
        r.counters.record_malformed();
        queue_error(r, conn, request_id, wire_error::unsupported,
                    "engine has no dynamic policy");
        return true;
    }
    if (payload_len < 1) {
        r.counters.record_malformed();
        queue_error(r, conn, request_id, wire_error::bad_payload,
                    "empty predict payload");
        return true;
    }
    const auto kind = static_cast<query_kind>(payload[0]);
    const std::uint8_t* body = payload + 1;
    const std::size_t body_len = payload_len - 1;
    if (kind == query_kind::raw) {
        // Preferred path: hand the raw bytes to the engine — its workers
        // batch-encode each drained micro-batch off this thread. Fallback
        // (engine without an encoder, the pre-encode-stage configuration):
        // encode inline here with the server's encoder.
        const bool off_loop = engine_.raw_capable();
        if (!off_loop && encoder_ == nullptr) {
            r.counters.record_malformed();
            queue_error(r, conn, request_id, wire_error::unsupported,
                        "server has no encoder for raw features");
            return true;
        }
        const std::size_t pixels =
            off_loop ? engine_.raw_pixels() : encoder_->pixels();
        if (body_len != pixels) {
            r.counters.record_malformed();
            queue_error(r, conn, request_id, wire_error::bad_payload,
                        "raw payload size != encoder pixels");
            return true;
        }
        if (off_loop) {
            std::vector<std::uint8_t> raw(body, body + body_len);
            try {
                if (!submit_raw(r, conn, request_id, dynamic, raw)) {
                    conn.parked.emplace(connection::parked_request{
                        {}, std::move(raw), request_id, dynamic});
                }
            } catch (const uhd::error&) {
                return false; // engine stopped: caller closes the connection
            }
            return true;
        }
    }
    // Decode straight out of the read buffer into the request vector the
    // engine will consume — the only transform between socket and kernel.
    std::vector<std::int32_t> encoded;
    if (kind == query_kind::encoded) {
        if (body_len != engine_.dim() * 4) {
            r.counters.record_malformed();
            queue_error(r, conn, request_id, wire_error::bad_payload,
                        "encoded payload size != dim * 4");
            return true;
        }
        encoded.resize(engine_.dim());
        for (std::size_t i = 0; i < encoded.size(); ++i) {
            encoded[i] = static_cast<std::int32_t>(load_u32(body + i * 4));
        }
    } else if (kind == query_kind::raw) {
        encoded.resize(encoder_->dim());
        encoder_->encode(std::span<const std::uint8_t>(body, body_len), encoded);
    } else {
        r.counters.record_malformed();
        queue_error(r, conn, request_id, wire_error::bad_payload,
                    "unknown query kind");
        return true;
    }
    try {
        if (!submit_decoded(r, conn, request_id, dynamic, encoded)) {
            // Engine queue full: park and throttle (parse_frames stops on
            // the next throttled() check, so order is preserved).
            conn.parked.emplace(connection::parked_request{
                std::move(encoded), {}, request_id, dynamic});
        }
    } catch (const uhd::error&) {
        return false; // engine stopped: caller closes the connection
    }
    return true;
}

serve::answer_callback wire_server::make_completion(reactor& r,
                                                    std::uint64_t conn_id,
                                                    std::uint32_t request_id,
                                                    std::uint8_t reply_op) {
    reactor* shard = &r; // heap-pinned; outlives every outstanding callback
    return [shard, conn_id, request_id, reply_op](std::size_t label,
                                                  std::uint64_t version,
                                                  std::exception_ptr error) {
        const std::lock_guard<std::mutex> lock(shard->completions_mutex);
        shard->completions.push_back(completion{
            conn_id, request_id, reply_op, static_cast<std::uint32_t>(label),
            version, error != nullptr});
        // Everything below stays under the mutex on purpose — stop()
        // tears the shard down right after it observes outstanding == 0,
        // so the eventfd write must precede the decrement (stop() closes
        // wake), and the notify must happen while the lock pins the
        // waiter inside its wait (notify-after-unlock would race the cv's
        // destruction). An eventfd write never blocks in practice — the
        // counter would have to hit 2^64-1.
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t n =
            ::write(shard->wake.get(), &one, sizeof(one));
        --shard->outstanding;
        if (shard->outstanding == 0) shard->outstanding_zero.notify_all();
    };
}

bool wire_server::submit_decoded(reactor& r, connection& conn,
                                 std::uint32_t request_id, bool dynamic,
                                 std::vector<std::int32_t>& encoded) {
    const std::uint8_t reply_op =
        reply_opcode(dynamic ? opcode::predict_dynamic : opcode::predict);
    {
        // Count before submitting: the callback may fire on a worker
        // before try_submit even returns.
        const std::lock_guard<std::mutex> lock(r.completions_mutex);
        ++r.outstanding;
    }
    bool pushed = false;
    try {
        pushed = engine_.try_submit(
            encoded, make_completion(r, conn.id, request_id, reply_op),
            dynamic);
    } catch (...) {
        const std::lock_guard<std::mutex> lock(r.completions_mutex);
        --r.outstanding;
        throw;
    }
    if (!pushed) {
        const std::lock_guard<std::mutex> lock(r.completions_mutex);
        --r.outstanding; // callback will never run
        return false;
    }
    ++conn.inflight;
    return true;
}

bool wire_server::submit_raw(reactor& r, connection& conn,
                             std::uint32_t request_id, bool dynamic,
                             std::vector<std::uint8_t>& raw) {
    const std::uint8_t reply_op =
        reply_opcode(dynamic ? opcode::predict_dynamic : opcode::predict);
    {
        const std::lock_guard<std::mutex> lock(r.completions_mutex);
        ++r.outstanding;
    }
    bool pushed = false;
    try {
        pushed = engine_.try_submit_raw(
            raw, make_completion(r, conn.id, request_id, reply_op), dynamic);
    } catch (...) {
        const std::lock_guard<std::mutex> lock(r.completions_mutex);
        --r.outstanding;
        throw;
    }
    if (!pushed) {
        const std::lock_guard<std::mutex> lock(r.completions_mutex);
        --r.outstanding; // callback will never run
        return false;
    }
    ++conn.inflight;
    return true;
}

void wire_server::handle_partial_fit(reactor& r, connection& conn,
                                     std::uint32_t request_id,
                                     const std::uint8_t* payload,
                                     std::size_t payload_len) {
    if (trainer_ == nullptr) {
        r.counters.record_malformed();
        queue_error(r, conn, request_id, wire_error::unsupported,
                    "server has no trainer");
        return;
    }
    const std::size_t pixels = trainer_->encoder().pixels();
    if (payload_len != 4 + pixels) {
        r.counters.record_malformed();
        queue_error(r, conn, request_id, wire_error::bad_payload,
                    "partial_fit payload size != 4 + pixels");
        return;
    }
    const std::uint32_t label = load_u32(payload);
    std::uint64_t fits = 0;
    std::uint64_t version = 0;
    try {
        // partial_fit may arrive on any reactor, so the trainer gets one
        // writer lock (the single cross-reactor lock, training path only).
        // The publish stays under it too, keeping fit -> snapshot-version
        // ordering exact. The publish itself is the engine's RCU pointer
        // swap.
        const std::lock_guard<std::mutex> train_lock(trainer_mutex_);
        trainer_->partial_fit(
            std::span<const std::uint8_t>(payload + 4, pixels), label);
        fits = ++fits_;
        if (fits_ % options_.publish_every == 1 || options_.publish_every == 1) {
            engine_.publish(trainer_->snapshot());
        }
        version = engine_.current()->version();
    } catch (const uhd::error&) {
        r.counters.record_malformed();
        queue_error(r, conn, request_id, wire_error::bad_payload,
                    "partial_fit rejected (label/geometry)");
        return;
    }
    std::uint8_t reply[16];
    store_u64(reply, fits);
    store_u64(reply + 8, version);
    append_frame(conn.wbuf, reply_opcode(opcode::partial_fit), request_id,
                 std::span<const std::uint8_t>(reply, sizeof(reply)));
    r.counters.record_frame_out();
}

void wire_server::handle_stats(reactor& r, connection& conn,
                               std::uint32_t request_id) {
    const serve::serve_stats engine_stats = engine_.stats();
    const wire_stats wire = stats(); // sum over every reactor shard
    stats_reply reply;
    reply.queries = engine_stats.queries;
    reply.batches = engine_stats.batches;
    reply.kernel_calls = engine_stats.kernel_calls;
    reply.snapshot_swaps = engine_stats.snapshot_swaps;
    reply.max_batch_observed = engine_stats.max_batch_observed;
    reply.snapshot_version = engine_stats.snapshot_version;
    reply.connections_accepted = wire.connections_accepted;
    reply.connections_active = wire.connections_active;
    reply.frames_in = wire.frames_in;
    reply.frames_out = wire.frames_out;
    reply.bytes_in = wire.bytes_in;
    reply.bytes_out = wire.bytes_out;
    reply.malformed_frames = wire.malformed_frames;
    reply.throttle_events = wire.throttle_events;
    reply.reactors = reactors_.size();
    reply.raw_queries = engine_stats.raw_queries;
    reply.encode_kernel_calls = engine_stats.encode_kernel_calls;
    std::uint8_t payload[stats_reply_size];
    encode_stats_reply(payload, reply);
    append_frame(conn.wbuf, reply_opcode(opcode::stats), request_id,
                 std::span<const std::uint8_t>(payload, sizeof(payload)));
    r.counters.record_frame_out();
}

void wire_server::queue_error(reactor& r, connection& conn,
                              std::uint32_t request_id, wire_error code,
                              const char* message) {
    append_error_frame(conn.wbuf, request_id, code, message);
    r.counters.record_frame_out();
}

void wire_server::flush_writes(reactor& r, connection& conn) {
    while (conn.wpos < conn.wbuf.size()) {
        const ssize_t sent =
            ::send(conn.sock.get(), conn.wbuf.data() + conn.wpos,
                   conn.wbuf.size() - conn.wpos, MSG_NOSIGNAL);
        if (sent > 0) {
            conn.wpos += static_cast<std::size_t>(sent);
            r.counters.record_bytes_out(static_cast<std::uint64_t>(sent));
            continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (sent < 0 && errno == EINTR) continue;
        close_connection(r, conn.id); // peer reset underneath us
        return;
    }
    if (conn.wpos == conn.wbuf.size()) {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if (conn.wpos > read_chunk) {
        conn.wbuf.erase(conn.wbuf.begin(),
                        conn.wbuf.begin() +
                            static_cast<std::ptrdiff_t>(conn.wpos));
        conn.wpos = 0;
    }
    update_epoll_interest(r, conn);
}

void wire_server::update_epoll_interest(reactor& r, connection& conn) {
    const bool needs_write = conn.wpos < conn.wbuf.size();
    if (needs_write == conn.want_write) return;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | (needs_write ? EPOLLOUT : 0U);
    ev.data.u64 = conn.id;
    if (::epoll_ctl(r.epoll.get(), EPOLL_CTL_MOD, conn.sock.get(), &ev) == 0) {
        conn.want_write = needs_write;
    }
}

void wire_server::close_connection(reactor& r, std::uint64_t conn_id) {
    const auto it = r.conns.find(conn_id);
    if (it == r.conns.end()) return;
    // socket_fd close also removes the fd from the epoll set; completions
    // for in-flight requests find the id gone and are dropped.
    r.conns.erase(it);
    r.counters.record_close();
}

} // namespace uhd::net
