#include "uhd/net/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "uhd/common/error.hpp"

namespace uhd::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw uhd::error(std::string(what) + ": " + std::strerror(errno));
}

} // namespace

void socket_fd::reset(int fd) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
}

socket_fd listen_tcp(std::uint16_t port, int backlog, bool reuse_port) {
    socket_fd sock(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
    if (!sock.valid()) throw_errno("socket()");
    const int one = 1;
    if (::setsockopt(sock.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
        throw_errno("setsockopt(SO_REUSEADDR)");
    }
    if (reuse_port &&
        ::setsockopt(sock.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
        throw_errno("setsockopt(SO_REUSEPORT)");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        throw_errno("bind()");
    }
    if (::listen(sock.get(), backlog) != 0) throw_errno("listen()");
    return sock;
}

socket_fd connect_tcp(const std::string& host, std::uint16_t port) {
    socket_fd sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid()) throw_errno("socket()");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw uhd::error("connect_tcp: bad IPv4 address: " + host);
    }
    if (::connect(sock.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        throw_errno("connect()");
    }
    set_tcp_nodelay(sock.get());
    return sock;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) throw_errno("fcntl(F_GETFL)");
    if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        throw_errno("fcntl(F_SETFL, O_NONBLOCK)");
    }
}

void set_tcp_nodelay(int fd) {
    const int one = 1;
    if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
        throw_errno("setsockopt(TCP_NODELAY)");
    }
}

std::uint16_t local_port(int fd) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        throw_errno("getsockname()");
    }
    return ntohs(addr.sin_port);
}

} // namespace uhd::net
