// Wire front-end counters: relaxed atomics bumped by one reactor loop
// (and, for completions, by engine workers), snapshotted into a plain
// struct. Same consistency contract as serve_stats: individually
// consistent, possibly torn across fields mid-flight.
//
// Sharding: with N reactors the server keeps one wire_counters per
// reactor; each shard is written only by its own loop thread, and
// wire_server::stats() sums the shards on read (wire_stats::operator+=).
#ifndef UHD_NET_WIRE_STATS_HPP
#define UHD_NET_WIRE_STATS_HPP

#include <atomic>
#include <cstdint>

namespace uhd::net {

/// Point-in-time view of the wire counters (plain data, safe to copy) —
/// one reactor's shard, or the sum over all shards.
struct wire_stats {
    std::uint64_t connections_accepted = 0; ///< accept4() successes
    std::uint64_t connections_active = 0;   ///< currently open connections
    std::uint64_t frames_in = 0;            ///< complete request frames parsed
    std::uint64_t frames_out = 0;           ///< reply/error frames queued
    std::uint64_t bytes_in = 0;             ///< bytes read off sockets
    std::uint64_t bytes_out = 0;            ///< bytes written to sockets
    std::uint64_t malformed_frames = 0;     ///< frames answered with op_error
    std::uint64_t throttle_events = 0;      ///< reads paused for backpressure
    std::uint64_t loop_cpu_ns = 0;          ///< CLOCK_THREAD_CPUTIME_ID of the
                                            ///< reactor thread (utilization =
                                            ///< loop_cpu_ns / wall time)

    /// Shard aggregation: field-wise sum (all counters are additive,
    /// including active-connection gauges — each connection lives in
    /// exactly one shard).
    wire_stats& operator+=(const wire_stats& other) noexcept {
        connections_accepted += other.connections_accepted;
        connections_active += other.connections_active;
        frames_in += other.frames_in;
        frames_out += other.frames_out;
        bytes_in += other.bytes_in;
        bytes_out += other.bytes_out;
        malformed_frames += other.malformed_frames;
        throttle_events += other.throttle_events;
        loop_cpu_ns += other.loop_cpu_ns;
        return *this;
    }
};

/// Live counters behind wire_server::stats() — one shard per reactor.
/// Each shard has a single writer (its reactor loop; completions bump
/// frames_out from the loop too, after the mailbox drain), but stats()
/// is callable from any thread, so these are atomics; relaxed ordering —
/// telemetry, not synchronization.
///
/// The shard as a whole is alignas(64): adjacent shards in the reactor
/// array must not share a cache line, or reactor A's counter bumps would
/// ping-pong the line under reactor B (the same false-sharing pattern
/// measured on serve_counters, where padding bought ~10% wire qps on a
/// multi-core box). Unlike serve_counters, fields within one shard share
/// lines on purpose — they have one writer, so there is no intra-shard
/// contention to pad away. Honest caveat: the dev box exposes a single
/// allowed CPU (reactors time-share one core, so lines never ping-pong
/// between sockets), and the before/after there showed no difference —
/// best-of-3 sweep qps at 2 reactors, encoded payloads, was 159k padded
/// vs 160k unpadded, inside run-to-run noise. The layout is adopted for
/// the multi-core case the sharding exists for, at a cost of
/// sizeof(wire_counters) 72 -> 128 bytes per reactor.
class alignas(64) wire_counters {
public:
    void record_accept() noexcept {
        accepted_.fetch_add(1, std::memory_order_relaxed);
        active_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_close() noexcept {
        active_.fetch_sub(1, std::memory_order_relaxed);
    }
    void record_frame_in() noexcept {
        frames_in_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_frame_out() noexcept {
        frames_out_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_bytes_in(std::uint64_t n) noexcept {
        bytes_in_.fetch_add(n, std::memory_order_relaxed);
    }
    void record_bytes_out(std::uint64_t n) noexcept {
        bytes_out_.fetch_add(n, std::memory_order_relaxed);
    }
    void record_malformed() noexcept {
        malformed_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_throttle() noexcept {
        throttles_.fetch_add(1, std::memory_order_relaxed);
    }
    /// Publish the reactor thread's cumulative CPU time (sampled by the
    /// loop once per epoll_wait round; an absolute store, not an add).
    void record_loop_cpu(std::uint64_t total_ns) noexcept {
        loop_cpu_ns_.store(total_ns, std::memory_order_relaxed);
    }

    [[nodiscard]] wire_stats load() const noexcept {
        wire_stats out;
        out.connections_accepted = accepted_.load(std::memory_order_relaxed);
        out.connections_active = active_.load(std::memory_order_relaxed);
        out.frames_in = frames_in_.load(std::memory_order_relaxed);
        out.frames_out = frames_out_.load(std::memory_order_relaxed);
        out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
        out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
        out.malformed_frames = malformed_.load(std::memory_order_relaxed);
        out.throttle_events = throttles_.load(std::memory_order_relaxed);
        out.loop_cpu_ns = loop_cpu_ns_.load(std::memory_order_relaxed);
        return out;
    }

private:
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> active_{0};
    std::atomic<std::uint64_t> frames_in_{0};
    std::atomic<std::uint64_t> frames_out_{0};
    std::atomic<std::uint64_t> bytes_in_{0};
    std::atomic<std::uint64_t> bytes_out_{0};
    std::atomic<std::uint64_t> malformed_{0};
    std::atomic<std::uint64_t> throttles_{0};
    std::atomic<std::uint64_t> loop_cpu_ns_{0};
};

} // namespace uhd::net

#endif // UHD_NET_WIRE_STATS_HPP
