// Wire front-end counters: relaxed atomics bumped by the event loop (and,
// for completions, by engine workers), snapshotted into a plain struct.
// Same consistency contract as serve_stats: individually consistent,
// possibly torn across fields mid-flight.
#ifndef UHD_NET_WIRE_STATS_HPP
#define UHD_NET_WIRE_STATS_HPP

#include <atomic>
#include <cstdint>

namespace uhd::net {

/// Point-in-time view of the wire counters (plain data, safe to copy).
struct wire_stats {
    std::uint64_t connections_accepted = 0; ///< accept4() successes
    std::uint64_t connections_active = 0;   ///< currently open connections
    std::uint64_t frames_in = 0;            ///< complete request frames parsed
    std::uint64_t frames_out = 0;           ///< reply/error frames queued
    std::uint64_t bytes_in = 0;             ///< bytes read off sockets
    std::uint64_t bytes_out = 0;            ///< bytes written to sockets
    std::uint64_t malformed_frames = 0;     ///< frames answered with op_error
    std::uint64_t throttle_events = 0;      ///< reads paused for backpressure
};

/// Live counters behind wire_server::stats(). The event loop is single
/// threaded, but stats() is callable from any thread, so these are
/// atomics; relaxed ordering — telemetry, not synchronization.
class wire_counters {
public:
    void record_accept() noexcept {
        accepted_.fetch_add(1, std::memory_order_relaxed);
        active_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_close() noexcept {
        active_.fetch_sub(1, std::memory_order_relaxed);
    }
    void record_frame_in() noexcept {
        frames_in_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_frame_out() noexcept {
        frames_out_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_bytes_in(std::uint64_t n) noexcept {
        bytes_in_.fetch_add(n, std::memory_order_relaxed);
    }
    void record_bytes_out(std::uint64_t n) noexcept {
        bytes_out_.fetch_add(n, std::memory_order_relaxed);
    }
    void record_malformed() noexcept {
        malformed_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_throttle() noexcept {
        throttles_.fetch_add(1, std::memory_order_relaxed);
    }

    [[nodiscard]] wire_stats load() const noexcept {
        wire_stats out;
        out.connections_accepted = accepted_.load(std::memory_order_relaxed);
        out.connections_active = active_.load(std::memory_order_relaxed);
        out.frames_in = frames_in_.load(std::memory_order_relaxed);
        out.frames_out = frames_out_.load(std::memory_order_relaxed);
        out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
        out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
        out.malformed_frames = malformed_.load(std::memory_order_relaxed);
        out.throttle_events = throttles_.load(std::memory_order_relaxed);
        return out;
    }

private:
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> active_{0};
    std::atomic<std::uint64_t> frames_in_{0};
    std::atomic<std::uint64_t> frames_out_{0};
    std::atomic<std::uint64_t> bytes_in_{0};
    std::atomic<std::uint64_t> bytes_out_{0};
    std::atomic<std::uint64_t> malformed_{0};
    std::atomic<std::uint64_t> throttles_{0};
};

} // namespace uhd::net

#endif // UHD_NET_WIRE_STATS_HPP
