// Blocking wire-protocol client: frame-level send/receive plus one-shot
// request helpers. Used by the tests and by uhd_loadgen; pipelining
// callers send a window of frames with send_bytes() and then pull the
// replies with read_frame() one by one.
#ifndef UHD_NET_WIRE_CLIENT_HPP
#define UHD_NET_WIRE_CLIENT_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "uhd/net/socket.hpp"
#include "uhd/net/wire_format.hpp"

namespace uhd::net {

/// One received frame: validated-by-size header + owned payload.
struct wire_frame {
    frame_header header;
    std::vector<std::uint8_t> payload;
};

/// Blocking client over one TCP connection.
class wire_client {
public:
    /// Connect to host:port (TCP_NODELAY on). Throws uhd::error.
    wire_client(const std::string& host, std::uint16_t port);

    /// Receive timeout for subsequent reads (0 = block forever). Lets
    /// tests fail fast instead of hanging on a protocol bug.
    void set_recv_timeout_ms(long ms);

    /// Send raw bytes (handles partial writes). Throws uhd::error.
    void send_bytes(std::span<const std::uint8_t> bytes);

    /// Read exactly one frame (header + payload). Throws uhd::error on
    /// EOF, timeout, or a header that is not a sane uHD frame.
    [[nodiscard]] wire_frame read_frame();

    /// True once the peer has closed (detected by a read returning EOF).
    [[nodiscard]] bool peer_closed() const noexcept { return peer_closed_; }

    // -- one-shot helpers (send one request, read its reply) ------------

    /// predict / predict_dynamic with a pre-encoded query. Throws
    /// uhd::error on an error reply.
    [[nodiscard]] predict_reply predict_encoded(
        std::span<const std::int32_t> encoded, bool dynamic = false);

    /// predict / predict_dynamic with raw u8 features.
    [[nodiscard]] predict_reply predict_raw(
        std::span<const std::uint8_t> features, bool dynamic = false);

    /// Online training step.
    [[nodiscard]] partial_fit_reply partial_fit(
        std::uint32_t label, std::span<const std::uint8_t> features);

    /// Server + engine counters.
    [[nodiscard]] stats_reply stats();

    /// Round-trip a ping (payload echoed; checked).
    void ping();

private:
    [[nodiscard]] wire_frame roundtrip(std::span<const std::uint8_t> request);

    socket_fd sock_;
    std::uint32_t next_request_id_ = 1;
    bool peer_closed_ = false;
};

} // namespace uhd::net

#endif // UHD_NET_WIRE_CLIENT_HPP
