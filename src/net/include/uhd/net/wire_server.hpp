// Epoll wire front-end for the serving engine — the "traffic actually
// reaches the process" layer.
//
// Threading model (deliberately minimal):
//
//   clients ══ TCP ══▶ ONE event-loop thread ──try_submit()──▶ engine
//                      (epoll, edge-triggered,                 workers
//                       non-blocking accept4)                    │
//                            ▲      ▲                            │
//                            │      └── eventfd wakeup ◀── completion
//                            └────────── write buffers          callback
//
// * The I/O layer owns no worker threads: one thread runs the epoll
//   loop; inference parallelism stays where it already lives (the
//   engine's micro-batch workers). Decoded queries move straight from
//   the connection read buffer into the engine's request vector — one
//   deserialize, zero further payload copies.
// * Completions come back on worker threads; the callback only appends
//   {connection, request_id, answer} to a mutex-guarded list and kicks
//   an eventfd, so workers never touch sockets and the loop never waits
//   on inference.
// * Backpressure is layered the way the queue contract wants it: the
//   engine queue is never blocked on — try_submit() full parks the
//   request on its connection and the loop simply stops reading that
//   socket (edge-triggered epoll makes "stop reading" free). A slow
//   *reader* is throttled the same way: while a connection exceeds its
//   in-flight cap or its write buffer is over the cap, its reads pause
//   until completions drain / EPOLLOUT flushes. Sockets throttle;
//   the queue never deadlocks, other connections never stall.
// * Malformed traffic: protocol-poisoning frames (bad magic/version,
//   oversized length) get one error frame, then the connection is
//   flushed and closed; per-request junk (unknown opcode, bad payload)
//   gets an error frame and the stream continues. Truncated frames
//   simply wait for more bytes; EOF mid-frame closes after in-flight
//   requests drain.
#ifndef UHD_NET_WIRE_SERVER_HPP
#define UHD_NET_WIRE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "uhd/core/model.hpp"
#include "uhd/net/socket.hpp"
#include "uhd/net/wire_format.hpp"
#include "uhd/net/wire_stats.hpp"
#include "uhd/serve/inference_engine.hpp"

namespace uhd::net {

/// Wire front-end tuning knobs.
struct wire_server_options {
    /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back
    /// with port()).
    std::uint16_t port = 0;
    /// listen() backlog.
    int backlog = 128;
    /// Per-connection cap on requests submitted but not yet answered;
    /// reads pause above it (backpressure against slow readers and
    /// against pipelining far past the engine's micro-batch depth).
    std::size_t inflight_cap = 128;
    /// Per-connection cap on buffered unsent reply bytes; reads pause
    /// above it until EPOLLOUT drains the backlog.
    std::size_t write_buffer_cap = 1 << 20;
    /// Largest accepted payload_len; larger frames poison the stream
    /// (error frame + disconnect).
    std::uint32_t max_payload = 1 << 20;
    /// partial_fit publishes a fresh snapshot to the engine every N fits
    /// (and on the first fit). Amortizes snapshot finalization.
    std::size_t publish_every = 64;
};

/// Single-threaded epoll server bridging TCP clients to an
/// inference_engine (and optionally an online trainer).
class wire_server {
public:
    /// Serve `engine` over TCP. `trainer`, when given, enables
    /// partial_fit (the server is then the trainer's only writer thread);
    /// raw-feature predict payloads need an encoder — `encoder` defaults
    /// to the trainer's, so encoded-only inference servers can pass
    /// neither. The engine must outlive the server.
    explicit wire_server(serve::inference_engine& engine,
                         wire_server_options options = {},
                         core::uhd_model* trainer = nullptr,
                         const core::uhd_encoder* encoder = nullptr);

    wire_server(const wire_server&) = delete;
    wire_server& operator=(const wire_server&) = delete;

    /// stop()s; see there.
    ~wire_server();

    /// Bind, listen and spawn the event-loop thread. Throws uhd::error on
    /// socket failures.
    void start();

    /// Shut down: stop accepting, close connections, join the loop
    /// thread, and wait until every request already inside the engine has
    /// completed (so no engine callback can outlive this object).
    /// Idempotent.
    void stop();

    /// The bound TCP port (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Live wire counters (safe from any thread).
    [[nodiscard]] wire_stats stats() const noexcept { return counters_.load(); }

private:
    struct connection;
    struct completion {
        std::uint64_t conn_id = 0;
        std::uint32_t request_id = 0;
        std::uint8_t reply_op = 0;
        std::uint32_t label = 0;
        std::uint64_t snapshot_version = 0;
        bool failed = false;
    };

    void loop();
    void accept_ready();
    void drain_completions();
    void pump_connection(connection& conn);
    bool engine_stopped_guard(connection& conn);
    bool parse_frames(connection& conn);
    bool handle_frame(connection& conn, std::uint8_t op, std::uint32_t request_id,
                      const std::uint8_t* payload, std::size_t payload_len);
    bool handle_predict(connection& conn, std::uint8_t op, std::uint32_t request_id,
                        const std::uint8_t* payload, std::size_t payload_len);
    void handle_partial_fit(connection& conn, std::uint32_t request_id,
                            const std::uint8_t* payload, std::size_t payload_len);
    void handle_stats(connection& conn, std::uint32_t request_id);
    bool submit_decoded(connection& conn, std::uint32_t request_id, bool dynamic,
                        std::vector<std::int32_t>& encoded);
    void queue_error(connection& conn, std::uint32_t request_id, wire_error code,
                     const char* message);
    void flush_writes(connection& conn);
    void update_epoll_interest(connection& conn);
    void close_connection(std::uint64_t conn_id);
    [[nodiscard]] bool throttled(const connection& conn) const noexcept;

    serve::inference_engine& engine_;
    core::uhd_model* trainer_ = nullptr;
    const core::uhd_encoder* encoder_ = nullptr;
    wire_server_options options_;

    socket_fd listener_;
    socket_fd epoll_;
    socket_fd wake_; ///< eventfd: completion arrivals + stop signal
    std::uint16_t port_ = 0;
    std::thread loop_thread_;
    std::atomic<bool> running_{false};
    std::mutex start_stop_mutex_; ///< serializes start()/stop() callers

    std::uint64_t next_conn_id_ = 2; ///< 0 = listener, 1 = eventfd
    std::unordered_map<std::uint64_t, std::unique_ptr<connection>> conns_;

    // Completion mailbox: engine workers push, the loop drains. The
    // outstanding count lets stop() wait until no callback can still be
    // in flight.
    std::mutex completions_mutex_;
    std::vector<completion> completions_;
    std::size_t outstanding_ = 0;
    std::condition_variable outstanding_zero_;

    std::uint64_t fits_ = 0; ///< cumulative partial_fit count (loop thread)
    wire_counters counters_;
};

} // namespace uhd::net

#endif // UHD_NET_WIRE_SERVER_HPP
