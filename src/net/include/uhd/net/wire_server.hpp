// Epoll wire front-end for the serving engine — the "traffic actually
// reaches the process" layer.
//
// Threading model (sharded reactors, default 1):
//
//   clients ══ TCP ══▶ N reactor threads ──try_submit[_raw]()──▶ engine
//              (SO_REUSEPORT listeners;       │                  workers
//               epoll, edge-triggered,        │                    │
//               non-blocking accept4)         │                    │
//                     ▲      ▲                │                    │
//                     │      └── per-reactor eventfd ◀── completion
//                     └────────── write buffers          callback
//
// * The I/O layer owns no inference threads: each reactor runs one epoll
//   loop over the connections *it* accepted; inference parallelism stays
//   where it already lives (the engine's micro-batch workers). Decoded
//   queries move straight from the connection read buffer into the
//   engine's request vector — one deserialize, zero further payload
//   copies. Raw-feature queries are NOT encoded on the reactor: the raw
//   bytes are handed to the engine and its workers batch-encode each
//   drained micro-batch with one encode_batch call, so the reactor does
//   pure I/O and encode throughput scales with workers, not loops.
// * Sharding: with N > 1 each reactor has its own SO_REUSEPORT listener
//   on the shared port (the kernel load-balances accepts), connection
//   table, completion mailbox + eventfd, and wire_counters shard
//   (stats() sums the shards). A connection lives its whole life on the
//   reactor that accepted it, so every per-connection invariant —
//   backpressure caps, write-buffer re-arming, poison handling, FIFO
//   order — holds per shard exactly as it did with one loop.
// * Completions come back on worker threads; the callback only appends
//   {connection, request_id, answer} to the owning reactor's mailbox and
//   kicks that reactor's eventfd, so workers never touch sockets and no
//   loop ever waits on inference.
// * Backpressure is layered the way the queue contract wants it: the
//   engine queue is never blocked on — a full try_submit parks the
//   request on its connection and the loop simply stops reading that
//   socket (edge-triggered epoll makes "stop reading" free). A slow
//   *reader* is throttled the same way: while a connection exceeds its
//   in-flight cap or its write buffer is over the cap, its reads pause
//   until completions drain / EPOLLOUT flushes. Sockets throttle;
//   the queue never deadlocks, other connections never stall.
// * Malformed traffic: protocol-poisoning frames (bad magic/version,
//   oversized length) get one error frame, then the connection is
//   flushed and closed; per-request junk (unknown opcode, bad payload)
//   gets an error frame and the stream continues. Truncated frames
//   simply wait for more bytes; EOF mid-frame closes after in-flight
//   requests drain.
// * partial_fit may now arrive on any reactor, so trainer updates (and
//   the publish cadence counter) are serialized by one trainer mutex —
//   the only cross-reactor lock, and only on the training path.
#ifndef UHD_NET_WIRE_SERVER_HPP
#define UHD_NET_WIRE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "uhd/core/model.hpp"
#include "uhd/net/socket.hpp"
#include "uhd/net/wire_format.hpp"
#include "uhd/net/wire_stats.hpp"
#include "uhd/serve/inference_engine.hpp"

namespace uhd::net {

/// Wire front-end tuning knobs.
struct wire_server_options {
    /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back
    /// with port()).
    std::uint16_t port = 0;
    /// listen() backlog (per reactor listener).
    int backlog = 128;
    /// Per-connection cap on requests submitted but not yet answered;
    /// reads pause above it (backpressure against slow readers and
    /// against pipelining far past the engine's micro-batch depth).
    std::size_t inflight_cap = 128;
    /// Per-connection cap on buffered unsent reply bytes; reads pause
    /// above it until EPOLLOUT drains the backlog.
    std::size_t write_buffer_cap = 1 << 20;
    /// Largest accepted payload_len; larger frames poison the stream
    /// (error frame + disconnect).
    std::uint32_t max_payload = 1 << 20;
    /// partial_fit publishes a fresh snapshot to the engine every N fits
    /// (and on the first fit). Amortizes snapshot finalization.
    std::size_t publish_every = 64;
    /// Epoll loop threads, each with its own SO_REUSEPORT listener and
    /// connection shard. 0 resolves UHD_NET_REACTORS (default 1).
    std::size_t reactors = 0;
};

/// Sharded epoll server bridging TCP clients to an inference_engine (and
/// optionally an online trainer).
class wire_server {
public:
    /// Serve `engine` over TCP. `trainer`, when given, enables
    /// partial_fit (updates are serialized across reactors by an internal
    /// mutex); raw-feature predict payloads are answered through the
    /// engine's off-loop encode stage when it is raw_capable(), else
    /// encoded inline with `encoder` — which defaults to the trainer's,
    /// so encoded-only inference servers can pass neither. The engine
    /// must outlive the server.
    explicit wire_server(serve::inference_engine& engine,
                         wire_server_options options = {},
                         core::uhd_model* trainer = nullptr,
                         const core::uhd_encoder* encoder = nullptr);

    wire_server(const wire_server&) = delete;
    wire_server& operator=(const wire_server&) = delete;

    /// stop()s; see there.
    ~wire_server();

    /// Bind the listeners, spawn the reactor threads. Throws uhd::error
    /// on socket failures (and on an invalid UHD_NET_REACTORS).
    void start();

    /// Shut down: stop accepting, close connections, join every reactor,
    /// and wait until every request already inside the engine has
    /// completed (so no engine callback can outlive this object).
    /// Idempotent.
    void stop();

    /// The bound TCP port, shared by every reactor (valid after start()).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Reactor threads serving (valid after start(); 0 before).
    [[nodiscard]] std::size_t reactor_count() const noexcept {
        return reactors_.size();
    }

    /// Aggregated wire counters: the field-wise sum over every reactor
    /// shard (safe from any thread).
    [[nodiscard]] wire_stats stats() const noexcept;

    /// One reactor's own shard (safe from any thread; `i` must be below
    /// reactor_count()).
    [[nodiscard]] wire_stats reactor_stats(std::size_t i) const;

private:
    struct connection;
    struct completion {
        std::uint64_t conn_id = 0;
        std::uint32_t request_id = 0;
        std::uint8_t reply_op = 0;
        std::uint32_t label = 0;
        std::uint64_t snapshot_version = 0;
        bool failed = false;
    };

    /// One sharded event loop: everything the former single loop owned,
    /// now per reactor. Heap-pinned (vector of unique_ptr) so completion
    /// callbacks can capture a stable pointer.
    struct reactor {
        std::size_t index = 0;
        socket_fd listener;
        socket_fd epoll;
        socket_fd wake; ///< eventfd: completion arrivals + stop signal
        std::thread thread;
        std::uint64_t next_conn_id = 2; ///< 0 = listener, 1 = eventfd
        std::unordered_map<std::uint64_t, std::unique_ptr<connection>> conns;

        // Completion mailbox: engine workers push, this reactor drains.
        // The outstanding count lets stop() wait until no callback that
        // captures this reactor can still be in flight.
        std::mutex completions_mutex;
        std::vector<completion> completions;
        std::size_t outstanding = 0;
        std::condition_variable outstanding_zero;

        wire_counters counters; ///< this reactor's stats shard
    };

    void loop(reactor& r);
    void accept_ready(reactor& r);
    void drain_completions(reactor& r);
    void pump_connection(reactor& r, connection& conn);
    bool retry_parked(reactor& r, connection& conn);
    bool parse_frames(reactor& r, connection& conn);
    bool handle_frame(reactor& r, connection& conn, std::uint8_t op,
                      std::uint32_t request_id, const std::uint8_t* payload,
                      std::size_t payload_len);
    bool handle_predict(reactor& r, connection& conn, std::uint8_t op,
                        std::uint32_t request_id, const std::uint8_t* payload,
                        std::size_t payload_len);
    void handle_partial_fit(reactor& r, connection& conn,
                            std::uint32_t request_id,
                            const std::uint8_t* payload,
                            std::size_t payload_len);
    void handle_stats(reactor& r, connection& conn, std::uint32_t request_id);
    bool submit_decoded(reactor& r, connection& conn, std::uint32_t request_id,
                        bool dynamic, std::vector<std::int32_t>& encoded);
    bool submit_raw(reactor& r, connection& conn, std::uint32_t request_id,
                    bool dynamic, std::vector<std::uint8_t>& raw);
    serve::answer_callback make_completion(reactor& r, std::uint64_t conn_id,
                                           std::uint32_t request_id,
                                           std::uint8_t reply_op);
    void queue_error(reactor& r, connection& conn, std::uint32_t request_id,
                     wire_error code, const char* message);
    void flush_writes(reactor& r, connection& conn);
    void update_epoll_interest(reactor& r, connection& conn);
    void close_connection(reactor& r, std::uint64_t conn_id);
    [[nodiscard]] bool throttled(const connection& conn) const noexcept;

    serve::inference_engine& engine_;
    core::uhd_model* trainer_ = nullptr;
    const core::uhd_encoder* encoder_ = nullptr;
    wire_server_options options_;

    std::vector<std::unique_ptr<reactor>> reactors_;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::mutex start_stop_mutex_; ///< serializes start()/stop() callers

    // Training path: any reactor may carry partial_fit, so the trainer
    // (and the publish cadence counter) get one writer lock.
    std::mutex trainer_mutex_;
    std::uint64_t fits_ = 0; ///< cumulative partial_fit count (under lock)
};

} // namespace uhd::net

#endif // UHD_NET_WIRE_SERVER_HPP
