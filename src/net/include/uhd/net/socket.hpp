// Thin RAII + setup helpers over POSIX TCP sockets — everything the wire
// layer needs and nothing more (IPv4 loopback-oriented; the serve story
// is a local or rack-local front-end, not a general network stack).
#ifndef UHD_NET_SOCKET_HPP
#define UHD_NET_SOCKET_HPP

#include <cstdint>
#include <string>
#include <utility>

namespace uhd::net {

/// Owning file descriptor: closes on destruction, move-only.
class socket_fd {
public:
    socket_fd() = default;
    explicit socket_fd(int fd) noexcept : fd_(fd) {}
    socket_fd(const socket_fd&) = delete;
    socket_fd& operator=(const socket_fd&) = delete;
    socket_fd(socket_fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    socket_fd& operator=(socket_fd&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    ~socket_fd() { reset(); }

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

    /// Close the held descriptor (if any) and adopt `fd`.
    void reset(int fd = -1) noexcept;

    /// Give up ownership without closing.
    [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }

private:
    int fd_ = -1;
};

/// Non-blocking IPv4 listener on 127.0.0.1:`port` (0 = ephemeral) with
/// SO_REUSEADDR. With `reuse_port`, SO_REUSEPORT is set too so several
/// listeners can share one port (the kernel load-balances accepts across
/// them — the multi-reactor server's sharding mechanism); every listener
/// on the port must set it, including the first. Throws uhd::error on
/// failure.
[[nodiscard]] socket_fd listen_tcp(std::uint16_t port, int backlog,
                                   bool reuse_port = false);

/// Blocking connect to `host`:`port` with TCP_NODELAY set. Throws
/// uhd::error on failure.
[[nodiscard]] socket_fd connect_tcp(const std::string& host, std::uint16_t port);

/// Flip O_NONBLOCK on. Throws uhd::error on failure.
void set_nonblocking(int fd);

/// Disable Nagle (small request/response frames; latency over batching).
void set_tcp_nodelay(int fd);

/// The locally bound port of a listening/connected socket.
[[nodiscard]] std::uint16_t local_port(int fd);

} // namespace uhd::net

#endif // UHD_NET_SOCKET_HPP
