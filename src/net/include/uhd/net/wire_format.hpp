// uHD wire protocol: compact length-prefixed binary frames.
//
// Every frame is a fixed 12-byte little-endian header followed by an
// opaque payload:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     2  magic        0x7548 ("Hu" on the wire, little-endian)
//        2     1  version      protocol version, currently 1
//        3     1  opcode       request/reply kind (table below)
//        4     4  request_id   echoed verbatim in the reply; clients use
//                              it to match pipelined responses
//        8     4  payload_len  payload bytes following the header
//
// Request opcodes (client -> server); each reply echoes the request
// opcode with the high bit set (op | 0x80), or op_error (0xFF):
//
//   op               payload
//   ---------------  ----------------------------------------------------
//   predict (1)      u8 kind, then the query: kind 0 = raw u8 features
//                    (encoder pixel count bytes; the server encodes),
//                    kind 1 = pre-encoded int32 accumulators (dim * 4
//                    bytes, little-endian). Reply: u32 label,
//                    u64 snapshot_version.
//   predict_dynamic  same payload as predict; answered through the
//   (2)              early-exit cascade. op_error(unsupported) when the
//                    engine has no dynamic policy. Reply as predict.
//   partial_fit (3)  u32 label, then raw u8 features. Reply: u64 updates
//                    (cumulative fits on this server), u64 published
//                    snapshot version.
//   stats (4)        empty. Reply: 17 x u64 (see stats_reply).
//   ping (5)         arbitrary; echoed back verbatim.
//
// Error replies (op_error) carry: u16 error code, then a human-readable
// message (not NUL-terminated). Protocol-level errors (bad magic/version,
// oversized payload) poison the stream — the server sends the error frame
// and disconnects; request-level errors (bad opcode/payload, unsupported)
// answer just that frame and the connection lives on.
//
// This header is the single source of truth for both sides: the server,
// the blocking client, the load generator and the fuzz tests all
// encode/decode through these helpers.
#ifndef UHD_NET_WIRE_FORMAT_HPP
#define UHD_NET_WIRE_FORMAT_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace uhd::net {

inline constexpr std::uint16_t wire_magic = 0x7548;
inline constexpr std::uint8_t wire_version = 1;
inline constexpr std::size_t wire_header_size = 12;

/// Frame kinds. Replies echo the request opcode with the high bit set.
enum class opcode : std::uint8_t {
    predict = 1,         ///< full-scan classification
    predict_dynamic = 2, ///< early-exit cascade classification
    partial_fit = 3,     ///< online training step
    stats = 4,           ///< server + engine counters
    ping = 5,            ///< liveness / RTT probe; payload echoed
};

inline constexpr std::uint8_t reply_bit = 0x80;
inline constexpr std::uint8_t op_error = 0xFF;

/// Make the reply opcode for a request opcode.
[[nodiscard]] constexpr std::uint8_t reply_opcode(opcode op) noexcept {
    return static_cast<std::uint8_t>(static_cast<std::uint8_t>(op) | reply_bit);
}

/// Error codes carried in the first two payload bytes of op_error frames.
enum class wire_error : std::uint16_t {
    bad_magic = 1,   ///< first two header bytes are not wire_magic
    bad_version = 2, ///< protocol version mismatch
    bad_opcode = 3,  ///< unknown request opcode
    bad_payload = 4, ///< payload malformed for the opcode
    unsupported = 5, ///< valid request the server cannot serve
    oversized = 6,   ///< payload_len above the server's cap
    internal = 7,    ///< engine-side failure answering the request
};

/// predict/predict_dynamic payload kinds (first payload byte).
enum class query_kind : std::uint8_t {
    raw = 0,     ///< u8 features, encoder.pixels() bytes
    encoded = 1, ///< int32 accumulators, dim * 4 bytes little-endian
};

/// Decoded frame header.
struct frame_header {
    std::uint16_t magic = 0;
    std::uint8_t version = 0;
    std::uint8_t op = 0;
    std::uint32_t request_id = 0;
    std::uint32_t payload_len = 0;
};

// -- little-endian scalar helpers -------------------------------------
// memcpy + explicit byte math: well-defined on any host endianness and
// compiled to plain loads/stores on little-endian machines.

inline void store_u16(std::uint8_t* out, std::uint16_t v) noexcept {
    out[0] = static_cast<std::uint8_t>(v & 0xFF);
    out[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void store_u32(std::uint8_t* out, std::uint32_t v) noexcept {
    for (int i = 0; i < 4; ++i) {
        out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
    }
}

inline void store_u64(std::uint8_t* out, std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
        out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
    }
}

[[nodiscard]] inline std::uint16_t load_u16(const std::uint8_t* in) noexcept {
    return static_cast<std::uint16_t>(in[0] |
                                      (static_cast<std::uint16_t>(in[1]) << 8));
}

[[nodiscard]] inline std::uint32_t load_u32(const std::uint8_t* in) noexcept {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
    return v;
}

[[nodiscard]] inline std::uint64_t load_u64(const std::uint8_t* in) noexcept {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
    return v;
}

// -- header + frame encode/decode -------------------------------------

/// Serialize a header into exactly wire_header_size bytes at `out`.
inline void encode_header(std::uint8_t* out, std::uint8_t op,
                          std::uint32_t request_id,
                          std::uint32_t payload_len) noexcept {
    store_u16(out, wire_magic);
    out[2] = wire_version;
    out[3] = op;
    store_u32(out + 4, request_id);
    store_u32(out + 8, payload_len);
}

/// Decode a header from at least wire_header_size bytes. Purely
/// structural: magic/version/opcode validation is the caller's business
/// (the server answers each malformed case differently).
[[nodiscard]] inline frame_header decode_header(const std::uint8_t* in) noexcept {
    frame_header h;
    h.magic = load_u16(in);
    h.version = in[2];
    h.op = in[3];
    h.request_id = load_u32(in + 4);
    h.payload_len = load_u32(in + 8);
    return h;
}

/// Append one complete frame (header + payload) to `out`.
inline void append_frame(std::vector<std::uint8_t>& out, std::uint8_t op,
                         std::uint32_t request_id,
                         std::span<const std::uint8_t> payload) {
    const std::size_t base = out.size();
    out.resize(base + wire_header_size + payload.size());
    encode_header(out.data() + base, op, request_id,
                  static_cast<std::uint32_t>(payload.size()));
    if (!payload.empty()) {
        std::memcpy(out.data() + base + wire_header_size, payload.data(),
                    payload.size());
    }
}

/// Append an error frame: u16 code + message bytes.
inline void append_error_frame(std::vector<std::uint8_t>& out,
                               std::uint32_t request_id, wire_error code,
                               std::string_view message) {
    std::vector<std::uint8_t> payload(2 + message.size());
    store_u16(payload.data(), static_cast<std::uint16_t>(code));
    if (!message.empty()) {
        std::memcpy(payload.data() + 2, message.data(), message.size());
    }
    append_frame(out, op_error, request_id, payload);
}

// -- payload helpers shared by server, client and tests ----------------

/// Append a predict/predict_dynamic request with a pre-encoded query.
inline void append_predict_encoded(std::vector<std::uint8_t>& out, opcode op,
                                   std::uint32_t request_id,
                                   std::span<const std::int32_t> encoded) {
    std::vector<std::uint8_t> payload(1 + encoded.size() * 4);
    payload[0] = static_cast<std::uint8_t>(query_kind::encoded);
    for (std::size_t i = 0; i < encoded.size(); ++i) {
        store_u32(payload.data() + 1 + i * 4,
                  static_cast<std::uint32_t>(encoded[i]));
    }
    append_frame(out, static_cast<std::uint8_t>(op), request_id, payload);
}

/// Append a predict/predict_dynamic request with raw u8 features.
inline void append_predict_raw(std::vector<std::uint8_t>& out, opcode op,
                               std::uint32_t request_id,
                               std::span<const std::uint8_t> features) {
    std::vector<std::uint8_t> payload(1 + features.size());
    payload[0] = static_cast<std::uint8_t>(query_kind::raw);
    if (!features.empty()) {
        std::memcpy(payload.data() + 1, features.data(), features.size());
    }
    append_frame(out, static_cast<std::uint8_t>(op), request_id, payload);
}

/// Append a partial_fit request: u32 label + raw u8 features.
inline void append_partial_fit(std::vector<std::uint8_t>& out,
                               std::uint32_t request_id, std::uint32_t label,
                               std::span<const std::uint8_t> features) {
    std::vector<std::uint8_t> payload(4 + features.size());
    store_u32(payload.data(), label);
    if (!features.empty()) {
        std::memcpy(payload.data() + 4, features.data(), features.size());
    }
    append_frame(out, static_cast<std::uint8_t>(opcode::partial_fit),
                 request_id, payload);
}

/// Decoded predict reply payload.
struct predict_reply {
    std::uint32_t label = 0;
    std::uint64_t snapshot_version = 0;
};

/// Parse a predict/predict_dynamic reply payload; nullopt on bad size.
[[nodiscard]] inline std::optional<predict_reply>
parse_predict_reply(std::span<const std::uint8_t> payload) noexcept {
    if (payload.size() != 12) return std::nullopt;
    predict_reply r;
    r.label = load_u32(payload.data());
    r.snapshot_version = load_u64(payload.data() + 4);
    return r;
}

/// Decoded partial_fit reply payload.
struct partial_fit_reply {
    std::uint64_t updates = 0;
    std::uint64_t snapshot_version = 0;
};

/// Parse a partial_fit reply payload; nullopt on bad size.
[[nodiscard]] inline std::optional<partial_fit_reply>
parse_partial_fit_reply(std::span<const std::uint8_t> payload) noexcept {
    if (payload.size() != 16) return std::nullopt;
    partial_fit_reply r;
    r.updates = load_u64(payload.data());
    r.snapshot_version = load_u64(payload.data() + 8);
    return r;
}

/// Decoded stats reply payload: engine counters then wire counters (wire
/// counters are summed over every reactor shard; `reactors` is the shard
/// count that produced the sums).
struct stats_reply {
    std::uint64_t queries = 0;
    std::uint64_t batches = 0;
    std::uint64_t kernel_calls = 0;
    std::uint64_t snapshot_swaps = 0;
    std::uint64_t max_batch_observed = 0;
    std::uint64_t snapshot_version = 0;
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_active = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t malformed_frames = 0;
    std::uint64_t throttle_events = 0;
    std::uint64_t reactors = 0;           ///< epoll loop threads serving
    std::uint64_t raw_queries = 0;        ///< raw-feature requests encoded
                                          ///< by the engine's encode stage
    std::uint64_t encode_kernel_calls = 0; ///< encode_batch drain calls
};

inline constexpr std::size_t stats_reply_fields = 17;
inline constexpr std::size_t stats_reply_size = stats_reply_fields * 8;

/// Serialize a stats reply payload (17 x u64, little-endian).
inline void encode_stats_reply(std::uint8_t* out, const stats_reply& s) noexcept {
    const std::uint64_t fields[stats_reply_fields] = {
        s.queries,     s.batches,   s.kernel_calls,
        s.snapshot_swaps, s.max_batch_observed, s.snapshot_version,
        s.connections_accepted, s.connections_active, s.frames_in,
        s.frames_out,  s.bytes_in,  s.bytes_out,
        s.malformed_frames, s.throttle_events, s.reactors,
        s.raw_queries, s.encode_kernel_calls,
    };
    for (std::size_t i = 0; i < stats_reply_fields; ++i) {
        store_u64(out + i * 8, fields[i]);
    }
}

/// Parse a stats reply payload; nullopt on bad size.
[[nodiscard]] inline std::optional<stats_reply>
parse_stats_reply(std::span<const std::uint8_t> payload) noexcept {
    if (payload.size() != stats_reply_size) return std::nullopt;
    stats_reply s;
    std::uint64_t fields[stats_reply_fields];
    for (std::size_t i = 0; i < stats_reply_fields; ++i) {
        fields[i] = load_u64(payload.data() + i * 8);
    }
    s.queries = fields[0];
    s.batches = fields[1];
    s.kernel_calls = fields[2];
    s.snapshot_swaps = fields[3];
    s.max_batch_observed = fields[4];
    s.snapshot_version = fields[5];
    s.connections_accepted = fields[6];
    s.connections_active = fields[7];
    s.frames_in = fields[8];
    s.frames_out = fields[9];
    s.bytes_in = fields[10];
    s.bytes_out = fields[11];
    s.malformed_frames = fields[12];
    s.throttle_events = fields[13];
    s.reactors = fields[14];
    s.raw_queries = fields[15];
    s.encode_kernel_calls = fields[16];
    return s;
}

} // namespace uhd::net

#endif // UHD_NET_WIRE_FORMAT_HPP
