#include "uhd/net/wire_client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "uhd/common/error.hpp"

namespace uhd::net {

wire_client::wire_client(const std::string& host, std::uint16_t port)
    : sock_(connect_tcp(host, port)) {}

void wire_client::set_recv_timeout_ms(long ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    if (::setsockopt(sock_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
        0) {
        throw uhd::error("setsockopt(SO_RCVTIMEO) failed");
    }
}

void wire_client::send_bytes(std::span<const std::uint8_t> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(sock_.get(), bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw uhd::error(std::string("send() failed: ") +
                             std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

namespace {

void recv_exact(int fd, std::uint8_t* out, std::size_t len, bool& peer_closed) {
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, out + got, len - got, 0);
        if (n == 0) {
            peer_closed = true;
            throw uhd::error("connection closed by server mid-frame");
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            throw uhd::error(std::string("recv() failed: ") +
                             std::strerror(errno));
        }
        got += static_cast<std::size_t>(n);
    }
}

} // namespace

wire_frame wire_client::read_frame() {
    std::uint8_t raw[wire_header_size];
    recv_exact(sock_.get(), raw, sizeof(raw), peer_closed_);
    wire_frame frame;
    frame.header = decode_header(raw);
    UHD_REQUIRE(frame.header.magic == wire_magic,
                "reply frame has bad magic (client desynced?)");
    // Reply payloads are small; a huge length means a desynced stream.
    UHD_REQUIRE(frame.header.payload_len <= (64U << 20),
                "reply frame payload implausibly large");
    frame.payload.resize(frame.header.payload_len);
    if (!frame.payload.empty()) {
        recv_exact(sock_.get(), frame.payload.data(), frame.payload.size(),
                   peer_closed_);
    }
    return frame;
}

wire_frame wire_client::roundtrip(std::span<const std::uint8_t> request) {
    send_bytes(request);
    return read_frame();
}

namespace {

[[noreturn]] void throw_error_frame(const wire_frame& frame) {
    std::string message = "wire error";
    if (frame.payload.size() >= 2) {
        message += " (code " + std::to_string(load_u16(frame.payload.data())) +
                   "): " +
                   std::string(frame.payload.begin() + 2, frame.payload.end());
    }
    throw uhd::error(message);
}

} // namespace

predict_reply wire_client::predict_encoded(
    std::span<const std::int32_t> encoded, bool dynamic) {
    const std::uint32_t id = next_request_id_++;
    std::vector<std::uint8_t> out;
    append_predict_encoded(out,
                           dynamic ? opcode::predict_dynamic : opcode::predict,
                           id, encoded);
    const wire_frame reply = roundtrip(out);
    if (reply.header.op == op_error) throw_error_frame(reply);
    UHD_REQUIRE(reply.header.request_id == id, "reply id mismatch");
    const auto parsed = parse_predict_reply(reply.payload);
    UHD_REQUIRE(parsed.has_value(), "malformed predict reply payload");
    return *parsed;
}

predict_reply wire_client::predict_raw(std::span<const std::uint8_t> features,
                                       bool dynamic) {
    const std::uint32_t id = next_request_id_++;
    std::vector<std::uint8_t> out;
    append_predict_raw(out, dynamic ? opcode::predict_dynamic : opcode::predict,
                       id, features);
    const wire_frame reply = roundtrip(out);
    if (reply.header.op == op_error) throw_error_frame(reply);
    UHD_REQUIRE(reply.header.request_id == id, "reply id mismatch");
    const auto parsed = parse_predict_reply(reply.payload);
    UHD_REQUIRE(parsed.has_value(), "malformed predict reply payload");
    return *parsed;
}

partial_fit_reply wire_client::partial_fit(
    std::uint32_t label, std::span<const std::uint8_t> features) {
    const std::uint32_t id = next_request_id_++;
    std::vector<std::uint8_t> out;
    append_partial_fit(out, id, label, features);
    const wire_frame reply = roundtrip(out);
    if (reply.header.op == op_error) throw_error_frame(reply);
    UHD_REQUIRE(reply.header.request_id == id, "reply id mismatch");
    const auto parsed = parse_partial_fit_reply(reply.payload);
    UHD_REQUIRE(parsed.has_value(), "malformed partial_fit reply payload");
    return *parsed;
}

stats_reply wire_client::stats() {
    const std::uint32_t id = next_request_id_++;
    std::vector<std::uint8_t> out;
    append_frame(out, static_cast<std::uint8_t>(opcode::stats), id, {});
    const wire_frame reply = roundtrip(out);
    if (reply.header.op == op_error) throw_error_frame(reply);
    UHD_REQUIRE(reply.header.request_id == id, "reply id mismatch");
    const auto parsed = parse_stats_reply(reply.payload);
    UHD_REQUIRE(parsed.has_value(), "malformed stats reply payload");
    return *parsed;
}

void wire_client::ping() {
    const std::uint32_t id = next_request_id_++;
    const std::uint8_t probe[4] = {0xDE, 0xAD, 0xBE, 0xEF};
    std::vector<std::uint8_t> out;
    append_frame(out, static_cast<std::uint8_t>(opcode::ping), id,
                 std::span<const std::uint8_t>(probe, sizeof(probe)));
    const wire_frame reply = roundtrip(out);
    if (reply.header.op == op_error) throw_error_frame(reply);
    UHD_REQUIRE(reply.header.request_id == id, "reply id mismatch");
    UHD_REQUIRE(reply.payload.size() == sizeof(probe) &&
                    std::memcmp(reply.payload.data(), probe, sizeof(probe)) == 0,
                "ping payload not echoed");
}

} // namespace uhd::net
