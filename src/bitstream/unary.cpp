// Word-level implementations of the unary (thermometer) operations.
//
// Thermometer codes are runs of 1s at one end of the stream, so every
// operation here reduces to whole-word arithmetic on the packed storage:
// encode is a word fill plus one boundary mask, min/max are word-wise
// AND/OR, and the Fig. 4 comparator folds its three gate stages into one
// pass of word loads with no temporary streams. Each rewrite is bit- and
// result-identical to the original bit-at-a-time formulation
// (tests/test_unary.cpp keeps per-bit reference implementations and checks
// equivalence over randomized values, lengths, and alignments).
#include "uhd/bitstream/unary.hpp"

#include "uhd/common/bits.hpp"
#include "uhd/common/error.hpp"

namespace uhd::bs {

bitstream unary_encode(std::size_t value, std::size_t length, unary_alignment align) {
    UHD_REQUIRE(value <= length, "unary value exceeds stream length");
    bitstream out(length);
    if (value == 0) return out;
    const auto words = out.mutable_words();
    // The run occupies bits [first, first + value) of the stream; fill the
    // covered words whole and trim the two boundary words with masks.
    const std::size_t first = align == unary_alignment::ones_leading ? 0 : length - value;
    const std::size_t last = first + value; // one past the run
    const std::size_t first_word = first / word_bits;
    const std::size_t last_word = (last - 1) / word_bits;
    for (std::size_t w = first_word; w <= last_word; ++w) words[w] = ~std::uint64_t{0};
    words[first_word] &= ~low_mask(first % word_bits);
    if (last % word_bits != 0) words[last_word] &= low_mask(last % word_bits);
    return out;
}

bool is_unary(const bitstream& stream, unary_alignment align) {
    const std::size_t n = stream.size();
    const std::size_t v = stream.popcount();
    if (v == 0) return true;
    if (align == unary_alignment::ones_leading) {
        // The run of ones must occupy positions [0, v).
        return stream.bit(v - 1) && (v == n || !stream.bit(v));
    }
    // ones_trailing: the run of ones must occupy positions [n - v, n).
    return stream.bit(n - v) && (v == n || !stream.bit(n - v - 1));
}

std::size_t unary_decode(const bitstream& stream, unary_alignment align) {
    UHD_REQUIRE(is_unary(stream, align), "stream is not a valid thermometer code");
    return stream.popcount();
}

bitstream unary_min(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "unary min inputs must have equal length");
    // Equally aligned thermometer codes are maximally correlated, so the
    // word-wise AND of the packed storage is the smaller value's code.
    bitstream out = a;
    const auto out_words = out.mutable_words();
    const auto b_words = b.words();
    for (std::size_t w = 0; w < out_words.size(); ++w) out_words[w] &= b_words[w];
    return out;
}

bitstream unary_max(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "unary max inputs must have equal length");
    // Dual of unary_min: word-wise OR yields the larger value's code.
    bitstream out = a;
    const auto out_words = out.mutable_words();
    const auto b_words = b.words();
    for (std::size_t w = 0; w < out_words.size(); ++w) out_words[w] |= b_words[w];
    return out;
}

bool unary_compare_geq(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "unary comparator inputs must have equal length");
    // Fig. 4: minimum via AND, then OR with the inverted second operand,
    // then an N-input AND reduction. Per word that is
    //     all-ones((a & b) | ~b)  ==  ((b & ~a) == 0)
    // (De Morgan), so the whole comparator is one pass of word loads — no
    // temporary streams, same gates, same result. Tail bits beyond size()
    // are zero in both operands, so they can never veto the reduction.
    const auto a_words = a.words();
    const auto b_words = b.words();
    for (std::size_t w = 0; w < a_words.size(); ++w) {
        if ((b_words[w] & ~a_words[w]) != 0) return false;
    }
    return true;
}

bitstream unary_saturating_add(const bitstream& a, const bitstream& b, unary_alignment align) {
    UHD_REQUIRE(a.size() == b.size(), "unary add inputs must have equal length");
    const std::size_t va = unary_decode(a, align);
    const std::size_t vb = unary_decode(b, align);
    const std::size_t n = a.size();
    const std::size_t sum = va + vb > n ? n : va + vb;
    return unary_encode(sum, n, align);
}

std::size_t unary_abs_diff(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "unary diff inputs must have equal length");
    // Equally aligned thermometer codes differ exactly on |va - vb| positions.
    return (a ^ b).popcount();
}

} // namespace uhd::bs
