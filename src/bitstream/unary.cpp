#include "uhd/bitstream/unary.hpp"

#include "uhd/common/error.hpp"

namespace uhd::bs {

bitstream unary_encode(std::size_t value, std::size_t length, unary_alignment align) {
    UHD_REQUIRE(value <= length, "unary value exceeds stream length");
    bitstream out(length);
    if (align == unary_alignment::ones_leading) {
        for (std::size_t i = 0; i < value; ++i) out.set_bit(i, true);
    } else {
        for (std::size_t i = 0; i < value; ++i) out.set_bit(length - 1 - i, true);
    }
    return out;
}

bool is_unary(const bitstream& stream, unary_alignment align) {
    const std::size_t n = stream.size();
    const std::size_t v = stream.popcount();
    if (v == 0) return true;
    if (align == unary_alignment::ones_leading) {
        // The run of ones must occupy positions [0, v).
        return stream.bit(v - 1) && (v == n || !stream.bit(v));
    }
    // ones_trailing: the run of ones must occupy positions [n - v, n).
    return stream.bit(n - v) && (v == n || !stream.bit(n - v - 1));
}

std::size_t unary_decode(const bitstream& stream, unary_alignment align) {
    UHD_REQUIRE(is_unary(stream, align), "stream is not a valid thermometer code");
    return stream.popcount();
}

bitstream unary_min(const bitstream& a, const bitstream& b) { return a & b; }

bitstream unary_max(const bitstream& a, const bitstream& b) { return a | b; }

bool unary_compare_geq(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "unary comparator inputs must have equal length");
    // Fig. 4: minimum via AND, then OR with the inverted second operand.
    // If b is the minimum (b <= a), every bit where b is 1 survives in the
    // AND, so (min OR NOT b) is all-1s and the final N-input AND emits 1.
    const bitstream minimum = a & b;
    const bitstream check = minimum | ~b;
    return check.all();
}

bitstream unary_saturating_add(const bitstream& a, const bitstream& b, unary_alignment align) {
    UHD_REQUIRE(a.size() == b.size(), "unary add inputs must have equal length");
    const std::size_t va = unary_decode(a, align);
    const std::size_t vb = unary_decode(b, align);
    const std::size_t n = a.size();
    const std::size_t sum = va + vb > n ? n : va + vb;
    return unary_encode(sum, n, align);
}

std::size_t unary_abs_diff(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "unary diff inputs must have equal length");
    // Equally aligned thermometer codes differ exactly on |va - vb| positions.
    return (a ^ b).popcount();
}

} // namespace uhd::bs
