#include "uhd/bitstream/generator.hpp"

#include "uhd/common/error.hpp"

namespace uhd::bs {

counter_comparator_generator::counter_comparator_generator(unsigned precision_bits)
    : precision_bits_(precision_bits), length_(std::size_t{1} << precision_bits) {
    UHD_REQUIRE(precision_bits >= 1 && precision_bits <= 20,
                "counter width must be in [1, 20] bits");
}

void counter_comparator_generator::load(std::uint64_t value) {
    UHD_REQUIRE(value <= length_, "value exceeds generator range");
    value_ = value;
    cycle_ = 0;
}

bool counter_comparator_generator::step() {
    UHD_REQUIRE(!done(), "generator already emitted all bits for this value");
    const bool out = cycle_ < value_;
    ++cycle_;
    return out;
}

bitstream counter_comparator_generator::generate(std::uint64_t value) {
    load(value);
    bitstream out(length_);
    for (std::size_t i = 0; i < length_; ++i) out.set_bit(i, step());
    return out;
}

bitstream bernoulli_stream(double probability, std::size_t length, xoshiro256ss& rng) {
    UHD_REQUIRE(probability >= 0.0 && probability <= 1.0, "probability out of [0, 1]");
    bitstream out(length);
    for (std::size_t i = 0; i < length; ++i) {
        if (rng.next_unit() < probability) out.set_bit(i, true);
    }
    return out;
}

bitstream threshold_stream(double value, std::span<const double> thresholds) {
    bitstream out(thresholds.size());
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        if (value >= thresholds[i]) out.set_bit(i, true);
    }
    return out;
}

bitstream quantized_threshold_stream(std::uint8_t q_value,
                                     std::span<const std::uint8_t> q_thresholds) {
    bitstream out(q_thresholds.size());
    for (std::size_t i = 0; i < q_thresholds.size(); ++i) {
        if (q_value >= q_thresholds[i]) out.set_bit(i, true);
    }
    return out;
}

} // namespace uhd::bs
