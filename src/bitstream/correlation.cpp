#include "uhd/bitstream/correlation.hpp"

#include <algorithm>
#include <cmath>

#include "uhd/common/error.hpp"

namespace uhd::bs {

double scc(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "SCC inputs must have equal length");
    UHD_REQUIRE(!a.empty(), "SCC of empty streams");
    const double n = static_cast<double>(a.size());
    const double pa = a.value();
    const double pb = b.value();
    const double pab = static_cast<double>(overlap_count(a, b)) / n;
    const double delta = pab - pa * pb;

    if (delta > 0.0) {
        const double bound = std::min(pa, pb) - pa * pb;
        return bound <= 0.0 ? 0.0 : delta / bound;
    }
    if (delta < 0.0) {
        const double bound = pa * pb - std::max(pa + pb - 1.0, 0.0);
        return bound <= 0.0 ? 0.0 : delta / bound;
    }
    return 0.0;
}

double pearson(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "pearson inputs must have equal length");
    UHD_REQUIRE(!a.empty(), "pearson of empty streams");
    const double n = static_cast<double>(a.size());
    const double pa = a.value();
    const double pb = b.value();
    const double pab = static_cast<double>(overlap_count(a, b)) / n;
    const double var_a = pa * (1.0 - pa);
    const double var_b = pb * (1.0 - pb);
    if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
    return (pab - pa * pb) / std::sqrt(var_a * var_b);
}

double value_error(const bitstream& stream, double reference) {
    return std::abs(stream.value() - reference);
}

double bipolar_agreement(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "agreement inputs must have equal length");
    UHD_REQUIRE(!a.empty(), "agreement of empty streams");
    const double n = static_cast<double>(a.size());
    const double mismatches = static_cast<double>(hamming_distance(a, b));
    return (n - 2.0 * mismatches) / n;
}

} // namespace uhd::bs
