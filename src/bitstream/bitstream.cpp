#include "uhd/bitstream/bitstream.hpp"

#include "uhd/common/error.hpp"

namespace uhd::bs {

bitstream::bitstream(std::size_t length, bool fill)
    : size_(length), words_(words_for_bits(length), fill ? ~std::uint64_t{0} : 0) {
    mask_tail();
}

bitstream bitstream::from_bools(const std::vector<bool>& bits) {
    bitstream out(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) out.words_[i / word_bits] |= std::uint64_t{1} << (i % word_bits);
    }
    return out;
}

bitstream bitstream::from_string(std::string_view text) {
    bitstream out(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        UHD_REQUIRE(c == '0' || c == '1', "bitstream string must contain only '0'/'1'");
        if (c == '1') out.words_[i / word_bits] |= std::uint64_t{1} << (i % word_bits);
    }
    return out;
}

bool bitstream::bit(std::size_t i) const {
    UHD_REQUIRE(i < size_, "bit index out of range");
    return (words_[i / word_bits] >> (i % word_bits)) & 1u;
}

void bitstream::set_bit(std::size_t i, bool value) {
    UHD_REQUIRE(i < size_, "bit index out of range");
    const std::uint64_t mask = std::uint64_t{1} << (i % word_bits);
    if (value) {
        words_[i / word_bits] |= mask;
    } else {
        words_[i / word_bits] &= ~mask;
    }
}

std::size_t bitstream::popcount() const noexcept {
    std::size_t ones = 0;
    for (const std::uint64_t w : words_) ones += static_cast<std::size_t>(popcount64(w));
    return ones;
}

double bitstream::value() const {
    UHD_REQUIRE(size_ > 0, "value() of empty bitstream");
    return static_cast<double>(popcount()) / static_cast<double>(size_);
}

bool bitstream::all() const noexcept { return popcount() == size_; }

bool bitstream::any() const noexcept {
    for (const std::uint64_t w : words_)
        if (w != 0) return true;
    return false;
}

void bitstream::mask_tail() noexcept {
    if (words_.empty()) return;
    const std::size_t used = size_ % word_bits;
    if (used != 0) words_.back() &= low_mask(used);
}

void bitstream::check_same_size(const bitstream& rhs) const {
    UHD_REQUIRE(size_ == rhs.size_, "bitstream length mismatch");
}

bitstream& bitstream::operator&=(const bitstream& rhs) {
    check_same_size(rhs);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= rhs.words_[w];
    return *this;
}

bitstream& bitstream::operator|=(const bitstream& rhs) {
    check_same_size(rhs);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= rhs.words_[w];
    return *this;
}

bitstream& bitstream::operator^=(const bitstream& rhs) {
    check_same_size(rhs);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= rhs.words_[w];
    return *this;
}

bitstream bitstream::operator~() const {
    bitstream out = *this;
    for (auto& w : out.words_) w = ~w;
    out.mask_tail();
    return out;
}

std::string bitstream::to_string() const {
    std::string text(size_, '0');
    for (std::size_t i = 0; i < size_; ++i) {
        if ((words_[i / word_bits] >> (i % word_bits)) & 1u) text[i] = '1';
    }
    return text;
}

std::size_t hamming_distance(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "bitstream length mismatch");
    std::size_t distance = 0;
    const auto wa = a.words();
    const auto wb = b.words();
    for (std::size_t w = 0; w < wa.size(); ++w)
        distance += static_cast<std::size_t>(popcount64(wa[w] ^ wb[w]));
    return distance;
}

std::size_t overlap_count(const bitstream& a, const bitstream& b) {
    UHD_REQUIRE(a.size() == b.size(), "bitstream length mismatch");
    std::size_t overlap = 0;
    const auto wa = a.words();
    const auto wb = b.words();
    for (std::size_t w = 0; w < wa.size(); ++w)
        overlap += static_cast<std::size_t>(popcount64(wa[w] & wb[w]));
    return overlap;
}

} // namespace uhd::bs
