#include "uhd/bitstream/stream_table.hpp"

#include "uhd/common/error.hpp"

namespace uhd::bs {

unary_stream_table::unary_stream_table(std::size_t levels, std::size_t stream_length,
                                       unary_alignment align)
    : stream_length_(stream_length), align_(align) {
    UHD_REQUIRE(levels >= 1, "UST needs at least one level");
    UHD_REQUIRE(levels - 1 <= stream_length,
                "UST levels exceed what stream_length bits can encode");
    table_.reserve(levels);
    for (std::size_t q = 0; q < levels; ++q) {
        table_.push_back(unary_encode(q, stream_length, align));
    }
}

const bitstream& unary_stream_table::fetch(std::size_t q) const {
    UHD_REQUIRE(q < table_.size(), "UST index out of range");
    return table_[q];
}

std::size_t unary_stream_table::value_of(const bitstream& stream) const {
    UHD_REQUIRE(stream.size() == stream_length_, "stream length does not match UST");
    return unary_decode(stream, align_);
}

std::size_t unary_stream_table::memory_bytes() const noexcept {
    std::size_t bytes = table_.capacity() * sizeof(bitstream);
    for (const auto& s : table_) bytes += s.memory_bytes();
    return bytes;
}

} // namespace uhd::bs
