#include "uhd/bitstream/sorting.hpp"

#include <algorithm>

#include "uhd/common/error.hpp"

namespace uhd::bs {
namespace {

// Batcher's odd-even merge sort, recursive construction over index ranges.
// Generates compare-and-swap pairs grouped into parallel stages afterwards.
void merge(std::vector<std::pair<std::size_t, std::size_t>>& pairs, std::size_t lo,
           std::size_t n, std::size_t r) {
    const std::size_t step = r * 2;
    if (step < n) {
        merge(pairs, lo, n, step);
        merge(pairs, lo + r, n, step);
        for (std::size_t i = lo + r; i + r < lo + n; i += step) {
            pairs.emplace_back(i, i + r);
        }
    } else {
        pairs.emplace_back(lo, lo + r);
    }
}

void sort_range(std::vector<std::pair<std::size_t, std::size_t>>& pairs, std::size_t lo,
                std::size_t n) {
    if (n <= 1) return;
    const std::size_t m = n / 2;
    sort_range(pairs, lo, m);
    sort_range(pairs, lo + m, n - m);
    merge(pairs, lo, n, 1);
}

std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

} // namespace

std::pair<bitstream, bitstream> compare_swap(const bitstream& a, const bitstream& b) {
    return {a & b, a | b};
}

std::vector<cas_stage> odd_even_merge_network(std::size_t lanes) {
    UHD_REQUIRE(lanes >= 1, "network needs at least one lane");
    // Build on the padded power-of-two index space, then drop comparators
    // touching padding lanes (padding holds +inf, those CAS are no-ops).
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    sort_range(pairs, 0, next_pow2(lanes));
    std::vector<std::pair<std::size_t, std::size_t>> kept;
    for (const auto& [lo, hi] : pairs) {
        if (lo < lanes && hi < lanes) kept.emplace_back(lo, hi);
    }

    // Greedy stage packing: a comparator joins the earliest stage where both
    // lanes are untouched, without reordering dependent comparators.
    std::vector<cas_stage> stages;
    std::vector<std::size_t> lane_ready(lanes, 0); // first free stage per lane
    for (const auto& [lo, hi] : kept) {
        const std::size_t stage = std::max(lane_ready[lo], lane_ready[hi]);
        if (stage >= stages.size()) stages.resize(stage + 1);
        stages[stage].emplace_back(lo, hi);
        lane_ready[lo] = stage + 1;
        lane_ready[hi] = stage + 1;
    }
    return stages;
}

std::size_t network_size(std::size_t lanes) {
    std::size_t count = 0;
    for (const auto& stage : odd_even_merge_network(lanes)) count += stage.size();
    return count;
}

std::size_t network_depth(std::size_t lanes) {
    return odd_even_merge_network(lanes).size();
}

std::vector<bitstream> unary_sort(std::vector<bitstream> values) {
    UHD_REQUIRE(!values.empty(), "nothing to sort");
    for (const auto& v : values) {
        UHD_REQUIRE(v.size() == values.front().size(), "stream length mismatch");
    }
    for (const auto& stage : odd_even_merge_network(values.size())) {
        for (const auto& [lo, hi] : stage) {
            auto [mn, mx] = compare_swap(values[lo], values[hi]);
            values[lo] = std::move(mn);
            values[hi] = std::move(mx);
        }
    }
    return values;
}

bitstream unary_median(const std::vector<bitstream>& values) {
    UHD_REQUIRE(values.size() % 2 == 1, "median needs an odd count");
    auto sorted = unary_sort(values);
    return sorted[sorted.size() / 2];
}

} // namespace uhd::bs
