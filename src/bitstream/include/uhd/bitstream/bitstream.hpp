// Packed bit-stream container — the fundamental datatype of unary bit-stream
// computing (UBC) and of the hypervector representations built on top of it.
//
// Bits are stored LSB-first inside 64-bit words; index 0 is the first bit of
// the stream. The class maintains the invariant that bits beyond size() in
// the last word are zero, so popcount() and comparisons can operate on whole
// words.
#ifndef UHD_BITSTREAM_BITSTREAM_HPP
#define UHD_BITSTREAM_BITSTREAM_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "uhd/common/bits.hpp"

namespace uhd::bs {

/// Fixed-length packed sequence of bits with element-wise logic operations.
class bitstream {
public:
    /// Empty stream (size 0).
    bitstream() = default;

    /// Stream of `length` bits, all set to `fill`.
    explicit bitstream(std::size_t length, bool fill = false);

    /// Build from a vector of bools (index 0 = first bit).
    [[nodiscard]] static bitstream from_bools(const std::vector<bool>& bits);

    /// Build from a string of '0'/'1' characters; throws on other characters.
    [[nodiscard]] static bitstream from_string(std::string_view text);

    /// Number of bits in the stream.
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    /// True when the stream holds no bits.
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    /// Read bit `i`; throws when out of range.
    [[nodiscard]] bool bit(std::size_t i) const;

    /// Write bit `i`; throws when out of range.
    void set_bit(std::size_t i, bool value);

    /// Number of logic-1s in the stream.
    [[nodiscard]] std::size_t popcount() const noexcept;

    /// Stochastic-computing value interpretation: popcount / size in [0, 1].
    /// Throws for empty streams.
    [[nodiscard]] double value() const;

    /// True when every bit is 1 (vacuously true for empty streams).
    [[nodiscard]] bool all() const noexcept;

    /// True when at least one bit is 1.
    [[nodiscard]] bool any() const noexcept;

    /// True when every bit is 0.
    [[nodiscard]] bool none() const noexcept { return !any(); }

    /// Read-only access to the packed words (tail bits beyond size() are 0).
    [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
        return {words_.data(), words_.size()};
    }

    /// Mutable word access for high-throughput kernels. The caller must
    /// preserve the tail-zero invariant; call mask_tail() when unsure.
    [[nodiscard]] std::span<std::uint64_t> mutable_words() noexcept {
        return {words_.data(), words_.size()};
    }

    /// Clear any bits at positions >= size() in the last word.
    void mask_tail() noexcept;

    // Element-wise logic; all binary operators require equal lengths.
    bitstream& operator&=(const bitstream& rhs);
    bitstream& operator|=(const bitstream& rhs);
    bitstream& operator^=(const bitstream& rhs);
    [[nodiscard]] friend bitstream operator&(bitstream lhs, const bitstream& rhs) {
        lhs &= rhs;
        return lhs;
    }
    [[nodiscard]] friend bitstream operator|(bitstream lhs, const bitstream& rhs) {
        lhs |= rhs;
        return lhs;
    }
    [[nodiscard]] friend bitstream operator^(bitstream lhs, const bitstream& rhs) {
        lhs ^= rhs;
        return lhs;
    }
    /// Bit-wise NOT (tail bits remain 0).
    [[nodiscard]] bitstream operator~() const;

    [[nodiscard]] bool operator==(const bitstream& rhs) const noexcept = default;

    /// '0'/'1' rendering, index 0 first.
    [[nodiscard]] std::string to_string() const;

    /// Heap footprint of the packed words.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return words_.capacity() * sizeof(std::uint64_t);
    }

private:
    void check_same_size(const bitstream& rhs) const;

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

/// Number of positions where `a` and `b` differ (Hamming distance).
/// Throws when lengths differ.
[[nodiscard]] std::size_t hamming_distance(const bitstream& a, const bitstream& b);

/// Number of positions where both streams are 1 (overlap count).
[[nodiscard]] std::size_t overlap_count(const bitstream& a, const bitstream& b);

} // namespace uhd::bs

#endif // UHD_BITSTREAM_BITSTREAM_HPP
