// Unary sorting networks (Najafi et al., the paper's reference [16]).
//
// Because AND/OR of equally-aligned thermometer streams compute min/max, a
// compare-and-swap element costs exactly two gates, and any sorting network
// (here: Batcher's odd-even merge network) sorts a set of unary values with
// pure combinational logic. This is the classic UBC showcase the paper
// builds its comparator on, and the median filter below is its standard
// application.
#ifndef UHD_BITSTREAM_SORTING_HPP
#define UHD_BITSTREAM_SORTING_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "uhd/bitstream/unary.hpp"

namespace uhd::bs {

/// One compare-and-swap element: (min, max) via (AND, OR).
[[nodiscard]] std::pair<bitstream, bitstream> compare_swap(const bitstream& a,
                                                           const bitstream& b);

/// A wiring stage: the list of (lo, hi) lane pairs compared in parallel.
using cas_stage = std::vector<std::pair<std::size_t, std::size_t>>;

/// Batcher odd-even merge sorting network for `lanes` inputs (any size;
/// non-powers-of-two are padded internally when counting, not when wiring).
/// Returns the stages in execution order.
[[nodiscard]] std::vector<cas_stage> odd_even_merge_network(std::size_t lanes);

/// Number of compare-and-swap elements in the network for `lanes` inputs.
[[nodiscard]] std::size_t network_size(std::size_t lanes);

/// Depth (number of stages) of the network.
[[nodiscard]] std::size_t network_depth(std::size_t lanes);

/// Sort unary streams ascending by value by running the network.
/// All streams must share length and alignment.
[[nodiscard]] std::vector<bitstream> unary_sort(std::vector<bitstream> values);

/// Median of an odd number of unary streams via the sorting network.
[[nodiscard]] bitstream unary_median(const std::vector<bitstream>& values);

} // namespace uhd::bs

#endif // UHD_BITSTREAM_SORTING_HPP
