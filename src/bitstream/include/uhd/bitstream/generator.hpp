// Bit-stream generators.
//
// * counter_comparator_generator — the conventional unary stream number
//   generator of Fig. 3(b): an M-bit counter swept against the M-bit input
//   value. Cycle-accurate step() interface plus whole-stream convenience.
// * bernoulli_stream — classic stochastic-computing stream: compare the
//   value against a fresh pseudo-random number each cycle.
// * threshold_stream — compare a value in [0, 1] against an arbitrary
//   threshold sequence. With a low-discrepancy (Sobol) threshold sequence
//   this is exactly how uHD generates its level hypervectors, which is the
//   SC <-> HDC analogy at the heart of the paper.
#ifndef UHD_BITSTREAM_GENERATOR_HPP
#define UHD_BITSTREAM_GENERATOR_HPP

#include <cstddef>
#include <cstdint>
#include <span>

#include "uhd/bitstream/bitstream.hpp"
#include "uhd/common/rng.hpp"

namespace uhd::bs {

/// Conventional unary stream generator: M-bit counter + M-bit comparator.
///
/// For an input value v (0 <= v < 2^M) the generator emits 2^M bits where
/// cycle k outputs 1 while k < v — a ones-leading thermometer stream of
/// value v.
class counter_comparator_generator {
public:
    /// `precision_bits` is M; streams have length 2^M.
    explicit counter_comparator_generator(unsigned precision_bits);

    /// M, the counter/comparator width.
    [[nodiscard]] unsigned precision_bits() const noexcept { return precision_bits_; }

    /// Stream length 2^M.
    [[nodiscard]] std::size_t stream_length() const noexcept { return length_; }

    /// Load a new input value and reset the counter; v must be < 2^M... == is
    /// allowed as well so the all-ones stream is representable.
    void load(std::uint64_t value);

    /// Emit the next output bit and advance the counter one cycle.
    bool step();

    /// True once 2^M cycles have elapsed since load().
    [[nodiscard]] bool done() const noexcept { return cycle_ >= length_; }

    /// Convenience: the full stream for `value` (ones-leading thermometer).
    [[nodiscard]] bitstream generate(std::uint64_t value);

private:
    unsigned precision_bits_;
    std::size_t length_;
    std::uint64_t value_ = 0;
    std::size_t cycle_ = 0;
};

/// Pseudo-random (Bernoulli) stochastic stream of `length` bits whose
/// expected value is `probability`.
[[nodiscard]] bitstream bernoulli_stream(double probability, std::size_t length,
                                         xoshiro256ss& rng);

/// Deterministic comparison stream: bit i = (value >= thresholds[i]).
/// This is the uHD level-hypervector generation rule (paper Fig. 2) when
/// `thresholds` is one Sobol dimension of length D.
[[nodiscard]] bitstream threshold_stream(double value, std::span<const double> thresholds);

/// Quantized comparison stream: bit i = (q_value >= q_thresholds[i]) with
/// both sides already quantized to integer levels; mirrors the unary
/// comparator datapath exactly (ties resolve to 1, the ">=" semantics).
[[nodiscard]] bitstream quantized_threshold_stream(std::uint8_t q_value,
                                                   std::span<const std::uint8_t> q_thresholds);

} // namespace uhd::bs

#endif // UHD_BITSTREAM_GENERATOR_HPP
