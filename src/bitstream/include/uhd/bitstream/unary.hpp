// Unary (thermometer) coding and the paper's lightweight unary comparator.
//
// A unary bit-stream of length N represents an integer v in [0, N] by setting
// exactly v bits, all grouped at one end of the stream:
//
//     X1 -> 0 0 0 0 0 1 1   (v = 2, ones trailing)
//     X2 -> 0 0 1 1 1 1 1   (v = 5, ones trailing)
//
// Because two unary streams of the same alignment are maximally correlated,
// bit-wise AND yields the minimum and bit-wise OR the maximum of their
// values — the property the paper's Fig. 4 comparator exploits:
//
//     min  = A AND B                 (bit-wise)
//     tmp  = min OR (NOT B)          (bit-wise; all-1s iff min == B)
//     A>=B = AND-reduce(tmp)         (N-input AND)
#ifndef UHD_BITSTREAM_UNARY_HPP
#define UHD_BITSTREAM_UNARY_HPP

#include <cstddef>
#include <cstdint>

#include "uhd/bitstream/bitstream.hpp"

namespace uhd::bs {

/// Where the logic-1s of a thermometer stream are grouped.
enum class unary_alignment {
    ones_leading,  ///< 1s at the start of the stream: 1110000
    ones_trailing, ///< 1s at the end of the stream:   0000111 (paper's Fig. 4)
};

/// Encode integer `value` (0 <= value <= length) as a thermometer stream.
[[nodiscard]] bitstream unary_encode(std::size_t value, std::size_t length,
                                     unary_alignment align = unary_alignment::ones_trailing);

/// Decode a thermometer stream to its integer value (= popcount).
/// Throws when the stream is not a valid thermometer code for `align`.
[[nodiscard]] std::size_t unary_decode(const bitstream& stream,
                                       unary_alignment align = unary_alignment::ones_trailing);

/// True when `stream` is a valid thermometer code under `align`.
[[nodiscard]] bool is_unary(const bitstream& stream,
                            unary_alignment align = unary_alignment::ones_trailing);

/// Minimum of two equally-aligned unary streams: bit-wise AND.
[[nodiscard]] bitstream unary_min(const bitstream& a, const bitstream& b);

/// Maximum of two equally-aligned unary streams: bit-wise OR.
[[nodiscard]] bitstream unary_max(const bitstream& a, const bitstream& b);

/// The paper's Fig. 4 comparator: true iff value(a) >= value(b).
///
/// Gate-for-gate faithful to the proposed circuit (AND for the minimum, OR
/// against the inverted second operand, N-input AND reduction); both inputs
/// must be thermometer streams with the same length and alignment.
[[nodiscard]] bool unary_compare_geq(const bitstream& a, const bitstream& b);

/// Saturating unary addition: value(out) = min(value(a)+value(b), N).
/// Computed in the unary domain (no binary conversion).
[[nodiscard]] bitstream unary_saturating_add(const bitstream& a, const bitstream& b,
                                             unary_alignment align = unary_alignment::ones_trailing);

/// Absolute difference |value(a) - value(b)| computed as XOR of equally
/// aligned thermometer streams (which is itself a contiguous run of 1s).
[[nodiscard]] std::size_t unary_abs_diff(const bitstream& a, const bitstream& b);

} // namespace uhd::bs

#endif // UHD_BITSTREAM_UNARY_HPP
