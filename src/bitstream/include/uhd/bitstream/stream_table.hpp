// Unary Stream Table (UST) — the paper's Fig. 3(c) associative memory.
//
// uHD operates on short (N = 16) unary streams only, so instead of the
// conventional counter+comparator stream generator, all xi possible streams
// are pre-stored and fetched by their M = log2(xi) bit binary value. This
// class is the software model of that memory; its hardware cost twin lives
// in uhd::hw.
#ifndef UHD_BITSTREAM_STREAM_TABLE_HPP
#define UHD_BITSTREAM_STREAM_TABLE_HPP

#include <cstddef>
#include <vector>

#include "uhd/bitstream/unary.hpp"

namespace uhd::bs {

/// Pre-stored table of all thermometer streams U0 .. U(xi-1) of length N.
class unary_stream_table {
public:
    /// Build a table with `levels` entries of `stream_length`-bit streams.
    /// Entry q is the thermometer code of value q, so `levels - 1` must not
    /// exceed `stream_length`.
    unary_stream_table(std::size_t levels, std::size_t stream_length,
                       unary_alignment align = unary_alignment::ones_trailing);

    /// Number of entries (xi).
    [[nodiscard]] std::size_t levels() const noexcept { return table_.size(); }

    /// Length N of every stored stream.
    [[nodiscard]] std::size_t stream_length() const noexcept { return stream_length_; }

    /// Alignment convention of the stored streams.
    [[nodiscard]] unary_alignment alignment() const noexcept { return align_; }

    /// Fetch stream Uq (the associative-memory lookup); throws when q >= levels.
    [[nodiscard]] const bitstream& fetch(std::size_t q) const;

    /// Reverse lookup: value of a fetched stream (sanity-checked decode).
    [[nodiscard]] std::size_t value_of(const bitstream& stream) const;

    /// Heap footprint of the whole table (Table I memory accounting).
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    std::size_t stream_length_;
    unary_alignment align_;
    std::vector<bitstream> table_;
};

} // namespace uhd::bs

#endif // UHD_BITSTREAM_STREAM_TABLE_HPP
