// Correlation and accuracy metrics for bit-streams.
//
// SCC (stochastic cross-correlation, Alaghi & Hayes) quantifies how
// correlated two bit-streams are: +1 for maximally overlapped (unary streams
// of equal alignment), 0 for independent, -1 for maximally anti-overlapped.
// The unary min/AND trick in the paper's comparator requires SCC = +1, and
// hypervector orthogonality in HDC corresponds to SCC ~ 0 — these metrics
// back the tests and the sequence-quality diagnostics.
#ifndef UHD_BITSTREAM_CORRELATION_HPP
#define UHD_BITSTREAM_CORRELATION_HPP

#include "uhd/bitstream/bitstream.hpp"

namespace uhd::bs {

/// Stochastic cross-correlation of two equal-length streams, in [-1, +1].
/// Returns 0 when either stream is constant (the measure is undefined there).
[[nodiscard]] double scc(const bitstream& a, const bitstream& b);

/// Pearson correlation of the bit sequences (bits as 0/1 samples).
/// Returns 0 when either stream is constant.
[[nodiscard]] double pearson(const bitstream& a, const bitstream& b);

/// Absolute error between the stream value and a reference value in [0, 1].
[[nodiscard]] double value_error(const bitstream& stream, double reference);

/// Normalized agreement of two bipolar streams in [-1, +1]:
/// (matches - mismatches) / length. Equals the cosine similarity of the
/// corresponding +-1 hypervectors.
[[nodiscard]] double bipolar_agreement(const bitstream& a, const bitstream& b);

} // namespace uhd::bs

#endif // UHD_BITSTREAM_CORRELATION_HPP
