#include "uhd/data/idx.hpp"

#include <filesystem>
#include <fstream>

#include "uhd/common/error.hpp"

namespace uhd::data {
namespace {

std::uint32_t read_be32(std::istream& is) {
    unsigned char bytes[4];
    is.read(reinterpret_cast<char*>(bytes), 4);
    UHD_REQUIRE(is.gcount() == 4, "IDX file truncated");
    return (std::uint32_t{bytes[0]} << 24) | (std::uint32_t{bytes[1]} << 16) |
           (std::uint32_t{bytes[2]} << 8) | std::uint32_t{bytes[3]};
}

} // namespace

dataset load_idx(const std::string& images_path, const std::string& labels_path,
                 std::size_t num_classes) {
    std::ifstream images(images_path, std::ios::binary);
    UHD_REQUIRE(images.good(), "cannot open IDX image file: " + images_path);
    std::ifstream labels(labels_path, std::ios::binary);
    UHD_REQUIRE(labels.good(), "cannot open IDX label file: " + labels_path);

    const std::uint32_t image_magic = read_be32(images);
    UHD_REQUIRE(image_magic == 0x00000803u, "bad IDX3 magic in " + images_path);
    const std::uint32_t count = read_be32(images);
    const std::uint32_t rows = read_be32(images);
    const std::uint32_t cols = read_be32(images);

    const std::uint32_t label_magic = read_be32(labels);
    UHD_REQUIRE(label_magic == 0x00000801u, "bad IDX1 magic in " + labels_path);
    const std::uint32_t label_count = read_be32(labels);
    UHD_REQUIRE(count == label_count, "IDX image/label count mismatch");

    dataset out(image_shape{rows, cols, 1}, num_classes);
    std::vector<std::uint8_t> pixel_buffer(static_cast<std::size_t>(rows) * cols);
    for (std::uint32_t i = 0; i < count; ++i) {
        images.read(reinterpret_cast<char*>(pixel_buffer.data()),
                    static_cast<std::streamsize>(pixel_buffer.size()));
        UHD_REQUIRE(images.gcount() == static_cast<std::streamsize>(pixel_buffer.size()),
                    "IDX image data truncated");
        char label_byte = 0;
        labels.read(&label_byte, 1);
        UHD_REQUIRE(labels.gcount() == 1, "IDX label data truncated");
        out.add(pixel_buffer, static_cast<std::size_t>(static_cast<unsigned char>(label_byte)));
    }
    return out;
}

std::optional<std::pair<dataset, dataset>> try_load_mnist(const std::string& directory) {
    namespace fs = std::filesystem;
    const fs::path dir(directory);
    const fs::path train_images = dir / "train-images-idx3-ubyte";
    const fs::path train_labels = dir / "train-labels-idx1-ubyte";
    const fs::path test_images = dir / "t10k-images-idx3-ubyte";
    const fs::path test_labels = dir / "t10k-labels-idx1-ubyte";
    if (!fs::exists(train_images) || !fs::exists(train_labels) ||
        !fs::exists(test_images) || !fs::exists(test_labels)) {
        return std::nullopt;
    }
    return std::make_pair(load_idx(train_images.string(), train_labels.string()),
                          load_idx(test_images.string(), test_labels.string()));
}

} // namespace uhd::data
