#include "uhd/data/metrics.hpp"

#include <iomanip>
#include <sstream>

#include "uhd/common/error.hpp"

namespace uhd::data {

confusion_matrix::confusion_matrix(std::size_t classes)
    : classes_(classes), cells_(classes * classes, 0) {
    UHD_REQUIRE(classes >= 2, "confusion matrix needs at least two classes");
}

void confusion_matrix::record(std::size_t truth, std::size_t predicted) {
    UHD_REQUIRE(truth < classes_ && predicted < classes_, "label out of range");
    ++cells_[truth * classes_ + predicted];
    ++total_;
}

std::size_t confusion_matrix::count(std::size_t truth, std::size_t predicted) const {
    UHD_REQUIRE(truth < classes_ && predicted < classes_, "label out of range");
    return cells_[truth * classes_ + predicted];
}

double confusion_matrix::accuracy() const noexcept {
    if (total_ == 0) return 0.0;
    std::size_t correct = 0;
    for (std::size_t c = 0; c < classes_; ++c) correct += cells_[c * classes_ + c];
    return static_cast<double>(correct) / static_cast<double>(total_);
}

double confusion_matrix::recall(std::size_t truth) const {
    UHD_REQUIRE(truth < classes_, "label out of range");
    std::size_t row_sum = 0;
    for (std::size_t p = 0; p < classes_; ++p) row_sum += cells_[truth * classes_ + p];
    if (row_sum == 0) return 0.0;
    return static_cast<double>(cells_[truth * classes_ + truth]) /
           static_cast<double>(row_sum);
}

double confusion_matrix::precision(std::size_t predicted) const {
    UHD_REQUIRE(predicted < classes_, "label out of range");
    std::size_t col_sum = 0;
    for (std::size_t t = 0; t < classes_; ++t) col_sum += cells_[t * classes_ + predicted];
    if (col_sum == 0) return 0.0;
    return static_cast<double>(cells_[predicted * classes_ + predicted]) /
           static_cast<double>(col_sum);
}

double confusion_matrix::macro_f1() const {
    double sum = 0.0;
    for (std::size_t c = 0; c < classes_; ++c) {
        const double p = precision(c);
        const double r = recall(c);
        sum += (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
    }
    return sum / static_cast<double>(classes_);
}

std::string confusion_matrix::to_string() const {
    std::ostringstream os;
    os << "confusion matrix (rows = truth, cols = predicted):\n";
    for (std::size_t t = 0; t < classes_; ++t) {
        for (std::size_t p = 0; p < classes_; ++p) {
            os << std::setw(6) << cells_[t * classes_ + p];
        }
        os << '\n';
    }
    os << "accuracy: " << std::fixed << std::setprecision(4) << accuracy()
       << "  macro-F1: " << macro_f1() << '\n';
    return os.str();
}

double accuracy_of(std::span<const std::size_t> truth,
                   std::span<const std::size_t> predicted) {
    UHD_REQUIRE(truth.size() == predicted.size(), "prediction count mismatch");
    UHD_REQUIRE(!truth.empty(), "accuracy of empty prediction set");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (truth[i] == predicted[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(truth.size());
}

} // namespace uhd::data
