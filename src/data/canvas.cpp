#include "uhd/data/canvas.hpp"

#include <algorithm>
#include <cmath>

#include "uhd/common/error.hpp"

namespace uhd::data {

canvas::canvas(std::size_t rows, std::size_t cols, float background)
    : rows_(rows), cols_(cols), data_(rows * cols, background) {
    UHD_REQUIRE(rows > 0 && cols > 0, "canvas must be non-empty");
}

float canvas::at(std::size_t r, std::size_t c) const {
    UHD_REQUIRE(r < rows_ && c < cols_, "canvas index out of range");
    return data_[r * cols_ + c];
}

void canvas::set(std::size_t r, std::size_t c, float value) {
    UHD_REQUIRE(r < rows_ && c < cols_, "canvas index out of range");
    data_[r * cols_ + c] = value;
}

void canvas::accumulate(std::size_t r, std::size_t c, float value) {
    UHD_REQUIRE(r < rows_ && c < cols_, "canvas index out of range");
    data_[r * cols_ + c] += value;
}

void canvas::add_disk(double cy, double cx, double radius, float value, double softness) {
    add_ellipse(cy, cx, radius, radius, value, softness);
}

void canvas::add_ellipse(double cy, double cx, double ry, double rx, float value,
                         double softness) {
    const long r0 = static_cast<long>(std::floor(cy - ry - softness));
    const long r1 = static_cast<long>(std::ceil(cy + ry + softness));
    const long c0 = static_cast<long>(std::floor(cx - rx - softness));
    const long c1 = static_cast<long>(std::ceil(cx + rx + softness));
    for (long r = r0; r <= r1; ++r) {
        for (long c = c0; c <= c1; ++c) {
            if (!inside(r, c)) continue;
            const double dy = (static_cast<double>(r) - cy) / std::max(ry, 1e-6);
            const double dx = (static_cast<double>(c) - cx) / std::max(rx, 1e-6);
            const double d = std::sqrt(dy * dy + dx * dx);
            if (d <= 1.0) {
                data_[static_cast<std::size_t>(r) * cols_ + static_cast<std::size_t>(c)] +=
                    value;
            } else if (softness > 0.0) {
                // Fade over `softness` pixels beyond the boundary.
                const double scaled =
                    (d - 1.0) * std::min(ry, rx) / std::max(softness, 1e-6);
                if (scaled < 1.0) {
                    data_[static_cast<std::size_t>(r) * cols_ +
                          static_cast<std::size_t>(c)] +=
                        value * static_cast<float>(1.0 - scaled);
                }
            }
        }
    }
}

void canvas::add_rect(double r0, double c0, double r1, double c1, float value) {
    const long rs = std::max<long>(0, static_cast<long>(std::floor(r0)));
    const long re = std::min<long>(static_cast<long>(rows_), static_cast<long>(std::ceil(r1)));
    const long cs = std::max<long>(0, static_cast<long>(std::floor(c0)));
    const long ce = std::min<long>(static_cast<long>(cols_), static_cast<long>(std::ceil(c1)));
    for (long r = rs; r < re; ++r) {
        for (long c = cs; c < ce; ++c) {
            data_[static_cast<std::size_t>(r) * cols_ + static_cast<std::size_t>(c)] += value;
        }
    }
}

void canvas::add_line(double y0, double x0, double y1, double x1, double thickness,
                      float value) {
    const double dy = y1 - y0;
    const double dx = x1 - x0;
    const double length = std::sqrt(dy * dy + dx * dx);
    const int steps = std::max(2, static_cast<int>(std::ceil(length * 2.0)));
    for (int s = 0; s <= steps; ++s) {
        const double t = static_cast<double>(s) / steps;
        add_disk(y0 + t * dy, x0 + t * dx, thickness * 0.5, value / 2.0F, 0.5);
    }
}

void canvas::add_ring(double cy, double cx, double radius, double thickness, float value) {
    const int steps = std::max(8, static_cast<int>(std::ceil(radius * 8.0)));
    for (int s = 0; s < steps; ++s) {
        const double angle = 2.0 * 3.14159265358979323846 * s / steps;
        add_disk(cy + radius * std::sin(angle), cx + radius * std::cos(angle),
                 thickness * 0.5, value / 3.0F, 0.5);
    }
}

void canvas::add_noise(xoshiro256ss& rng, float amplitude) {
    for (auto& v : data_) {
        v += amplitude * static_cast<float>(rng.next_unit() * 2.0 - 1.0);
    }
}

void canvas::add_speckle(xoshiro256ss& rng, float amplitude) {
    for (auto& v : data_) {
        v *= 1.0F + amplitude * static_cast<float>(rng.next_unit() * 2.0 - 1.0);
    }
}

void canvas::add_value_noise(xoshiro256ss& rng, int octaves, float amplitude) {
    for (int octave = 0; octave < octaves; ++octave) {
        const std::size_t grid = std::size_t{2} << octave; // 2, 4, 8, ...
        const float octave_amplitude = amplitude / static_cast<float>(1 << octave);
        std::vector<float> lattice((grid + 1) * (grid + 1));
        for (auto& v : lattice) v = static_cast<float>(rng.next_unit() * 2.0 - 1.0);
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) {
                const double gr = static_cast<double>(r) / static_cast<double>(rows_ - 1 + 1) *
                                  static_cast<double>(grid);
                const double gc = static_cast<double>(c) / static_cast<double>(cols_ - 1 + 1) *
                                  static_cast<double>(grid);
                const std::size_t r0 = static_cast<std::size_t>(gr);
                const std::size_t c0 = static_cast<std::size_t>(gc);
                const double fr = gr - static_cast<double>(r0);
                const double fc = gc - static_cast<double>(c0);
                const float v00 = lattice[r0 * (grid + 1) + c0];
                const float v01 = lattice[r0 * (grid + 1) + c0 + 1];
                const float v10 = lattice[(r0 + 1) * (grid + 1) + c0];
                const float v11 = lattice[(r0 + 1) * (grid + 1) + c0 + 1];
                const double top = v00 + (v01 - v00) * fc;
                const double bottom = v10 + (v11 - v10) * fc;
                data_[r * cols_ + c] +=
                    octave_amplitude * static_cast<float>(top + (bottom - top) * fr);
            }
        }
    }
}

void canvas::box_blur(int radius) {
    UHD_REQUIRE(radius >= 1, "blur radius must be >= 1");
    const auto pass = [&](bool horizontal) {
        std::vector<float> out(data_.size(), 0.0F);
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) {
                float sum = 0.0F;
                int count = 0;
                for (int k = -radius; k <= radius; ++k) {
                    const long rr = static_cast<long>(r) + (horizontal ? 0 : k);
                    const long cc = static_cast<long>(c) + (horizontal ? k : 0);
                    if (!inside(rr, cc)) continue;
                    sum += data_[static_cast<std::size_t>(rr) * cols_ +
                                 static_cast<std::size_t>(cc)];
                    ++count;
                }
                out[r * cols_ + c] = sum / static_cast<float>(count);
            }
        }
        data_ = std::move(out);
    };
    pass(true);
    pass(false);
}

void canvas::shear_horizontal(double shear) {
    std::vector<float> out(data_.size(), 0.0F);
    const double mid = static_cast<double>(rows_) / 2.0;
    for (std::size_t r = 0; r < rows_; ++r) {
        const long shift = static_cast<long>(std::lround(shear * (static_cast<double>(r) - mid)));
        for (std::size_t c = 0; c < cols_; ++c) {
            const long src = static_cast<long>(c) - shift;
            if (src >= 0 && src < static_cast<long>(cols_)) {
                out[r * cols_ + c] = data_[r * cols_ + static_cast<std::size_t>(src)];
            }
        }
    }
    data_ = std::move(out);
}

void canvas::add_gradient(float top_value, float bottom_value) {
    for (std::size_t r = 0; r < rows_; ++r) {
        const float t = static_cast<float>(r) / static_cast<float>(rows_ - 1);
        const float v = top_value + (bottom_value - top_value) * t;
        for (std::size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] += v;
    }
}

std::vector<std::uint8_t> canvas::to_u8(float gain, float bias) const {
    std::vector<std::uint8_t> out(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) {
        const float v = data_[i] * gain + bias;
        out[i] = static_cast<std::uint8_t>(std::clamp(v, 0.0F, 255.0F));
    }
    return out;
}

} // namespace uhd::data
