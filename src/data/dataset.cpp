#include "uhd/data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"

namespace uhd::data {

dataset::dataset(image_shape shape, std::size_t num_classes)
    : shape_(shape), num_classes_(num_classes) {
    UHD_REQUIRE(shape.rows > 0 && shape.cols > 0, "image shape must be non-empty");
    UHD_REQUIRE(shape.channels == 1 || shape.channels == 3,
                "only 1- or 3-channel images are supported");
    UHD_REQUIRE(num_classes >= 2, "need at least two classes");
}

void dataset::add(std::span<const std::uint8_t> pixels, std::size_t label) {
    UHD_REQUIRE(pixels.size() == shape_.values(), "image size does not match shape");
    UHD_REQUIRE(label < num_classes_, "label out of range");
    values_.insert(values_.end(), pixels.begin(), pixels.end());
    labels_.push_back(static_cast<std::uint16_t>(label));
}

std::span<const std::uint8_t> dataset::image(std::size_t i) const {
    UHD_REQUIRE(i < labels_.size(), "image index out of range");
    return {values_.data() + i * shape_.values(), shape_.values()};
}

std::span<const std::uint8_t> dataset::images(std::size_t begin,
                                              std::size_t count) const {
    UHD_REQUIRE(begin <= labels_.size() && count <= labels_.size() - begin,
                "image range out of bounds");
    return {values_.data() + begin * shape_.values(), count * shape_.values()};
}

std::size_t dataset::label(std::size_t i) const {
    UHD_REQUIRE(i < labels_.size(), "label index out of range");
    return labels_[i];
}

std::vector<std::size_t> dataset::class_counts() const {
    std::vector<std::size_t> counts(num_classes_, 0);
    for (const auto label : labels_) ++counts[label];
    return counts;
}

dataset dataset::to_grayscale() const {
    if (shape_.channels == 1) return *this;
    dataset gray(image_shape{shape_.rows, shape_.cols, 1}, num_classes_);
    std::vector<std::uint8_t> buffer(shape_.pixels());
    for (std::size_t i = 0; i < size(); ++i) {
        const auto rgb = image(i);
        for (std::size_t p = 0; p < shape_.pixels(); ++p) {
            // ITU-R BT.601 luma weights.
            const double y = 0.299 * rgb[3 * p] + 0.587 * rgb[3 * p + 1] +
                             0.114 * rgb[3 * p + 2];
            buffer[p] = static_cast<std::uint8_t>(std::lround(std::min(y, 255.0)));
        }
        gray.add(buffer, labels_[i]);
    }
    return gray;
}

void dataset::shuffle(std::uint64_t seed) {
    std::vector<std::size_t> order(size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    xoshiro256ss rng(seed);
    for (std::size_t i = order.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
        std::swap(order[i - 1], order[j]);
    }
    std::vector<std::uint8_t> new_values(values_.size());
    std::vector<std::uint16_t> new_labels(labels_.size());
    const std::size_t stride = shape_.values();
    for (std::size_t i = 0; i < order.size(); ++i) {
        std::copy_n(values_.data() + order[i] * stride, stride,
                    new_values.data() + i * stride);
        new_labels[i] = labels_[order[i]];
    }
    values_ = std::move(new_values);
    labels_ = std::move(new_labels);
}

std::pair<dataset, dataset> dataset::split(double train_fraction,
                                           std::uint64_t seed) const {
    UHD_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
                "train fraction must be in (0, 1)");
    dataset shuffled = *this;
    shuffled.shuffle(seed);
    const std::size_t train_count =
        static_cast<std::size_t>(std::llround(train_fraction * static_cast<double>(size())));
    dataset train(shape_, num_classes_);
    dataset test(shape_, num_classes_);
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
        if (i < train_count) {
            train.add(shuffled.image(i), shuffled.label(i));
        } else {
            test.add(shuffled.image(i), shuffled.label(i));
        }
    }
    return {std::move(train), std::move(test)};
}

std::size_t dataset::memory_bytes() const noexcept {
    return values_.capacity() * sizeof(std::uint8_t) +
           labels_.capacity() * sizeof(std::uint16_t);
}

} // namespace uhd::data
