// Labeled image dataset container used by both HDC pipelines.
//
// Images are stored as 8-bit intensities (row-major, channel-interleaved for
// multi-channel data), matching the paper's convention of 8-bit grayscale
// pixels (0 <= X <= 255). Multi-channel datasets (CIFAR-10/SVHN analogues)
// are converted to grayscale luminance before encoding, as the encoders
// operate on one intensity per pixel position.
#ifndef UHD_DATA_DATASET_HPP
#define UHD_DATA_DATASET_HPP

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace uhd::data {

/// Image geometry: rows x cols x channels.
struct image_shape {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t channels = 1;

    /// Pixel positions (H in the paper): rows * cols.
    [[nodiscard]] std::size_t pixels() const noexcept { return rows * cols; }

    /// Stored values per image: rows * cols * channels.
    [[nodiscard]] std::size_t values() const noexcept { return rows * cols * channels; }

    [[nodiscard]] bool operator==(const image_shape&) const noexcept = default;
};

/// A labeled set of equally shaped 8-bit images.
class dataset {
public:
    dataset() = default;

    /// Empty dataset for images of `shape` with labels in [0, num_classes).
    dataset(image_shape shape, std::size_t num_classes);

    /// Append one image; `pixels` must have shape.values() entries and
    /// `label` must be < num_classes().
    void add(std::span<const std::uint8_t> pixels, std::size_t label);

    /// Braced-list convenience: span cannot bind an initializer_list
    /// directly until C++26.
    void add(std::initializer_list<std::uint8_t> pixels, std::size_t label) {
        add(std::span<const std::uint8_t>(pixels.begin(), pixels.size()), label);
    }

    [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
    [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
    [[nodiscard]] const image_shape& shape() const noexcept { return shape_; }
    [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }

    /// Raw values of image `i` (length shape().values()).
    [[nodiscard]] std::span<const std::uint8_t> image(std::size_t i) const;

    /// Raw values of images [begin, begin + count) back-to-back (images are
    /// stored in one contiguous buffer, so a mini-batch is a single span —
    /// the zero-copy input of the batch encode/train engines).
    [[nodiscard]] std::span<const std::uint8_t> images(std::size_t begin,
                                                       std::size_t count) const;

    /// Label of image `i`.
    [[nodiscard]] std::size_t label(std::size_t i) const;

    /// Per-class sample counts.
    [[nodiscard]] std::vector<std::size_t> class_counts() const;

    /// Luminance-converted copy (no-op copy when already single-channel).
    [[nodiscard]] dataset to_grayscale() const;

    /// Deterministically shuffle sample order.
    void shuffle(std::uint64_t seed);

    /// Split into (train, test) with `train_fraction` of samples (after an
    /// internal shuffle with `seed`) going to train.
    [[nodiscard]] std::pair<dataset, dataset> split(double train_fraction,
                                                    std::uint64_t seed) const;

    /// Heap footprint (Table I memory accounting).
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    image_shape shape_{};
    std::size_t num_classes_ = 0;
    std::vector<std::uint8_t> values_; // size() * shape_.values(), contiguous
    std::vector<std::uint16_t> labels_;
};

} // namespace uhd::data

#endif // UHD_DATA_DATASET_HPP
