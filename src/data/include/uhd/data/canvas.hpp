// Floating-point raster canvas used by the synthetic dataset generators.
//
// Values accumulate in arbitrary float range and are tone-mapped to 8-bit on
// export. All drawing primitives clip at the canvas border.
#ifndef UHD_DATA_CANVAS_HPP
#define UHD_DATA_CANVAS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "uhd/common/rng.hpp"

namespace uhd::data {

/// Grayscale float raster with simple procedural drawing primitives.
class canvas {
public:
    canvas(std::size_t rows, std::size_t cols, float background = 0.0F);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    [[nodiscard]] float at(std::size_t r, std::size_t c) const;
    void set(std::size_t r, std::size_t c, float value);
    void accumulate(std::size_t r, std::size_t c, float value);

    /// Filled soft-edged disk centered at (cy, cx) with radius `radius`.
    void add_disk(double cy, double cx, double radius, float value, double softness = 1.0);

    /// Filled axis-aligned ellipse with soft edge.
    void add_ellipse(double cy, double cx, double ry, double rx, float value,
                     double softness = 1.0);

    /// Filled rectangle [r0, r1) x [c0, c1).
    void add_rect(double r0, double c0, double r1, double c1, float value);

    /// Thick anti-aliased-ish line from (y0, x0) to (y1, x1).
    void add_line(double y0, double x0, double y1, double x1, double thickness,
                  float value);

    /// Ring (annulus) centered at (cy, cx).
    void add_ring(double cy, double cx, double radius, double thickness, float value);

    /// Additive uniform noise in [-amplitude, +amplitude].
    void add_noise(xoshiro256ss& rng, float amplitude);

    /// Multiplicative speckle: each pixel scaled by (1 + amplitude*(u-0.5)*2).
    void add_speckle(xoshiro256ss& rng, float amplitude);

    /// Smooth multi-octave value noise (cheap 1/f texture).
    void add_value_noise(xoshiro256ss& rng, int octaves, float amplitude);

    /// Separable box blur with integer radius >= 1.
    void box_blur(int radius);

    /// Horizontal shear: row r shifts right by shear * (r - rows/2) pixels.
    void shear_horizontal(double shear);

    /// Vertical top-to-bottom intensity gradient added across the canvas.
    void add_gradient(float top_value, float bottom_value);

    /// Export to 8-bit with gain/bias tone mapping and clamping.
    [[nodiscard]] std::vector<std::uint8_t> to_u8(float gain = 1.0F, float bias = 0.0F) const;

private:
    [[nodiscard]] bool inside(long r, long c) const noexcept {
        return r >= 0 && c >= 0 && r < static_cast<long>(rows_) &&
               c < static_cast<long>(cols_);
    }

    std::size_t rows_;
    std::size_t cols_;
    std::vector<float> data_;
};

} // namespace uhd::data

#endif // UHD_DATA_CANVAS_HPP
