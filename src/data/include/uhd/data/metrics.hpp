// Classification quality metrics for the accuracy tables (Tables IV, V).
#ifndef UHD_DATA_METRICS_HPP
#define UHD_DATA_METRICS_HPP

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace uhd::data {

/// Square confusion matrix over `classes` labels.
class confusion_matrix {
public:
    explicit confusion_matrix(std::size_t classes);

    /// Record one (truth, prediction) pair.
    void record(std::size_t truth, std::size_t predicted);

    [[nodiscard]] std::size_t classes() const noexcept { return classes_; }

    /// Count of samples with true label `truth` predicted as `predicted`.
    [[nodiscard]] std::size_t count(std::size_t truth, std::size_t predicted) const;

    /// Total recorded samples.
    [[nodiscard]] std::size_t total() const noexcept { return total_; }

    /// Overall accuracy in [0, 1]; 0 when no samples recorded.
    [[nodiscard]] double accuracy() const noexcept;

    /// Recall of one class (diagonal / row sum); 0 for empty rows.
    [[nodiscard]] double recall(std::size_t truth) const;

    /// Precision of one class (diagonal / column sum); 0 for empty columns.
    [[nodiscard]] double precision(std::size_t predicted) const;

    /// Macro-averaged F1 score across classes.
    [[nodiscard]] double macro_f1() const;

    /// Multi-line human-readable rendering.
    [[nodiscard]] std::string to_string() const;

private:
    std::size_t classes_;
    std::size_t total_ = 0;
    std::vector<std::size_t> cells_; // row-major truth x predicted
};

/// Accuracy of parallel truth/prediction vectors (must be equally long).
[[nodiscard]] double accuracy_of(std::span<const std::size_t> truth,
                                 std::span<const std::size_t> predicted);

} // namespace uhd::data

#endif // UHD_DATA_METRICS_HPP
