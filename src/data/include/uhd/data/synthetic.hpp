// Synthetic stand-ins for the paper's evaluation datasets.
//
// The evaluation uses MNIST, FashionMNIST, BloodMNIST, BreastMNIST,
// CIFAR-10 and SVHN. None of those can be downloaded in this offline
// environment, so this module generates deterministic procedural datasets
// that match each original's *shape* — image geometry, channel count, class
// count, and a class-conditional visual structure — so that the HDC encoding
// pipelines are exercised on exactly the same code path as with real data
// (8-bit intensities, one value per pixel after luminance conversion).
// See DESIGN.md §4.2 for the substitution rationale. When real MNIST IDX
// files are available, uhd/data/idx.hpp loads them instead.
//
// All generators are pure functions of (count, seed): same inputs, same
// dataset, bit for bit.
#ifndef UHD_DATA_SYNTHETIC_HPP
#define UHD_DATA_SYNTHETIC_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "uhd/data/dataset.hpp"

namespace uhd::data {

/// The six evaluation datasets of the paper (Table IV and Table V).
enum class dataset_kind {
    mnist,         ///< 28x28x1, 10 classes of handwritten-style digits
    fashion_mnist, ///< 28x28x1, 10 clothing silhouette classes
    blood_mnist,   ///< 28x28x3, 8 blood-cell morphology classes
    breast_mnist,  ///< 28x28x1, 2 ultrasound lesion classes
    cifar10,       ///< 32x32x3, 10 natural-scene object classes
    svhn,          ///< 32x32x3, 10 street-view digit classes
};

/// Static description of a dataset kind.
struct dataset_info {
    std::string name;
    image_shape shape;
    std::size_t classes = 0;
};

/// Name/shape/class-count for `kind`.
[[nodiscard]] dataset_info info_for(dataset_kind kind);

/// All dataset kinds in the order Table V lists them (MNIST first).
[[nodiscard]] const std::vector<dataset_kind>& all_dataset_kinds();

/// Generate `count` images of `kind` with balanced classes.
[[nodiscard]] dataset make_synthetic(dataset_kind kind, std::size_t count,
                                     std::uint64_t seed);

// Individual generators (equivalent to make_synthetic with the given kind).
[[nodiscard]] dataset make_synthetic_digits(std::size_t count, std::uint64_t seed);
[[nodiscard]] dataset make_synthetic_fashion(std::size_t count, std::uint64_t seed);
[[nodiscard]] dataset make_synthetic_blood(std::size_t count, std::uint64_t seed);
[[nodiscard]] dataset make_synthetic_breast(std::size_t count, std::uint64_t seed);
[[nodiscard]] dataset make_synthetic_cifar10(std::size_t count, std::uint64_t seed);
[[nodiscard]] dataset make_synthetic_svhn(std::size_t count, std::uint64_t seed);

} // namespace uhd::data

#endif // UHD_DATA_SYNTHETIC_HPP
