// IDX file reader for the original MNIST distribution format.
//
// The synthetic MNIST analogue is the default in this offline environment
// (DESIGN.md §4.2); when the canonical IDX files exist under a directory
// (train-images-idx3-ubyte / train-labels-idx1-ubyte / t10k-...), the bench
// harnesses call try_load_mnist() and use the real data automatically.
#ifndef UHD_DATA_IDX_HPP
#define UHD_DATA_IDX_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

#include "uhd/data/dataset.hpp"

namespace uhd::data {

/// Parse an IDX3 (images) + IDX1 (labels) pair into a dataset.
/// Throws uhd::error on malformed files or count mismatch.
[[nodiscard]] dataset load_idx(const std::string& images_path,
                               const std::string& labels_path,
                               std::size_t num_classes = 10);

/// Load the standard MNIST train/test pairs from `directory` if present.
/// Returns std::nullopt when any of the four files is missing.
[[nodiscard]] std::optional<std::pair<dataset, dataset>> try_load_mnist(
    const std::string& directory);

} // namespace uhd::data

#endif // UHD_DATA_IDX_HPP
