#include "uhd/data/synthetic.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"
#include "uhd/data/canvas.hpp"

namespace uhd::data {
namespace {

// 5x7 bitmap font for digits 0-9 (rows top to bottom, '1' = stroke).
constexpr std::array<std::array<const char*, 7>, 10> digit_font = {{
    {"01110", "10001", "10011", "10101", "11001", "10001", "01110"}, // 0
    {"00100", "01100", "00100", "00100", "00100", "00100", "01110"}, // 1
    {"01110", "10001", "00001", "00010", "00100", "01000", "11111"}, // 2
    {"11111", "00010", "00100", "00010", "00001", "10001", "01110"}, // 3
    {"00010", "00110", "01010", "10010", "11111", "00010", "00010"}, // 4
    {"11111", "10000", "11110", "00001", "00001", "10001", "01110"}, // 5
    {"00110", "01000", "10000", "11110", "10001", "10001", "01110"}, // 6
    {"11111", "00001", "00010", "00100", "01000", "01000", "01000"}, // 7
    {"01110", "10001", "10001", "01110", "10001", "10001", "01110"}, // 8
    {"01110", "10001", "10001", "01111", "00001", "00010", "01100"}, // 9
}};

// Paint one font cell as a soft rectangle so scaled glyphs look hand-drawn
// rather than blocky.
void render_digit(canvas& surface, std::size_t digit, double top, double left,
                  double cell_h, double cell_w, float value) {
    const auto& glyph = digit_font[digit];
    for (std::size_t r = 0; r < 7; ++r) {
        for (std::size_t c = 0; c < 5; ++c) {
            if (glyph[r][c] != '1') continue;
            const double cy = top + (static_cast<double>(r) + 0.5) * cell_h;
            const double cx = left + (static_cast<double>(c) + 0.5) * cell_w;
            surface.add_ellipse(cy, cx, cell_h * 0.62, cell_w * 0.62, value, 0.8);
        }
    }
}

// Per-image RNG: decorrelated across (seed, index) pairs.
xoshiro256ss image_rng(std::uint64_t seed, std::size_t index) {
    return xoshiro256ss(hash64(seed ^ (0xd1b54a32d192ed03ULL * (index + 1))));
}

std::vector<std::uint8_t> interleave_rgb(const canvas& r, const canvas& g,
                                         const canvas& b) {
    const auto ru = r.to_u8();
    const auto gu = g.to_u8();
    const auto bu = b.to_u8();
    std::vector<std::uint8_t> out(ru.size() * 3);
    for (std::size_t i = 0; i < ru.size(); ++i) {
        out[3 * i] = ru[i];
        out[3 * i + 1] = gu[i];
        out[3 * i + 2] = bu[i];
    }
    return out;
}

double jitter(xoshiro256ss& rng, double center, double spread) {
    return center + (rng.next_unit() * 2.0 - 1.0) * spread;
}

// ---------------------------------------------------------------- digits --

std::vector<std::uint8_t> draw_digit_image(std::size_t digit, xoshiro256ss& rng) {
    canvas surface(28, 28, 0.0F);
    const double cell_h = jitter(rng, 2.45, 0.45);
    const double cell_w = jitter(rng, 2.45, 0.45);
    const double top = jitter(rng, 14.0 - 3.5 * cell_h, 1.8);
    const double left = jitter(rng, 14.0 - 2.5 * cell_w, 1.8);
    const float stroke = static_cast<float>(jitter(rng, 215.0, 40.0));
    render_digit(surface, digit, top, left, cell_h, cell_w, stroke);
    surface.shear_horizontal(jitter(rng, 0.0, 0.14));
    surface.box_blur(1);
    surface.add_noise(rng, 14.0F);
    return surface.to_u8();
}

// --------------------------------------------------------------- fashion --

std::vector<std::uint8_t> draw_fashion_image(std::size_t label, xoshiro256ss& rng) {
    canvas s(28, 28, 0.0F);
    const float body = static_cast<float>(jitter(rng, 190.0, 35.0));
    const double cx = jitter(rng, 14.0, 1.2);
    const double cy = jitter(rng, 14.0, 1.2);
    switch (label) {
        case 0: { // T-shirt: torso + short horizontal sleeves
            s.add_rect(cy - 6, cx - 5, cy + 9, cx + 5, body);
            s.add_rect(cy - 6, cx - 10, cy - 2, cx + 10, body);
            break;
        }
        case 1: { // Trouser: two legs + waistband
            s.add_rect(cy - 9, cx - 5, cy - 5, cx + 5, body);
            s.add_rect(cy - 5, cx - 5, cy + 10, cx - 1, body);
            s.add_rect(cy - 5, cx + 1, cy + 10, cx + 5, body);
            break;
        }
        case 2: { // Pullover: torso + long straight sleeves
            s.add_rect(cy - 7, cx - 5, cy + 8, cx + 5, body);
            s.add_rect(cy - 7, cx - 11, cy + 6, cx - 7, body);
            s.add_rect(cy - 7, cx + 7, cy + 6, cx + 11, body);
            break;
        }
        case 3: { // Dress: narrow bodice flaring to a wide hem
            for (int band = 0; band < 8; ++band) {
                const double half = 2.5 + 0.8 * band;
                s.add_rect(cy - 8 + 2.2 * band, cx - half, cy - 8 + 2.2 * (band + 1),
                           cx + half, body);
            }
            break;
        }
        case 4: { // Coat: wide torso, long sleeves, dark front opening
            s.add_rect(cy - 8, cx - 6, cy + 10, cx + 6, body);
            s.add_rect(cy - 8, cx - 11, cy + 8, cx - 7, body);
            s.add_rect(cy - 8, cx + 7, cy + 8, cx + 11, body);
            s.add_rect(cy - 8, cx - 0.7, cy + 10, cx + 0.7, -body * 0.8F);
            break;
        }
        case 5: { // Sandal: sole + diagonal straps
            s.add_rect(cy + 4, cx - 9, cy + 7, cx + 9, body);
            s.add_line(cy + 4, cx - 7, cy - 4, cx + 1, 1.4, body);
            s.add_line(cy + 4, cx - 1, cy - 4, cx + 7, 1.4, body);
            break;
        }
        case 6: { // Shirt: torso + short sleeves + dark collar notch
            s.add_rect(cy - 7, cx - 5, cy + 9, cx + 5, body);
            s.add_rect(cy - 7, cx - 9, cy - 1, cx + 9, body);
            s.add_rect(cy - 7, cx - 1.5, cy - 3, cx + 1.5, -body * 0.7F);
            break;
        }
        case 7: { // Sneaker: low profile + bright sole stripe
            s.add_ellipse(cy + 2, cx, 4.5, 9.0, body, 1.0);
            s.add_rect(cy + 5, cx - 9, cy + 8, cx + 9, body * 1.2F);
            break;
        }
        case 8: { // Bag: body + handle ring
            s.add_rect(cy - 2, cx - 8, cy + 8, cx + 8, body);
            s.add_ring(cy - 5, cx, 4.0, 1.6, body * 1.6F);
            break;
        }
        default: { // Ankle boot: sole + shaft on the left
            s.add_rect(cy + 4, cx - 9, cy + 8, cx + 9, body);
            s.add_rect(cy - 7, cx - 9, cy + 4, cx - 2, body);
            s.add_ellipse(cy + 2, cx + 3, 3.0, 6.0, body * 0.8F, 1.0);
            break;
        }
    }
    s.add_value_noise(rng, 3, 28.0F);
    s.box_blur(1);
    s.add_noise(rng, 10.0F);
    return s.to_u8();
}

// ----------------------------------------------------------------- blood --

std::vector<std::uint8_t> draw_blood_image(std::size_t label, xoshiro256ss& rng) {
    // 8 cell-type classes differing in cell size, nucleus lobe count,
    // nucleus eccentricity, and cytoplasm granularity.
    struct cell_params {
        double cell_radius;
        int lobes;
        double lobe_radius;
        double eccentricity;
        float granularity;
    };
    static constexpr std::array<cell_params, 8> classes = {{
        {9.5, 1, 5.0, 1.0, 4.0F},   // 0: lymphocyte-like (big round nucleus)
        {10.5, 1, 4.0, 1.8, 6.0F},  // 1: monocyte-like (kidney nucleus)
        {10.0, 3, 2.6, 1.0, 22.0F}, // 2: neutrophil-like (3 lobes, granular)
        {10.0, 2, 3.2, 1.0, 30.0F}, // 3: eosinophil-like (2 lobes, coarse)
        {9.0, 2, 2.4, 1.0, 42.0F},  // 4: basophil-like (dense granules)
        {7.0, 1, 2.0, 1.0, 3.0F},   // 5: erythroblast-like (small)
        {5.0, 0, 0.0, 1.0, 2.0F},   // 6: platelet-like (no nucleus, tiny)
        {11.5, 4, 2.2, 1.0, 16.0F}, // 7: immature-granulocyte-like (4 lobes)
    }};
    const auto& p = classes[label];

    canvas r(28, 28, 236.0F);
    canvas g(28, 28, 206.0F);
    canvas b(28, 28, 214.0F);
    // Background red-cell ghosts.
    for (int ghost = 0; ghost < 5; ++ghost) {
        const double gy = rng.next_unit() * 28.0;
        const double gx = rng.next_unit() * 28.0;
        r.add_disk(gy, gx, 3.5, -14.0F, 1.5);
        g.add_disk(gy, gx, 3.5, -26.0F, 1.5);
        b.add_disk(gy, gx, 3.5, -18.0F, 1.5);
    }
    const double cy = jitter(rng, 14.0, 1.5);
    const double cx = jitter(rng, 14.0, 1.5);
    const double cell_radius = jitter(rng, p.cell_radius, 0.9);
    // Cytoplasm: pale violet.
    r.add_disk(cy, cx, cell_radius, -50.0F, 1.5);
    g.add_disk(cy, cx, cell_radius, -36.0F, 1.5);
    b.add_disk(cy, cx, cell_radius, -8.0F, 1.5);
    // Nucleus lobes: dark purple.
    for (int lobe = 0; lobe < p.lobes; ++lobe) {
        const double angle = 2.0 * 3.14159265 * (lobe + rng.next_unit() * 0.3) /
                             std::max(p.lobes, 1);
        const double offset = p.lobes == 1 ? 0.0 : cell_radius * 0.42;
        const double ly = cy + offset * std::sin(angle);
        const double lx = cx + offset * std::cos(angle);
        const double lobe_radius = jitter(rng, p.lobe_radius, 0.35);
        r.add_ellipse(ly, lx, lobe_radius * p.eccentricity, lobe_radius, -150.0F, 1.0);
        g.add_ellipse(ly, lx, lobe_radius * p.eccentricity, lobe_radius, -160.0F, 1.0);
        b.add_ellipse(ly, lx, lobe_radius * p.eccentricity, lobe_radius, -90.0F, 1.0);
    }
    // Granules inside the cytoplasm.
    if (p.granularity > 0.0F) {
        const int grains = static_cast<int>(p.granularity);
        for (int grain = 0; grain < grains; ++grain) {
            const double angle = rng.next_unit() * 2.0 * 3.14159265;
            const double rad = rng.next_unit() * cell_radius * 0.8;
            r.add_disk(cy + rad * std::sin(angle), cx + rad * std::cos(angle), 0.8,
                       -40.0F, 0.4);
            b.add_disk(cy + rad * std::sin(angle), cx + rad * std::cos(angle), 0.8,
                       -25.0F, 0.4);
        }
    }
    r.add_noise(rng, 7.0F);
    g.add_noise(rng, 7.0F);
    b.add_noise(rng, 7.0F);
    return interleave_rgb(r, g, b);
}

// ---------------------------------------------------------------- breast --

std::vector<std::uint8_t> draw_breast_image(std::size_t label, xoshiro256ss& rng) {
    canvas s(28, 28, 118.0F);
    s.add_gradient(18.0F, -22.0F); // near-field brighter, far-field darker
    // Ultrasound speckle.
    s.add_speckle(rng, 0.35F);
    s.add_value_noise(rng, 3, 20.0F);

    const double cy = jitter(rng, 14.5, 2.0);
    const double cx = jitter(rng, 14.0, 2.0);
    if (label == 0) {
        // Benign-like: smooth dark ellipse, wider than tall, crisp margin.
        const double ry = jitter(rng, 3.4, 0.7);
        const double rx = jitter(rng, 5.6, 1.0);
        s.add_ellipse(cy, cx, ry, rx, -95.0F, 1.2);
        s.add_ellipse(cy, cx, ry * 0.65, rx * 0.65, -25.0F, 1.0);
    } else {
        // Malignant-like: irregular lobulated mass with spicules and shadow.
        const double base = jitter(rng, 4.0, 0.8);
        for (int lump = 0; lump < 6; ++lump) {
            const double angle = 2.0 * 3.14159265 * lump / 6.0 + rng.next_unit();
            const double off = base * (0.35 + 0.4 * rng.next_unit());
            s.add_disk(cy + off * std::sin(angle), cx + off * std::cos(angle),
                       base * (0.5 + 0.4 * rng.next_unit()), -70.0F, 1.0);
        }
        for (int spicule = 0; spicule < 5; ++spicule) {
            const double angle = rng.next_unit() * 2.0 * 3.14159265;
            s.add_line(cy, cx, cy + (base + 4.5) * std::sin(angle),
                       cx + (base + 4.5) * std::cos(angle), 0.9, -45.0F);
        }
        // Posterior acoustic shadowing below the mass.
        s.add_rect(cy + base, cx - base, 28, cx + base, -30.0F);
    }
    s.box_blur(1);
    return s.to_u8();
}

// ---------------------------------------------------------------- cifar --

std::vector<std::uint8_t> draw_cifar_image(std::size_t label, xoshiro256ss& rng) {
    canvas r(32, 32, 0.0F);
    canvas g(32, 32, 0.0F);
    canvas b(32, 32, 0.0F);
    const double cy = jitter(rng, 17.0, 2.0);
    const double cx = jitter(rng, 16.0, 2.5);
    auto sky = [&](float rr, float gg, float bb) {
        r.add_gradient(rr + 30.0F, rr - 20.0F);
        g.add_gradient(gg + 30.0F, gg - 20.0F);
        b.add_gradient(bb + 30.0F, bb - 20.0F);
    };
    auto blob = [&](double y, double x, double ry, double rx, float rr, float gg,
                    float bb) {
        r.add_ellipse(y, x, ry, rx, rr, 1.2);
        g.add_ellipse(y, x, ry, rx, gg, 1.2);
        b.add_ellipse(y, x, ry, rx, bb, 1.2);
    };
    auto bar = [&](double r0, double c0, double r1, double c1, float rr, float gg,
                   float bb) {
        r.add_rect(r0, c0, r1, c1, rr);
        g.add_rect(r0, c0, r1, c1, gg);
        b.add_rect(r0, c0, r1, c1, bb);
    };
    switch (label) {
        case 0: // airplane: blue sky, gray fuselage + wings
            sky(120.0F, 160.0F, 225.0F);
            blob(cy, cx, 2.2, 10.0, 150.0F, 150.0F, 160.0F);
            bar(cy - 1, cx - 2, cy + 7, cx + 2, 130.0F, 130.0F, 140.0F);
            break;
        case 1: // automobile: road, colored body, dark wheels
            bar(22, 0, 32, 32, 70.0F, 70.0F, 72.0F);
            bar(cy - 2, cx - 9, cy + 5, cx + 9,
                static_cast<float>(120 + rng.next_below(120)),
                static_cast<float>(40 + rng.next_below(80)),
                static_cast<float>(40 + rng.next_below(80)));
            bar(cy - 6, cx - 5, cy - 2, cx + 5, 120.0F, 150.0F, 170.0F);
            blob(cy + 5, cx - 6, 2.6, 2.6, 25.0F, 25.0F, 28.0F);
            blob(cy + 5, cx + 6, 2.6, 2.6, 25.0F, 25.0F, 28.0F);
            break;
        case 2: // bird: sky, small body + head + beak line
            sky(135.0F, 170.0F, 220.0F);
            blob(cy, cx, 3.4, 5.2, 140.0F, 110.0F, 80.0F);
            blob(cy - 4, cx + 4, 2.0, 2.0, 150.0F, 120.0F, 90.0F);
            r.add_line(cy - 4, cx + 6, cy - 4, cx + 9, 1.0, 190.0F);
            g.add_line(cy - 4, cx + 6, cy - 4, cx + 9, 1.0, 140.0F);
            break;
        case 3: // cat: warm indoor bg, round head with ear triangles
            sky(160.0F, 130.0F, 110.0F);
            blob(cy, cx, 6.5, 6.0, 120.0F, 95.0F, 70.0F);
            r.add_line(cy - 6, cx - 5, cy - 11, cx - 3, 2.2, 120.0F);
            g.add_line(cy - 6, cx - 5, cy - 11, cx - 3, 2.2, 95.0F);
            r.add_line(cy - 6, cx + 5, cy - 11, cx + 3, 2.2, 120.0F);
            g.add_line(cy - 6, cx + 5, cy - 11, cx + 3, 2.2, 95.0F);
            blob(cy - 1, cx - 2.5, 1.0, 1.0, 30.0F, 120.0F, 40.0F);
            blob(cy - 1, cx + 2.5, 1.0, 1.0, 30.0F, 120.0F, 40.0F);
            break;
        case 4: // deer: green field, brown body, thin legs
            sky(110.0F, 160.0F, 90.0F);
            blob(cy - 2, cx, 4.0, 7.0, 130.0F, 90.0F, 50.0F);
            blob(cy - 8, cx + 6, 2.2, 2.0, 135.0F, 95.0F, 55.0F);
            for (int leg = -1; leg <= 1; leg += 2) {
                bar(cy + 2, cx + 4.0 * leg - 0.7, cy + 11, cx + 4.0 * leg + 0.7,
                    110.0F, 75.0F, 40.0F);
            }
            break;
        case 5: // dog: outdoor bg, elongated head + snout + ears
            sky(150.0F, 140.0F, 120.0F);
            blob(cy, cx, 5.0, 6.5, 150.0F, 120.0F, 80.0F);
            blob(cy + 2, cx + 6, 2.6, 3.6, 160.0F, 130.0F, 95.0F);
            blob(cy - 5, cx - 4, 2.8, 1.6, 120.0F, 95.0F, 60.0F);
            break;
        case 6: // frog: dark ground, green blob with eye bumps
            sky(70.0F, 90.0F, 60.0F);
            blob(cy + 2, cx, 4.5, 7.0, 80.0F, 160.0F, 60.0F);
            blob(cy - 3, cx - 4, 1.8, 1.8, 90.0F, 170.0F, 70.0F);
            blob(cy - 3, cx + 4, 1.8, 1.8, 90.0F, 170.0F, 70.0F);
            break;
        case 7: // horse: field, large body, neck, legs
            sky(140.0F, 150.0F, 110.0F);
            blob(cy, cx - 1, 4.5, 8.0, 90.0F, 60.0F, 45.0F);
            r.add_line(cy - 2, cx + 6, cy - 9, cx + 9, 2.6, 95.0F);
            g.add_line(cy - 2, cx + 6, cy - 9, cx + 9, 2.6, 65.0F);
            b.add_line(cy - 2, cx + 6, cy - 9, cx + 9, 2.6, 48.0F);
            for (int leg = 0; leg < 4; ++leg) {
                const double lx = cx - 6 + 4.0 * leg;
                bar(cy + 3, lx - 0.6, cy + 12, lx + 0.6, 85.0F, 58.0F, 42.0F);
            }
            break;
        case 8: // ship: sea + hull + mast
            sky(130.0F, 170.0F, 230.0F);
            bar(20, 0, 32, 32, 40.0F, 90.0F, 160.0F);
            bar(16, cx - 9, 21, cx + 9, 180.0F, 180.0F, 185.0F);
            bar(8, cx - 1, 16, cx + 1, 140.0F, 140.0F, 150.0F);
            break;
        default: // truck: big cargo box + cab + wheels
            bar(22, 0, 32, 32, 75.0F, 75.0F, 78.0F);
            bar(cy - 7, cx - 9, cy + 4, cx + 3,
                static_cast<float>(130 + rng.next_below(100)),
                static_cast<float>(130 + rng.next_below(100)),
                static_cast<float>(130 + rng.next_below(100)));
            bar(cy - 3, cx + 3, cy + 4, cx + 9, 150.0F, 60.0F, 50.0F);
            blob(cy + 5, cx - 5, 2.6, 2.6, 25.0F, 25.0F, 28.0F);
            blob(cy + 5, cx + 5, 2.6, 2.6, 25.0F, 25.0F, 28.0F);
            break;
    }
    r.add_value_noise(rng, 3, 26.0F);
    g.add_value_noise(rng, 3, 26.0F);
    b.add_value_noise(rng, 3, 26.0F);
    r.box_blur(1);
    g.box_blur(1);
    b.box_blur(1);
    return interleave_rgb(r, g, b);
}

// ----------------------------------------------------------------- svhn --

std::vector<std::uint8_t> draw_svhn_image(std::size_t label, xoshiro256ss& rng) {
    // Colored house-facade background with a brighter centered digit and
    // partial distractor digits at the borders (SVHN's cluttered look). The
    // digit is consistently brighter in luminance so the grayscale pipeline
    // sees a stable polarity, mirroring SVHN's dominant light-on-dark crops.
    const float bg_r = static_cast<float>(30 + rng.next_below(110));
    const float bg_g = static_cast<float>(30 + rng.next_below(110));
    const float bg_b = static_cast<float>(30 + rng.next_below(110));
    canvas r(32, 32, bg_r);
    canvas g(32, 32, bg_g);
    canvas b(32, 32, bg_b);
    r.add_gradient(20.0F, -20.0F);
    g.add_gradient(20.0F, -20.0F);
    b.add_gradient(20.0F, -20.0F);

    const float boost = static_cast<float>(80 + rng.next_below(70));
    const float fg_r = std::min(bg_r + boost, 255.0F);
    const float fg_g = std::min(bg_g + boost, 255.0F);
    const float fg_b = std::min(bg_b + boost, 255.0F);
    const double cell_h = jitter(rng, 2.9, 0.5);
    const double cell_w = jitter(rng, 2.7, 0.5);
    const double top = jitter(rng, 16.0 - 3.5 * cell_h, 1.6);
    const double left = jitter(rng, 16.0 - 2.5 * cell_w, 1.6);
    render_digit(r, label, top, left, cell_h, cell_w, fg_r - bg_r);
    render_digit(g, label, top, left, cell_h, cell_w, fg_g - bg_g);
    render_digit(b, label, top, left, cell_h, cell_w, fg_b - bg_b);

    // Distractor digit fragments poking in from the sides.
    const int distractors = 1 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < distractors; ++i) {
        const std::size_t other = rng.next_below(10);
        const double side = rng.next_bool() ? 1.0 : -1.0;
        const double dl = 16.0 + side * jitter(rng, 15.0, 2.0) - 2.5 * cell_w;
        render_digit(r, other, top, dl, cell_h, cell_w, (fg_r - bg_r) * 0.55F);
        render_digit(g, other, top, dl, cell_h, cell_w, (fg_g - bg_g) * 0.55F);
        render_digit(b, other, top, dl, cell_h, cell_w, (fg_b - bg_b) * 0.55F);
    }
    r.box_blur(1);
    g.box_blur(1);
    b.box_blur(1);
    r.add_noise(rng, 12.0F);
    g.add_noise(rng, 12.0F);
    b.add_noise(rng, 12.0F);
    return interleave_rgb(r, g, b);
}

using drawer = std::vector<std::uint8_t> (*)(std::size_t, xoshiro256ss&);

dataset generate(dataset_kind kind, std::size_t count, std::uint64_t seed, drawer draw) {
    const dataset_info info = info_for(kind);
    dataset out(info.shape, info.classes);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t label = i % info.classes; // balanced classes
        auto rng = image_rng(seed, i);
        out.add(draw(label, rng), label);
    }
    // Interleave the classes deterministically so prefixes stay balanced.
    out.shuffle(hash64(seed + 17));
    return out;
}

} // namespace

dataset_info info_for(dataset_kind kind) {
    switch (kind) {
        case dataset_kind::mnist: return {"MNIST", {28, 28, 1}, 10};
        case dataset_kind::fashion_mnist: return {"FashionMNIST", {28, 28, 1}, 10};
        case dataset_kind::blood_mnist: return {"BloodMNIST", {28, 28, 3}, 8};
        case dataset_kind::breast_mnist: return {"BreastMNIST", {28, 28, 1}, 2};
        case dataset_kind::cifar10: return {"CIFAR-10", {32, 32, 3}, 10};
        case dataset_kind::svhn: return {"SVHN", {32, 32, 3}, 10};
    }
    throw uhd::error("unknown dataset kind");
}

const std::vector<dataset_kind>& all_dataset_kinds() {
    static const std::vector<dataset_kind> kinds = {
        dataset_kind::mnist,     dataset_kind::fashion_mnist, dataset_kind::blood_mnist,
        dataset_kind::breast_mnist, dataset_kind::cifar10,    dataset_kind::svhn,
    };
    return kinds;
}

dataset make_synthetic(dataset_kind kind, std::size_t count, std::uint64_t seed) {
    switch (kind) {
        case dataset_kind::mnist:
            return generate(kind, count, seed,
                            [](std::size_t l, xoshiro256ss& r) { return draw_digit_image(l, r); });
        case dataset_kind::fashion_mnist:
            return generate(kind, count, seed, [](std::size_t l, xoshiro256ss& r) {
                return draw_fashion_image(l, r);
            });
        case dataset_kind::blood_mnist:
            return generate(kind, count, seed,
                            [](std::size_t l, xoshiro256ss& r) { return draw_blood_image(l, r); });
        case dataset_kind::breast_mnist:
            return generate(kind, count, seed, [](std::size_t l, xoshiro256ss& r) {
                return draw_breast_image(l, r);
            });
        case dataset_kind::cifar10:
            return generate(kind, count, seed,
                            [](std::size_t l, xoshiro256ss& r) { return draw_cifar_image(l, r); });
        case dataset_kind::svhn:
            return generate(kind, count, seed,
                            [](std::size_t l, xoshiro256ss& r) { return draw_svhn_image(l, r); });
    }
    throw uhd::error("unknown dataset kind");
}

dataset make_synthetic_digits(std::size_t count, std::uint64_t seed) {
    return make_synthetic(dataset_kind::mnist, count, seed);
}
dataset make_synthetic_fashion(std::size_t count, std::uint64_t seed) {
    return make_synthetic(dataset_kind::fashion_mnist, count, seed);
}
dataset make_synthetic_blood(std::size_t count, std::uint64_t seed) {
    return make_synthetic(dataset_kind::blood_mnist, count, seed);
}
dataset make_synthetic_breast(std::size_t count, std::uint64_t seed) {
    return make_synthetic(dataset_kind::breast_mnist, count, seed);
}
dataset make_synthetic_cifar10(std::size_t count, std::uint64_t seed) {
    return make_synthetic(dataset_kind::cifar10, count, seed);
}
dataset make_synthetic_svhn(std::size_t count, std::uint64_t seed) {
    return make_synthetic(dataset_kind::svhn, count, seed);
}

} // namespace uhd::data
