#include "uhd/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace uhd {

void text_table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void text_table::add_row(std::vector<std::string> row) {
    rows_.push_back({std::move(row), /*is_rule=*/false});
}

void text_table::add_rule() { rows_.push_back({{}, /*is_rule=*/true}); }

std::size_t text_table::row_count() const noexcept {
    std::size_t n = 0;
    for (const auto& r : rows_)
        if (!r.is_rule) ++n;
    return n;
}

std::string text_table::to_string() const {
    // Compute column widths across header and all rows.
    std::size_t columns = header_.size();
    for (const auto& r : rows_) columns = std::max(columns, r.cells.size());
    std::vector<std::size_t> width(columns, 0);
    auto widen = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            width[c] = std::max(width[c], cells[c].size());
    };
    widen(header_);
    for (const auto& r : rows_)
        if (!r.is_rule) widen(r.cells);

    auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < columns; ++c) {
            const std::string& cell = c < cells.size() ? cells[c] : std::string{};
            os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
        }
        os << '\n';
    };
    auto emit_rule = [&](std::ostringstream& os) {
        os << '+';
        for (std::size_t c = 0; c < columns; ++c) os << std::string(width[c] + 2, '-') << '+';
        os << '\n';
    };

    std::ostringstream os;
    emit_rule(os);
    if (!header_.empty()) {
        emit_row(os, header_);
        emit_rule(os);
    }
    for (const auto& r : rows_) {
        if (r.is_rule) {
            emit_rule(os);
        } else {
            emit_row(os, r.cells);
        }
    }
    emit_rule(os);
    return os.str();
}

std::string format_fixed(double value, int digits) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

std::string format_sci(double value, int digits) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(digits) << value;
    return os.str();
}

std::string format_ratio(double ratio, int digits) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << ratio << 'x';
    return os.str();
}

} // namespace uhd
