// The AVX-512 backend — the worked instance of the add-a-backend recipe in
// README.md. This translation unit is compiled with per-file -mavx512f
// -mavx512bw (see src/CMakeLists.txt) so a generic build still carries
// these kernels; whether they run is decided by the runtime cpu_features
// probe (AVX-512F + AVX-512BW on the CPU, plus OS ZMM state via the XGETBV
// probe extended to XCR0 bits 5-7).
//
// Hermetic like kernels_avx2.cpp: every helper is a TU-local static in an
// anonymous namespace, no uhd/common/simd.hpp include, scalar tails and the
// fixed 4-lane double accumulation restated locally — a header-inline body
// compiled here under -mavx512* could be COMDAT-selected for the whole
// program and execute AVX-512 code on machines the probe rejected.
//
// Popcount: the XOR-popcount family (Hamming distance, argmin scans, the
// query-block tiles) exists in two flavors, expanded from
// kernels_avx512_family.inc — a VPOPCNTDQ flavor using the native
// _mm512_popcnt_epi64 (compiled in a #pragma GCC target region, so the
// TU's base flags never include it), and an AVX-512BW nibble-LUT +
// sad_epu8 fallback. The flavor is picked once per process from the probe:
// the backend is admissible on any F/BW part, and Ice-Lake-class machines
// get the native popcount without a separate backend.
#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "kernels_detail.hpp"

// GCC 12's unmasked AVX-512 intrinsics (shifts, broadcasts, extracts) are
// defined as masked builtins whose pass-through operand is
// _mm512_undefined_epi32() / _mm256_undefined_si256() — a deliberately
// uninitialized dummy that is fully dead (the write mask is all-ones) but
// still trips -Werror={,maybe-}uninitialized once inlined here, because
// those are middle-end warnings that ignore the system-header location.
// Suppress the two warnings for this TU only; clang's intrinsics don't
// have the dummy operand.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace uhd::kernels::detail {

namespace {

bool supported(const cpu_features& features) { return features.avx512_usable(); }

/// VPOPCNTDQ flavor gate, probed once (cannot change within a process).
bool use_vpopcnt() {
    static const bool value = cpu().avx512vpopcntdq;
    return value;
}

// --- scalar tails (TU-local copies) ---------------------------------------

void geq_tail(std::uint8_t q, const std::uint8_t* thresholds, std::size_t dim,
              std::uint16_t* geq16) {
    for (std::size_t d = 0; d < dim; ++d) {
        geq16[d] = static_cast<std::uint16_t>(geq16[d] + (q >= thresholds[d]));
    }
}

/// argmin2 update (rows fed in ascending order keep the first-wins rule).
void argmin2_update(argmin2_result& r, std::size_t row, std::uint64_t distance) {
    if (distance < r.distance) {
        r.runner_up = r.distance;
        r.distance = distance;
        r.index = row;
    } else if (distance < r.runner_up) {
        r.runner_up = distance;
    }
}

// --- threshold compare-accumulate -----------------------------------------

/// 64 thresholds per step, any byte values: one unsigned byte compare into
/// a __mmask64, then two masked u16 subtracts of -1 (i.e. masked adds of 1)
/// over the two 32-lane accumulator halves.
void geq_accumulate(std::uint8_t q, const std::uint8_t* thresholds, std::size_t dim,
                    std::uint16_t* geq16, std::uint8_t /*max_value*/) {
    const __m512i vq = _mm512_set1_epi8(static_cast<char>(q));
    const __m512i minus_one16 = _mm512_set1_epi16(-1);
    std::size_t d = 0;
    for (; d + 64 <= dim; d += 64) {
        const __m512i x = _mm512_loadu_si512(thresholds + d);
        const __mmask64 geq = _mm512_cmpge_epu8_mask(vq, x);
        __m512i lo = _mm512_loadu_si512(geq16 + d);
        lo = _mm512_mask_sub_epi16(lo, static_cast<__mmask32>(geq), lo, minus_one16);
        _mm512_storeu_si512(geq16 + d, lo);
        __m512i hi = _mm512_loadu_si512(geq16 + d + 32);
        hi = _mm512_mask_sub_epi16(hi, static_cast<__mmask32>(geq >> 32), hi,
                                   minus_one16);
        _mm512_storeu_si512(geq16 + d + 32, hi);
    }
    geq_tail(q, thresholds + d, dim - d, geq16 + d);
}

/// Block kernel: 256-dimension tiles held in four zmm registers of u8
/// counters. Per pixel and 64 dimensions: one load, one compare-to-mask,
/// one masked byte subtract — no accumulator memory traffic until the
/// every-255-pixel flush. Dimension tails fall back to the u16 row kernel.
void geq_block_accumulate(const std::uint8_t* q, std::size_t npix,
                          const std::uint8_t* bank, std::size_t stride,
                          std::size_t dim, std::int32_t* out,
                          std::uint8_t max_value) {
    constexpr std::size_t tile_dims = 256;
    const __m512i minus_one8 = _mm512_set1_epi8(-1);
    const auto flush64 = [](__m512i counters, std::int32_t* dst) {
        alignas(64) std::uint8_t lanes[64];
        _mm512_store_si512(lanes, counters);
        for (int i = 0; i < 64; ++i) dst[i] += lanes[i];
    };
    std::size_t d = 0;
    for (; d + tile_dims <= dim; d += tile_dims) {
        __m512i c0 = _mm512_setzero_si512();
        __m512i c1 = _mm512_setzero_si512();
        __m512i c2 = _mm512_setzero_si512();
        __m512i c3 = _mm512_setzero_si512();
        std::size_t pixels_in_tile = 0;
        const auto flush = [&] {
            flush64(c0, out + d);
            flush64(c1, out + d + 64);
            flush64(c2, out + d + 128);
            flush64(c3, out + d + 192);
            c0 = c1 = c2 = c3 = _mm512_setzero_si512();
            pixels_in_tile = 0;
        };
        for (std::size_t p = 0; p < npix; ++p) {
            const __m512i vq = _mm512_set1_epi8(static_cast<char>(q[p]));
            const std::uint8_t* row = bank + p * stride + d;
            const auto step = [&](const std::uint8_t* src, __m512i counters) {
                const __m512i x = _mm512_loadu_si512(src);
                const __mmask64 geq = _mm512_cmpge_epu8_mask(vq, x);
                return _mm512_mask_sub_epi8(counters, geq, counters, minus_one8);
            };
            c0 = step(row, c0);
            c1 = step(row + 64, c1);
            c2 = step(row + 128, c2);
            c3 = step(row + 192, c3);
            if (++pixels_in_tile == 255) flush();
        }
        if (pixels_in_tile != 0) flush();
    }
    if (d < dim) {
        // Row-kernel fallback over the remaining dimensions with u16
        // counters, flushed before a lane can overflow.
        const std::size_t tail_dim = dim - d;
        std::uint16_t tile16[tile_dims]; // tail_dim < 256
        for (std::size_t i = 0; i < tail_dim; ++i) tile16[i] = 0;
        std::size_t pixels_in_tile = 0;
        const auto flush16 = [&] {
            for (std::size_t i = 0; i < tail_dim; ++i) out[d + i] += tile16[i];
            for (std::size_t i = 0; i < tail_dim; ++i) tile16[i] = 0;
            pixels_in_tile = 0;
        };
        for (std::size_t p = 0; p < npix; ++p) {
            geq_accumulate(q[p], bank + p * stride + d, tail_dim, tile16, max_value);
            if (++pixels_in_tile == 65535) flush16();
        }
        if (pixels_in_tile != 0) flush16();
    }
}

// --- rematerializing encode kernel ----------------------------------------

/// Gray-code 16-blocks as one 16-lane vector: the broadcast base state is
/// XORed with the per-pixel delta table (gray(16m + k) = gray(16m) ^
/// gray(k)), the unsigned compare against the pixel's bound is one
/// cmple_epu32 to a __mmask16, and a masked subtract of -1 adds the
/// comparison results into the int32 out tile. Unaligned head/tail run the
/// serial Gray-code recurrence — pure integer accumulation, bit-identical
/// to the scalar reference. No popcount involved, so no flavor split.
void geq_rematerialize_accumulate(const std::uint32_t* directions,
                                  std::size_t dir_words, const std::uint32_t* shifts,
                                  const std::uint32_t* bounds, std::size_t npix,
                                  std::uint64_t d_begin, std::size_t dim_count,
                                  std::int32_t* out) {
    const __m512i minus_one32 = _mm512_set1_epi32(-1);
    for (std::size_t p = 0; p < npix; ++p) {
        const std::uint32_t* v = directions + p * dir_words;
        std::uint32_t state = shifts[p];
        for (std::uint64_t g = d_begin ^ (d_begin >> 1); g != 0; g &= g - 1) {
            state ^= v[std::countr_zero(g)];
        }
        const std::uint32_t bound = bounds[p];
        std::uint64_t index = d_begin;
        const std::uint64_t end = d_begin + dim_count;
        std::size_t j = 0;
        if (dir_words < 5) {
            // Dimension too small for 16-blocks (delta table and block
            // stepping need v[0..4]); plain serial stepping.
            for (; index < end; ++index, ++j) {
                out[j] += static_cast<std::int32_t>(state <= bound);
                state ^= v[std::countr_zero(index + 1)];
            }
            continue;
        }
        for (; index < end && (index & 15) != 0; ++index, ++j) {
            out[j] += static_cast<std::int32_t>(state <= bound);
            state ^= v[std::countr_zero(index + 1)];
        }
        alignas(64) std::uint32_t delta[16];
        delta[0] = 0;
        for (unsigned k = 1; k < 16; ++k) {
            delta[k] = delta[k - 1] ^ v[std::countr_zero(k)];
        }
        const __m512i dv = _mm512_load_si512(delta);
        const __m512i vb = _mm512_set1_epi32(static_cast<int>(bound));
        for (; index + 16 <= end; index += 16, j += 16) {
            const __m512i x =
                _mm512_xor_si512(_mm512_set1_epi32(static_cast<int>(state)), dv);
            const __mmask16 le = _mm512_cmple_epu32_mask(x, vb);
            const __m512i o = _mm512_loadu_si512(out + j);
            _mm512_storeu_si512(out + j,
                                _mm512_mask_sub_epi32(o, le, o, minus_one32));
            // Block step 16m -> 16(m+1): gray difference bits {3, ctz(m+1)+4}.
            state ^= v[3] ^ v[std::countr_zero((index >> 4) + 1) + 4];
        }
        for (; index < end; ++index, ++j) {
            out[j] += static_cast<std::int32_t>(state <= bound);
            state ^= v[std::countr_zero(index + 1)];
        }
    }
}

// --- sign binarize --------------------------------------------------------

/// Sixteen int32 sign bits per compare-to-mask (AVX-512F — no DQ movepi
/// needed), so one output word is four loads + mask shifts.
void sign_binarize(const std::int32_t* v, std::size_t n, std::uint64_t* words) {
    const __m512i zero = _mm512_setzero_si512();
    std::size_t d = 0;
    std::size_t w = 0;
    for (; d + 64 <= n; d += 64, ++w) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            const __m512i x = _mm512_loadu_si512(v + d + 16 * i);
            const __mmask16 negative = _mm512_cmp_epi32_mask(x, zero, _MM_CMPINT_LT);
            bits |= static_cast<std::uint64_t>(
                        static_cast<std::uint16_t>(negative))
                    << (16 * i);
        }
        words[w] = bits;
    }
    if (d < n) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; d + i < n; ++i) {
            if (v[d + i] < 0) bits |= std::uint64_t{1} << i;
        }
        words[w] = bits;
    }
}

// --- XOR-popcount family (two flavors, runtime-selected) ------------------

/// Horizontal sum of the eight u64 lanes. Not _mm512_reduce_add_epi64: GCC
/// 12 expands that through _mm256_undefined_si256, whose self-initialized
/// dummy trips -Werror=uninitialized/-Wmaybe-uninitialized in UHD_WERROR
/// builds — reduce through extracts so every value is defined.
std::uint64_t reduce_add_u64(__m512i v) {
    const __m256i sum256 = _mm256_add_epi64(_mm512_castsi512_si256(v),
                                            _mm512_extracti64x4_epi64(v, 1));
    const __m128i sum128 = _mm_add_epi64(_mm256_castsi256_si128(sum256),
                                         _mm256_extracti128_si256(sum256, 1));
    const __m128i swapped = _mm_unpackhi_epi64(sum128, sum128);
    return static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm_add_epi64(sum128, swapped)));
}

/// Per-64-lane popcount of a 512-bit vector with the pshufb nibble LUT and
/// sad_epu8 — the AVX-512BW fallback for parts without VPOPCNTDQ.
__m512i popcount512_lut(__m512i x) {
    const __m512i low_nibble = _mm512_set1_epi8(0x0F);
    const __m512i lut = _mm512_broadcast_i32x4(
        _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    const __m512i lo = _mm512_shuffle_epi8(lut, _mm512_and_si512(x, low_nibble));
    const __m512i hi = _mm512_shuffle_epi8(
        lut, _mm512_and_si512(_mm512_srli_epi32(x, 4), low_nibble));
    return _mm512_sad_epu8(_mm512_add_epi8(lo, hi), _mm512_setzero_si512());
}

#define UHD_AVX512_FN(name) name##_lut
#define UHD_AVX512_POPCNT(x) popcount512_lut(x)
#include "kernels_avx512_family.inc"
#undef UHD_AVX512_FN
#undef UHD_AVX512_POPCNT

#pragma GCC push_options
#pragma GCC target("avx512vpopcntdq")
#define UHD_AVX512_FN(name) name##_vpopcnt
#define UHD_AVX512_POPCNT(x) _mm512_popcnt_epi64(x)
#include "kernels_avx512_family.inc"
#undef UHD_AVX512_FN
#undef UHD_AVX512_POPCNT
#pragma GCC pop_options

// Table entries dispatch on the probed flavor. Both flavors compute exact
// integer popcounts, so the choice is invisible to results — only to speed.

std::uint64_t hamming_distance_words(const std::uint64_t* a, const std::uint64_t* b,
                                     std::size_t n) {
    return use_vpopcnt() ? hamming_distance_words_vpopcnt(a, b, n)
                         : hamming_distance_words_lut(a, b, n);
}

std::size_t hamming_argmin(const std::uint64_t* query, const std::uint64_t* rows,
                           std::size_t words, std::size_t n_rows,
                           std::uint64_t* best_distance_out) {
    return use_vpopcnt()
               ? hamming_argmin_vpopcnt(query, rows, words, n_rows, best_distance_out)
               : hamming_argmin_lut(query, rows, words, n_rows, best_distance_out);
}

argmin2_result hamming_argmin2_prefix(const std::uint64_t* query,
                                      const std::uint64_t* rows,
                                      std::size_t row_words, std::size_t prefix_words,
                                      std::size_t n_rows) {
    return use_vpopcnt() ? hamming_argmin2_prefix_vpopcnt(query, rows, row_words,
                                                          prefix_words, n_rows)
                         : hamming_argmin2_prefix_lut(query, rows, row_words,
                                                      prefix_words, n_rows);
}

void hamming_extend_words(const std::uint64_t* query, const std::uint64_t* rows,
                          std::size_t row_words, std::size_t from_word,
                          std::size_t to_word, std::size_t n_rows,
                          std::uint64_t* distances) {
    if (use_vpopcnt()) {
        hamming_extend_words_vpopcnt(query, rows, row_words, from_word, to_word,
                                     n_rows, distances);
    } else {
        hamming_extend_words_lut(query, rows, row_words, from_word, to_word, n_rows,
                                 distances);
    }
}

void hamming_block_extend(const std::uint64_t* queries, std::size_t query_words,
                          std::size_t n_queries, const std::uint64_t* rows,
                          std::size_t row_words, std::size_t from_word,
                          std::size_t to_word, std::size_t n_rows,
                          std::uint64_t* distances) {
    if (use_vpopcnt()) {
        hamming_block_extend_vpopcnt(queries, query_words, n_queries, rows,
                                     row_words, from_word, to_word, n_rows,
                                     distances);
    } else {
        hamming_block_extend_lut(queries, query_words, n_queries, rows, row_words,
                                 from_word, to_word, n_rows, distances);
    }
}

void hamming_block_argmin2_prefix(const std::uint64_t* queries,
                                  std::size_t query_words, std::size_t n_queries,
                                  const std::uint64_t* rows, std::size_t row_words,
                                  std::size_t prefix_words, std::size_t n_rows,
                                  argmin2_result* results) {
    if (use_vpopcnt()) {
        hamming_block_argmin2_prefix_vpopcnt(queries, query_words, n_queries, rows,
                                             row_words, prefix_words, n_rows,
                                             results);
    } else {
        hamming_block_argmin2_prefix_lut(queries, query_words, n_queries, rows,
                                         row_words, prefix_words, n_rows, results);
    }
}

// --- blocked int32 dot kernels --------------------------------------------
//
// Identical fixed 4-lane algorithm as the portable bodies (simd.hpp): the
// lane split pins the FP addition order, so the -mavx512* compilation may
// vectorize the lanes but cannot change the result.

double sum_squares_i32(const std::int32_t* v, std::size_t n) {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t main_n = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main_n; i += 4) {
        for (std::size_t l = 0; l < 4; ++l) {
            const std::int64_t x = v[i + l];
            lanes[l] += static_cast<double>(x * x);
        }
    }
    for (std::size_t i = main_n; i < n; ++i) {
        const std::int64_t x = v[i];
        lanes[i % 4] += static_cast<double>(x * x);
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double dot_i32(const std::int32_t* a, const std::int32_t* b, std::size_t n) {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t main_n = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main_n; i += 4) {
        for (std::size_t l = 0; l < 4; ++l) {
            lanes[l] += static_cast<double>(static_cast<std::int64_t>(a[i + l]) *
                                            static_cast<std::int64_t>(b[i + l]));
        }
    }
    for (std::size_t i = main_n; i < n; ++i) {
        lanes[i % 4] += static_cast<double>(static_cast<std::int64_t>(a[i]) *
                                            static_cast<std::int64_t>(b[i]));
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

std::int64_t masked_sum_i32(const std::uint64_t* mask, const std::int32_t* v,
                            std::size_t n) {
    std::int64_t total = 0;
    const std::size_t full_words = n / 64;
    for (std::size_t wi = 0; wi <= full_words; ++wi) {
        const std::size_t base = wi * 64;
        if (base >= n) break;
        for (std::uint64_t m = mask[wi]; m != 0; m &= m - 1) {
            total += v[base + static_cast<std::size_t>(std::countr_zero(m))];
        }
    }
    return total;
}

constexpr kernel_table table{
    "avx512",          supported,
    geq_accumulate,    geq_block_accumulate,
    geq_rematerialize_accumulate,
    sign_binarize,     hamming_distance_words,
    hamming_argmin,    hamming_argmin2_prefix,
    hamming_extend_words,
    hamming_block_extend,
    hamming_block_argmin2_prefix,
    sum_squares_i32,   dot_i32,
    masked_sum_i32,
};

} // namespace

const kernel_table& avx512_table() noexcept { return table; }

} // namespace uhd::kernels::detail

#else
#error "kernels_avx512.cpp requires -mavx512f -mavx512bw (set per-file by src/CMakeLists.txt)"
#endif // __AVX512F__ && __AVX512BW__
