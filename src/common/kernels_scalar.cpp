// The scalar backend: the pinned byte-at-a-time oracles wired into a
// kernel_table. This is the permanent reference backend — UHD_BACKEND=scalar
// runs the exact code every wider backend is equivalence-tested against, so
// a cross-backend mismatch can always be bisected against it. It is
// admissible everywhere and deliberately slow: the pinned kernels refuse
// auto-vectorization (UHD_SCALAR_REFERENCE) to stay an honest baseline.
#include <cstdint>
#include <vector>

#include "kernels_detail.hpp"
#include "uhd/common/simd.hpp"

namespace uhd::kernels::detail {

namespace {

bool supported(const cpu_features&) { return true; }

void geq_accumulate(std::uint8_t q, const std::uint8_t* thresholds, std::size_t dim,
                    std::uint16_t* geq16, std::uint8_t /*max_value*/) {
    simd::geq_accumulate_reference(q, thresholds, dim, geq16);
}

void geq_block_accumulate(const std::uint8_t* q, std::size_t npix,
                          const std::uint8_t* bank, std::size_t stride,
                          std::size_t dim, std::int32_t* out,
                          std::uint8_t /*max_value*/) {
    // Per-pixel rows through the pinned u16 oracle, flushed before a u16
    // lane can overflow — the same tiling contract as the wide backends.
    std::vector<std::uint16_t> tile(dim, 0);
    std::size_t pixels_in_tile = 0;
    for (std::size_t p = 0; p < npix; ++p) {
        simd::geq_accumulate_reference(q[p], bank + p * stride, dim, tile.data());
        if (++pixels_in_tile == 65535) {
            simd::add_u16_to_i32(tile.data(), dim, out);
            std::fill(tile.begin(), tile.end(), std::uint16_t{0});
            pixels_in_tile = 0;
        }
    }
    if (pixels_in_tile != 0) simd::add_u16_to_i32(tile.data(), dim, out);
}

void geq_rematerialize_accumulate(const std::uint32_t* directions,
                                  std::size_t dir_words, const std::uint32_t* shifts,
                                  const std::uint32_t* bounds, std::size_t npix,
                                  std::uint64_t d_begin, std::size_t dim_count,
                                  std::int32_t* out) {
    simd::geq_rematerialize_accumulate_reference(directions, dir_words, shifts,
                                                 bounds, npix, d_begin, dim_count,
                                                 out);
}

void sign_binarize(const std::int32_t* v, std::size_t n, std::uint64_t* words) {
    simd::sign_binarize_reference(v, n, words);
}

std::uint64_t hamming_distance_words(const std::uint64_t* a, const std::uint64_t* b,
                                     std::size_t n) {
    return simd::xor_popcount_words(a, b, n);
}

std::size_t hamming_argmin(const std::uint64_t* query, const std::uint64_t* rows,
                           std::size_t words, std::size_t n_rows,
                           std::uint64_t* best_distance_out) {
    return simd::hamming_argmin_reference(query, rows, words, n_rows,
                                          best_distance_out);
}

argmin2_result hamming_argmin2_prefix(const std::uint64_t* query,
                                      const std::uint64_t* rows,
                                      std::size_t row_words, std::size_t prefix_words,
                                      std::size_t n_rows) {
    return simd::hamming_argmin2_prefix_reference(query, rows, row_words,
                                                  prefix_words, n_rows);
}

void hamming_extend_words(const std::uint64_t* query, const std::uint64_t* rows,
                          std::size_t row_words, std::size_t from_word,
                          std::size_t to_word, std::size_t n_rows,
                          std::uint64_t* distances) {
    simd::hamming_extend_words_reference(query, rows, row_words, from_word, to_word,
                                         n_rows, distances);
}

void hamming_block_extend(const std::uint64_t* queries, std::size_t query_words,
                          std::size_t n_queries, const std::uint64_t* rows,
                          std::size_t row_words, std::size_t from_word,
                          std::size_t to_word, std::size_t n_rows,
                          std::uint64_t* distances) {
    simd::hamming_block_extend_reference(queries, query_words, n_queries, rows,
                                         row_words, from_word, to_word, n_rows,
                                         distances);
}

void hamming_block_argmin2_prefix(const std::uint64_t* queries,
                                  std::size_t query_words, std::size_t n_queries,
                                  const std::uint64_t* rows, std::size_t row_words,
                                  std::size_t prefix_words, std::size_t n_rows,
                                  argmin2_result* results) {
    simd::hamming_block_argmin2_prefix_reference(queries, query_words, n_queries,
                                                 rows, row_words, prefix_words,
                                                 n_rows, results);
}

double sum_squares_i32(const std::int32_t* v, std::size_t n) {
    return simd::sum_squares_i32(v, n);
}

double dot_i32(const std::int32_t* a, const std::int32_t* b, std::size_t n) {
    return simd::dot_i32(a, b, n);
}

std::int64_t masked_sum_i32(const std::uint64_t* mask, const std::int32_t* v,
                            std::size_t n) {
    return simd::masked_sum_i32(mask, v, n);
}

constexpr kernel_table table{
    "scalar",          supported,
    geq_accumulate,    geq_block_accumulate,
    geq_rematerialize_accumulate,
    sign_binarize,     hamming_distance_words,
    hamming_argmin,    hamming_argmin2_prefix,
    hamming_extend_words,
    hamming_block_extend,
    hamming_block_argmin2_prefix,
    sum_squares_i32,   dot_i32,
    masked_sum_i32,
};

} // namespace

const kernel_table& scalar_table() noexcept { return table; }

} // namespace uhd::kernels::detail
