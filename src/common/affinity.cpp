#include "uhd/common/affinity.hpp"

#include <atomic>
#include <string>
#include <vector>

#include "uhd/common/config.hpp"
#include "uhd/common/error.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace uhd {

namespace {

/// The allowed-CPU list, probed once: index -> CPU id. Empty when the
/// platform has no affinity API (pinning then reports failure).
const std::vector<int>& allowed_cpus() {
    static const std::vector<int> cpus = [] {
        std::vector<int> out;
#if defined(__linux__)
        cpu_set_t set;
        CPU_ZERO(&set);
        if (::sched_getaffinity(0, sizeof(set), &set) == 0) {
            for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
                if (CPU_ISSET(cpu, &set)) out.push_back(cpu);
            }
        }
#endif
        return out;
    }();
    return cpus;
}

std::atomic<std::size_t> next_slot{0};

} // namespace

affinity_mode affinity_from_env() {
    const std::string value = env_string("UHD_AFFINITY", "none");
    if (value == "none" || value.empty()) return affinity_mode::none;
    if (value == "auto") return affinity_mode::automatic;
    throw uhd::error("invalid UHD_AFFINITY value '" + value +
                     "' (valid: auto, none)");
}

affinity_mode resolved_affinity() {
    static const affinity_mode mode = affinity_from_env();
    return mode;
}

std::size_t affinity_cpu_count() noexcept {
    const std::size_t n = allowed_cpus().size();
    return n == 0 ? 1 : n;
}

bool pin_thread_to_slot(std::size_t slot) noexcept {
#if defined(__linux__)
    const std::vector<int>& cpus = allowed_cpus();
    if (cpus.empty()) return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpus[slot % cpus.size()], &set);
    return ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set) == 0;
#else
    (void)slot;
    return false;
#endif
}

bool pin_this_thread() noexcept {
    if (resolved_affinity() != affinity_mode::automatic) return false;
    return pin_thread_to_slot(next_slot.fetch_add(1, std::memory_order_relaxed));
}

} // namespace uhd
