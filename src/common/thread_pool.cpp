#include "uhd/common/thread_pool.hpp"

#include <cstdlib>
#include <exception>

#include "uhd/common/affinity.hpp"

namespace uhd {

thread_pool::thread_pool(std::size_t threads) {
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }
    // Resolve UHD_AFFINITY here so an invalid value throws on the
    // constructing thread; the workers then pin themselves (no-op under
    // the default `none` mode).
    (void)resolved_affinity();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
}

void thread_pool::worker_loop() {
    pin_this_thread(); // UHD_AFFINITY=auto: distinct core per worker
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return; // stop_ set and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t lanes = workers_.size() + 1; // workers plus the caller
    if (lanes == 1 || n == 1) {
        fn(0, n);
        return;
    }
    const std::size_t chunks = n < lanes ? n : lanes;
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;

    // All state the queued chunks touch lives on the caller's stack; the
    // caller cannot leave this function until `remaining` under `done_mutex`
    // reaches zero, which happens-after the last chunk's final access.
    struct state {
        std::size_t remaining;
        std::mutex done_mutex;
        std::condition_variable done;
        std::exception_ptr error;
    } shared_state;
    shared_state.remaining = chunks - 1;

    const auto run_chunk = [&](std::size_t begin, std::size_t end) {
        try {
            fn(begin, end);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(shared_state.done_mutex);
            if (!shared_state.error) shared_state.error = std::current_exception();
        }
    };

    // Chunk c covers [c*base + min(c, extra), ...) — a contiguous partition
    // independent of which worker picks it up.
    std::size_t begin = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t c = 0; c + 1 < chunks; ++c) {
            const std::size_t end = begin + base + (c < extra ? 1 : 0);
            queue_.emplace_back([&run_chunk, &shared_state, begin, end] {
                run_chunk(begin, end);
                const std::lock_guard<std::mutex> done_lock(shared_state.done_mutex);
                if (--shared_state.remaining == 0) shared_state.done.notify_one();
            });
            begin = end;
        }
    }
    wake_.notify_all();

    run_chunk(begin, n); // last chunk on the calling thread

    std::unique_lock<std::mutex> lock(shared_state.done_mutex);
    shared_state.done.wait(lock, [&shared_state] { return shared_state.remaining == 0; });
    if (shared_state.error) std::rethrow_exception(shared_state.error);
}

std::size_t thread_pool::env_threads() noexcept {
    // Parsed directly (not via env_int, which throws on negatives): a value
    // like UHD_THREADS=-1 cast through size_t would request ~2^64 workers.
    // Anything non-positive, unparsable, or absurdly large (including
    // strtoll's LLONG_MAX overflow saturation) clamps to 0 = hardware
    // concurrency rather than asking the pool to spawn it.
    constexpr long long max_reasonable = 4096;
    const char* raw = std::getenv("UHD_THREADS");
    if (raw == nullptr || *raw == '\0') return 0;
    char* end = nullptr;
    const long long value = std::strtoll(raw, &end, 10);
    if (end == raw || value < 0 || value > max_reasonable) return 0;
    return static_cast<std::size_t>(value);
}

thread_pool& thread_pool::shared() {
    static thread_pool pool(env_threads());
    return pool;
}

} // namespace uhd
