// Small bit-manipulation utilities shared by the bit-stream and hardware
// modules. Thin wrappers over <bit> with the word-level helpers the packed
// bit-stream container needs.
#ifndef UHD_COMMON_BITS_HPP
#define UHD_COMMON_BITS_HPP

#include <bit>
#include <cstddef>
#include <cstdint>

namespace uhd {

/// Number of bits in the packed word type used by bit-stream storage.
inline constexpr std::size_t word_bits = 64;

/// Words needed to hold `n` bits.
[[nodiscard]] constexpr std::size_t words_for_bits(std::size_t n) noexcept {
    return (n + word_bits - 1) / word_bits;
}

/// Population count of a 64-bit word.
[[nodiscard]] constexpr int popcount64(std::uint64_t w) noexcept {
    return std::popcount(w);
}

/// Mask with the low `n` bits set (n in [0, 64]).
[[nodiscard]] constexpr std::uint64_t low_mask(std::size_t n) noexcept {
    return n >= word_bits ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// ceil(log2(x)) for x >= 1; number of bits needed to count up to x.
[[nodiscard]] constexpr int ceil_log2(std::uint64_t x) noexcept {
    if (x <= 1) return 0;
    return 64 - std::countl_zero(x - 1);
}

/// Is x a power of two (x > 0)?
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
    return x != 0 && (x & (x - 1)) == 0;
}

/// Reverse the low `nbits` bits of x (used by the van der Corput radical
/// inverse, the basis of every Sobol dimension).
[[nodiscard]] constexpr std::uint64_t reverse_bits(std::uint64_t x, int nbits) noexcept {
    std::uint64_t r = 0;
    for (int i = 0; i < nbits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

} // namespace uhd

#endif // UHD_COMMON_BITS_HPP
