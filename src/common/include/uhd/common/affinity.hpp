// Thread-affinity helper: opt-in pinning of serving threads to distinct
// cores (UHD_AFFINITY=auto), the first step of the NUMA/affinity-aware
// worker-placement direction.
//
// Under `auto`, every thread that routes through pin_this_thread() — wire
// reactors, inference-engine serve workers, thread_pool workers — takes
// the next slot from one process-wide allocator and pins itself to the
// slot-th CPU of the process's allowed set (sched_getaffinity mask, so
// container/cgroup masks are respected). Creation order therefore spreads
// reactors and workers across distinct cores until the set wraps. Under
// `none` (the default) nothing is touched. Pinning is best-effort by
// design: on platforms without pthread affinity, or when the syscall
// fails, threads simply stay unpinned — correctness never depends on
// placement, only the scaling numbers do.
#ifndef UHD_COMMON_AFFINITY_HPP
#define UHD_COMMON_AFFINITY_HPP

#include <cstddef>

namespace uhd {

/// Placement policy for serving threads.
enum class affinity_mode {
    none,      ///< leave scheduling to the OS (default)
    automatic, ///< pin each registered thread to the next distinct core
};

/// Parse UHD_AFFINITY (`auto` | `none`, default `none`). Throws uhd::error
/// on any other value — never a silent fallback, same contract as
/// UHD_BACKEND. Parsed fresh on every call; prefer resolved_affinity() on
/// hot paths.
[[nodiscard]] affinity_mode affinity_from_env();

/// The process-wide affinity mode, parsed from UHD_AFFINITY exactly once.
/// Call it from a constructor before spawning threads so an invalid value
/// throws on the constructing thread, not inside a worker.
[[nodiscard]] affinity_mode resolved_affinity();

/// CPUs the process may run on (affinity-mask aware, so cgroup-restricted
/// containers report their real allowance); always >= 1.
[[nodiscard]] std::size_t affinity_cpu_count() noexcept;

/// Pin the calling thread to the slot-th allowed CPU (modulo the allowed
/// set). Returns false when pinning is unsupported on this platform or
/// the syscall fails.
bool pin_thread_to_slot(std::size_t slot) noexcept;

/// The registration point for serving threads: under affinity_mode::none
/// this is a no-op returning false; under automatic it draws the next
/// slot from the process-wide allocator and pins the calling thread to
/// that core, returning whether the pin stuck.
bool pin_this_thread() noexcept;

} // namespace uhd

#endif // UHD_COMMON_AFFINITY_HPP
