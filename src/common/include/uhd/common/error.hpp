// Error handling: a single exception type for precondition and runtime
// failures, plus UHD_REQUIRE for validating public-API arguments.
//
// Following the C++ Core Guidelines (E.2, I.5): interfaces state and check
// preconditions; violations throw rather than proceed with garbage.
#ifndef UHD_COMMON_ERROR_HPP
#define UHD_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace uhd {

/// Exception thrown on precondition violations and invalid configurations.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void throw_requirement_failure(const char* expr, const char* file,
                                                   int line, const std::string& msg) {
    std::ostringstream os;
    os << "requirement failed: (" << expr << ") at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw uhd::error(os.str());
}

} // namespace detail
} // namespace uhd

/// Validate a public-API precondition; throws uhd::error when violated.
#define UHD_REQUIRE(expr, msg)                                                        \
    do {                                                                              \
        if (!(expr)) {                                                                \
            ::uhd::detail::throw_requirement_failure(#expr, __FILE__, __LINE__, msg); \
        }                                                                             \
    } while (false)

#endif // UHD_COMMON_ERROR_HPP
