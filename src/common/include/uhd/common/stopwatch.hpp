// Wall-clock stopwatch for the Table I runtime measurements.
#ifndef UHD_COMMON_STOPWATCH_HPP
#define UHD_COMMON_STOPWATCH_HPP

#include <chrono>

namespace uhd {

/// Monotonic wall-clock stopwatch.
class stopwatch {
public:
    stopwatch() : start_(clock::now()) {}

    /// Restart timing from now.
    void reset() { start_ = clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or the last reset().
    [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

    /// Microseconds elapsed since construction or the last reset().
    [[nodiscard]] double microseconds() const { return seconds() * 1e6; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace uhd

#endif // UHD_COMMON_STOPWATCH_HPP
