// Portable kernel bodies and pinned scalar oracles for the uhd::kernels
// backend registry (uhd/common/kernels.hpp — the runtime dispatch layer
// every hot path routes through).
//
// This header carries only code that is legal on any build target:
//
//  1. the pinned byte-at-a-time *references* (UHD_SCALAR_REFERENCE): the
//     oracles the word-parallel backends are tested and benchmarked
//     against, kept genuinely scalar even under -O3 auto-vectorization;
//  2. the portable scalar helpers (vector-width tails, tile flushes);
//  3. the SWAR/u64 kernels — 64-bit word-parallel implementations with no
//     ISA requirement beyond a 64-bit integer unit;
//  4. word-at-a-time popcount reductions and the packed-row scan loops
//     built on them.
//
// ISA-specific kernel bodies live in per-backend translation units
// (src/common/kernels_scalar.cpp, kernels_swar.cpp, kernels_avx2.cpp); the
// AVX2 unit is self-contained and compiled with a per-file -mavx2, so this
// header must never grow an #ifdef __AVX2__ block again — that would
// reintroduce the compile-time dispatch (and the ODR hazard) the registry
// exists to remove.
//
// Call sites use uhd::kernels; including this header directly is for
// backend TUs, tests, and benchmarks that need a *specific* implementation
// rather than the dispatched one.
#ifndef UHD_COMMON_SIMD_HPP
#define UHD_COMMON_SIMD_HPP

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "uhd/common/kernels.hpp"

// Marker for reference kernels that must stay byte-at-a-time scalar code:
// they are the oracle the word-parallel kernels are measured against, so
// letting the compiler auto-vectorize them would silently turn the
// baseline into another SIMD implementation.
#if defined(__clang__)
#define UHD_SCALAR_REFERENCE __attribute__((noinline))
#define UHD_NOVECTOR_LOOP _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define UHD_SCALAR_REFERENCE \
    __attribute__((noinline, optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#define UHD_NOVECTOR_LOOP
#else
#define UHD_SCALAR_REFERENCE
#define UHD_NOVECTOR_LOOP
#endif

namespace uhd::simd {

using kernels::argmin2_result;
using kernels::argmin2_u64;
using kernels::sign_words;

/// Every byte of the word set to `b`.
[[nodiscard]] constexpr std::uint64_t splat8(std::uint8_t b) noexcept {
    return 0x0101010101010101ULL * b;
}

/// Highest threshold value the SWAR kernel accepts (both q and thresholds).
inline constexpr std::uint8_t swar_max_value = 127;

/// Per-byte mask (0x80 set) of bytes where q >= x, for bytes <= 127.
///
/// With H = 0x80 splatted, (q|H) - x stays within each byte (no borrow can
/// cross a byte boundary because q|H >= 0x80 and x <= 0x7F), and the high
/// bit of each byte survives exactly when q >= x.
[[nodiscard]] constexpr std::uint64_t geq_mask_swar(std::uint64_t q_splat,
                                                   std::uint64_t x) noexcept {
    constexpr std::uint64_t high = 0x8080808080808080ULL;
    return ((q_splat | high) - x) & high;
}

/// Scalar kernel: geq16[d] += (q >= thresholds[d]) for d in [0, dim).
/// Used for vector-width tails and as the portable fallback; the compiler
/// may auto-vectorize it.
inline void geq_accumulate_scalar(std::uint8_t q, const std::uint8_t* thresholds,
                                  std::size_t dim, std::uint16_t* geq16) noexcept {
    for (std::size_t d = 0; d < dim; ++d) {
        geq16[d] = static_cast<std::uint16_t>(geq16[d] + (q >= thresholds[d]));
    }
}

/// True byte-at-a-time oracle: same contract as geq_accumulate_scalar but
/// pinned to scalar code (see UHD_SCALAR_REFERENCE) so speedup numbers are
/// measured against a genuinely scalar baseline.
UHD_SCALAR_REFERENCE inline void geq_accumulate_reference(
    std::uint8_t q, const std::uint8_t* thresholds, std::size_t dim,
    std::uint16_t* geq16) noexcept {
    UHD_NOVECTOR_LOOP
    for (std::size_t d = 0; d < dim; ++d) {
        geq16[d] = static_cast<std::uint16_t>(geq16[d] + (q >= thresholds[d]));
    }
}

/// SWAR kernel: 8 thresholds per 64-bit step. Preconditions: q <= 127 and
/// every threshold <= 127 (guaranteed when quant_levels <= 128).
inline void geq_accumulate_swar(std::uint8_t q, const std::uint8_t* thresholds,
                                std::size_t dim, std::uint16_t* geq16) noexcept {
    const std::uint64_t q_splat = splat8(q);
    std::size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        std::uint64_t x;
        __builtin_memcpy(&x, thresholds + d, 8);
        // 0/1 per byte of the comparison result.
        const std::uint64_t ones = geq_mask_swar(q_splat, x) >> 7;
        // Spread the eight 0/1 bytes into two words of four u16 lanes each
        // and add them into the accumulator tile; lane adds cannot carry
        // into a neighbour because each lane grows by at most 1 per call
        // and the caller flushes before 65535 pixels.
        const std::uint64_t lo = ((ones & 0x00000000000000FFULL)) |
                                 ((ones & 0x000000000000FF00ULL) << 8) |
                                 ((ones & 0x0000000000FF0000ULL) << 16) |
                                 ((ones & 0x00000000FF000000ULL) << 24);
        const std::uint64_t hi_bytes = ones >> 32;
        const std::uint64_t hi = ((hi_bytes & 0x00000000000000FFULL)) |
                                 ((hi_bytes & 0x000000000000FF00ULL) << 8) |
                                 ((hi_bytes & 0x0000000000FF0000ULL) << 16) |
                                 ((hi_bytes & 0x00000000FF000000ULL) << 24);
        std::uint64_t acc_lo;
        std::uint64_t acc_hi;
        __builtin_memcpy(&acc_lo, geq16 + d, 8);
        __builtin_memcpy(&acc_hi, geq16 + d + 4, 8);
        acc_lo += lo;
        acc_hi += hi;
        __builtin_memcpy(geq16 + d, &acc_lo, 8);
        __builtin_memcpy(geq16 + d + 4, &acc_hi, 8);
    }
    geq_accumulate_scalar(q, thresholds + d, dim - d, geq16 + d);
}

/// Flush a u16 tile into the int32 accumulator: out[d] += geq16[d].
inline void add_u16_to_i32(const std::uint16_t* geq16, std::size_t dim,
                           std::int32_t* out) noexcept {
    for (std::size_t d = 0; d < dim; ++d) out[d] += geq16[d];
}

// --- whole-image block kernels --------------------------------------------
//
// out[d] += sum_{p in [0, npix)} (q[p] >= bank[p * stride + d]) — the full
// encode inner double-loop in one call. The wide implementations tile the
// dimension axis so the per-dimension counters live in registers as u8
// lanes, flushed into the int32 output at least every 255 pixels.

/// Portable fallback for the block kernel: per-pixel rows through the u16
/// kernel, flushed before a u16 lane can overflow.
inline void geq_block_accumulate_scalar(const std::uint8_t* q, std::size_t npix,
                                        const std::uint8_t* bank, std::size_t stride,
                                        std::size_t dim, std::int32_t* out) {
    std::vector<std::uint16_t> tile(dim, 0);
    std::size_t pixels_in_tile = 0;
    for (std::size_t p = 0; p < npix; ++p) {
        geq_accumulate_scalar(q[p], bank + p * stride, dim, tile.data());
        if (++pixels_in_tile == 65535) {
            add_u16_to_i32(tile.data(), dim, out);
            std::fill(tile.begin(), tile.end(), std::uint16_t{0});
            pixels_in_tile = 0;
        }
    }
    if (pixels_in_tile != 0) add_u16_to_i32(tile.data(), dim, out);
}

/// SWAR block kernel: 8-dimension tiles with eight u8 counters packed in
/// one u64, flushed every 255 pixels. Preconditions as geq_accumulate_swar
/// (all values <= 127).
inline void geq_block_accumulate_swar(const std::uint8_t* q, std::size_t npix,
                                      const std::uint8_t* bank, std::size_t stride,
                                      std::size_t dim, std::int32_t* out) {
    constexpr std::uint64_t low_bits = 0x0101010101010101ULL;
    std::size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        std::uint64_t counters = 0;
        std::size_t pixels_in_tile = 0;
        const auto flush = [&] {
            for (int lane = 0; lane < 8; ++lane) {
                out[d + static_cast<std::size_t>(lane)] +=
                    static_cast<std::int32_t>((counters >> (8 * lane)) & 0xFF);
            }
            counters = 0;
            pixels_in_tile = 0;
        };
        for (std::size_t p = 0; p < npix; ++p) {
            std::uint64_t x;
            __builtin_memcpy(&x, bank + p * stride + d, 8);
            counters += (geq_mask_swar(splat8(q[p]), x) >> 7) & low_bits;
            if (++pixels_in_tile == 255) flush();
        }
        if (pixels_in_tile != 0) flush();
    }
    if (d < dim) {
        geq_block_accumulate_scalar(q, npix, bank + d, stride, dim - d, out + d);
    }
}

// --- rematerializing encode kernels ---------------------------------------
//
// out[j] += sum_{p} ((sobol_fraction_p(d_begin + j) ^ shifts[p]) <=
// bounds[p]) — the geq accumulation with the stored bank replaced by
// on-the-fly Sobol regeneration. Pixel p's direction numbers are the
// `dir_words` u32 words at directions[p * dir_words]; the caller guarantees
// dir_words >= bit_width(d_begin + dim_count), which covers every
// countr_zero index the Gray-code stepping can produce (the encoder passes
// bit_width(dim)). The comparison against the quantized intensity is folded
// into `bounds` (largest raw fraction the pixel's intensity still reaches)
// and the scramble into `shifts`, so the stored-bank byte compare becomes
// one u32 unsigned compare — bit-identical to geq_block_accumulate on the
// materialized bank for every tile split of [0, dim).
//
// The blocked implementations exploit gray(16m + k) = gray(16m) ^ gray(k):
// a 16-entry per-pixel delta table turns the serial Gray-code recurrence
// into 16 independent XOR+compare lanes per block, with one table step
// (base ^= v[countr_zero(m + 1) + 4]) between blocks.

/// Pinned scalar oracle: serial Gray-code stepping, one compare per
/// (pixel, dim). The baseline the blocked/wide kernels are tested against.
UHD_SCALAR_REFERENCE inline void geq_rematerialize_accumulate_reference(
    const std::uint32_t* directions, std::size_t dir_words,
    const std::uint32_t* shifts, const std::uint32_t* bounds, std::size_t npix,
    std::uint64_t d_begin, std::size_t dim_count, std::int32_t* out) noexcept {
    for (std::size_t p = 0; p < npix; ++p) {
        const std::uint32_t* v = directions + p * dir_words;
        // Seek to the tile start via the Gray-code closed form, scramble
        // key folded in so the inner compare needs no XOR.
        std::uint32_t state = shifts[p];
        for (std::uint64_t g = d_begin ^ (d_begin >> 1); g != 0; g &= g - 1) {
            state ^= v[std::countr_zero(g)];
        }
        const std::uint32_t bound = bounds[p];
        std::uint64_t index = d_begin;
        UHD_NOVECTOR_LOOP
        for (std::size_t j = 0; j < dim_count; ++j) {
            out[j] += static_cast<std::int32_t>(state <= bound);
            state ^= v[std::countr_zero(index + 1)];
            ++index;
        }
    }
}

/// Build the 16-entry Gray-code delta table over v[0..3]:
/// delta[k] = XOR of v[i] over the set bits of gray(k).
inline void remat_delta_table(const std::uint32_t* v,
                              std::uint32_t delta[16]) noexcept {
    delta[0] = 0;
    for (unsigned k = 1; k < 16; ++k) {
        delta[k] = delta[k - 1] ^ v[std::countr_zero(k)];
    }
}

/// Portable blocked kernel: 16-dimension blocks through the delta table
/// (the compiler is free to vectorize the 16 independent lanes), scalar
/// stepping for the unaligned head/tail. Bit-identical to the reference.
inline void geq_rematerialize_accumulate_portable(
    const std::uint32_t* directions, std::size_t dir_words,
    const std::uint32_t* shifts, const std::uint32_t* bounds, std::size_t npix,
    std::uint64_t d_begin, std::size_t dim_count, std::int32_t* out) noexcept {
    for (std::size_t p = 0; p < npix; ++p) {
        const std::uint32_t* v = directions + p * dir_words;
        std::uint32_t state = shifts[p];
        for (std::uint64_t g = d_begin ^ (d_begin >> 1); g != 0; g &= g - 1) {
            state ^= v[std::countr_zero(g)];
        }
        const std::uint32_t bound = bounds[p];
        std::uint64_t index = d_begin;
        const std::uint64_t end = d_begin + dim_count;
        std::size_t j = 0;
        if (dir_words < 5) {
            // Dimension too small for 16-blocks (delta table and block
            // stepping need v[0..4]); plain serial stepping.
            for (; index < end; ++index, ++j) {
                out[j] += static_cast<std::int32_t>(state <= bound);
                state ^= v[std::countr_zero(index + 1)];
            }
            continue;
        }
        for (; index < end && (index & 15) != 0; ++index, ++j) {
            out[j] += static_cast<std::int32_t>(state <= bound);
            state ^= v[std::countr_zero(index + 1)];
        }
        std::uint32_t delta[16];
        remat_delta_table(v, delta);
        for (; index + 16 <= end; index += 16, j += 16) {
            for (unsigned k = 0; k < 16; ++k) {
                out[j + k] += static_cast<std::int32_t>((state ^ delta[k]) <= bound);
            }
            // Block step 16m -> 16(m+1): gray(16m) ^ gray(16m + 16) has
            // exactly bits {3, countr_zero(m + 1) + 4} set.
            state ^= v[3] ^ v[std::countr_zero((index >> 4) + 1) + 4];
        }
        for (; index < end; ++index, ++j) {
            out[j] += static_cast<std::int32_t>(state <= bound);
            state ^= v[std::countr_zero(index + 1)];
        }
    }
}

// --- sign-binarize kernels ------------------------------------------------
//
// Pack the sign bits of an int32 accumulator span into 64-bit words under
// the hypervector convention (bit 1 = -1): bit d is set exactly when
// v[d] < 0, so >= 0 maps to +1 — the same tie rule as accumulator::sign()
// and the hardware's popcount >= TOB binarizer. The output holds
// ceil(n / 64) words and every kernel zeroes the tail bits beyond n, so the
// result satisfies the bitstream tail invariant as-is.

/// True byte-at-a-time oracle for sign binarization (pinned scalar; the
/// baseline the word-parallel kernels are tested and benchmarked against).
UHD_SCALAR_REFERENCE inline void sign_binarize_reference(
    const std::int32_t* v, std::size_t n, std::uint64_t* words) noexcept {
    for (std::size_t w = 0; w < sign_words(n); ++w) words[w] = 0;
    UHD_NOVECTOR_LOOP
    for (std::size_t d = 0; d < n; ++d) {
        if (v[d] < 0) words[d / 64] |= std::uint64_t{1} << (d % 64);
    }
}

/// SWAR kernel: two int32 values per u64 load — bits 31 and 63 of the load
/// are exactly the two sign bits on little-endian, so one full output word
/// costs 32 loads and a handful of shifts. Big-endian builds (where the
/// pair order inside the load is swapped) take a plain per-element loop
/// the compiler is free to vectorize.
inline void sign_binarize_swar(const std::int32_t* v, std::size_t n,
                               std::uint64_t* words) noexcept {
    if constexpr (std::endian::native != std::endian::little) {
        for (std::size_t w = 0; w < sign_words(n); ++w) words[w] = 0;
        for (std::size_t d = 0; d < n; ++d) {
            if (v[d] < 0) words[d / 64] |= std::uint64_t{1} << (d % 64);
        }
        return;
    }
    std::size_t d = 0;
    std::size_t w = 0;
    for (; d + 64 <= n; d += 64, ++w) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; i < 32; ++i) {
            std::uint64_t pair;
            __builtin_memcpy(&pair, v + d + 2 * i, 8);
            bits |= ((pair >> 31) & 1u) << (2 * i);
            bits |= (pair >> 63) << (2 * i + 1);
        }
        words[w] = bits;
    }
    if (d < n) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; d + i < n; ++i) {
            if (v[d + i] < 0) bits |= std::uint64_t{1} << i;
        }
        words[w] = bits;
    }
}

// The plain popcount_words / and_popcount_words reductions that used to
// live here are gone: the bitstream layer carries its own word-level
// popcounts and every other call site consumes the read state through the
// uhd::kernels registry, so only the XOR reduction (the Hamming kernel
// the packed-row scans are built on) still has consumers.

/// popcount(a XOR b) over `n` packed words (Hamming distance kernel).
[[nodiscard]] inline std::uint64_t xor_popcount_words(const std::uint64_t* a,
                                                      const std::uint64_t* b,
                                                      std::size_t n) noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] ^ b[i]);
    return total;
}

// --- Hamming-argmin over a packed associative memory ----------------------
//
// `rows` holds `n_rows` binarized class vectors back-to-back, `words` u64
// words each. The query uses the same packing. Ties resolve to the lowest
// row index (strict <), which is exactly the first-wins rule of the
// per-class cosine scan it replaces: cosine = (D - 2 * hamming) / D is
// strictly decreasing in the distance, so argmax-cosine with strict >
// equals argmin-distance with strict <.

/// Pinned scalar oracle: per-row distance via a plain popcount loop.
UHD_SCALAR_REFERENCE inline std::size_t hamming_argmin_reference(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t words,
    std::size_t n_rows, std::uint64_t* best_distance_out = nullptr) noexcept {
    std::size_t best = 0;
    std::uint64_t best_distance = ~std::uint64_t{0};
    for (std::size_t r = 0; r < n_rows; ++r) {
        std::uint64_t distance = 0;
        UHD_NOVECTOR_LOOP
        for (std::size_t w = 0; w < words; ++w) {
            distance += static_cast<std::uint64_t>(
                std::popcount(query[w] ^ rows[r * words + w]));
        }
        if (distance < best_distance) {
            best_distance = distance;
            best = r;
        }
    }
    if (best_distance_out != nullptr) *best_distance_out = best_distance;
    return best;
}

/// Portable word-parallel Hamming-argmin: one pass over the row-major
/// memory, each row reduced with xor_popcount_words.
[[nodiscard]] inline std::size_t hamming_argmin_words(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t words,
    std::size_t n_rows, std::uint64_t* best_distance_out = nullptr) noexcept {
    std::size_t best = 0;
    std::uint64_t best_distance = ~std::uint64_t{0};
    for (std::size_t r = 0; r < n_rows; ++r) {
        const std::uint64_t distance =
            xor_popcount_words(query, rows + r * words, words);
        if (distance < best_distance) {
            best_distance = distance;
            best = r;
        }
    }
    if (best_distance_out != nullptr) *best_distance_out = best_distance;
    return best;
}

// --- prefix-window Hamming kernels (dynamic-dimension queries) ------------
//
// Same row-major packed memory as the argmin scan, but only the first
// `prefix_words` of each `row_words`-word row are reduced — the kernel
// behind dimension-truncated associative search (answer a query from a
// D/8, D/4, ... prefix of every class row and escalate only when the
// top-1/top-2 margin is too small). Ties keep the first-wins rule, so a
// full-window call (prefix_words == row_words) is bit-identical to the
// full argmin.

/// Pinned scalar oracle for the prefix-window argmin + runner-up scan.
UHD_SCALAR_REFERENCE inline argmin2_result hamming_argmin2_prefix_reference(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t row_words,
    std::size_t prefix_words, std::size_t n_rows) noexcept {
    argmin2_result r{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    for (std::size_t row = 0; row < n_rows; ++row) {
        std::uint64_t distance = 0;
        UHD_NOVECTOR_LOOP
        for (std::size_t w = 0; w < prefix_words; ++w) {
            distance += static_cast<std::uint64_t>(
                std::popcount(query[w] ^ rows[row * row_words + w]));
        }
        if (distance < r.distance) {
            r.runner_up = r.distance;
            r.distance = distance;
            r.index = row;
        } else if (distance < r.runner_up) {
            r.runner_up = distance;
        }
    }
    return r;
}

/// Portable word-parallel prefix-window argmin + runner-up.
[[nodiscard]] inline argmin2_result hamming_argmin2_prefix_words(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t row_words,
    std::size_t prefix_words, std::size_t n_rows) noexcept {
    argmin2_result r{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    for (std::size_t row = 0; row < n_rows; ++row) {
        const std::uint64_t distance =
            xor_popcount_words(query, rows + row * row_words, prefix_words);
        if (distance < r.distance) {
            r.runner_up = r.distance;
            r.distance = distance;
            r.index = row;
        } else if (distance < r.runner_up) {
            r.runner_up = distance;
        }
    }
    return r;
}

/// Pinned scalar oracle for the incremental window extension.
UHD_SCALAR_REFERENCE inline void hamming_extend_words_reference(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t row_words,
    std::size_t from_word, std::size_t to_word, std::size_t n_rows,
    std::uint64_t* distances) noexcept {
    for (std::size_t row = 0; row < n_rows; ++row) {
        std::uint64_t distance = 0;
        UHD_NOVECTOR_LOOP
        for (std::size_t w = from_word; w < to_word; ++w) {
            distance += static_cast<std::uint64_t>(
                std::popcount(query[w] ^ rows[row * row_words + w]));
        }
        distances[row] += distance;
    }
}

/// Extend running per-row distances by the window [from_word, to_word):
/// distances[r] += popcount(query ^ row_r) over those words. The early-exit
/// cascade grows each stage's window incrementally with this, so the total
/// words scanned per query is n_rows * final_window (never re-scanned), and
/// the accumulated distances are bit-identical to a fresh prefix scan.
inline void hamming_extend_words_portable(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t row_words,
    std::size_t from_word, std::size_t to_word, std::size_t n_rows,
    std::uint64_t* distances) noexcept {
    const std::size_t span = to_word - from_word;
    for (std::size_t row = 0; row < n_rows; ++row) {
        distances[row] += xor_popcount_words(
            query + from_word, rows + row * row_words + from_word, span);
    }
}

// --- query-block Hamming kernels (multi-query bitwise GEMM) ---------------
//
// A block of packed queries against the whole row-major memory in one call:
// the queries x rows distance plane is tiled (4 queries x 2 rows per inner
// tile here; the wide backends use the same shape over vector words) so
// each class row is streamed from memory once per query *tile* instead of
// once per query. Distances are exact integer popcounts, so any tile order
// is bit-identical to per-query scans; the fused argmin2 variant applies
// row updates in ascending row order per query, preserving the first-wins
// tie rule of the single-query kernels.

/// Pinned scalar oracle for the query-block window extension.
UHD_SCALAR_REFERENCE inline void hamming_block_extend_reference(
    const std::uint64_t* queries, std::size_t query_words, std::size_t n_queries,
    const std::uint64_t* rows, std::size_t row_words, std::size_t from_word,
    std::size_t to_word, std::size_t n_rows, std::uint64_t* distances) noexcept {
    for (std::size_t q = 0; q < n_queries; ++q) {
        const std::uint64_t* query = queries + q * query_words;
        for (std::size_t row = 0; row < n_rows; ++row) {
            std::uint64_t distance = 0;
            UHD_NOVECTOR_LOOP
            for (std::size_t w = from_word; w < to_word; ++w) {
                distance += static_cast<std::uint64_t>(
                    std::popcount(query[w] ^ rows[row * row_words + w]));
            }
            distances[q * n_rows + row] += distance;
        }
    }
}

/// Pinned scalar oracle for the fused query-block argmin + runner-up.
UHD_SCALAR_REFERENCE inline void hamming_block_argmin2_prefix_reference(
    const std::uint64_t* queries, std::size_t query_words, std::size_t n_queries,
    const std::uint64_t* rows, std::size_t row_words, std::size_t prefix_words,
    std::size_t n_rows, argmin2_result* results) noexcept {
    for (std::size_t q = 0; q < n_queries; ++q) {
        const std::uint64_t* query = queries + q * query_words;
        argmin2_result r{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
        for (std::size_t row = 0; row < n_rows; ++row) {
            std::uint64_t distance = 0;
            UHD_NOVECTOR_LOOP
            for (std::size_t w = 0; w < prefix_words; ++w) {
                distance += static_cast<std::uint64_t>(
                    std::popcount(query[w] ^ rows[row * row_words + w]));
            }
            if (distance < r.distance) {
                r.runner_up = r.distance;
                r.distance = distance;
                r.index = row;
            } else if (distance < r.runner_up) {
                r.runner_up = distance;
            }
        }
        results[q] = r;
    }
}

/// Register-blocked portable tile: distances over [from_word, to_word) for
/// a full 4-query x 2-row tile, eight u64 accumulators live across the one
/// pass over the two rows' window words.
inline void hamming_block_tile_4x2(const std::uint64_t* q0, const std::uint64_t* q1,
                                   const std::uint64_t* q2, const std::uint64_t* q3,
                                   const std::uint64_t* r0, const std::uint64_t* r1,
                                   std::size_t from_word, std::size_t to_word,
                                   std::uint64_t d[4][2]) noexcept {
    std::uint64_t a0 = 0, a1 = 0, b0 = 0, b1 = 0;
    std::uint64_t c0 = 0, c1 = 0, e0 = 0, e1 = 0;
    for (std::size_t w = from_word; w < to_word; ++w) {
        const std::uint64_t rw0 = r0[w];
        const std::uint64_t rw1 = r1[w];
        a0 += static_cast<std::uint64_t>(std::popcount(q0[w] ^ rw0));
        a1 += static_cast<std::uint64_t>(std::popcount(q0[w] ^ rw1));
        b0 += static_cast<std::uint64_t>(std::popcount(q1[w] ^ rw0));
        b1 += static_cast<std::uint64_t>(std::popcount(q1[w] ^ rw1));
        c0 += static_cast<std::uint64_t>(std::popcount(q2[w] ^ rw0));
        c1 += static_cast<std::uint64_t>(std::popcount(q2[w] ^ rw1));
        e0 += static_cast<std::uint64_t>(std::popcount(q3[w] ^ rw0));
        e1 += static_cast<std::uint64_t>(std::popcount(q3[w] ^ rw1));
    }
    d[0][0] = a0; d[0][1] = a1;
    d[1][0] = b0; d[1][1] = b1;
    d[2][0] = c0; d[2][1] = c1;
    d[3][0] = e0; d[3][1] = e1;
}

/// Portable register-blocked query-block window extension (4 queries x
/// 2 rows per inner tile; ragged edges fall back to per-pair reductions).
inline void hamming_block_extend_portable(
    const std::uint64_t* queries, std::size_t query_words, std::size_t n_queries,
    const std::uint64_t* rows, std::size_t row_words, std::size_t from_word,
    std::size_t to_word, std::size_t n_rows, std::uint64_t* distances) noexcept {
    const std::size_t span = to_word - from_word;
    std::size_t q = 0;
    for (; q + 4 <= n_queries; q += 4) {
        const std::uint64_t* q0 = queries + (q + 0) * query_words;
        const std::uint64_t* q1 = queries + (q + 1) * query_words;
        const std::uint64_t* q2 = queries + (q + 2) * query_words;
        const std::uint64_t* q3 = queries + (q + 3) * query_words;
        std::size_t row = 0;
        for (; row + 2 <= n_rows; row += 2) {
            std::uint64_t d[4][2];
            hamming_block_tile_4x2(q0, q1, q2, q3, rows + row * row_words,
                                   rows + (row + 1) * row_words, from_word, to_word,
                                   d);
            for (std::size_t qi = 0; qi < 4; ++qi) {
                distances[(q + qi) * n_rows + row] += d[qi][0];
                distances[(q + qi) * n_rows + row + 1] += d[qi][1];
            }
        }
        for (; row < n_rows; ++row) {
            const std::uint64_t* r0 = rows + row * row_words + from_word;
            distances[(q + 0) * n_rows + row] += xor_popcount_words(q0 + from_word, r0, span);
            distances[(q + 1) * n_rows + row] += xor_popcount_words(q1 + from_word, r0, span);
            distances[(q + 2) * n_rows + row] += xor_popcount_words(q2 + from_word, r0, span);
            distances[(q + 3) * n_rows + row] += xor_popcount_words(q3 + from_word, r0, span);
        }
    }
    for (; q < n_queries; ++q) {
        const std::uint64_t* query = queries + q * query_words;
        for (std::size_t row = 0; row < n_rows; ++row) {
            distances[q * n_rows + row] += xor_popcount_words(
                query + from_word, rows + row * row_words + from_word, span);
        }
    }
}

/// argmin2 update for one (row, distance) observation — rows must be fed in
/// ascending order per query to preserve the first-wins tie rule.
inline void argmin2_update(argmin2_result& r, std::size_t row,
                           std::uint64_t distance) noexcept {
    if (distance < r.distance) {
        r.runner_up = r.distance;
        r.distance = distance;
        r.index = row;
    } else if (distance < r.runner_up) {
        r.runner_up = distance;
    }
}

/// Portable fused query-block argmin + runner-up (same 4x2 tiling as the
/// window extension; per-query argmin2 state updated in ascending row
/// order, so the result is bit-identical to per-query prefix scans).
inline void hamming_block_argmin2_prefix_portable(
    const std::uint64_t* queries, std::size_t query_words, std::size_t n_queries,
    const std::uint64_t* rows, std::size_t row_words, std::size_t prefix_words,
    std::size_t n_rows, argmin2_result* results) noexcept {
    for (std::size_t q = 0; q < n_queries; ++q) {
        results[q] = argmin2_result{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    }
    std::size_t q = 0;
    for (; q + 4 <= n_queries; q += 4) {
        const std::uint64_t* q0 = queries + (q + 0) * query_words;
        const std::uint64_t* q1 = queries + (q + 1) * query_words;
        const std::uint64_t* q2 = queries + (q + 2) * query_words;
        const std::uint64_t* q3 = queries + (q + 3) * query_words;
        std::size_t row = 0;
        for (; row + 2 <= n_rows; row += 2) {
            std::uint64_t d[4][2];
            hamming_block_tile_4x2(q0, q1, q2, q3, rows + row * row_words,
                                   rows + (row + 1) * row_words, 0, prefix_words, d);
            for (std::size_t qi = 0; qi < 4; ++qi) {
                argmin2_update(results[q + qi], row, d[qi][0]);
                argmin2_update(results[q + qi], row + 1, d[qi][1]);
            }
        }
        for (; row < n_rows; ++row) {
            const std::uint64_t* r0 = rows + row * row_words;
            argmin2_update(results[q + 0], row, xor_popcount_words(q0, r0, prefix_words));
            argmin2_update(results[q + 1], row, xor_popcount_words(q1, r0, prefix_words));
            argmin2_update(results[q + 2], row, xor_popcount_words(q2, r0, prefix_words));
            argmin2_update(results[q + 3], row, xor_popcount_words(q3, r0, prefix_words));
        }
    }
    for (; q < n_queries; ++q) {
        results[q] = hamming_argmin2_prefix_words(queries + q * query_words, rows,
                                                  row_words, prefix_words, n_rows);
    }
}

// --- blocked int32 dot-product kernels (integer-cosine inference) ---------
//
// Each product is computed exactly in int64 (|a|,|b| <= 2^31 so the product
// fits) and accumulated into four independent double lanes; only the lane
// additions round. Four lanes break the serial dependence so the compiler
// can pipeline/vectorize the conversion+add, and the lane split is fixed,
// so results are deterministic (though not bit-identical to a strictly
// serial double accumulation). Every backend runs this exact algorithm —
// the fixed lane order makes the result bit-identical across backends even
// when a wider TU vectorizes the lane arithmetic.

/// Sum of squares of an int32 span, in double.
[[nodiscard]] inline double sum_squares_i32(const std::int32_t* v,
                                            std::size_t n) noexcept {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t main_n = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main_n; i += 4) {
        for (std::size_t l = 0; l < 4; ++l) {
            const std::int64_t x = v[i + l];
            lanes[l] += static_cast<double>(x * x);
        }
    }
    for (std::size_t i = main_n; i < n; ++i) {
        const std::int64_t x = v[i];
        lanes[i % 4] += static_cast<double>(x * x);
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/// Dot product of two int32 spans, in double.
[[nodiscard]] inline double dot_i32(const std::int32_t* a, const std::int32_t* b,
                                    std::size_t n) noexcept {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t main_n = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main_n; i += 4) {
        for (std::size_t l = 0; l < 4; ++l) {
            lanes[l] += static_cast<double>(static_cast<std::int64_t>(a[i + l]) *
                                            static_cast<std::int64_t>(b[i + l]));
        }
    }
    for (std::size_t i = main_n; i < n; ++i) {
        lanes[i % 4] += static_cast<double>(static_cast<std::int64_t>(a[i]) *
                                            static_cast<std::int64_t>(b[i]));
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/// Sum of v[i] over the set bits of a packed mask covering n values
/// (mask words beyond bit n must be zero — the bitstream tail invariant).
/// This is the kernel behind the packed-query integer dot product:
/// with bit 1 = -1, dot(query, v) = sum(v) - 2 * masked_sum(mask, v).
[[nodiscard]] inline std::int64_t masked_sum_i32(const std::uint64_t* mask,
                                                 const std::int32_t* v,
                                                 std::size_t n) noexcept {
    std::int64_t total = 0;
    const std::size_t full_words = n / 64;
    for (std::size_t wi = 0; wi <= full_words; ++wi) {
        const std::size_t base = wi * 64;
        if (base >= n) break;
        for (std::uint64_t m = mask[wi]; m != 0; m &= m - 1) {
            total += v[base + static_cast<std::size_t>(std::countr_zero(m))];
        }
    }
    return total;
}

} // namespace uhd::simd

#endif // UHD_COMMON_SIMD_HPP
