// Word-parallel kernels for the two inner loops of the uHD software
// datapath (the hot paths behind Table I's runtime rows):
//
//  1. threshold compare-accumulate — geq16[d] += (q >= thresholds[d]) for a
//     whole row of quantized Sobol thresholds. Three implementations:
//       * scalar      — the byte-at-a-time correctness oracle
//       * SWAR/u64    — 8 thresholds per step on any 64-bit machine
//                       (requires all operands <= 127, which holds for
//                       every practical quantization: xi <= 128)
//       * AVX2        — 32 thresholds per step via unsigned max+compare,
//                       compiled only under __AVX2__
//     Counts accumulate in uint16_t tiles; callers flush the tile into the
//     int32 bundle accumulator with add_u16_to_i32() before a tile can
//     overflow (i.e. at least once every 65535 pixels).
//
//  2. packed popcount/dot reductions over the 64-bit words of bit-packed
//     hypervectors — whole-word popcounts and the sign-masked sum that
//     turns a packed bipolar query into an integer dot product.
//
//  3. the inference engine's kernels — sign-binarize (int32 accumulator
//     span -> packed 64-bit sign words), Hamming-argmin over a row-major
//     packed class memory (XOR + popcount per word, reduced in one pass),
//     and blocked int32 dot products for the integer-cosine query mode.
//
// All kernels are deterministic and bit-exact against their scalar
// references; tests/test_simd_kernels.cpp enforces this over randomized
// inputs for every implementation the build enables.
#ifndef UHD_COMMON_SIMD_HPP
#define UHD_COMMON_SIMD_HPP

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef __AVX2__
#include <immintrin.h>
#endif

// Marker for reference kernels that must stay byte-at-a-time scalar code:
// they are the oracle the word-parallel kernels are measured against, so
// letting the compiler auto-vectorize them would silently turn the
// baseline into another SIMD implementation.
#if defined(__clang__)
#define UHD_SCALAR_REFERENCE __attribute__((noinline))
#define UHD_NOVECTOR_LOOP _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define UHD_SCALAR_REFERENCE \
    __attribute__((noinline, optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#define UHD_NOVECTOR_LOOP
#else
#define UHD_SCALAR_REFERENCE
#define UHD_NOVECTOR_LOOP
#endif

namespace uhd::simd {

/// Every byte of the word set to `b`.
[[nodiscard]] constexpr std::uint64_t splat8(std::uint8_t b) noexcept {
    return 0x0101010101010101ULL * b;
}

/// Highest threshold value the SWAR kernel accepts (both q and thresholds).
inline constexpr std::uint8_t swar_max_value = 127;

/// Per-byte mask (0x80 set) of bytes where q >= x, for bytes <= 127.
///
/// With H = 0x80 splatted, (q|H) - x stays within each byte (no borrow can
/// cross a byte boundary because q|H >= 0x80 and x <= 0x7F), and the high
/// bit of each byte survives exactly when q >= x.
[[nodiscard]] constexpr std::uint64_t geq_mask_swar(std::uint64_t q_splat,
                                                   std::uint64_t x) noexcept {
    constexpr std::uint64_t high = 0x8080808080808080ULL;
    return ((q_splat | high) - x) & high;
}

/// Scalar kernel: geq16[d] += (q >= thresholds[d]) for d in [0, dim).
/// Used for vector-width tails and as the portable fallback; the compiler
/// may auto-vectorize it.
inline void geq_accumulate_scalar(std::uint8_t q, const std::uint8_t* thresholds,
                                  std::size_t dim, std::uint16_t* geq16) noexcept {
    for (std::size_t d = 0; d < dim; ++d) {
        geq16[d] = static_cast<std::uint16_t>(geq16[d] + (q >= thresholds[d]));
    }
}

/// True byte-at-a-time oracle: same contract as geq_accumulate_scalar but
/// pinned to scalar code (see UHD_SCALAR_REFERENCE) so speedup numbers are
/// measured against a genuinely scalar baseline.
UHD_SCALAR_REFERENCE inline void geq_accumulate_reference(
    std::uint8_t q, const std::uint8_t* thresholds, std::size_t dim,
    std::uint16_t* geq16) noexcept {
    UHD_NOVECTOR_LOOP
    for (std::size_t d = 0; d < dim; ++d) {
        geq16[d] = static_cast<std::uint16_t>(geq16[d] + (q >= thresholds[d]));
    }
}

/// SWAR kernel: 8 thresholds per 64-bit step. Preconditions: q <= 127 and
/// every threshold <= 127 (guaranteed when quant_levels <= 128).
inline void geq_accumulate_swar(std::uint8_t q, const std::uint8_t* thresholds,
                                std::size_t dim, std::uint16_t* geq16) noexcept {
    const std::uint64_t q_splat = splat8(q);
    std::size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        std::uint64_t x;
        __builtin_memcpy(&x, thresholds + d, 8);
        // 0/1 per byte of the comparison result.
        const std::uint64_t ones = geq_mask_swar(q_splat, x) >> 7;
        // Spread the eight 0/1 bytes into two words of four u16 lanes each
        // and add them into the accumulator tile; lane adds cannot carry
        // into a neighbour because each lane grows by at most 1 per call
        // and the caller flushes before 65535 pixels.
        const std::uint64_t lo = ((ones & 0x00000000000000FFULL)) |
                                 ((ones & 0x000000000000FF00ULL) << 8) |
                                 ((ones & 0x0000000000FF0000ULL) << 16) |
                                 ((ones & 0x00000000FF000000ULL) << 24);
        const std::uint64_t hi_bytes = ones >> 32;
        const std::uint64_t hi = ((hi_bytes & 0x00000000000000FFULL)) |
                                 ((hi_bytes & 0x000000000000FF00ULL) << 8) |
                                 ((hi_bytes & 0x0000000000FF0000ULL) << 16) |
                                 ((hi_bytes & 0x00000000FF000000ULL) << 24);
        std::uint64_t acc_lo;
        std::uint64_t acc_hi;
        __builtin_memcpy(&acc_lo, geq16 + d, 8);
        __builtin_memcpy(&acc_hi, geq16 + d + 4, 8);
        acc_lo += lo;
        acc_hi += hi;
        __builtin_memcpy(geq16 + d, &acc_lo, 8);
        __builtin_memcpy(geq16 + d + 4, &acc_hi, 8);
    }
    geq_accumulate_scalar(q, thresholds + d, dim - d, geq16 + d);
}

#ifdef __AVX2__
/// AVX2 kernel: 32 thresholds per step, any byte values. The unsigned
/// comparison is max_epu8(q, x) == q; the 0xFF/0x00 byte mask sign-extends
/// to -1/0 in u16 lanes, so subtracting it adds the comparison result.
inline void geq_accumulate_avx2(std::uint8_t q, const std::uint8_t* thresholds,
                                std::size_t dim, std::uint16_t* geq16) noexcept {
    const __m256i vq = _mm256_set1_epi8(static_cast<char>(q));
    std::size_t d = 0;
    for (; d + 32 <= dim; d += 32) {
        const __m256i row =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(thresholds + d));
        const __m256i mask = _mm256_cmpeq_epi8(_mm256_max_epu8(vq, row), vq);
        const __m256i lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(mask));
        const __m256i hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(mask, 1));
        __m256i* acc = reinterpret_cast<__m256i*>(geq16 + d);
        _mm256_storeu_si256(acc, _mm256_sub_epi16(_mm256_loadu_si256(acc), lo));
        __m256i* acc2 = reinterpret_cast<__m256i*>(geq16 + d + 16);
        _mm256_storeu_si256(acc2, _mm256_sub_epi16(_mm256_loadu_si256(acc2), hi));
    }
    geq_accumulate_scalar(q, thresholds + d, dim - d, geq16 + d);
}
#endif

/// True when the build carries the AVX2 kernel bodies.
[[nodiscard]] constexpr bool has_avx2() noexcept {
#ifdef __AVX2__
    return true;
#else
    return false;
#endif
}

/// Best available compare-accumulate kernel. `max_value` is an upper bound
/// on q and on every threshold (the encoder passes quant_levels - 1); it
/// selects whether the SWAR kernel is admissible on non-AVX2 builds.
inline void geq_accumulate(std::uint8_t q, const std::uint8_t* thresholds,
                           std::size_t dim, std::uint16_t* geq16,
                           std::uint8_t max_value) noexcept {
#ifdef __AVX2__
    (void)max_value;
    geq_accumulate_avx2(q, thresholds, dim, geq16);
#else
    if (max_value <= swar_max_value) {
        geq_accumulate_swar(q, thresholds, dim, geq16);
    } else {
        geq_accumulate_scalar(q, thresholds, dim, geq16);
    }
#endif
}

/// Flush a u16 tile into the int32 accumulator: out[d] += geq16[d].
inline void add_u16_to_i32(const std::uint16_t* geq16, std::size_t dim,
                           std::int32_t* out) noexcept {
    for (std::size_t d = 0; d < dim; ++d) out[d] += geq16[d];
}

// --- whole-image block kernels --------------------------------------------
//
// out[d] += sum_{p in [0, npix)} (q[p] >= bank[p * stride + d]) — the full
// encode inner double-loop in one call. The wide implementations tile the
// dimension axis so the per-dimension counters live in registers as u8
// lanes, flushed into the int32 output at least every 255 pixels.

/// Portable fallback for the block kernel: per-pixel rows through the u16
/// kernel, flushed before a u16 lane can overflow.
inline void geq_block_accumulate_scalar(const std::uint8_t* q, std::size_t npix,
                                        const std::uint8_t* bank, std::size_t stride,
                                        std::size_t dim, std::int32_t* out) {
    std::vector<std::uint16_t> tile(dim, 0);
    std::size_t pixels_in_tile = 0;
    for (std::size_t p = 0; p < npix; ++p) {
        geq_accumulate_scalar(q[p], bank + p * stride, dim, tile.data());
        if (++pixels_in_tile == 65535) {
            add_u16_to_i32(tile.data(), dim, out);
            std::fill(tile.begin(), tile.end(), std::uint16_t{0});
            pixels_in_tile = 0;
        }
    }
    if (pixels_in_tile != 0) add_u16_to_i32(tile.data(), dim, out);
}

/// SWAR block kernel: 8-dimension tiles with eight u8 counters packed in
/// one u64, flushed every 255 pixels. Preconditions as geq_accumulate_swar
/// (all values <= 127).
inline void geq_block_accumulate_swar(const std::uint8_t* q, std::size_t npix,
                                      const std::uint8_t* bank, std::size_t stride,
                                      std::size_t dim, std::int32_t* out) {
    constexpr std::uint64_t low_bits = 0x0101010101010101ULL;
    std::size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        std::uint64_t counters = 0;
        std::size_t pixels_in_tile = 0;
        const auto flush = [&] {
            for (int lane = 0; lane < 8; ++lane) {
                out[d + static_cast<std::size_t>(lane)] +=
                    static_cast<std::int32_t>((counters >> (8 * lane)) & 0xFF);
            }
            counters = 0;
            pixels_in_tile = 0;
        };
        for (std::size_t p = 0; p < npix; ++p) {
            std::uint64_t x;
            __builtin_memcpy(&x, bank + p * stride + d, 8);
            counters += (geq_mask_swar(splat8(q[p]), x) >> 7) & low_bits;
            if (++pixels_in_tile == 255) flush();
        }
        if (pixels_in_tile != 0) flush();
    }
    if (d < dim) {
        geq_block_accumulate_scalar(q, npix, bank + d, stride, dim - d, out + d);
    }
}

#ifdef __AVX2__
/// AVX2 block kernel: 128-dimension tiles held in four ymm registers of u8
/// counters. Per pixel and 32 dimensions the loop is one load, an unsigned
/// max+compare, and a byte subtract (the 0xFF mask adds 1) — no
/// accumulator memory traffic until the every-255-pixel flush.
inline void geq_block_accumulate_avx2(const std::uint8_t* q, std::size_t npix,
                                      const std::uint8_t* bank, std::size_t stride,
                                      std::size_t dim, std::int32_t* out) {
    constexpr std::size_t tile_dims = 128;
    const auto flush32 = [](__m256i counters, std::int32_t* dst) {
        alignas(32) std::uint8_t lanes[32];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), counters);
        for (int i = 0; i < 32; ++i) dst[i] += lanes[i];
    };
    std::size_t d = 0;
    for (; d + tile_dims <= dim; d += tile_dims) {
        __m256i c0 = _mm256_setzero_si256();
        __m256i c1 = _mm256_setzero_si256();
        __m256i c2 = _mm256_setzero_si256();
        __m256i c3 = _mm256_setzero_si256();
        std::size_t pixels_in_tile = 0;
        const auto flush = [&] {
            flush32(c0, out + d);
            flush32(c1, out + d + 32);
            flush32(c2, out + d + 64);
            flush32(c3, out + d + 96);
            c0 = c1 = c2 = c3 = _mm256_setzero_si256();
            pixels_in_tile = 0;
        };
        for (std::size_t p = 0; p < npix; ++p) {
            const __m256i vq = _mm256_set1_epi8(static_cast<char>(q[p]));
            const std::uint8_t* row = bank + p * stride + d;
            const auto step = [&](const std::uint8_t* src, __m256i counters) {
                const __m256i x =
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
                const __m256i mask = _mm256_cmpeq_epi8(_mm256_max_epu8(vq, x), vq);
                return _mm256_sub_epi8(counters, mask);
            };
            c0 = step(row, c0);
            c1 = step(row + 32, c1);
            c2 = step(row + 64, c2);
            c3 = step(row + 96, c3);
            if (++pixels_in_tile == 255) flush();
        }
        if (pixels_in_tile != 0) flush();
    }
    if (d < dim) {
        geq_block_accumulate_scalar(q, npix, bank + d, stride, dim - d, out + d);
    }
}
#endif

/// Best available block kernel (see geq_accumulate for the `max_value`
/// contract).
inline void geq_block_accumulate(const std::uint8_t* q, std::size_t npix,
                                 const std::uint8_t* bank, std::size_t stride,
                                 std::size_t dim, std::int32_t* out,
                                 std::uint8_t max_value) {
#ifdef __AVX2__
    (void)max_value;
    geq_block_accumulate_avx2(q, npix, bank, stride, dim, out);
#else
    if (max_value <= swar_max_value) {
        geq_block_accumulate_swar(q, npix, bank, stride, dim, out);
    } else {
        geq_block_accumulate_scalar(q, npix, bank, stride, dim, out);
    }
#endif
}

// --- sign-binarize kernels ------------------------------------------------
//
// Pack the sign bits of an int32 accumulator span into 64-bit words under
// the hypervector convention (bit 1 = -1): bit d is set exactly when
// v[d] < 0, so >= 0 maps to +1 — the same tie rule as accumulator::sign()
// and the hardware's popcount >= TOB binarizer. The output holds
// ceil(n / 64) words and every kernel zeroes the tail bits beyond n, so the
// result satisfies the bitstream tail invariant as-is.

/// Number of 64-bit words needed for `n` packed sign bits.
[[nodiscard]] constexpr std::size_t sign_words(std::size_t n) noexcept {
    return (n + 63) / 64;
}

/// True byte-at-a-time oracle for sign binarization (pinned scalar; the
/// baseline the word-parallel kernels are tested and benchmarked against).
UHD_SCALAR_REFERENCE inline void sign_binarize_reference(
    const std::int32_t* v, std::size_t n, std::uint64_t* words) noexcept {
    for (std::size_t w = 0; w < sign_words(n); ++w) words[w] = 0;
    UHD_NOVECTOR_LOOP
    for (std::size_t d = 0; d < n; ++d) {
        if (v[d] < 0) words[d / 64] |= std::uint64_t{1} << (d % 64);
    }
}

/// SWAR kernel: two int32 values per u64 load — bits 31 and 63 of the load
/// are exactly the two sign bits on little-endian, so one full output word
/// costs 32 loads and a handful of shifts. Big-endian builds (where the
/// pair order inside the load is swapped) take a plain per-element loop
/// the compiler is free to vectorize.
inline void sign_binarize_swar(const std::int32_t* v, std::size_t n,
                               std::uint64_t* words) noexcept {
    if constexpr (std::endian::native != std::endian::little) {
        for (std::size_t w = 0; w < sign_words(n); ++w) words[w] = 0;
        for (std::size_t d = 0; d < n; ++d) {
            if (v[d] < 0) words[d / 64] |= std::uint64_t{1} << (d % 64);
        }
        return;
    }
    std::size_t d = 0;
    std::size_t w = 0;
    for (; d + 64 <= n; d += 64, ++w) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; i < 32; ++i) {
            std::uint64_t pair;
            __builtin_memcpy(&pair, v + d + 2 * i, 8);
            bits |= ((pair >> 31) & 1u) << (2 * i);
            bits |= (pair >> 63) << (2 * i + 1);
        }
        words[w] = bits;
    }
    if (d < n) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; d + i < n; ++i) {
            if (v[d + i] < 0) bits |= std::uint64_t{1} << i;
        }
        words[w] = bits;
    }
}

#ifdef __AVX2__
/// AVX2 kernel: movemask over eight int32 lanes yields eight sign bits per
/// load, so one output word is eight loads + shifts.
inline void sign_binarize_avx2(const std::int32_t* v, std::size_t n,
                               std::uint64_t* words) noexcept {
    std::size_t d = 0;
    std::size_t w = 0;
    for (; d + 64 <= n; d += 64, ++w) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; i < 8; ++i) {
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(v + d + 8 * i));
            const auto mask = static_cast<std::uint32_t>(
                _mm256_movemask_ps(_mm256_castsi256_ps(x)));
            bits |= static_cast<std::uint64_t>(mask) << (8 * i);
        }
        words[w] = bits;
    }
    if (d < n) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; d + i < n; ++i) {
            if (v[d + i] < 0) bits |= std::uint64_t{1} << i;
        }
        words[w] = bits;
    }
}
#endif

/// Best available sign-binarize kernel.
inline void sign_binarize(const std::int32_t* v, std::size_t n,
                          std::uint64_t* words) noexcept {
#ifdef __AVX2__
    sign_binarize_avx2(v, n, words);
#else
    sign_binarize_swar(v, n, words);
#endif
}

/// Population count over `n` packed words.
[[nodiscard]] inline std::uint64_t popcount_words(const std::uint64_t* w,
                                                  std::size_t n) noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += std::popcount(w[i]);
    return total;
}

/// popcount(a AND b) over `n` packed words (unary/bitstream overlap).
[[nodiscard]] inline std::uint64_t and_popcount_words(const std::uint64_t* a,
                                                      const std::uint64_t* b,
                                                      std::size_t n) noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
    return total;
}

/// popcount(a XOR b) over `n` packed words (Hamming distance kernel).
[[nodiscard]] inline std::uint64_t xor_popcount_words(const std::uint64_t* a,
                                                      const std::uint64_t* b,
                                                      std::size_t n) noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] ^ b[i]);
    return total;
}

#ifdef __AVX2__
/// popcount(a XOR b) with the pshufb nibble-LUT popcount, 4 words (256
/// bits) per step. Bit-exact with xor_popcount_words.
[[nodiscard]] inline std::uint64_t xor_popcount_words_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) noexcept {
    const __m256i low_nibble = _mm256_set1_epi8(0x0F);
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2,
                         1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
        const __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(x, low_nibble));
        const __m256i hi = _mm256_shuffle_epi8(
            lut, _mm256_and_si256(_mm256_srli_epi32(x, 4), low_nibble));
        // Per-byte counts <= 16; sad_epu8 folds them into four u64 lanes.
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256()));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i) total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
    return total;
}
#endif

/// Best available XOR-popcount reduction (Hamming distance of packed rows).
[[nodiscard]] inline std::uint64_t hamming_distance_words(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) noexcept {
#ifdef __AVX2__
    return xor_popcount_words_avx2(a, b, n);
#else
    return xor_popcount_words(a, b, n);
#endif
}

// --- Hamming-argmin over a packed associative memory ----------------------
//
// `rows` holds `n_rows` binarized class vectors back-to-back, `words` u64
// words each. The query uses the same packing. Ties resolve to the lowest
// row index (strict <), which is exactly the first-wins rule of the
// per-class cosine scan it replaces: cosine = (D - 2 * hamming) / D is
// strictly decreasing in the distance, so argmax-cosine with strict >
// equals argmin-distance with strict <.

/// Pinned scalar oracle: per-row distance via a plain popcount loop.
UHD_SCALAR_REFERENCE inline std::size_t hamming_argmin_reference(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t words,
    std::size_t n_rows, std::uint64_t* best_distance_out = nullptr) noexcept {
    std::size_t best = 0;
    std::uint64_t best_distance = ~std::uint64_t{0};
    for (std::size_t r = 0; r < n_rows; ++r) {
        std::uint64_t distance = 0;
        UHD_NOVECTOR_LOOP
        for (std::size_t w = 0; w < words; ++w) {
            distance += static_cast<std::uint64_t>(
                std::popcount(query[w] ^ rows[r * words + w]));
        }
        if (distance < best_distance) {
            best_distance = distance;
            best = r;
        }
    }
    if (best_distance_out != nullptr) *best_distance_out = best_distance;
    return best;
}

/// Best available Hamming-argmin: one pass over the row-major memory, each
/// row reduced with the widest XOR+popcount kernel the build carries.
[[nodiscard]] inline std::size_t hamming_argmin(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t words,
    std::size_t n_rows, std::uint64_t* best_distance_out = nullptr) noexcept {
    std::size_t best = 0;
    std::uint64_t best_distance = ~std::uint64_t{0};
    for (std::size_t r = 0; r < n_rows; ++r) {
        const std::uint64_t distance =
            hamming_distance_words(query, rows + r * words, words);
        if (distance < best_distance) {
            best_distance = distance;
            best = r;
        }
    }
    if (best_distance_out != nullptr) *best_distance_out = best_distance;
    return best;
}

// --- prefix-window Hamming kernels (dynamic-dimension queries) ------------
//
// Same row-major packed memory as hamming_argmin, but only the first
// `prefix_words` of each `row_words`-word row are reduced — the kernel
// behind dimension-truncated associative search (answer a query from a
// D/8, D/4, ... prefix of every class row and escalate only when the
// top-1/top-2 margin is too small). Ties keep the first-wins rule, so a
// full-window call (prefix_words == row_words) is bit-identical to
// hamming_argmin.

/// argmin + runner-up of a prefix-window Hamming scan.
struct argmin2_result {
    std::size_t index;       ///< nearest row (lowest index on ties)
    std::uint64_t distance;  ///< winning distance over the window
    std::uint64_t runner_up; ///< second-best distance (all-ones when n_rows < 2)
};

/// argmin + runner-up over a u64 distance array (first-wins on ties; the
/// runner-up may equal the winner when two rows tie).
[[nodiscard]] inline argmin2_result argmin2_u64(const std::uint64_t* distances,
                                                std::size_t n_rows) noexcept {
    argmin2_result r{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    for (std::size_t i = 0; i < n_rows; ++i) {
        const std::uint64_t d = distances[i];
        if (d < r.distance) {
            r.runner_up = r.distance;
            r.distance = d;
            r.index = i;
        } else if (d < r.runner_up) {
            r.runner_up = d;
        }
    }
    return r;
}

/// Pinned scalar oracle for the prefix-window argmin + runner-up scan.
UHD_SCALAR_REFERENCE inline argmin2_result hamming_argmin2_prefix_reference(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t row_words,
    std::size_t prefix_words, std::size_t n_rows) noexcept {
    argmin2_result r{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    for (std::size_t row = 0; row < n_rows; ++row) {
        std::uint64_t distance = 0;
        UHD_NOVECTOR_LOOP
        for (std::size_t w = 0; w < prefix_words; ++w) {
            distance += static_cast<std::uint64_t>(
                std::popcount(query[w] ^ rows[row * row_words + w]));
        }
        if (distance < r.distance) {
            r.runner_up = r.distance;
            r.distance = distance;
            r.index = row;
        } else if (distance < r.runner_up) {
            r.runner_up = distance;
        }
    }
    return r;
}

/// Best available prefix-window argmin + runner-up: each row's first
/// `prefix_words` words reduced with the widest XOR+popcount kernel the
/// build carries. Bit-identical to the reference (tests enforce it).
[[nodiscard]] inline argmin2_result hamming_argmin2_prefix(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t row_words,
    std::size_t prefix_words, std::size_t n_rows) noexcept {
    argmin2_result r{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    for (std::size_t row = 0; row < n_rows; ++row) {
        const std::uint64_t distance =
            hamming_distance_words(query, rows + row * row_words, prefix_words);
        if (distance < r.distance) {
            r.runner_up = r.distance;
            r.distance = distance;
            r.index = row;
        } else if (distance < r.runner_up) {
            r.runner_up = distance;
        }
    }
    return r;
}

/// Extend running per-row distances by the window [from_word, to_word):
/// distances[r] += popcount(query ^ row_r) over those words. The early-exit
/// cascade grows each stage's window incrementally with this, so the total
/// words scanned per query is n_rows * final_window (never re-scanned), and
/// the accumulated distances are bit-identical to a fresh prefix scan.
inline void hamming_extend_words(const std::uint64_t* query, const std::uint64_t* rows,
                                 std::size_t row_words, std::size_t from_word,
                                 std::size_t to_word, std::size_t n_rows,
                                 std::uint64_t* distances) noexcept {
    const std::size_t span = to_word - from_word;
    for (std::size_t row = 0; row < n_rows; ++row) {
        distances[row] += hamming_distance_words(
            query + from_word, rows + row * row_words + from_word, span);
    }
}

// --- blocked int32 dot-product kernels (integer-cosine inference) ---------
//
// Each product is computed exactly in int64 (|a|,|b| <= 2^31 so the product
// fits) and accumulated into four independent double lanes; only the lane
// additions round. Four lanes break the serial dependence so the compiler
// can pipeline/vectorize the conversion+add, and the lane split is fixed,
// so results are deterministic (though not bit-identical to a strictly
// serial double accumulation).

/// Sum of squares of an int32 span, in double.
[[nodiscard]] inline double sum_squares_i32(const std::int32_t* v,
                                            std::size_t n) noexcept {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t main_n = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main_n; i += 4) {
        for (std::size_t l = 0; l < 4; ++l) {
            const std::int64_t x = v[i + l];
            lanes[l] += static_cast<double>(x * x);
        }
    }
    for (std::size_t i = main_n; i < n; ++i) {
        const std::int64_t x = v[i];
        lanes[i % 4] += static_cast<double>(x * x);
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/// Dot product of two int32 spans, in double.
[[nodiscard]] inline double dot_i32(const std::int32_t* a, const std::int32_t* b,
                                    std::size_t n) noexcept {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t main_n = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main_n; i += 4) {
        for (std::size_t l = 0; l < 4; ++l) {
            lanes[l] += static_cast<double>(static_cast<std::int64_t>(a[i + l]) *
                                            static_cast<std::int64_t>(b[i + l]));
        }
    }
    for (std::size_t i = main_n; i < n; ++i) {
        lanes[i % 4] += static_cast<double>(static_cast<std::int64_t>(a[i]) *
                                            static_cast<std::int64_t>(b[i]));
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/// Sum of v[i] over the set bits of a packed mask covering n values
/// (mask words beyond bit n must be zero — the bitstream tail invariant).
/// This is the kernel behind the packed-query integer dot product:
/// with bit 1 = -1, dot(query, v) = sum(v) - 2 * masked_sum(mask, v).
[[nodiscard]] inline std::int64_t masked_sum_i32(const std::uint64_t* mask,
                                                 const std::int32_t* v,
                                                 std::size_t n) noexcept {
    std::int64_t total = 0;
    const std::size_t full_words = n / 64;
    for (std::size_t wi = 0; wi <= full_words; ++wi) {
        const std::size_t base = wi * 64;
        if (base >= n) break;
        for (std::uint64_t m = mask[wi]; m != 0; m &= m - 1) {
            total += v[base + static_cast<std::size_t>(std::countr_zero(m))];
        }
    }
    return total;
}

} // namespace uhd::simd

#endif // UHD_COMMON_SIMD_HPP
