// Memory footprint accounting for the Table I "dynamic memory" comparison.
//
// The paper reports the dynamic memory allocated by each encoding pipeline on
// an embedded target. Rather than interposing a global allocator (fragile,
// and it would also count incidental allocations of the harness), every
// sizeable structure in this library exposes `memory_bytes()`, and benches
// register those footprints in a labelled ledger which prints per-pipeline
// totals.
#ifndef UHD_COMMON_ALLOC_LEDGER_HPP
#define UHD_COMMON_ALLOC_LEDGER_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace uhd {

/// Labelled sum of data-structure footprints (bytes).
class alloc_ledger {
public:
    /// Record `bytes` under `label`; repeated labels accumulate.
    void add(std::string label, std::size_t bytes);

    /// Total bytes across all entries.
    [[nodiscard]] std::size_t total_bytes() const noexcept;

    /// Total expressed in KiB (rounded up), the unit Table I uses.
    [[nodiscard]] std::size_t total_kib() const noexcept;

    /// All entries in insertion order (merged by label).
    [[nodiscard]] const std::vector<std::pair<std::string, std::size_t>>& entries() const noexcept {
        return entries_;
    }

    /// Remove all entries.
    void clear() noexcept { entries_.clear(); }

private:
    std::vector<std::pair<std::string, std::size_t>> entries_;
};

} // namespace uhd

#endif // UHD_COMMON_ALLOC_LEDGER_HPP
