// Library version constants.
#ifndef UHD_COMMON_VERSION_HPP
#define UHD_COMMON_VERSION_HPP

namespace uhd {

inline constexpr int version_major = 1;
inline constexpr int version_minor = 0;
inline constexpr int version_patch = 0;

/// Human-readable version string of the uHD library.
inline constexpr const char* version_string = "1.0.0";

} // namespace uhd

#endif // UHD_COMMON_VERSION_HPP
