// Environment-variable configuration for bench harnesses.
//
// Bench binaries run argument-less (so `for b in build/bench/*; do $b; done`
// works); workload sizes can be scaled with UHD_* environment variables,
// e.g. UHD_TRAIN_N=60000 UHD_ITERS=100 ./bench_table4_mnist.
#ifndef UHD_COMMON_CONFIG_HPP
#define UHD_COMMON_CONFIG_HPP

#include <cstdint>
#include <string>

namespace uhd {

/// Integer environment override: returns `fallback` when `name` is unset or
/// unparseable; throws uhd::error when set to a negative value.
[[nodiscard]] std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Floating-point environment override.
[[nodiscard]] double env_double(const std::string& name, double fallback);

/// String environment override.
[[nodiscard]] std::string env_string(const std::string& name, const std::string& fallback);

/// Boolean environment override ("1"/"true"/"on" vs "0"/"false"/"off").
[[nodiscard]] bool env_bool(const std::string& name, bool fallback);

} // namespace uhd

#endif // UHD_COMMON_CONFIG_HPP
