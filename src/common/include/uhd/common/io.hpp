// Minimal binary serialization helpers (little-endian, versioned headers)
// used for model save/load and dataset caching.
#ifndef UHD_COMMON_IO_HPP
#define UHD_COMMON_IO_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace uhd::io {

/// Write a 32-bit magic + version header.
void write_header(std::ostream& os, std::uint32_t magic, std::uint32_t version);

/// Read and validate a header; throws uhd::error on magic mismatch or if the
/// stored version exceeds `max_version`. Returns the stored version.
std::uint32_t read_header(std::istream& is, std::uint32_t magic, std::uint32_t max_version);

void write_u32(std::ostream& os, std::uint32_t v);
void write_u64(std::ostream& os, std::uint64_t v);
void write_i64(std::ostream& os, std::int64_t v);
void write_f64(std::ostream& os, double v);
void write_string(std::ostream& os, const std::string& s);

std::uint32_t read_u32(std::istream& is);
std::uint64_t read_u64(std::istream& is);
std::int64_t read_i64(std::istream& is);
double read_f64(std::istream& is);
std::string read_string(std::istream& is);

/// Write a span of trivially-copyable elements (length-prefixed), straight
/// from the caller's storage — no intermediate copy.
template <typename T>
void write_pod_span(std::ostream& os, std::span<const T> v);

/// Write a vector of trivially-copyable elements (length-prefixed).
template <typename T>
void write_pod_vector(std::ostream& os, const std::vector<T>& v);

/// Read a vector of trivially-copyable elements written by write_pod_vector.
template <typename T>
std::vector<T> read_pod_vector(std::istream& is);

// --- implementation of templates -----------------------------------------

void write_bytes(std::ostream& os, const void* data, std::size_t n);
void read_bytes(std::istream& is, void* data, std::size_t n);

template <typename T>
void write_pod_span(std::ostream& os, std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>, "POD serialization only");
    write_u64(os, static_cast<std::uint64_t>(v.size()));
    if (!v.empty()) write_bytes(os, v.data(), v.size() * sizeof(T));
}

template <typename T>
void write_pod_vector(std::ostream& os, const std::vector<T>& v) {
    write_pod_span(os, std::span<const T>(v.data(), v.size()));
}

template <typename T>
std::vector<T> read_pod_vector(std::istream& is) {
    static_assert(std::is_trivially_copyable_v<T>, "POD serialization only");
    const std::uint64_t n = read_u64(is);
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n != 0) read_bytes(is, v.data(), v.size() * sizeof(T));
    return v;
}

} // namespace uhd::io

#endif // UHD_COMMON_IO_HPP
