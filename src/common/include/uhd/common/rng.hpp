// Deterministic pseudo-random number generation used across the library.
//
// The baseline HDC system in the paper relies on pseudo-randomness for
// position/level hypervector generation; results must be reproducible from a
// seed, so we implement small, well-known generators (SplitMix64 for seeding
// and xoshiro256** for bulk generation) instead of depending on the
// implementation-defined std::default_random_engine.
#ifndef UHD_COMMON_RNG_HPP
#define UHD_COMMON_RNG_HPP

#include <array>
#include <cstdint>
#include <limits>

namespace uhd {

/// SplitMix64: tiny, fast, passes BigCrush when used as a 64-bit stream.
/// Used for seed expansion and cheap per-index hashing.
class splitmix64 {
public:
    explicit constexpr splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

    /// Next 64 pseudo-random bits.
    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Stateless hash of a 64-bit index to 64 bits (one SplitMix64 step).
[[nodiscard]] constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
    return splitmix64(x).next();
}

/// xoshiro256**: general-purpose 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it can drive <random> adaptors.
class xoshiro256ss {
public:
    using result_type = std::uint64_t;

    explicit xoshiro256ss(std::uint64_t seed) noexcept {
        splitmix64 sm(seed);
        for (auto& word : state_) word = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept { return next(); }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 bits of precision.
    double next_unit() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound) without modulo bias (rejection method).
    std::uint64_t next_below(std::uint64_t bound) noexcept {
        if (bound == 0) return 0;
        // Reject draws below 2^64 mod bound so the remainder is unbiased.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t x = next();
            if (x >= threshold) return x % bound;
        }
    }

    /// Fair coin flip.
    bool next_bool() noexcept { return (next() >> 63) != 0; }

    /// Raw state snapshot — a rematerialization restart point.
    [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept { return state_; }

    /// Rebuild a generator positioned at a captured snapshot.
    [[nodiscard]] static xoshiro256ss from_state(
        const std::array<std::uint64_t, 4>& state) noexcept {
        xoshiro256ss g(0);
        g.state_ = state;
        return g;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace uhd

#endif // UHD_COMMON_RNG_HPP
