// Fixed-size worker pool with a deterministic parallel-for.
//
// The pool exists for the batch engine: encode_batch / predict_batch /
// evaluate split their image ranges into contiguous chunks and each chunk
// writes only its own output slots, so results are bit-identical for every
// thread count (including 0 workers = inline execution). Tests enforce
// that determinism.
//
// The shared() pool is sized from UHD_THREADS when set, otherwise from
// std::thread::hardware_concurrency().
#ifndef UHD_COMMON_THREAD_POOL_HPP
#define UHD_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uhd {

/// Worker pool running [begin, end) range chunks.
class thread_pool {
public:
    /// Start `threads` workers; 0 means hardware_concurrency (min 1).
    explicit thread_pool(std::size_t threads = 0);

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    ~thread_pool();

    /// Number of worker threads.
    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Run fn(begin, end) over a partition of [0, n) across the workers and
    /// the calling thread; returns when every chunk is done. fn must be
    /// safe to call concurrently on disjoint ranges. The first exception
    /// thrown by any chunk is rethrown on the caller.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t, std::size_t)>& fn);

    /// Process-wide pool (UHD_THREADS override, else hardware concurrency).
    [[nodiscard]] static thread_pool& shared();

    /// Worker count requested through UHD_THREADS: unset, unparsable,
    /// negative, or absurdly large (> 4096) values fall back to 0
    /// (= hardware concurrency). Exposed so the clamping is testable
    /// without touching the shared() singleton.
    [[nodiscard]] static std::size_t env_threads() noexcept;

    /// Optional-pool dispatch shared by the batch APIs: run on the pool
    /// when one is given, inline on the caller otherwise. Results are
    /// identical either way (see parallel_for).
    static void maybe_parallel_for(thread_pool* pool, std::size_t n,
                                   const std::function<void(std::size_t, std::size_t)>& fn) {
        if (pool != nullptr) {
            pool->parallel_for(n, fn);
        } else if (n != 0) {
            fn(0, n);
        }
    }

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

} // namespace uhd

#endif // UHD_COMMON_THREAD_POOL_HPP
