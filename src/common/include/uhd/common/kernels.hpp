// uhd::kernels — the runtime-dispatched kernel registry behind every hot
// path of the software datapath.
//
// The build compiles one translation unit per backend:
//   * scalar — the pinned byte-at-a-time oracles (kernels_scalar.cpp); the
//     permanent reference backend every other backend is measured and
//     tested against.
//   * swar   — portable 64-bit word-parallel kernels (kernels_swar.cpp);
//     admissible on any 64-bit machine, the generic-build fast default.
//   * avx2   — 256-bit kernels (kernels_avx2.cpp, compiled with a per-file
//     -mavx2 so generic builds still carry it); admissible only when the
//     runtime cpu_features probe reports CPU *and* OS AVX2 support.
//   * avx512 — 512-bit kernels (kernels_avx512.cpp, per-file -mavx512f
//     -mavx512bw); admissible only when the probe reports AVX-512F +
//     AVX-512BW *and* the OS saves ZMM state (XCR0). Carries two popcount
//     flavors (nibble-LUT and VPOPCNTDQ) and picks per process at runtime.
//
// One table is selected per process on first use: the widest admissible
// backend, overridable with UHD_BACKEND=auto|scalar|swar|avx2|avx512. An
// override naming an unknown backend, or forcing one the probe rejects,
// throws a uhd::error with a diagnostic listing the admissible choices —
// it never silently falls back and never executes unsupported
// instructions.
//
// Every backend is bit-exact against the scalar reference for the integer
// kernels, and runs the identical fixed-lane-order algorithm for the
// double reductions, so results are bit-identical across backends; the
// per-backend equivalence suites (tests/test_simd_kernels.cpp,
// tests/test_block_kernels.cpp, tests/test_backend_dispatch.cpp) enforce
// this.
#ifndef UHD_COMMON_KERNELS_HPP
#define UHD_COMMON_KERNELS_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "uhd/common/cpu_features.hpp"

namespace uhd::kernels {

/// argmin + runner-up of a prefix-window Hamming scan.
struct argmin2_result {
    std::size_t index;       ///< nearest row (lowest index on ties)
    std::uint64_t distance;  ///< winning distance over the window
    std::uint64_t runner_up; ///< second-best distance (all-ones when n_rows < 2)
};

/// Number of 64-bit words needed for `n` packed sign bits.
[[nodiscard]] constexpr std::size_t sign_words(std::size_t n) noexcept {
    return (n + 63) / 64;
}

/// One backend: a name, its admissibility predicate, and the full hot-path
/// kernel set as plain function pointers. Tables are immutable process-wide
/// constants defined by the per-ISA translation units.
struct kernel_table {
    /// Backend name as accepted by UHD_BACKEND ("scalar", "swar", "avx2",
    /// "avx512").
    const char* name;

    /// True when this backend may run on the probed CPU.
    bool (*supported)(const cpu_features& features);

    /// geq16[d] += (q >= thresholds[d]) for d in [0, dim). `max_value`
    /// upper-bounds q and every threshold (backends whose wide path has a
    /// value precondition fall back internally when it is exceeded).
    void (*geq_accumulate)(std::uint8_t q, const std::uint8_t* thresholds,
                           std::size_t dim, std::uint16_t* geq16,
                           std::uint8_t max_value);

    /// out[d] += sum_{p<npix} (q[p] >= bank[p*stride + d]) — the whole
    /// encode inner double-loop (same `max_value` contract).
    void (*geq_block_accumulate)(const std::uint8_t* q, std::size_t npix,
                                 const std::uint8_t* bank, std::size_t stride,
                                 std::size_t dim, std::int32_t* out,
                                 std::uint8_t max_value);

    /// Rematerializing encode tile: out[j] += sum_{p<npix}
    /// ((sobol_fraction_p(d_begin + j) ^ shifts[p]) <= bounds[p]) for j in
    /// [0, dim_count), where sobol_fraction_p(d) is the d-th 32-bit Sobol
    /// fraction of pixel p's direction numbers (`dir_words` u32 words at
    /// directions[p * dir_words], v_1 first). The caller folds the
    /// quantization comparison into `bounds` (largest raw fraction whose
    /// quantized value the pixel's intensity still reaches) and the
    /// per-pixel scramble into `shifts`, so one unsigned compare per
    /// (pixel, dim) replaces a stored-bank byte load. Pure integer
    /// accumulation: any dim tiling over [d_begin, d_begin + dim_count) is
    /// bit-identical to the stored-bank geq_block_accumulate.
    void (*geq_rematerialize_accumulate)(const std::uint32_t* directions,
                                         std::size_t dir_words,
                                         const std::uint32_t* shifts,
                                         const std::uint32_t* bounds,
                                         std::size_t npix, std::uint64_t d_begin,
                                         std::size_t dim_count, std::int32_t* out);

    /// Pack the sign bits of an int32 span (bit 1 = v[d] < 0) into
    /// ceil(n/64) words, zeroing the tail bits beyond n.
    void (*sign_binarize)(const std::int32_t* v, std::size_t n,
                          std::uint64_t* words);

    /// popcount(a XOR b) over n packed words (Hamming distance).
    std::uint64_t (*hamming_distance_words)(const std::uint64_t* a,
                                            const std::uint64_t* b, std::size_t n);

    /// Nearest row of a row-major packed memory (first-wins on ties).
    std::size_t (*hamming_argmin)(const std::uint64_t* query,
                                  const std::uint64_t* rows, std::size_t words,
                                  std::size_t n_rows,
                                  std::uint64_t* best_distance_out);

    /// argmin + runner-up over the first `prefix_words` of each row.
    argmin2_result (*hamming_argmin2_prefix)(const std::uint64_t* query,
                                             const std::uint64_t* rows,
                                             std::size_t row_words,
                                             std::size_t prefix_words,
                                             std::size_t n_rows);

    /// distances[r] += popcount(query ^ row_r) over words [from_word,
    /// to_word) — the incremental window of the early-exit cascade.
    void (*hamming_extend_words)(const std::uint64_t* query,
                                 const std::uint64_t* rows, std::size_t row_words,
                                 std::size_t from_word, std::size_t to_word,
                                 std::size_t n_rows, std::uint64_t* distances);

    /// Query-block window extension — the bitwise-GEMM tile kernel:
    /// distances[q * n_rows + r] += popcount(query_q ^ row_r) over words
    /// [from_word, to_word), for every q in [0, n_queries) and r in
    /// [0, n_rows). `queries` holds n_queries packed queries back-to-back,
    /// `query_words` words each (>= to_word). Wide backends register-block
    /// the (query, row) plane so each class row is streamed once per query
    /// tile instead of once per query; the accumulated distances are exact
    /// integers, bit-identical to per-query hamming_extend_words calls.
    void (*hamming_block_extend)(const std::uint64_t* queries,
                                 std::size_t query_words, std::size_t n_queries,
                                 const std::uint64_t* rows, std::size_t row_words,
                                 std::size_t from_word, std::size_t to_word,
                                 std::size_t n_rows, std::uint64_t* distances);

    /// Fused query-block argmin + runner-up over the first `prefix_words`
    /// of every row: results[q] is exactly hamming_argmin2_prefix(query_q)
    /// (first-wins ties, all-ones runner-up when n_rows < 2), computed with
    /// the same row-streaming tile as hamming_block_extend but without
    /// materializing the queries x rows distance matrix.
    void (*hamming_block_argmin2_prefix)(const std::uint64_t* queries,
                                         std::size_t query_words,
                                         std::size_t n_queries,
                                         const std::uint64_t* rows,
                                         std::size_t row_words,
                                         std::size_t prefix_words,
                                         std::size_t n_rows,
                                         argmin2_result* results);

    /// Sum of squares of an int32 span (fixed 4-lane double accumulation).
    double (*sum_squares_i32)(const std::int32_t* v, std::size_t n);

    /// Dot product of two int32 spans (fixed 4-lane double accumulation).
    double (*dot_i32)(const std::int32_t* a, const std::int32_t* b, std::size_t n);

    /// Sum of v[i] over the set bits of a packed mask covering n values.
    std::int64_t (*masked_sum_i32)(const std::uint64_t* mask, const std::int32_t* v,
                                   std::size_t n);
};

/// Every backend compiled into this binary, widest-last (scalar, swar, and
/// avx2 when the toolchain could build it).
[[nodiscard]] std::span<const kernel_table* const> compiled_backends() noexcept;

/// Compiled-in backend by name; nullptr when unknown.
[[nodiscard]] const kernel_table* find_backend(std::string_view name) noexcept;

/// The compiled backends the cpu() probe admits on this machine, in
/// registry (widest-last) order — always at least scalar and swar. The
/// one source of truth for "which backends may run here": the per-backend
/// test and bench sweeps iterate over this.
[[nodiscard]] std::span<const kernel_table* const> admissible_backends();

/// Resolve a backend request against a probe. "auto" (or empty) picks the
/// widest admissible compiled backend; a concrete name must be both
/// compiled in and admissible. Throws uhd::error with a diagnostic listing
/// the valid names otherwise.
[[nodiscard]] const kernel_table& select_backend(std::string_view request,
                                                 const cpu_features& features);

/// The process-wide active backend: selected on first call from the
/// UHD_BACKEND environment override (default "auto") and the cpu()
/// probe, then cached. Throws on an invalid override — a typo'd or
/// unsupported UHD_BACKEND fails the first kernel call loudly instead of
/// silently computing on the wrong engine.
[[nodiscard]] const kernel_table& active();

/// Re-select the active backend (tests / bench harnesses that sweep
/// backends in-process). Same validation as select_backend.
void force_backend(std::string_view request);

/// The UHD_BACKEND override in effect ("" when unset).
[[nodiscard]] std::string_view backend_override() noexcept;

// --- dispatched entry points ----------------------------------------------
//
// Thin wrappers over active() so call sites read like plain functions; the
// cost per call is one atomic load plus an indirect call, amortized over
// whole-image / whole-row kernel bodies.

inline void geq_accumulate(std::uint8_t q, const std::uint8_t* thresholds,
                           std::size_t dim, std::uint16_t* geq16,
                           std::uint8_t max_value) {
    active().geq_accumulate(q, thresholds, dim, geq16, max_value);
}

inline void geq_block_accumulate(const std::uint8_t* q, std::size_t npix,
                                 const std::uint8_t* bank, std::size_t stride,
                                 std::size_t dim, std::int32_t* out,
                                 std::uint8_t max_value) {
    active().geq_block_accumulate(q, npix, bank, stride, dim, out, max_value);
}

inline void geq_rematerialize_accumulate(const std::uint32_t* directions,
                                         std::size_t dir_words,
                                         const std::uint32_t* shifts,
                                         const std::uint32_t* bounds,
                                         std::size_t npix, std::uint64_t d_begin,
                                         std::size_t dim_count, std::int32_t* out) {
    active().geq_rematerialize_accumulate(directions, dir_words, shifts, bounds,
                                          npix, d_begin, dim_count, out);
}

inline void sign_binarize(const std::int32_t* v, std::size_t n,
                          std::uint64_t* words) {
    active().sign_binarize(v, n, words);
}

[[nodiscard]] inline std::uint64_t hamming_distance_words(const std::uint64_t* a,
                                                          const std::uint64_t* b,
                                                          std::size_t n) {
    return active().hamming_distance_words(a, b, n);
}

[[nodiscard]] inline std::size_t hamming_argmin(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t words,
    std::size_t n_rows, std::uint64_t* best_distance_out = nullptr) {
    return active().hamming_argmin(query, rows, words, n_rows, best_distance_out);
}

[[nodiscard]] inline argmin2_result hamming_argmin2_prefix(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t row_words,
    std::size_t prefix_words, std::size_t n_rows) {
    return active().hamming_argmin2_prefix(query, rows, row_words, prefix_words,
                                           n_rows);
}

inline void hamming_extend_words(const std::uint64_t* query,
                                 const std::uint64_t* rows, std::size_t row_words,
                                 std::size_t from_word, std::size_t to_word,
                                 std::size_t n_rows, std::uint64_t* distances) {
    active().hamming_extend_words(query, rows, row_words, from_word, to_word,
                                  n_rows, distances);
}

inline void hamming_block_extend(const std::uint64_t* queries,
                                 std::size_t query_words, std::size_t n_queries,
                                 const std::uint64_t* rows, std::size_t row_words,
                                 std::size_t from_word, std::size_t to_word,
                                 std::size_t n_rows, std::uint64_t* distances) {
    active().hamming_block_extend(queries, query_words, n_queries, rows, row_words,
                                  from_word, to_word, n_rows, distances);
}

inline void hamming_block_argmin2_prefix(
    const std::uint64_t* queries, std::size_t query_words, std::size_t n_queries,
    const std::uint64_t* rows, std::size_t row_words, std::size_t prefix_words,
    std::size_t n_rows, argmin2_result* results) {
    active().hamming_block_argmin2_prefix(queries, query_words, n_queries, rows,
                                          row_words, prefix_words, n_rows, results);
}

[[nodiscard]] inline double sum_squares_i32(const std::int32_t* v, std::size_t n) {
    return active().sum_squares_i32(v, n);
}

[[nodiscard]] inline double dot_i32(const std::int32_t* a, const std::int32_t* b,
                                    std::size_t n) {
    return active().dot_i32(a, b, n);
}

[[nodiscard]] inline std::int64_t masked_sum_i32(const std::uint64_t* mask,
                                                 const std::int32_t* v,
                                                 std::size_t n) {
    return active().masked_sum_i32(mask, v, n);
}

/// argmin + runner-up over a u64 distance array (first-wins on ties; the
/// runner-up may equal the winner when two rows tie). O(n_rows) scalar
/// reduction — deliberately not dispatched.
[[nodiscard]] inline argmin2_result argmin2_u64(const std::uint64_t* distances,
                                                std::size_t n_rows) noexcept {
    argmin2_result r{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    for (std::size_t i = 0; i < n_rows; ++i) {
        const std::uint64_t d = distances[i];
        if (d < r.distance) {
            r.runner_up = r.distance;
            r.distance = d;
            r.index = i;
        } else if (d < r.runner_up) {
            r.runner_up = d;
        }
    }
    return r;
}

} // namespace uhd::kernels

#endif // UHD_COMMON_KERNELS_HPP
