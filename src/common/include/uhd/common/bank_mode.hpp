// Threshold/item-memory storage policy shared by the uHD encoder
// (quantized Sobol bank) and the baseline encoder (position/level item
// memories).
//
// stored        — materialize the full table once at construction and
//                 stream it through the encode kernels (the original
//                 datapath; fastest when the table fits in cache).
// rematerialize — keep only O(1) generator state per pixel/row (seeds,
//                 direction numbers, LFSR parameters) and regenerate the
//                 table values on the fly inside the encode kernels, in
//                 L1-resident tiles, per Schmuck et al.'s on-the-fly base
//                 hypervector generation. Bit-identical to stored mode by
//                 construction; collapses encoder state from O(pixels x D)
//                 to O(pixels).
#ifndef UHD_COMMON_BANK_MODE_HPP
#define UHD_COMMON_BANK_MODE_HPP

namespace uhd {

/// How an encoder holds its generated threshold/item-memory tables.
enum class bank_mode {
    stored,        ///< full table in memory, streamed by the kernels
    rematerialize, ///< O(1) seeds per row; values regenerated on the fly
};

} // namespace uhd

#endif // UHD_COMMON_BANK_MODE_HPP
