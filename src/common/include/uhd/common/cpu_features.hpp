// Runtime CPU feature probe for the kernel dispatch layer (uhd::kernels).
//
// The build carries every backend the compiler can emit (the AVX2
// translation unit is compiled with a per-file -mavx2 even in generic
// builds); which one actually runs is decided once per process from this
// probe. On x86 the probe is cpuid leaf 1 / leaf 7 plus XGETBV: AVX2
// kernels are admissible only when the CPU advertises AVX2 *and* the OS
// has enabled YMM state saving (OSXSAVE + XCR0 bits 1-2) — advertising
// the instruction set without OS support is exactly the configuration
// that faults at the first vzeroupper-less context switch.
#ifndef UHD_COMMON_CPU_FEATURES_HPP
#define UHD_COMMON_CPU_FEATURES_HPP

#include <string>

namespace uhd {

/// Result of the one-shot runtime CPU probe.
struct cpu_features {
    bool x86 = false;      ///< probed on an x86/x86-64 build
    bool sse2 = false;     ///< cpuid.1:EDX[26] (baseline on x86-64)
    bool popcnt = false;   ///< cpuid.1:ECX[23]
    bool avx = false;      ///< cpuid.1:ECX[28]
    bool osxsave = false;  ///< cpuid.1:ECX[27] — OS uses XSAVE/XRSTOR
    bool ymm_state = false;///< XGETBV(0) bits 1-2 — OS saves XMM+YMM state
    bool avx2 = false;     ///< cpuid.7.0:EBX[5]
    bool zmm_state = false;///< XGETBV(0) bits 5-7 (+1-2) — OS saves ZMM state
    bool avx512f = false;  ///< cpuid.7.0:EBX[16]
    bool avx512bw = false; ///< cpuid.7.0:EBX[30]
    bool avx512vpopcntdq = false; ///< cpuid.7.0:ECX[14]

    /// True when AVX2 kernels may run: CPU support plus OS YMM enablement.
    [[nodiscard]] bool avx2_usable() const noexcept {
        return avx2 && avx && osxsave && ymm_state;
    }

    /// True when the AVX-512 kernels may run: the foundation + byte/word
    /// instruction sets plus OS ZMM enablement. VPOPCNTDQ is deliberately
    /// not required — the avx512 backend selects its popcount path at
    /// runtime, so it stays admissible on F/BW-only parts.
    [[nodiscard]] bool avx512_usable() const noexcept {
        return avx512f && avx512bw && osxsave && zmm_state;
    }

    /// Space-separated probe summary, e.g. "x86-64 sse2 popcnt avx osxsave
    /// ymm avx2 zmm avx512f avx512bw"; "non-x86" on other architectures.
    [[nodiscard]] std::string to_string() const;
};

/// Fresh probe (cpuid/xgetbv on x86, all-false elsewhere). Deterministic on
/// a given machine; exposed separately from cpu() so tests can compare.
[[nodiscard]] cpu_features probe_cpu_features() noexcept;

/// The process-wide probe result (probed once, then cached).
[[nodiscard]] const cpu_features& cpu() noexcept;

} // namespace uhd

#endif // UHD_COMMON_CPU_FEATURES_HPP
