// Plain-text table printer used by the bench harnesses to emit the paper's
// tables with aligned columns.
#ifndef UHD_COMMON_TABLE_HPP
#define UHD_COMMON_TABLE_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace uhd {

/// Accumulates rows of strings and renders them as an aligned ASCII table.
class text_table {
public:
    /// Set the header row (column titles).
    void set_header(std::vector<std::string> header);

    /// Append a data row; rows may have fewer cells than the header.
    void add_row(std::vector<std::string> row);

    /// Append a horizontal rule between row groups.
    void add_rule();

    /// Render with padded columns and box-drawing rules.
    [[nodiscard]] std::string to_string() const;

    /// Number of data rows added so far (rules excluded).
    [[nodiscard]] std::size_t row_count() const noexcept;

private:
    struct row_entry {
        std::vector<std::string> cells;
        bool is_rule = false;
    };

    std::vector<std::string> header_;
    std::vector<row_entry> rows_;
};

/// Format a double with `digits` significant decimal places.
[[nodiscard]] std::string format_fixed(double value, int digits);

/// Format a double in scientific notation with `digits` decimals (e.g. 1.70e-06).
[[nodiscard]] std::string format_sci(double value, int digits);

/// Format "X.Yx" speed-up/efficiency ratios the way the paper prints them.
[[nodiscard]] std::string format_ratio(double ratio, int digits = 1);

} // namespace uhd

#endif // UHD_COMMON_TABLE_HPP
