#include "uhd/common/io.hpp"

#include <istream>
#include <ostream>

#include "uhd/common/error.hpp"

namespace uhd::io {

void write_bytes(std::ostream& os, const void* data, std::size_t n) {
    os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    UHD_REQUIRE(os.good(), "stream write failed");
}

void read_bytes(std::istream& is, void* data, std::size_t n) {
    is.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    UHD_REQUIRE(is.gcount() == static_cast<std::streamsize>(n), "stream read truncated");
}

void write_header(std::ostream& os, std::uint32_t magic, std::uint32_t version) {
    write_u32(os, magic);
    write_u32(os, version);
}

std::uint32_t read_header(std::istream& is, std::uint32_t magic, std::uint32_t max_version) {
    const std::uint32_t stored_magic = read_u32(is);
    UHD_REQUIRE(stored_magic == magic, "bad file magic");
    const std::uint32_t version = read_u32(is);
    UHD_REQUIRE(version <= max_version, "file version newer than library");
    return version;
}

void write_u32(std::ostream& os, std::uint32_t v) { write_bytes(os, &v, sizeof v); }
void write_u64(std::ostream& os, std::uint64_t v) { write_bytes(os, &v, sizeof v); }
void write_i64(std::ostream& os, std::int64_t v) { write_bytes(os, &v, sizeof v); }
void write_f64(std::ostream& os, double v) { write_bytes(os, &v, sizeof v); }

void write_string(std::ostream& os, const std::string& s) {
    write_u64(os, s.size());
    if (!s.empty()) write_bytes(os, s.data(), s.size());
}

std::uint32_t read_u32(std::istream& is) {
    std::uint32_t v{};
    read_bytes(is, &v, sizeof v);
    return v;
}

std::uint64_t read_u64(std::istream& is) {
    std::uint64_t v{};
    read_bytes(is, &v, sizeof v);
    return v;
}

std::int64_t read_i64(std::istream& is) {
    std::int64_t v{};
    read_bytes(is, &v, sizeof v);
    return v;
}

double read_f64(std::istream& is) {
    double v{};
    read_bytes(is, &v, sizeof v);
    return v;
}

std::string read_string(std::istream& is) {
    const std::uint64_t n = read_u64(is);
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n != 0) read_bytes(is, s.data(), s.size());
    return s;
}

} // namespace uhd::io
