#include "uhd/common/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "uhd/common/error.hpp"

namespace uhd {
namespace {

std::optional<std::string> getenv_str(const std::string& name) {
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr) return std::nullopt;
    return std::string(raw);
}

} // namespace

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
    const auto raw = getenv_str(name);
    if (!raw || raw->empty()) return fallback;
    try {
        const std::int64_t value = std::stoll(*raw);
        UHD_REQUIRE(value >= 0, name + " must be non-negative");
        return value;
    } catch (const uhd::error&) {
        throw;
    } catch (const std::exception&) {
        return fallback;
    }
}

double env_double(const std::string& name, double fallback) {
    const auto raw = getenv_str(name);
    if (!raw || raw->empty()) return fallback;
    try {
        return std::stod(*raw);
    } catch (const std::exception&) {
        return fallback;
    }
}

std::string env_string(const std::string& name, const std::string& fallback) {
    const auto raw = getenv_str(name);
    return raw ? *raw : fallback;
}

bool env_bool(const std::string& name, bool fallback) {
    const auto raw = getenv_str(name);
    if (!raw) return fallback;
    std::string value = *raw;
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (value == "1" || value == "true" || value == "on" || value == "yes") return true;
    if (value == "0" || value == "false" || value == "off" || value == "no") return false;
    return fallback;
}

} // namespace uhd
