// Backend registry and process-wide dispatch for uhd::kernels.
//
// Selection happens once, on the first dispatched kernel call (or an
// explicit force_backend): resolve UHD_BACKEND (default "auto") against
// the runtime CPU probe, cache the winning table in an atomic pointer, and
// serve every subsequent call with one acquire-load. Invalid requests —
// an unknown name, or a backend the probe rejects — throw uhd::error with
// a diagnostic that lists the compiled-in choices and the probed feature
// set, so a typo'd override fails the first kernel call loudly instead of
// silently computing on the wrong engine.
#include "uhd/common/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "kernels_detail.hpp"
#include "uhd/common/error.hpp"

namespace uhd::kernels {

namespace {

/// Compiled-in backends, widest-last; "auto" picks the last admissible one.
const kernel_table* const registry[] = {
    &detail::scalar_table(),
    &detail::swar_table(),
#ifdef UHD_KERNELS_HAVE_AVX2
    &detail::avx2_table(),
#endif
#ifdef UHD_KERNELS_HAVE_AVX512
    &detail::avx512_table(),
#endif
};

std::atomic<const kernel_table*> g_active{nullptr};

[[nodiscard]] std::string valid_names() {
    std::string names = "auto";
    for (const kernel_table* t : registry) {
        names += ", ";
        names += t->name;
    }
    return names;
}

/// The compiled-in backends a given probe admits, e.g. "scalar, swar, avx2"
/// — the actionable half of the inadmissible-backend diagnostic.
[[nodiscard]] std::string admissible_names(const cpu_features& features) {
    std::string names;
    for (const kernel_table* t : registry) {
        if (!t->supported(features)) continue;
        if (!names.empty()) names += ", ";
        names += t->name;
    }
    return names;
}

[[nodiscard]] const char* env_backend() noexcept {
    const char* value = std::getenv("UHD_BACKEND");
    return value != nullptr ? value : "";
}

} // namespace

std::span<const kernel_table* const> compiled_backends() noexcept {
    return registry;
}

const kernel_table* find_backend(std::string_view name) noexcept {
    for (const kernel_table* t : registry) {
        if (name == t->name) return t;
    }
    return nullptr;
}

std::span<const kernel_table* const> admissible_backends() {
    // Probed once: admissibility cannot change within a process.
    static const std::vector<const kernel_table*> admitted = [] {
        std::vector<const kernel_table*> out;
        for (const kernel_table* t : registry) {
            if (t->supported(cpu())) out.push_back(t);
        }
        return out;
    }();
    return admitted;
}

const kernel_table& select_backend(std::string_view request,
                                   const cpu_features& features) {
    if (request.empty() || request == "auto") {
        const kernel_table* widest = nullptr;
        for (const kernel_table* t : registry) {
            if (t->supported(features)) widest = t;
        }
        // scalar and swar are unconditionally admissible, so auto always
        // resolves; the check guards a hypothetically empty registry.
        UHD_REQUIRE(widest != nullptr, "no admissible kernel backend compiled in");
        return *widest;
    }
    const kernel_table* t = find_backend(request);
    UHD_REQUIRE(t != nullptr, "UHD_BACKEND='" + std::string(request) +
                                  "' is not a compiled-in kernel backend (valid: " +
                                  valid_names() + ")");
    UHD_REQUIRE(t->supported(features),
                "UHD_BACKEND='" + std::string(request) +
                    "' was requested but the CPU probe rejects it (probed: " +
                    features.to_string() + "; admissible backends: " +
                    admissible_names(features) +
                    "); use UHD_BACKEND=auto or an admissible backend");
    return *t;
}

const kernel_table& active() {
    const kernel_table* t = g_active.load(std::memory_order_acquire);
    if (t == nullptr) {
        const kernel_table& selected = select_backend(env_backend(), cpu());
        // First selection wins on a race; both racers resolved the same
        // environment against the same probe, so the result is identical.
        const kernel_table* expected = nullptr;
        g_active.compare_exchange_strong(expected, &selected,
                                         std::memory_order_acq_rel);
        t = g_active.load(std::memory_order_acquire);
    }
    return *t;
}

void force_backend(std::string_view request) {
    const kernel_table& selected = select_backend(request, cpu());
    g_active.store(&selected, std::memory_order_release);
}

std::string_view backend_override() noexcept { return env_backend(); }

} // namespace uhd::kernels
