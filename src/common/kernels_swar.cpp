// The SWAR backend: 64-bit word-parallel kernels with no ISA requirement
// beyond a 64-bit integer unit — the fast default for generic builds and
// non-x86 targets. The geq kernels have a value precondition (all operands
// <= 127); when a caller's max_value exceeds it, the table entry falls back
// to the portable scalar body for that call rather than miscomputing.
#include <cstdint>

#include "kernels_detail.hpp"
#include "uhd/common/simd.hpp"

namespace uhd::kernels::detail {

namespace {

bool supported(const cpu_features&) { return true; }

void geq_accumulate(std::uint8_t q, const std::uint8_t* thresholds, std::size_t dim,
                    std::uint16_t* geq16, std::uint8_t max_value) {
    if (max_value <= simd::swar_max_value) {
        simd::geq_accumulate_swar(q, thresholds, dim, geq16);
    } else {
        simd::geq_accumulate_scalar(q, thresholds, dim, geq16);
    }
}

void geq_block_accumulate(const std::uint8_t* q, std::size_t npix,
                          const std::uint8_t* bank, std::size_t stride,
                          std::size_t dim, std::int32_t* out, std::uint8_t max_value) {
    if (max_value <= simd::swar_max_value) {
        simd::geq_block_accumulate_swar(q, npix, bank, stride, dim, out);
    } else {
        simd::geq_block_accumulate_scalar(q, npix, bank, stride, dim, out);
    }
}

void geq_rematerialize_accumulate(const std::uint32_t* directions,
                                  std::size_t dir_words, const std::uint32_t* shifts,
                                  const std::uint32_t* bounds, std::size_t npix,
                                  std::uint64_t d_begin, std::size_t dim_count,
                                  std::int32_t* out) {
    // u32 compares have no SWAR packing win; the blocked portable body (16
    // independent lanes per Gray block) is the fast generic implementation.
    simd::geq_rematerialize_accumulate_portable(directions, dir_words, shifts,
                                                bounds, npix, d_begin, dim_count,
                                                out);
}

void sign_binarize(const std::int32_t* v, std::size_t n, std::uint64_t* words) {
    simd::sign_binarize_swar(v, n, words);
}

std::uint64_t hamming_distance_words(const std::uint64_t* a, const std::uint64_t* b,
                                     std::size_t n) {
    return simd::xor_popcount_words(a, b, n);
}

std::size_t hamming_argmin(const std::uint64_t* query, const std::uint64_t* rows,
                           std::size_t words, std::size_t n_rows,
                           std::uint64_t* best_distance_out) {
    return simd::hamming_argmin_words(query, rows, words, n_rows, best_distance_out);
}

argmin2_result hamming_argmin2_prefix(const std::uint64_t* query,
                                      const std::uint64_t* rows,
                                      std::size_t row_words, std::size_t prefix_words,
                                      std::size_t n_rows) {
    return simd::hamming_argmin2_prefix_words(query, rows, row_words, prefix_words,
                                              n_rows);
}

void hamming_extend_words(const std::uint64_t* query, const std::uint64_t* rows,
                          std::size_t row_words, std::size_t from_word,
                          std::size_t to_word, std::size_t n_rows,
                          std::uint64_t* distances) {
    simd::hamming_extend_words_portable(query, rows, row_words, from_word, to_word,
                                        n_rows, distances);
}

void hamming_block_extend(const std::uint64_t* queries, std::size_t query_words,
                          std::size_t n_queries, const std::uint64_t* rows,
                          std::size_t row_words, std::size_t from_word,
                          std::size_t to_word, std::size_t n_rows,
                          std::uint64_t* distances) {
    simd::hamming_block_extend_portable(queries, query_words, n_queries, rows,
                                        row_words, from_word, to_word, n_rows,
                                        distances);
}

void hamming_block_argmin2_prefix(const std::uint64_t* queries,
                                  std::size_t query_words, std::size_t n_queries,
                                  const std::uint64_t* rows, std::size_t row_words,
                                  std::size_t prefix_words, std::size_t n_rows,
                                  argmin2_result* results) {
    simd::hamming_block_argmin2_prefix_portable(queries, query_words, n_queries,
                                                rows, row_words, prefix_words,
                                                n_rows, results);
}

double sum_squares_i32(const std::int32_t* v, std::size_t n) {
    return simd::sum_squares_i32(v, n);
}

double dot_i32(const std::int32_t* a, const std::int32_t* b, std::size_t n) {
    return simd::dot_i32(a, b, n);
}

std::int64_t masked_sum_i32(const std::uint64_t* mask, const std::int32_t* v,
                            std::size_t n) {
    return simd::masked_sum_i32(mask, v, n);
}

constexpr kernel_table table{
    "swar",            supported,
    geq_accumulate,    geq_block_accumulate,
    geq_rematerialize_accumulate,
    sign_binarize,     hamming_distance_words,
    hamming_argmin,    hamming_argmin2_prefix,
    hamming_extend_words,
    hamming_block_extend,
    hamming_block_argmin2_prefix,
    sum_squares_i32,   dot_i32,
    masked_sum_i32,
};

} // namespace

const kernel_table& swar_table() noexcept { return table; }

} // namespace uhd::kernels::detail
