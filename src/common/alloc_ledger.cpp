#include "uhd/common/alloc_ledger.hpp"

#include <algorithm>

namespace uhd {

void alloc_ledger::add(std::string label, std::size_t bytes) {
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const auto& e) { return e.first == label; });
    if (it != entries_.end()) {
        it->second += bytes;
    } else {
        entries_.emplace_back(std::move(label), bytes);
    }
}

std::size_t alloc_ledger::total_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& e : entries_) total += e.second;
    return total;
}

std::size_t alloc_ledger::total_kib() const noexcept {
    return (total_bytes() + 1023) / 1024;
}

} // namespace uhd
