#include "uhd/common/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace uhd {

namespace {

#if defined(__x86_64__) || defined(__i386__)
/// XGETBV(0) — only legal once cpuid reports OSXSAVE. Inline asm instead of
/// _xgetbv() so the probe TU needs no -mxsave flag.
std::uint64_t xcr0() noexcept {
    std::uint32_t eax = 0;
    std::uint32_t edx = 0;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0u));
    return (static_cast<std::uint64_t>(edx) << 32) | eax;
}
#endif

} // namespace

cpu_features probe_cpu_features() noexcept {
    cpu_features f;
#if defined(__x86_64__) || defined(__i386__)
    f.x86 = true;
    unsigned eax = 0;
    unsigned ebx = 0;
    unsigned ecx = 0;
    unsigned edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
        f.sse2 = (edx & (1u << 26)) != 0;
        f.popcnt = (ecx & (1u << 23)) != 0;
        f.avx = (ecx & (1u << 28)) != 0;
        f.osxsave = (ecx & (1u << 27)) != 0;
    }
    if (f.osxsave) {
        const std::uint64_t state = xcr0();
        // Bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be OS-enabled.
        f.ymm_state = (state & 0x6u) == 0x6u;
        // ZMM adds bits 5 (opmask), 6 (ZMM0-15 high halves), 7 (ZMM16-31).
        f.zmm_state = (state & 0xE6u) == 0xE6u;
    }
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
        f.avx2 = (ebx & (1u << 5)) != 0;
        f.avx512f = (ebx & (1u << 16)) != 0;
        f.avx512bw = (ebx & (1u << 30)) != 0;
        f.avx512vpopcntdq = (ecx & (1u << 14)) != 0;
    }
#endif
    return f;
}

const cpu_features& cpu() noexcept {
    static const cpu_features probed = probe_cpu_features();
    return probed;
}

std::string cpu_features::to_string() const {
    if (!x86) return "non-x86";
    std::string out = "x86-64";
    if (sse2) out += " sse2";
    if (popcnt) out += " popcnt";
    if (avx) out += " avx";
    if (osxsave) out += " osxsave";
    if (ymm_state) out += " ymm";
    if (avx2) out += " avx2";
    if (zmm_state) out += " zmm";
    if (avx512f) out += " avx512f";
    if (avx512bw) out += " avx512bw";
    if (avx512vpopcntdq) out += " avx512vpopcntdq";
    return out;
}

} // namespace uhd
