// Private declarations shared by the kernel-registry translation units
// (kernels.cpp and the per-ISA backend TUs). Not installed: the public
// surface is uhd/common/kernels.hpp.
#ifndef UHD_COMMON_KERNELS_DETAIL_HPP
#define UHD_COMMON_KERNELS_DETAIL_HPP

#include "uhd/common/kernels.hpp"

namespace uhd::kernels::detail {

/// Pinned byte-at-a-time oracle backend (the permanent reference).
[[nodiscard]] const kernel_table& scalar_table() noexcept;

/// Portable 64-bit word-parallel backend (any 64-bit machine).
[[nodiscard]] const kernel_table& swar_table() noexcept;

#ifdef UHD_KERNELS_HAVE_AVX2
/// 256-bit backend (TU compiled with -mavx2; runtime-probe gated).
[[nodiscard]] const kernel_table& avx2_table() noexcept;
#endif

#ifdef UHD_KERNELS_HAVE_AVX512
/// 512-bit backend (TU compiled with -mavx512f -mavx512bw; runtime-probe
/// gated, VPOPCNTDQ selected inside the TU when the probe reports it).
[[nodiscard]] const kernel_table& avx512_table() noexcept;
#endif

} // namespace uhd::kernels::detail

#endif // UHD_COMMON_KERNELS_DETAIL_HPP
