// The AVX2 backend. This translation unit is compiled with a per-file
// -mavx2 (see src/CMakeLists.txt) so a generic build — no -march=native,
// no global -mavx2 — still carries these kernels; whether they run is
// decided by the runtime cpu_features probe (CPU AVX2 + OS YMM state).
//
// The TU is deliberately hermetic: every helper is a TU-local static in an
// anonymous namespace, and it does not include uhd/common/simd.hpp. A
// header-inline function odr-used here would be emitted under -mavx2 as a
// COMDAT candidate, and the linker is free to pick that copy for the whole
// program — which would execute AVX2 code on machines the probe rejected.
// Tail loops and the shared 4-lane double-accumulation algorithm are
// therefore (re)stated locally; the dot/sum kernels run the *identical*
// fixed-lane-order algorithm as the portable bodies, so their results are
// bit-identical across backends (IEEE semantics are preserved — -mavx2
// does not license FP reassociation).
#ifdef __AVX2__

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "kernels_detail.hpp"

namespace uhd::kernels::detail {

namespace {

bool supported(const cpu_features& features) { return features.avx2_usable(); }

// --- scalar tails (TU-local copies) ---------------------------------------

void geq_tail(std::uint8_t q, const std::uint8_t* thresholds, std::size_t dim,
              std::uint16_t* geq16) {
    for (std::size_t d = 0; d < dim; ++d) {
        geq16[d] = static_cast<std::uint16_t>(geq16[d] + (q >= thresholds[d]));
    }
}

// --- threshold compare-accumulate -----------------------------------------

/// 32 thresholds per step, any byte values. The unsigned comparison is
/// max_epu8(q, x) == q; the 0xFF/0x00 byte mask sign-extends to -1/0 in u16
/// lanes, so subtracting it adds the comparison result.
void geq_accumulate(std::uint8_t q, const std::uint8_t* thresholds, std::size_t dim,
                    std::uint16_t* geq16, std::uint8_t /*max_value*/) {
    const __m256i vq = _mm256_set1_epi8(static_cast<char>(q));
    std::size_t d = 0;
    for (; d + 32 <= dim; d += 32) {
        const __m256i row =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(thresholds + d));
        const __m256i mask = _mm256_cmpeq_epi8(_mm256_max_epu8(vq, row), vq);
        const __m256i lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(mask));
        const __m256i hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(mask, 1));
        __m256i* acc = reinterpret_cast<__m256i*>(geq16 + d);
        _mm256_storeu_si256(acc, _mm256_sub_epi16(_mm256_loadu_si256(acc), lo));
        __m256i* acc2 = reinterpret_cast<__m256i*>(geq16 + d + 16);
        _mm256_storeu_si256(acc2, _mm256_sub_epi16(_mm256_loadu_si256(acc2), hi));
    }
    geq_tail(q, thresholds + d, dim - d, geq16 + d);
}

/// Block kernel: 128-dimension tiles held in four ymm registers of u8
/// counters. Per pixel and 32 dimensions the loop is one load, an unsigned
/// max+compare, and a byte subtract (the 0xFF mask adds 1) — no
/// accumulator memory traffic until the every-255-pixel flush. Dimension
/// tails fall back to the u16 row kernel above, flushed every 65535 pixels.
void geq_block_accumulate(const std::uint8_t* q, std::size_t npix,
                          const std::uint8_t* bank, std::size_t stride,
                          std::size_t dim, std::int32_t* out,
                          std::uint8_t max_value) {
    constexpr std::size_t tile_dims = 128;
    const auto flush32 = [](__m256i counters, std::int32_t* dst) {
        alignas(32) std::uint8_t lanes[32];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), counters);
        for (int i = 0; i < 32; ++i) dst[i] += lanes[i];
    };
    std::size_t d = 0;
    for (; d + tile_dims <= dim; d += tile_dims) {
        __m256i c0 = _mm256_setzero_si256();
        __m256i c1 = _mm256_setzero_si256();
        __m256i c2 = _mm256_setzero_si256();
        __m256i c3 = _mm256_setzero_si256();
        std::size_t pixels_in_tile = 0;
        const auto flush = [&] {
            flush32(c0, out + d);
            flush32(c1, out + d + 32);
            flush32(c2, out + d + 64);
            flush32(c3, out + d + 96);
            c0 = c1 = c2 = c3 = _mm256_setzero_si256();
            pixels_in_tile = 0;
        };
        for (std::size_t p = 0; p < npix; ++p) {
            const __m256i vq = _mm256_set1_epi8(static_cast<char>(q[p]));
            const std::uint8_t* row = bank + p * stride + d;
            const auto step = [&](const std::uint8_t* src, __m256i counters) {
                const __m256i x =
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
                const __m256i mask = _mm256_cmpeq_epi8(_mm256_max_epu8(vq, x), vq);
                return _mm256_sub_epi8(counters, mask);
            };
            c0 = step(row, c0);
            c1 = step(row + 32, c1);
            c2 = step(row + 64, c2);
            c3 = step(row + 96, c3);
            if (++pixels_in_tile == 255) flush();
        }
        if (pixels_in_tile != 0) flush();
    }
    if (d < dim) {
        // Row-kernel fallback over the remaining dimensions with u16
        // counters, flushed before a lane can overflow.
        const std::size_t tail_dim = dim - d;
        std::uint16_t tile16[tile_dims]; // tail_dim < 128
        for (std::size_t i = 0; i < tail_dim; ++i) tile16[i] = 0;
        std::size_t pixels_in_tile = 0;
        const auto flush16 = [&] {
            for (std::size_t i = 0; i < tail_dim; ++i) out[d + i] += tile16[i];
            for (std::size_t i = 0; i < tail_dim; ++i) tile16[i] = 0;
            pixels_in_tile = 0;
        };
        for (std::size_t p = 0; p < npix; ++p) {
            geq_accumulate(q[p], bank + p * stride + d, tail_dim, tile16, max_value);
            if (++pixels_in_tile == 65535) flush16();
        }
        if (pixels_in_tile != 0) flush16();
    }
}

// --- rematerializing encode kernel ----------------------------------------

/// Gray-code 16-blocks as two 8-lane vectors: the broadcast base state is
/// XORed with the per-pixel delta table (gray(16m + k) = gray(16m) ^
/// gray(k)), the unsigned compare against the pixel's bound is
/// min_epu32 + cmpeq, and the -1/0 lane mask subtracts as +1/0 into the
/// int32 out tile. Unaligned head/tail run the serial Gray-code recurrence
/// — pure integer accumulation, bit-identical to the scalar reference.
void geq_rematerialize_accumulate(const std::uint32_t* directions,
                                  std::size_t dir_words, const std::uint32_t* shifts,
                                  const std::uint32_t* bounds, std::size_t npix,
                                  std::uint64_t d_begin, std::size_t dim_count,
                                  std::int32_t* out) {
    for (std::size_t p = 0; p < npix; ++p) {
        const std::uint32_t* v = directions + p * dir_words;
        std::uint32_t state = shifts[p];
        for (std::uint64_t g = d_begin ^ (d_begin >> 1); g != 0; g &= g - 1) {
            state ^= v[std::countr_zero(g)];
        }
        const std::uint32_t bound = bounds[p];
        std::uint64_t index = d_begin;
        const std::uint64_t end = d_begin + dim_count;
        std::size_t j = 0;
        if (dir_words < 5) {
            // Dimension too small for 16-blocks (delta table and block
            // stepping need v[0..4]); plain serial stepping.
            for (; index < end; ++index, ++j) {
                out[j] += static_cast<std::int32_t>(state <= bound);
                state ^= v[std::countr_zero(index + 1)];
            }
            continue;
        }
        for (; index < end && (index & 15) != 0; ++index, ++j) {
            out[j] += static_cast<std::int32_t>(state <= bound);
            state ^= v[std::countr_zero(index + 1)];
        }
        alignas(32) std::uint32_t delta[16];
        delta[0] = 0;
        for (unsigned k = 1; k < 16; ++k) {
            delta[k] = delta[k - 1] ^ v[std::countr_zero(k)];
        }
        const __m256i dlo = _mm256_load_si256(reinterpret_cast<const __m256i*>(delta));
        const __m256i dhi =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(delta + 8));
        const __m256i vb = _mm256_set1_epi32(static_cast<int>(bound));
        for (; index + 16 <= end; index += 16, j += 16) {
            const __m256i base = _mm256_set1_epi32(static_cast<int>(state));
            const __m256i x0 = _mm256_xor_si256(base, dlo);
            const __m256i x1 = _mm256_xor_si256(base, dhi);
            const __m256i le0 = _mm256_cmpeq_epi32(_mm256_min_epu32(x0, vb), x0);
            const __m256i le1 = _mm256_cmpeq_epi32(_mm256_min_epu32(x1, vb), x1);
            __m256i* o0 = reinterpret_cast<__m256i*>(out + j);
            __m256i* o1 = reinterpret_cast<__m256i*>(out + j + 8);
            _mm256_storeu_si256(o0, _mm256_sub_epi32(_mm256_loadu_si256(o0), le0));
            _mm256_storeu_si256(o1, _mm256_sub_epi32(_mm256_loadu_si256(o1), le1));
            // Block step 16m -> 16(m+1): gray difference bits {3, ctz(m+1)+4}.
            state ^= v[3] ^ v[std::countr_zero((index >> 4) + 1) + 4];
        }
        for (; index < end; ++index, ++j) {
            out[j] += static_cast<std::int32_t>(state <= bound);
            state ^= v[std::countr_zero(index + 1)];
        }
    }
}

// --- sign binarize --------------------------------------------------------

/// movemask over eight int32 lanes yields eight sign bits per load, so one
/// output word is eight loads + shifts.
void sign_binarize(const std::int32_t* v, std::size_t n, std::uint64_t* words) {
    std::size_t d = 0;
    std::size_t w = 0;
    for (; d + 64 <= n; d += 64, ++w) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; i < 8; ++i) {
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(v + d + 8 * i));
            const auto mask = static_cast<std::uint32_t>(
                _mm256_movemask_ps(_mm256_castsi256_ps(x)));
            bits |= static_cast<std::uint64_t>(mask) << (8 * i);
        }
        words[w] = bits;
    }
    if (d < n) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; d + i < n; ++i) {
            if (v[d + i] < 0) bits |= std::uint64_t{1} << i;
        }
        words[w] = bits;
    }
}

// --- XOR-popcount reductions ----------------------------------------------

/// popcount(a XOR b) with the pshufb nibble-LUT popcount, 4 words (256
/// bits) per step. Bit-exact with the portable word loop.
std::uint64_t hamming_distance_words(const std::uint64_t* a, const std::uint64_t* b,
                                     std::size_t n) {
    const __m256i low_nibble = _mm256_set1_epi8(0x0F);
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2,
                         1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
        const __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(x, low_nibble));
        const __m256i hi = _mm256_shuffle_epi8(
            lut, _mm256_and_si256(_mm256_srli_epi32(x, 4), low_nibble));
        // Per-byte counts <= 16; sad_epu8 folds them into four u64 lanes.
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256()));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i) total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
    return total;
}

std::size_t hamming_argmin(const std::uint64_t* query, const std::uint64_t* rows,
                           std::size_t words, std::size_t n_rows,
                           std::uint64_t* best_distance_out) {
    std::size_t best = 0;
    std::uint64_t best_distance = ~std::uint64_t{0};
    for (std::size_t r = 0; r < n_rows; ++r) {
        const std::uint64_t distance =
            hamming_distance_words(query, rows + r * words, words);
        if (distance < best_distance) {
            best_distance = distance;
            best = r;
        }
    }
    if (best_distance_out != nullptr) *best_distance_out = best_distance;
    return best;
}

argmin2_result hamming_argmin2_prefix(const std::uint64_t* query,
                                      const std::uint64_t* rows,
                                      std::size_t row_words, std::size_t prefix_words,
                                      std::size_t n_rows) {
    argmin2_result r{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    for (std::size_t row = 0; row < n_rows; ++row) {
        const std::uint64_t distance =
            hamming_distance_words(query, rows + row * row_words, prefix_words);
        if (distance < r.distance) {
            r.runner_up = r.distance;
            r.distance = distance;
            r.index = row;
        } else if (distance < r.runner_up) {
            r.runner_up = distance;
        }
    }
    return r;
}

void hamming_extend_words(const std::uint64_t* query, const std::uint64_t* rows,
                          std::size_t row_words, std::size_t from_word,
                          std::size_t to_word, std::size_t n_rows,
                          std::uint64_t* distances) {
    const std::size_t span = to_word - from_word;
    for (std::size_t row = 0; row < n_rows; ++row) {
        distances[row] += hamming_distance_words(
            query + from_word, rows + row * row_words + from_word, span);
    }
}

// --- query-block Hamming kernels ------------------------------------------

/// One nibble-LUT popcount step: per-64-lane bit counts of a 256-bit word.
__m256i popcount256(__m256i x, __m256i lut, __m256i low_nibble) {
    const __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(x, low_nibble));
    const __m256i hi = _mm256_shuffle_epi8(
        lut, _mm256_and_si256(_mm256_srli_epi32(x, 4), low_nibble));
    return _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256());
}

/// Register-blocked tile: XOR-popcount distances over words [from_word,
/// to_word) for a full 4-query x 2-row tile. Eight ymm accumulators live
/// across one pass over the two rows, 4 words (256 bits) per step; word
/// tails finish with scalar popcounts. Each row word is loaded once per
/// query tile — the cache-blocking the block kernels exist for.
void block_tile_4x2(const std::uint64_t* const q[4], const std::uint64_t* r0,
                    const std::uint64_t* r1, std::size_t from_word,
                    std::size_t to_word, std::uint64_t d[4][2]) {
    const __m256i low_nibble = _mm256_set1_epi8(0x0F);
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2,
                         1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    __m256i acc[4][2];
    for (int qi = 0; qi < 4; ++qi) {
        acc[qi][0] = _mm256_setzero_si256();
        acc[qi][1] = _mm256_setzero_si256();
    }
    std::size_t w = from_word;
    for (; w + 4 <= to_word; w += 4) {
        const __m256i r0v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + w));
        const __m256i r1v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r1 + w));
        for (int qi = 0; qi < 4; ++qi) {
            const __m256i qv =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q[qi] + w));
            acc[qi][0] = _mm256_add_epi64(
                acc[qi][0], popcount256(_mm256_xor_si256(qv, r0v), lut, low_nibble));
            acc[qi][1] = _mm256_add_epi64(
                acc[qi][1], popcount256(_mm256_xor_si256(qv, r1v), lut, low_nibble));
        }
    }
    for (int qi = 0; qi < 4; ++qi) {
        for (int ri = 0; ri < 2; ++ri) {
            alignas(32) std::uint64_t lanes[4];
            _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc[qi][ri]);
            d[qi][ri] = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        }
        for (std::size_t ww = w; ww < to_word; ++ww) {
            d[qi][0] += static_cast<std::uint64_t>(std::popcount(q[qi][ww] ^ r0[ww]));
            d[qi][1] += static_cast<std::uint64_t>(std::popcount(q[qi][ww] ^ r1[ww]));
        }
    }
}

void hamming_block_extend(const std::uint64_t* queries, std::size_t query_words,
                          std::size_t n_queries, const std::uint64_t* rows,
                          std::size_t row_words, std::size_t from_word,
                          std::size_t to_word, std::size_t n_rows,
                          std::uint64_t* distances) {
    const std::size_t span = to_word - from_word;
    std::size_t q = 0;
    for (; q + 4 <= n_queries; q += 4) {
        const std::uint64_t* qp[4] = {
            queries + (q + 0) * query_words, queries + (q + 1) * query_words,
            queries + (q + 2) * query_words, queries + (q + 3) * query_words};
        std::size_t row = 0;
        for (; row + 2 <= n_rows; row += 2) {
            std::uint64_t d[4][2];
            block_tile_4x2(qp, rows + row * row_words, rows + (row + 1) * row_words,
                           from_word, to_word, d);
            for (std::size_t qi = 0; qi < 4; ++qi) {
                distances[(q + qi) * n_rows + row] += d[qi][0];
                distances[(q + qi) * n_rows + row + 1] += d[qi][1];
            }
        }
        for (; row < n_rows; ++row) {
            const std::uint64_t* r0 = rows + row * row_words + from_word;
            for (std::size_t qi = 0; qi < 4; ++qi) {
                distances[(q + qi) * n_rows + row] +=
                    hamming_distance_words(qp[qi] + from_word, r0, span);
            }
        }
    }
    for (; q < n_queries; ++q) {
        const std::uint64_t* query = queries + q * query_words;
        for (std::size_t row = 0; row < n_rows; ++row) {
            distances[q * n_rows + row] += hamming_distance_words(
                query + from_word, rows + row * row_words + from_word, span);
        }
    }
}

/// argmin2 update (rows fed in ascending order keep the first-wins rule).
void argmin2_update(argmin2_result& r, std::size_t row, std::uint64_t distance) {
    if (distance < r.distance) {
        r.runner_up = r.distance;
        r.distance = distance;
        r.index = row;
    } else if (distance < r.runner_up) {
        r.runner_up = distance;
    }
}

void hamming_block_argmin2_prefix(const std::uint64_t* queries,
                                  std::size_t query_words, std::size_t n_queries,
                                  const std::uint64_t* rows, std::size_t row_words,
                                  std::size_t prefix_words, std::size_t n_rows,
                                  argmin2_result* results) {
    for (std::size_t q = 0; q < n_queries; ++q) {
        results[q] = argmin2_result{0, ~std::uint64_t{0}, ~std::uint64_t{0}};
    }
    std::size_t q = 0;
    for (; q + 4 <= n_queries; q += 4) {
        const std::uint64_t* qp[4] = {
            queries + (q + 0) * query_words, queries + (q + 1) * query_words,
            queries + (q + 2) * query_words, queries + (q + 3) * query_words};
        std::size_t row = 0;
        for (; row + 2 <= n_rows; row += 2) {
            std::uint64_t d[4][2];
            block_tile_4x2(qp, rows + row * row_words, rows + (row + 1) * row_words,
                           0, prefix_words, d);
            for (std::size_t qi = 0; qi < 4; ++qi) {
                argmin2_update(results[q + qi], row, d[qi][0]);
                argmin2_update(results[q + qi], row + 1, d[qi][1]);
            }
        }
        for (; row < n_rows; ++row) {
            const std::uint64_t* r0 = rows + row * row_words;
            for (std::size_t qi = 0; qi < 4; ++qi) {
                argmin2_update(results[q + qi], row,
                               hamming_distance_words(qp[qi], r0, prefix_words));
            }
        }
    }
    for (; q < n_queries; ++q) {
        results[q] = hamming_argmin2_prefix(queries + q * query_words, rows,
                                            row_words, prefix_words, n_rows);
    }
}

// --- blocked int32 dot kernels --------------------------------------------
//
// Identical fixed 4-lane algorithm as the portable bodies (simd.hpp): the
// lane split pins the FP addition order, so the -mavx2 compilation may
// vectorize the lanes but cannot change the result.

double sum_squares_i32(const std::int32_t* v, std::size_t n) {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t main_n = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main_n; i += 4) {
        for (std::size_t l = 0; l < 4; ++l) {
            const std::int64_t x = v[i + l];
            lanes[l] += static_cast<double>(x * x);
        }
    }
    for (std::size_t i = main_n; i < n; ++i) {
        const std::int64_t x = v[i];
        lanes[i % 4] += static_cast<double>(x * x);
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double dot_i32(const std::int32_t* a, const std::int32_t* b, std::size_t n) {
    double lanes[4] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t main_n = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main_n; i += 4) {
        for (std::size_t l = 0; l < 4; ++l) {
            lanes[l] += static_cast<double>(static_cast<std::int64_t>(a[i + l]) *
                                            static_cast<std::int64_t>(b[i + l]));
        }
    }
    for (std::size_t i = main_n; i < n; ++i) {
        lanes[i % 4] += static_cast<double>(static_cast<std::int64_t>(a[i]) *
                                            static_cast<std::int64_t>(b[i]));
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

std::int64_t masked_sum_i32(const std::uint64_t* mask, const std::int32_t* v,
                            std::size_t n) {
    std::int64_t total = 0;
    const std::size_t full_words = n / 64;
    for (std::size_t wi = 0; wi <= full_words; ++wi) {
        const std::size_t base = wi * 64;
        if (base >= n) break;
        for (std::uint64_t m = mask[wi]; m != 0; m &= m - 1) {
            total += v[base + static_cast<std::size_t>(std::countr_zero(m))];
        }
    }
    return total;
}

constexpr kernel_table table{
    "avx2",            supported,
    geq_accumulate,    geq_block_accumulate,
    geq_rematerialize_accumulate,
    sign_binarize,     hamming_distance_words,
    hamming_argmin,    hamming_argmin2_prefix,
    hamming_extend_words,
    hamming_block_extend,
    hamming_block_argmin2_prefix,
    sum_squares_i32,   dot_i32,
    masked_sum_i32,
};

} // namespace

const kernel_table& avx2_table() noexcept { return table; }

} // namespace uhd::kernels::detail

#else
#error "kernels_avx2.cpp requires -mavx2 (set per-file by src/CMakeLists.txt)"
#endif // __AVX2__
