#include "uhd/lowdisc/discrepancy.hpp"

#include <algorithm>
#include <cmath>

#include "uhd/common/error.hpp"

namespace uhd::ld {

double star_discrepancy(std::span<const double> points) {
    UHD_REQUIRE(!points.empty(), "star discrepancy of empty point set");
    std::vector<double> sorted(points.begin(), points.end());
    std::sort(sorted.begin(), sorted.end());
    const double n = static_cast<double>(sorted.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double x = sorted[i];
        UHD_REQUIRE(x >= 0.0 && x <= 1.0, "points must lie in [0, 1]");
        const double up = static_cast<double>(i + 1) / n - x;
        const double down = x - static_cast<double>(i) / n;
        worst = std::max({worst, up, down});
    }
    return worst;
}

double cdf_error(std::span<const double> points, std::size_t grid) {
    UHD_REQUIRE(!points.empty(), "cdf error of empty point set");
    UHD_REQUIRE(grid >= 2, "grid must have at least two probes");
    std::vector<double> sorted(points.begin(), points.end());
    std::sort(sorted.begin(), sorted.end());
    const double n = static_cast<double>(sorted.size());
    double worst = 0.0;
    for (std::size_t g = 1; g < grid; ++g) {
        const double x = static_cast<double>(g) / static_cast<double>(grid);
        const auto below = std::lower_bound(sorted.begin(), sorted.end(), x);
        const double empirical =
            static_cast<double>(std::distance(sorted.begin(), below)) / n;
        worst = std::max(worst, std::abs(empirical - x));
    }
    return worst;
}

double sequence_correlation(std::span<const double> a, std::span<const double> b) {
    UHD_REQUIRE(a.size() == b.size(), "sequence lengths differ");
    UHD_REQUIRE(a.size() >= 2, "need at least two samples");
    const double n = static_cast<double>(a.size());
    double ma = 0.0;
    double mb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= n;
    mb /= n;
    double cov = 0.0;
    double va = 0.0;
    double vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va <= 0.0 || vb <= 0.0) return 0.0;
    return cov / std::sqrt(va * vb);
}

double chi_square_uniform(std::span<const double> points, std::size_t bins) {
    UHD_REQUIRE(!points.empty(), "chi-square of empty point set");
    UHD_REQUIRE(bins >= 2, "need at least two bins");
    std::vector<std::size_t> histogram(bins, 0);
    for (const double x : points) {
        UHD_REQUIRE(x >= 0.0 && x <= 1.0, "points must lie in [0, 1]");
        std::size_t bin = static_cast<std::size_t>(x * static_cast<double>(bins));
        if (bin >= bins) bin = bins - 1;
        ++histogram[bin];
    }
    const double expected =
        static_cast<double>(points.size()) / static_cast<double>(bins);
    double stat = 0.0;
    for (const std::size_t observed : histogram) {
        const double diff = static_cast<double>(observed) - expected;
        stat += diff * diff / expected;
    }
    return stat;
}

} // namespace uhd::ld
