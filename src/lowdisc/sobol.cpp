#include "uhd/lowdisc/sobol.hpp"

#include <bit>
#include <cmath>

#include "uhd/common/error.hpp"
#include "uhd/common/rng.hpp"

namespace uhd::ld {
namespace {

// Expand m_1..m_s to 32 m-values with the Bratley–Fox recurrence, then shift
// them into direction numbers v_i = m_i << (32 - i).
std::array<std::uint32_t, sobol_bits> make_direction_numbers(
    const sobol_dimension_params& params) {
    std::array<std::uint32_t, sobol_bits> m{};
    std::array<std::uint32_t, sobol_bits> v{};

    if (params.polynomial == 0) {
        // van der Corput dimension: m_i = 1 for all i.
        for (int i = 0; i < sobol_bits; ++i) m[static_cast<std::size_t>(i)] = 1;
    } else {
        const int s = gf2_degree(params.polynomial);
        UHD_REQUIRE(static_cast<std::size_t>(s) == params.initial_m.size(),
                    "initial m-value count must equal the polynomial degree");
        for (int i = 0; i < s && i < sobol_bits; ++i) {
            const std::uint32_t mi = params.initial_m[static_cast<std::size_t>(i)];
            UHD_REQUIRE((mi & 1u) != 0, "initial m-values must be odd");
            UHD_REQUIRE(mi < (std::uint32_t{1} << (i + 1)), "initial m_k must be < 2^k");
            m[static_cast<std::size_t>(i)] = mi;
        }
        for (int i = s; i < sobol_bits; ++i) {
            // m_i = 2 a_1 m_{i-1} ^ 4 a_2 m_{i-2} ^ ... ^ 2^s m_{i-s} ^ m_{i-s}
            std::uint32_t mi = m[static_cast<std::size_t>(i - s)] ^
                               (m[static_cast<std::size_t>(i - s)] << s);
            for (int k = 1; k < s; ++k) {
                const std::uint32_t a_k = (params.polynomial >> (s - k)) & 1u;
                if (a_k != 0) mi ^= m[static_cast<std::size_t>(i - k)] << k;
            }
            m[static_cast<std::size_t>(i)] = mi;
        }
    }

    for (int i = 0; i < sobol_bits; ++i) {
        v[static_cast<std::size_t>(i)] = m[static_cast<std::size_t>(i)]
                                         << (sobol_bits - 1 - i);
    }
    return v;
}

} // namespace

sobol_directions sobol_directions::standard(std::size_t dimensions, std::uint64_t seed) {
    UHD_REQUIRE(dimensions >= 1, "need at least one Sobol dimension");
    sobol_directions table;
    table.params_.reserve(dimensions);
    table.v_.reserve(dimensions * sobol_bits);

    // Dimension 0: van der Corput.
    table.params_.push_back(sobol_dimension_params{});

    if (dimensions > 1) {
        const auto polys = primitive_polynomials(dimensions - 1);
        for (std::size_t d = 1; d < dimensions; ++d) {
            sobol_dimension_params params;
            params.polynomial = polys[d - 1];
            const int s = gf2_degree(params.polynomial);
            params.initial_m.resize(static_cast<std::size_t>(s));
            // Deterministic initial values: m_1 = 1; m_k odd in [1, 2^k).
            splitmix64 sm(seed ^ (0x9e37ULL * d));
            for (int k = 0; k < s; ++k) {
                const std::uint32_t range = std::uint32_t{1} << k; // count of odd values
                const std::uint32_t pick =
                    static_cast<std::uint32_t>(sm.next() % range);
                params.initial_m[static_cast<std::size_t>(k)] = 2 * pick + 1;
            }
            params.initial_m[0] = 1;
            table.params_.push_back(std::move(params));
        }
    }

    for (const auto& params : table.params_) {
        const auto v = make_direction_numbers(params);
        table.v_.insert(table.v_.end(), v.begin(), v.end());
    }
    return table;
}

std::span<const std::uint32_t, sobol_bits> sobol_directions::direction_numbers(
    std::size_t dim) const {
    UHD_REQUIRE(dim < params_.size(), "Sobol dimension out of range");
    return std::span<const std::uint32_t, sobol_bits>(v_.data() + dim * sobol_bits,
                                                      sobol_bits);
}

const sobol_dimension_params& sobol_directions::params(std::size_t dim) const {
    UHD_REQUIRE(dim < params_.size(), "Sobol dimension out of range");
    return params_[dim];
}

std::size_t sobol_directions::memory_bytes() const noexcept {
    // Exact footprint (size, not capacity): these numbers feed Table I and
    // the bench footprint gates, so allocator slack must not inflate them.
    std::size_t bytes = v_.size() * sizeof(std::uint32_t) +
                        params_.size() * sizeof(sobol_dimension_params);
    for (const auto& p : params_) bytes += p.initial_m.size() * sizeof(std::uint32_t);
    return bytes;
}

sobol_sequence::sobol_sequence(std::span<const std::uint32_t, sobol_bits> directions) {
    for (int i = 0; i < sobol_bits; ++i)
        v_[static_cast<std::size_t>(i)] = directions[static_cast<std::size_t>(i)];
}

std::uint32_t sobol_sequence::next_fraction() noexcept {
    const std::uint32_t out = state_;
    // Antonov–Saleev: flip the direction number indexed by the lowest zero
    // run of the point counter (== countr_zero(index + 1)).
    const int c = std::countr_zero(index_ + 1);
    state_ ^= v_[static_cast<std::size_t>(c < sobol_bits ? c : sobol_bits - 1)];
    ++index_;
    return out;
}

void sobol_sequence::reset() noexcept {
    state_ = 0;
    index_ = 0;
}

std::uint32_t sobol_sequence::fraction_at(std::uint64_t target) const noexcept {
    // Direct Gray-code formula: x_n = XOR of v_i over set bits of gray(n).
    std::uint64_t gray = target ^ (target >> 1);
    std::uint32_t x = 0;
    int i = 0;
    while (gray != 0 && i < sobol_bits) {
        if (gray & 1u) x ^= v_[static_cast<std::size_t>(i)];
        gray >>= 1;
        ++i;
    }
    return x;
}

void sobol_sequence::seek(std::uint64_t target) noexcept {
    state_ = fraction_at(target);
    index_ = target;
}

std::vector<double> sobol_points(const sobol_directions& directions, std::size_t dim,
                                 std::size_t count) {
    sobol_sequence seq(directions.direction_numbers(dim));
    std::vector<double> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i) points.push_back(seq.next());
    return points;
}

std::uint8_t quantize_unit(double u, unsigned levels) noexcept {
    if (u <= 0.0) return 0;
    if (u >= 1.0) return static_cast<std::uint8_t>(levels - 1);
    const double scaled = u * static_cast<double>(levels - 1);
    return static_cast<std::uint8_t>(std::lround(scaled));
}

std::vector<std::uint32_t> quantize_bounds(unsigned levels) {
    UHD_REQUIRE(levels >= 2 && levels <= 256, "quantization levels must be in [2, 256]");
    std::vector<std::uint32_t> bounds(levels);
    // Every fraction quantizes to at most levels - 1.
    bounds[levels - 1] = ~std::uint32_t{0};
    for (unsigned q = 0; q + 1 < levels; ++q) {
        // Smallest fraction whose quantized value exceeds q (exists for
        // q < levels - 1: the all-ones fraction quantizes to levels - 1).
        // Binary search is exact because quantize_unit is nondecreasing in
        // the fraction.
        std::uint64_t lo = 0;
        std::uint64_t hi = std::uint64_t{1} << 32;
        while (lo < hi) {
            const std::uint64_t mid = (lo + hi) / 2;
            const std::uint8_t value = quantize_unit(
                sobol_sequence::fraction_to_unit(static_cast<std::uint32_t>(mid)),
                levels);
            if (value > q) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        bounds[q] = static_cast<std::uint32_t>(lo - 1);
    }
    return bounds;
}

quantized_sobol_bank::quantized_sobol_bank(const sobol_directions& directions,
                                           std::size_t dims, std::size_t samples,
                                           unsigned levels, std::uint64_t scramble_seed)
    : dims_(dims), samples_(samples), levels_(levels) {
    UHD_REQUIRE(dims >= 1, "bank needs at least one dimension");
    UHD_REQUIRE(dims <= directions.dimensions(), "directions table has too few dimensions");
    UHD_REQUIRE(levels >= 2 && levels <= 256, "quantization levels must be in [2, 256]");
    data_.resize(dims * samples);
    for (std::size_t d = 0; d < dims; ++d) {
        sobol_sequence seq(directions.direction_numbers(d));
        const std::uint32_t shift =
            scramble_seed == 0
                ? 0u
                : static_cast<std::uint32_t>(hash64(scramble_seed ^ (0x9e3779b9ULL * (d + 1))));
        std::uint8_t* row_data = data_.data() + d * samples;
        for (std::size_t i = 0; i < samples; ++i) {
            const std::uint32_t fraction = seq.next_fraction() ^ shift;
            row_data[i] = quantize_unit(sobol_sequence::fraction_to_unit(fraction), levels);
        }
    }
}

quantized_sobol_bank quantized_sobol_bank::from_raw(std::size_t dims, std::size_t samples,
                                                    unsigned levels,
                                                    std::vector<std::uint8_t> data) {
    UHD_REQUIRE(dims >= 1, "bank needs at least one dimension");
    UHD_REQUIRE(levels >= 2 && levels <= 256, "quantization levels must be in [2, 256]");
    UHD_REQUIRE(data.size() == dims * samples, "raw bank size mismatch");
    for (const std::uint8_t v : data) {
        UHD_REQUIRE(v < levels, "raw bank value exceeds quantization levels");
    }
    quantized_sobol_bank bank;
    bank.dims_ = dims;
    bank.samples_ = samples;
    bank.levels_ = levels;
    bank.data_ = std::move(data);
    return bank;
}

std::span<const std::uint8_t> quantized_sobol_bank::row(std::size_t d) const {
    UHD_REQUIRE(d < dims_, "bank dimension out of range");
    return {data_.data() + d * samples_, samples_};
}

} // namespace uhd::ld
